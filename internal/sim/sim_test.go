package sim

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/pauli"
)

func freshCode(t *testing.T, d int) *code.Code {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildDEMBasics(t *testing.T) {
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	dem, err := BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	// d=3 has 4 Z stabilizers; each contributes rounds+1 detectors.
	wantDets := 4 * (4 + 1)
	if dem.NumDets != wantDets {
		t.Errorf("NumDets = %d, want %d", dem.NumDets, wantDets)
	}
	if len(dem.Mechs) == 0 {
		t.Fatal("no mechanisms")
	}
	for _, m := range dem.Mechs {
		if m.P <= 0 || m.P >= 1 {
			t.Errorf("mechanism probability %v out of range", m.P)
		}
		for i := 1; i < len(m.Dets); i++ {
			if m.Dets[i] <= m.Dets[i-1] {
				t.Error("mechanism detectors not sorted unique")
			}
		}
	}
	if dem.RawMechanisms() <= len(dem.Mechs) {
		t.Error("merging should have combined equivalent fault components")
	}
}

func TestDEMZeroNoise(t *testing.T) {
	c := freshCode(t, 3)
	dem, err := BuildDEM(c, noise.Uniform(0), 3, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(dem.Mechs) != 0 {
		t.Errorf("zero-noise DEM has %d mechanisms", len(dem.Mechs))
	}
	s := NewSampler(dem)
	flagged, obs := s.Shot(rand.New(rand.NewSource(1)))
	if len(flagged) != 0 || obs {
		t.Error("zero-noise shot produced events")
	}
}

func TestSamplerStatistics(t *testing.T) {
	c := freshCode(t, 3)
	model := noise.Uniform(2e-3)
	dem, err := BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(dem)
	rng := rand.New(rand.NewSource(42))
	shots := 4000
	totalFlags := 0
	for i := 0; i < shots; i++ {
		flagged, _ := s.Shot(rng)
		totalFlags += len(flagged)
	}
	// Expected detection events per shot: roughly bounded by twice the
	// expected mechanism firings (each fires <= a few detectors).
	mean := float64(totalFlags) / float64(shots)
	exp := s.ExpectedFirings()
	if mean <= 0 {
		t.Fatal("sampler produced no detection events at p=2e-3")
	}
	if mean > 6*exp {
		t.Errorf("mean detections %.2f wildly exceeds expected firings %.2f", mean, exp)
	}
}

func TestDeformedCodeDEMBuilds(t *testing.T) {
	// A deformed code with gauges (alternating-round measurements) must
	// produce a consistent DEM in both bases.
	c := freshCode(t, 5)
	// Build a deformed code via manual removal of the centre qubit, like
	// the deform package would (super-stabilizer structure exercised here
	// without importing deform to keep the dependency graph acyclic).
	q0 := lattice.Coord{Row: 5, Col: 5}
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		stabs := c.StabsOn(q0, typ)
		var ids []int
		var prod pauli.Op
		for _, s := range stabs {
			prod = pauli.Mul(prod, s.Op)
			c.RemoveStab(s.ID)
			ids = append(ids, c.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
		}
		c.AddSuperStab(prod.RestrictedTo(notQ0), ids)
	}
	if err := c.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, basis := range []lattice.CheckType{lattice.ZCheck, lattice.XCheck} {
		dem, err := BuildDEM(c, noise.Uniform(1e-3), 4, basis)
		if err != nil {
			t.Fatalf("basis %v: %v", basis, err)
		}
		if dem.NumDets == 0 || len(dem.Mechs) == 0 {
			t.Errorf("basis %v: empty DEM", basis)
		}
	}
}

func TestPerRoundRateRoundTrip(t *testing.T) {
	for _, lam := range []float64{1e-5, 1e-3, 0.01, 0.1} {
		for _, r := range []int{1, 5, 20} {
			shot := ShotRate(lam, r)
			back := PerRoundRate(shot, r)
			if diff := back - lam; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("round trip λ=%v R=%d gave %v", lam, r, back)
			}
		}
	}
	if PerRoundRate(0.7, 5) != 0.5 {
		t.Error("saturated rate should clamp to 0.5")
	}
}

// TestDetectorFireRates pins the XOR-of-mechanisms marginal: detector d
// fires with probability ½(1 − ∏(1−2p)) over the mechanisms touching it —
// the baseline the defect detector's rate estimator measures against.
func TestDetectorFireRates(t *testing.T) {
	dem := &DEM{
		NumDets: 3,
		Mechs: []Mechanism{
			{P: 0.1, Dets: []int32{0}},
			{P: 0.2, Dets: []int32{0, 1}},
			// Detector 2 untouched: rate 0.
		},
	}
	got := dem.DetectorFireRates()
	want := []float64{
		0.5 * (1 - (1-2*0.1)*(1-2*0.2)), // 0.26
		0.5 * (1 - (1 - 2*0.2)),         // 0.2
		0,
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("detector %d fire rate %v, want %v", i, got[i], want[i])
		}
	}
	// On a real DEM, rates are positive and agree with empirical firing.
	c := freshCode(t, 3)
	real, err := BuildDEM(c, noise.Uniform(5e-3), 3, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	rates := real.DetectorFireRates()
	if len(rates) != real.NumDets {
		t.Fatalf("%d rates for %d detectors", len(rates), real.NumDets)
	}
	for i, r := range rates {
		if r <= 0 || r >= 0.5 {
			t.Errorf("detector %d marginal %v outside (0, 0.5)", i, r)
		}
	}
}
