package sim

import (
	"time"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
)

// DEM patch metrics, the fast-path counterpart of sim.dem.builds: every
// successful Patcher.Patch counts here with its wall-clock cost.
var (
	obsDEMPatches = obs.Default().Counter("sim.dem.patches")
	obsDEMPatchNs = obs.Default().Histogram("sim.dem.patch_ns")
)

// Contribution kinds. Each recorded contribution re-evaluates to exactly
// the probability addMech folded during the original build:
//
//	contribMeasReset → model.RateM(coords[a])
//	contribCX        → model.Rate2(coords[a], coords[b]) / 15
//	contribCorr      → model.PCorrelated / 2
//	contribIdle      → model.Rate1(coords[a]) / 3
const (
	contribMeasReset uint8 = iota
	contribCX
	contribCorr
	contribIdle
)

// planContrib is one elementary fault contribution to a merged mechanism,
// in the order addMech folded it.
type planContrib struct {
	a, b int32
	kind uint8
}

// planCore is the immutable, model-independent part of a contribution plan.
// It is shared by every DEM patched from the same base build, which lets
// consumers (decoder.SharedGraphFrom) recognize structural identity by
// pointer: two DEMs with the same core have identical NumDets, identical
// Mechs[i].Dets/Obs for every i, and differ only in probabilities.
type planCore struct {
	coords []lattice.Coord
	qIdx   map[lattice.Coord]int32

	// contribs, CSR-indexed by mechOff, lists each mechanism's
	// contributions in original fold order.
	mechOff  []int32
	contribs []planContrib

	// siteMechs, CSR-indexed by siteOff per dense qubit index, lists the
	// mechanisms whose probability depends on that site's rate.
	siteOff   []int32
	siteMechs []int32
}

// demPlan ties a core to the model whose rates produced the DEM's
// probabilities, and to the structural fingerprint of the code the plan was
// enumerated for.
type demPlan struct {
	core *planCore
	base *noise.Model
	// codeFP is the code portion of the DEM cache key. A patch re-rates the
	// base's mechanism set, which is only the target's mechanism set when the
	// codes are structurally identical — super-stabilizer merges change the
	// detector layout, so BuildDEMPatched refuses the patch path (and falls
	// back to a full build) whenever the fingerprints differ.
	codeFP string
}

// buildSiteIndex derives the site → mechanisms CSR from the contribution
// lists (two passes; per-mechanism duplicates collapse because each
// mechanism's contributions are visited consecutively).
func (pc *planCore) buildSiteIndex() {
	nq := len(pc.coords)
	nm := len(pc.mechOff) - 1
	forEachSite := func(visit func(mi, q int32)) {
		for mi := 0; mi < nm; mi++ {
			for ci := pc.mechOff[mi]; ci < pc.mechOff[mi+1]; ci++ {
				c := pc.contribs[ci]
				switch c.kind {
				case contribMeasReset, contribIdle:
					visit(int32(mi), c.a)
				case contribCX:
					visit(int32(mi), c.a)
					visit(int32(mi), c.b)
				}
			}
		}
	}
	last := make([]int32, nq)
	for i := range last {
		last[i] = -1
	}
	counts := make([]int32, nq+1)
	forEachSite(func(mi, q int32) {
		if last[q] == mi {
			return
		}
		last[q] = mi
		counts[q+1]++
	})
	for i := 0; i < nq; i++ {
		counts[i+1] += counts[i]
	}
	pc.siteOff = counts
	pc.siteMechs = make([]int32, counts[nq])
	for i := range last {
		last[i] = -1
	}
	cur := make([]int32, nq)
	copy(cur, counts[:nq])
	forEachSite(func(mi, q int32) {
		if last[q] == mi {
			return
		}
		last[q] = mi
		pc.siteMechs[cur[q]] = mi
		cur[q]++
	})
}

// SamePatchCore reports whether two DEMs share mechanism/detector structure
// by construction — i.e. one was patched from the other (or both from a
// common base) and they differ only in mechanism probabilities.
func SamePatchCore(a, b *DEM) bool {
	return a != nil && b != nil && a.plan != nil && b.plan != nil && a.plan.core == b.plan.core
}

// Patcher derives site-rate variants of a plan-carrying DEM without
// re-running the fault enumeration. Scratch persists across calls, so a
// steady-state Patch allocates only the cloned probability vector (plus the
// output DEM header). Not safe for concurrent use; callers keep one per
// goroutine.
type Patcher struct {
	marked   []bool
	affected []int32
}

// Patch returns a DEM equal (value-identical, per the equivalence suite) to
// a fresh BuildDEM of the same circuit under model, derived from base by
// refolding only the mechanisms whose probability depends on a site model
// overrides. It reports false — and the caller must fall back to a full
// build — when base carries no plan or model is not a pure site-rate
// variant of the base model (differing scalar rates, defect sets, or a
// non-positive override, any of which could change the mechanism set
// itself).
//
// The returned DEM shares everything but the probability vector with base:
// detector layout, observable info, each mechanism's Dets slice, and the
// contribution plan (so patched DEMs can themselves serve as patch bases
// and decoder.SharedGraphFrom can re-derive graphs structurally).
func (pt *Patcher) Patch(base *DEM, model *noise.Model) (*DEM, bool) {
	if base == nil || base.plan == nil || model == nil {
		return nil, false
	}
	plan := base.plan
	pb := plan.base
	if model.P1 != pb.P1 || model.P2 != pb.P2 || model.PM != pb.PM ||
		model.PCorrelated != pb.PCorrelated || len(model.Defective) != 0 {
		return nil, false
	}
	core := plan.core
	nm := len(base.Mechs)
	if len(core.mechOff) != nm+1 {
		return nil, false
	}
	start := time.Now()
	if cap(pt.marked) < nm {
		pt.marked = make([]bool, nm)
	}
	pt.marked = pt.marked[:nm]
	pt.affected = pt.affected[:0]
	markSite := func(q lattice.Coord) {
		qi, ok := core.qIdx[q]
		if !ok {
			return // site off the circuit: no mechanism depends on it
		}
		for _, mi := range core.siteMechs[core.siteOff[qi]:core.siteOff[qi+1]] {
			if !pt.marked[mi] {
				pt.marked[mi] = true
				pt.affected = append(pt.affected, mi)
			}
		}
	}
	// A mechanism needs refolding when any of its sites changes effective
	// rate between the base's model and the target — overrides added,
	// removed, or re-valued. Sites overridden identically in both models
	// are already folded into the base at the target rate.
	for q, r := range model.SiteRates {
		if r <= 0 {
			// A non-positive override could erase mechanisms from the
			// enumeration; only a full build knows the resulting set.
			for _, mi := range pt.affected {
				pt.marked[mi] = false
			}
			return nil, false
		}
		if pb.SiteRates[q] != r {
			markSite(q)
		}
	}
	for q, r := range pb.SiteRates {
		if model.SiteRates[q] != r {
			markSite(q)
		}
	}
	if len(pt.affected) == 0 {
		// No override touches a circuit site: the base DEM already is the
		// answer (its base model and this one agree on every rate used).
		obsDEMPatches.Inc()
		obsDEMPatchNs.Observe(time.Since(start).Nanoseconds())
		return base, true
	}
	mechs := make([]Mechanism, nm)
	copy(mechs, base.Mechs)
	for _, mi := range pt.affected {
		pt.marked[mi] = false
		q := 0.0
		for ci := core.mechOff[mi]; ci < core.mechOff[mi+1]; ci++ {
			c := core.contribs[ci]
			var p float64
			switch c.kind {
			case contribMeasReset:
				p = model.RateM(core.coords[c.a])
			case contribCX:
				p = model.Rate2(core.coords[c.a], core.coords[c.b]) / 15
			case contribCorr:
				p = model.PCorrelated / 2
			default: // contribIdle
				p = model.Rate1(core.coords[c.a]) / 3
			}
			q = q + p - 2*q*p
		}
		mechs[mi].P = q
	}
	out := &DEM{
		NumDets:     base.NumDets,
		Mechs:       mechs,
		DetRound:    base.DetRound,
		DetObs:      base.DetObs,
		Observables: base.Observables,
		rawMechs:    base.rawMechs,
		plan:        &demPlan{core: core, base: model, codeFP: plan.codeFP},
	}
	obsDEMPatches.Inc()
	obsDEMPatchNs.Observe(time.Since(start).Nanoseconds())
	return out, true
}
