package sim

import (
	"reflect"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

// bandagedCode returns a fresh d-patch with the bandage construction applied
// to one data qubit (the first that accepts it), plus that qubit — the
// minimal code that differs from the pristine patch only in super-stabilizer
// structure.
func bandagedCode(t *testing.T, d int) (*code.Code, lattice.Coord) {
	t.Helper()
	c := freshCode(t, d)
	for _, q := range c.DataQubits() {
		if _, err := deform.BandageQubit(c, q); err == nil {
			return c, q
		}
	}
	t.Fatal("no data qubit of the fresh patch accepts a bandage")
	return nil, lattice.Coord{}
}

// TestDEMCacheKeyFingerprintsSuperStabilizers pins the cache-identity half
// of the gauge-merge contract: a bandaged code and the pristine code it came
// from differ only in super-stabilizer structure (merged checks, demoted
// gauges), and their DEM cache keys must differ — while rebuilding the same
// bandage from scratch reproduces the same key (the construction, like
// Spec.Build, is a deterministic function of its inputs).
func TestDEMCacheKeyFingerprintsSuperStabilizers(t *testing.T) {
	dc := NewDEMCache(0)
	model := noise.Uniform(1e-3)
	_, pristineKey, err := dc.BuildDEMKeyed(freshCode(t, 3), model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	merged, q := bandagedCode(t, 3)
	_, mergedKey, err := dc.BuildDEMKeyed(merged, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if mergedKey == pristineKey {
		t.Error("bandaged code shares the pristine cache key — super-stabilizer structure not fingerprinted")
	}
	// Same construction, rebuilt from scratch: same key, same cached DEM.
	rebuilt := freshCode(t, 3)
	if _, err := deform.BandageQubit(rebuilt, q); err != nil {
		t.Fatalf("re-bandaging %v: %v", q, err)
	}
	_, rebuiltKey, err := dc.BuildDEMKeyed(rebuilt, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if rebuiltKey != mergedKey {
		t.Error("identical bandage constructions produced different cache keys")
	}
	if st := dc.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 2)", st.Hits, st.Misses)
	}
}

// TestPatcherRefusesAcrossCodeStructureChange pins the patch-safety half: a
// patch base enumerated for the pristine code must not be re-rated into a
// DEM for the gauge-merged code (the mechanism set itself changed), so
// BuildDEMPatched handed a stale cross-code base falls back to a full build
// — and the fallback is value-identical to a direct BuildDEM of the merged
// code. A same-code base still patches.
func TestPatcherRefusesAcrossCodeStructureChange(t *testing.T) {
	nominal := noise.Uniform(1e-3)
	merged, q := bandagedCode(t, 3)
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{q: 0.25})

	dc := NewDEMCache(0)
	pt := &Patcher{}
	pristineBase, _, err := dc.BuildDEMPatched(nil, nil, freshCode(t, 3), nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dc.BuildDEMPatched(pt, pristineBase, merged, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if SamePatchCore(got, pristineBase) {
		t.Fatal("stale pristine base was patched across a code-structure change")
	}
	want, err := BuildDEM(merged, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDets != want.NumDets || !reflect.DeepEqual(got.Mechs, want.Mechs) {
		t.Error("full-build fallback differs from a direct BuildDEM of the merged code")
	}

	// Control: with a base built for the merged code itself, the same variant
	// request takes the patch fast path and agrees with the full build.
	mergedBase, _, err := dc.BuildDEMPatched(nil, nil, merged, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	patched, _, err := NewDEMCache(0).BuildDEMPatched(pt, mergedBase, merged, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if !SamePatchCore(patched, mergedBase) {
		t.Error("same-code patch base did not take the patch fast path")
	}
	if patched.NumDets != want.NumDets || !reflect.DeepEqual(patched.Mechs, want.Mechs) {
		t.Error("patched DEM of the merged code differs from its full build")
	}
}
