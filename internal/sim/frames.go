package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"surfdeformer/internal/circuit"
	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

// FrameSimulator is a direct, batched Pauli-frame simulator: it steps the
// syndrome-extraction circuit shot by shot, sampling faults at every noise
// site and propagating X/Z frames through the Clifford operations, 64 shots
// at a time in the bits of a word (Stim's frame-simulator strategy).
//
// It is an independent implementation path from the DEM machinery in
// dem.go: BuildDEM enumerates faults once and samples mechanism firings,
// while FrameSimulator samples the physical circuit directly. Their
// detector statistics must agree — the cross-validation test in
// frames_test.go checks exactly that, which pins down the correctness of
// detector layouts, fault propagation and probability bookkeeping at once.
type FrameSimulator struct {
	ops     []flatOp
	nQubits int
	nRec    int32
	rounds  int
	basis   lattice.CheckType
	model   *noise.Model
	coords  []lattice.Coord
	recDets [][]int32
	obsRec  []bool
	nDets   int
	// idleBefore marks op indices at which the per-round idle channel is
	// injected (round starts), mirroring buildDEM's placement exactly.
	idleBefore []int

	// frames: per qubit, X and Z components for 64 shots.
	fx, fz []uint64
	// recs: measurement-record deviations for 64 shots.
	recs []uint64
}

// NewFrameSimulator materializes the circuit of a memory experiment for
// direct simulation under the given model.
func NewFrameSimulator(c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) (*FrameSimulator, error) {
	if rounds < 2 {
		return nil, fmt.Errorf("sim: need at least 2 rounds")
	}
	sched, err := circuit.NewSchedule(c)
	if err != nil {
		return nil, err
	}
	f := &FrameSimulator{rounds: rounds, basis: basis, model: model}

	dataQubits := c.DataQubits()
	qIdx := map[lattice.Coord]int32{}
	for _, q := range dataQubits {
		qIdx[q] = int32(len(f.coords))
		f.coords = append(f.coords, q)
	}
	for _, op := range sched.Ops {
		if op.Direct {
			continue
		}
		if _, ok := qIdx[op.Ancilla]; !ok {
			qIdx[op.Ancilla] = int32(len(f.coords))
			f.coords = append(f.coords, op.Ancilla)
		}
	}
	f.nQubits = len(f.coords)

	recOf := make(map[[2]int]int32)
	for _, q := range dataQubits {
		f.ops = append(f.ops, flatOp{kind: opReset, basis: basis, a: qIdx[q], round: 0})
	}
	for r := 0; r < rounds; r++ {
		f.idleBefore = append(f.idleBefore, len(f.ops))
		var live []circuit.MeasuredOp
		for _, m := range sched.Ops {
			if m.MeasuredThisRound(r) {
				live = append(live, m)
			}
		}
		for _, m := range live {
			if !m.Direct {
				f.ops = append(f.ops, flatOp{kind: opReset, basis: m.Basis, a: qIdx[m.Ancilla], round: int16(r)})
			}
		}
		maxSteps := 0
		for _, m := range live {
			if !m.Direct && len(m.Data) > maxSteps {
				maxSteps = len(m.Data)
			}
		}
		for t := 0; t < maxSteps; t++ {
			for _, m := range live {
				if m.Direct || t >= len(m.Data) {
					continue
				}
				anc, dat := qIdx[m.Ancilla], qIdx[m.Data[t]]
				if m.Basis == lattice.XCheck {
					f.ops = append(f.ops, flatOp{kind: opCX, a: anc, b: dat, round: int16(r)})
				} else {
					f.ops = append(f.ops, flatOp{kind: opCX, a: dat, b: anc, round: int16(r)})
				}
			}
		}
		for _, m := range live {
			rec := f.nRec
			f.nRec++
			recOf[[2]int{r, m.Slot}] = rec
			target := m.Ancilla
			if m.Direct {
				target = m.Data[0]
			}
			f.ops = append(f.ops, flatOp{kind: opMeas, basis: m.Basis, a: qIdx[target], rec: rec, round: int16(r)})
		}
	}
	readoutRec := make(map[lattice.Coord]int32)
	for _, q := range dataQubits {
		rec := f.nRec
		f.nRec++
		readoutRec[q] = rec
		f.ops = append(f.ops, flatOp{kind: opMeas, basis: basis, a: qIdx[q], rec: rec, round: int16(rounds - 1)})
	}

	// Detector layout — identical construction to buildDEM so detector IDs
	// line up between the two implementations.
	f.recDets = make([][]int32, f.nRec)
	addDet := func(recs ...int32) {
		id := int32(f.nDets)
		f.nDets++
		for _, r := range recs {
			f.recDets[r] = append(f.recDets[r], id)
		}
	}
	for _, obs := range sched.Observables {
		if obs.Type != basis {
			continue
		}
		var avail []int
		for r := 0; r < rounds; r++ {
			if obs.AvailableThisRound(r) {
				avail = append(avail, r)
			}
		}
		if len(avail) == 0 {
			continue
		}
		valueRecs := func(r int) []int32 {
			var out []int32
			for _, slot := range obs.Slots {
				out = append(out, recOf[[2]int{r, slot}])
			}
			return out
		}
		addDet(valueRecs(avail[0])...)
		for i := 1; i < len(avail); i++ {
			addDet(append(valueRecs(avail[i-1]), valueRecs(avail[i])...)...)
		}
		last := valueRecs(avail[len(avail)-1])
		for _, q := range obs.Support {
			last = append(last, readoutRec[q])
		}
		addDet(last...)
	}
	logical := c.LogicalZ()
	if basis == lattice.XCheck {
		logical = c.LogicalX()
	}
	f.obsRec = make([]bool, f.nRec)
	for _, q := range logical.Support() {
		rec, ok := readoutRec[q]
		if !ok {
			return nil, fmt.Errorf("sim: logical support qubit %v missing from readout", q)
		}
		f.obsRec[rec] = true
	}

	f.fx = make([]uint64, f.nQubits)
	f.fz = make([]uint64, f.nQubits)
	f.recs = make([]uint64, f.nRec)
	return f, nil
}

// NumDetectors returns the detector count (matches BuildDEM's layout).
func (f *FrameSimulator) NumDetectors() int { return f.nDets }

// Batch simulates 64 shots under the full noise model (including the
// per-round single-qubit idle depolarizing on data qubits, matching
// BuildDEM) and returns, per shot, the flagged detectors and the
// observable flip.
func (f *FrameSimulator) Batch(rng *rand.Rand) (flagged [][]int32, obs []bool) {
	for i := range f.fx {
		f.fx[i], f.fz[i] = 0, 0
	}
	for i := range f.recs {
		f.recs[i] = 0
	}
	nextIdle := 0
	for oi, op := range f.ops {
		if nextIdle < len(f.idleBefore) && oi == f.idleBefore[nextIdle] {
			f.injectIdle(rng)
			nextIdle++
		}
		switch op.kind {
		case opReset:
			f.fx[op.a], f.fz[op.a] = 0, 0
			m := biasedMask(f.model.RateM(f.coords[op.a]), rng)
			if op.basis == lattice.ZCheck {
				f.fx[op.a] ^= m
			} else {
				f.fz[op.a] ^= m
			}
		case opCX:
			f.fx[op.b] ^= f.fx[op.a]
			f.fz[op.a] ^= f.fz[op.b]
			p2 := f.model.Rate2(f.coords[op.a], f.coords[op.b])
			if p2 > 0 {
				f.depolarize2(op.a, op.b, p2, rng)
			}
			if pc := f.model.PCorrelated; pc > 0 {
				mxx := biasedMask(pc/2, rng)
				f.fx[op.a] ^= mxx
				f.fx[op.b] ^= mxx
				mzz := biasedMask(pc/2, rng)
				f.fz[op.a] ^= mzz
				f.fz[op.b] ^= mzz
			}
		case opMeas:
			var dev uint64
			if op.basis == lattice.ZCheck {
				dev = f.fx[op.a]
			} else {
				dev = f.fz[op.a]
			}
			dev ^= biasedMask(f.model.RateM(f.coords[op.a]), rng)
			f.recs[op.rec] = dev
		}
	}
	return f.collect()
}

// injectIdle applies one single-qubit depolarizing channel to every data
// qubit (round boundary).
func (f *FrameSimulator) injectIdle(rng *rand.Rand) {
	for qi, q := range f.coords {
		if !q.IsData() {
			continue
		}
		p1 := f.model.Rate1(q)
		if p1 <= 0 {
			continue
		}
		// X, Y, Z each with p/3: draw two masks so Y = both.
		mx := biasedMask(p1/3, rng)
		mz := biasedMask(p1/3, rng)
		my := biasedMask(p1/3, rng)
		f.fx[qi] ^= mx ^ my
		f.fz[qi] ^= mz ^ my
	}
}

// depolarize2 applies the 15-way two-qubit depolarizing channel to 64 shots.
func (f *FrameSimulator) depolarize2(a, b int32, p float64, rng *rand.Rand) {
	// Draw one mask per generator component such that each of the 15
	// non-identity Paulis occurs with probability p/15. Sampling per shot
	// is clearer than bit tricks here: collect shots that error, then
	// assign a uniform Pauli.
	m := biasedMask(p, rng)
	if m == 0 {
		return
	}
	for bit := 0; bit < 64; bit++ {
		if m&(1<<bit) == 0 {
			continue
		}
		pauli := 1 + rng.Intn(15)
		mask := uint64(1) << bit
		if pauli&1 != 0 {
			f.fx[a] ^= mask
		}
		if pauli&2 != 0 {
			f.fx[b] ^= mask
		}
		if pauli&4 != 0 {
			f.fz[a] ^= mask
		}
		if pauli&8 != 0 {
			f.fz[b] ^= mask
		}
	}
}

// collect converts record deviations into per-shot flagged detectors and
// observable flips.
func (f *FrameSimulator) collect() ([][]int32, []bool) {
	detBits := make([]uint64, f.nDets)
	var obsBits uint64
	for rec, dets := range f.recDets {
		v := f.recs[rec]
		if v == 0 {
			continue
		}
		for _, d := range dets {
			detBits[d] ^= v
		}
	}
	for rec, isObs := range f.obsRec {
		if isObs {
			obsBits ^= f.recs[rec]
		}
	}
	flagged := make([][]int32, 64)
	obs := make([]bool, 64)
	for d, bits := range detBits {
		for bits != 0 {
			bit := trailingZeros(bits)
			flagged[bit] = append(flagged[bit], int32(d))
			bits &= bits - 1
		}
	}
	for bit := 0; bit < 64; bit++ {
		obs[bit] = obsBits>>uint(bit)&1 == 1
	}
	return flagged, obs
}

// biasedMask returns a 64-bit mask whose bits are independent Bernoulli(p).
func biasedMask(p float64, rng *rand.Rand) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	var m uint64
	// For small p, sample set-bit positions geometrically.
	if p < 0.05 {
		// Expected set bits 64p << 64: geometric skipping.
		pos := 0
		for {
			u := rng.Float64()
			if u <= 0 {
				u = 1e-300
			}
			skip := int(math.Log(u) / math.Log(1-p))
			pos += skip
			if pos >= 64 {
				return m
			}
			m |= 1 << uint(pos)
			pos++
		}
	}
	for bit := 0; bit < 64; bit++ {
		if rng.Float64() < p {
			m |= 1 << uint(bit)
		}
	}
	return m
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
