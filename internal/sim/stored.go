package sim

import (
	"encoding/json"
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/store"
)

// StoreOptions wires a memory experiment into the persistent result store.
// Kind and Config form the point's content address (store.Key): Config must
// describe the generator of the point — everything that fixes its RNG
// stream family and physics (sizes, rates, policy/decoder names, rounds,
// seed, adaptive target) — and must NOT include the shot budget, which is
// the one accumulating dimension (see DESIGN.md §7).
type StoreOptions struct {
	Store  *store.Store
	Resume bool
	Kind   string
	Config any
}

// segmentSalt disambiguates growth-segment streams from the engine's shard
// streams: ShardSeed(seed, k) == DeriveSeed(seed, k) for k >= 0, so segment
// seeds use a negative leading path element that no shard index can ever
// produce. Segment 0 is o.Seed itself — the stream a storeless run uses —
// which is what makes a resumed table byte-identical to an uninterrupted
// one.
const segmentSalt = int64(-0x5347) // "SG"

// SegmentSeed returns the RNG seed of growth segment seq of a stored
// memory point whose base seed is seed. Segment 0 is the base seed.
func SegmentSeed(seed int64, seq int) int64 {
	if seq == 0 {
		return seed
	}
	return mc.DeriveSeed(seed, segmentSalt, int64(seq))
}

// memoryPayload is the replay state stored with each segment row. Counts
// live in the row itself (so the store can merge them); the payload holds
// the latest cumulative flags and DEM diagnostics.
type memoryPayload struct {
	EarlyStopped bool `json:"early_stopped,omitempty"`
	Detectors    int  `json:"detectors,omitempty"`
	Mechanisms   int  `json:"mechanisms,omitempty"`
	Truncations  int  `json:"truncations,omitempty"`
	Rounds       int  `json:"rounds"`
}

// RunMemoryStored is RunMemoryOpts behind the persistent store: a point
// already complete in the store is served without touching the sampler or
// decoder, a partially-stored point computes only the missing shots under a
// fresh segment stream and merges (Wilson CI recomputed from the merged
// counts), and a missing point computes in full and commits. fromStore
// reports whether the result required no Monte-Carlo work.
//
// Completeness is relative to the request: a fixed budget is complete once
// the merged shots reach it; an adaptive request (TargetRSE > 0) is
// complete once a stored run early-stopped at the target, the merged
// counts already meet the target, or the cap is exhausted.
func RunMemoryStored(c *code.Code, sampleModel, decodeModel *noise.Model, o RunOptions, so StoreOptions) (res *MemoryResult, fromStore bool, err error) {
	if so.Store == nil {
		res, err = RunMemoryOpts(c, sampleModel, decodeModel, o)
		return res, false, err
	}
	key, err := store.Key(so.Kind, so.Config)
	if err != nil {
		return nil, false, err
	}
	pt, found := so.Store.Get(key)

	var pay memoryPayload
	if found && len(pt.Payload) > 0 {
		if err := json.Unmarshal(pt.Payload, &pay); err != nil {
			// A foreign payload under this key means the config hash is
			// being reused across schemas; recompute rather than guess.
			found = false
		}
	}
	if found && pay.Rounds != 0 && pay.Rounds != o.Rounds {
		return nil, false, fmt.Errorf("sim: store key %s holds rounds=%d, request has rounds=%d (config under-hashed?)", key, pay.Rounds, o.Rounds)
	}

	complete := func(shots, failures int, early bool) bool {
		if o.TargetRSE > 0 {
			return early || shots >= o.Shots || mc.RSE(failures, shots) <= o.TargetRSE
		}
		return shots >= o.Shots
	}

	if so.Resume && found && pt.Shots > 0 && complete(pt.Shots, pt.Failures, pay.EarlyStopped) {
		return replayMemory(pt, pay), true, nil
	}

	// Fresh point (or Resume off): one run at the full request on the
	// base-seed stream, exactly what a storeless run would do.
	if !so.Resume || !found || pt.Shots == 0 {
		run, err := RunMemoryOpts(c, sampleModel, decodeModel, o)
		if err != nil {
			return nil, false, err
		}
		pay := payloadOf(run, o.Rounds)
		if err := appendSegment(so, key, 0, run.Shots, run.Failures,
			complete(run.Shots, run.Failures, run.EarlyStopped), pay); err != nil {
			return nil, false, err
		}
		return run, false, nil
	}

	// Top up an incomplete point with only the missing shots. With an
	// adaptive target, each chunk is sized from the MERGED counts via the
	// planning inverse of the RSE formula — the stored failures already
	// count toward the target, so the engine must not re-earn it from
	// zero. Chunks iterate because the size estimate is itself noisy.
	mergedShots, mergedFailures := pt.Shots, pt.Failures
	seg := pt.NextSeq
	var lastPay memoryPayload
	for {
		remaining := o.Shots - mergedShots
		if remaining <= 0 {
			break
		}
		segOpts := o
		segOpts.Seed = SegmentSeed(o.Seed, seg)
		segOpts.TargetRSE = 0
		chunk := remaining
		if o.TargetRSE > 0 {
			if mergedFailures > 0 {
				rate := float64(mergedFailures) / float64(mergedShots)
				if need := mc.ShotsForRSE(rate, o.TargetRSE) - mergedShots; need < chunk {
					chunk = need
				}
				if chunk < mc.DefaultShardSize {
					chunk = mc.DefaultShardSize // no confetti segments
				}
				if chunk > remaining {
					chunk = remaining
				}
			} else {
				// No failures anywhere yet: the merged RSE is +Inf and the
				// planning inverse is undefined; let the engine stop this
				// segment adaptively within the cap.
				segOpts.TargetRSE = o.TargetRSE
			}
		}
		segOpts.Shots = chunk
		run, err := RunMemoryOpts(c, sampleModel, decodeModel, segOpts)
		if err != nil {
			return nil, false, err
		}
		mergedShots += run.Shots
		mergedFailures += run.Failures
		lastPay = payloadOf(run, o.Rounds)
		if err := appendSegment(so, key, seg, run.Shots, run.Failures,
			complete(mergedShots, mergedFailures, run.EarlyStopped), lastPay); err != nil {
			return nil, false, err
		}
		seg++
		if o.TargetRSE == 0 || run.EarlyStopped ||
			complete(mergedShots, mergedFailures, run.EarlyStopped) {
			break
		}
	}
	merged, _ := so.Store.Get(key)
	return replayMemory(merged, lastPay), false, nil
}

func payloadOf(run *MemoryResult, rounds int) memoryPayload {
	return memoryPayload{
		EarlyStopped: run.EarlyStopped,
		Detectors:    run.Detectors,
		Mechanisms:   run.Mechanisms,
		Truncations:  run.Truncations,
		Rounds:       rounds,
	}
}

func appendSegment(so StoreOptions, key string, seq, shots, failures int, complete bool, pay memoryPayload) error {
	cfg, err := json.Marshal(so.Config)
	if err != nil {
		return err
	}
	canon, err := store.Canonicalize(cfg)
	if err != nil {
		return err
	}
	pb, err := json.Marshal(pay)
	if err != nil {
		return err
	}
	return so.Store.Append(store.Row{
		Key: key, Kind: so.Kind, Seq: seq,
		Shots: shots, Failures: failures, Complete: complete,
		Config: canon, Payload: pb,
	})
}

// replayMemory reconstructs a MemoryResult from merged store counts using
// exactly the arithmetic of the compute path (same divisions, same Wilson
// interval, same per-round inversion), so a served point renders
// byte-identically to the run that produced it.
func replayMemory(pt store.Point, pay memoryPayload) *MemoryResult {
	res := &MemoryResult{
		Shots:            pt.Shots,
		Failures:         pt.Failures,
		Rounds:           pay.Rounds,
		LogicalErrorRate: pt.Rate,
		CILow:            pt.CILow,
		CIHigh:           pt.CIHigh,
		RSE:              mc.RSE(pt.Failures, pt.Shots),
		EarlyStopped:     pay.EarlyStopped,
		Detectors:        pay.Detectors,
		Mechanisms:       pay.Mechanisms,
		Truncations:      pay.Truncations,
	}
	res.PerRound = PerRoundRate(res.LogicalErrorRate, pay.Rounds)
	return res
}

// basisConfig nests the caller's point config under an explicit basis tag:
// RunMemoryBothStored stores its Z and X halves as two points so per-basis
// counts stay mergeable across sessions.
type basisConfig struct {
	Basis  string `json:"basis"`
	Config any    `json:"config"`
}

// RunMemoryBothStored is RunMemoryBothOpts behind the persistent store;
// the Z and X halves are stored as separate points (config nested under a
// basis tag, X at Seed+1 per the RunMemoryBoth convention). fromStore
// reports whether *both* halves were served without Monte-Carlo work.
func RunMemoryBothStored(c *code.Code, model *noise.Model, o RunOptions, so StoreOptions) (z, x *MemoryResult, combined float64, fromStore bool, err error) {
	zo := o
	zo.Basis = lattice.ZCheck
	zso := so
	zso.Config = basisConfig{Basis: "z", Config: so.Config}
	z, zStored, err := RunMemoryStored(c, model, nil, zo, zso)
	if err != nil {
		return nil, nil, 0, false, err
	}
	xo := o
	xo.Basis = lattice.XCheck
	xo.Seed = o.Seed + 1
	xso := so
	xso.Config = basisConfig{Basis: "x", Config: so.Config}
	x, xStored, err := RunMemoryStored(c, model, nil, xo, xso)
	if err != nil {
		return nil, nil, 0, false, err
	}
	combined = 1 - (1-z.PerRound)*(1-x.PerRound)
	return z, x, combined, zStored && xStored, nil
}
