package sim

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

// Phase is a stretch of QEC rounds governed by one noise model. Phased DEMs
// model dynamic defects faithfully: the hardware is nominal until the
// strike, defective afterwards — which is what the runtime defect detector
// observes.
type Phase struct {
	Rounds int
	Model  *noise.Model
}

// BuildPhasedDEM constructs the detector error model of a memory experiment
// whose noise model changes between phases. Detector layout is identical to
// the single-phase BuildDEM over the same total rounds, so decoders built
// from a nominal DEM can decode phased samples (the uninformed-decoder
// setting).
func BuildPhasedDEM(c *code.Code, phases []Phase, basis lattice.CheckType) (*DEM, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("sim: no phases")
	}
	total := 0
	for i, ph := range phases {
		if ph.Rounds < 1 {
			return nil, fmt.Errorf("sim: phase %d has %d rounds", i, ph.Rounds)
		}
		if ph.Model == nil {
			return nil, fmt.Errorf("sim: phase %d has no model", i)
		}
		total += ph.Rounds
	}
	if total < 2 {
		return nil, fmt.Errorf("sim: need at least 2 total rounds")
	}
	modelAt := func(round int) *noise.Model {
		r := round
		for _, ph := range phases {
			if r < ph.Rounds {
				return ph.Model
			}
			r -= ph.Rounds
		}
		return phases[len(phases)-1].Model
	}
	// Phased rates are round-dependent, so no single model can serve as a
	// patch base: build without a contribution plan.
	return buildDEM(c, modelAt, total, basis, nil)
}
