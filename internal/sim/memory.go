package sim

import (
	"math"
	"math/rand"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

// Decoder consumes the flagged detectors of one shot and predicts whether
// the logical observable flipped.
type Decoder interface {
	DecodeToObs(flagged []int32) bool
}

// DecoderFactory builds a decoder for a DEM.
type DecoderFactory func(*DEM) (Decoder, error)

// MemoryResult summarizes a Monte-Carlo memory experiment.
type MemoryResult struct {
	Shots    int
	Failures int
	Rounds   int
	// LogicalErrorRate is the per-shot failure probability.
	LogicalErrorRate float64
	// PerRound converts the shot failure rate into a per-round logical
	// error rate via p_shot = (1 - (1-2λ)^R)/2.
	PerRound float64
	// Detectors and Mechanisms describe the DEM size (diagnostics).
	Detectors  int
	Mechanisms int
}

// RunMemory performs a memory experiment: build the DEM for the code under
// the noise model, sample shots, decode each, and count logical failures.
func RunMemory(c *code.Code, model *noise.Model, rounds, shots int, basis lattice.CheckType, factory DecoderFactory, seed int64) (*MemoryResult, error) {
	dem, err := BuildDEM(c, model, rounds, basis)
	if err != nil {
		return nil, err
	}
	dec, err := factory(dem)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(dem)
	rng := rand.New(rand.NewSource(seed))
	failures := 0
	for s := 0; s < shots; s++ {
		flagged, obs := sampler.Shot(rng)
		if dec.DecodeToObs(flagged) != obs {
			failures++
		}
	}
	res := &MemoryResult{
		Shots:      shots,
		Failures:   failures,
		Rounds:     rounds,
		Detectors:  dem.NumDets,
		Mechanisms: len(dem.Mechs),
	}
	res.LogicalErrorRate = float64(failures) / float64(shots)
	res.PerRound = PerRoundRate(res.LogicalErrorRate, rounds)
	return res, nil
}

// RunMemoryMismatched performs a memory experiment in which shots are drawn
// from sampleModel while the decoder is built from decodeModel. This is the
// honest model of an untreated dynamic defect: the hardware error rates
// spike (sampleModel carries the 50% defect region) but the decoder keeps
// using its calibrated nominal priors. Both models share the same circuit,
// so the detector layout is identical.
func RunMemoryMismatched(c *code.Code, sampleModel, decodeModel *noise.Model, rounds, shots int, basis lattice.CheckType, factory DecoderFactory, seed int64) (*MemoryResult, error) {
	sampleDEM, err := BuildDEM(c, sampleModel, rounds, basis)
	if err != nil {
		return nil, err
	}
	decodeDEM, err := BuildDEM(c, decodeModel, rounds, basis)
	if err != nil {
		return nil, err
	}
	if decodeDEM.NumDets != sampleDEM.NumDets {
		return nil, errDetectorMismatch
	}
	dec, err := factory(decodeDEM)
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(sampleDEM)
	rng := rand.New(rand.NewSource(seed))
	failures := 0
	for s := 0; s < shots; s++ {
		flagged, obs := sampler.Shot(rng)
		if dec.DecodeToObs(flagged) != obs {
			failures++
		}
	}
	res := &MemoryResult{
		Shots:      shots,
		Failures:   failures,
		Rounds:     rounds,
		Detectors:  sampleDEM.NumDets,
		Mechanisms: len(sampleDEM.Mechs),
	}
	res.LogicalErrorRate = float64(failures) / float64(shots)
	res.PerRound = PerRoundRate(res.LogicalErrorRate, rounds)
	return res, nil
}

var errDetectorMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string {
	return "sim: sampling and decoding DEMs disagree on detector layout"
}

// RunMemoryBoth runs memory-Z and memory-X and returns the combined
// per-round logical error rate (the union rate of either logical failing).
func RunMemoryBoth(c *code.Code, model *noise.Model, rounds, shots int, factory DecoderFactory, seed int64) (z, x *MemoryResult, combined float64, err error) {
	z, err = RunMemory(c, model, rounds, shots, lattice.ZCheck, factory, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	x, err = RunMemory(c, model, rounds, shots, lattice.XCheck, factory, seed+1)
	if err != nil {
		return nil, nil, 0, err
	}
	combined = 1 - (1-z.PerRound)*(1-x.PerRound)
	return z, x, combined, nil
}

// PerRoundRate inverts p_shot = (1 - (1-2λ)^R)/2 for the per-round logical
// error rate λ, clamping at the fully-random limit.
func PerRoundRate(pShot float64, rounds int) float64 {
	if pShot >= 0.5 {
		return 0.5
	}
	if pShot <= 0 {
		return 0
	}
	return (1 - math.Pow(1-2*pShot, 1/float64(rounds))) / 2
}

// ShotRate is the inverse of PerRoundRate: the failure probability of R
// rounds given a per-round rate.
func ShotRate(perRound float64, rounds int) float64 {
	if perRound >= 0.5 {
		return 0.5
	}
	return (1 - math.Pow(1-2*perRound, float64(rounds))) / 2
}
