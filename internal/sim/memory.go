package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
)

// Decoder consumes the flagged detectors of one shot and predicts whether
// the logical observable flipped.
type Decoder interface {
	DecodeToObs(flagged []int32) bool
}

// DecoderFactory builds a decoder for a DEM.
type DecoderFactory func(*DEM) (Decoder, error)

// TruncationCounter is optionally implemented by decoders that detect
// syndromes they failed to annihilate (partial corrections). The counter
// is cumulative over the decoder instance's lifetime; the engine
// aggregates per-worker deltas into MemoryResult.Truncations so degraded
// decoding surfaces in sweep results instead of being silently swallowed.
type TruncationCounter interface {
	TruncationCount() int
}

// MemoryResult summarizes a Monte-Carlo memory experiment.
type MemoryResult struct {
	Shots    int
	Failures int
	Rounds   int
	// LogicalErrorRate is the per-shot failure probability.
	LogicalErrorRate float64
	// PerRound converts the shot failure rate into a per-round logical
	// error rate via p_shot = (1 - (1-2λ)^R)/2.
	PerRound float64
	// CILow and CIHigh bound LogicalErrorRate with a 95% Wilson score
	// interval; RSE is its achieved relative standard error (+Inf when no
	// failures were observed).
	CILow, CIHigh float64
	RSE           float64
	// EarlyStopped reports that the adaptive stopping rule ended the run
	// before the shot budget was exhausted.
	EarlyStopped bool
	// Detectors and Mechanisms describe the DEM size (diagnostics).
	Detectors  int
	Mechanisms int
	// Truncations counts shots whose syndrome the decoder reported it
	// could not fully annihilate (see TruncationCounter). Always 0 on
	// well-formed decoding graphs. Diagnostic only: unlike the
	// deterministic aggregates above it may include speculative shards
	// discarded by early stopping, so it is not bit-stable across worker
	// counts — but any nonzero value means decoding was degraded.
	Truncations int
}

// RunOptions configures the Monte-Carlo engine path of a memory
// experiment. The zero value of the tuning knobs is always valid: Workers
// <= 0 uses every CPU, TargetRSE == 0 runs the exact Shots budget, and a
// nil Cache uses the shared process-wide DEM cache.
type RunOptions struct {
	Rounds  int
	Basis   lattice.CheckType
	Factory DecoderFactory
	// Shots is the budget: exact when TargetRSE == 0, a cap otherwise.
	Shots int
	// Workers sizes the engine pool; results are bit-identical for any
	// value (see package mc).
	Workers int
	// TargetRSE enables adaptive early stopping at this relative standard
	// error of the failure rate (0 disables).
	TargetRSE float64
	Seed      int64
	// Ctx, when non-nil, cancels the engine run cooperatively at shard
	// boundaries (see mc.Config.Ctx); the run returns an error wrapping
	// mc.ErrCanceled and nothing is committed for the point.
	Ctx context.Context
	// Cache overrides the shared DEM cache (tests); DisableCache forces a
	// fresh build, the pre-engine behavior.
	Cache        *DEMCache
	DisableCache bool
}

// RunMemoryOpts performs a memory experiment on the concurrent engine:
// shots are drawn from sampleModel while the decoder is built from
// decodeModel. Passing decodeModel == nil decodes with the sampling model
// (the matched, defect-aware case); distinct models form the honest model
// of an untreated dynamic defect — the hardware error rates spike but the
// decoder keeps its calibrated nominal priors. Both models share the same
// circuit, so the detector layout is identical.
func RunMemoryOpts(c *code.Code, sampleModel, decodeModel *noise.Model, o RunOptions) (*MemoryResult, error) {
	if o.Factory == nil {
		return nil, fmt.Errorf("sim: RunOptions.Factory is required")
	}
	build := func(m *noise.Model) (*DEM, error) {
		if o.DisableCache {
			return BuildDEM(c, m, o.Rounds, o.Basis)
		}
		cache := o.Cache
		if cache == nil {
			cache = sharedDEMCache
		}
		return cache.BuildDEM(c, m, o.Rounds, o.Basis)
	}
	sampleDEM, err := build(sampleModel)
	if err != nil {
		return nil, err
	}
	decodeDEM := sampleDEM
	if decodeModel != nil && decodeModel != sampleModel {
		decodeDEM, err = build(decodeModel)
		if err != nil {
			return nil, err
		}
		if decodeDEM.NumDets != sampleDEM.NumDets {
			return nil, errDetectorMismatch
		}
	}
	var truncations atomic.Int64
	agg, err := mc.RunBatch(mc.Config{
		Workers:   o.Workers,
		MaxShots:  o.Shots,
		TargetRSE: o.TargetRSE,
		Seed:      o.Seed,
		Ctx:       o.Ctx,
	}, func() (mc.ShotBatchFunc, error) {
		dec, err := o.Factory(decodeDEM)
		if err != nil {
			return nil, err
		}
		tc, _ := dec.(TruncationCounter)
		lastTrunc := 0
		sampler := NewSampler(sampleDEM)
		// Batched hot loop: one closure call per shard. Shot's returned
		// slice is sampler-owned scratch consumed immediately by the
		// decoder, so the whole loop is allocation-free at steady state;
		// the truncation delta is read once per batch, off the hot loop.
		return func(rng *rand.Rand, n int) int {
			failures := 0
			for i := 0; i < n; i++ {
				flagged, obs := sampler.Shot(rng)
				if dec.DecodeToObs(flagged) != obs {
					failures++
				}
			}
			if tc != nil {
				if now := tc.TruncationCount(); now != lastTrunc {
					truncations.Add(int64(now - lastTrunc))
					lastTrunc = now
				}
			}
			return failures
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &MemoryResult{
		Shots:            agg.Shots,
		Failures:         agg.Failures,
		Rounds:           o.Rounds,
		LogicalErrorRate: agg.Rate,
		CILow:            agg.CILow,
		CIHigh:           agg.CIHigh,
		RSE:              agg.RSE,
		EarlyStopped:     agg.EarlyStopped,
		Detectors:        sampleDEM.NumDets,
		Mechanisms:       len(sampleDEM.Mechs),
		Truncations:      int(truncations.Load()),
	}
	res.PerRound = PerRoundRate(res.LogicalErrorRate, o.Rounds)
	return res, nil
}

// RunMemory performs a memory experiment: build the DEM for the code under
// the noise model, sample shots across the engine's worker pool, decode
// each, and count logical failures. It is a thin wrapper over
// RunMemoryOpts with a fixed shot budget.
func RunMemory(c *code.Code, model *noise.Model, rounds, shots int, basis lattice.CheckType, factory DecoderFactory, seed int64) (*MemoryResult, error) {
	return RunMemoryOpts(c, model, nil, RunOptions{
		Rounds: rounds, Basis: basis, Factory: factory, Shots: shots, Seed: seed,
	})
}

// RunMemoryMismatched performs a memory experiment in which shots are drawn
// from sampleModel while the decoder is built from decodeModel — the
// untreated-defect configuration. It is a thin wrapper over RunMemoryOpts.
func RunMemoryMismatched(c *code.Code, sampleModel, decodeModel *noise.Model, rounds, shots int, basis lattice.CheckType, factory DecoderFactory, seed int64) (*MemoryResult, error) {
	return RunMemoryOpts(c, sampleModel, decodeModel, RunOptions{
		Rounds: rounds, Basis: basis, Factory: factory, Shots: shots, Seed: seed,
	})
}

var errDetectorMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string {
	return "sim: sampling and decoding DEMs disagree on detector layout"
}

// RunMemoryBoth runs memory-Z and memory-X and returns the combined
// per-round logical error rate (the union rate of either logical failing).
func RunMemoryBoth(c *code.Code, model *noise.Model, rounds, shots int, factory DecoderFactory, seed int64) (z, x *MemoryResult, combined float64, err error) {
	return RunMemoryBothOpts(c, model, RunOptions{
		Rounds: rounds, Factory: factory, Shots: shots, Seed: seed,
	})
}

// RunMemoryBothOpts is RunMemoryBoth on explicit engine options; o.Basis
// is ignored (both bases run, X at Seed+1).
func RunMemoryBothOpts(c *code.Code, model *noise.Model, o RunOptions) (z, x *MemoryResult, combined float64, err error) {
	o.Basis = lattice.ZCheck
	z, err = RunMemoryOpts(c, model, nil, o)
	if err != nil {
		return nil, nil, 0, err
	}
	o.Basis = lattice.XCheck
	o.Seed++
	x, err = RunMemoryOpts(c, model, nil, o)
	if err != nil {
		return nil, nil, 0, err
	}
	combined = 1 - (1-z.PerRound)*(1-x.PerRound)
	return z, x, combined, nil
}

// PerRoundRate inverts p_shot = (1 - (1-2λ)^R)/2 for the per-round logical
// error rate λ, clamping at the fully-random limit.
func PerRoundRate(pShot float64, rounds int) float64 {
	if pShot >= 0.5 {
		return 0.5
	}
	if pShot <= 0 {
		return 0
	}
	return (1 - math.Pow(1-2*pShot, 1/float64(rounds))) / 2
}

// ShotRate is the inverse of PerRoundRate: the failure probability of R
// rounds given a per-round rate.
func ShotRate(perRound float64, rounds int) float64 {
	if perRound >= 0.5 {
		return 0.5
	}
	return (1 - math.Pow(1-2*perRound, float64(rounds))) / 2
}
