package sim

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

func TestDEMCacheHitsIdenticalConfig(t *testing.T) {
	dc := NewDEMCache(0)
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	a, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configuration must return the identical *DEM")
	}
	if st := dc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", st.Hits, st.Misses)
	}
}

// Structurally identical codes hit even when they are distinct pointers —
// the case sweep pipelines produce by rebuilding specs per configuration.
func TestDEMCacheStructuralKey(t *testing.T) {
	dc := NewDEMCache(0)
	model := noise.Uniform(1e-3)
	a, err := dc.BuildDEM(freshCode(t, 3), model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.BuildDEM(freshCode(t, 3), model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("structurally identical codes must share a cache entry")
	}
	// A second, structurally identical model must hit as well.
	if _, err := dc.BuildDEM(freshCode(t, 3), noise.Uniform(1e-3), 4, lattice.ZCheck); err != nil {
		t.Fatal(err)
	}
	if st := dc.Stats(); st.Hits != 2 {
		t.Errorf("hits = %d, want 2", st.Hits)
	}
}

func TestDEMCacheMissesOnAnyDifference(t *testing.T) {
	dc := NewDEMCache(0)
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	base, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name   string
		c      *code.Code
		m      *noise.Model
		rounds int
		basis  lattice.CheckType
	}{
		{"rounds", c, model, 5, lattice.ZCheck},
		{"basis", c, model, 4, lattice.XCheck},
		{"rate", c, noise.Uniform(2e-3), 4, lattice.ZCheck},
		{"defects", c, model.WithDefects([]lattice.Coord{{Row: 1, Col: 1}}, 0.5), 4, lattice.ZCheck},
		{"correlated", c, model.WithCorrelated(1e-4), 4, lattice.ZCheck},
		{"siterates", c, model.WithSiteRates(map[lattice.Coord]float64{{Row: 1, Col: 1}: 0.25}), 4, lattice.ZCheck},
		{"siterate-value", c, model.WithSiteRates(map[lattice.Coord]float64{{Row: 1, Col: 1}: 0.5}), 4, lattice.ZCheck},
		{"code", freshCode(t, 5), model, 4, lattice.ZCheck},
	}
	for _, v := range variants {
		dem, err := dc.BuildDEM(v.c, v.m, v.rounds, v.basis)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if dem == base {
			t.Errorf("variant %q must not share the base entry", v.name)
		}
	}
	if st := dc.Stats(); st.Hits != 0 || st.Misses != len(variants)+1 {
		t.Errorf("stats = (%d hits, %d misses), want (0, %d)", st.Hits, st.Misses, len(variants)+1)
	}
}

func TestDEMCacheEviction(t *testing.T) {
	dc := NewDEMCache(2)
	c := freshCode(t, 3)
	for rounds := 2; rounds <= 5; rounds++ {
		if _, err := dc.BuildDEM(c, noise.Uniform(1e-3), rounds, lattice.ZCheck); err != nil {
			t.Fatal(err)
		}
	}
	dc.mu.Lock()
	n := len(dc.entries)
	dc.mu.Unlock()
	if n > 2 {
		t.Errorf("cache holds %d entries, limit is 2", n)
	}
}

// TestDEMCacheStatsMonotoneAcrossClears pins the stats contract: a
// wholesale clear resets the working set but never the hit/miss counters,
// and is itself counted — long-running consumers can difference snapshots
// mid-trajectory without losing history to an eviction.
func TestDEMCacheStatsMonotoneAcrossClears(t *testing.T) {
	dc := NewDEMCache(2)
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	build := func(rounds int) *DEM {
		t.Helper()
		dem, err := dc.BuildDEM(c, model, rounds, lattice.ZCheck)
		if err != nil {
			t.Fatal(err)
		}
		return dem
	}
	build(2)
	build(2) // hit
	build(3)
	before := dc.Stats()
	if before.Hits != 1 || before.Misses != 2 || before.Clears != 0 || before.Entries != 2 {
		t.Fatalf("pre-clear stats %+v, want 1 hit / 2 misses / 0 clears / 2 entries", before)
	}
	kept := build(4) // working set at the limit: clears, then inserts
	after := dc.Stats()
	if after.Hits < before.Hits || after.Misses < before.Misses {
		t.Errorf("counters went backwards across a clear: %+v -> %+v", before, after)
	}
	if after.Clears != 1 {
		t.Errorf("clears = %d, want 1", after.Clears)
	}
	if dc.Clears() != 1 {
		t.Errorf("Clears() = %d, want 1", dc.Clears())
	}
	if after.Entries != 1 {
		t.Errorf("post-clear working set %d, want 1", after.Entries)
	}
	if after.Misses != 3 {
		t.Errorf("misses = %d, want 3 (counters survive the clear)", after.Misses)
	}
	// Has tracks the working set, not history: the survivor is present, the
	// cleared entries are not.
	if !dc.Has(kept) {
		t.Error("Has must report the just-inserted DEM")
	}
	old := build(2) // rebuilt after the clear: a fresh pointer
	_ = old
	if dc.Has(nil) {
		t.Error("Has(nil) must be false")
	}
}
