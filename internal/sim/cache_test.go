package sim

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

func TestDEMCacheHitsIdenticalConfig(t *testing.T) {
	dc := NewDEMCache(0)
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	a, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configuration must return the identical *DEM")
	}
	if hits, misses := dc.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// Structurally identical codes hit even when they are distinct pointers —
// the case sweep pipelines produce by rebuilding specs per configuration.
func TestDEMCacheStructuralKey(t *testing.T) {
	dc := NewDEMCache(0)
	model := noise.Uniform(1e-3)
	a, err := dc.BuildDEM(freshCode(t, 3), model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.BuildDEM(freshCode(t, 3), model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("structurally identical codes must share a cache entry")
	}
	// A second, structurally identical model must hit as well.
	if _, err := dc.BuildDEM(freshCode(t, 3), noise.Uniform(1e-3), 4, lattice.ZCheck); err != nil {
		t.Fatal(err)
	}
	if hits, _ := dc.Stats(); hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestDEMCacheMissesOnAnyDifference(t *testing.T) {
	dc := NewDEMCache(0)
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	base, err := dc.BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name   string
		c      *code.Code
		m      *noise.Model
		rounds int
		basis  lattice.CheckType
	}{
		{"rounds", c, model, 5, lattice.ZCheck},
		{"basis", c, model, 4, lattice.XCheck},
		{"rate", c, noise.Uniform(2e-3), 4, lattice.ZCheck},
		{"defects", c, model.WithDefects([]lattice.Coord{{Row: 1, Col: 1}}, 0.5), 4, lattice.ZCheck},
		{"correlated", c, model.WithCorrelated(1e-4), 4, lattice.ZCheck},
		{"siterates", c, model.WithSiteRates(map[lattice.Coord]float64{{Row: 1, Col: 1}: 0.25}), 4, lattice.ZCheck},
		{"siterate-value", c, model.WithSiteRates(map[lattice.Coord]float64{{Row: 1, Col: 1}: 0.5}), 4, lattice.ZCheck},
		{"code", freshCode(t, 5), model, 4, lattice.ZCheck},
	}
	for _, v := range variants {
		dem, err := dc.BuildDEM(v.c, v.m, v.rounds, v.basis)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if dem == base {
			t.Errorf("variant %q must not share the base entry", v.name)
		}
	}
	if hits, misses := dc.Stats(); hits != 0 || misses != len(variants)+1 {
		t.Errorf("stats = (%d hits, %d misses), want (0, %d)", hits, misses, len(variants)+1)
	}
}

func TestDEMCacheEviction(t *testing.T) {
	dc := NewDEMCache(2)
	c := freshCode(t, 3)
	for rounds := 2; rounds <= 5; rounds++ {
		if _, err := dc.BuildDEM(c, noise.Uniform(1e-3), rounds, lattice.ZCheck); err != nil {
			t.Fatal(err)
		}
	}
	dc.mu.Lock()
	n := len(dc.entries)
	dc.mu.Unlock()
	if n > 2 {
		t.Errorf("cache holds %d entries, limit is 2", n)
	}
}
