// Package sim builds detector error models (DEMs) for memory experiments on
// (possibly deformed) surface codes and samples them efficiently.
//
// The approach mirrors Stim's: the syndrome-extraction circuit is
// materialized once, every elementary fault location is propagated through
// the Clifford circuit as a Pauli frame, and the resulting set of flipped
// detectors (parity comparisons that are deterministic in the noiseless
// circuit) plus the logical-observable flip is recorded as a mechanism.
// Identical mechanisms are merged. Sampling then draws each mechanism as an
// independent Bernoulli event and XORs signatures — orders of magnitude
// faster than stepping the circuit per shot.
package sim

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"time"

	"surfdeformer/internal/circuit"
	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
)

// DEM construction metrics: every build (cached or not upstream) counts
// here with its wall-clock cost. Build time is observation-only and never
// flows into results.
var (
	obsDEMBuilds  = obs.Default().Counter("sim.dem.builds")
	obsDEMBuildNs = obs.Default().Histogram("sim.dem.build_ns")
)

// Mechanism is one independent error source: with probability P it flips
// the listed detectors and, if Obs, the logical observable.
type Mechanism struct {
	P    float64
	Dets []int32 // sorted detector IDs
	Obs  bool
}

// DEM is a detector error model for one memory experiment.
type DEM struct {
	NumDets int
	Mechs   []Mechanism

	// DetRound and DetObs give, per detector, the round of its later
	// measurement and the observable (schedule index) it tracks — used by
	// decoders for diagnostics and by tests.
	DetRound []int32
	DetObs   []int32

	// Observables maps DetObs indices back to hardware locations; the
	// defect detector uses it to turn flagged observables into regions.
	Observables []ObsInfo

	// Decomposed counts mechanisms whose signature touched more than two
	// detectors and had to be split for the matching decoder.
	rawMechs int

	// plan, when non-nil, records how each mechanism's probability was
	// folded from elementary fault contributions, enabling Patcher.Patch to
	// derive site-rate variants of this DEM without re-running the fault
	// enumeration (see patch.go). Recorded only for builds whose model can
	// serve as a patch base.
	plan *demPlan
}

// RawMechanisms returns the number of fault components enumerated before
// merging.
func (d *DEM) RawMechanisms() int { return d.rawMechs }

// DetectorFireRates returns each detector's marginal firing probability
// under the DEM: mechanisms fire independently, so detector d fires with
// probability ½(1 − ∏_{m∋d}(1 − 2·P_m)) — the XOR of independent Bernoulli
// draws. The defect detector's rate estimator uses these as the nominal
// baselines it measures elevation against (detect.EstimateRates).
func (d *DEM) DetectorFireRates() []float64 {
	rates := make([]float64, d.NumDets)
	for i := range rates {
		rates[i] = 1
	}
	for _, m := range d.Mechs {
		f := 1 - 2*m.P
		for _, det := range m.Dets {
			rates[det] *= f
		}
	}
	for i, prod := range rates {
		rates[i] = 0.5 * (1 - prod)
	}
	return rates
}

// op kinds of the flattened circuit.
type opKind uint8

const (
	opReset opKind = iota
	opCX
	opMeas
)

type flatOp struct {
	kind  opKind
	basis lattice.CheckType
	a, b  int32 // qubit indices; b used by CX only
	rec   int32 // record index for opMeas
	round int16 // round the op belongs to (for phased noise models)
}

// ObsInfo describes one tracked observable for consumers that correlate
// detection events back to hardware locations (the defect detector).
type ObsInfo struct {
	Type     lattice.CheckType
	Support  []lattice.Coord
	Ancillas []lattice.Coord
}

// mergedMech accumulates one signature's merged probability during fault
// enumeration, along with the sorted detector list (kept so emission never
// re-parses the key) and, for patch-base builds, the ordered elementary
// contributions whose XOR-composition produced the probability.
type mergedMech struct {
	p        float64
	dets     []int32
	obs      bool
	contribs []planContrib
}

// BuildDEM constructs the detector error model of a memory experiment in
// the given basis (lattice.ZCheck = memory-Z protecting the logical Z,
// exercising Z-type detectors against X errors) over the given number of
// syndrome-extraction rounds.
func BuildDEM(c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) (*DEM, error) {
	return buildDEM(c, func(int) *noise.Model { return model }, rounds, basis, patchableBase(model))
}

// patchableBase reports whether a constant-model build from m can serve as
// a patch base, returning m itself when it can. A base must carry no
// per-site overrides (so every enumerated contribution evaluates to one of
// the positive scalar rates, and any site-rate variant can only re-weight —
// never create or erase — contributions) and strictly positive scalar rates
// (so the recorded contribution set is exactly the positive-probability
// set under every such variant).
func patchableBase(m *noise.Model) *noise.Model {
	if len(m.SiteRates) == 0 && len(m.Defective) == 0 && m.P1 > 0 && m.P2 > 0 && m.PM > 0 {
		return m
	}
	return nil
}

// buildDEM is the shared implementation; modelAt selects the noise model of
// each round (constant for BuildDEM, phase-dependent for BuildPhasedDEM).
// When record is non-nil the build additionally records the per-mechanism
// contribution plan keyed to that base model (patch.go); phased builds pass
// nil — their rates are round-dependent and cannot be replayed from a
// single model.
func buildDEM(c *code.Code, modelAt func(int) *noise.Model, rounds int, basis lattice.CheckType, record *noise.Model) (*DEM, error) {
	if rounds < 2 {
		return nil, fmt.Errorf("sim: need at least 2 rounds, got %d", rounds)
	}
	start := time.Now()
	defer func() {
		obsDEMBuilds.Inc()
		obsDEMBuildNs.Observe(time.Since(start).Nanoseconds())
	}()
	sched, err := circuit.NewSchedule(c)
	if err != nil {
		return nil, err
	}

	// Dense qubit indexing: data qubits first, then ancillas.
	dataQubits := c.DataQubits()
	qIdx := map[lattice.Coord]int32{}
	var coords []lattice.Coord
	for _, q := range dataQubits {
		qIdx[q] = int32(len(coords))
		coords = append(coords, q)
	}
	for _, op := range sched.Ops {
		if op.Direct {
			continue
		}
		if _, ok := qIdx[op.Ancilla]; !ok {
			qIdx[op.Ancilla] = int32(len(coords))
			coords = append(coords, op.Ancilla)
		}
	}

	// Materialize the flat circuit.
	var ops []flatOp
	nRec := int32(0)
	recOf := make(map[[2]int]int32) // (round, slot) -> record
	// Data initialization in the memory basis (reset noise applies).
	for _, q := range dataQubits {
		ops = append(ops, flatOp{kind: opReset, basis: basis, a: qIdx[q], round: 0})
	}
	roundStart := make([]int, rounds)
	for r := 0; r < rounds; r++ {
		roundStart[r] = len(ops)
		var live []circuit.MeasuredOp
		for _, m := range sched.Ops {
			if m.MeasuredThisRound(r) {
				live = append(live, m)
			}
		}
		for _, m := range live {
			if m.Direct {
				continue
			}
			ops = append(ops, flatOp{kind: opReset, basis: m.Basis, a: qIdx[m.Ancilla], round: int16(r)})
		}
		maxSteps := 0
		for _, m := range live {
			if !m.Direct && len(m.Data) > maxSteps {
				maxSteps = len(m.Data)
			}
		}
		for t := 0; t < maxSteps; t++ {
			for _, m := range live {
				if m.Direct || t >= len(m.Data) {
					continue
				}
				anc, dat := qIdx[m.Ancilla], qIdx[m.Data[t]]
				if m.Basis == lattice.XCheck {
					ops = append(ops, flatOp{kind: opCX, a: anc, b: dat, round: int16(r)}) // anc controls
				} else {
					ops = append(ops, flatOp{kind: opCX, a: dat, b: anc, round: int16(r)}) // data controls
				}
			}
		}
		for _, m := range live {
			rec := nRec
			nRec++
			recOf[[2]int{r, m.Slot}] = rec
			target := m.Ancilla
			if m.Direct {
				target = m.Data[0]
			}
			ops = append(ops, flatOp{kind: opMeas, basis: m.Basis, a: qIdx[target], rec: rec, round: int16(r)})
		}
	}
	// Transversal readout of all data qubits in the memory basis.
	readoutRec := make(map[lattice.Coord]int32, len(dataQubits))
	for _, q := range dataQubits {
		rec := nRec
		nRec++
		readoutRec[q] = rec
		ops = append(ops, flatOp{kind: opMeas, basis: basis, a: qIdx[q], rec: rec, round: int16(rounds - 1)})
	}

	// Detector layout. Each record participates in at most two detectors.
	dem := &DEM{}
	recDets := make([][]int32, nRec)
	addDet := func(round int, obsIdx int, recs ...int32) {
		id := int32(dem.NumDets)
		dem.NumDets++
		dem.DetRound = append(dem.DetRound, int32(round))
		dem.DetObs = append(dem.DetObs, int32(obsIdx))
		for _, r := range recs {
			recDets[r] = append(recDets[r], id)
		}
	}
	for _, obs := range sched.Observables {
		info := ObsInfo{Type: obs.Type, Support: obs.Support}
		for _, slot := range obs.Slots {
			info.Ancillas = append(info.Ancillas, sched.Ops[slot].Ancilla)
		}
		dem.Observables = append(dem.Observables, info)
	}
	for oi, obs := range sched.Observables {
		if obs.Type != basis {
			continue // opposite-type checks catch the other error species
		}
		var avail []int
		for r := 0; r < rounds; r++ {
			if obs.AvailableThisRound(r) {
				avail = append(avail, r)
			}
		}
		if len(avail) == 0 {
			continue
		}
		valueRecs := func(r int) []int32 {
			var out []int32
			for _, slot := range obs.Slots {
				out = append(out, recOf[[2]int{r, slot}])
			}
			return out
		}
		// Initial detector: first value vs the deterministic init.
		addDet(avail[0], oi, valueRecs(avail[0])...)
		// Consecutive comparisons.
		for i := 1; i < len(avail); i++ {
			recs := append(valueRecs(avail[i-1]), valueRecs(avail[i])...)
			addDet(avail[i], oi, recs...)
		}
		// Final detector: reconstruction from data readout vs last value.
		last := valueRecs(avail[len(avail)-1])
		for _, q := range obs.Support {
			last = append(last, readoutRec[q])
		}
		addDet(rounds, oi, last...)
	}

	// Logical observable: readout parity over the logical support.
	logical := c.LogicalZ()
	if basis == lattice.XCheck {
		logical = c.LogicalX()
	}
	obsRec := make([]bool, nRec)
	for _, q := range logical.Support() {
		rec, ok := readoutRec[q]
		if !ok {
			return nil, fmt.Errorf("sim: logical support qubit %v missing from readout", q)
		}
		obsRec[rec] = true
	}

	// Fault enumeration. Signatures key on the sorted detector list plus the
	// observable flag, serialized as "<det>,<det>,...,\x00<obs>" — the NUL
	// separator sorts below every digit, so lexicographic key order
	// reproduces the (dets string, obs) emission order exactly, which fixes
	// the Mechs order the samplers' draw streams depend on.
	merged := map[string]*mergedMech{}
	var keyBuf []byte
	addMech := func(p float64, dets []int32, obs bool, contrib planContrib) {
		if p <= 0 || (len(dets) == 0 && !obs) {
			return
		}
		dem.rawMechs++
		slices.Sort(dets)
		keyBuf = keyBuf[:0]
		for _, d := range dets {
			keyBuf = strconv.AppendInt(keyBuf, int64(d), 10)
			keyBuf = append(keyBuf, ',')
		}
		keyBuf = append(keyBuf, 0)
		if obs {
			keyBuf = append(keyBuf, 1)
		} else {
			keyBuf = append(keyBuf, 0)
		}
		m, ok := merged[string(keyBuf)]
		if !ok {
			m = &mergedMech{dets: append([]int32(nil), dets...), obs: obs}
			merged[string(keyBuf)] = m
		}
		m.p = m.p + p - 2*m.p*p
		if record != nil {
			m.contribs = append(m.contribs, contrib)
		}
	}

	// propagate seeds a single-qubit Pauli frame right after op index start
	// and returns the flipped detectors (sorted) and the observable flip.
	// Scratch is dense: a per-qubit frame array with a touched list and a
	// live-frame counter (the enumeration calls this thousands of times per
	// build, and the former map-based scratch dominated build time).
	frame := make([]uint8, len(coords))
	touchedQ := make([]int32, 0, len(coords))
	live := 0
	setQ := func(q int32, v uint8) {
		old := frame[q]
		if old == v {
			return
		}
		if old == 0 {
			live++
			touchedQ = append(touchedQ, q)
		} else if v == 0 {
			live--
		}
		frame[q] = v
	}
	detCnt := make([]int32, dem.NumDets)
	touchedD := make([]int32, 0, 64)
	propagate := func(start int, seedQ int32, seedV uint8) ([]int32, bool) {
		for _, q := range touchedQ {
			frame[q] = 0
		}
		touchedQ = touchedQ[:0]
		live = 0
		if seedV != 0 {
			setQ(seedQ, seedV)
		}
		obsFlip := false
		for i := start; i < len(ops) && live > 0; i++ {
			op := ops[i]
			switch op.kind {
			case opReset:
				setQ(op.a, 0)
			case opCX:
				fa, fb := frame[op.a], frame[op.b]
				nb := fb ^ (fa & 1) // X propagates control -> target
				na := fa ^ (fb & 2) // Z propagates target -> control
				setQ(op.a, na)
				setQ(op.b, nb)
			case opMeas:
				f := frame[op.a]
				flip := false
				if op.basis == lattice.ZCheck {
					flip = f&1 != 0 // X frame flips a Z measurement
				} else {
					flip = f&2 != 0 // Z frame flips an X measurement
				}
				if flip {
					for _, d := range recDets[op.rec] {
						if detCnt[d] == 0 {
							touchedD = append(touchedD, d)
						}
						detCnt[d]++
					}
					if obsRec[op.rec] {
						obsFlip = !obsFlip
					}
				}
			}
		}
		var dets []int32
		for _, d := range touchedD {
			if detCnt[d]%2 == 1 {
				dets = append(dets, d)
			}
			detCnt[d] = 0
		}
		touchedD = touchedD[:0]
		slices.Sort(dets)
		return dets, obsFlip
	}

	flipRecord := func(rec int32) ([]int32, bool) {
		var dets []int32
		dets = append(dets, recDets[rec]...)
		return dets, obsRec[rec]
	}

	// xorSig is the symmetric difference of two sorted detector lists.
	xorSig := func(a, b []int32, oa, ob bool) ([]int32, bool) {
		var out []int32
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				out = append(out, a[i])
				i++
			case b[j] < a[i]:
				out = append(out, b[j])
				j++
			default:
				i++
				j++
			}
		}
		out = append(out, a[i:]...)
		out = append(out, b[j:]...)
		return out, oa != ob
	}

	for i, op := range ops {
		switch op.kind {
		case opReset:
			// Pauli-X channel on reset: the state flips to the orthogonal
			// basis state (X after |0>, Z after |+>).
			p := modelAt(int(op.round)).RateM(coords[op.a])
			var seed uint8 = 1
			if op.basis == lattice.XCheck {
				seed = 2
			}
			dets, obs := propagate(i+1, op.a, seed)
			addMech(p, dets, obs, planContrib{kind: contribMeasReset, a: op.a})
		case opMeas:
			// Classical measurement flip.
			p := modelAt(int(op.round)).RateM(coords[op.a])
			dets, obs := flipRecord(op.rec)
			addMech(p, dets, obs, planContrib{kind: contribMeasReset, a: op.a})
		case opCX:
			model := modelAt(int(op.round))
			p2 := model.Rate2(coords[op.a], coords[op.b])
			// Propagate the four generator seeds; compose the 15 Paulis.
			type comp struct {
				dets []int32
				obs  bool
			}
			gen := [4]comp{}
			seeds := [4]struct {
				q int32
				v uint8
			}{
				{op.a, 1}, {op.b, 1}, {op.a, 2}, {op.b, 2},
			}
			for gi, sd := range seeds {
				d, o := propagate(i+1, sd.q, sd.v)
				gen[gi] = comp{d, o}
			}
			for mask := 1; mask < 16; mask++ {
				var dets []int32
				obs := false
				for gi := 0; gi < 4; gi++ {
					if mask&(1<<gi) != 0 {
						dets, obs = xorSig(dets, gen[gi].dets, obs, gen[gi].obs)
					}
				}
				addMech(p2/15, dets, obs, planContrib{kind: contribCX, a: op.a, b: op.b})
			}
			if model.PCorrelated > 0 {
				// Correlated X⊗X and Z⊗Z with equal shares.
				dxx, oxx := xorSig(gen[0].dets, gen[1].dets, gen[0].obs, gen[1].obs)
				addMech(model.PCorrelated/2, dxx, oxx, planContrib{kind: contribCorr})
				dzz, ozz := xorSig(gen[2].dets, gen[3].dets, gen[2].obs, gen[3].obs)
				addMech(model.PCorrelated/2, dzz, ozz, planContrib{kind: contribCorr})
			}
		}
	}

	// Idle single-qubit depolarizing on every data qubit once per round
	// (the identity gate while ancillas are measured); this is also where
	// 50%-rate defect regions act when their checks have been disabled.
	for r := 0; r < rounds; r++ {
		start := roundStart[r]
		for _, q := range dataQubits {
			p1 := modelAt(r).Rate1(q)
			if p1 <= 0 {
				continue
			}
			qi := qIdx[q]
			dx, ox := propagate(start, qi, 1)
			dz, oz := propagate(start, qi, 2)
			dy, oy := xorSig(dx, dz, ox, oz)
			addMech(p1/3, dx, ox, planContrib{kind: contribIdle, a: qi})
			addMech(p1/3, dz, oz, planContrib{kind: contribIdle, a: qi})
			addMech(p1/3, dy, oy, planContrib{kind: contribIdle, a: qi})
		}
	}

	// Emit merged mechanisms deterministically (lexicographic key order —
	// see the key-format comment above).
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dem.Mechs = make([]Mechanism, 0, len(keys))
	for _, k := range keys {
		m := merged[k]
		dem.Mechs = append(dem.Mechs, Mechanism{P: m.p, Dets: m.dets, Obs: m.obs})
	}

	if record != nil {
		core := &planCore{coords: coords, qIdx: qIdx}
		core.mechOff = make([]int32, len(keys)+1)
		total := 0
		for _, k := range keys {
			total += len(merged[k].contribs)
		}
		core.contribs = make([]planContrib, 0, total)
		for mi, k := range keys {
			core.contribs = append(core.contribs, merged[k].contribs...)
			core.mechOff[mi+1] = int32(len(core.contribs))
		}
		core.buildSiteIndex()
		dem.plan = &demPlan{core: core, base: record, codeFP: codeStructFingerprint(c)}
	}
	return dem, nil
}
