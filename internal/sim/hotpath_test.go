package sim

import (
	"math/rand"
	"slices"
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

// TestShotZeroAllocs enforces the sampler's allocation contract: Shot
// performs zero heap allocations per call. Scratch is preallocated at
// worst-case bounds in NewSampler, so this holds from the first shot.
func TestShotZeroAllocs(t *testing.T) {
	c := freshCode(t, 5)
	dem, err := BuildDEM(c, noise.Uniform(5e-3), 5, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(dem)
	rng := rand.New(rand.NewSource(31))
	sink := 0
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			flagged, _ := s.Shot(rng)
			sink += len(flagged)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("Shot allocates %.1f per 16-shot run, want 0", allocs)
	}
}

// TestShotScratchReuse documents the ownership contract: the slice
// returned by Shot is sampler-owned scratch, overwritten by the next call
// — and reusing the sampler must not change what is sampled.
func TestShotScratchReuse(t *testing.T) {
	c := freshCode(t, 3)
	dem, err := BuildDEM(c, noise.Uniform(1e-2), 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed through a fresh sampler and a reused one: identical
	// shot sequences (cloned eagerly vs re-sampled).
	s1 := NewSampler(dem)
	rng1 := rand.New(rand.NewSource(7))
	var want [][]int32
	for i := 0; i < 200; i++ {
		flagged, _ := s1.Shot(rng1)
		want = append(want, slices.Clone(flagged))
	}
	s2 := NewSampler(dem)
	rng2 := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		flagged, _ := s2.Shot(rng2)
		if !slices.Equal(flagged, want[i]) {
			t.Fatalf("shot %d: %v != %v", i, flagged, want[i])
		}
	}
}

// truncDecoder fakes a decoder that reports every shot as truncated,
// exercising the TruncationCounter aggregation path of RunMemoryOpts.
type truncDecoder struct{ n int }

func (d *truncDecoder) DecodeToObs([]int32) bool { d.n++; return false }
func (d *truncDecoder) TruncationCount() int     { return d.n }

// TestTruncationsSurfaceInMemoryResult checks that per-worker decoder
// truncation counts aggregate into MemoryResult.Truncations, and that a
// healthy union-find run reports zero.
func TestTruncationsSurfaceInMemoryResult(t *testing.T) {
	c := freshCode(t, 3)
	model := noise.Uniform(2e-3)
	const shots = 3000
	res, err := RunMemoryOpts(c, model, nil, RunOptions{
		Rounds: 3, Basis: lattice.ZCheck, Shots: shots, Workers: 2, Seed: 1,
		Factory: func(*DEM) (Decoder, error) { return &truncDecoder{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncations != shots {
		t.Errorf("Truncations = %d, want %d (every shot truncates)", res.Truncations, shots)
	}
	// A decoder without the optional interface reports zero.
	plain, err := RunMemoryOpts(c, model, nil, RunOptions{
		Rounds: 3, Basis: lattice.ZCheck, Shots: shots, Workers: 2, Seed: 1,
		Factory: func(*DEM) (Decoder, error) {
			d := &truncDecoder{}
			return struct{ Decoder }{d}, nil // hide TruncationCount
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Truncations != 0 {
		t.Errorf("Truncations = %d for a decoder without the interface, want 0", plain.Truncations)
	}
}
