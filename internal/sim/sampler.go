package sim

import (
	"math"
	"math/rand"
	"slices"
)

// Sampler draws shots from a DEM. Each mechanism fires independently with
// its probability; a shot is the XOR of the fired signatures. Sampling uses
// geometric skipping against the maximum mechanism probability, so the cost
// per shot is proportional to the number of candidate firings rather than
// the mechanism count.
type Sampler struct {
	dem     *DEM
	pmax    float64
	logQ    float64 // log(1 - pmax)
	accum   []int   // detector hit parity scratch
	fired   []int   // fired mechanism scratch, reused across shots
	flagged []int32 // flagged detector scratch, reused across shots
}

// NewSampler prepares a sampler for the DEM. Scratch is preallocated at
// worst-case bounds (every mechanism fires, every detector flags) so Shot
// never allocates.
func NewSampler(dem *DEM) *Sampler {
	pmax := 0.0
	for _, m := range dem.Mechs {
		if m.P > pmax {
			pmax = m.P
		}
	}
	if pmax >= 1 {
		pmax = 1 - 1e-12
	}
	return &Sampler{
		dem:     dem,
		pmax:    pmax,
		logQ:    math.Log1p(-pmax),
		accum:   make([]int, dem.NumDets),
		fired:   make([]int, 0, len(dem.Mechs)),
		flagged: make([]int32, 0, dem.NumDets),
	}
}

// Shot samples one experiment: the flagged detectors (sorted ascending) and
// whether the logical observable flipped.
//
// The returned slice is scratch owned by the sampler and is valid only
// until the next Shot call; clone it to retain it across shots.
func (s *Sampler) Shot(rng *rand.Rand) (flagged []int32, obs bool) {
	if s.pmax <= 0 {
		return nil, false
	}
	mechs := s.dem.Mechs
	fired := s.fired[:0]
	s.flagged = s.flagged[:0]
	i := 0
	for {
		// Geometric skip: next candidate index under rate pmax.
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		skip := int(math.Log(u) / s.logQ)
		i += skip
		if i >= len(mechs) {
			break
		}
		// Thinning: accept with p_i / pmax.
		if rng.Float64()*s.pmax < mechs[i].P {
			fired = append(fired, i)
		}
		i++
	}
	for _, mi := range fired {
		m := mechs[mi]
		for _, d := range m.Dets {
			s.accum[d] ^= 1
		}
		if m.Obs {
			obs = !obs
		}
	}
	for _, mi := range fired {
		for _, d := range s.dem.Mechs[mi].Dets {
			if s.accum[d] == 1 {
				s.flagged = append(s.flagged, d)
				s.accum[d] = 2 // mark emitted
			}
		}
	}
	// Reset scratch.
	for _, mi := range fired {
		for _, d := range s.dem.Mechs[mi].Dets {
			s.accum[d] = 0
		}
	}
	s.fired = fired
	slices.Sort(s.flagged)
	return s.flagged, obs
}

// ExpectedFirings returns the mean number of mechanism firings per shot —
// a quick sanity statistic used by tests and diagnostics.
func (s *Sampler) ExpectedFirings() float64 {
	sum := 0.0
	for _, m := range s.dem.Mechs {
		sum += m.P
	}
	return sum
}
