package sim

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
)

// Process-wide cache metrics, aggregated across every DEMCache instance
// (shared and per-trajectory hot caches alike); the per-instance ints in
// CacheStats stay authoritative for instance-local consumers like demMemo.
var (
	obsCacheHits   = obs.Default().Counter("sim.dem_cache.hits")
	obsCacheMisses = obs.Default().Counter("sim.dem_cache.misses")
	obsCacheClears = obs.Default().Counter("sim.dem_cache.clears")
)

// DEMCache memoizes BuildDEM results keyed by (code fingerprint, noise
// model fingerprint, rounds, basis). Sweep pipelines hit the same handful
// of configurations thousands of times — per-policy baselines, the nominal
// decode-side model of every mismatched run, repeated (d, p) grid points —
// and DEM construction dominates their setup cost. Keys are full
// serializations, not hashes, so distinct configurations can never
// collide. Identical configurations return the identical *DEM pointer,
// which downstream decoder-graph caches key on.
//
// The cache is safe for concurrent use. When it grows past its entry
// limit it is cleared wholesale: sweeps revisit a small working set, so a
// full reset costs one rebuild per live configuration and keeps the
// implementation free of LRU bookkeeping.
type DEMCache struct {
	mu      sync.Mutex
	entries map[string]*DEM
	// byPtr mirrors entries keyed by DEM identity so Has is O(1) — memo
	// layers call it per memoized entry after a clear, and a linear scan
	// under this mutex would serialize every concurrent trajectory on it.
	byPtr  map[*DEM]struct{}
	limit  int
	hits   int
	misses int
	clears int
}

// NewDEMCache returns an empty cache bounded at the given number of
// entries (<= 0 selects a default of 256).
func NewDEMCache(limit int) *DEMCache {
	if limit <= 0 {
		limit = 256
	}
	return &DEMCache{entries: make(map[string]*DEM), byPtr: make(map[*DEM]struct{}), limit: limit}
}

var sharedDEMCache = NewDEMCache(0)

// SharedDEMCache returns the process-wide cache used by the Monte-Carlo
// engine paths (RunMemoryOpts and everything layered on it).
func SharedDEMCache() *DEMCache { return sharedDEMCache }

// BuildDEM returns the cached DEM for the configuration, building and
// inserting it on first use.
func (dc *DEMCache) BuildDEM(c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) (*DEM, error) {
	dem, _, err := dc.BuildDEMPatched(nil, nil, c, model, rounds, basis)
	return dem, err
}

// BuildDEMKeyed is BuildDEM plus the canonical cache key of the
// configuration. The key is a full serialization (never a hash), so it
// doubles as a content identity: two DEMs obtained under the same key are
// value-identical even when a wholesale clear or a build race handed out
// different pointers. The trajectory engine keys its per-DEM memo on it.
func (dc *DEMCache) BuildDEMKeyed(c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) (*DEM, string, error) {
	return dc.BuildDEMPatched(nil, nil, c, model, rounds, basis)
}

// BuildDEMPatched is BuildDEMKeyed with an incremental fast path: on a
// cache miss, when pt and base are non-nil and base's contribution plan
// covers model (a pure site-rate variant of base's model), the DEM is
// derived by pt.Patch instead of a full BuildDEM — value-identical output
// (pinned by the equivalence suite) at a fraction of the cost. The caller
// must pass a base built for the same (code, rounds, basis); the patch only
// re-rates it. Hit/miss accounting is the same either way: a patch fill is
// still a miss.
func (dc *DEMCache) BuildDEMPatched(pt *Patcher, base *DEM, c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) (*DEM, string, error) {
	key := demCacheKey(c, model, rounds, basis)
	dc.mu.Lock()
	if dem, ok := dc.entries[key]; ok {
		dc.hits++
		dc.mu.Unlock()
		obsCacheHits.Inc()
		return dem, key, nil
	}
	dc.mu.Unlock()
	var dem *DEM
	var ok bool
	// Patch only when base was enumerated for this exact code structure: a
	// bandage (super-stabilizer merge) or removal changes the mechanism set
	// itself, and a patch would silently re-rate the stale set. Fingerprint
	// mismatch → full build.
	if pt != nil && base != nil && base.plan != nil && base.plan.codeFP == codeStructFingerprint(c) {
		dem, ok = pt.Patch(base, model)
	}
	if !ok {
		var err error
		dem, err = BuildDEM(c, model, rounds, basis)
		if err != nil {
			return nil, "", err
		}
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if existing, ok := dc.entries[key]; ok {
		// Lost a build race: adopt the first pointer so pointer-keyed
		// consumers (the decoder graph cache) stay coherent.
		dc.hits++
		obsCacheHits.Inc()
		return existing, key, nil
	}
	if len(dc.entries) >= dc.limit {
		dc.entries = make(map[string]*DEM)
		dc.byPtr = make(map[*DEM]struct{})
		dc.clears++
		obsCacheClears.Inc()
	}
	dc.entries[key] = dem
	dc.byPtr[dem] = struct{}{}
	dc.misses++
	obsCacheMisses.Inc()
	return dem, key, nil
}

// CacheStats is a point-in-time snapshot of a DEMCache. Hits, Misses and
// Clears are monotone over the cache's lifetime — a wholesale clear resets
// the working set (Entries) but never the counters, so long-running
// consumers (the trajectory engine, surfdeform -stats) can difference
// snapshots across clears without losing history.
type CacheStats struct {
	// Hits and Misses count BuildDEM calls served from / inserted into the
	// cache.
	Hits, Misses int
	// Clears counts wholesale evictions (the working set grew past the
	// entry limit and was reset).
	Clears int
	// Entries is the current working-set size.
	Entries int
}

// Stats reports the cache's monotone counters and current working-set size.
func (dc *DEMCache) Stats() CacheStats {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return CacheStats{Hits: dc.hits, Misses: dc.misses, Clears: dc.clears, Entries: len(dc.entries)}
}

// Clears reports how many wholesale evictions the cache has performed.
// Pointer-keyed memo maps layered on the cache (per-DEM decoders and
// samplers) watch this to learn when cached *DEM identities may have been
// replaced and their entries need pruning.
func (dc *DEMCache) Clears() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.clears
}

// Has reports whether the exact DEM pointer is currently cached (O(1);
// memo-eviction consumers call it per memoized entry after a clear).
func (dc *DEMCache) Has(dem *DEM) bool {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	_, ok := dc.byPtr[dem]
	return ok
}

// demCacheKey serializes everything BuildDEM's output depends on: the
// structural content of the code (qubits, stabilizers, gauges, logicals)
// and of the noise model (rates plus the defective set).
func demCacheKey(c *code.Code, model *noise.Model, rounds int, basis lattice.CheckType) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "r%d|b%d|", rounds, basis)
	writeCodeFingerprint(&sb, c)
	sb.WriteByte('|')
	writeModelFingerprint(&sb, model)
	return sb.String()
}

// codeStructFingerprint is the code portion of demCacheKey on its own: the
// full structural serialization (qubits, stabilizers with super-stabilizer
// membership, gauges, logicals) that identifies a code for patch-base reuse.
func codeStructFingerprint(c *code.Code) string {
	var sb strings.Builder
	writeCodeFingerprint(&sb, c)
	return sb.String()
}

func writeCodeFingerprint(sb *strings.Builder, c *code.Code) {
	sb.WriteString("D:")
	for _, q := range c.DataQubits() {
		fmt.Fprintf(sb, "%d.%d,", q.Row, q.Col)
	}
	sb.WriteString("S:")
	for _, q := range c.SyndromeQubits() {
		fmt.Fprintf(sb, "%d.%d,", q.Row, q.Col)
	}
	sb.WriteString("stabs:")
	for _, s := range c.Stabs() {
		fmt.Fprintf(sb, "{%s@%d.%d/%v/%v}", s.Op.String(), s.Ancilla.Row, s.Ancilla.Col, s.Direct, s.MemberIDs)
	}
	sb.WriteString("gauges:")
	for _, g := range c.Gauges() {
		fmt.Fprintf(sb, "{%s@%d.%d/%v}", g.Op.String(), g.Ancilla.Row, g.Ancilla.Col, g.Direct)
	}
	fmt.Fprintf(sb, "LX:%s,LZ:%s", c.LogicalX().String(), c.LogicalZ().String())
}

func writeModelFingerprint(sb *strings.Builder, m *noise.Model) {
	fmt.Fprintf(sb, "p1:%g,p2:%g,pm:%g,pc:%g,dr:%g,def:", m.P1, m.P2, m.PM, m.PCorrelated, m.DefectRate)
	var defs []lattice.Coord
	for q := range m.Defective {
		defs = append(defs, q)
	}
	lattice.SortCoords(defs)
	for _, q := range defs {
		fmt.Fprintf(sb, "%d.%d,", q.Row, q.Col)
	}
	if len(m.SiteRates) > 0 {
		sb.WriteString("sr:")
		var sites []lattice.Coord
		for q := range m.SiteRates {
			sites = append(sites, q)
		}
		lattice.SortCoords(sites)
		for _, q := range sites {
			// Exact (hex-float) rate encoding: site rates are products of
			// quantized power-of-two multipliers and physical rates, and the
			// key must never identify two models whose rates differ in any
			// bit — nor split one overlay into two keys by formatting.
			fmt.Fprintf(sb, "%d.%d=", q.Row, q.Col)
			sb.WriteString(strconv.FormatFloat(m.SiteRates[q], 'x', -1, 64))
			sb.WriteByte(',')
		}
	}
}
