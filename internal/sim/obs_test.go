package sim_test

import (
	"reflect"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// A memory experiment run while the obs registry is concurrently
// snapshotted and reset must stay bit-identical to an undisturbed run —
// the DEM-build and cache counters feed nothing back into sampling or
// decoding. (External test package: the real union-find decoder imports
// sim, so this cannot live inside it.)
func TestRunMemoryObservationInvariant(t *testing.T) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	model := noise.Uniform(3e-3)
	opts := sim.RunOptions{
		Rounds: 3, Basis: lattice.ZCheck, Shots: 4000, Workers: 4, Seed: 21,
		Factory: decoder.UnionFindFactory(),
	}
	baseline, err := sim.RunMemoryOpts(c, model, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Default().Snapshot()
				obs.Default().Reset()
			}
		}
	}()
	observed, err := sim.RunMemoryOpts(c, model, nil, opts)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, baseline) {
		t.Errorf("run under registry churn diverges:\n observed: %+v\n baseline: %+v", observed, baseline)
	}
}
