package sim

import (
	"math"
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

func TestFrameSimulatorZeroNoise(t *testing.T) {
	c := freshCode(t, 3)
	f, err := NewFrameSimulator(c, noise.Uniform(0), 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	flagged, obs := f.Batch(rand.New(rand.NewSource(1)))
	for shot := 0; shot < 64; shot++ {
		if len(flagged[shot]) != 0 || obs[shot] {
			t.Fatalf("zero-noise shot %d produced events", shot)
		}
	}
}

func TestFrameSimulatorDetectorLayoutMatchesDEM(t *testing.T) {
	c := freshCode(t, 3)
	model := noise.Uniform(1e-3)
	dem, err := BuildDEM(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrameSimulator(c, model, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumDetectors() != dem.NumDets {
		t.Fatalf("frame sim has %d detectors, DEM has %d", f.NumDetectors(), dem.NumDets)
	}
}

// TestFrameSimulatorCrossValidatesDEM is the decisive consistency check of
// the whole simulation stack: the DEM path (fault enumeration + mechanism
// sampling) and the direct frame simulation must produce statistically
// identical detector-event rates and logical-flip rates, since they model
// the same circuit under the same noise.
func TestFrameSimulatorCrossValidatesDEM(t *testing.T) {
	c := freshCode(t, 3)
	model := noise.Uniform(5e-3)
	const rounds = 4

	dem, err := BuildDEM(c, model, rounds, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(dem)
	rng1 := rand.New(rand.NewSource(7))
	demShots := 30000
	demEvents := 0
	demObs := 0
	perDetDEM := make([]int, dem.NumDets)
	for s := 0; s < demShots; s++ {
		flagged, obs := sampler.Shot(rng1)
		demEvents += len(flagged)
		for _, d := range flagged {
			perDetDEM[d]++
		}
		if obs {
			demObs++
		}
	}

	f, err := NewFrameSimulator(c, model, rounds, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(8))
	frameShots := 0
	frameEvents := 0
	frameObs := 0
	perDetFrame := make([]int, f.NumDetectors())
	for batch := 0; batch < 470; batch++ { // ≈30k shots
		flagged, obs := f.Batch(rng2)
		for shot := 0; shot < 64; shot++ {
			frameShots++
			frameEvents += len(flagged[shot])
			for _, d := range flagged[shot] {
				perDetFrame[d]++
			}
			if obs[shot] {
				frameObs++
			}
		}
	}

	demRate := float64(demEvents) / float64(demShots)
	frameRate := float64(frameEvents) / float64(frameShots)
	t.Logf("mean detection events/shot: DEM %.4f vs frames %.4f", demRate, frameRate)
	if ratio := demRate / frameRate; ratio < 0.93 || ratio > 1.07 {
		t.Errorf("detection-event rates differ: DEM %.4f vs frames %.4f", demRate, frameRate)
	}
	demObsRate := float64(demObs) / float64(demShots)
	frameObsRate := float64(frameObs) / float64(frameShots)
	t.Logf("observable flip rate: DEM %.4f vs frames %.4f", demObsRate, frameObsRate)
	// Binomial 3σ window around the pooled rate.
	pooled := (demObsRate + frameObsRate) / 2
	sigma := 3 * math.Sqrt(pooled*(1-pooled)*(1.0/float64(demShots)+1.0/float64(frameShots)))
	if diff := math.Abs(demObsRate - frameObsRate); diff > sigma+1e-4 {
		t.Errorf("observable flip rates differ beyond 3σ: %.4f vs %.4f (σ=%.4f)", demObsRate, frameObsRate, sigma)
	}
	// Per-detector rates: the busiest detectors must agree within 15%.
	for d := 0; d < dem.NumDets; d++ {
		dr := float64(perDetDEM[d]) / float64(demShots)
		fr := float64(perDetFrame[d]) / float64(frameShots)
		if dr < 0.01 && fr < 0.01 {
			continue // too rare for a tight comparison
		}
		if dr == 0 || fr == 0 || dr/fr < 0.85 || dr/fr > 1.18 {
			t.Errorf("detector %d rate mismatch: DEM %.4f vs frames %.4f", d, dr, fr)
		}
	}
}

func TestBiasedMaskStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []float64{0.001, 0.02, 0.3, 0.9} {
		total := 0
		draws := 4000
		for i := 0; i < draws; i++ {
			m := biasedMask(p, rng)
			for ; m != 0; m &= m - 1 {
				total++
			}
		}
		got := float64(total) / float64(draws*64)
		if got < p*0.85-0.001 || got > p*1.15+0.001 {
			t.Errorf("biasedMask(%v) bit rate %.4f", p, got)
		}
	}
	if biasedMask(0, rng) != 0 {
		t.Error("p=0 must give empty mask")
	}
	if biasedMask(1, rng) != ^uint64(0) {
		t.Error("p=1 must give full mask")
	}
}
