package sim

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
)

func TestPhasedDEMLayoutMatchesUniform(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	uniform, err := BuildDEM(c, nominal, 6, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	phased, err := BuildPhasedDEM(c, []Phase{
		{Rounds: 3, Model: nominal},
		{Rounds: 3, Model: nominal},
	}, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if phased.NumDets != uniform.NumDets {
		t.Fatalf("detector count %d vs %d", phased.NumDets, uniform.NumDets)
	}
	// Identical models in both phases must give the identical DEM.
	if len(phased.Mechs) != len(uniform.Mechs) {
		t.Fatalf("mechanism count %d vs %d", len(phased.Mechs), len(uniform.Mechs))
	}
	for i := range phased.Mechs {
		if phased.Mechs[i].P != uniform.Mechs[i].P {
			t.Fatalf("mechanism %d probability differs", i)
		}
	}
}

func TestPhasedDEMDefectOnset(t *testing.T) {
	c := freshCode(t, 5)
	nominal := noise.Uniform(1e-3)
	hot := nominal.WithDefects([]lattice.Coord{{Row: 5, Col: 5}}, 0.5)
	dem, err := BuildPhasedDEM(c, []Phase{
		{Rounds: 4, Model: nominal},
		{Rounds: 4, Model: hot},
	}, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	// Detection events concentrate after the onset: sample shots and
	// compare early-round vs late-round event counts.
	sampler := NewSampler(dem)
	rng := rand.New(rand.NewSource(9))
	early, late := 0, 0
	for s := 0; s < 300; s++ {
		flagged, _ := sampler.Shot(rng)
		for _, det := range flagged {
			if dem.DetRound[det] < 4 {
				early++
			} else {
				late++
			}
		}
	}
	if late < 5*early {
		t.Errorf("defect onset invisible: %d early vs %d late events", early, late)
	}
}

func TestPhasedDEMValidation(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	if _, err := BuildPhasedDEM(c, nil, lattice.ZCheck); err == nil {
		t.Error("empty phase list must fail")
	}
	if _, err := BuildPhasedDEM(c, []Phase{{Rounds: 0, Model: nominal}}, lattice.ZCheck); err == nil {
		t.Error("zero-round phase must fail")
	}
	if _, err := BuildPhasedDEM(c, []Phase{{Rounds: 3, Model: nil}}, lattice.ZCheck); err == nil {
		t.Error("nil model must fail")
	}
	if _, err := BuildPhasedDEM(c, []Phase{{Rounds: 1, Model: nominal}}, lattice.ZCheck); err == nil {
		t.Error("single-round total must fail")
	}
}

func TestObservablesInfo(t *testing.T) {
	c := freshCode(t, 3)
	dem, err := BuildDEM(c, noise.Uniform(1e-3), 3, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if len(dem.Observables) != len(c.Stabs()) {
		t.Fatalf("%d observable infos, want %d", len(dem.Observables), len(c.Stabs()))
	}
	for _, det := range []int32{0, int32(dem.NumDets - 1)} {
		oi := dem.DetObs[det]
		info := dem.Observables[oi]
		if len(info.Support) == 0 || len(info.Ancillas) == 0 {
			t.Errorf("observable %d missing location info", oi)
		}
		if info.Type != lattice.ZCheck {
			t.Errorf("memory-Z detectors must track Z observables")
		}
	}
}
