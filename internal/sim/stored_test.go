package sim_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/store"

	. "surfdeformer/internal/sim"
)

func storedTestSetup(t *testing.T) (*code.Code, *noise.Model, RunOptions, *store.Store) {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	model := noise.Uniform(4e-3)
	o := RunOptions{
		Rounds:  3,
		Basis:   lattice.ZCheck,
		Factory: decoder.UnionFindFactory(),
		Shots:   2000,
		Seed:    11,
	}
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return c, model, o, st
}

type storedCfg struct {
	D    int   `json:"d"`
	Seed int64 `json:"seed"`
}

// A stored point must be served bit-identically to the run that produced
// it — same counts, same floats, no Monte-Carlo work.
func TestRunMemoryStoredReplaysExactly(t *testing.T) {
	c, model, o, st := storedTestSetup(t)
	so := StoreOptions{Store: st, Resume: true, Kind: "test", Config: storedCfg{D: 3, Seed: 11}}

	fresh, fromStore, err := RunMemoryStored(c, model, nil, o, so)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Fatal("first run cannot come from the store")
	}
	baseline, err := RunMemoryOpts(c, model, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, baseline) {
		t.Fatalf("stored path diverges from plain path:\n%+v\n%+v", fresh, baseline)
	}

	replay, fromStore, err := RunMemoryStored(c, model, nil, o, so)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Fatal("second run must be served from the store")
	}
	if !reflect.DeepEqual(replay, baseline) {
		t.Fatalf("replay diverges from baseline:\n%+v\n%+v", replay, baseline)
	}
}

// Growing the budget computes only the remainder under a fresh segment
// stream; the merged aggregate has the summed counts and a CI recomputed
// from them.
func TestRunMemoryStoredTopUp(t *testing.T) {
	c, model, o, st := storedTestSetup(t)
	so := StoreOptions{Store: st, Resume: true, Kind: "test", Config: storedCfg{D: 3, Seed: 11}}

	first, _, err := RunMemoryStored(c, model, nil, o, so)
	if err != nil {
		t.Fatal(err)
	}
	grow := o
	grow.Shots = 5000
	merged, fromStore, err := RunMemoryStored(c, model, nil, grow, so)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Fatal("top-up must do Monte-Carlo work")
	}
	if merged.Shots != 5000 {
		t.Fatalf("merged shots %d, want 5000", merged.Shots)
	}
	// The remainder segment runs the documented segment stream; the merge
	// must equal first + that segment exactly.
	segOpts := grow
	segOpts.Shots = 3000
	segOpts.Seed = SegmentSeed(o.Seed, 1)
	seg, err := RunMemoryOpts(c, model, nil, segOpts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Failures != first.Failures+seg.Failures {
		t.Fatalf("merged failures %d != %d + %d", merged.Failures, first.Failures, seg.Failures)
	}
	lo, hi := mc.WilsonInterval(merged.Failures, merged.Shots, mc.DefaultZ)
	if merged.CILow != lo || merged.CIHigh != hi {
		t.Fatal("merged CI not recomputed from merged counts")
	}
	// Served on the next request at the grown budget.
	again, fromStore, err := RunMemoryStored(c, model, nil, grow, so)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Fatal("grown point must now be complete")
	}
	if !reflect.DeepEqual(again, merged) {
		t.Fatalf("served grown point diverges:\n%+v\n%+v", again, merged)
	}
}

// Segment streams must be disjoint from shard streams: segment 1 of seed s
// must not replay shard 1 of the segment-0 run.
func TestSegmentSeedDisjointFromShards(t *testing.T) {
	if SegmentSeed(11, 0) != 11 {
		t.Fatal("segment 0 must be the base seed (byte-identity of resumed tables)")
	}
	for seg := 1; seg < 8; seg++ {
		s := SegmentSeed(11, seg)
		for shard := 0; shard < 4096; shard++ {
			if s == mc.ShardSeed(11, shard) {
				t.Fatalf("segment %d reuses shard %d's stream", seg, shard)
			}
		}
	}
}

// An adaptive request served against a stored early-stopped point must not
// recompute; distinct TargetRSE values hash to distinct points.
func TestRunMemoryStoredAdaptive(t *testing.T) {
	c, model, o, st := storedTestSetup(t)
	o.TargetRSE = 0.3
	o.Shots = 50000
	so := StoreOptions{Store: st, Resume: true, Kind: "test", Config: storedCfg{D: 3, Seed: 11}}
	first, _, err := RunMemoryStored(c, model, nil, o, so)
	if err != nil {
		t.Fatal(err)
	}
	again, fromStore, err := RunMemoryStored(c, model, nil, o, so)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Fatal("adaptive point met its target; resume must serve it")
	}
	if !reflect.DeepEqual(again, first) {
		t.Fatalf("adaptive replay diverges:\n%+v\n%+v", again, first)
	}
}

// Resuming an incomplete adaptive point must count the stored failures
// toward the target instead of making the engine re-earn it from zero:
// the top-up adds at most a couple of shard-sized chunks, not a whole
// fresh adaptive budget.
func TestRunMemoryStoredAdaptiveTopUpIsCheap(t *testing.T) {
	c, model, o, st := storedTestSetup(t)
	so := StoreOptions{Store: st, Resume: true, Kind: "test", Config: storedCfg{D: 3, Seed: 11}}

	// Seed the store with a fixed 2000-shot segment (rate ~2% at d=3,
	// p=4e-3: RSE just above 0.15), then ask for 0.15 adaptively.
	if _, _, err := RunMemoryStored(c, model, nil, o, so); err != nil {
		t.Fatal(err)
	}
	adapt := o
	adapt.TargetRSE = 0.15
	adapt.Shots = 100000
	merged, fromStore, err := RunMemoryStored(c, model, nil, adapt, so)
	if err != nil {
		t.Fatal(err)
	}
	if merged.RSE > adapt.TargetRSE && merged.Shots < adapt.Shots {
		t.Fatalf("top-up stopped at RSE %.3f > target with budget left", merged.RSE)
	}
	if fromStore {
		t.Fatal("incomplete adaptive point must do work")
	}
	// The estimate-sized chunks may iterate once (the planning inverse is
	// noisy), so allow ~2.5 shards. The bug this pins: an engine run that
	// re-earns the target from zero counts needs ~44 fresh failures at
	// this rate — over 3000 extra shots — instead of crediting the ~30
	// already stored.
	added := merged.Shots - o.Shots
	if added > 5*mc.DefaultShardSize/2 {
		t.Fatalf("adaptive top-up burned %d extra shots; the stored counts should cap it near the missing amount", added)
	}
}

func TestRunMemoryBothStoredRoundTrip(t *testing.T) {
	c, model, o, st := storedTestSetup(t)
	so := StoreOptions{Store: st, Resume: true, Kind: "test-both", Config: storedCfg{D: 3, Seed: 11}}
	z1, x1, comb1, fromStore, err := RunMemoryBothStored(c, model, o, so)
	if err != nil {
		t.Fatal(err)
	}
	if fromStore {
		t.Fatal("first run cannot come from the store")
	}
	bz, bx, bcomb, err := RunMemoryBothOpts(c, model, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(z1, bz) || !reflect.DeepEqual(x1, bx) || comb1 != bcomb {
		t.Fatal("stored both-path diverges from plain both-path")
	}
	z2, x2, comb2, fromStore, err := RunMemoryBothStored(c, model, o, so)
	if err != nil {
		t.Fatal(err)
	}
	if !fromStore {
		t.Fatal("both halves must be served from the store")
	}
	if !reflect.DeepEqual(z2, z1) || !reflect.DeepEqual(x2, x1) || comb2 != comb1 {
		t.Fatal("served both-path diverges from computed run")
	}
}
