package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/pauli"
)

// deformedCode builds a d=5 patch with the centre qubit removed and
// super-stabilizers installed, mirroring what the deform package produces
// (inlined to keep the dependency graph acyclic).
func deformedCode(t *testing.T) *code.Code {
	t.Helper()
	c := freshCode(t, 5)
	q0 := lattice.Coord{Row: 5, Col: 5}
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		stabs := c.StabsOn(q0, typ)
		var ids []int
		var prod pauli.Op
		for _, s := range stabs {
			prod = pauli.Mul(prod, s.Op)
			c.RemoveStab(s.ID)
			ids = append(ids, c.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
		}
		c.AddSuperStab(prod.RestrictedTo(notQ0), ids)
	}
	if err := c.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// demValuesEqual asserts two DEMs agree on every consumer-visible field,
// bit for bit (mechanism probabilities compared with ==, no tolerance).
func demValuesEqual(t *testing.T, got, want *DEM, ctx string) {
	t.Helper()
	if got.NumDets != want.NumDets {
		t.Fatalf("%s: NumDets = %d, want %d", ctx, got.NumDets, want.NumDets)
	}
	if got.rawMechs != want.rawMechs {
		t.Fatalf("%s: rawMechs = %d, want %d", ctx, got.rawMechs, want.rawMechs)
	}
	if !reflect.DeepEqual(got.DetRound, want.DetRound) || !reflect.DeepEqual(got.DetObs, want.DetObs) {
		t.Fatalf("%s: detector layout differs", ctx)
	}
	if !reflect.DeepEqual(got.Observables, want.Observables) {
		t.Fatalf("%s: observables differ", ctx)
	}
	if len(got.Mechs) != len(want.Mechs) {
		t.Fatalf("%s: %d mechanisms, want %d", ctx, len(got.Mechs), len(want.Mechs))
	}
	for i := range got.Mechs {
		g, w := got.Mechs[i], want.Mechs[i]
		if g.P != w.P || g.Obs != w.Obs || !reflect.DeepEqual(g.Dets, w.Dets) {
			t.Fatalf("%s: mechanism %d = {P:%v Dets:%v Obs:%v}, want {P:%v Dets:%v Obs:%v}",
				ctx, i, g.P, g.Dets, g.Obs, w.P, w.Dets, w.Obs)
		}
	}
}

// randomOverlay draws a site-rate overlay over the code's qubits with
// quantized power-of-two multipliers, the shape reweightOverlay and defect
// events produce.
func randomOverlay(rng *rand.Rand, sites []lattice.Coord, base float64) map[lattice.Coord]float64 {
	n := 1 + rng.Intn(4)
	out := make(map[lattice.Coord]float64, n)
	for i := 0; i < n; i++ {
		q := sites[rng.Intn(len(sites))]
		mult := float64(int64(2) << rng.Intn(6)) // 2..64
		r := mult * base
		if r > 0.45 {
			r = 0.45
		}
		if prev, ok := out[q]; !ok || r > prev {
			out[q] = r
		}
	}
	return out
}

// TestIncrementalDEMMatchesFullRebuild is the headline equivalence sweep:
// random overlay sequences — apply, stack, expire — over pristine and
// deformed codes in both bases, asserting at every step that the patched
// DEM is value-identical to a fresh full BuildDEM of the same variant
// model, whether patched from the nominal base or from the previous
// (already patched) DEM in the sequence.
func TestIncrementalDEMMatchesFullRebuild(t *testing.T) {
	codes := []struct {
		name string
		c    *code.Code
	}{
		{"d3", freshCode(t, 3)},
		{"d5-deformed", deformedCode(t)},
	}
	for _, tc := range codes {
		for _, basis := range []lattice.CheckType{lattice.ZCheck, lattice.XCheck} {
			nominal := noise.Uniform(1e-3).WithCorrelated(2e-4)
			base, err := BuildDEM(tc.c, nominal, 4, basis)
			if err != nil {
				t.Fatal(err)
			}
			if base.plan == nil {
				t.Fatalf("%s/basis %v: nominal build recorded no patch plan", tc.name, basis)
			}
			sites := append([]lattice.Coord(nil), tc.c.DataQubits()...)
			sites = append(sites, tc.c.SyndromeQubits()...)
			rng := rand.New(rand.NewSource(int64(41*len(tc.name)) + int64(basis)))
			pt := &Patcher{}
			active := map[lattice.Coord]float64{}
			prev := base
			for step := 0; step < 25; step++ {
				switch {
				case step%5 == 4:
					// Expire everything: back to the nominal rates.
					active = map[lattice.Coord]float64{}
				case step%3 == 2 && len(active) > 0:
					// Expire one site.
					for q := range active {
						delete(active, q)
						break
					}
				default:
					// Apply a fresh overlay on top (stacking, max wins —
					// the OverlaySiteRates composition rule).
					for q, r := range randomOverlay(rng, sites, 1e-3) {
						if prevR, ok := active[q]; !ok || r > prevR {
							active[q] = r
						}
					}
				}
				variant := nominal.WithSiteRates(cloneRates(active))
				want, err := BuildDEM(tc.c, variant, 4, basis)
				if err != nil {
					t.Fatal(err)
				}
				fromBase, ok := pt.Patch(base, variant)
				if !ok {
					t.Fatalf("%s/basis %v step %d: patch from base refused", tc.name, basis, step)
				}
				demValuesEqual(t, fromBase, want, tc.name+"/from-base")
				fromPrev, ok := pt.Patch(prev, variant)
				if !ok {
					t.Fatalf("%s/basis %v step %d: patch from previous refused", tc.name, basis, step)
				}
				demValuesEqual(t, fromPrev, want, tc.name+"/from-prev")
				if !SamePatchCore(fromBase, base) || !SamePatchCore(fromPrev, base) {
					t.Fatalf("%s/basis %v step %d: patched DEMs must share the base's plan core", tc.name, basis, step)
				}
				prev = fromPrev
			}
		}
	}
}

func cloneRates(m map[lattice.Coord]float64) map[lattice.Coord]float64 {
	out := make(map[lattice.Coord]float64, len(m))
	for q, r := range m {
		out[q] = r
	}
	return out
}

// TestDEMPatchNoOverlayReturnsBase pins the expire fast path: a variant
// whose overrides touch no circuit site (or none at all) is the base DEM
// itself, same pointer.
func TestDEMPatchNoOverlayReturnsBase(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	base, err := BuildDEM(c, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	pt := &Patcher{}
	if got, ok := pt.Patch(base, nominal); !ok || got != base {
		t.Errorf("patch to the base model = (%p, %v), want the base pointer back", got, ok)
	}
	offCircuit := nominal.WithSiteRates(map[lattice.Coord]float64{{Row: 99, Col: 99}: 0.25})
	if got, ok := pt.Patch(base, offCircuit); !ok || got != base {
		t.Errorf("off-circuit overlay = (%p, %v), want the base pointer back", got, ok)
	}
}

// TestDEMPatchFallsBack pins the refusal cases: anything that could change
// the mechanism set itself must force a full rebuild.
func TestDEMPatchFallsBack(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	base, err := BuildDEM(c, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	site := c.DataQubits()[0]
	pt := &Patcher{}
	cases := []struct {
		name  string
		model *noise.Model
	}{
		{"scalar-rate", noise.Uniform(2e-3)},
		{"correlated", nominal.WithCorrelated(1e-4)},
		{"defects", nominal.WithDefects([]lattice.Coord{site}, 0.5)},
		{"zero-override", nominal.WithSiteRates(map[lattice.Coord]float64{site: 0})},
	}
	for _, tc := range cases {
		if _, ok := pt.Patch(base, tc.model); ok {
			t.Errorf("%s: patch accepted a variant that may change the mechanism set", tc.name)
		}
	}
	// A planless DEM (phased-style build) must refuse too.
	planless := &DEM{NumDets: base.NumDets, Mechs: base.Mechs}
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{site: 0.25})
	if _, ok := pt.Patch(planless, variant); ok {
		t.Error("patch accepted a DEM without a contribution plan")
	}
	// And the fallback must leave no stale marks behind: a valid patch
	// right after a refused one still matches the full rebuild.
	got, ok := pt.Patch(base, variant)
	if !ok {
		t.Fatal("valid patch refused after a fallback")
	}
	want, err := BuildDEM(c, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	demValuesEqual(t, got, want, "post-fallback")
}

// TestDEMPatchZeroAllocs pins the steady-state allocation budget: beyond
// the clone-on-write probability vector and the two fixed output headers
// (DEM + plan), a warm Patcher allocates nothing per patch.
func TestDEMPatchZeroAllocs(t *testing.T) {
	c := freshCode(t, 5)
	nominal := noise.Uniform(1e-3)
	base, err := BuildDEM(c, nominal, 6, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{
		c.DataQubits()[0]: 8e-3,
		c.DataQubits()[3]: 16e-3,
	})
	pt := &Patcher{}
	if _, ok := pt.Patch(base, variant); !ok { // warm the scratch
		t.Fatal("patch refused")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := pt.Patch(base, variant); !ok {
			t.Fatal("patch refused")
		}
	})
	if allocs > 3 {
		t.Errorf("steady-state patch does %.1f allocs, want <= 3 (mechanism vector + DEM + plan)", allocs)
	}
}

// TestConcurrentPatchRace exercises concurrent patching from one shared
// base with per-goroutine Patchers (the trajectory engine's arrangement)
// under the race detector, and checks cross-goroutine value identity.
func TestConcurrentPatchRace(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	base, err := BuildDEM(c, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{c.DataQubits()[1]: 8e-3})
	want, ok := (&Patcher{}).Patch(base, variant)
	if !ok {
		t.Fatal("patch refused")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pt := &Patcher{}
			for i := 0; i < 50; i++ {
				got, ok := pt.Patch(base, variant)
				if !ok {
					t.Error("patch refused")
					return
				}
				for mi := range got.Mechs {
					if got.Mechs[mi].P != want.Mechs[mi].P {
						t.Errorf("mechanism %d diverged across goroutines", mi)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestBuildDEMPatchedCacheAccounting pins that a patch-filled entry is
// accounted exactly like a built one (a miss), hits on re-request, and
// counts in sim.dem.patches rather than sim.dem.builds.
func TestBuildDEMPatchedCacheAccounting(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	dc := NewDEMCache(0)
	base, baseKey, err := dc.BuildDEMKeyed(c, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if baseKey == "" {
		t.Fatal("empty canonical key")
	}
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{c.DataQubits()[0]: 8e-3})
	builds := obs.Default().Counter("sim.dem.builds")
	patches := obs.Default().Counter("sim.dem.patches")
	b0, p0 := builds.Value(), patches.Value()
	pt := &Patcher{}
	dem, key, err := dc.BuildDEMPatched(pt, base, c, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if key == baseKey {
		t.Fatal("variant shares the base's cache key")
	}
	if builds.Value() != b0 || patches.Value() != p0+1 {
		t.Errorf("counters moved by (builds %d, patches %d), want (0, 1)",
			builds.Value()-b0, patches.Value()-p0)
	}
	if st := dc.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (base build + patch fill)", st.Misses)
	}
	again, _, err := dc.BuildDEMPatched(pt, base, c, variant, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if again != dem {
		t.Error("re-request must hit the cached pointer")
	}
	if patches.Value() != p0+1 {
		t.Error("cache hit re-patched")
	}
}

// TestDEMCacheOverlayFingerprintCanonical is the overlay-fingerprinting
// regression: two identical overlays assembled in different map insertion
// orders must land on one cache entry — a single dem.builds — and overlays
// differing by one ulp must not collide.
func TestDEMCacheOverlayFingerprintCanonical(t *testing.T) {
	c := freshCode(t, 3)
	nominal := noise.Uniform(1e-3)
	qs := c.DataQubits()
	forward := map[lattice.Coord]float64{}
	for i, m := range []float64{8, 16, 32, 4} {
		forward[qs[i]] = m * 1e-3
	}
	backward := map[lattice.Coord]float64{}
	for i := 3; i >= 0; i-- {
		backward[qs[i]] = forward[qs[i]]
	}
	dc := NewDEMCache(0)
	builds := obs.Default().Counter("sim.dem.builds")
	b0 := builds.Value()
	a, err := dc.BuildDEM(c, nominal.WithSiteRates(forward), 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dc.BuildDEM(c, nominal.WithSiteRates(backward), 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical overlays in different insertion orders missed the cache")
	}
	if got := builds.Value() - b0; got != 1 {
		t.Errorf("dem.builds advanced by %d, want exactly 1", got)
	}
	// Exactness: a one-ulp rate difference is a different configuration.
	nudged := cloneRates(forward)
	nudged[qs[0]] = math.Nextafter(nudged[qs[0]], 1)
	cNudged, err := dc.BuildDEM(c, nominal.WithSiteRates(nudged), 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	if cNudged == a {
		t.Error("one-ulp rate difference collided in the cache key")
	}
}
