package mc

import "math"

// DefaultZ is the two-sided 95% normal quantile used for confidence
// intervals.
const DefaultZ = 1.959963984540054

// RSE returns the relative standard error of the binomial failure-rate
// estimate p̂ = failures/shots:
//
//	RSE = SE(p̂)/p̂ = sqrt(p̂(1-p̂)/n)/p̂ = sqrt((1-p̂)/failures)
//
// For rare failures this is ≈ 1/sqrt(failures), so a 10% target needs
// ~100 observed failures regardless of how small the rate is — the
// quantity the adaptive early-stopping rule drives to its target. With no
// failures observed the estimate carries no relative precision and RSE is
// +Inf.
func RSE(failures, shots int) float64 {
	if shots <= 0 || failures <= 0 {
		return math.Inf(1)
	}
	p := float64(failures) / float64(shots)
	return math.Sqrt((1 - p) / float64(failures))
}

// ShotsForRSE returns the expected number of shots needed to reach the
// target RSE at failure rate p — the planning inverse of RSE, used to
// size MaxShots budgets.
func ShotsForRSE(p, target float64) int {
	if p <= 0 || p >= 1 || target <= 0 {
		return 0
	}
	return int(math.Ceil((1 - p) / (target * target * p)))
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion at normal quantile z (use DefaultZ for 95%). Unlike
// the Wald interval it stays inside [0, 1] and behaves sensibly at zero
// failures, the regime low logical-error-rate experiments live in.
func WilsonInterval(failures, shots int, z float64) (lo, hi float64) {
	if shots <= 0 {
		return 0, 1
	}
	n := float64(shots)
	p := float64(failures) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	// Pin the degenerate endpoints exactly (center-half carries float
	// residue of order 1e-18 at p ∈ {0, 1}).
	if lo < 0 || failures == 0 {
		lo = 0
	}
	if hi > 1 || failures == shots {
		hi = 1
	}
	return lo, hi
}
