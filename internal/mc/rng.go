package mc

// splitMix64 is the SplitMix64 generator (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA 2014). It is the
// stream-derivation primitive of the engine: one 64-bit multiply-xorshift
// mix per output, full 2^64 period, and — crucially — the ability to derive
// statistically independent child streams from (seed, index) pairs without
// any sequential dependency between shards.
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ShardSeed derives the RNG seed of one shard from the user seed. The
// derivation depends only on (seed, shard) — never on worker count or
// scheduling order — which is what makes engine results bit-identical for
// any parallelism. The user seed is hashed first so that adjacent seeds
// (the seed/seed+1 convention used by RunMemoryBoth) yield uncorrelated
// shard families.
func ShardSeed(seed int64, shard int) int64 {
	s := splitMix64(uint64(seed))
	base := s.next()
	t := splitMix64(base + uint64(shard+1)*0x9E3779B97F4A7C15)
	return int64(t.next())
}
