package mc

// splitMix64 is the SplitMix64 generator (Steele, Lea & Flood, "Fast
// splittable pseudorandom number generators", OOPSLA 2014). It is the
// stream-derivation primitive of the engine: one 64-bit multiply-xorshift
// mix per output, full 2^64 period, and — crucially — the ability to derive
// statistically independent child streams from (seed, index) pairs without
// any sequential dependency between shards.
type splitMix64 uint64

const golden = 0x9E3779B97F4A7C15

func (s *splitMix64) next() uint64 {
	*s += golden
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed derives a child seed from a root seed and a path of stream
// indices by chaining one SplitMix64 mix per path element. The derivation
// depends only on (seed, path) — never on scheduling, worker count, or the
// order in which other streams are derived — so any consumer that draws all
// of its randomness from a DeriveSeed-seeded RNG is deterministic under
// arbitrary parallelism. Distinct paths (including permutations and
// prefixes) yield statistically independent streams.
//
// DeriveSeed(seed, k) with k >= 0 equals ShardSeed(seed, int(k)): the
// engine's shard streams are the single-element case of the same chain.
// Callers deriving non-shard streams from a seed that also feeds the engine
// must therefore disambiguate with a leading path element that can never be
// a shard index (any negative value).
func DeriveSeed(seed int64, path ...int64) int64 {
	s := splitMix64(uint64(seed))
	acc := s.next()
	for _, p := range path {
		t := splitMix64(acc + uint64(p+1)*golden)
		acc = t.next()
	}
	return int64(acc)
}

// ShardSeed derives the RNG seed of one shard from the user seed. The
// derivation depends only on (seed, shard) — never on worker count or
// scheduling order — which is what makes engine results bit-identical for
// any parallelism. The user seed is hashed first so that adjacent seeds
// (the seed/seed+1 convention used by RunMemoryBoth) yield uncorrelated
// shard families.
func ShardSeed(seed int64, shard int) int64 {
	return DeriveSeed(seed, int64(shard))
}

// StringSeed hashes a string into a stream index for DeriveSeed paths
// (FNV-1a), so configuration points keyed by names — benchmark programs,
// policies, schemes — can derive content-addressed streams that do not
// depend on grid position.
func StringSeed(s string) int64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return int64(h)
}
