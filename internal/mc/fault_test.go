package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Panic isolation: one panicking point must not take down the run — every
// other point completes and the failure comes back as a *PointErrors with
// the captured stack.
func TestForEachPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 12
		var done [n]atomic.Bool
		err := ForEach(context.Background(), workers, n, func(i int) error {
			if i == 5 {
				panic("injected")
			}
			done[i].Store(true)
			return nil
		})
		var perrs *PointErrors
		if !errors.As(err, &perrs) {
			t.Fatalf("workers=%d: err = %v, want *PointErrors", workers, err)
		}
		if len(perrs.Failures) != 1 || perrs.Failures[0].Index != 5 || perrs.Total != n {
			t.Fatalf("workers=%d: failures = %+v", workers, perrs.Failures)
		}
		var pe *PanicError
		if !errors.As(perrs.Failures[0].Err, &pe) || pe.Value != "injected" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: failure err = %v, want PanicError with stack", workers, perrs.Failures[0].Err)
		}
		for i := 0; i < n; i++ {
			if i != 5 && !done[i].Load() {
				t.Fatalf("workers=%d: point %d did not complete after isolated panic", workers, i)
			}
		}
		if rep := perrs.Report(); !strings.Contains(rep, "point 5") || !strings.Contains(rep, "goroutine") {
			t.Fatalf("workers=%d: report missing point/stack:\n%s", workers, rep)
		}
	}
}

// A transient error is retried with the full point recomputed; a point
// that recovers within the attempt budget is not a failure at all.
func TestForEachTransientRetried(t *testing.T) {
	var calls [8]int32
	var mu sync.Mutex
	err := ForEach(context.Background(), 1, len(calls), func(i int) error {
		mu.Lock()
		calls[i]++
		c := calls[i]
		mu.Unlock()
		if i == 3 && c < 3 {
			return Transient(fmt.Errorf("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach = %v, want nil (transient recovered)", err)
	}
	if calls[3] != 3 {
		t.Fatalf("point 3 ran %d times, want 3", calls[3])
	}
	for i, c := range calls {
		if i != 3 && c != 1 {
			t.Fatalf("point %d ran %d times, want 1", i, c)
		}
	}
}

// Exhausted retries isolate the point like a panic: the run finishes, the
// failure carries its attempt count, and the original cause stays
// reachable through the wrap chain.
func TestForEachTransientExhausted(t *testing.T) {
	cause := errors.New("disk full")
	var ran int32
	err := ForEach(context.Background(), 2, 6, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 2 {
			return Transient(cause)
		}
		return nil
	})
	var perrs *PointErrors
	if !errors.As(err, &perrs) || len(perrs.Failures) != 1 {
		t.Fatalf("err = %v, want one isolated failure", err)
	}
	f := perrs.Failures[0]
	if f.Index != 2 || f.Attempts != maxPointAttempts {
		t.Fatalf("failure = %+v, want index 2 after %d attempts", f, maxPointAttempts)
	}
	if !errors.Is(f.Err, cause) {
		t.Fatalf("cause lost: %v", f.Err)
	}
	if got := atomic.LoadInt32(&ran); got != 5+maxPointAttempts {
		t.Fatalf("total invocations = %d, want %d", got, 5+maxPointAttempts)
	}
}

// Context cancellation stops dispatch at the next point boundary and is
// reported as ErrCanceled, never as a point failure.
func TestForEachCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEach(ctx, 1, 10, func(i int) error {
		ran++
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran != 5 {
		t.Fatalf("ran %d points, want 5 (dispatch stops at the boundary after cancel)", ran)
	}
	var perrs *PointErrors
	if errors.As(err, &perrs) {
		t.Fatalf("cancellation misclassified as point failures: %v", err)
	}
}

// A point function reporting a canceled engine run (its RunBatch returned
// ErrCanceled) cancels the whole pool the same way ctx does.
func TestForEachPropagatesEngineCancel(t *testing.T) {
	ran := 0
	err := ForEach(context.Background(), 1, 10, func(i int) error {
		ran++
		if i == 2 {
			return fmt.Errorf("engine: %w", ErrCanceled)
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d points, want 3", ran)
	}
}

// Cancellation arriving after isolated failures must lose neither signal:
// errors.Is sees the cancel, errors.As sees the failures.
func TestForEachCancelJoinsIsolatedFailures(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEach(ctx, 1, 10, func(i int) error {
		switch i {
		case 1:
			panic("injected")
		case 3:
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled in chain", err)
	}
	var perrs *PointErrors
	if !errors.As(err, &perrs) || len(perrs.Failures) != 1 || perrs.Failures[0].Index != 1 {
		t.Fatalf("err = %v, want joined PointErrors for point 1", err)
	}
}

// A permanent (plain) error still wins over isolated failures: the run
// aborts with the lowest-index fatal error, not a PointErrors.
func TestForEachFatalBeatsIsolated(t *testing.T) {
	fatal := errors.New("bad config")
	err := ForEach(context.Background(), 1, 10, func(i int) error {
		switch i {
		case 1:
			panic("injected")
		case 2:
			return fatal
		}
		return nil
	})
	if !errors.Is(err, fatal) {
		t.Fatalf("err = %v, want the fatal error", err)
	}
}

// Engine-level cancellation: a canceled Ctx stops RunBatch at a shard
// boundary with a nil Result — no partial aggregate ever escapes.
func TestRunBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var batches atomic.Int32
	res, err := RunBatch(Config{
		Workers: 1, MaxShots: 100 * 64, ShardSize: 64, Seed: 7, Ctx: ctx,
	}, func() (ShotBatchFunc, error) {
		return func(rng *rand.Rand, n int) int {
			if batches.Add(1) == 3 {
				cancel()
			}
			return 0
		}, nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil (partial aggregates are discarded)", res)
	}
}

// A Ctx canceled only after the budget completed is not an interruption:
// the result is whole and must be returned.
func TestRunBatchCompleteIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var batches atomic.Int32
	res, err := RunBatch(Config{
		Workers: 1, MaxShots: 4 * 64, ShardSize: 64, Seed: 7, Ctx: ctx,
	}, func() (ShotBatchFunc, error) {
		return func(rng *rand.Rand, n int) int {
			if batches.Add(1) == 4 {
				cancel() // fires while the final shard commits — budget still completes
			}
			return 0
		}, nil
	})
	if err != nil {
		t.Fatalf("RunBatch = %v, want nil for a completed budget", err)
	}
	if res.Shots != 4*64 {
		t.Fatalf("Shots = %d, want %d", res.Shots, 4*64)
	}
}

// A panic inside a shard worker fails the run as a *PanicError instead of
// crashing the process.
func TestRunBatchWorkerPanicContained(t *testing.T) {
	res, err := RunBatch(Config{
		Workers: 2, MaxShots: 10 * 32, ShardSize: 32, Seed: 7,
	}, func() (ShotBatchFunc, error) {
		return func(rng *rand.Rand, n int) int {
			panic("shard blew up")
		}, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "shard blew up" {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
}

// Retries must be invisible in results: a run whose points fail
// transiently on their first attempt produces exactly the values of an
// undisturbed run.
func TestForEachRetryInvisibleInResults(t *testing.T) {
	compute := func(flaky bool) []int64 {
		out := make([]int64, 16)
		attempt := make([]int, 16)
		var mu sync.Mutex
		err := ForEach(context.Background(), 4, len(out), func(i int) error {
			mu.Lock()
			attempt[i]++
			first := attempt[i] == 1
			mu.Unlock()
			if flaky && first && i%2 == 1 {
				return Transient(fmt.Errorf("flaky %d", i))
			}
			out[i] = DeriveSeed(99, int64(i)) // stands in for a point's content-derived result
			return nil
		})
		if err != nil {
			t.Fatalf("ForEach(flaky=%v) = %v", flaky, err)
		}
		return out
	}
	clean := compute(false)
	faulted := compute(true)
	for i := range clean {
		if clean[i] != faulted[i] {
			t.Fatalf("point %d: retried run diverged: %d != %d", i, faulted[i], clean[i])
		}
	}
}
