package mc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 97
		hits := make([]atomic.Int32, n)
		if err := ForEach(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantA, wantB := errors.New("boom-3"), errors.New("boom-7")
	err := ForEach(context.Background(), 4, 16, func(i int) error {
		switch i {
		case 3:
			return wantA
		case 7:
			return wantB
		}
		return nil
	})
	if err != wantA {
		t.Fatalf("got %v, want lowest-index error %v", err, wantA)
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 1, 1000, func(i int) error {
		ran.Add(1)
		if i == 4 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 5 {
		t.Fatalf("serial pool ran %d jobs after error at index 4", got)
	}
}
