package mc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrCanceled is the typed interruption error of the engine: Run/RunBatch
// return it (wrapped) when Config.Ctx is canceled between shards, and
// ForEach returns it when its context is canceled between points or a
// point function reports a canceled engine run. Callers use errors.Is to
// distinguish a cooperative interrupt — partial work is valid, resume will
// finish it — from a genuine failure.
var ErrCanceled = errors.New("mc: canceled")

// PanicError is a worker panic captured at the recovery site, with the
// goroutine stack at the point of panic. The engine converts panics into
// PanicErrors instead of crashing the process: inside Run/RunBatch a panic
// fails only that run, and ForEach isolates it to the one grid point that
// panicked.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack captured by the recover site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic: %v", e.Value)
}

// PointFailure is one isolated grid-point failure of a ForEach run.
type PointFailure struct {
	// Index is the point's ForEach index.
	Index int
	// Err is the final error after retries — a *PanicError for panics.
	Err error
	// Attempts counts how many times the point ran (1 = no retries).
	Attempts int
}

// PointErrors aggregates the isolated per-point failures of a ForEach run:
// points that panicked or exhausted their transient-error retries while the
// rest of the grid kept running. Failures are sorted by point index, so the
// report is deterministic regardless of completion order.
type PointErrors struct {
	// Total is the number of points in the run.
	Total int
	// Failures holds one entry per failed point, sorted by Index.
	Failures []PointFailure
}

func (e *PointErrors) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d of %d point(s) failed:", len(e.Failures), e.Total)
	for i, f := range e.Failures {
		if i == 3 && len(e.Failures) > 4 {
			fmt.Fprintf(&sb, " … (+%d more)", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&sb, " [%d] %v;", f.Index, f.Err)
	}
	return strings.TrimSuffix(sb.String(), ";")
}

// Report renders the end-of-run failure report: one block per failed
// point, including the captured stack for panics. Intended for stderr
// after the surviving points have been rendered.
func (e *PointErrors) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d of %d point(s) failed (remaining points completed):\n", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		fmt.Fprintf(&sb, "  point %d (after %d attempt(s)): %v\n", f.Index, f.Attempts, f.Err)
		var pe *PanicError
		if errors.As(f.Err, &pe) && len(pe.Stack) > 0 {
			for _, line := range strings.Split(strings.TrimRight(string(pe.Stack), "\n"), "\n") {
				sb.WriteString("    ")
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

func (e *PointErrors) sort() {
	sort.Slice(e.Failures, func(i, j int) bool { return e.Failures[i].Index < e.Failures[j].Index })
}

// transientError marks an error as temporary in the sense of the defect
// taxonomy the pipeline borrows from Siegel et al.: worth a bounded,
// deterministic retry before the point is written off as failed.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err as a transient (retryable) point error. ForEach
// retries transient point failures up to a bounded attempt count with
// deterministic backoff; everything else fails fast. Retries are
// observation-only (the mc.point_retries counter) — a retried point
// recomputes the exact same streams, so results never depend on how many
// attempts it took.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is (or wraps) a transient point error.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
