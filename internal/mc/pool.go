package mc

import "sync"

// ForEach runs fn(i) for every i in [0, n) on a pool of workers goroutines
// and returns the first error encountered (by lowest index). It is the
// point-level counterpart of the shard pool inside Run/RunBatch: grid
// sweeps hand each independent configuration point to ForEach, and each
// point derives all of its randomness from (seed, point content) via
// DeriveSeed, so results are bit-identical for any worker count and any
// subset/resume order — parallelism is purely a throughput knob.
//
// fn must write its result only to caller-owned storage indexed by i (a
// pre-sized slice slot); ForEach itself imposes no ordering on completions.
// After an error, remaining indices may be skipped.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			obsPoolActive.Add(1)
			err := fn(i)
			obsPoolActive.Add(-1)
			obsPoolDone.Inc()
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     int
		mu       sync.Mutex
		firstErr error
		errIdx   int
	)
	takeJob := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := takeJob()
				if !ok {
					return
				}
				obsPoolActive.Add(1)
				err := fn(i)
				obsPoolActive.Add(-1)
				obsPoolDone.Inc()
				if err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
