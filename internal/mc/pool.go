package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Bounded retry of transient point errors: maxPointAttempts runs total per
// point, with a fixed, deterministic backoff ladder between attempts. The
// schedule is a constant — never derived from timing or randomness — so a
// faulted run retries identically every time; and because a retried point
// recomputes the exact same content-derived streams, retry count can never
// leak into results (it is observed by mc.point_retries only).
const (
	maxPointAttempts = 3
	pointRetryDelay  = 10 * time.Millisecond
)

// ForEach runs fn(i) for every i in [0, n) on a pool of workers goroutines.
// It is the point-level counterpart of the shard pool inside Run/RunBatch:
// grid sweeps hand each independent configuration point to ForEach, and
// each point derives all of its randomness from (seed, point content) via
// DeriveSeed, so results are bit-identical for any worker count and any
// subset/resume order — parallelism is purely a throughput knob.
//
// fn must write its result only to caller-owned storage indexed by i (a
// pre-sized slice slot); ForEach itself imposes no ordering on completions.
//
// Failure semantics follow the temporary/permanent defect taxonomy the rest
// of the pipeline uses:
//
//   - A panic inside fn is recovered, counted (mc.worker_panics), and
//     isolated to its point: remaining points keep running and the run
//     returns a *PointErrors aggregating the failures (stacks included).
//   - An error wrapped with Transient is retried up to maxPointAttempts
//     with deterministic backoff (mc.point_retries); if retries are
//     exhausted the point is isolated like a panic.
//   - A plain error is permanent and fatal: dispatch stops, in-flight
//     points drain, and the lowest-index error is returned.
//   - Cancellation — ctx done, or fn returning an error wrapping
//     ErrCanceled — stops dispatch at the next point boundary, drains
//     in-flight points, and returns an error wrapping ErrCanceled (joined
//     with any isolated failures so neither signal is lost).
//
// A nil ctx behaves like context.Background().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	st := &poolState{ctx: ctx, n: n}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if st.stopped() {
				break
			}
			st.record(i, runPoint(ctx, i, fn))
		}
		return st.finish()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := st.take()
				if !ok {
					return
				}
				st.record(i, runPoint(ctx, i, fn))
			}
		}()
	}
	wg.Wait()
	return st.finish()
}

// runPoint executes one point with panic recovery and bounded transient
// retry, returning the final outcome and the attempt count.
func runPoint(ctx context.Context, i int, fn func(i int) error) pointOutcome {
	defer obsPoolDone.Inc()
	for attempt := 1; ; attempt++ {
		err := callPoint(i, fn)
		if err == nil {
			return pointOutcome{attempts: attempt}
		}
		if !IsTransient(err) || attempt >= maxPointAttempts || ctx.Err() != nil {
			return pointOutcome{err: err, attempts: attempt}
		}
		obsPointRetries.Inc()
		time.Sleep(time.Duration(attempt) * pointRetryDelay)
	}
}

// callPoint invokes fn(i) with the pool bookkeeping and converts a panic
// into a *PanicError carrying the stack captured at the recovery site.
func callPoint(i int, fn func(i int) error) (err error) {
	obsPoolActive.Add(1)
	defer func() {
		obsPoolActive.Add(-1)
		if r := recover(); r != nil {
			obsWorkerPanics.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

type pointOutcome struct {
	err      error
	attempts int
}

// poolState is the shared dispatch + classification state of one ForEach
// run. Dispatch stops (draining in-flight points) on a permanent error or
// cancellation; isolated failures accumulate without stopping anything.
type poolState struct {
	ctx context.Context
	n   int

	mu       sync.Mutex
	next     int
	done     int
	fatal    error
	fatalIdx int
	canceled bool
	isolated []PointFailure
}

func (st *poolState) stopped() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fatal != nil || st.canceled || st.ctx.Err() != nil
}

func (st *poolState) take() (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fatal != nil || st.canceled || st.next >= st.n || st.ctx.Err() != nil {
		return 0, false
	}
	i := st.next
	st.next++
	return i, true
}

func (st *poolState) record(i int, out pointOutcome) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case out.err == nil:
		st.done++
	case errors.Is(out.err, ErrCanceled):
		// The point's engine run was interrupted mid-flight: nothing was
		// committed for it, resume will recompute it whole.
		st.canceled = true
	case isIsolated(out.err):
		st.isolated = append(st.isolated, PointFailure{Index: i, Err: out.err, Attempts: out.attempts})
	default:
		if st.fatal == nil || i < st.fatalIdx {
			st.fatal, st.fatalIdx = out.err, i
		}
	}
}

// isIsolated reports whether a final point error should be contained to
// its point rather than aborting the run: panics and exhausted transient
// retries qualify, plain errors are permanent and fatal.
func isIsolated(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe) || IsTransient(err)
}

func (st *poolState) finish() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fatal != nil {
		return st.fatal
	}
	var perrs *PointErrors
	if len(st.isolated) > 0 {
		perrs = &PointErrors{Total: st.n, Failures: st.isolated}
		perrs.sort()
	}
	if st.canceled || st.ctx.Err() != nil {
		cerr := fmt.Errorf("%w after %d of %d point(s)", ErrCanceled, st.done, st.n)
		if perrs != nil {
			return errors.Join(cerr, perrs)
		}
		return cerr
	}
	if perrs != nil {
		return perrs
	}
	return nil
}
