package mc

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// bernoulliWorker builds a ShotFunc failing with probability p. All
// randomness comes from the engine-supplied RNG, so results must be a pure
// function of (Config minus Workers).
func bernoulliWorker(p float64) WorkerFactory {
	return func() (ShotFunc, error) {
		return func(rng *rand.Rand) bool { return rng.Float64() < p }, nil
	}
}

func TestFixedBudgetExact(t *testing.T) {
	res, err := Run(Config{Workers: 3, MaxShots: 10_000, Seed: 1}, bernoulliWorker(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 10_000 {
		t.Errorf("Shots = %d, want 10000", res.Shots)
	}
	if res.EarlyStopped {
		t.Error("fixed budget must not early-stop")
	}
	if res.Failures == 0 || math.Abs(res.Rate-0.05) > 0.01 {
		t.Errorf("rate %v (failures %d) implausible for p=0.05", res.Rate, res.Failures)
	}
	if !(res.CILow < 0.05 && 0.05 < res.CIHigh) {
		t.Errorf("95%% CI [%v, %v] should cover the true rate", res.CILow, res.CIHigh)
	}
}

func TestBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, cfg := range []Config{
		{MaxShots: 50_000, ShardSize: 512, Seed: 11},
		{MaxShots: 200_000, ShardSize: 512, Seed: 11, TargetRSE: 0.08},
		{MaxShots: 4_099, ShardSize: 1000, Seed: 5}, // ragged final shard
	} {
		var ref *Result
		for _, workers := range []int{1, 2, 4, 8} {
			c := cfg
			c.Workers = workers
			res, err := Run(c, bernoulliWorker(0.03))
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Shots != ref.Shots || res.Failures != ref.Failures ||
				res.Shards != ref.Shards || res.EarlyStopped != ref.EarlyStopped {
				t.Errorf("cfg %+v workers=%d: got (shots=%d fails=%d shards=%d early=%v), want (%d %d %d %v)",
					cfg, workers, res.Shots, res.Failures, res.Shards, res.EarlyStopped,
					ref.Shots, ref.Failures, ref.Shards, ref.EarlyStopped)
			}
		}
	}
}

func TestEarlyStopping(t *testing.T) {
	const p = 0.05
	res, err := Run(Config{Workers: 4, MaxShots: 1_000_000, TargetRSE: 0.1, Seed: 3},
		bernoulliWorker(p))
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("p=0.05 with a 1M cap must stop early at 10% RSE")
	}
	if res.Shots >= 1_000_000 {
		t.Errorf("Shots = %d, expected far below the cap", res.Shots)
	}
	// ~100 failures reach 10% RSE at low rates; allow shard granularity.
	if res.Failures < 100 || res.Failures > 400 {
		t.Errorf("Failures = %d, expected ≈ 1/TargetRSE² plus one shard of overshoot", res.Failures)
	}
	if res.RSE > 0.1 {
		t.Errorf("achieved RSE %v exceeds the 0.1 target", res.RSE)
	}
	if !(res.CILow < p && p < res.CIHigh) {
		t.Errorf("early-stopped CI [%v, %v] should cover the true rate %v", res.CILow, res.CIHigh, p)
	}
}

// The early-stopped estimate and the fixed-budget estimate are two draws
// of the same quantity; they must agree within joint confidence bounds.
func TestEarlyStopConsistentWithFixedBudget(t *testing.T) {
	const p = 0.02
	adaptive, err := Run(Config{MaxShots: 2_000_000, TargetRSE: 0.08, Seed: 9}, bernoulliWorker(p))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(Config{MaxShots: 300_000, Seed: 10}, bernoulliWorker(p))
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.EarlyStopped {
		t.Fatal("expected adaptive run to stop early")
	}
	if fixed.Rate < adaptive.CILow || fixed.Rate > adaptive.CIHigh {
		t.Errorf("fixed-budget rate %v outside adaptive CI [%v, %v]",
			fixed.Rate, adaptive.CILow, adaptive.CIHigh)
	}
}

func TestZeroFailureRun(t *testing.T) {
	res, err := Run(Config{Workers: 2, MaxShots: 5_000, TargetRSE: 0.1, Seed: 1},
		bernoulliWorker(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.EarlyStopped {
		t.Errorf("impossible failures: %+v", res)
	}
	if res.Shots != 5_000 {
		t.Errorf("zero-failure run must exhaust the budget, got %d shots", res.Shots)
	}
	if !math.IsInf(res.RSE, 1) {
		t.Errorf("RSE = %v, want +Inf", res.RSE)
	}
	if res.CILow != 0 || res.CIHigh <= 0 {
		t.Errorf("CI [%v, %v] malformed for zero failures", res.CILow, res.CIHigh)
	}
}

// Meeting the RSE target exactly at budget exhaustion is not an early
// stop — nothing was saved.
func TestNoEarlyStopFlagOnFinalShard(t *testing.T) {
	res, err := Run(Config{MaxShots: 1024, ShardSize: 1024, TargetRSE: 10, Seed: 2},
		bernoulliWorker(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 1024 {
		t.Fatalf("Shots = %d, want the full 1024 budget", res.Shots)
	}
	if res.EarlyStopped {
		t.Error("EarlyStopped set although the whole budget was spent")
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, err := Run(Config{MaxShots: 100_000, Seed: 1}, bernoulliWorker(0.03))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{MaxShots: 100_000, Seed: 2}, bernoulliWorker(0.03))
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures == b.Failures {
		t.Error("different seeds produced identical failure counts (astronomically unlikely)")
	}
}

func TestWorkerFactoryError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Config{Workers: 4, MaxShots: 10_000}, func() (ShotFunc, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{MaxShots: 0}, bernoulliWorker(0.1)); err == nil {
		t.Error("MaxShots=0 must be rejected")
	}
	if _, err := Run(Config{MaxShots: 100}, nil); err == nil {
		t.Error("nil factory must be rejected")
	}
}

// One factory call per worker, never more — workers own their state.
func TestFactoryCalledOncePerWorker(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(Config{Workers: 4, MaxShots: 64_000, ShardSize: 1000},
		func() (ShotFunc, error) {
			calls.Add(1)
			return func(rng *rand.Rand) bool { return false }, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(res.Workers) {
		t.Errorf("factory called %d times for %d workers", got, res.Workers)
	}
}

func TestMoreWorkersThanShards(t *testing.T) {
	res, err := Run(Config{Workers: 64, MaxShots: 2_000, ShardSize: 1024, Seed: 4},
		bernoulliWorker(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Errorf("pool should shrink to the 2 available shards, got %d", res.Workers)
	}
	if res.Shots != 2_000 {
		t.Errorf("Shots = %d, want 2000", res.Shots)
	}
}

// bernoulliBatchWorker is bernoulliWorker on the batched path, drawing
// randomness identically to n sequential single-shot runs.
func bernoulliBatchWorker(p float64) BatchWorkerFactory {
	return func() (ShotBatchFunc, error) {
		return func(rng *rand.Rand, n int) int {
			failures := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					failures++
				}
			}
			return failures
		}, nil
	}
}

// TestBatchMatchesPerShot pins the batched path against the per-shot
// wrapper: every aggregate must be bit-identical for any worker count,
// with and without early stopping.
func TestBatchMatchesPerShot(t *testing.T) {
	for _, cfg := range []Config{
		{MaxShots: 50_000, ShardSize: 512, Seed: 11},
		{MaxShots: 200_000, ShardSize: 512, Seed: 11, TargetRSE: 0.08},
		{MaxShots: 4_099, ShardSize: 1000, Seed: 5}, // ragged final shard
	} {
		for _, workers := range []int{1, 3, 8} {
			c := cfg
			c.Workers = workers
			perShot, err := Run(c, bernoulliWorker(0.03))
			if err != nil {
				t.Fatal(err)
			}
			batched, err := RunBatch(c, bernoulliBatchWorker(0.03))
			if err != nil {
				t.Fatal(err)
			}
			if perShot.Shots != batched.Shots || perShot.Failures != batched.Failures ||
				perShot.Shards != batched.Shards || perShot.EarlyStopped != batched.EarlyStopped {
				t.Errorf("cfg %+v workers=%d: per-shot (shots=%d fails=%d shards=%d early=%v) vs batched (%d %d %d %v)",
					cfg, workers, perShot.Shots, perShot.Failures, perShot.Shards, perShot.EarlyStopped,
					batched.Shots, batched.Failures, batched.Shards, batched.EarlyStopped)
			}
		}
	}
}

// TestBatchSizesCoverBudget checks the scheduling quantum: every batch is
// a whole shard (the final one possibly ragged) and the batch sizes sum
// to the budget exactly.
func TestBatchSizesCoverBudget(t *testing.T) {
	const budget, shard = 4_099, 1000
	var total atomic.Int64
	var ragged atomic.Int64
	res, err := RunBatch(Config{Workers: 2, MaxShots: budget, ShardSize: shard, Seed: 3},
		func() (ShotBatchFunc, error) {
			return func(rng *rand.Rand, n int) int {
				if n != shard {
					ragged.Add(1)
					if n != budget%shard {
						t.Errorf("batch size %d is neither a full shard nor the ragged remainder", n)
					}
				}
				total.Add(int64(n))
				return 0
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != budget {
		t.Errorf("Shots = %d, want %d", res.Shots, budget)
	}
	if got := total.Load(); got != budget {
		t.Errorf("batch sizes sum to %d, want %d", got, budget)
	}
	if got := ragged.Load(); got != 1 {
		t.Errorf("saw %d ragged batches, want exactly 1", got)
	}
}

func TestBatchNilFactory(t *testing.T) {
	if _, err := RunBatch(Config{MaxShots: 100}, nil); err == nil {
		t.Error("nil batch factory must be rejected")
	}
}
