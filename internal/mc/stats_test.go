package mc

import (
	"math"
	"testing"
)

func TestRSE(t *testing.T) {
	// p = 0.01 from 100 failures in 10000 shots: sqrt(0.99/100).
	got := RSE(100, 10000)
	want := math.Sqrt(0.99 / 100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RSE(100, 10000) = %v, want %v", got, want)
	}
	if !math.IsInf(RSE(0, 1000), 1) {
		t.Error("RSE with zero failures must be +Inf")
	}
	if !math.IsInf(RSE(5, 0), 1) {
		t.Error("RSE with zero shots must be +Inf")
	}
}

func TestShotsForRSEInverse(t *testing.T) {
	p, target := 2e-3, 0.1
	n := ShotsForRSE(p, target)
	if n <= 0 {
		t.Fatalf("ShotsForRSE(%v, %v) = %d", p, target, n)
	}
	// Running exactly n shots at rate p should land at the target RSE.
	failures := int(math.Round(p * float64(n)))
	if got := RSE(failures, n); got > target*1.05 {
		t.Errorf("RSE at planned budget = %v, want <= ~%v", got, target)
	}
	if ShotsForRSE(0, 0.1) != 0 || ShotsForRSE(0.5, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 1000, DefaultZ)
	p := 0.05
	if !(lo < p && p < hi) {
		t.Errorf("interval [%v, %v] must bracket the point estimate %v", lo, hi, p)
	}
	if hi-lo > 0.03 {
		t.Errorf("interval [%v, %v] implausibly wide for n=1000", lo, hi)
	}

	// Zero failures: lower bound pinned at 0, upper near the rule of three.
	lo, hi = WilsonInterval(0, 100, DefaultZ)
	if lo != 0 {
		t.Errorf("zero-failure lower bound = %v, want 0", lo)
	}
	if hi < 0.02 || hi > 0.06 {
		t.Errorf("zero-failure upper bound = %v, want ≈ 0.037", hi)
	}

	// All failures: upper bound pinned at 1.
	if _, hi = WilsonInterval(100, 100, DefaultZ); hi != 1 {
		t.Errorf("all-failure upper bound = %v, want 1", hi)
	}
	if lo, hi = WilsonInterval(0, 0, DefaultZ); lo != 0 || hi != 1 {
		t.Errorf("no-data interval = [%v, %v], want [0, 1]", lo, hi)
	}
}
