package mc

import (
	"reflect"
	"testing"

	"surfdeformer/internal/obs"
)

// The engine's metrics are observation only: a run whose registry is being
// concurrently snapshotted and reset must return a Result bit-identical to
// an undisturbed run. This is the metrics half of the determinism contract
// (the tracing half lives in package traj).
func TestRunObservationInvariant(t *testing.T) {
	cfg := Config{Workers: 4, MaxShots: 120_000, ShardSize: 512, Seed: 9, TargetRSE: 0.1}
	baseline, err := Run(cfg, bernoulliWorker(0.02))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Default().Snapshot()
				obs.Default().Reset()
			}
		}
	}()
	observed, err := Run(cfg, bernoulliWorker(0.02))
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, baseline) {
		t.Errorf("run under registry churn diverges:\n observed: %+v\n baseline: %+v", observed, baseline)
	}
}
