package mc

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"surfdeformer/internal/obs"
)

// The engine's metrics are observation only: a run whose registry is being
// concurrently snapshotted and reset must return a Result bit-identical to
// an undisturbed run. This is the metrics half of the determinism contract
// (the tracing half lives in package traj).
func TestRunObservationInvariant(t *testing.T) {
	cfg := Config{Workers: 4, MaxShots: 120_000, ShardSize: 512, Seed: 9, TargetRSE: 0.1}
	baseline, err := Run(cfg, bernoulliWorker(0.02))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Default().Snapshot()
				obs.Default().Reset()
			}
		}
	}()
	observed, err := Run(cfg, bernoulliWorker(0.02))
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(observed, baseline) {
		t.Errorf("run under registry churn diverges:\n observed: %+v\n baseline: %+v", observed, baseline)
	}
}

// The fault counters (mc.worker_panics, mc.point_retries) are observation
// only like every other metric: a faulted ForEach run — transient retries
// plus an isolated panic — under registry churn computes exactly the
// values of an undisturbed faulted run, and returns the same failure
// classification.
func TestForEachFaultObservationInvariant(t *testing.T) {
	faultedRun := func() ([]int64, error) {
		out := make([]int64, 24)
		var mu sync.Mutex
		attempts := make([]int, len(out))
		err := ForEach(context.Background(), 4, len(out), func(i int) error {
			mu.Lock()
			attempts[i]++
			first := attempts[i] == 1
			mu.Unlock()
			if i == 7 {
				panic("injected")
			}
			if first && i%5 == 0 {
				return Transient(fmt.Errorf("flaky %d", i))
			}
			out[i] = DeriveSeed(41, int64(i))
			return nil
		})
		return out, err
	}
	baseline, berr := faultedRun()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				obs.Default().Snapshot()
				obs.Default().Reset()
			}
		}
	}()
	observed, oerr := faultedRun()
	close(stop)
	<-done

	if !reflect.DeepEqual(observed, baseline) {
		t.Errorf("faulted run under registry churn diverges:\n observed: %v\n baseline: %v", observed, baseline)
	}
	var bp, op *PointErrors
	if !errors.As(berr, &bp) || !errors.As(oerr, &op) {
		t.Fatalf("fault classification changed: baseline %v, observed %v", berr, oerr)
	}
	if bp.Total != op.Total || len(bp.Failures) != len(op.Failures) ||
		bp.Failures[0].Index != op.Failures[0].Index {
		t.Errorf("failure report diverges under churn:\n observed: %v\n baseline: %v", op, bp)
	}
}
