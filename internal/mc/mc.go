// Package mc is the concurrent Monte-Carlo execution engine behind every
// memory experiment in the repository.
//
// The engine shards a shot budget into fixed-size shards, each with its own
// RNG stream derived from the user seed via SplitMix64 (ShardSeed), and
// fans the shards out over a worker pool. Each worker owns a private
// sampler + decoder built once by the caller's WorkerFactory, so no state
// is shared on the per-shot hot path. Because shard streams depend only on
// (seed, shard index) and shard aggregates are committed in shard order,
// the result is bit-identical for any worker count — Workers is purely a
// throughput knob.
//
// Adaptive early stopping: with TargetRSE > 0 the engine stops once the
// relative standard error of the failure-rate estimate reaches the target
// (≈ 1/sqrt(failures), so ~100 failures for 10%). The stopping decision is
// evaluated on the in-shard-order prefix of committed shards; speculative
// shards completed beyond the deterministic cutoff are discarded, keeping
// early-stopped results bit-identical across worker counts too. At low
// logical error rates this saves orders of magnitude of shots versus a
// fixed budget sized for the worst configuration in a sweep.
//
// The engine is deliberately generic — one callback that runs a shot (or a
// batch of shots) and reports failures — so package sim can layer DEM
// construction, caching and decoder wiring on top without an import cycle.
// The batched path (RunBatch/ShotBatchFunc) hands a worker one whole shard
// per call, amortizing per-shot closure-call overhead; Run wraps a
// single-shot closure onto it, and both paths are bit-identical.
//
// Parallelism exists at two levels, both governed by the same determinism
// contract. Within a point, Run/RunBatch shard the shot budget; across
// points, ForEach fans independent grid configurations out over a second
// pool. Every stream at either level is derived from the user seed by the
// SplitMix64 chain (DeriveSeed/ShardSeed/StringSeed), a pure function of
// (seed, content path): no stream ever depends on worker count, scheduling
// order, grid position, or which subset of points a resumed session still
// has to compute. That invariant is what lets the persistent result store
// (package store) merge rows from different sessions and worker counts into
// one statistically coherent aggregate.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"

	"surfdeformer/internal/obs"
)

// Engine metrics, resolved once so commits pay one atomic add each. They
// observe only committed (non-speculative) work, so their values are as
// deterministic as the results themselves. The fault counters
// (worker_panics, point_retries) observe failure handling and are, like
// every obs metric, forbidden from feeding back into results.
var (
	obsShots        = obs.Default().Counter("mc.shots_committed")
	obsShards       = obs.Default().Counter("mc.shards_committed")
	obsEarlyStops   = obs.Default().Counter("mc.early_stops")
	obsPoolActive   = obs.Default().Gauge("mc.pool.active")
	obsPoolDone     = obs.Default().Counter("mc.pool.points_done")
	obsWorkerPanics = obs.Default().Counter("mc.worker_panics")
	obsPointRetries = obs.Default().Counter("mc.point_retries")
)

// DefaultShardSize is the number of shots per shard. It is a fixed
// constant, not a function of worker count: shard boundaries define the
// RNG streams, so changing it changes sampled results (like changing the
// seed), while changing Workers never does. 1024 shots amortize shard
// dispatch overhead while keeping early-stopping granularity fine.
const DefaultShardSize = 1024

// ShotFunc runs one Monte-Carlo shot with the given RNG and reports
// whether the shot was a logical failure. Implementations may keep
// per-worker scratch state but must draw all randomness from rng.
type ShotFunc func(rng *rand.Rand) bool

// WorkerFactory builds the per-worker shot closure. It is called once per
// worker, concurrently; each call must return a closure with its own
// mutable state (sampler scratch, decoder cluster arrays, …).
type WorkerFactory func() (ShotFunc, error)

// ShotBatchFunc runs n consecutive shots with the given RNG and returns
// the number of logical failures. It is the batched counterpart of
// ShotFunc: the engine hands a worker one whole scheduling quantum (a
// shard) per call, so per-shot function-call and commit overhead
// amortizes across the batch. Implementations must draw exactly the same
// randomness, in the same order, as n sequential single-shot runs would —
// that is what keeps the batched and per-shot paths bit-identical.
type ShotBatchFunc func(rng *rand.Rand, n int) (failures int)

// BatchWorkerFactory builds the per-worker batch closure. It is called
// once per worker, concurrently, like WorkerFactory.
type BatchWorkerFactory func() (ShotBatchFunc, error)

// Config parameterizes one engine run.
type Config struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU(). The value
	// never affects results, only wall-clock time.
	Workers int
	// MaxShots is the shot budget: exact when TargetRSE == 0, a cap
	// otherwise. Required.
	MaxShots int
	// TargetRSE, when positive, enables adaptive early stopping at this
	// relative standard error of the failure rate (e.g. 0.1 for 10%).
	TargetRSE float64
	// ShardSize overrides DefaultShardSize (for tests).
	ShardSize int
	// Seed selects the deterministic RNG stream family.
	Seed int64
	// Ctx, when non-nil, cancels the run cooperatively: dispatch stops at
	// the next shard boundary, in-flight shards drain, and RunBatch
	// returns a nil Result with an error wrapping ErrCanceled. The
	// partial aggregate is discarded, never persisted — an interrupted
	// point is recomputed whole on resume, which is what keeps resumed
	// stores byte-identical to uninterrupted runs.
	Ctx context.Context
}

// Result is the aggregate of one engine run. All fields except Workers are
// bit-identical for any worker count at a fixed (Config minus Workers).
type Result struct {
	Shots    int // shots actually committed
	Failures int
	Rate     float64 // Failures / Shots
	RSE      float64 // achieved relative standard error (+Inf at 0 failures)
	// CILow and CIHigh bound Rate with a 95% Wilson score interval.
	CILow, CIHigh float64
	Shards        int // shards committed
	Workers       int // pool size actually used
	EarlyStopped  bool
}

type shardResult struct {
	shard, shots, failures int
}

// Run executes the Monte-Carlo experiment described by cfg, building one
// shot closure per worker via newWorker. It is a thin wrapper over
// RunBatch: each worker's single-shot closure is looped over the shard by
// the engine, so results are bit-identical to the batched path.
func Run(cfg Config, newWorker WorkerFactory) (*Result, error) {
	if newWorker == nil {
		return nil, errors.New("mc: nil worker factory")
	}
	return RunBatch(cfg, func() (ShotBatchFunc, error) {
		shot, err := newWorker()
		if err != nil {
			return nil, err
		}
		return func(rng *rand.Rand, n int) int {
			failures := 0
			for i := 0; i < n; i++ {
				if shot(rng) {
					failures++
				}
			}
			return failures
		}, nil
	})
}

// RunBatch executes the Monte-Carlo experiment described by cfg on the
// batched worker path: each worker processes one shard (the scheduling
// quantum) per ShotBatchFunc call and commits a single per-batch failure
// count. Shard RNG streams and in-order commit are identical to Run, so
// results are bit-identical across the two paths and across worker counts.
func RunBatch(cfg Config, newWorker BatchWorkerFactory) (*Result, error) {
	if newWorker == nil {
		return nil, errors.New("mc: nil worker factory")
	}
	if cfg.MaxShots <= 0 {
		return nil, fmt.Errorf("mc: MaxShots must be positive, got %d", cfg.MaxShots)
	}
	shardSize := cfg.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	numShards := (cfg.MaxShots + shardSize - 1) / shardSize
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > numShards {
		workers = numShards
	}

	// A nil Ctx yields a nil Done channel, which never selects — the
	// uncancellable fast path costs nothing.
	var ctxDone <-chan struct{}
	if cfg.Ctx != nil {
		ctxDone = cfg.Ctx.Done()
	}

	jobs := make(chan int)
	results := make(chan shardResult, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	// Dispatcher: hand out shard indices in order until done, cancelled,
	// or the run's context expires. On context cancellation dispatch just
	// stops — in-flight shards drain and commit, so the run ends at a
	// clean shard boundary.
	go func() {
		defer close(jobs)
		for i := 0; i < numShards; i++ {
			select {
			case jobs <- i:
			case <-stop:
				return
			case <-ctxDone:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking worker must not crash the process: recover,
			// capture the stack, and fail the run like a factory error.
			// ForEach then isolates the failure to the one grid point
			// whose engine run this was.
			defer func() {
				if r := recover(); r != nil {
					obsWorkerPanics.Inc()
					errc <- &PanicError{Value: r, Stack: debug.Stack()}
					cancel()
				}
			}()
			batch, err := newWorker()
			if err != nil {
				errc <- err
				cancel()
				return
			}
			for shard := range jobs {
				n := shardSize
				if rem := cfg.MaxShots - shard*shardSize; rem < n {
					n = rem
				}
				rng := rand.New(rand.NewSource(ShardSeed(cfg.Seed, shard)))
				failures := batch(rng, n)
				select {
				case results <- shardResult{shard, n, failures}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	// Aggregator: commit shard aggregates strictly in shard order so the
	// early-stopping cutoff — the first prefix meeting TargetRSE — is a
	// deterministic function of the shard streams alone. Shards completed
	// past the cutoff are speculative work and are discarded.
	res := &Result{Workers: workers}
	pending := make(map[int]shardResult)
	next := 0
	for r := range results {
		pending[r.shard] = r
		for {
			pr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if res.EarlyStopped {
				continue
			}
			res.Shots += pr.shots
			res.Failures += pr.failures
			res.Shards++
			obsShots.Add(int64(pr.shots))
			obsShards.Inc()
			// Meeting the target on the final shard saves nothing; only
			// flag a stop while budget actually remains.
			if cfg.TargetRSE > 0 && res.Shots < cfg.MaxShots &&
				RSE(res.Failures, res.Shots) <= cfg.TargetRSE {
				res.EarlyStopped = true
				obsEarlyStops.Inc()
				cancel()
			}
		}
	}
	cancel()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	// Cancellation that raced with completion is not an interruption: if
	// every shard committed (or the run early-stopped on its own), the
	// result is whole and the context no longer matters.
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil && !res.EarlyStopped && res.Shots < cfg.MaxShots {
		return nil, fmt.Errorf("%w after %d of %d shots", ErrCanceled, res.Shots, cfg.MaxShots)
	}
	res.Rate = float64(res.Failures) / float64(res.Shots)
	res.RSE = RSE(res.Failures, res.Shots)
	res.CILow, res.CIHigh = WilsonInterval(res.Failures, res.Shots, DefaultZ)
	return res, nil
}
