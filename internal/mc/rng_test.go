package mc

import "testing"

// Reference output of SplitMix64 from state 0 (Vigna's splitmix64.c, the
// de-facto test vectors shared by the xoshiro seeding literature).
func TestSplitMix64KnownVectors(t *testing.T) {
	s := splitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestShardSeedStableAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for shard := 0; shard < 4096; shard++ {
		s := ShardSeed(42, shard)
		if again := ShardSeed(42, shard); again != s {
			t.Fatalf("ShardSeed(42, %d) not stable: %d vs %d", shard, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, shard, s)
		}
		seen[s] = shard
	}
}

// Adjacent user seeds are the RunMemoryBoth convention (seed, seed+1); the
// families they spawn must not overlap.
func TestShardSeedAdjacentUserSeeds(t *testing.T) {
	a := map[int64]bool{}
	for shard := 0; shard < 1024; shard++ {
		a[ShardSeed(7, shard)] = true
	}
	for shard := 0; shard < 1024; shard++ {
		if a[ShardSeed(8, shard)] {
			t.Fatalf("seed families 7 and 8 share shard seed at shard %d", shard)
		}
	}
}
