package mc

import "testing"

// Reference output of SplitMix64 from state 0 (Vigna's splitmix64.c, the
// de-facto test vectors shared by the xoshiro seeding literature).
func TestSplitMix64KnownVectors(t *testing.T) {
	s := splitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := s.next(); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestShardSeedStableAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for shard := 0; shard < 4096; shard++ {
		s := ShardSeed(42, shard)
		if again := ShardSeed(42, shard); again != s {
			t.Fatalf("ShardSeed(42, %d) not stable: %d vs %d", shard, s, again)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, shard, s)
		}
		seen[s] = shard
	}
}

// Adjacent user seeds are the RunMemoryBoth convention (seed, seed+1); the
// families they spawn must not overlap.
func TestShardSeedAdjacentUserSeeds(t *testing.T) {
	a := map[int64]bool{}
	for shard := 0; shard < 1024; shard++ {
		a[ShardSeed(7, shard)] = true
	}
	for shard := 0; shard < 1024; shard++ {
		if a[ShardSeed(8, shard)] {
			t.Fatalf("seed families 7 and 8 share shard seed at shard %d", shard)
		}
	}
}

// ShardSeed is documented as the single-element case of the DeriveSeed
// chain; the persistent store's segment seeds rely on the negative-salt
// escape hatch never colliding with it.
func TestDeriveSeedShardCompat(t *testing.T) {
	for shard := 0; shard < 256; shard++ {
		if DeriveSeed(42, int64(shard)) != ShardSeed(42, shard) {
			t.Fatalf("DeriveSeed(42, %d) diverges from ShardSeed", shard)
		}
	}
}

func TestDeriveSeedPathSensitivity(t *testing.T) {
	seen := map[int64]string{}
	add := func(label string, s int64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("paths %s and %s collide on seed %d", prev, label, s)
		}
		seen[s] = label
	}
	add("root", DeriveSeed(9))
	add("a,b", DeriveSeed(9, 3, 5))
	add("b,a", DeriveSeed(9, 5, 3)) // order matters
	add("a", DeriveSeed(9, 3))      // prefixes differ from extensions
	add("a,b,c", DeriveSeed(9, 3, 5, 0))
	add("neg", DeriveSeed(9, -7, 3)) // negative salts are their own family
	if DeriveSeed(9, 3, 5) != DeriveSeed(9, 3, 5) {
		t.Fatal("DeriveSeed not stable")
	}
}

func TestStringSeedStableAndDistinct(t *testing.T) {
	if StringSeed("surf-deformer") != StringSeed("surf-deformer") {
		t.Fatal("StringSeed not stable")
	}
	names := []string{"", "uf", "greedy", "exact", "simon-400-1000", "simon-900-1500",
		"rca-225-500", "rca-729-100", "qft-25-160", "qft-100-20", "grover-9-80", "grover-16-2"}
	seen := map[int64]string{}
	for _, n := range names {
		s := StringSeed(n)
		if prev, dup := seen[s]; dup {
			t.Fatalf("%q and %q collide", prev, n)
		}
		seen[s] = n
	}
}
