package pauli

import (
	"math/rand"
	"testing"
	"testing/quick"

	"surfdeformer/internal/lattice"
)

func c(r, col int) lattice.Coord { return lattice.Coord{Row: r, Col: col} }

func TestIdentity(t *testing.T) {
	var id Op
	if !id.IsIdentity() {
		t.Error("zero value should be identity")
	}
	if id.Weight() != 0 {
		t.Error("identity weight should be 0")
	}
	if id.String() != "I" {
		t.Errorf("identity String = %q", id.String())
	}
	x := X(c(0, 0))
	if !Mul(x, x).IsIdentity() {
		t.Error("X·X should be identity")
	}
}

func TestCanonCancellation(t *testing.T) {
	// X(a)·X(a) built in one call: duplicate coordinates cancel.
	op := X(c(1, 1), c(1, 1))
	if !op.IsIdentity() {
		t.Error("even repetitions should cancel")
	}
	op = X(c(1, 1), c(1, 1), c(1, 1))
	if op.Weight() != 1 {
		t.Error("odd repetitions should leave one")
	}
}

func TestWeightAndSupport(t *testing.T) {
	op := FromSupports(
		[]lattice.Coord{c(0, 0), c(1, 1)},
		[]lattice.Coord{c(1, 1), c(2, 2)},
	)
	if got := op.Weight(); got != 3 {
		t.Fatalf("Weight = %d, want 3 (X,Y,Z)", got)
	}
	if got := op.PauliAt(c(1, 1)); got != "Y" {
		t.Errorf("PauliAt(1,1) = %s, want Y", got)
	}
	if got := op.PauliAt(c(0, 0)); got != "X" {
		t.Errorf("PauliAt(0,0) = %s, want X", got)
	}
	if got := op.PauliAt(c(2, 2)); got != "Z" {
		t.Errorf("PauliAt(2,2) = %s, want Z", got)
	}
	if got := op.PauliAt(c(9, 9)); got != "I" {
		t.Errorf("PauliAt(9,9) = %s, want I", got)
	}
	if len(op.Support()) != 3 {
		t.Errorf("Support = %v", op.Support())
	}
}

func TestCommutation(t *testing.T) {
	// X and Z on the same qubit anti-commute.
	if X(c(0, 0)).Commutes(Z(c(0, 0))) {
		t.Error("X0 and Z0 must anti-commute")
	}
	// Disjoint supports commute.
	if !X(c(0, 0)).Commutes(Z(c(1, 1))) {
		t.Error("disjoint X and Z must commute")
	}
	// Overlap of two anti-commuting pairs -> commute overall.
	a := X(c(0, 0), c(1, 1))
	b := Z(c(0, 0), c(1, 1))
	if !a.Commutes(b) {
		t.Error("even overlap must commute")
	}
	// Y with X on same qubit anti-commutes.
	if Y(c(0, 0)).Commutes(X(c(0, 0))) {
		t.Error("Y and X must anti-commute")
	}
	// Y with Y commutes.
	if !Y(c(0, 0)).Commutes(Y(c(0, 0))) {
		t.Error("Y and Y must commute")
	}
}

func TestMulCSS(t *testing.T) {
	a := Z(c(0, 0), c(0, 2))
	b := Z(c(0, 2), c(0, 4))
	p := Mul(a, b)
	if got, _ := p.CSSType(); got != lattice.ZCheck {
		t.Error("product of Z ops must be Z-type")
	}
	if p.Weight() != 2 {
		t.Fatalf("weight = %d, want 2", p.Weight())
	}
	if !p.ActsOn(c(0, 0)) || !p.ActsOn(c(0, 4)) || p.ActsOn(c(0, 2)) {
		t.Error("shared qubit should cancel in product")
	}
}

func TestMulMixedMakesY(t *testing.T) {
	p := Mul(X(c(0, 0)), Z(c(0, 0)))
	if p.PauliAt(c(0, 0)) != "Y" {
		t.Errorf("X·Z at same qubit = %s, want Y", p.PauliAt(c(0, 0)))
	}
	if p.Weight() != 1 {
		t.Errorf("weight = %d, want 1", p.Weight())
	}
}

func TestCSSType(t *testing.T) {
	if typ, ok := X(c(0, 0)).CSSType(); !ok || typ != lattice.XCheck {
		t.Error("pure X op should be X-type")
	}
	if typ, ok := Z(c(0, 0)).CSSType(); !ok || typ != lattice.ZCheck {
		t.Error("pure Z op should be Z-type")
	}
	if _, ok := Y(c(0, 0)).CSSType(); ok {
		t.Error("Y op is not CSS")
	}
	if !Y(c(0, 0)).IsCSS() == true {
		// Y has both supports; IsCSS must be false.
		t.Log("ok")
	}
	if Y(c(0, 0)).IsCSS() {
		t.Error("Y op must not report CSS")
	}
}

func TestRestrictedTo(t *testing.T) {
	op := FromSupports(
		[]lattice.Coord{c(0, 0), c(1, 1)},
		[]lattice.Coord{c(2, 2)},
	)
	keep := func(q lattice.Coord) bool { return q != c(1, 1) }
	r := op.RestrictedTo(keep)
	if r.ActsOn(c(1, 1)) {
		t.Error("restricted op still acts on removed qubit")
	}
	if !r.ActsOn(c(0, 0)) || !r.ActsOn(c(2, 2)) {
		t.Error("restriction dropped kept qubits")
	}
}

func TestEqual(t *testing.T) {
	a := X(c(0, 0), c(2, 2))
	b := X(c(2, 2), c(0, 0))
	if !a.Equal(b) {
		t.Error("order of construction must not matter")
	}
	if a.Equal(Z(c(0, 0), c(2, 2))) {
		t.Error("X op must differ from Z op")
	}
}

func TestString(t *testing.T) {
	op := Mul(X(c(0, 0)), Z(c(0, 2)))
	if got := op.String(); got != "X(0,0) Z(0,2)" {
		t.Errorf("String = %q", got)
	}
}

func randOp(rng *rand.Rand, n int) Op {
	var xs, zs []lattice.Coord
	for i := 0; i < n; i++ {
		q := c(rng.Intn(5), rng.Intn(5))
		switch rng.Intn(3) {
		case 0:
			xs = append(xs, q)
		case 1:
			zs = append(zs, q)
		default:
			xs = append(xs, q)
			zs = append(zs, q)
		}
	}
	return FromSupports(xs, zs)
}

// Property: multiplication is associative and self-inverse (a·a = I).
func TestQuickMulGroupLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, cc := randOp(rng, 4), randOp(rng, 4), randOp(rng, 4)
		if !Mul(a, a).IsIdentity() {
			return false
		}
		lhs := Mul(Mul(a, b), cc)
		rhs := Mul(a, Mul(b, cc))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: commutation is symmetric, and multiplying two commuting ops
// produces an op whose commutation with a third follows the product rule:
// [ab, c] anti-commutes iff exactly one of a,b anti-commutes with c.
func TestQuickCommutationBilinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, cc := randOp(rng, 4), randOp(rng, 4), randOp(rng, 4)
		if a.Commutes(b) != b.Commutes(a) {
			return false
		}
		want := a.Commutes(cc) == b.Commutes(cc) // XOR of anti-commutations
		return Mul(a, b).Commutes(cc) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: weight is subadditive under multiplication.
func TestQuickWeightSubadditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randOp(rng, 5), randOp(rng, 5)
		return Mul(a, b).Weight() <= a.Weight()+b.Weight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
