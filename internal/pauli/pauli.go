// Package pauli implements sparse Pauli operators over lattice qubits.
//
// An operator is stored as two sorted coordinate sets: the X support and the
// Z support. A qubit in both supports carries a Pauli Y. Global phases are
// deliberately not tracked: every consumer in this repository (stabilizer
// bookkeeping, distance computation, deformation) works modulo phase, which
// is the standard convention for CSS-code manipulation.
package pauli

import (
	"sort"
	"strings"

	"surfdeformer/internal/lattice"
)

// Op is a sparse Pauli operator. The zero value is the identity.
type Op struct {
	xs []lattice.Coord // sorted row-major
	zs []lattice.Coord // sorted row-major
}

// X returns the operator ∏ X_c over the given coordinates.
func X(coords ...lattice.Coord) Op { return Op{xs: canon(coords)} }

// Z returns the operator ∏ Z_c over the given coordinates.
func Z(coords ...lattice.Coord) Op { return Op{zs: canon(coords)} }

// Y returns the operator ∏ Y_c over the given coordinates.
func Y(coords ...lattice.Coord) Op {
	c := canon(coords)
	return Op{xs: c, zs: append([]lattice.Coord(nil), c...)}
}

// FromSupports builds an operator from explicit X and Z supports. Duplicate
// coordinates within one support cancel (X·X = I).
func FromSupports(xs, zs []lattice.Coord) Op {
	return Op{xs: canon(xs), zs: canon(zs)}
}

// canon sorts the coordinates and cancels pairs: an even number of
// occurrences of a coordinate vanishes, an odd number leaves one.
func canon(coords []lattice.Coord) []lattice.Coord {
	if len(coords) == 0 {
		return nil
	}
	cs := append([]lattice.Coord(nil), coords...)
	lattice.SortCoords(cs)
	out := cs[:0]
	for i := 0; i < len(cs); {
		j := i
		for j < len(cs) && cs[j] == cs[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, cs[i])
		}
		i = j
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// XSupport returns the X support (shared slice; callers must not mutate).
func (o Op) XSupport() []lattice.Coord { return o.xs }

// ZSupport returns the Z support (shared slice; callers must not mutate).
func (o Op) ZSupport() []lattice.Coord { return o.zs }

// IsIdentity reports whether o acts trivially on every qubit.
func (o Op) IsIdentity() bool { return len(o.xs) == 0 && len(o.zs) == 0 }

// IsCSS reports whether o is a pure X-type or pure Z-type operator.
func (o Op) IsCSS() bool { return len(o.xs) == 0 || len(o.zs) == 0 }

// CSSType returns the check flavour of a CSS operator. For pure-X operators
// it returns lattice.XCheck; for pure-Z, lattice.ZCheck; mixed operators
// return ok=false. The identity reports as X-type by convention.
func (o Op) CSSType() (lattice.CheckType, bool) {
	switch {
	case len(o.zs) == 0:
		return lattice.XCheck, true
	case len(o.xs) == 0:
		return lattice.ZCheck, true
	default:
		return 0, false
	}
}

// Weight returns the number of qubits o acts on non-trivially.
func (o Op) Weight() int {
	return len(o.xs) + len(o.zs) - overlapCount(o.xs, o.zs)
}

// Support returns the sorted set of qubits o acts on.
func (o Op) Support() []lattice.Coord { return union(o.xs, o.zs) }

// ActsOn reports whether o is non-trivial on coordinate c.
func (o Op) ActsOn(c lattice.Coord) bool { return contains(o.xs, c) || contains(o.zs, c) }

// PauliAt returns the single-qubit Pauli of o at c as one of "I","X","Y","Z".
func (o Op) PauliAt(c lattice.Coord) string {
	x, z := contains(o.xs, c), contains(o.zs, c)
	switch {
	case x && z:
		return "Y"
	case x:
		return "X"
	case z:
		return "Z"
	default:
		return "I"
	}
}

// Mul returns the product o·p (phases dropped).
func Mul(o, p Op) Op {
	return Op{xs: symDiff(o.xs, p.xs), zs: symDiff(o.zs, p.zs)}
}

// Commutes reports whether o and p commute. Two Paulis commute iff the
// symplectic overlap |X(o)∩Z(p)| + |Z(o)∩X(p)| is even.
func (o Op) Commutes(p Op) bool {
	return (overlapCount(o.xs, p.zs)+overlapCount(o.zs, p.xs))%2 == 0
}

// Equal reports whether o and p are the same operator (up to phase).
func (o Op) Equal(p Op) bool {
	return coordsEqual(o.xs, p.xs) && coordsEqual(o.zs, p.zs)
}

// RestrictedTo returns the operator with support intersected with keep.
// It is used when qubits are physically removed from a code.
func (o Op) RestrictedTo(keep func(lattice.Coord) bool) Op {
	return Op{xs: filter(o.xs, keep), zs: filter(o.zs, keep)}
}

// String renders the operator as e.g. "X(1,1) X(1,3) Z(3,1)"; identity
// renders as "I".
func (o Op) String() string {
	if o.IsIdentity() {
		return "I"
	}
	var parts []string
	for _, c := range o.Support() {
		parts = append(parts, o.PauliAt(c)+c.String())
	}
	return strings.Join(parts, " ")
}

// contains reports membership via binary search on a sorted slice.
func contains(cs []lattice.Coord, c lattice.Coord) bool {
	i := sort.Search(len(cs), func(i int) bool { return !cs[i].Less(c) })
	return i < len(cs) && cs[i] == c
}

// overlapCount returns |a ∩ b| for sorted slices.
func overlapCount(a, b []lattice.Coord) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	return n
}

// symDiff returns the symmetric difference of two sorted slices.
func symDiff(a, b []lattice.Coord) []lattice.Coord {
	var out []lattice.Coord
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// union returns the sorted union of two sorted slices.
func union(a, b []lattice.Coord) []lattice.Coord {
	var out []lattice.Coord
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func filter(cs []lattice.Coord, keep func(lattice.Coord) bool) []lattice.Coord {
	var out []lattice.Coord
	for _, c := range cs {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

func coordsEqual(a, b []lattice.Coord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
