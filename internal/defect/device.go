package defect

import (
	"math/rand"

	"surfdeformer/internal/lattice"
)

// Permanent fabrication defects (Siegel et al., arXiv 2211.08468): unlike
// the dynamic taxonomy in variants.go, fabrication defects are properties
// of the *device*, present from boot and never subsiding. A DeviceModel
// describes the defect statistics of a fabrication process; Sample draws a
// concrete Device from it, BandAuto-style — each qubit (and each coupler,
// represented by its syndrome site) flips a defect coin independently. The
// runtime adapts the code to the sampled device at boot (bandage
// super-stabilizers or removal, per the mitigation ladder) and then runs
// dynamic defects on top of the already-degraded device.

// DeviceModel describes the fabrication-defect statistics of a device
// family. The zero value is a perfect fab (no defects).
type DeviceModel struct {
	// QubitDefectRate is the probability that any given data qubit is
	// fabricated defective.
	QubitDefectRate float64
	// CouplerDefectRate is the probability that any given syndrome site's
	// couplers are fabricated defective (modelled at the syndrome site, as
	// a broken measure qubit subsumes its four couplers).
	CouplerDefectRate float64
	// ErrorRate is the effective local error rate of a defective site —
	// what the mitigation ladder classifies at boot. Inoperable hardware
	// errs at coin-flip rate, so the default is 0.5.
	ErrorRate float64
}

// NewDeviceModel is the common symmetric case: data qubits and couplers
// defective at the same rate, defective sites fully inoperable.
func NewDeviceModel(rate float64) *DeviceModel {
	return &DeviceModel{QubitDefectRate: rate, CouplerDefectRate: rate, ErrorRate: 0.5}
}

// Device is one concrete sampled device: which sites came out of
// fabrication defective, and how badly they err.
type Device struct {
	// DataDefects are the defective data-qubit sites, sorted.
	DataDefects []lattice.Coord
	// SyndromeDefects are the defective syndrome sites, sorted.
	SyndromeDefects []lattice.Coord
	// ErrorRate is the local error rate of every defective site.
	ErrorRate float64
}

// Sample draws a device over the lattice bounding box [min, max] from a
// seed. Sampling is deterministic: sites are visited in the fixed
// row-major order of Sites, one uniform draw per site, so the same
// (bounds, seed) always yields the same device regardless of caller
// context — the property the trajectory engine's paired-arm and resume
// contracts rely on.
func (m *DeviceModel) Sample(min, max lattice.Coord, seed int64) *Device {
	d := &Device{ErrorRate: m.ErrorRate}
	if m.ErrorRate <= 0 {
		d.ErrorRate = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	for _, q := range Sites(min, max) {
		switch {
		case q.IsData():
			if rng.Float64() < m.QubitDefectRate {
				d.DataDefects = append(d.DataDefects, q)
			}
		default:
			if rng.Float64() < m.CouplerDefectRate {
				d.SyndromeDefects = append(d.SyndromeDefects, q)
			}
		}
	}
	return d
}
