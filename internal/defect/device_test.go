package defect

import (
	"reflect"
	"testing"

	"surfdeformer/internal/lattice"
)

// TestDeviceSampleDeterministic pins the device-sampling contract: the
// same (model, bounds, seed) always yields the same device, different
// seeds differ, and the sampled sites are sorted and correctly typed.
func TestDeviceSampleDeterministic(t *testing.T) {
	m := NewDeviceModel(0.1)
	min, max := lattice.Coord{Row: 0, Col: 0}, lattice.Coord{Row: 12, Col: 12}
	a := m.Sample(min, max, 42)
	b := m.Sample(min, max, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed sampled different devices")
	}
	c := m.Sample(min, max, 43)
	if reflect.DeepEqual(a.DataDefects, c.DataDefects) && reflect.DeepEqual(a.SyndromeDefects, c.SyndromeDefects) {
		t.Error("different seeds sampled identical devices (suspicious at 10% rates)")
	}
	for _, q := range a.DataDefects {
		if !q.IsData() {
			t.Errorf("data defect %v is not a data site", q)
		}
	}
	for _, q := range a.SyndromeDefects {
		if q.IsData() {
			t.Errorf("syndrome defect %v is a data site", q)
		}
	}
	if !sortedCoords(a.DataDefects) || !sortedCoords(a.SyndromeDefects) {
		t.Error("sampled defects not in deterministic row-major order")
	}
	if a.ErrorRate != 0.5 {
		t.Errorf("NewDeviceModel error rate %g, want 0.5", a.ErrorRate)
	}
}

func sortedCoords(qs []lattice.Coord) bool {
	for i := 1; i < len(qs); i++ {
		if qs[i].Row < qs[i-1].Row || (qs[i].Row == qs[i-1].Row && qs[i].Col <= qs[i-1].Col) {
			return false
		}
	}
	return true
}

// TestDeviceSampleRates sanity-checks the coin flips: a perfect fab has no
// defects, a broken one defects everything, and asymmetric rates apply to
// the right site class.
func TestDeviceSampleRates(t *testing.T) {
	min, max := lattice.Coord{Row: 0, Col: 0}, lattice.Coord{Row: 20, Col: 20}
	if d := (&DeviceModel{}).Sample(min, max, 1); len(d.DataDefects)+len(d.SyndromeDefects) != 0 {
		t.Error("perfect fab sampled defects")
	}
	full := (&DeviceModel{QubitDefectRate: 1, CouplerDefectRate: 1, ErrorRate: 0.4}).Sample(min, max, 1)
	if len(full.DataDefects) == 0 || len(full.SyndromeDefects) == 0 {
		t.Error("rate-1 fab sampled no defects")
	}
	if full.ErrorRate != 0.4 {
		t.Errorf("explicit error rate not kept: %g", full.ErrorRate)
	}
	onlyData := (&DeviceModel{QubitDefectRate: 1}).Sample(min, max, 1)
	if len(onlyData.SyndromeDefects) != 0 {
		t.Error("coupler defects sampled at rate 0")
	}
	if len(onlyData.DataDefects) == 0 {
		t.Error("qubit defects not sampled at rate 1")
	}
}
