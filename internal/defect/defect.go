// Package defect models dynamic and static defects on quantum hardware.
//
// The dynamic model follows the paper (§VII-A), which adopts the Q3DE model
// derived from the cosmic-ray measurements of McEwen et al.: each physical
// qubit is struck by an event following an exponential clock with mean rate
// λ = 1/(26 · 10 s); a strike elevates the error rate of the 24 adjacent
// qubits (a Chebyshev-radius-2 region, 25 qubits including the centre) to
// ≈50% for T = 25 ms ≈ 25 000 QEC cycles.
package defect

import (
	"math"
	"math/rand"
	"sort"

	"surfdeformer/internal/lattice"
)

// Model holds the dynamic defect process parameters.
type Model struct {
	// RatePerQubit is the event rate per physical qubit per second
	// (paper: 0.1 Hz / 26 qubits ≈ 3.85e-3 events/qubit/s).
	RatePerQubit float64
	// DurationCycles is how many QEC cycles an event's effect lasts
	// (paper: 25 ms ≈ 25 000 cycles).
	DurationCycles int
	// Radius is the Chebyshev radius of the affected region in lattice
	// units of 2 (neighbouring qubits); radius 2 affects ≤ 25 sites — the
	// paper's "adjacent 24 qubits".
	Radius int
	// CycleSeconds converts cycles to wall time (1 µs per cycle,
	// matching ~25 000 cycles in 25 ms).
	CycleSeconds float64
	// ErrorRate is the physical error rate inside the region (≈0.5).
	ErrorRate float64
}

// Paper returns the model with the paper's parameters.
func Paper() *Model {
	return &Model{
		RatePerQubit:   0.1 / 26.0,
		DurationCycles: 25000,
		Radius:         2,
		CycleSeconds:   1e-6,
		ErrorRate:      0.5,
	}
}

// Event is one defect strike.
type Event struct {
	Center     lattice.Coord
	StartCycle int64
	EndCycle   int64
	Region     []lattice.Coord
}

// RegionOf returns the affected sites of a strike at center within bounds.
// The physical device grid is rotated 45° with respect to our lattice
// coordinates (device neighbours sit at diagonal offsets), so the device's
// (2·Radius+1)² square of qubits — 25 qubits for Radius 2, the paper's
// "adjacent 24 qubits" — is the Manhattan ball of radius 2·Radius over the
// qubit checkerboard.
func (m *Model) RegionOf(center lattice.Coord, min, max lattice.Coord) []lattice.Coord {
	var out []lattice.Coord
	reach := 2 * m.Radius
	for dr := -reach; dr <= reach; dr++ {
		for dc := -reach; dc <= reach; dc++ {
			q := lattice.Coord{Row: center.Row + dr, Col: center.Col + dc}
			if !q.IsData() && !q.IsCheck() {
				continue
			}
			if lattice.Manhattan(center, q) > reach {
				continue
			}
			if q.Row < min.Row || q.Row > max.Row || q.Col < min.Col || q.Col > max.Col {
				continue
			}
			out = append(out, q)
		}
	}
	lattice.SortCoords(out)
	return out
}

// PoissonLambda returns the Poisson parameter λ = n·ρ·T for the number of
// events on a block of n qubits over a window of T seconds — the quantity
// the layout generator's Eq. 1 consumes.
func (m *Model) PoissonLambda(nQubits int, windowSeconds float64) float64 {
	return float64(nQubits) * m.RatePerQubit * windowSeconds
}

// Sampler draws defect timelines for a patch of physical qubits.
type Sampler struct {
	model *Model
	sites []lattice.Coord
	min   lattice.Coord
	max   lattice.Coord
}

// Sites lists the physical sites (data and syndrome positions) of a patch
// bounding box, in row-major order.
func Sites(min, max lattice.Coord) []lattice.Coord {
	var sites []lattice.Coord
	for r := min.Row; r <= max.Row; r++ {
		for c := min.Col; c <= max.Col; c++ {
			q := lattice.Coord{Row: r, Col: c}
			if q.IsData() || q.IsCheck() {
				sites = append(sites, q)
			}
		}
	}
	return sites
}

// NewSampler prepares a sampler over the physical sites of a patch
// bounding box (all data and syndrome positions within min..max).
func NewSampler(model *Model, min, max lattice.Coord) *Sampler {
	return &Sampler{model: model, sites: Sites(min, max), min: min, max: max}
}

// NumSites returns how many physical sites the sampler covers.
func (s *Sampler) NumSites() int { return len(s.sites) }

// SampleWindow draws the defect events striking the patch during a window
// of the given number of QEC cycles.
func (s *Sampler) SampleWindow(cycles int64, rng *rand.Rand) []Event {
	if len(s.sites) == 0 || cycles <= 0 {
		return nil
	}
	windowSeconds := float64(cycles) * s.model.CycleSeconds
	lambda := s.model.PoissonLambda(len(s.sites), windowSeconds)
	n := poisson(lambda, rng)
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		center := s.sites[rng.Intn(len(s.sites))]
		start := int64(rng.Float64() * float64(cycles))
		events = append(events, Event{
			Center:     center,
			StartCycle: start,
			EndCycle:   start + int64(s.model.DurationCycles),
			Region:     s.model.RegionOf(center, s.min, s.max),
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].StartCycle < events[j].StartCycle })
	return events
}

// ActiveAt returns the union of defective sites across events active at the
// given cycle.
func ActiveAt(events []Event, cycle int64) []lattice.Coord {
	seen := map[lattice.Coord]bool{}
	var out []lattice.Coord
	for _, e := range events {
		if cycle < e.StartCycle || cycle >= e.EndCycle {
			continue
		}
		for _, q := range e.Region {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	lattice.SortCoords(out)
	return out
}

// maxPoisson caps the normal-approximation branch of poisson. No modeled
// process draws anywhere near this many events; the cap exists so that a
// huge or infinite λ cannot push the float→int conversion out of range
// (which is implementation-defined in Go and lands on negative values on
// amd64) and feed a nonsense count to callers sizing slices from it.
const maxPoisson = math.MaxInt32

// poisson samples a Poisson variate by inversion (small λ) or the
// normal approximation (large λ).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		if lambda > maxPoisson {
			lambda = maxPoisson // also forces λ = +Inf onto a finite draw
		}
		x := math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda)
		switch {
		case x < 0:
			return 0
		case x > maxPoisson:
			return maxPoisson
		}
		return int(x)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// StaticFaults samples k distinct faulty physical sites uniformly over a
// patch — the static fabrication-fault model of the yield study (fig. 13b).
func StaticFaults(min, max lattice.Coord, k int, rng *rand.Rand) []lattice.Coord {
	sites := Sites(min, max)
	rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
	if k > len(sites) {
		k = len(sites)
	}
	out := append([]lattice.Coord(nil), sites[:k]...)
	lattice.SortCoords(out)
	return out
}

// PBlock evaluates the paper's Eq. 1: the probability that more than
// ⌊Δd/D⌋ defects strike one code patch, blocking the communication channel.
func PBlock(lambda float64, deltaD, defectSize int) float64 {
	if defectSize <= 0 {
		defectSize = 1
	}
	kMax := deltaD / defectSize
	sum := 0.0
	term := math.Exp(-lambda)
	for k := 0; k <= kMax; k++ {
		sum += term
		term *= lambda / float64(k+1)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}
