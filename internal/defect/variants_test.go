package defect

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
)

func patchSites(d int) []lattice.Coord {
	var sites []lattice.Coord
	for r := 0; r <= 2*d; r++ {
		for c := 0; c <= 2*d; c++ {
			q := lattice.Coord{Row: r, Col: c}
			if q.IsData() || q.IsCheck() {
				sites = append(sites, q)
			}
		}
	}
	return sites
}

func TestSampleLeakageRates(t *testing.T) {
	m := DefaultLeakage()
	sites := patchSites(9)
	rng := rand.New(rand.NewSource(1))
	cycles := int64(200000)
	exp := float64(len(sites)) * m.RatePerQubit * float64(cycles)
	total := 0
	trials := 50
	for i := 0; i < trials; i++ {
		total += len(m.SampleLeakage(sites, cycles, rng))
	}
	mean := float64(total) / float64(trials)
	if mean < exp*0.7 || mean > exp*1.3 {
		t.Errorf("mean leakage events %.2f, want ≈%.2f", mean, exp)
	}
}

func TestLeakageRegionIsLocal(t *testing.T) {
	m := DefaultLeakage()
	rng := rand.New(rand.NewSource(2))
	q := lattice.Coord{Row: 5, Col: 5}
	events := m.SampleLeakage([]lattice.Coord{q}, 1e7, rng)
	if len(events) == 0 {
		t.Skip("no events sampled at this seed")
	}
	for _, e := range events {
		if len(e.Region) != 5 {
			t.Errorf("leakage region %d sites, want qubit + 4 neighbours", len(e.Region))
		}
		for _, site := range e.Region {
			if lattice.Chebyshev(site, q) > 1 {
				t.Errorf("leakage region site %v too far from %v", site, q)
			}
		}
		if e.EndCycle <= e.StartCycle {
			t.Error("leakage event has no duration")
		}
	}
}

func TestDriftedRateClamps(t *testing.T) {
	m := DefaultDrift()
	if got := m.DriftedRate(1e-3); got != 1e-2 {
		t.Errorf("DriftedRate(1e-3) = %v, want 1e-2", got)
	}
	if got := m.DriftedRate(0.2); got != 0.5 {
		t.Errorf("DriftedRate must clamp at 0.5, got %v", got)
	}
}

func TestSampleDrift(t *testing.T) {
	m := DefaultDrift()
	sites := patchSites(5)
	rng := rand.New(rand.NewSource(3))
	events := m.SampleDrift(sites, 10_000_000, 1e-6, rng)
	// 10 s window, rate 1e-3/qubit/s over ~61 sites -> ≈0.6 expected;
	// over many samples some must appear.
	total := len(events)
	for i := 0; i < 30; i++ {
		total += len(m.SampleDrift(sites, 10_000_000, 1e-6, rng))
	}
	if total == 0 {
		t.Error("no drift events over 31 windows")
	}
	for _, e := range events {
		if len(e.Region) != 1 {
			t.Error("drift affects single qubits")
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(0.5) != SeverityRemove {
		t.Error("50% regions must be removed")
	}
	if Classify(0.01) != SeverityReweight {
		t.Error("mild drift should be reweighted")
	}
	if Classify(DefaultDrift().DriftedRate(1e-3)) != SeverityReweight {
		t.Error("default drift is a reweighting case")
	}
	if Classify(DefaultLeakage().NeighbourRate) != SeverityRemove {
		t.Error("leakage neighbourhoods need removal")
	}
	if Classify(0.09) != SeveritySuper {
		t.Error("rates between the thresholds take the super-stabilizer tier")
	}
}

// TestClassifyAtBoundaryTable is the three-tier boundary table: inclusive
// thresholds, custom boundaries, and default resolution of non-positive
// arguments.
func TestClassifyAtBoundaryTable(t *testing.T) {
	cases := []struct {
		rate, super, remove float64
		want                Severity
	}{
		// Default boundaries (non-positive selects the package constants).
		{0.0, 0, 0, SeverityReweight},
		{SuperThreshold - 1e-9, 0, 0, SeverityReweight},
		{SuperThreshold, 0, 0, SeveritySuper}, // inclusive
		{RemoveThreshold - 1e-9, 0, 0, SeveritySuper},
		{RemoveThreshold, 0, 0, SeverityRemove}, // inclusive
		{0.5, 0, 0, SeverityRemove},
		// Custom boundaries.
		{0.15, 0.1, 0.2, SeveritySuper},
		{0.2, 0.1, 0.2, SeverityRemove},
		{0.05, 0.1, 0.2, SeverityReweight},
		// Partial defaults.
		{0.09, 0, 0.2, SeveritySuper},
		{0.07, 0.05, 0, SeveritySuper},
	}
	for _, tc := range cases {
		if got := ClassifyAt(tc.rate, tc.super, tc.remove); got != tc.want {
			t.Errorf("ClassifyAt(%g, %g, %g) = %v, want %v", tc.rate, tc.super, tc.remove, got, tc.want)
		}
	}
}

// TestValidateThresholds pins the misordered-ladder rejection: resolved
// super >= resolved remove is an error, never a silent tier inversion.
func TestValidateThresholds(t *testing.T) {
	if err := ValidateThresholds(0, 0); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	if err := ValidateThresholds(0.05, 0.2); err != nil {
		t.Errorf("ordered custom thresholds must validate: %v", err)
	}
	if err := ValidateThresholds(0.2, 0.1); err == nil {
		t.Error("super above remove must be rejected")
	}
	if err := ValidateThresholds(0.1, 0.1); err == nil {
		t.Error("equal thresholds must be rejected")
	}
	// Default resolution applies before the ordering check.
	if err := ValidateThresholds(0, SuperThreshold/2); err == nil {
		t.Error("custom remove below the default super threshold must be rejected")
	}
	if err := ValidateThresholds(RemoveThreshold*2, 0); err == nil {
		t.Error("custom super above the default remove threshold must be rejected")
	}
}
