package defect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"surfdeformer/internal/lattice"
)

func TestPaperModelParameters(t *testing.T) {
	m := Paper()
	// λ for a d=27 code over one defect duration should reproduce the
	// paper's worked example: λ = 2·27²·ρ·25ms ≈ 0.14.
	lambda := m.PoissonLambda(2*27*27, float64(m.DurationCycles)*m.CycleSeconds)
	if math.Abs(lambda-0.14) > 0.01 {
		t.Errorf("Poisson λ = %.4f, want ≈0.14 (paper §VI)", lambda)
	}
}

func TestPBlockPaperExample(t *testing.T) {
	// Paper: λ = 0.14, Δd = 4, D = 4 gives p_block ≈ 0.0089 < 0.01.
	got := PBlock(0.14, 4, 4)
	if math.Abs(got-0.0089) > 0.001 {
		t.Errorf("PBlock = %.5f, want ≈0.0089", got)
	}
	// Δd = 0 blocks with probability 1 - P(0 events).
	if got := PBlock(0.14, 0, 4); math.Abs(got-(1-math.Exp(-0.14))) > 1e-9 {
		t.Errorf("PBlock(Δd=0) = %v", got)
	}
}

func TestRegionOf(t *testing.T) {
	m := Paper()
	min, max := lattice.Coord{Row: 0, Col: 0}, lattice.Coord{Row: 20, Col: 20}
	region := m.RegionOf(lattice.Coord{Row: 10, Col: 10}, min, max)
	// A strike affects the struck qubit plus its 24 device neighbours: the
	// Manhattan-radius-4 diamond over the qubit checkerboard has 25 sites.
	if len(region) != 25 {
		t.Errorf("region size %d, want 25 (paper: struck qubit + 24 adjacent)", len(region))
	}
	for _, q := range region {
		if lattice.Manhattan(q, lattice.Coord{Row: 10, Col: 10}) > 4 {
			t.Errorf("region site %v outside radius", q)
		}
	}
	// Clipping at the boundary shrinks the region.
	corner := m.RegionOf(lattice.Coord{Row: 0, Col: 0}, min, max)
	if len(corner) >= len(region) {
		t.Error("corner region should be clipped")
	}
}

func TestSamplerRates(t *testing.T) {
	m := Paper()
	s := NewSampler(m, lattice.Coord{Row: 0, Col: 0}, lattice.Coord{Row: 18, Col: 18})
	rng := rand.New(rand.NewSource(1))
	// Expected events over W cycles: sites × ρ × W·1µs.
	cycles := int64(10_000_000) // 10 s
	exp := float64(s.NumSites()) * m.RatePerQubit * 10.0
	total := 0
	trials := 200
	for i := 0; i < trials; i++ {
		total += len(s.SampleWindow(cycles, rng))
	}
	mean := float64(total) / float64(trials)
	if mean < exp*0.8 || mean > exp*1.2 {
		t.Errorf("mean events %.2f, want ≈%.2f", mean, exp)
	}
}

func TestActiveAt(t *testing.T) {
	events := []Event{
		{StartCycle: 100, EndCycle: 200, Region: []lattice.Coord{{Row: 1, Col: 1}}},
		{StartCycle: 150, EndCycle: 300, Region: []lattice.Coord{{Row: 1, Col: 3}}},
	}
	if got := ActiveAt(events, 50); len(got) != 0 {
		t.Errorf("ActiveAt(50) = %v", got)
	}
	if got := ActiveAt(events, 175); len(got) != 2 {
		t.Errorf("ActiveAt(175) = %v, want 2 sites", got)
	}
	if got := ActiveAt(events, 250); len(got) != 1 {
		t.Errorf("ActiveAt(250) = %v, want 1 site", got)
	}
}

// TestActiveAtEndCycleExclusive pins the [StartCycle, EndCycle) contract the
// trajectory engine's epoch boundaries rely on: an event is active at its
// start cycle and inactive at its end cycle.
func TestActiveAtEndCycleExclusive(t *testing.T) {
	events := []Event{
		{StartCycle: 100, EndCycle: 200, Region: []lattice.Coord{{Row: 1, Col: 1}}},
	}
	cases := []struct {
		cycle int64
		want  int
	}{
		{99, 0},  // one before start: inactive
		{100, 1}, // start cycle: active (inclusive)
		{199, 1}, // last active cycle
		{200, 0}, // end cycle: inactive (exclusive)
		{201, 0},
	}
	for _, c := range cases {
		if got := ActiveAt(events, c.cycle); len(got) != c.want {
			t.Errorf("ActiveAt(%d) = %v, want %d site(s)", c.cycle, got, c.want)
		}
	}
}

// TestActiveAtOverlapUnion pins that overlapping events report the union of
// their regions with shared sites deduplicated and the result sorted.
func TestActiveAtOverlapUnion(t *testing.T) {
	shared := lattice.Coord{Row: 3, Col: 3}
	events := []Event{
		{StartCycle: 0, EndCycle: 100, Region: []lattice.Coord{{Row: 1, Col: 1}, shared}},
		{StartCycle: 50, EndCycle: 150, Region: []lattice.Coord{shared, {Row: 5, Col: 5}}},
	}
	got := ActiveAt(events, 75)
	want := []lattice.Coord{{Row: 1, Col: 1}, shared, {Row: 5, Col: 5}}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v (sorted, deduplicated)", got, want)
		}
	}
	// Outside the overlap only one event contributes.
	if got := ActiveAt(events, 120); len(got) != 2 {
		t.Errorf("ActiveAt(120) = %v, want the 2 sites of the second event", got)
	}
}

// TestPoissonDeterministic pins that the sampler is a pure function of the
// RNG stream in both branches (inversion and normal approximation).
func TestPoissonDeterministic(t *testing.T) {
	lambdas := []float64{0.5, 5, 29.9, 30.1, 100, 1e4}
	draw := func() []int {
		rng := rand.New(rand.NewSource(7))
		var out []int
		for _, l := range lambdas {
			for i := 0; i < 8; i++ {
				out = append(out, poisson(l, rng))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical streams: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPoissonMoments sanity-checks mean and variance in both branches:
// Poisson(λ) has mean λ and variance λ.
func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, lambda := range []float64{5, 100} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := float64(poisson(lambda, rng))
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Standard error of the mean is sqrt(λ/n); allow 5σ.
		if tol := 5 * math.Sqrt(lambda/n); math.Abs(mean-lambda) > tol {
			t.Errorf("λ=%g: mean %.3f outside %g±%.3f", lambda, mean, lambda, tol)
		}
		if variance < 0.8*lambda || variance > 1.2*lambda {
			t.Errorf("λ=%g: variance %.3f, want ≈%g", lambda, variance, lambda)
		}
	}
}

// TestPoissonHugeLambda pins the overflow guard: astronomically large (and
// infinite) λ must clamp to a sane non-negative count instead of riding the
// implementation-defined float→int conversion into negative values.
func TestPoissonHugeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, lambda := range []float64{1e12, 1e18, 1e300, math.Inf(1)} {
		for i := 0; i < 32; i++ {
			n := poisson(lambda, rng)
			if n < 0 {
				t.Fatalf("poisson(%g) = %d, want non-negative", lambda, n)
			}
			if n > maxPoisson {
				t.Fatalf("poisson(%g) = %d exceeds cap %d", lambda, n, maxPoisson)
			}
			if lambda >= 1e12 && n == 0 {
				t.Fatalf("poisson(%g) = 0; huge λ must clamp high, not collapse", lambda)
			}
		}
	}
}

func TestStaticFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	min, max := lattice.Coord{Row: 0, Col: 0}, lattice.Coord{Row: 10, Col: 10}
	faults := StaticFaults(min, max, 7, rng)
	if len(faults) != 7 {
		t.Fatalf("got %d faults, want 7", len(faults))
	}
	seen := map[lattice.Coord]bool{}
	for _, q := range faults {
		if seen[q] {
			t.Error("duplicate fault site")
		}
		seen[q] = true
		if !q.IsData() && !q.IsCheck() {
			t.Errorf("fault %v is not a qubit site", q)
		}
	}
}

// Property: PBlock is monotonically non-increasing in Δd and non-decreasing
// in λ.
func TestQuickPBlockMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := rng.Float64() * 2
		d1 := rng.Intn(10)
		d2 := d1 + 1 + rng.Intn(10)
		if PBlock(lambda, d2, 4) > PBlock(lambda, d1, 4)+1e-12 {
			return false
		}
		return PBlock(lambda+0.5, d1, 4) >= PBlock(lambda, d1, 4)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
