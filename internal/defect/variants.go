package defect

import (
	"math/rand"

	"surfdeformer/internal/lattice"
)

// The paper's dynamic-defect taxonomy (§I, §II-B) names three mechanisms:
// cosmic-ray multi-bit burst errors (the Model in defect.go), leakage
// errors, and error drift. This file provides the latter two so mitigation
// strategies can be exercised against every defect species.

// LeakageModel describes leakage events: single qubits leave the
// computational space, becoming inoperable and seeding high-weight
// correlated errors on their neighbours until reset.
type LeakageModel struct {
	// RatePerQubit is the leakage probability per qubit per cycle.
	RatePerQubit float64
	// MeanDurationCycles is the expected time until the leaked qubit is
	// returned to the computational space.
	MeanDurationCycles int
	// NeighbourRate is the induced error rate on lattice neighbours while
	// the qubit is leaked.
	NeighbourRate float64
}

// DefaultLeakage follows the leakage literature the paper cites [25]:
// rare per-cycle leakage with multi-hundred-cycle lifetimes and strongly
// elevated neighbour error rates.
func DefaultLeakage() *LeakageModel {
	return &LeakageModel{
		RatePerQubit:       1e-5,
		MeanDurationCycles: 400,
		NeighbourRate:      0.25,
	}
}

// SampleLeakage draws leakage events over a window of cycles for the sites
// of a patch.
func (m *LeakageModel) SampleLeakage(sites []lattice.Coord, cycles int64, rng *rand.Rand) []Event {
	var events []Event
	for _, q := range sites {
		lambda := m.RatePerQubit * float64(cycles)
		n := poisson(lambda, rng)
		for i := 0; i < n; i++ {
			start := int64(rng.Float64() * float64(cycles))
			dur := int64(1)
			if m.MeanDurationCycles > 0 {
				dur = 1 + int64(rng.ExpFloat64()*float64(m.MeanDurationCycles))
			}
			region := []lattice.Coord{q}
			for _, nb := range q.DiagNeighbors() {
				region = append(region, nb)
			}
			lattice.SortCoords(region)
			events = append(events, Event{
				Center:     q,
				StartCycle: start,
				EndCycle:   start + dur,
				Region:     region,
			})
		}
	}
	return events
}

// DriftModel describes error drift: qubit error rates wander over time;
// a drifted qubit's rate is multiplied until recalibration.
type DriftModel struct {
	// RatePerQubit is the drift-onset probability per qubit per second.
	RatePerQubit float64
	// Multiplier scales the physical error rate of a drifted qubit.
	Multiplier float64
	// MeanDurationCycles is the expected time until recalibration.
	MeanDurationCycles int
}

// DefaultDrift gives occasional 10× rate excursions, the regime where
// decoder-prior mismatch (rather than outright code breakage) dominates.
func DefaultDrift() *DriftModel {
	return &DriftModel{
		RatePerQubit:       1e-3,
		Multiplier:         10,
		MeanDurationCycles: 50000,
	}
}

// DriftedRate returns the error rate of a drifted qubit given the base
// physical rate.
func (m *DriftModel) DriftedRate(base float64) float64 {
	r := base * m.Multiplier
	if r > 0.5 {
		return 0.5
	}
	return r
}

// SampleDrift draws drift events over a window.
func (m *DriftModel) SampleDrift(sites []lattice.Coord, cycles int64, cycleSeconds float64, rng *rand.Rand) []Event {
	var events []Event
	windowSeconds := float64(cycles) * cycleSeconds
	for _, q := range sites {
		n := poisson(m.RatePerQubit*windowSeconds, rng)
		for i := 0; i < n; i++ {
			start := int64(rng.Float64() * float64(cycles))
			dur := int64(1)
			if m.MeanDurationCycles > 0 {
				dur = 1 + int64(rng.ExpFloat64()*float64(m.MeanDurationCycles))
			}
			events = append(events, Event{
				Center:     q,
				StartCycle: start,
				EndCycle:   start + dur,
				Region:     []lattice.Coord{q},
			})
		}
	}
	return events
}

// Severity classifies whether an event needs deformation (removal) or can
// be left to decoder reweighting: the paper's §VIII argues reweighting
// suffices only for mild rate elevation, while ≈50% regions and inoperable
// qubits must be removed.
type Severity int

const (
	// SeverityReweight marks events a decoder-prior update can absorb.
	SeverityReweight Severity = iota
	// SeverityRemove marks events requiring code deformation.
	SeverityRemove
)

// RemoveThreshold is the default local error rate at or above which an
// event needs code deformation rather than decoder-prior reweighting: a
// region erring one shot in ten overwhelms any prior update (the decoding
// graph cannot even represent rates at ½, see decoder.MaxEdgeProb), while
// milder drift leaves the code intact and only misweights the decoder.
const RemoveThreshold = 0.1

// Classify returns the mitigation tier for a local error rate at the
// default severity boundary.
func Classify(localRate float64) Severity {
	return ClassifyAt(localRate, RemoveThreshold)
}

// ClassifyAt returns the mitigation tier for a local error rate at an
// explicit severity boundary (non-positive selects RemoveThreshold) —
// the knob runtime mitigation policies (deform.Mitigation) expose.
func ClassifyAt(localRate, threshold float64) Severity {
	if threshold <= 0 {
		threshold = RemoveThreshold
	}
	if localRate >= threshold {
		return SeverityRemove
	}
	return SeverityReweight
}
