package defect

import (
	"fmt"
	"math/rand"

	"surfdeformer/internal/lattice"
)

// The paper's dynamic-defect taxonomy (§I, §II-B) names three mechanisms:
// cosmic-ray multi-bit burst errors (the Model in defect.go), leakage
// errors, and error drift. This file provides the latter two so mitigation
// strategies can be exercised against every defect species.

// LeakageModel describes leakage events: single qubits leave the
// computational space, becoming inoperable and seeding high-weight
// correlated errors on their neighbours until reset.
type LeakageModel struct {
	// RatePerQubit is the leakage probability per qubit per cycle.
	RatePerQubit float64
	// MeanDurationCycles is the expected time until the leaked qubit is
	// returned to the computational space.
	MeanDurationCycles int
	// NeighbourRate is the induced error rate on lattice neighbours while
	// the qubit is leaked.
	NeighbourRate float64
}

// DefaultLeakage follows the leakage literature the paper cites [25]:
// rare per-cycle leakage with multi-hundred-cycle lifetimes and strongly
// elevated neighbour error rates.
func DefaultLeakage() *LeakageModel {
	return &LeakageModel{
		RatePerQubit:       1e-5,
		MeanDurationCycles: 400,
		NeighbourRate:      0.25,
	}
}

// SampleLeakage draws leakage events over a window of cycles for the sites
// of a patch.
func (m *LeakageModel) SampleLeakage(sites []lattice.Coord, cycles int64, rng *rand.Rand) []Event {
	var events []Event
	for _, q := range sites {
		lambda := m.RatePerQubit * float64(cycles)
		n := poisson(lambda, rng)
		for i := 0; i < n; i++ {
			start := int64(rng.Float64() * float64(cycles))
			dur := int64(1)
			if m.MeanDurationCycles > 0 {
				dur = 1 + int64(rng.ExpFloat64()*float64(m.MeanDurationCycles))
			}
			region := []lattice.Coord{q}
			for _, nb := range q.DiagNeighbors() {
				region = append(region, nb)
			}
			lattice.SortCoords(region)
			events = append(events, Event{
				Center:     q,
				StartCycle: start,
				EndCycle:   start + dur,
				Region:     region,
			})
		}
	}
	return events
}

// DriftModel describes error drift: qubit error rates wander over time;
// a drifted qubit's rate is multiplied until recalibration.
type DriftModel struct {
	// RatePerQubit is the drift-onset probability per qubit per second.
	RatePerQubit float64
	// Multiplier scales the physical error rate of a drifted qubit.
	Multiplier float64
	// MeanDurationCycles is the expected time until recalibration.
	MeanDurationCycles int
}

// DefaultDrift gives occasional 10× rate excursions, the regime where
// decoder-prior mismatch (rather than outright code breakage) dominates.
func DefaultDrift() *DriftModel {
	return &DriftModel{
		RatePerQubit:       1e-3,
		Multiplier:         10,
		MeanDurationCycles: 50000,
	}
}

// DriftedRate returns the error rate of a drifted qubit given the base
// physical rate.
func (m *DriftModel) DriftedRate(base float64) float64 {
	r := base * m.Multiplier
	if r > 0.5 {
		return 0.5
	}
	return r
}

// SampleDrift draws drift events over a window.
func (m *DriftModel) SampleDrift(sites []lattice.Coord, cycles int64, cycleSeconds float64, rng *rand.Rand) []Event {
	var events []Event
	windowSeconds := float64(cycles) * cycleSeconds
	for _, q := range sites {
		n := poisson(m.RatePerQubit*windowSeconds, rng)
		for i := 0; i < n; i++ {
			start := int64(rng.Float64() * float64(cycles))
			dur := int64(1)
			if m.MeanDurationCycles > 0 {
				dur = 1 + int64(rng.ExpFloat64()*float64(m.MeanDurationCycles))
			}
			events = append(events, Event{
				Center:     q,
				StartCycle: start,
				EndCycle:   start + dur,
				Region:     []lattice.Coord{q},
			})
		}
	}
	return events
}

// Severity classifies how aggressively an event must be mitigated: left to
// decoder reweighting, patched with a bandage super-stabilizer
// (gauge-merge, arXiv 2404.18644), or removed outright by deformation. The
// paper's §VIII argues reweighting suffices only for mild rate elevation;
// the super-stabilizer tier handles a single inoperable-or-nearly-so qubit
// without sacrificing the surrounding patch; ≈50% multi-qubit regions must
// be removed.
type Severity int

const (
	// SeverityReweight marks events a decoder-prior update can absorb.
	SeverityReweight Severity = iota
	// SeveritySuper marks events a bandage super-stabilizer (merging the
	// checks around the defective qubit into one weight-heavier check)
	// can absorb without deforming the patch boundary.
	SeveritySuper
	// SeverityRemove marks events requiring code deformation.
	SeverityRemove
)

// RemoveThreshold is the default local error rate at or above which an
// event needs code deformation rather than any in-place mitigation: a
// region erring one shot in ten overwhelms any prior update (the decoding
// graph cannot even represent rates at ½, see decoder.MaxEdgeProb), while
// milder drift leaves the code intact and only misweights the decoder.
const RemoveThreshold = 0.1

// SuperThreshold is the default local error rate at or above which an
// event outgrows decoder-prior reweighting and warrants a bandage
// super-stabilizer: below it the decoder absorbs the elevation, between it
// and RemoveThreshold a gauge-merge isolates the noisy qubit in place, at
// or above RemoveThreshold the region is cut out entirely. It sits just
// under RemoveThreshold so the default three-tier ladder classifies every
// pre-existing dynamic-defect scenario exactly as the two-tier ladder did.
const SuperThreshold = 0.08

// Classify returns the mitigation tier for a local error rate at the
// default severity boundaries.
func Classify(localRate float64) Severity {
	return ClassifyAt(localRate, SuperThreshold, RemoveThreshold)
}

// ClassifyAt returns the mitigation tier for a local error rate at
// explicit severity boundaries — the knobs runtime mitigation policies
// (deform.Mitigation) expose. Non-positive superThreshold selects
// SuperThreshold; non-positive removeThreshold selects RemoveThreshold.
// Rates in [superThreshold, removeThreshold) classify SeveritySuper;
// rates at or above removeThreshold classify SeverityRemove. Callers that
// accept thresholds from configuration should reject misordered pairs via
// ValidateThresholds first; ClassifyAt itself assumes a sane ladder.
func ClassifyAt(localRate, superThreshold, removeThreshold float64) Severity {
	if superThreshold <= 0 {
		superThreshold = SuperThreshold
	}
	if removeThreshold <= 0 {
		removeThreshold = RemoveThreshold
	}
	if localRate >= removeThreshold {
		return SeverityRemove
	}
	if localRate >= superThreshold {
		return SeveritySuper
	}
	return SeverityReweight
}

// ValidateThresholds checks that a (superThreshold, removeThreshold) pair
// describes a well-ordered three-tier ladder after default resolution
// (non-positive values select the package defaults, mirroring ClassifyAt).
// A resolved superThreshold at or above the resolved removeThreshold would
// silently erase the super tier — reject it loudly instead.
func ValidateThresholds(superThreshold, removeThreshold float64) error {
	s, r := superThreshold, removeThreshold
	if s <= 0 {
		s = SuperThreshold
	}
	if r <= 0 {
		r = RemoveThreshold
	}
	if s >= r {
		return fmt.Errorf("defect: super threshold %g must be below remove threshold %g", s, r)
	}
	return nil
}
