package route

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBFSPathBasic(t *testing.T) {
	g := NewGrid(3, 3)
	path := g.bfsPath(g.Cell(0, 0), g.Cell(2, 2))
	if path == nil {
		t.Fatal("no path on empty grid")
	}
	if len(path) != 5 {
		t.Errorf("path length %d, want 5 cells (Manhattan route)", len(path))
	}
}

func TestBlockedCellsAvoided(t *testing.T) {
	g := NewGrid(1, 3)
	g.SetBlocked(g.Cell(0, 1), true)
	// Linear grid with middle blocked: no route on a 1×3 strip.
	if path := g.bfsPath(g.Cell(0, 0), g.Cell(0, 2)); path != nil {
		t.Error("path should be blocked")
	}
	g2 := NewGrid(2, 3)
	g2.SetBlocked(g2.Cell(0, 1), true)
	path := g2.bfsPath(g2.Cell(0, 0), g2.Cell(0, 2))
	if path == nil {
		t.Fatal("detour route should exist")
	}
	for _, cell := range path[1 : len(path)-1] {
		if g2.Blocked(int(cell)) {
			t.Error("path passes through blocked cell")
		}
	}
}

func TestRoutePathsEdgeDisjoint(t *testing.T) {
	g := NewGrid(4, 4)
	ops := []CNOT{
		{g.Cell(0, 0), g.Cell(0, 3)},
		{g.Cell(3, 0), g.Cell(3, 3)},
		{g.Cell(0, 0), g.Cell(3, 0)}, // shares an endpoint with op 0
	}
	routed := g.RoutePaths(ops, 0, nil)
	if len(routed) < 2 {
		t.Errorf("routed %d ops, want at least the two disjoint ones", len(routed))
	}
}

// TestRoutePathsDeterministic pins the router's store-identity contract:
// identical (grid, pending, step) always route the identical operation set,
// with no RNG anywhere in the decision — across fresh grids and across
// reuse of one grid's scratch.
func TestRoutePathsDeterministic(t *testing.T) {
	mkOps := func(g *Grid) []CNOT {
		return []CNOT{
			{g.Cell(0, 0), g.Cell(0, 3)},
			{g.Cell(0, 1), g.Cell(2, 3)},
			{g.Cell(1, 0), g.Cell(1, 3)},
			{g.Cell(2, 0), g.Cell(0, 2)},
			{g.Cell(3, 0), g.Cell(3, 3)},
		}
	}
	g := NewGrid(4, 4)
	g.SetBlocked(g.Cell(2, 2), true)
	ops := mkOps(g)
	var first [][]int
	for step := 0; step < 5; step++ {
		first = append(first, append([]int(nil), g.RoutePaths(ops, step, nil)...))
	}
	// A fresh grid (cold scratch) must reproduce the warm grid's decisions.
	g2 := NewGrid(4, 4)
	g2.SetBlocked(g2.Cell(2, 2), true)
	for step := 0; step < 5; step++ {
		got := g2.RoutePaths(ops, step, nil)
		if !reflect.DeepEqual(got, first[step]) {
			t.Errorf("step %d: fresh grid routed %v, warm grid routed %v", step, got, first[step])
		}
	}
}

// TestRoutePathsRotationFairness checks the step-keyed rotation: when two
// operations contend for the same channel, which one wins must change with
// the step index, so no list position is starved forever.
func TestRoutePathsRotationFairness(t *testing.T) {
	g := NewGrid(1, 4)
	// Both ops need the only row; edge-disjointness lets exactly one route.
	ops := []CNOT{
		{g.Cell(0, 0), g.Cell(0, 3)},
		{g.Cell(0, 1), g.Cell(0, 2)},
	}
	winners := map[int]bool{}
	for step := 0; step < 2; step++ {
		routed := g.RoutePaths(ops, step, nil)
		if len(routed) == 0 {
			t.Fatalf("step %d routed nothing", step)
		}
		winners[routed[0]] = true
	}
	if len(winners) < 2 {
		t.Errorf("rotation never changed the contention winner: %v", winners)
	}
}

// TestRoutePathsBoundedAllocs pins the epoch-stamped scratch conversion:
// routing a pending set on a warm grid must not allocate per path (the old
// bfsPath minted a map per call). The only allowance is the caller-visible
// routed slice, which this test preallocates away.
func TestRoutePathsBoundedAllocs(t *testing.T) {
	g := NewGrid(8, 8)
	var ops []CNOT
	for i := 0; i < 16; i++ {
		ops = append(ops, CNOT{Control: i, Target: 63 - i})
	}
	dst := make([]int, 0, len(ops))
	g.RoutePaths(ops, 0, dst) // warm the scratch
	step := 1
	allocs := testing.AllocsPerRun(50, func() {
		g.RoutePaths(ops, step, dst[:0])
		step++
	})
	if allocs > 0 {
		t.Errorf("RoutePaths allocates %.1f objects/call on a warm grid, want 0", allocs)
	}
}

func TestRunTasksCompletesOnOpenGrid(t *testing.T) {
	g := NewGrid(5, 5)
	rng := rand.New(rand.NewSource(2))
	var ops []CNOT
	for i := 0; i < 20; i++ {
		a, b := rng.Intn(25), rng.Intn(25)
		if a == b {
			b = (b + 1) % 25
		}
		ops = append(ops, CNOT{a, b})
	}
	res := g.RunTasks(ops, 500)
	if res.Stalled {
		t.Fatal("open grid should not stall")
	}
	if res.Operations != len(ops) {
		t.Errorf("completed %d of %d ops", res.Operations, len(ops))
	}
	if res.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
	// Determinism: a fresh identical grid reproduces the result exactly.
	again := NewGrid(5, 5).RunTasks(ops, 500)
	if !reflect.DeepEqual(res, again) {
		t.Errorf("RunTasks not deterministic: %+v vs %+v", res, again)
	}
}

func TestRunTasksStallsWhenTargetBlocked(t *testing.T) {
	g := NewGrid(3, 3)
	g.SetBlocked(g.Cell(1, 1), true)
	res := g.RunTasks([]CNOT{{g.Cell(0, 0), g.Cell(1, 1)}}, 100)
	if !res.Stalled {
		t.Error("operation on a blocked patch must stall")
	}
}

func TestBlockingReducesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func() []CNOT {
		var out []CNOT
		for i := 0; i < 30; i++ {
			a := rng.Intn(36)
			b := (a + 7 + i) % 36
			out = append(out, CNOT{a, b})
		}
		return out
	}
	ops := mk()

	open := NewGrid(6, 6)
	r1 := open.RunTasks(ops, 1000)

	congested := NewGrid(6, 6)
	// Block a diagonal band of patches not used as endpoints.
	used := map[int]bool{}
	for _, op := range ops {
		used[op.Control] = true
		used[op.Target] = true
	}
	blockedCount := 0
	for c := 0; c < 36 && blockedCount < 6; c++ {
		if !used[c] {
			congested.SetBlocked(c, true)
			blockedCount++
		}
	}
	r2 := congested.RunTasks(ops, 1000)
	if r2.Throughput > r1.Throughput {
		t.Errorf("blocking should not raise throughput: %.3f vs %.3f", r2.Throughput, r1.Throughput)
	}
}

func TestNumBlocked(t *testing.T) {
	g := NewGrid(3, 3)
	if n := g.NumBlocked(); n != 0 {
		t.Fatalf("fresh grid reports %d blocked cells", n)
	}
	g.SetBlocked(2, true)
	g.SetBlocked(5, true)
	if n := g.NumBlocked(); n != 2 {
		t.Errorf("NumBlocked = %d, want 2", n)
	}
	g.ResetBlocked()
	if n := g.NumBlocked(); n != 0 {
		t.Errorf("NumBlocked after reset = %d, want 0", n)
	}
}
