package route

import (
	"math/rand"
	"testing"
)

func TestBFSPathBasic(t *testing.T) {
	g := NewGrid(3, 3)
	path := g.bfsPath(g.Cell(0, 0), g.Cell(2, 2), map[edgeKey]bool{})
	if path == nil {
		t.Fatal("no path on empty grid")
	}
	if len(path) != 5 {
		t.Errorf("path length %d, want 5 cells (Manhattan route)", len(path))
	}
}

func TestBlockedCellsAvoided(t *testing.T) {
	g := NewGrid(1, 3)
	g.SetBlocked(g.Cell(0, 1), true)
	// Linear grid with middle blocked: no route on a 1×3 strip.
	if path := g.bfsPath(g.Cell(0, 0), g.Cell(0, 2), map[edgeKey]bool{}); path != nil {
		t.Error("path should be blocked")
	}
	g2 := NewGrid(2, 3)
	g2.SetBlocked(g2.Cell(0, 1), true)
	path := g2.bfsPath(g2.Cell(0, 0), g2.Cell(0, 2), map[edgeKey]bool{})
	if path == nil {
		t.Fatal("detour route should exist")
	}
	for _, cell := range path[1 : len(path)-1] {
		if g2.Blocked(cell) {
			t.Error("path passes through blocked cell")
		}
	}
}

func TestRoutePathsEdgeDisjoint(t *testing.T) {
	g := NewGrid(4, 4)
	rng := rand.New(rand.NewSource(1))
	ops := []CNOT{
		{g.Cell(0, 0), g.Cell(0, 3)},
		{g.Cell(3, 0), g.Cell(3, 3)},
		{g.Cell(0, 0), g.Cell(3, 0)}, // shares an endpoint with op 0
	}
	routed := g.RoutePaths(ops, rng)
	if len(routed) < 2 {
		t.Errorf("routed %d ops, want at least the two disjoint ones", len(routed))
	}
}

func TestRunTasksCompletesOnOpenGrid(t *testing.T) {
	g := NewGrid(5, 5)
	rng := rand.New(rand.NewSource(2))
	var ops []CNOT
	for i := 0; i < 20; i++ {
		a, b := rng.Intn(25), rng.Intn(25)
		if a == b {
			b = (b + 1) % 25
		}
		ops = append(ops, CNOT{a, b})
	}
	res := g.RunTasks(ops, 500, rng)
	if res.Stalled {
		t.Fatal("open grid should not stall")
	}
	if res.Operations != len(ops) {
		t.Errorf("completed %d of %d ops", res.Operations, len(ops))
	}
	if res.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestRunTasksStallsWhenTargetBlocked(t *testing.T) {
	g := NewGrid(3, 3)
	g.SetBlocked(g.Cell(1, 1), true)
	rng := rand.New(rand.NewSource(3))
	res := g.RunTasks([]CNOT{{g.Cell(0, 0), g.Cell(1, 1)}}, 100, rng)
	if !res.Stalled {
		t.Error("operation on a blocked patch must stall")
	}
}

func TestBlockingReducesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ops []CNOT
	mk := func() []CNOT {
		var out []CNOT
		for i := 0; i < 30; i++ {
			a := rng.Intn(36)
			b := (a + 7 + i) % 36
			out = append(out, CNOT{a, b})
		}
		return out
	}
	ops = mk()

	open := NewGrid(6, 6)
	r1 := open.RunTasks(ops, 1000, rand.New(rand.NewSource(5)))

	congested := NewGrid(6, 6)
	// Block a diagonal band of patches not used as endpoints.
	used := map[int]bool{}
	for _, op := range ops {
		used[op.Control] = true
		used[op.Target] = true
	}
	blockedCount := 0
	for c := 0; c < 36 && blockedCount < 6; c++ {
		if !used[c] {
			congested.SetBlocked(c, true)
			blockedCount++
		}
	}
	r2 := congested.RunTasks(ops, 1000, rand.New(rand.NewSource(5)))
	if r2.Throughput > r1.Throughput {
		t.Errorf("blocking should not raise throughput: %.3f vs %.3f", r2.Throughput, r1.Throughput)
	}
}
