// Package route simulates lattice-surgery communication on a logical-qubit
// grid: ancilla paths for long-range CNOTs are routed edge-disjointly
// through the channels between patches, and enlarged or defective patches
// block their surrounding channels. This is the machinery behind the
// throughput study of fig. 11c and the OverRuntime verdicts of Table II.
package route

import (
	"math/rand"
)

// Grid is the channel network of an N-patch layout: nodes are patch cells,
// edges are the channel segments between orthogonally adjacent cells.
type Grid struct {
	Rows, Cols int
	// blocked[c] marks a cell whose surrounding channels are unusable
	// (a Q3DE-enlarged patch spills into its channels).
	blocked []bool
}

// NewGrid creates an unblocked grid.
func NewGrid(rows, cols int) *Grid {
	return &Grid{Rows: rows, Cols: cols, blocked: make([]bool, rows*cols)}
}

// Cell flattens (r, c).
func (g *Grid) Cell(r, c int) int { return r*g.Cols + c }

// SetBlocked marks or clears a cell's blockage.
func (g *Grid) SetBlocked(cell int, blocked bool) { g.blocked[cell] = blocked }

// Blocked reports whether a cell's channels are blocked.
func (g *Grid) Blocked(cell int) bool { return g.blocked[cell] }

// ResetBlocked clears all blockage.
func (g *Grid) ResetBlocked() {
	for i := range g.blocked {
		g.blocked[i] = false
	}
}

// edgeKey canonically identifies the channel segment between two adjacent
// cells.
type edgeKey struct{ a, b int }

func mkEdge(a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// CNOT is one two-qubit logical operation between patch cells.
type CNOT struct {
	Control, Target int
}

// RoutePaths routes as many of the pending CNOTs as possible in one
// time-step using edge-disjoint BFS paths that avoid blocked cells. It
// returns the indices of the routed operations.
//
// A CNOT touching a blocked patch cannot execute at all this step. Paths
// may pass through cells occupied by other logical qubits' channels (the
// channels run between patches), but not through blocked cells, and no two
// paths may share a channel segment.
func (g *Grid) RoutePaths(pending []CNOT, rng *rand.Rand) []int {
	usedEdge := map[edgeKey]bool{}
	var routed []int
	order := rng.Perm(len(pending))
	for _, oi := range order {
		op := pending[oi]
		if g.blocked[op.Control] || g.blocked[op.Target] {
			continue
		}
		path := g.bfsPath(op.Control, op.Target, usedEdge)
		if path == nil {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			usedEdge[mkEdge(path[i], path[i+1])] = true
		}
		routed = append(routed, oi)
	}
	return routed
}

// bfsPath finds a shortest path between cells avoiding blocked interior
// cells and used edges. Endpoints may be the control/target themselves.
func (g *Grid) bfsPath(src, dst int, usedEdge map[edgeKey]bool) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.Rows*g.Cols)
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			var path []int
			for v := dst; v != -1; v = prev[v] {
				path = append(path, v)
			}
			return path
		}
		r, c := cur/g.Cols, cur%g.Cols
		for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
			nr, nc := nb[0], nb[1]
			if nr < 0 || nr >= g.Rows || nc < 0 || nc >= g.Cols {
				continue
			}
			next := g.Cell(nr, nc)
			if prev[next] != -2 {
				continue
			}
			if usedEdge[mkEdge(cur, next)] {
				continue
			}
			// Interior hops may not pass through blocked cells; the
			// destination is checked by the caller.
			if g.blocked[next] && next != dst {
				continue
			}
			prev[next] = cur
			queue = append(queue, next)
		}
	}
	return nil
}

// TaskResult reports a task-set simulation.
type TaskResult struct {
	Steps      int
	Operations int
	// Throughput is operations per time-step.
	Throughput float64
	// Stalled reports that some operations could never be routed within
	// the step budget (the Q3DE OverRuntime condition).
	Stalled bool
}

// RunTasks executes the CNOT list to completion (or the step budget),
// routing greedily each time-step. Operations are issued in order but may
// complete out of order; an operation becomes eligible when its operands
// are not used by an earlier pending operation (program order per qubit).
func (g *Grid) RunTasks(ops []CNOT, maxSteps int, rng *rand.Rand) TaskResult {
	done := make([]bool, len(ops))
	completed := 0
	steps := 0
	for completed < len(ops) && steps < maxSteps {
		steps++
		// Eligible ops: operands free among not-done earlier ops.
		busy := map[int]bool{}
		var pending []CNOT
		var pendingIdx []int
		for i, op := range ops {
			if done[i] {
				continue
			}
			if busy[op.Control] || busy[op.Target] {
				busy[op.Control] = true
				busy[op.Target] = true
				continue
			}
			busy[op.Control] = true
			busy[op.Target] = true
			pending = append(pending, op)
			pendingIdx = append(pendingIdx, i)
		}
		routed := g.RoutePaths(pending, rng)
		if len(routed) == 0 {
			// Nothing routable this step; if nothing is eligible either,
			// the task set is stalled for good.
			stalledForever := true
			for _, op := range pending {
				if !g.blocked[op.Control] && !g.blocked[op.Target] {
					stalledForever = false
					break
				}
			}
			if stalledForever && len(pending) > 0 {
				return TaskResult{Steps: steps, Operations: completed,
					Throughput: float64(completed) / float64(steps), Stalled: true}
			}
			continue
		}
		for _, ri := range routed {
			done[pendingIdx[ri]] = true
			completed++
		}
	}
	res := TaskResult{Steps: steps, Operations: completed}
	if steps > 0 {
		res.Throughput = float64(completed) / float64(steps)
	}
	res.Stalled = completed < len(ops)
	return res
}
