// Package route simulates lattice-surgery communication on a logical-qubit
// grid: ancilla paths for long-range CNOTs are routed edge-disjointly
// through the channels between patches, and enlarged or defective patches
// block their surrounding channels. This is the machinery behind the
// throughput study of fig. 11c, the OverRuntime verdicts of Table II, and
// the router-in-the-loop layout trajectories of internal/traj.
//
// Routing is deterministic by construction: no RNG enters any decision.
// Tie-breaks between equally routable operations rotate with the time-step
// (round-robin fairness), so a task set's execution is a pure function of
// (grid state, operation list, step index) — the property the trajectory
// engine's store identity relies on.
package route

// Grid is the channel network of an N-patch layout: nodes are patch cells,
// edges are the channel segments between orthogonally adjacent cells.
//
// A Grid carries preallocated routing scratch (epoch-stamped visit and
// edge-occupancy arrays, a BFS ring buffer) reused across calls, so it is
// NOT safe for concurrent use; give each goroutine its own Grid.
type Grid struct {
	Rows, Cols int
	// blocked[c] marks a cell whose surrounding channels are unusable
	// (a Q3DE-enlarged patch spills into its channels).
	blocked []bool

	// Routing scratch, epoch-stamped per the internal/decoder hot-path
	// discipline: an entry is live only when its stamp equals the current
	// epoch, so resetting between calls is one integer increment instead of
	// an O(cells) clear or a fresh map.
	prev      []int32  // BFS predecessor per cell
	prevEpoch []uint32 // stamp: prev[c] valid iff prevEpoch[c] == bfsEpoch
	bfsEpoch  uint32
	edgeUsed  []uint32 // stamp: edge occupied iff edgeUsed[e] == stepEpoch
	stepEpoch uint32
	queue     []int32 // BFS ring buffer
	path      []int32 // reversed path of the last bfsPath call
	busy      []uint32
	busyEpoch uint32
	pending   []CNOT
	pendIdx   []int
}

// NewGrid creates an unblocked grid.
func NewGrid(rows, cols int) *Grid {
	n := rows * cols
	return &Grid{
		Rows: rows, Cols: cols,
		blocked:   make([]bool, n),
		prev:      make([]int32, n),
		prevEpoch: make([]uint32, n),
		edgeUsed:  make([]uint32, 2*n),
		queue:     make([]int32, n),
		busy:      make([]uint32, n),
		// stepEpoch starts at 1 so the zeroed edgeUsed stamps never read as
		// occupied before the first RoutePaths call advances the epoch.
		stepEpoch: 1,
	}
}

// Cell flattens (r, c).
func (g *Grid) Cell(r, c int) int { return r*g.Cols + c }

// SetBlocked marks or clears a cell's blockage.
func (g *Grid) SetBlocked(cell int, blocked bool) { g.blocked[cell] = blocked }

// Blocked reports whether a cell's channels are blocked.
func (g *Grid) Blocked(cell int) bool { return g.blocked[cell] }

// ResetBlocked clears all blockage.
func (g *Grid) ResetBlocked() {
	for i := range g.blocked {
		g.blocked[i] = false
	}
}

// NumBlocked counts the currently blocked cells.
func (g *Grid) NumBlocked() int {
	n := 0
	for _, b := range g.blocked {
		if b {
			n++
		}
	}
	return n
}

// edgeIndex canonically identifies the channel segment between two adjacent
// cells as an index into edgeUsed: each cell owns its rightward (2c) and
// downward (2c+1) segment.
func (g *Grid) edgeIndex(a, b int) int {
	if a > b {
		a, b = b, a
	}
	if b == a+1 {
		return 2 * a // horizontal: a owns its right edge
	}
	return 2*a + 1 // vertical: a owns its down edge
}

// CNOT is one two-qubit logical operation between patch cells.
type CNOT struct {
	Control, Target int
}

// RoutePaths routes as many of the pending CNOTs as possible in one
// time-step using edge-disjoint BFS paths that avoid blocked cells. It
// returns the indices of the routed operations, appended to dst (pass nil
// to allocate).
//
// A CNOT touching a blocked patch cannot execute at all this step. Paths
// may pass through cells occupied by other logical qubits' channels (the
// channels run between patches), but not through blocked cells, and no two
// paths may share a channel segment. Operations are attempted in a
// rotation of the pending order keyed on step, so no fixed list position
// is persistently favoured when paths contend — the deterministic
// replacement for the RNG shuffle this function once took.
func (g *Grid) RoutePaths(pending []CNOT, step int, dst []int) []int {
	g.stepEpoch++
	if g.stepEpoch == 0 { // epoch wrapped: stale stamps would alias
		clearStamps(g.edgeUsed)
		g.stepEpoch = 1
	}
	n := len(pending)
	if n == 0 {
		return dst
	}
	start := step % n
	if start < 0 {
		start += n
	}
	for k := 0; k < n; k++ {
		oi := start + k
		if oi >= n {
			oi -= n
		}
		op := pending[oi]
		if g.blocked[op.Control] || g.blocked[op.Target] {
			continue
		}
		path := g.bfsPath(op.Control, op.Target)
		if path == nil {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			g.edgeUsed[g.edgeIndex(int(path[i]), int(path[i+1]))] = g.stepEpoch
		}
		dst = append(dst, oi)
	}
	return dst
}

// bfsPath finds a shortest path between cells avoiding blocked interior
// cells and edges used earlier in the current step epoch. Endpoints may be
// the control/target themselves. The returned slice is the Grid's scratch,
// valid only until the next call.
func (g *Grid) bfsPath(src, dst int) []int32 {
	g.path = g.path[:0]
	if src == dst {
		g.path = append(g.path, int32(src))
		return g.path
	}
	g.bfsEpoch++
	if g.bfsEpoch == 0 {
		clearStamps(g.prevEpoch)
		g.bfsEpoch = 1
	}
	g.prev[src] = -1
	g.prevEpoch[src] = g.bfsEpoch
	g.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		cur := int(g.queue[head])
		head++
		if cur == dst {
			for v := dst; v != -1; v = int(g.prev[v]) {
				g.path = append(g.path, int32(v))
			}
			return g.path
		}
		r, c := cur/g.Cols, cur%g.Cols
		for _, nb := range [4][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
			nr, nc := nb[0], nb[1]
			if nr < 0 || nr >= g.Rows || nc < 0 || nc >= g.Cols {
				continue
			}
			next := g.Cell(nr, nc)
			if g.prevEpoch[next] == g.bfsEpoch {
				continue
			}
			if g.edgeUsed[g.edgeIndex(cur, next)] == g.stepEpoch {
				continue
			}
			// Interior hops may not pass through blocked cells; the
			// destination is checked by the caller.
			if g.blocked[next] && next != dst {
				continue
			}
			g.prev[next] = int32(cur)
			g.prevEpoch[next] = g.bfsEpoch
			g.queue[tail] = int32(next)
			tail++
		}
	}
	return nil
}

// TaskResult reports a task-set simulation.
type TaskResult struct {
	Steps      int
	Operations int
	// Throughput is operations per time-step.
	Throughput float64
	// Stalled reports that some operations could never be routed within
	// the step budget (the Q3DE OverRuntime condition).
	Stalled bool
}

// RunTasks executes the CNOT list to completion (or the step budget),
// routing greedily each time-step. Operations are issued in order but may
// complete out of order; an operation becomes eligible when its operands
// are not used by an earlier pending operation (program order per qubit).
// Execution is deterministic: identical (grid, ops, maxSteps) always yield
// the identical TaskResult.
func (g *Grid) RunTasks(ops []CNOT, maxSteps int) TaskResult {
	done := make([]bool, len(ops))
	completed := 0
	steps := 0
	var routed []int
	for completed < len(ops) && steps < maxSteps {
		steps++
		pending, pendingIdx := g.eligible(ops, done)
		routed = g.RoutePaths(pending, steps-1, routed[:0])
		if len(routed) == 0 {
			// Nothing routable this step; if nothing is eligible either,
			// the task set is stalled for good.
			stalledForever := true
			for _, op := range pending {
				if !g.blocked[op.Control] && !g.blocked[op.Target] {
					stalledForever = false
					break
				}
			}
			if stalledForever && len(pending) > 0 {
				return TaskResult{Steps: steps, Operations: completed,
					Throughput: float64(completed) / float64(steps), Stalled: true}
			}
			continue
		}
		for _, ri := range routed {
			done[pendingIdx[ri]] = true
			completed++
		}
	}
	res := TaskResult{Steps: steps, Operations: completed}
	if steps > 0 {
		res.Throughput = float64(completed) / float64(steps)
	}
	res.Stalled = completed < len(ops)
	return res
}

// clearStamps zeroes an epoch-stamp array after its counter wrapped.
func clearStamps(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

// eligible collects the not-done operations whose operands are free among
// earlier not-done operations (program order per qubit). The returned
// slices are the Grid's scratch, valid until the next call.
func (g *Grid) eligible(ops []CNOT, done []bool) ([]CNOT, []int) {
	g.busyEpoch++
	if g.busyEpoch == 0 {
		clearStamps(g.busy)
		g.busyEpoch = 1
	}
	g.pending = g.pending[:0]
	g.pendIdx = g.pendIdx[:0]
	for i, op := range ops {
		if done[i] {
			continue
		}
		if g.busy[op.Control] == g.busyEpoch || g.busy[op.Target] == g.busyEpoch {
			g.busy[op.Control] = g.busyEpoch
			g.busy[op.Target] = g.busyEpoch
			continue
		}
		g.busy[op.Control] = g.busyEpoch
		g.busy[op.Target] = g.busyEpoch
		g.pending = append(g.pending, op)
		g.pendIdx = append(g.pendIdx, i)
	}
	return g.pending, g.pendIdx
}
