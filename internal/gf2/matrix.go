// Package gf2 implements dense linear algebra over GF(2).
//
// Matrices are stored row-major as slices of 64-bit words. The package
// provides the primitives the code layer needs: rank computation, row
// reduction, solving linear systems, nullspace bases, and membership tests
// for row spans. All operations are deterministic and allocate copies rather
// than mutating their inputs unless the method name says otherwise.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a bit vector over GF(2), packed little-endian into 64-bit words.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// VecFromIndices returns a length-n vector with ones at the given indices.
func VecFromIndices(n int, idx []int) Vec {
	v := NewVec(n)
	for _, i := range idx {
		v.Set(i, true)
	}
	return v
}

// Len returns the vector length in bits.
func (v Vec) Len() int { return v.n }

// Get reports the bit at index i.
func (v Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set assigns the bit at index i.
func (v Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles the bit at index i.
func (v Vec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Xor sets v ^= u. The lengths must match.
func (v Vec) Xor(u Vec) {
	if v.n != u.n {
		panic("gf2: length mismatch in Xor")
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// Dot returns the GF(2) inner product of v and u.
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic("gf2: length mismatch in Dot")
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & u.words[i]
	}
	return bits.OnesCount64(acc)%2 == 1
}

// Weight returns the Hamming weight of v.
func (v Vec) Weight() int {
	w := 0
	for _, word := range v.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	for _, word := range v.words {
		if word != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and u hold identical bits.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of set bits in ascending order.
func (v Vec) Indices() []int {
	var idx []int
	for wi, word := range v.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			idx = append(idx, wi*wordBits+b)
			word &= word - 1
		}
	}
	return idx
}

// String renders v as a bit string, most significant index last.
func (v Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matrix is a dense GF(2) matrix with rows stored as Vecs.
type Matrix struct {
	rows int
	cols int
	data []Vec
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// FromRows builds a matrix whose rows are copies of the given vectors.
// All vectors must share the same length.
func FromRows(rows []Vec) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := rows[0].Len()
	m := &Matrix{rows: len(rows), cols: cols, data: make([]Vec, len(rows))}
	for i, r := range rows {
		if r.Len() != cols {
			panic("gf2: inconsistent row lengths")
		}
		m.data[i] = r.Clone()
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get reports the bit at (r, c).
func (m *Matrix) Get(r, c int) bool { return m.data[r].Get(c) }

// Set assigns the bit at (r, c).
func (m *Matrix) Set(r, c int, b bool) { m.data[r].Set(c, b) }

// Row returns row r without copying; mutating it mutates the matrix.
func (m *Matrix) Row(r int) Vec { return m.data[r] }

// AppendRow adds a copy of v as a new bottom row.
func (m *Matrix) AppendRow(v Vec) {
	if m.rows == 0 && m.cols == 0 {
		m.cols = v.Len()
	}
	if v.Len() != m.cols {
		panic("gf2: row length mismatch in AppendRow")
	}
	m.data = append(m.data, v.Clone())
	m.rows++
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// Rank returns the rank of m over GF(2).
func (m *Matrix) Rank() int {
	c := m.Clone()
	return c.rowReduceInPlace(nil)
}

// rowReduceInPlace transforms the matrix to row echelon form, returning the
// rank. If pivots is non-nil it is filled with the pivot column of each of
// the first rank rows.
func (m *Matrix) rowReduceInPlace(pivots *[]int) int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.data[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.data[rank], m.data[pivot] = m.data[pivot], m.data[rank]
		for r := 0; r < m.rows; r++ {
			if r != rank && m.data[r].Get(col) {
				m.data[r].Xor(m.data[rank])
			}
		}
		if pivots != nil {
			*pivots = append(*pivots, col)
		}
		rank++
	}
	return rank
}

// RowReduce returns the reduced row echelon form of m, its rank, and the
// pivot columns.
func (m *Matrix) RowReduce() (rref *Matrix, rank int, pivots []int) {
	rref = m.Clone()
	rank = rref.rowReduceInPlace(&pivots)
	return rref, rank, pivots
}

// InSpan reports whether v lies in the row span of m.
func (m *Matrix) InSpan(v Vec) bool {
	if v.Len() != m.cols {
		panic("gf2: length mismatch in InSpan")
	}
	aug := m.Clone()
	aug.AppendRow(v)
	return aug.Rank() == m.Rank()
}

// SpanContainsAll reports whether every row of other lies in the row span
// of m.
func (m *Matrix) SpanContainsAll(other *Matrix) bool {
	if other.rows == 0 {
		return true
	}
	if other.cols != m.cols {
		panic("gf2: column mismatch in SpanContainsAll")
	}
	base := m.Rank()
	aug := m.Clone()
	for _, r := range other.data {
		aug.AppendRow(r)
	}
	return aug.Rank() == base
}

// Solve finds x with xᵀ·m = v, i.e. expresses v as a combination of the rows
// of m. It returns the combination indicator over rows and ok=false when v is
// outside the row span.
func (m *Matrix) Solve(v Vec) (combo Vec, ok bool) {
	if v.Len() != m.cols {
		panic("gf2: length mismatch in Solve")
	}
	// Augment each row with an identity tag tracking combinations.
	work := make([]Vec, m.rows)
	for i, r := range m.data {
		w := NewVec(m.cols + m.rows)
		for _, c := range r.Indices() {
			w.Set(c, true)
		}
		w.Set(m.cols+i, true)
		work[i] = w
	}
	target := NewVec(m.cols + m.rows)
	for _, c := range v.Indices() {
		target.Set(c, true)
	}
	rank := 0
	for col := 0; col < m.cols && rank < len(work); col++ {
		pivot := -1
		for r := rank; r < len(work); r++ {
			if work[r].Get(col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		for r := range work {
			if r != rank && work[r].Get(col) {
				work[r].Xor(work[rank])
			}
		}
		if target.Get(col) {
			target.Xor(work[rank])
		}
		rank++
	}
	for c := 0; c < m.cols; c++ {
		if target.Get(c) {
			return Vec{}, false
		}
	}
	combo = NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if target.Get(m.cols + i) {
			combo.Set(i, true)
		}
	}
	return combo, true
}

// Nullspace returns a basis of {x : m·x = 0} as row vectors of length Cols.
func (m *Matrix) Nullspace() []Vec {
	rref, rank, pivots := m.RowReduce()
	isPivot := make([]bool, m.cols)
	for _, p := range pivots {
		isPivot[p] = true
	}
	var basis []Vec
	for c := 0; c < m.cols; c++ {
		if isPivot[c] {
			continue
		}
		v := NewVec(m.cols)
		v.Set(c, true)
		for r := 0; r < rank; r++ {
			if rref.data[r].Get(c) {
				v.Set(pivots[r], true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		for _, c := range m.data[r].Indices() {
			t.data[c].Set(r, true)
		}
	}
	return t
}

// MulVec returns m·x for a column vector x of length Cols.
func (m *Matrix) MulVec(x Vec) Vec {
	if x.Len() != m.cols {
		panic("gf2: length mismatch in MulVec")
	}
	out := NewVec(m.rows)
	for r := 0; r < m.rows; r++ {
		if m.data[r].Dot(x) {
			out.Set(r, true)
		}
	}
	return out
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i, r := range m.data {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
