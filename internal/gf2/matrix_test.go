package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if !v.IsZero() {
		t.Fatal("new vector should be zero")
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if got := v.Weight(); got != 3 {
		t.Fatalf("Weight = %d, want 3", got)
	}
	for _, i := range []int{0, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	v.Flip(64)
	if v.Get(64) {
		t.Error("bit 64 should be cleared after Flip")
	}
	idx := v.Indices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 129 {
		t.Errorf("Indices = %v, want [0 129]", idx)
	}
}

func TestVecFromIndices(t *testing.T) {
	v := VecFromIndices(10, []int{1, 3, 3, 7})
	// Setting an index twice leaves the bit set: Set is idempotent.
	want := []int{1, 3, 7}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestVecXorDot(t *testing.T) {
	a := VecFromIndices(8, []int{0, 1, 2})
	b := VecFromIndices(8, []int{1, 2, 3})
	if a.Dot(b) {
		// overlap {1,2} has even parity -> Dot false
		t.Error("Dot: overlap of size 2 should give false")
	}
	if !a.Dot(VecFromIndices(8, []int{2, 5})) {
		t.Error("Dot: overlap of size 1 should give true")
	}
	c := a.Clone()
	c.Xor(b)
	wantIdx := []int{0, 3}
	gotIdx := c.Indices()
	if len(gotIdx) != 2 || gotIdx[0] != wantIdx[0] || gotIdx[1] != wantIdx[1] {
		t.Errorf("Xor indices = %v, want %v", gotIdx, wantIdx)
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	v := NewVec(4)
	v.Get(4)
}

func TestMatrixRankIdentity(t *testing.T) {
	n := 17
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	if got := m.Rank(); got != n {
		t.Fatalf("Rank(I_%d) = %d, want %d", n, got, n)
	}
}

func TestMatrixRankDependentRows(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(0, 0, true)
	m.Set(0, 1, true)
	m.Set(1, 1, true)
	m.Set(1, 2, true)
	// Row 2 = row 0 + row 1.
	m.Set(2, 0, true)
	m.Set(2, 2, true)
	if got := m.Rank(); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
}

func TestInSpan(t *testing.T) {
	m := FromRows([]Vec{
		VecFromIndices(4, []int{0, 1}),
		VecFromIndices(4, []int{1, 2}),
	})
	if !m.InSpan(VecFromIndices(4, []int{0, 2})) {
		t.Error("sum of rows should lie in span")
	}
	if m.InSpan(VecFromIndices(4, []int{3})) {
		t.Error("e_3 should not lie in span")
	}
	if !m.InSpan(NewVec(4)) {
		t.Error("zero vector always lies in span")
	}
}

func TestSolve(t *testing.T) {
	rows := []Vec{
		VecFromIndices(5, []int{0, 1}),
		VecFromIndices(5, []int{1, 2}),
		VecFromIndices(5, []int{2, 3}),
	}
	m := FromRows(rows)
	target := VecFromIndices(5, []int{0, 3}) // row0+row1+row2
	combo, ok := m.Solve(target)
	if !ok {
		t.Fatal("Solve failed on in-span target")
	}
	// Verify the combination reproduces the target.
	acc := NewVec(5)
	for i := 0; i < m.Rows(); i++ {
		if combo.Get(i) {
			acc.Xor(m.Row(i))
		}
	}
	if !acc.Equal(target) {
		t.Fatalf("Solve combo %v does not reproduce target", combo.Indices())
	}
	if _, ok := m.Solve(VecFromIndices(5, []int{4})); ok {
		t.Error("Solve should fail for out-of-span target")
	}
}

func TestNullspace(t *testing.T) {
	// m = [1 1 0; 0 1 1] has nullspace spanned by (1,1,1).
	m := FromRows([]Vec{
		VecFromIndices(3, []int{0, 1}),
		VecFromIndices(3, []int{1, 2}),
	})
	ns := m.Nullspace()
	if len(ns) != 1 {
		t.Fatalf("nullspace dim = %d, want 1", len(ns))
	}
	if ns[0].Weight() != 3 {
		t.Fatalf("nullspace basis = %v, want weight 3", ns[0].Indices())
	}
	// Every basis vector must satisfy m·x = 0.
	for _, v := range ns {
		if !m.MulVec(v).IsZero() {
			t.Error("nullspace vector fails m·x = 0")
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 2, true)
	m.Set(1, 0, true)
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	if !tr.Get(2, 0) || !tr.Get(0, 1) {
		t.Error("transpose bits misplaced")
	}
}

func TestRowReducePivots(t *testing.T) {
	m := FromRows([]Vec{
		VecFromIndices(4, []int{1, 2}),
		VecFromIndices(4, []int{2, 3}),
		VecFromIndices(4, []int{1, 3}),
	})
	rref, rank, pivots := m.RowReduce()
	if rank != 2 {
		t.Fatalf("rank = %d, want 2", rank)
	}
	if len(pivots) != 2 {
		t.Fatalf("pivots = %v, want 2 entries", pivots)
	}
	// rref rows beyond rank must be zero.
	for r := rank; r < rref.Rows(); r++ {
		if !rref.Row(r).IsZero() {
			t.Error("non-zero row below rank in RREF")
		}
	}
}

// Property: rank is invariant under row shuffling.
func TestQuickRankShuffleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(10)
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		r1 := m.Rank()
		perm := rng.Perm(rows)
		shuffled := NewMatrix(rows, cols)
		for i, p := range perm {
			for c := 0; c < cols; c++ {
				shuffled.Set(i, c, m.Get(p, c))
			}
		}
		return shuffled.Rank() == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any vector v in the span (constructed as a random row
// combination), Solve succeeds and the recovered combination reproduces v.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(10)
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		v := NewVec(cols)
		for r := 0; r < rows; r++ {
			if rng.Intn(2) == 1 {
				v.Xor(m.Row(r))
			}
		}
		combo, ok := m.Solve(v)
		if !ok {
			return false
		}
		acc := NewVec(cols)
		for r := 0; r < rows; r++ {
			if combo.Get(r) {
				acc.Xor(m.Row(r))
			}
		}
		return acc.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: nullspace dimension equals cols - rank (rank-nullity).
func TestQuickRankNullity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(10)
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		return len(m.Nullspace()) == cols-m.Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRank64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(64, 64)
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if rng.Intn(2) == 1 {
				m.Set(r, c, true)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank()
	}
}
