package surgery

import (
	"testing"

	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
)

func co(r, c int) lattice.Coord { return lattice.Coord{Row: r, Col: c} }

func TestMergeTwoPatches(t *testing.T) {
	// Two d=5 patches separated by a 5-column channel (the paper's
	// d-spaced layout).
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.DX != 5+5+5 || m.DZ != 5 {
		t.Fatalf("merged spec %dx%d, want 15x5", m.DX, m.DZ)
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("merged code invalid: %v", err)
	}
	// The merged patch encodes one logical qubit with Z distance 15
	// (widened) and X distance 5.
	if got := c.DistanceZ(); got != 15 {
		t.Errorf("merged DistanceZ = %d, want 15", got)
	}
	if got := c.DistanceX(); got != 5 {
		t.Errorf("merged DistanceX = %d, want 5", got)
	}
}

func TestMergeCarriesDeformations(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if err := a.DataQRM(co(5, 5)); err != nil {
		t.Fatal(err)
	}
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RemovedData[co(5, 5)] {
		t.Error("merge lost the removal record")
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("merged deformed code invalid: %v", err)
	}
	if c.Distance() >= 5 && len(c.Gauges()) == 0 {
		t.Error("carried-over removal should leave gauge structure")
	}
}

func TestMergeRejectsMisaligned(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if _, err := Merge(a, deform.NewSquareSpec(co(2, 20), 5)); err == nil {
		t.Error("row-misaligned merge must fail")
	}
	if _, err := Merge(a, deform.NewSquareSpec(co(0, 20), 3)); err == nil {
		t.Error("height-mismatched merge must fail")
	}
	if _, err := Merge(a, deform.NewSquareSpec(co(0, 10), 5)); err == nil {
		t.Error("touching patches leave no ancilla strip; merge must fail")
	}
}

func TestSplitRoundTrip(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, right, err := Split(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if left.DX != 5 || right.DX != 5 {
		t.Fatalf("split widths %d/%d, want 5/5", left.DX, right.DX)
	}
	if right.Origin != co(0, 20) {
		t.Errorf("right origin %v, want (0,20)", right.Origin)
	}
	for _, s := range []*deform.Spec{left, right} {
		c, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if c.Distance() != 5 {
			t.Errorf("split patch distance %d, want 5", c.Distance())
		}
	}
}

func TestSplitPartitionsRemovals(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 5)); err != nil { // left half
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 25)); err != nil { // right half
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 15)); err != nil { // ancilla strip: vanishes
		t.Fatal(err)
	}
	left, right, err := Split(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !left.RemovedData[co(5, 5)] || left.RemovedData[co(5, 25)] {
		t.Error("left split carries the wrong removals")
	}
	if !right.RemovedData[co(5, 25)] || right.RemovedData[co(5, 5)] {
		t.Error("right split carries the wrong removals")
	}
	if left.RemovedData[co(5, 15)] || right.RemovedData[co(5, 15)] {
		t.Error("strip removal must vanish with the strip")
	}
}

func TestSplitRejectsBadGeometry(t *testing.T) {
	m := deform.NewSpec(co(0, 0), 15, 5)
	if _, _, err := Split(m, 0, 5); err == nil {
		t.Error("empty left split must fail")
	}
	if _, _, err := Split(m, 10, 5); err == nil {
		t.Error("split leaving no right patch must fail")
	}
}

func TestMergeBlockedByDefects(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	// A clean channel merges fine.
	blocked, err := MergeBlocked(a, b, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Error("clean channel should not block")
	}
	// A defect column across the strip severs the merged patch.
	var wall []lattice.Coord
	for r := 1; r <= 9; r += 2 {
		wall = append(wall, co(r, 15))
	}
	blocked, err = MergeBlocked(a, b, wall, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !blocked {
		t.Error("a defect wall across the channel must block the merge")
	}
}

func TestGrowTowards(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if err := GrowTowards(a, 16); err != nil {
		t.Fatal(err)
	}
	if a.DX != 8 {
		t.Errorf("grown DX = %d, want 8", a.DX)
	}
	if err := GrowTowards(a, 2); err == nil {
		t.Error("growing backwards must fail")
	}
}
