package surgery

import (
	"testing"

	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
)

func co(r, c int) lattice.Coord { return lattice.Coord{Row: r, Col: c} }

func TestMergeTwoPatches(t *testing.T) {
	// Two d=5 patches separated by a 5-column channel (the paper's
	// d-spaced layout).
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.DX != 5+5+5 || m.DZ != 5 {
		t.Fatalf("merged spec %dx%d, want 15x5", m.DX, m.DZ)
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("merged code invalid: %v", err)
	}
	// The merged patch encodes one logical qubit with Z distance 15
	// (widened) and X distance 5.
	if got := c.DistanceZ(); got != 15 {
		t.Errorf("merged DistanceZ = %d, want 15", got)
	}
	if got := c.DistanceX(); got != 5 {
		t.Errorf("merged DistanceX = %d, want 5", got)
	}
}

func TestMergeCarriesDeformations(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if err := a.DataQRM(co(5, 5)); err != nil {
		t.Fatal(err)
	}
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RemovedData[co(5, 5)] {
		t.Error("merge lost the removal record")
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("merged deformed code invalid: %v", err)
	}
	if c.Distance() >= 5 && len(c.Gauges()) == 0 {
		t.Error("carried-over removal should leave gauge structure")
	}
}

func TestMergeRejectsMisaligned(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if _, err := Merge(a, deform.NewSquareSpec(co(2, 20), 5)); err == nil {
		t.Error("row-misaligned merge must fail")
	}
	if _, err := Merge(a, deform.NewSquareSpec(co(0, 20), 3)); err == nil {
		t.Error("height-mismatched merge must fail")
	}
	if _, err := Merge(a, deform.NewSquareSpec(co(0, 10), 5)); err == nil {
		t.Error("touching patches leave no ancilla strip; merge must fail")
	}
}

func TestSplitRoundTrip(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, right, err := Split(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if left.DX != 5 || right.DX != 5 {
		t.Fatalf("split widths %d/%d, want 5/5", left.DX, right.DX)
	}
	if right.Origin != co(0, 20) {
		t.Errorf("right origin %v, want (0,20)", right.Origin)
	}
	for _, s := range []*deform.Spec{left, right} {
		c, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if c.Distance() != 5 {
			t.Errorf("split patch distance %d, want 5", c.Distance())
		}
	}
}

func TestSplitPartitionsRemovals(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 5)); err != nil { // left half
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 25)); err != nil { // right half
		t.Fatal(err)
	}
	if err := m.DataQRM(co(5, 15)); err != nil { // ancilla strip: vanishes
		t.Fatal(err)
	}
	left, right, err := Split(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !left.RemovedData[co(5, 5)] || left.RemovedData[co(5, 25)] {
		t.Error("left split carries the wrong removals")
	}
	if !right.RemovedData[co(5, 25)] || right.RemovedData[co(5, 5)] {
		t.Error("right split carries the wrong removals")
	}
	if left.RemovedData[co(5, 15)] || right.RemovedData[co(5, 15)] {
		t.Error("strip removal must vanish with the strip")
	}
}

func TestSplitRejectsBadGeometry(t *testing.T) {
	m := deform.NewSpec(co(0, 0), 15, 5)
	if _, _, err := Split(m, 0, 5); err == nil {
		t.Error("empty left split must fail")
	}
	if _, _, err := Split(m, 10, 5); err == nil {
		t.Error("split leaving no right patch must fail")
	}
}

func TestMergeBlockedByDefects(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	// A clean channel merges fine.
	blocked, err := MergeBlocked(a, b, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Error("clean channel should not block")
	}
	// A defect column across the strip severs the merged patch.
	var wall []lattice.Coord
	for r := 1; r <= 9; r += 2 {
		wall = append(wall, co(r, 15))
	}
	blocked, err = MergeBlocked(a, b, wall, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !blocked {
		t.Error("a defect wall across the channel must block the merge")
	}
}

func TestGrowTowards(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if err := GrowTowards(a, 16); err != nil {
		t.Fatal(err)
	}
	if a.DX != 8 {
		t.Errorf("grown DX = %d, want 8", a.DX)
	}
	if err := GrowTowards(a, 2); err == nil {
		t.Error("growing backwards must fail")
	}
}

// TestMergeCarriesBothSides merges two patches that each carry live
// deformations and checks the merged code is valid with both removal
// records intact — the situation a layout trajectory is in when a surgery
// op lands on patches mid-mitigation.
func TestMergeCarriesBothSides(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	if err := a.DataQRM(co(3, 5)); err != nil {
		t.Fatal(err)
	}
	b := deform.NewSquareSpec(co(0, 20), 5)
	if err := b.DataQRM(co(7, 25)); err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RemovedData[co(3, 5)] || !m.RemovedData[co(7, 25)] {
		t.Fatal("merge dropped a removal record")
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("merged doubly-deformed code invalid: %v", err)
	}
	if len(c.Gauges()) == 0 {
		t.Error("removals on both sides should leave gauge structure")
	}
	if c.DistanceX() > 5 || c.DistanceZ() > 15 {
		t.Errorf("merged distances %d/%d exceed the defect-free %d/%d",
			c.DistanceX(), c.DistanceZ(), 5, 15)
	}
}

// TestSplitWithActiveDeformations splits a merged patch while both halves
// carry deformations: each half must build into a valid code with its own
// removals, and the defective halves keep their degraded distance.
func TestSplitWithActiveDeformations(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Left half takes a two-site cluster, right half a single site.
	for _, q := range []lattice.Coord{co(3, 5), co(5, 5), co(5, 25)} {
		if err := m.DataQRM(q); err != nil {
			t.Fatal(err)
		}
	}
	left, right, err := Split(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := left.Build()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := right.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []interface{ Validate() error }{cl, cr} {
		if err := c.Validate(); err != nil {
			t.Fatalf("split deformed code invalid: %v", err)
		}
	}
	if cl.Distance() >= 5 {
		t.Errorf("left split distance %d not degraded by its two-site cluster", cl.Distance())
	}
	if len(cr.Gauges()) == 0 {
		t.Error("right split lost its deformation's gauge structure")
	}
}

// TestMergeBlockedGrowRetry walks the defect-adaptive surgery sequence of
// the layout engine: a channel cluster blocks the merge at the
// full-distance demand, the left patch grows across the clean part of the
// channel (shortening the strip for the replan), and the retry at the
// degraded distance tolerance succeeds — the merged code carries the
// cluster as deformations and keeps the relaxed distance.
func TestMergeBlockedGrowRetry(t *testing.T) {
	a := deform.NewSquareSpec(co(0, 0), 5)
	b := deform.NewSquareSpec(co(0, 20), 5)
	cluster := []lattice.Coord{co(1, 15), co(5, 15)}
	blocked, err := MergeBlocked(a, b, cluster, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !blocked {
		t.Fatal("channel cluster should block a full-distance merge")
	}
	if err := GrowTowards(a, 14); err != nil {
		t.Fatal(err)
	}
	if a.DX != 7 {
		t.Fatalf("grown DX = %d, want 7", a.DX)
	}
	blocked, err = MergeBlocked(a, b, cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	if blocked {
		t.Error("retry after growth must succeed at the degraded distance tolerance")
	}
	// Execute the replanned merge and check the resulting code.
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := deform.ApplyDefects(m, cluster, deform.PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	for _, q := range cluster {
		if !m.RemovedData[q] {
			t.Errorf("merge dropped the cluster removal at %v", q)
		}
	}
	c, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("replanned merged code invalid: %v", err)
	}
	if c.Distance() < 4 {
		t.Errorf("merged distance %d below the relaxed tolerance 4", c.Distance())
	}
}
