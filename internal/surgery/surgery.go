// Package surgery implements the lattice-surgery primitives that form the
// baseline surface-code instruction set the paper extends (§II-D, fig. 4):
// growing patches, merging two patches through the ancilla region between
// them, and splitting a merged patch back apart.
//
// A merge along the Z boundaries of two horizontally adjacent patches
// measures the joint Z⊗Z logical operator: the combined system is a single
// wide patch (one logical qubit), which is exactly how the deform.Spec
// machinery represents it — the merged spec spans both patches plus the
// ancilla strip, and any defect removals recorded in either operand carry
// over. Splitting restores two independent specs.
//
// Defective sites inside the ancilla strip obstruct the merge; MergeBlocked
// reports the obstruction, which is the code-level mechanism behind the
// channel-blocking studied in fig. 10/11c.
package surgery

import (
	"fmt"

	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
)

// Merge fuses two horizontally adjacent patches (a left of b) into one
// spec spanning both and the strip between them. The patches must agree on
// vertical extent and be separated by at least one data column.
func Merge(a, b *deform.Spec) (*deform.Spec, error) {
	if a.Origin.Row != b.Origin.Row || a.DZ != b.DZ {
		return nil, fmt.Errorf("surgery: patches are not horizontally aligned (rows %d/%d, dz %d/%d)",
			a.Origin.Row, b.Origin.Row, a.DZ, b.DZ)
	}
	aMin, aMax := a.Bounds()
	bMin, _ := b.Bounds()
	if bMin.Col <= aMax.Col {
		return nil, fmt.Errorf("surgery: patches overlap or touch (right edge %d, left edge %d)",
			aMax.Col, bMin.Col)
	}
	gapCols := (bMin.Col - aMax.Col) / 2 // data columns in the ancilla strip
	if gapCols < 1 {
		return nil, fmt.Errorf("surgery: no ancilla strip between patches")
	}
	merged := deform.NewSpec(aMin, a.DX+gapCols+b.DX, a.DZ)
	for q := range a.RemovedData {
		merged.RemovedData[q] = true
	}
	for q := range b.RemovedData {
		merged.RemovedData[q] = true
	}
	for q := range a.RemovedSyndrome {
		merged.RemovedSyndrome[q] = true
	}
	for q := range b.RemovedSyndrome {
		merged.RemovedSyndrome[q] = true
	}
	for q, t := range a.Fixes {
		if !merged.IsInterior(q) {
			merged.Fixes[q] = t
		}
	}
	for q, t := range b.Fixes {
		if !merged.IsInterior(q) {
			merged.Fixes[q] = t
		}
	}
	return merged, nil
}

// Split cuts a merged spec back into two patches at the given data-column
// count for the left part, dropping splitCols data columns between them
// (the measured-out ancilla strip). Removed sites are partitioned; sites in
// the dropped strip vanish with it.
func Split(m *deform.Spec, leftDX, splitCols int) (*deform.Spec, *deform.Spec, error) {
	if leftDX < 1 || splitCols < 1 || leftDX+splitCols >= m.DX {
		return nil, nil, fmt.Errorf("surgery: invalid split (leftDX=%d, splitCols=%d of DX=%d)",
			leftDX, splitCols, m.DX)
	}
	left := deform.NewSpec(m.Origin, leftDX, m.DZ)
	rightOrigin := lattice.Coord{Row: m.Origin.Row, Col: m.Origin.Col + 2*(leftDX+splitCols)}
	right := deform.NewSpec(rightOrigin, m.DX-leftDX-splitCols, m.DZ)
	assign := func(q lattice.Coord, isSyndrome bool) {
		switch {
		case left.Contains(q) && q.Col < m.Origin.Col+2*leftDX+1:
			if isSyndrome {
				left.RemovedSyndrome[q] = true
			} else {
				left.RemovedData[q] = true
			}
		case right.Contains(q):
			if isSyndrome {
				right.RemovedSyndrome[q] = true
			} else {
				right.RemovedData[q] = true
			}
		}
	}
	for q := range m.RemovedData {
		assign(q, false)
	}
	for q := range m.RemovedSyndrome {
		assign(q, true)
	}
	for q, t := range m.Fixes {
		if left.RemovedData[q] && !left.IsInterior(q) {
			left.Fixes[q] = t
		}
		if right.RemovedData[q] && !right.IsInterior(q) {
			right.Fixes[q] = t
		}
	}
	return left, right, nil
}

// MergeBlocked reports whether defective sites obstruct the ancilla strip
// between two patches: a merge requires a clean distance-d channel, so any
// unremovable defect cluster wider than the spare space blocks it. The
// check is conservative: it builds the would-be merged code and fails if
// the defects sever it or drop its distance below minDistance.
func MergeBlocked(a, b *deform.Spec, defects []lattice.Coord, minDistance int) (bool, error) {
	merged, err := Merge(a, b)
	if err != nil {
		return true, err
	}
	if err := deform.ApplyDefects(merged, defects, deform.PolicySurfDeformer); err != nil {
		return true, nil
	}
	c, err := merged.Build()
	if err != nil {
		return true, nil // severed: merge impossible
	}
	return c.Distance() < minDistance, nil
}

// GrowTowards extends patch a rightwards until its boundary reaches the
// given column, the grow primitive of the LS instruction set expressed as
// PatchQ_ADD layers.
func GrowTowards(a *deform.Spec, col int) error {
	_, max := a.Bounds()
	if col <= max.Col {
		return fmt.Errorf("surgery: target column %d not beyond patch edge %d", col, max.Col)
	}
	layers := (col - max.Col) / 2
	if layers < 1 {
		return fmt.Errorf("surgery: target column %d too close for a full layer", col)
	}
	return a.PatchQADD(lattice.Right, layers)
}
