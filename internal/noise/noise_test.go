package noise

import (
	"testing"

	"surfdeformer/internal/lattice"
)

func TestUniformRates(t *testing.T) {
	m := Uniform(1e-3)
	q := lattice.Coord{Row: 1, Col: 1}
	if m.Rate1(q) != 1e-3 || m.Rate2(q, q) != 1e-3 || m.RateM(q) != 1e-3 {
		t.Error("uniform model must report p everywhere")
	}
	if m.IsDefective(q) {
		t.Error("uniform model has no defects")
	}
}

func TestDefectOverrides(t *testing.T) {
	hot := lattice.Coord{Row: 3, Col: 3}
	cold := lattice.Coord{Row: 1, Col: 1}
	m := Uniform(1e-3).WithDefects([]lattice.Coord{hot}, 0.5)
	if got := m.Rate1(hot); got != 0.5 {
		t.Errorf("defective Rate1 = %v, want 0.5", got)
	}
	if got := m.Rate1(cold); got != 1e-3 {
		t.Errorf("healthy Rate1 = %v, want 1e-3", got)
	}
	// Two-qubit gates touching a defective qubit inherit the defect rate.
	if got := m.Rate2(hot, cold); got != 0.5 {
		t.Errorf("Rate2 hot-cold = %v, want 0.5", got)
	}
	if got := m.Rate2(cold, cold); got != 1e-3 {
		t.Errorf("Rate2 cold-cold = %v", got)
	}
	if got := m.RateM(hot); got != 0.5 {
		t.Errorf("RateM hot = %v", got)
	}
}

func TestWithDefectsIsCopy(t *testing.T) {
	base := Uniform(1e-3)
	hot := lattice.Coord{Row: 3, Col: 3}
	derived := base.WithDefects([]lattice.Coord{hot}, 0.5)
	if base.IsDefective(hot) {
		t.Error("WithDefects must not mutate the base model")
	}
	if !derived.IsDefective(hot) {
		t.Error("derived model must carry the defect")
	}
}

func TestSiteRateOverrides(t *testing.T) {
	warm := lattice.Coord{Row: 3, Col: 3} // drifted: 1e-2
	hot := lattice.Coord{Row: 5, Col: 5}  // leaked neighbour: 0.25
	cold := lattice.Coord{Row: 1, Col: 1}
	m := Uniform(1e-3).WithSiteRates(map[lattice.Coord]float64{warm: 1e-2, hot: 0.25})
	if got := m.Rate1(warm); got != 1e-2 {
		t.Errorf("Rate1(warm) = %v, want 1e-2", got)
	}
	if got := m.RateM(hot); got != 0.25 {
		t.Errorf("RateM(hot) = %v, want 0.25", got)
	}
	if got := m.Rate1(cold); got != 1e-3 {
		t.Errorf("Rate1(cold) = %v, want base", got)
	}
	// Two-qubit gates take the largest override among the touched qubits.
	if got := m.Rate2(warm, hot); got != 0.25 {
		t.Errorf("Rate2(warm,hot) = %v, want 0.25", got)
	}
	if got := m.Rate2(cold, warm); got != 1e-2 {
		t.Errorf("Rate2(cold,warm) = %v, want 1e-2", got)
	}
	if !m.IsDefective(warm) || !m.IsDefective(hot) || m.IsDefective(cold) {
		t.Error("IsDefective must reflect site-rate overrides")
	}
	// SiteRates takes precedence over Defective for the same qubit.
	both := m.WithDefects([]lattice.Coord{warm}, 0.5)
	both.SiteRates = m.SiteRates
	if got := both.Rate1(warm); got != 1e-2 {
		t.Errorf("Rate1 with both overrides = %v, want the SiteRates value", got)
	}
}

func TestWithCorrelated(t *testing.T) {
	m := Uniform(1e-3).WithCorrelated(4e-3)
	if m.PCorrelated != 4e-3 {
		t.Error("correlated rate not installed")
	}
	if Uniform(1e-3).PCorrelated != 0 {
		t.Error("base model must default to zero correlated rate")
	}
}

// TestOverlaySiteRates pins the reweight tier's composition helper: the
// larger rate wins per site, neither input map is mutated, and the copy
// owns fresh storage.
func TestOverlaySiteRates(t *testing.T) {
	a := lattice.Coord{Row: 1, Col: 1}
	b := lattice.Coord{Row: 1, Col: 3}
	c := lattice.Coord{Row: 3, Col: 1}
	base := Uniform(1e-3).WithSiteRates(map[lattice.Coord]float64{a: 0.25, b: 0.01})
	overlay := map[lattice.Coord]float64{b: 0.05, c: 0.02}
	m := base.OverlaySiteRates(overlay)
	if got := m.Rate1(a); got != 0.25 {
		t.Errorf("Rate1(a) = %v, want the existing 0.25 kept", got)
	}
	if got := m.Rate1(b); got != 0.05 {
		t.Errorf("Rate1(b) = %v, want the larger overlay rate 0.05", got)
	}
	if got := m.Rate1(c); got != 0.02 {
		t.Errorf("Rate1(c) = %v, want the overlaid 0.02", got)
	}
	// An overlay below the existing override never masks it.
	if got := base.OverlaySiteRates(map[lattice.Coord]float64{a: 0.1}).Rate1(a); got != 0.25 {
		t.Errorf("smaller overlay masked the override: %v", got)
	}
	// Inputs are untouched; the copy owns fresh storage.
	if base.SiteRates[b] != 0.01 || len(base.SiteRates) != 2 {
		t.Errorf("base model mutated: %v", base.SiteRates)
	}
	if overlay[b] != 0.05 || len(overlay) != 2 {
		t.Errorf("overlay map mutated: %v", overlay)
	}
	m.SiteRates[c] = 0.5
	if base.SiteRates[c] != 0 {
		t.Error("overlaid model shares storage with the base model")
	}
	// Overlaying onto a model with no overrides works from a nil map.
	if got := Uniform(1e-3).OverlaySiteRates(overlay).Rate1(c); got != 0.02 {
		t.Errorf("overlay on clean model = %v, want 0.02", got)
	}
}
