// Package noise defines the error models used throughout the evaluation:
// the standard circuit-level depolarizing model of the paper (§VII-A), an
// optional correlated two-qubit channel (fig. 14a), and per-qubit overrides
// describing dynamic-defect regions with elevated error rates.
package noise

import "surfdeformer/internal/lattice"

// Model is a circuit-level Pauli error model.
//
// Following the paper: probability P1 for the single-qubit depolarizing
// channel after single-qubit operations, P2 for the two-qubit depolarizing
// channel after two-qubit gates, PM for the Pauli-X (flip) channel on
// measurement and reset. The paper sets all three to p = 10⁻³, one tenth of
// the surface-code threshold.
type Model struct {
	P1 float64 // single-qubit depolarizing rate
	P2 float64 // two-qubit depolarizing rate
	PM float64 // measurement/reset flip rate

	// PCorrelated adds a correlated two-qubit channel on top of the
	// depolarizing channel for two-qubit gates: with this probability the
	// gate suffers a fixed correlated Pauli (X⊗X or Z⊗Z with equal odds).
	// This is the knob swept in fig. 14a.
	PCorrelated float64

	// Defective elevates the error rate of specific physical qubits: any
	// operation touching a defective qubit uses DefectRate instead of the
	// base rates. This models the paper's dynamic defect regions whose
	// physical error rate rises to ≈50%.
	Defective  map[lattice.Coord]bool
	DefectRate float64

	// SiteRates elevates individual qubits to individual rates — the
	// multi-species defect picture (cosmic-ray regions at ≈50%, leakage
	// neighbourhoods at ≈25%, drifted qubits at a few ×p) the trajectory
	// engine composes. A SiteRates entry takes precedence over Defective
	// for the same qubit; two-qubit gates use the largest rate among the
	// qubits they touch.
	SiteRates map[lattice.Coord]float64
}

// Uniform returns the paper's baseline model with all rates equal to p.
func Uniform(p float64) *Model {
	return &Model{P1: p, P2: p, PM: p}
}

// WithDefects returns a copy of the model with the given defective qubits
// at the given local error rate (the paper uses 0.5).
func (m *Model) WithDefects(defective []lattice.Coord, rate float64) *Model {
	c := *m
	c.Defective = make(map[lattice.Coord]bool, len(defective))
	for _, q := range defective {
		c.Defective[q] = true
	}
	c.DefectRate = rate
	return &c
}

// WithCorrelated returns a copy of the model with the correlated two-qubit
// channel set to pc.
func (m *Model) WithCorrelated(pc float64) *Model {
	c := *m
	c.PCorrelated = pc
	return &c
}

// WithSiteRates returns a copy of the model with the given per-qubit rate
// overrides. The map is adopted, not copied: callers must not mutate it
// afterwards (DEM caches fingerprint it).
func (m *Model) WithSiteRates(rates map[lattice.Coord]float64) *Model {
	c := *m
	c.SiteRates = rates
	return &c
}

// OverlaySiteRates returns a copy of the model with the given per-qubit
// rates overlaid on any existing SiteRates: for each site the larger rate
// wins, so composing an estimated-prior overlay can only elevate, never
// mask, an existing override. Unlike WithSiteRates, both input maps are
// left untouched (the copy owns a fresh map), so callers may keep mutating
// their overlay; the returned model must not be mutated afterwards (DEM
// caches fingerprint it). The reweight tier composes decode models this
// way: nominal priors plus the detector's estimated elevations.
func (m *Model) OverlaySiteRates(rates map[lattice.Coord]float64) *Model {
	c := *m
	c.SiteRates = make(map[lattice.Coord]float64, len(m.SiteRates)+len(rates))
	for q, r := range m.SiteRates {
		c.SiteRates[q] = r
	}
	for q, r := range rates {
		if r > c.SiteRates[q] {
			c.SiteRates[q] = r
		}
	}
	return &c
}

// DeviceDefectRates builds the per-site rate map of a device's permanent
// fabrication defects (defect.Device): every listed site at the device's
// defective-site error rate. The result feeds WithSiteRates /
// OverlaySiteRates like any dynamic-defect map — fabrication defects are
// just site-rate elevations that never subside, so the trajectory engine
// merges them (max-wins) under whatever dynamic events strike on top.
func DeviceDefectRates(sites []lattice.Coord, rate float64) map[lattice.Coord]float64 {
	out := make(map[lattice.Coord]float64, len(sites))
	for _, q := range sites {
		out[q] = rate
	}
	return out
}

// IsDefective reports whether q lies in a defect region.
func (m *Model) IsDefective(q lattice.Coord) bool {
	if _, ok := m.SiteRates[q]; ok {
		return true
	}
	return m.Defective[q]
}

// siteRate returns the override rate at q and whether one applies.
func (m *Model) siteRate(q lattice.Coord) (float64, bool) {
	if r, ok := m.SiteRates[q]; ok {
		return r, true
	}
	if m.Defective[q] {
		return m.DefectRate, true
	}
	return 0, false
}

// Rate1 returns the single-qubit depolarizing rate at q.
func (m *Model) Rate1(q lattice.Coord) float64 {
	if r, ok := m.siteRate(q); ok {
		return r
	}
	return m.P1
}

// Rate2 returns the two-qubit depolarizing rate for a gate on a and b: the
// largest override among the touched qubits, or the base rate.
func (m *Model) Rate2(a, b lattice.Coord) float64 {
	ra, oka := m.siteRate(a)
	rb, okb := m.siteRate(b)
	switch {
	case oka && okb:
		if ra > rb {
			return ra
		}
		return rb
	case oka:
		return ra
	case okb:
		return rb
	}
	return m.P2
}

// RateM returns the measurement/reset flip rate at q.
func (m *Model) RateM(q lattice.Coord) float64 {
	if r, ok := m.siteRate(q); ok {
		return r
	}
	return m.PM
}

// DefaultPhysical is the paper's physical error rate p = 10⁻³.
const DefaultPhysical = 1e-3

// DefaultDefectRate is the error rate inside a defect region (≈50%).
const DefaultDefectRate = 0.5
