package gauge

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/gf2"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// stabGroupMatrix encodes a code's stabilizer generators as symplectic
// GF(2) rows over a fixed qubit index, so stabilizer groups of two codes
// over the same data set can be compared as row spans.
func stabGroupMatrix(t *testing.T, c *code.Code, idx map[lattice.Coord]int) *gf2.Matrix {
	t.Helper()
	n := len(idx)
	m := gf2.NewMatrix(0, 2*n)
	for _, s := range c.Stabs() {
		v := gf2.NewVec(2 * n)
		for _, q := range s.Op.XSupport() {
			i, ok := idx[q]
			if !ok {
				t.Fatalf("stabilizer %d acts outside the index: %v", s.ID, q)
			}
			v.Set(i, true)
		}
		for _, q := range s.Op.ZSupport() {
			i, ok := idx[q]
			if !ok {
				t.Fatalf("stabilizer %d acts outside the index: %v", s.ID, q)
			}
			v.Set(n+i, true)
		}
		m.AppendRow(v)
	}
	return m
}

func sameStabGroup(t *testing.T, a, b *code.Code) bool {
	t.Helper()
	idx := map[lattice.Coord]int{}
	for i, q := range a.DataQubits() {
		idx[q] = i
	}
	ma, mb := stabGroupMatrix(t, a, idx), stabGroupMatrix(t, b, idx)
	return ma.SpanContainsAll(mb) && mb.SpanContainsAll(ma)
}

// roundTrip applies S2G with a single-qubit operator at q and then G2S on
// each demoted gauge in order, which re-promotes every demoted check (each
// promotion first sacrifices the introduced single-qubit gauge, fixing the
// gauge freedom S2G opened). Reports whether S2G applied at all.
func roundTrip(t *testing.T, c *code.Code, op pauli.Op, q lattice.Coord) bool {
	t.Helper()
	demoted, _, err := S2G(c, op, q, true)
	if err != nil {
		return false
	}
	for _, id := range demoted {
		if err := G2S(c, id); err != nil {
			t.Fatalf("G2S(%d) after S2G at %v: %v", id, q, err)
		}
	}
	return true
}

// TestS2GG2SRoundTripProperty is the composition-law property test: for
// every data qubit of a patch and both single-qubit operator types, an
// S2G followed by G2S of each demoted gauge must return to a valid code
// with exactly the same stabilizer group, the same qubit sets, and no
// leftover gauge operators.
func TestS2GG2SRoundTripProperty(t *testing.T) {
	for _, d := range []int{3, 5} {
		pristine := code.FromPatch(lattice.NewPatch(lattice.Coord{}, d))
		if err := pristine.Validate(); err != nil {
			t.Fatal(err)
		}
		applied := 0
		for _, q := range pristine.DataQubits() {
			for _, op := range []pauli.Op{pauli.X(q), pauli.Z(q)} {
				c := pristine.Clone()
				if !roundTrip(t, c, op, q) {
					// S2G's preconditions reject qubits the logical
					// representatives cross; the law is only claimed
					// where the operation applies.
					continue
				}
				applied++
				if err := c.Validate(); err != nil {
					t.Errorf("d=%d %v at %v: round trip left invalid code: %v", d, op, q, err)
					continue
				}
				if len(c.Gauges()) != 0 {
					t.Errorf("d=%d %v at %v: %d gauges survive the round trip", d, op, q, len(c.Gauges()))
				}
				if !sameStabGroup(t, pristine, c) {
					t.Errorf("d=%d %v at %v: stabilizer group changed", d, op, q)
				}
				if c.NumData() != pristine.NumData() || c.NumSyndrome() != pristine.NumSyndrome() {
					t.Errorf("d=%d %v at %v: qubit sets changed", d, op, q)
				}
			}
		}
		if applied == 0 {
			t.Errorf("d=%d: S2G applied nowhere; property vacuous", d)
		}
	}
}

// FuzzS2GG2SScript drives short S2G→G2S scripts at fuzzer-chosen sites:
// whatever the site, the code must end valid with the original stabilizer
// group whenever the script ran to completion.
func FuzzS2GG2SScript(f *testing.F) {
	f.Add(int16(3), int16(3), true)
	f.Add(int16(1), int16(1), false)
	f.Add(int16(5), int16(1), true)
	f.Add(int16(1), int16(5), false)
	f.Add(int16(-3), int16(9), true)
	f.Fuzz(func(t *testing.T, row, col int16, useX bool) {
		pristine := code.FromPatch(lattice.NewPatch(lattice.Coord{}, 3))
		c := pristine.Clone()
		q := lattice.Coord{Row: int(row), Col: int(col)}
		op := pauli.Z(q)
		if useX {
			op = pauli.X(q)
		}
		if !roundTrip(t, c, op, q) {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%v at %v: %v", op, q, err)
		}
		if !sameStabGroup(t, pristine, c) {
			t.Fatalf("%v at %v: stabilizer group changed", op, q)
		}
	})
}
