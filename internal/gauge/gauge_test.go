package gauge

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

func d3code(t *testing.T) *code.Code {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func center() lattice.Coord { return lattice.Coord{Row: 3, Col: 3} }

func TestS2GDemotesAntiCommutingStabs(t *testing.T) {
	c := d3code(t)
	q := center()
	nStab := len(c.Stabs())
	// X_q anti-commutes with the two Z stabilizers covering the centre.
	demoted, newID, err := S2G(c, pauli.X(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(demoted) != 2 {
		t.Fatalf("demoted %d stabilizers, want 2", len(demoted))
	}
	if len(c.Stabs()) != nStab-2 {
		t.Errorf("stab count %d, want %d", len(c.Stabs()), nStab-2)
	}
	if len(c.Gauges()) != 3 {
		t.Errorf("gauge count %d, want 3 (two demoted + X_q)", len(c.Gauges()))
	}
	if _, ok := c.GaugeByID(newID); !ok {
		t.Error("new gauge not found")
	}
	// The transformation preserves [[n,k,l]] counting: k must stay 1.
	_, k, l, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 || l != 1 {
		t.Errorf("k=%d l=%d after S2G, want k=1 l=1", k, l)
	}
}

func TestS2GRejectsCommutingOp(t *testing.T) {
	c := d3code(t)
	// A copy of an existing stabilizer commutes with everything.
	op := c.Stabs()[0].Op
	if _, _, err := S2G(c, op, lattice.Coord{}, true); err == nil {
		t.Error("S2G must reject operator that demotes nothing")
	}
}

func TestS2GRejectsLogicalCorruption(t *testing.T) {
	c := d3code(t)
	// A single X on a qubit of logical Z's support anti-commutes with it.
	q := c.LogicalZ().Support()[0]
	if _, _, err := S2G(c, pauli.X(q), q, true); err == nil {
		// X(q) also anti-commutes with Z checks, so without the logical
		// guard it would pass; the guard must fire first.
		t.Error("S2G must refuse operators that anti-commute with a logical")
	}
}

func TestS2GThenG2SRoundTrip(t *testing.T) {
	c := d3code(t)
	q := center()
	orig := map[string]bool{}
	for _, s := range c.Stabs() {
		orig[s.Op.String()] = true
	}
	demoted, newID, err := S2G(c, pauli.X(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Promote the first demoted Z stabilizer back: the anti-commuting X_q
	// gauge is sacrificed, then promote the second (nothing anti-commutes).
	if err := G2S(c, demoted[0]); err != nil {
		t.Fatal(err)
	}
	if err := G2S(c, demoted[1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GaugeByID(newID); ok {
		t.Error("X_q gauge should have been consumed by G2S")
	}
	if len(c.Gauges()) != 0 {
		t.Errorf("gauge count %d after round trip, want 0", len(c.Gauges()))
	}
	got := map[string]bool{}
	for _, s := range c.Stabs() {
		got[s.Op.String()] = true
	}
	if len(got) != len(orig) {
		t.Fatalf("stab count %d, want %d", len(got), len(orig))
	}
	for op := range orig {
		if !got[op] {
			t.Errorf("stabilizer %s lost in round trip", op)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("round-tripped code invalid: %v", err)
	}
}

func TestG2SReducesMultipleAnti(t *testing.T) {
	c := d3code(t)
	q := center()
	// Demote via X_q, then also add Z_q as gauge (anti-commutes with X-type
	// gauges): S2G with Z_q demotes the two X stabilizers covering q.
	_, xID, err := S2G(c, pauli.X(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	_, zID, err := S2G(c, pauli.Z(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Now X_q anti-commutes with Z_q and with the two demoted X-stab gauges
	// that act on q... promote X_q: G2G reduction must fold the multiple
	// anti-commuting partners into one before the sacrifice.
	if err := G2S(c, xID); err != nil {
		t.Fatal(err)
	}
	// X_q is now a stabilizer; Z_q must be gone or rewritten.
	if g, ok := c.GaugeByID(zID); ok {
		if !g.Op.Commutes(pauli.X(q)) {
			t.Error("remaining gauge still anti-commutes with promoted stabilizer")
		}
	}
	for _, s := range c.Stabs() {
		for _, g := range c.Gauges() {
			if !s.Op.Commutes(g.Op) {
				t.Errorf("stabilizer %d anti-commutes with gauge %d after G2S", s.ID, g.ID)
			}
		}
	}
}

func TestS2SRewrite(t *testing.T) {
	c := d3code(t)
	a, b := c.Stabs()[0], c.Stabs()[1]
	want := pauli.Mul(a.Op, b.Op)
	if err := S2S(c, a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := c.StabByID(a.ID)
	if !got.Op.Equal(want) {
		t.Error("S2S did not install the product")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("code invalid after S2S: %v", err)
	}
	if err := S2S(c, a.ID, a.ID); err == nil {
		t.Error("S2S with itself must fail")
	}
}

func TestG2GRewrite(t *testing.T) {
	c := d3code(t)
	q := center()
	demoted, _, err := S2G(c, pauli.X(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	g0, _ := c.GaugeByID(demoted[0])
	s := c.Stabs()[0]
	want := pauli.Mul(g0.Op, s.Op)
	if err := G2G(c, demoted[0], s.Op); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GaugeByID(demoted[0])
	if !got.Op.Equal(want) {
		t.Error("G2G did not install the product")
	}
	// Multiplying by itself would give the identity: must be rejected.
	if err := G2G(c, demoted[0], got.Op); err == nil {
		t.Error("G2G to identity must fail")
	}
}

func TestG2SUnknownAndDirectPromotion(t *testing.T) {
	c := d3code(t)
	if err := G2S(c, 999); err == nil {
		t.Error("G2S of unknown gauge must fail")
	}
	q := center()
	_, xID, err := S2G(c, pauli.X(q), q, true)
	if err != nil {
		t.Fatal(err)
	}
	// xID is a direct (weight-1) gauge; promoting it fixes the qubit in the
	// |+> eigenstate and records a Direct stabilizer.
	if err := G2S(c, xID); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range c.Stabs() {
		if s.Direct && s.Op.Equal(pauli.X(q)) {
			found = true
		}
	}
	if !found {
		t.Error("promoted direct gauge should appear as a Direct stabilizer")
	}
}

// Property from the paper (§IV-A): S2G instructions commute — applying two
// S2G transformations in either order yields the same measured set.
func TestS2GCommutes(t *testing.T) {
	build := func(first, second lattice.Coord) map[string]bool {
		c := d3code(t)
		if _, _, err := S2G(c, pauli.X(first), first, true); err != nil {
			t.Fatal(err)
		}
		if _, _, err := S2G(c, pauli.X(second), second, true); err != nil {
			t.Fatal(err)
		}
		set := map[string]bool{}
		for _, s := range c.Stabs() {
			set["S:"+s.Op.String()] = true
		}
		for _, g := range c.Gauges() {
			set["G:"+g.Op.String()] = true
		}
		return set
	}
	// Two interior-ish qubits not on the logical supports.
	q1 := lattice.Coord{Row: 3, Col: 3}
	q2 := lattice.Coord{Row: 3, Col: 5}
	ab := build(q1, q2)
	ba := build(q2, q1)
	if len(ab) != len(ba) {
		t.Fatalf("measured set sizes differ: %d vs %d", len(ab), len(ba))
	}
	for k := range ab {
		if !ba[k] {
			t.Errorf("measured sets differ at %s", k)
		}
	}
}
