// Package gauge implements the four atomic gauge transformations of the
// Surf-Deformer paper (§II-C, Appendix A): S2G, G2S, S2S and G2G. Each is a
// checked rewrite of a code.Code that preserves the encoded logical state by
// construction — the preconditions enforced here are exactly the hypotheses
// of the paper's logical-state-preservation theorems.
//
// The higher-level deformation instructions (package deform) are
// semantically compositions of these atomic operations; the instruction
// layer materializes their net effect directly for efficiency, while this
// package provides the faithful step-by-step calculus used by tests and by
// callers that need auditable transformation scripts.
package gauge

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// S2G performs a Stabilizer-to-Gauge transformation: it introduces newOp as
// a gauge operator and demotes every stabilizer that anti-commutes with it
// to a gauge operator. Per the paper, Anti must be non-empty (otherwise the
// operation is not an S2G) and newOp must commute with both logical
// representatives (otherwise measuring it would corrupt the logical state).
//
// It returns the IDs of the demoted stabilizers' new gauge entries and the
// ID of the newly added gauge operator.
func S2G(c *code.Code, newOp pauli.Op, ancilla lattice.Coord, direct bool) (demoted []int, newID int, err error) {
	if newOp.IsIdentity() {
		return nil, 0, fmt.Errorf("gauge: S2G with identity operator")
	}
	if !newOp.Commutes(c.LogicalX()) || !newOp.Commutes(c.LogicalZ()) {
		return nil, 0, fmt.Errorf("gauge: S2G operator anti-commutes with a logical; it would corrupt the encoded state")
	}
	var anti []code.Stab
	for _, s := range c.Stabs() {
		if !s.Op.Commutes(newOp) {
			anti = append(anti, s)
		}
	}
	if len(anti) == 0 {
		return nil, 0, fmt.Errorf("gauge: S2G operator commutes with every stabilizer; nothing to demote")
	}
	for _, s := range anti {
		if s.IsSuper() {
			return nil, 0, fmt.Errorf("gauge: S2G cannot demote super-stabilizer %d; fix its gauges first", s.ID)
		}
	}
	for _, s := range anti {
		c.RemoveStab(s.ID)
		demoted = append(demoted, c.AddGauge(s.Op, s.Ancilla, false))
	}
	newID = c.AddGauge(newOp, ancilla, direct)
	return demoted, newID, nil
}

// G2S performs a Gauge-to-Stabilizer transformation: the gauge operator gid
// is promoted to a stabilizer. Gauge operators anti-commuting with it are
// first combined via G2G until exactly one remains, which is then removed
// from the measured set (its information is sacrificed to fix the gauge).
func G2S(c *code.Code, gid int) error {
	g, ok := c.GaugeByID(gid)
	if !ok {
		return fmt.Errorf("gauge: G2S of unknown gauge %d", gid)
	}
	var anti []code.Gauge
	for _, h := range c.Gauges() {
		if h.ID != gid && !h.Op.Commutes(g.Op) {
			anti = append(anti, h)
		}
	}
	// Reduce |Anti| to one by multiplying the others into the first.
	for i := 1; i < len(anti); i++ {
		merged := pauli.Mul(anti[i].Op, anti[0].Op)
		if merged.IsIdentity() {
			return fmt.Errorf("gauge: G2G merge of gauges %d and %d is the identity", anti[i].ID, anti[0].ID)
		}
		if !c.ReplaceGaugeOp(anti[i].ID, merged) {
			return fmt.Errorf("gauge: lost gauge %d during G2S", anti[i].ID)
		}
	}
	if len(anti) > 0 {
		c.RemoveGauge(anti[0].ID)
	}
	c.RemoveGauge(gid)
	if g.Direct {
		// Gauge fixing of a single-qubit operator: the qubit is frozen in a
		// known eigenstate and the check is maintained by direct measurement.
		c.AddDirectStab(g.Op)
	} else {
		c.AddStab(g.Op, g.Ancilla)
	}
	return nil
}

// S2S performs a Stabilizer-to-Stabilizer transformation: stabilizer dst is
// replaced by the product dst·src. Both stabilizers stay in the group; only
// the generator presentation changes.
func S2S(c *code.Code, dst, src int) error {
	sd, ok := c.StabByID(dst)
	if !ok {
		return fmt.Errorf("gauge: S2S of unknown stabilizer %d", dst)
	}
	ss, ok := c.StabByID(src)
	if !ok {
		return fmt.Errorf("gauge: S2S with unknown stabilizer %d", src)
	}
	if dst == src {
		return fmt.Errorf("gauge: S2S of a stabilizer with itself yields the identity")
	}
	if sd.IsSuper() {
		return fmt.Errorf("gauge: S2S cannot rewrite super-stabilizer %d; it is defined by its members", dst)
	}
	prod := pauli.Mul(sd.Op, ss.Op)
	if prod.IsIdentity() {
		return fmt.Errorf("gauge: S2S product of %d and %d is the identity", dst, src)
	}
	c.ReplaceStabOp(dst, prod)
	return nil
}

// G2G performs a Gauge-to-Gauge transformation: gauge dst is replaced by
// dst·m where m is another measured operator (stabilizer or gauge),
// reorganizing the gauge presentation without changing the generated group.
func G2G(c *code.Code, dst int, m pauli.Op) error {
	g, ok := c.GaugeByID(dst)
	if !ok {
		return fmt.Errorf("gauge: G2G of unknown gauge %d", dst)
	}
	prod := pauli.Mul(g.Op, m)
	if prod.IsIdentity() {
		return fmt.Errorf("gauge: G2G product is the identity")
	}
	c.ReplaceGaugeOp(dst, prod)
	return nil
}
