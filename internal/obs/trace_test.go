package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestTraceSchema is the golden schema check: every event type emitted
// through a Tracer must validate, the version must be stamped, and known
// malformed lines must be rejected with the right complaint.
func TestTraceSchema(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	events := []TraceEvent{
		{Type: TraceEpoch, Cycle: 500, Arm: "surf-deformer", Traj: 0, Cycles: 500, DecodeNs: 120000, SampleNs: 80000},
		{Type: TraceEpoch, Cycle: 1000, Arm: "surf-deformer", Traj: 0, Cycles: 500, Failed: true},
		{Type: TraceDetect, Cycle: 1200, Arm: "surf-deformer", Traj: 0, Flags: 2, Region: 3},
		{Type: TraceMitigate, Cycle: 1200, Arm: "surf-deformer", Traj: 0, Severity: "remove"},
		{Type: TraceDeform, Cycle: 1200, Arm: "surf-deformer", Traj: 0, Defects: 3, Enlarged: true, Distance: 9},
		{Type: TraceReweight, Cycle: 1700, Arm: "reweight-only", Traj: 1, Overlay: 4, MaxMult: 8, DEMBuild: true},
		{Type: TraceReweight, Cycle: 2200, Arm: "reweight-only", Traj: 1},
		{Type: TraceRecover, Cycle: 4000, Arm: "surf-deformer", Traj: 0, Sites: 12, Distance: 11},
		{Type: TraceEnd, Cycle: 100000, Arm: "surf-deformer", Traj: 0, Epochs: 200, Failures: 1,
			Deformations: 1, Recoveries: 1, Reweights: 2, OverlayBuilds: 2},
		{Type: TraceEnd, Cycle: 52500, Arm: "untreated", Traj: 2, Epochs: 105, Severed: true},
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("emitted trace fails its own schema: %v", err)
	}
	if n != len(events) {
		t.Fatalf("validated %d events, emitted %d", n, len(events))
	}

	bad := []struct {
		line string
		want string
	}{
		{`{`, "not a schema event"},
		{`{"v":1,"type":"epoch","cycle":10,"arm":"a","traj":0,"cycles":5,"bogus":1}`, "not a schema event"},
		{`{"v":99,"type":"epoch","cycle":10,"arm":"a","traj":0,"cycles":5}`, "schema version"},
		{`{"v":1,"type":"teleport","cycle":10,"arm":"a","traj":0}`, "unknown trace event type"},
		{`{"v":1,"type":"epoch","cycle":-1,"arm":"a","traj":0,"cycles":5}`, "negative cycle"},
		{`{"v":1,"type":"epoch","cycle":10,"traj":0,"cycles":5}`, "without an arm"},
		{`{"v":1,"type":"epoch","cycle":10,"arm":"a","traj":0}`, "at least one cycle"},
		{`{"v":1,"type":"mitigate","cycle":10,"arm":"a","traj":0}`, "without a severity"},
		{`{"v":1,"type":"detect","cycle":10,"arm":"a","traj":0,"flags":-2}`, "negative flags"},
	}
	for _, tc := range bad {
		err := ValidateTraceLine([]byte(tc.line))
		if err == nil {
			t.Fatalf("line %q validated, want error containing %q", tc.line, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("line %q: error %q, want it to contain %q", tc.line, err, tc.want)
		}
	}
}

// TestTracerConcurrent emits from several goroutines and checks every line
// still parses — the mutex must keep lines whole.
func TestTracerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := NewTracer(w)
	var wg sync.WaitGroup
	const workers, per = 4, 50
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(TraceEvent{Type: TraceEpoch, Cycle: int64(i + 1), Arm: "arm", Traj: g, Cycles: 1})
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	trace := buf.String()
	mu.Unlock()
	n, err := ValidateTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("validated %d events, want %d", n, workers*per)
	}
}

// TestTracerNil checks the nil tracer is usable everywhere.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Emit(TraceEvent{Type: TraceEpoch})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}
