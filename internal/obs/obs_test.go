package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration races, increments, snapshots, and resets — and is primarily
// a -race exercise (the CI race job runs this package).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
			// Per-worker registration races the shared loop above.
			r.Counter("worker." + string(rune('a'+w))).Add(int64(w))
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*1000 {
		t.Fatalf("shared.counter = %d, want %d", got, workers*1000)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*1000 {
		t.Fatalf("shared.hist count = %d, want %d", got, workers*1000)
	}
}

// TestSnapshotStable checks the snapshot is sorted by name and serializes
// identically across calls regardless of registration order.
func TestSnapshotStable(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid.point"} {
		r.Counter(name).Add(3)
	}
	r.Gauge("g.two").Set(2)
	r.Gauge("g.one").Set(1)
	r.Histogram("h", 10, 5).Observe(7) // bounds arrive unsorted on purpose

	s1 := r.Snapshot()
	names := make([]string, len(s1.Counters))
	for i, c := range s1.Counters {
		names[i] = c.Name
	}
	if strings.Join(names, ",") != "alpha,mid.point,zeta" {
		t.Fatalf("counter order = %v", names)
	}
	if s1.Gauges[0].Name != "g.one" || s1.Gauges[1].Name != "g.two" {
		t.Fatalf("gauge order = %v", s1.Gauges)
	}
	h := s1.Histograms[0]
	if h.Bounds[0] != 5 || h.Bounds[1] != 10 {
		t.Fatalf("histogram bounds not sorted: %v", h.Bounds)
	}
	// 7 lands in the (5,10] bucket.
	if h.Buckets[0] != 0 || h.Buckets[1] != 1 || h.Buckets[2] != 0 {
		t.Fatalf("histogram buckets = %v", h.Buckets)
	}
	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshot serialization unstable:\n%s\n%s", b1, b2)
	}
}

// TestReset checks values zero in place while pointers stay live.
func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", 10)
	c.Add(5)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left values: c=%d hn=%d hs=%d", c.Value(), h.Count(), h.Sum())
	}
	c.Inc() // pointer still registered
	if got := r.Snapshot().Counters[0].Value; got != 1 {
		t.Fatalf("post-reset counter = %d, want 1", got)
	}
}

// TestCounterZeroAllocs pins the hot-path contract: an increment and a
// histogram observation allocate nothing.
func TestCounterZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op", n)
	}
}

// TestProgressReport drives a Progress through a tiny run and checks the
// final line carries the done count and rate label.
func TestProgressReport(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	out := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	r := NewRegistry()
	units := r.Counter("test.shots")
	p := &Progress{Interval: time.Hour, Out: out, UnitsLabel: "shots", Units: units,
		Note: func() string { return "arm=ok" }}
	p.Begin(4)
	for i := 0; i < 4; i++ {
		units.Add(100)
		p.PointDone()
	}
	p.End()
	mu.Lock()
	got := buf.String()
	mu.Unlock()
	if !strings.Contains(got, "4/4 points") {
		t.Fatalf("final report missing done count: %q", got)
	}
	if !strings.Contains(got, "shots/sec") {
		t.Fatalf("final report missing rate: %q", got)
	}
	if !strings.Contains(got, "arm=ok") {
		t.Fatalf("final report missing note: %q", got)
	}
	// Nil progress is a no-op everywhere.
	var np *Progress
	np.Begin(10)
	np.PointDone()
	np.End()
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDebugHandler drives the debug endpoints through httptest: expvar
// must publish the registry under "obs", /metrics must serve the snapshot,
// and the pprof index must answer.
func TestDebugHandler(t *testing.T) {
	Default().Counter("test.debug.counter").Add(7)
	h := DebugHandler()

	get := func(path string) string {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		b, _ := io.ReadAll(rec.Body)
		return string(b)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"obs"`) || !strings.Contains(vars, "test.debug.counter") {
		t.Fatalf("/debug/vars missing registry snapshot: %.200s", vars)
	}
	metrics := get("/metrics")
	var snap Snapshot
	if err := json.Unmarshal([]byte(strings.TrimSpace(metrics)), &snap); err != nil {
		t.Fatalf("/metrics not a snapshot: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "test.debug.counter" && c.Value >= 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/metrics missing test.debug.counter: %s", metrics)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Fatalf("pprof index unexpected: %.200s", idx)
	}
}
