package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceSchemaVersion is the version stamped into every trace event. Bump it
// whenever an existing field changes meaning or a required field is added;
// adding optional fields is backward-compatible and needs no bump.
const TraceSchemaVersion = 1

// Trace event types, one per epoch transition of the closed-loop runtime
// (the fig. 5 loop): a sampled chunk elapsed, the detector fired, the
// mitigation ladder routed the elevation, a deformation or decoder-prior
// reweight was applied, a recovery was confirmed, the trajectory ended.
const (
	TraceEpoch    = "epoch"
	TraceDetect   = "detect"
	TraceMitigate = "mitigate"
	TraceDeform   = "deform"
	TraceReweight = "reweight"
	TraceRecover  = "recover"
	TraceSurgery  = "surgery"
	TraceEnd      = "end"
)

// traceTypes is the closed set a valid line's type must belong to.
var traceTypes = map[string]bool{
	TraceEpoch: true, TraceDetect: true, TraceMitigate: true,
	TraceDeform: true, TraceReweight: true, TraceRecover: true,
	TraceSurgery: true, TraceEnd: true,
}

// TraceEvent is one JSONL line of a trajectory trace. V, Type, Cycle, Arm
// and Traj are present on every event; the remaining fields are populated
// per type (see the schema table in DESIGN.md §10). Wall-clock costs
// (DecodeNs, SampleNs) are measurements of this machine, not of the
// simulation — everything else is deterministic for a fixed (config, arm,
// seed).
type TraceEvent struct {
	V     int    `json:"v"`
	Type  string `json:"type"`
	Cycle int64  `json:"cycle"`
	Arm   string `json:"arm"`
	Traj  int    `json:"traj"`
	// Patch localizes per-patch events (detect/deform/recover/reweight) in a
	// layout-level trajectory; single-patch trajectories omit it (patch 0).
	Patch int `json:"patch,omitempty"`

	// epoch: one scored or cut chunk.
	Cycles   int64 `json:"cycles,omitempty"`    // chunk length actually credited
	DecodeNs int64 `json:"decode_ns,omitempty"` // decoder cost of the chunk's shot
	SampleNs int64 `json:"sample_ns,omitempty"` // sampler cost of the chunk's shot
	Failed   bool  `json:"failed,omitempty"`    // the scored chunk was a logical failure

	// detect: the window detector flagged new observables.
	Flags  int `json:"flags,omitempty"`  // freshly flagged stable ids
	Region int `json:"region,omitempty"` // estimated hardware region size

	// mitigate: how the arm's ladder routed the detection.
	Severity string `json:"severity,omitempty"` // "remove", "observe"

	// deform / recover: the code changed shape.
	Defects  int  `json:"defects,omitempty"`  // defect sites handed to Step
	Enlarged bool `json:"enlarged,omitempty"` // the patch grew into its reserve
	Sites    int  `json:"sites,omitempty"`    // sites reincorporated by Recover
	Distance int  `json:"distance,omitempty"` // min(dX, dZ) after the change

	// reweight: the decoder-prior overlay changed.
	Overlay  int     `json:"overlay,omitempty"`   // overlaid sites (0 = reset to nominal)
	MaxMult  float64 `json:"max_mult,omitempty"`  // largest quantized rate multiplier
	DEMBuild bool    `json:"dem_build,omitempty"` // this overlay cost a fresh decode-DEM build

	// surgery: one lattice-surgery routing attempt of a layout trajectory.
	Pending int `json:"pending,omitempty"` // eligible operations this attempt
	Routed  int `json:"routed,omitempty"`  // operations executed this attempt

	// end: trajectory summary (mirrors traj.Result counters).
	Epochs        int  `json:"epochs,omitempty"`
	Failures      int  `json:"failures,omitempty"`
	Deformations  int  `json:"deformations,omitempty"`
	Recoveries    int  `json:"recoveries,omitempty"`
	Reweights     int  `json:"reweights,omitempty"`
	OverlayBuilds int  `json:"overlay_dem_builds,omitempty"`
	Severed       bool `json:"severed,omitempty"`
}

// Tracer writes structured trace events as JSONL, one line per event,
// stamped with the schema version. It is safe for concurrent use — the
// point-level worker pool traces interleaved trajectories into one file,
// with each line attributable through its (arm, traj) fields. A nil
// *Tracer is a valid no-op, so call sites need no guards.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing to w. The caller owns w's lifetime
// (close the file after the run; the tracer only writes).
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Emit writes one event. The schema version is stamped here, so callers
// never set V. Marshal or write errors are sticky and reported by Err —
// tracing must never abort a simulation mid-flight.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	ev.V = TraceSchemaVersion
	b, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first write or marshal error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ValidateTraceLine checks one JSONL line against the trace schema:
// parseable JSON with no unknown fields, the current schema version, a
// known event type, a non-negative cycle stamp, a non-empty arm, and
// non-negative count fields. It is the programmatic schema contract behind
// TestTraceSchema and the CI trace-validation step.
func ValidateTraceLine(line []byte) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var ev TraceEvent
	if err := dec.Decode(&ev); err != nil {
		return fmt.Errorf("obs: trace line is not a schema event: %w", err)
	}
	if ev.V != TraceSchemaVersion {
		return fmt.Errorf("obs: trace schema version %d, want %d", ev.V, TraceSchemaVersion)
	}
	if !traceTypes[ev.Type] {
		return fmt.Errorf("obs: unknown trace event type %q", ev.Type)
	}
	if ev.Cycle < 0 {
		return fmt.Errorf("obs: %s event with negative cycle %d", ev.Type, ev.Cycle)
	}
	if ev.Arm == "" {
		return fmt.Errorf("obs: %s event without an arm", ev.Type)
	}
	if ev.Traj < 0 {
		return fmt.Errorf("obs: %s event with negative trajectory index %d", ev.Type, ev.Traj)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"cycles", ev.Cycles}, {"decode_ns", ev.DecodeNs}, {"sample_ns", ev.SampleNs},
		{"flags", int64(ev.Flags)}, {"region", int64(ev.Region)},
		{"defects", int64(ev.Defects)}, {"sites", int64(ev.Sites)}, {"distance", int64(ev.Distance)},
		{"overlay", int64(ev.Overlay)},
		{"patch", int64(ev.Patch)}, {"pending", int64(ev.Pending)}, {"routed", int64(ev.Routed)},
		{"epochs", int64(ev.Epochs)}, {"failures", int64(ev.Failures)},
		{"deformations", int64(ev.Deformations)}, {"recoveries", int64(ev.Recoveries)},
		{"reweights", int64(ev.Reweights)}, {"overlay_dem_builds", int64(ev.OverlayBuilds)},
	} {
		if f.v < 0 {
			return fmt.Errorf("obs: %s event with negative %s", ev.Type, f.name)
		}
	}
	if ev.MaxMult < 0 {
		return fmt.Errorf("obs: %s event with negative max_mult", ev.Type)
	}
	switch ev.Type {
	case TraceEpoch:
		if ev.Cycles <= 0 {
			return fmt.Errorf("obs: epoch event must credit at least one cycle")
		}
	case TraceMitigate:
		if ev.Severity == "" {
			return fmt.Errorf("obs: mitigate event without a severity")
		}
	}
	return nil
}

// ValidateTrace validates every non-empty line of an entire trace stream
// and returns the number of valid events. The first invalid line fails the
// whole stream with its line number.
func ValidateTrace(r io.Reader) (int, error) {
	n := 0
	line := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := ValidateTraceLine(sc.Bytes()); err != nil {
			return n, fmt.Errorf("line %d: %w", line, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
