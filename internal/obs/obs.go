// Package obs is the zero-dependency observability layer of the repository:
// a metrics registry of named atomic counters, gauges and fixed-bucket
// histograms; a structured JSONL tracer for trajectory epoch transitions; a
// stderr progress reporter for long sweeps; and a live debugging HTTP
// endpoint (pprof + expvar) that publishes the registry.
//
// The design constraint every piece obeys is the determinism contract of
// the Monte-Carlo machinery (DESIGN.md §10): observability only ever
// *observes*. Metrics never gate or feed back into computation, tracing
// draws no randomness and shares no state with the simulation, and results
// are bit-identical with the whole layer exercised or ignored. The second
// constraint is hot-path cost: an instrument on the decode/sample path is
// one atomic add — no locks, no map lookups, no allocations (pinned by the
// zero-alloc tests and the CI bench gate). Hot consumers resolve their
// *Counter once at package init and keep the pointer; the registry's
// mutex is paid only at registration and snapshot time.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. Add/Inc are safe for concurrent
// use and cost one atomic add — hold the *Counter, not the name.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (queue depths, pool occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations (typically
// nanoseconds). Bucket bounds are set at registration and never change;
// Observe is a linear scan over a handful of bounds plus two atomic adds,
// allocation-free.
type Histogram struct {
	bounds []int64        // sorted upper bounds; counts[i] holds v <= bounds[i]
	counts []atomic.Int64 // len(bounds)+1; last bucket is the overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DurationBuckets is the default bound ladder for nanosecond timings:
// 100µs, 1ms, 10ms, 100ms, 1s, 10s (+overflow). DEM and graph builds span
// exactly this range across code distances.
var DurationBuckets = []int64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// Registry is a namespace of metrics. The zero value is not usable; use
// NewRegistry or the process-wide Default. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the engine packages
// (mc, sim, decoder, store, traj) instrument themselves against and that
// the debug endpoint publishes.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, registering it on first use. Callers
// on hot paths must call this once (package init) and keep the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds (sorted copy) on first use; later calls ignore bounds.
// Passing no bounds selects DurationBuckets.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		bs := make([]int64, len(bounds))
		copy(bs, bounds)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Pointers held by hot-path
// consumers stay valid — only the values reset — so tests can difference
// runs without re-registering anything.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one named histogram in a snapshot. Buckets[i] counts
// observations <= Bounds[i]; the final bucket is the overflow.
type HistogramValue struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot is a point-in-time, JSON-serializable view of a registry. All
// slices are sorted by name, so two snapshots of the same state serialize
// identically regardless of registration or map order.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Values are read atomically
// per metric (the snapshot is not a consistent cut across metrics — fine
// for monotone counters).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make([]MetricValue, 0, len(r.counters))}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]int64(nil), h.bounds...),
		}
		hv.Buckets = make([]int64, len(h.counts))
		for i := range h.counts {
			hv.Buckets[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
