package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress streams completion of a long point-pool run to a writer
// (normally stderr) on a ticker: points done/total, a units-per-second
// rate read from a registry counter (shots for sweeps, cycles for
// trajectory runs), an ETA extrapolated from the point completion rate,
// and an optional caller-supplied note (per-arm survival so far). A nil
// *Progress is a valid no-op, so library code can thread it
// unconditionally.
//
// Progress only reads — a counter load per tick plus its own atomics —
// and writes only to its own writer, so it sits outside the determinism
// boundary like the rest of the package.
type Progress struct {
	// Interval between reports. Zero selects 10s.
	Interval time.Duration
	// Out receives the report lines. Required (no default; the
	// constructor call site decides between stderr and a test buffer).
	Out io.Writer
	// Units optionally names a throughput counter: the label is printed
	// with a rate differenced between ticks (e.g. "shots" backed by
	// mc.shots_committed).
	UnitsLabel string
	Units      *Counter
	// Note, when non-nil, is called each tick and its result appended to
	// the report line. It must be safe for concurrent use with the
	// workers (read atomics, not plain ints).
	Note func() string

	total int64
	done  atomic.Int64

	mu        sync.Mutex
	stop      chan struct{}
	stopped   chan struct{}
	started   time.Time
	lastUnits int64
	lastTick  time.Time
}

// Begin starts the reporting goroutine for a run of total points. It is a
// no-op on a nil Progress or a missing writer.
func (p *Progress) Begin(total int) {
	if p == nil || p.Out == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return // already running
	}
	p.total = int64(total)
	p.done.Store(0)
	p.started = time.Now()
	p.lastTick = p.started
	if p.Units != nil {
		p.lastUnits = p.Units.Value()
	}
	p.stop = make(chan struct{})
	p.stopped = make(chan struct{})
	interval := p.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	go p.run(interval, p.stop, p.stopped)
}

// PointDone records one completed point.
func (p *Progress) PointDone() {
	if p == nil {
		return
	}
	p.done.Add(1)
}

// End stops the reporter and emits a final line.
func (p *Progress) End() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, stopped := p.stop, p.stopped
	p.stop, p.stopped = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-stopped
	p.report(true)
}

func (p *Progress) run(interval time.Duration, stop, stopped chan struct{}) {
	defer close(stopped)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.report(false)
		}
	}
}

// report writes one progress line. Guarded by mu so a tick racing End's
// final report cannot interleave lines or rate bookkeeping.
func (p *Progress) report(final bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	done := p.done.Load()
	elapsed := now.Sub(p.started)
	line := fmt.Sprintf("[progress] %d/%d points", done, p.total)
	if p.Units != nil {
		u := p.Units.Value()
		dt := now.Sub(p.lastTick).Seconds()
		if final {
			dt = elapsed.Seconds()
		}
		var rate float64
		if dt > 0 {
			if final {
				rate = float64(u) / dt
			} else {
				rate = float64(u-p.lastUnits) / dt
			}
		}
		label := p.UnitsLabel
		if label == "" {
			label = "units"
		}
		line += fmt.Sprintf(", %.0f %s/sec", rate, label)
		p.lastUnits = u
	}
	p.lastTick = now
	if final {
		line += fmt.Sprintf(", done in %s", elapsed.Round(time.Second))
	} else if done > 0 && done < p.total {
		eta := time.Duration(float64(elapsed) / float64(done) * float64(p.total-done))
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	if p.Note != nil {
		if note := p.Note(); note != "" {
			line += " | " + note
		}
	}
	fmt.Fprintln(p.Out, line)
}
