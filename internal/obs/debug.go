package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar publication of the default registry:
// expvar panics on duplicate names, and both the debug server and tests
// may ask for the handler.
var publishOnce sync.Once

func publishDefault() {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// DebugHandler returns the live-debugging HTTP handler: net/http/pprof
// under /debug/pprof/, expvar under /debug/vars (with the default
// registry's snapshot published as the "obs" variable), and a snapshot-only
// JSON view under /metrics. It is a plain http.Handler so tests can drive
// it through httptest without opening a socket.
func DebugHandler() http.Handler {
	publishDefault()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, snapshotJSON())
	})
	return mux
}

// snapshotJSON renders the default registry snapshot, falling back to an
// error object rather than panicking the debug server.
func snapshotJSON() string {
	s := Default().Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// ServeDebug binds addr (e.g. "localhost:6060") and serves DebugHandler on
// it in a background goroutine, returning the bound address — pass ":0"
// to let the kernel pick a port. The listener lives until process exit;
// the debug endpoint is a whole-run facility, not a managed service.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
