package experiments

import (
	"fmt"
	"io"
	"math"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// ---------------------------------------------------------------------------
// Fig. 14a: robustness to correlated two-qubit errors
// ---------------------------------------------------------------------------

// Fig14aRow is one point of the correlated-error robustness study.
type Fig14aRow struct {
	PCorrelated float64
	NumDefects  int
	UntreatedLE float64
	RemovedLE   float64
}

// fig14aConfig is the store identity of one (p_correlated, k) point.
type fig14aConfig struct {
	PCorrelated float64 `json:"p_correlated"`
	K           int     `json:"k"`
	D           int     `json:"d"`
	Shots       int     `json:"shots"`
	Rounds      int     `json:"rounds"`
	Seed        int64   `json:"seed"`
}

// Fig14a repeats the fig. 11a comparison under an additional correlated
// two-qubit error channel of increasing strength: the deformed code must
// retain its advantage over the untreated code. (p_correlated, k) points
// run on the point-level pool with content-derived fault patterns.
func Fig14a(opt Options) ([]Fig14aRow, error) {
	d := 9
	counts := []int{5, 15, 25}
	pcs := []float64{1e-3, 2e-3, 4e-3}
	if opt.Quick {
		d = 5
		counts = []int{2, 4}
		pcs = []float64{1e-3, 4e-3}
	}
	type point struct {
		pc float64
		k  int
	}
	var grid []point
	for _, pc := range pcs {
		for _, k := range counts {
			grid = append(grid, point{pc, k})
		}
	}
	rows := make([]Fig14aRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := fig14aConfig{PCorrelated: pt.pc, K: pt.k, D: d, Shots: opt.Shots, Rounds: opt.Rounds, Seed: opt.Seed}
		row, err := cachedRow(opt, "fig14a", cfg, func() (Fig14aRow, error) {
			return fig14aPoint(opt, d, pt.pc, pt.k)
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func fig14aPoint(opt Options, d int, pc float64, k int) (Fig14aRow, error) {
	pcPart := int64(math.Round(pc * 1e9)) // content-derived stream, not grid-positional
	rng := opt.pointRNG(kindFig14a, pcPart, int64(k))
	base := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
	min, max := base.Bounds()
	defects := defect.StaticFaults(min, max, k, rng)
	nominal := noise.Uniform(noise.DefaultPhysical).WithCorrelated(pc)
	defModel := nominal.WithDefects(defects, noise.DefaultDefectRate)

	untreated, err := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d).Build()
	if err != nil {
		return Fig14aRow{}, err
	}
	resU, err := sim.RunMemoryMismatched(untreated, defModel, nominal,
		opt.Rounds, opt.Shots, lattice.ZCheck, decoder.UnionFindFactory(),
		opt.pointSeed(kindFig14a, pcPart, int64(k), 0))
	if err != nil {
		return Fig14aRow{}, err
	}

	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
	if err := deform.ApplyDefects(spec, defects, deform.PolicySurfDeformer); err != nil {
		return Fig14aRow{}, err
	}
	removedLE := 0.5
	if removedCode, err := spec.Build(); err == nil {
		resR, err := sim.RunMemory(removedCode, nominal, opt.Rounds, opt.Shots,
			lattice.ZCheck, decoder.UnionFindFactory(),
			opt.pointSeed(kindFig14a, pcPart, int64(k), 1))
		if err != nil {
			return Fig14aRow{}, err
		}
		removedLE = resR.PerRound
	}
	return Fig14aRow{PCorrelated: pc, NumDefects: k,
		UntreatedLE: resU.PerRound, RemovedLE: removedLE}, nil
}

// RenderFig14a prints the series.
func RenderFig14a(w io.Writer, rows []Fig14aRow) {
	fmt.Fprintf(w, "%-10s %-10s %-22s %-22s\n", "p_corr", "#defects", "untreated λ/cycle", "surf-deformer λ/cycle")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.0e %-10d %-22.3e %-22.3e\n", r.PCorrelated, r.NumDefects, r.UntreatedLE, r.RemovedLE)
	}
}

// ---------------------------------------------------------------------------
// Fig. 14b: robustness to imprecise defect detection
// ---------------------------------------------------------------------------

// Fig14bRow is one point of the imprecise-detection study.
type Fig14bRow struct {
	NumDefects  int
	UntreatedLE float64
	PreciseLE   float64
	ImpreciseLE float64
}

// fig14bConfig is the store identity of one defect-count point.
type fig14bConfig struct {
	K      int   `json:"k"`
	D      int   `json:"d"`
	Shots  int   `json:"shots"`
	Rounds int   `json:"rounds"`
	Seed   int64 `json:"seed"`
}

// Fig14b compares deformed codes built from precise defect reports against
// reports distorted by 1% false positives and false negatives: qubits the
// detector missed stay defective (and the decoder does not know), healthy
// qubits falsely flagged get removed needlessly. Defect counts run as
// pooled points.
func Fig14b(opt Options) ([]Fig14bRow, error) {
	d := 9
	counts := []int{5, 15, 25}
	if opt.Quick {
		d = 5
		counts = []int{2, 4}
	}
	const fp, fn = 0.01, 0.01
	nominal := noise.Uniform(noise.DefaultPhysical)
	rows := make([]Fig14bRow, len(counts))
	err := opt.forEachPoint(len(counts), func(i int) error {
		k := counts[i]
		cfg := fig14bConfig{K: k, D: d, Shots: opt.Shots, Rounds: opt.Rounds, Seed: opt.Seed}
		row, err := cachedRow(opt, "fig14b", cfg, func() (Fig14bRow, error) {
			rng := opt.pointRNG(kindFig14b, int64(k))
			base := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
			min, max := base.Bounds()
			truth := defect.StaticFaults(min, max, k, rng)
			defModel := nominal.WithDefects(truth, noise.DefaultDefectRate)

			untreated, err := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d).Build()
			if err != nil {
				return Fig14bRow{}, err
			}
			resU, err := sim.RunMemoryMismatched(untreated, defModel, nominal,
				opt.Rounds, opt.Shots, lattice.ZCheck, decoder.UnionFindFactory(),
				opt.pointSeed(kindFig14b, int64(k), 0))
			if err != nil {
				return Fig14bRow{}, err
			}

			// Precise removal.
			preciseLE := removalRate(truth, truth, d, nominal, opt, opt.pointSeed(kindFig14b, int64(k), 1))

			// Imprecise removal: distort the report.
			var healthy []lattice.Coord
			isTrue := map[lattice.Coord]bool{}
			for _, q := range truth {
				isTrue[q] = true
			}
			for r := min.Row; r <= max.Row; r++ {
				for c := min.Col; c <= max.Col; c++ {
					q := lattice.Coord{Row: r, Col: c}
					if (q.IsData() || q.IsCheck()) && !isTrue[q] {
						healthy = append(healthy, q)
					}
				}
			}
			report := detect.Oracle(truth, healthy, fp, fn, rng)
			impreciseLE := removalRate(report, truth, d, nominal, opt, opt.pointSeed(kindFig14b, int64(k), 2))

			return Fig14bRow{NumDefects: k, UntreatedLE: resU.PerRound,
				PreciseLE: preciseLE, ImpreciseLE: impreciseLE}, nil
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// removalRate deforms the patch per the reported defects and measures the
// per-cycle logical error rate under the TRUE defect model: reported qubits
// leave the code, missed qubits remain hot with the decoder unaware.
func removalRate(report, truth []lattice.Coord, d int, nominal *noise.Model, opt Options, seed int64) float64 {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
	if err := deform.ApplyDefects(spec, report, deform.PolicySurfDeformer); err != nil {
		return 0.5
	}
	c, err := spec.Build()
	if err != nil {
		return 0.5
	}
	// Missed defects (in truth, still in the code) stay defective.
	var remaining []lattice.Coord
	for _, q := range truth {
		if c.HasData(q) || c.HasSyndrome(q) {
			remaining = append(remaining, q)
		}
	}
	sampleModel := nominal
	if len(remaining) > 0 {
		sampleModel = nominal.WithDefects(remaining, noise.DefaultDefectRate)
	}
	res, err := sim.RunMemoryMismatched(c, sampleModel, nominal, opt.Rounds, opt.Shots,
		lattice.ZCheck, decoder.UnionFindFactory(), seed)
	if err != nil {
		return 0.5
	}
	return res.PerRound
}

// RenderFig14b prints the series.
func RenderFig14b(w io.Writer, rows []Fig14bRow) {
	fmt.Fprintf(w, "%-10s %-20s %-20s %-20s\n", "#defects", "untreated", "precise", "imprecise")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-20.3e %-20.3e %-20.3e\n", r.NumDefects, r.UntreatedLE, r.PreciseLE, r.ImpreciseLE)
	}
}
