package experiments

import (
	"bytes"
	"strings"
	"testing"

	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
)

func TestTableConverters(t *testing.T) {
	t2 := Table2Table([]Table2Row{{
		Program: program.Simon(400, 1000), D: 19, DeltaD: 4,
		Q3DEQubits: 100, Q3DEOverRuntime: true,
		ASCQubits: 100, ASCRetryRisk: 0.5,
		SurfQubits: 120, SurfRetryRisk: 0.01,
	}})
	if len(t2.Rows) != 1 || t2.Rows[0][0] != "simon-400-1000" {
		t.Errorf("table2 conversion: %+v", t2.Rows)
	}

	f11a := Fig11aTable([]Fig11aRow{{D: 9, NumDefects: 5, UntreatedLE: 1e-2, RemovedLE: 1e-4}})
	var buf bytes.Buffer
	if err := f11a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.01") {
		t.Errorf("fig11a CSV: %s", buf.String())
	}

	f11c := Fig11cTable([]Fig11cRow{{TaskSet: 1, DefectRate: 1e-4, Scheme: layout.Q3DE, Throughput: 1.5, Stalls: 3}})
	if f11c.Rows[0][2] != "q3de" {
		t.Errorf("fig11c scheme cell: %q", f11c.Rows[0][2])
	}

	f12 := Fig12Table([]Fig12Row{{Program: program.Grover(9, 80), Scheme: layout.SurfDeformer, D: 23, Qubits: 1000, Risk: 0.009, Reached: true}})
	if f12.Rows[0][5] != "true" {
		t.Errorf("fig12 reached cell: %q", f12.Rows[0][5])
	}

	f13a := Fig13aTable([]Fig13aRow{{Scheme: layout.ASCS, D: 19, Qubits: 5, Risk: 0.2}})
	f13b := Fig13bTable([]Fig13bRow{{NumFaults: 10, ASCYield: 0.5, SurfYield: 0.9}})
	f14a := Fig14aTable([]Fig14aRow{{PCorrelated: 1e-3, NumDefects: 5, UntreatedLE: 0.1, RemovedLE: 0.01}})
	f14b := Fig14bTable([]Fig14bRow{{NumDefects: 5, UntreatedLE: 0.1, PreciseLE: 0.01, ImpreciseLE: 0.012}})
	f11b := Fig11bTable([]Fig11bRow{{D: 9, NumDefects: 5, ASCMean: 2, SurfMean: 5}})
	pipe := PipelineTable(&PipelineResult{Trials: 10, Detected: 9, DetectionLatency: 2.5, Recall: 0.5, Precision: 0.4, DistanceAfter: 8.5})
	for name, rows := range map[string]int{
		"fig13a": len(f13a.Rows), "fig13b": len(f13b.Rows),
		"fig14a": len(f14a.Rows), "fig14b": len(f14b.Rows),
		"fig11b": len(f11b.Rows), "pipeline": len(pipe.Rows),
	} {
		if rows != 1 {
			t.Errorf("%s converted %d rows, want 1", name, rows)
		}
	}
}

func TestFitLossesOption(t *testing.T) {
	opt := QuickOptions()
	opt.FitLosses = true
	opt.Trials = 8
	rows, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SurfRetryRisk >= r.ASCRetryRisk {
			t.Errorf("%s d=%d: fitted losses broke the ordering (surf %.4f >= asc %.4f)",
				r.Program.Name, r.D, r.SurfRetryRisk, r.ASCRetryRisk)
		}
	}
}
