package experiments

import (
	"encoding/json"
	"math/rand"
	"sync/atomic"

	"surfdeformer/internal/mc"
	"surfdeformer/internal/store"
)

// Stream-family kinds for per-point seed derivation. Every experiment
// derives each grid point's randomness from (Options.Seed, kind, point
// content) via mc.DeriveSeed, so a point's fault pattern and Monte-Carlo
// streams never depend on grid position, execution order, worker count, or
// which subset of points a resumed session still has to compute. The kinds
// are negative so experiment streams can never collide with the engine's
// shard streams (mc.ShardSeed covers the non-negative path space).
const (
	kindFig11a   int64 = -2
	kindFig11b   int64 = -3
	kindFig11c   int64 = -4
	kindFig12    int64 = -5
	kindFig13a   int64 = -6
	kindFig13b   int64 = -7
	kindFig14a   int64 = -8
	kindFig14b   int64 = -9
	kindTable2   int64 = -10
	kindPipeline int64 = -11
	kindSweep    int64 = -12
	kindFit      int64 = -13
	kindTraj     int64 = -14
)

// pointSeed derives the deterministic seed of one grid point.
func (o Options) pointSeed(kind int64, parts ...int64) int64 {
	return mc.DeriveSeed(o.Seed, append([]int64{kind}, parts...)...)
}

// pointRNG returns a fresh RNG for one grid point. Each point owns its
// generator: nothing is shared across points, so point-level parallelism
// cannot reorder draws (the bug the old shared Options rng had).
func (o Options) pointRNG(kind int64, parts ...int64) *rand.Rand {
	return rand.New(rand.NewSource(o.pointSeed(kind, parts...)))
}

// forEachPoint fans the grid points of one experiment out over the
// point-level worker pool. PointWorkers <= 1 runs serially; any value
// yields identical results because every point is self-seeded. When
// Options.Progress is set, the pool reports completion on its ticker for
// the duration of the grid.
func (o Options) forEachPoint(n int, fn func(i int) error) error {
	if o.Progress == nil {
		return mc.ForEach(o.Ctx, o.PointWorkers, n, fn)
	}
	o.Progress.Begin(n)
	defer o.Progress.End()
	return mc.ForEach(o.Ctx, o.PointWorkers, n, func(i int) error {
		err := fn(i)
		o.Progress.PointDone()
		return err
	})
}

// RunStats counts grid points computed versus served from the store. Share
// one instance via Options.Stats to observe a whole multi-experiment run;
// methods are safe under the point-level pool and on a nil receiver.
type RunStats struct {
	computed atomic.Int64
	skipped  atomic.Int64
}

// AddComputed records a point that ran its full computation.
func (s *RunStats) AddComputed() {
	if s != nil {
		s.computed.Add(1)
	}
}

// AddSkipped records a point served from the store.
func (s *RunStats) AddSkipped() {
	if s != nil {
		s.skipped.Add(1)
	}
}

// Computed reports how many points ran their full computation.
func (s *RunStats) Computed() int {
	if s == nil {
		return 0
	}
	return int(s.computed.Load())
}

// Skipped reports how many points were served from the store.
func (s *RunStats) Skipped() int {
	if s == nil {
		return 0
	}
	return int(s.skipped.Load())
}

// cachedRow is the trial-style store path: experiments whose points are
// whole rows (no accumulating shot counts) serve a completed point's
// payload verbatim on resume and commit freshly computed rows as
// single-segment, complete entries. The payload type P must JSON
// round-trip exactly (float64 survives Go's shortest-round-trip encoding),
// which is what keeps a resumed table byte-identical to a fresh one.
func cachedRow[P any](opt Options, kind string, cfg any, compute func() (P, error)) (P, error) {
	var zero P
	if opt.Store == nil {
		out, err := compute()
		if err == nil {
			opt.Stats.AddComputed()
		}
		return out, err
	}
	key, err := store.Key(kind, cfg)
	if err != nil {
		return zero, err
	}
	if opt.Resume {
		if pt, ok := opt.Store.Get(key); ok && pt.Complete && len(pt.Payload) > 0 {
			var out P
			if err := json.Unmarshal(pt.Payload, &out); err == nil {
				opt.Stats.AddSkipped()
				return out, nil
			}
			// Undecodable payload: fall through and recompute.
		}
	}
	out, err := compute()
	if err != nil {
		return zero, err
	}
	payload, err := json.Marshal(out)
	if err != nil {
		return zero, err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return zero, err
	}
	canon, err := store.Canonicalize(cfgJSON)
	if err != nil {
		return zero, err
	}
	if err := opt.Store.Append(store.Row{
		Key: key, Kind: kind, Seq: 0, Complete: true, Config: canon, Payload: payload,
	}); err != nil {
		return zero, err
	}
	opt.Stats.AddComputed()
	return out, nil
}
