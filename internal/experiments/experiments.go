// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment returns structured rows so tests can
// assert the paper's qualitative claims, and renders the same table/series
// the paper reports.
//
// Every evaluation grid is a set of independent points, and the package
// treats them that way: each point derives all of its randomness from
// (Options.Seed, point content) via mc.DeriveSeed — never from a shared
// generator — so results are bit-identical regardless of grid order,
// subsetting, Options.PointWorkers, or resume order. Grids fan out over a
// point-level worker pool (mc.ForEach) and, when Options.Store is set,
// commit each completed point to the persistent result store keyed by a
// canonical hash of its configuration; Options.Resume then serves completed
// points from the store instead of recomputing them, and memory-type points
// whose stored shots fall short of the requested budget compute only the
// remainder under fresh segment streams (see DESIGN.md §7).
//
// Absolute numbers depend on decoder and scale (see DESIGN.md §1 and
// EXPERIMENTS.md); the shapes — who wins, by what factor, where crossovers
// sit — are the reproduction target.
package experiments

import (
	"context"
	"fmt"
	"io"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/program"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/store"
)

// Options tunes experiment cost. Quick settings are used by unit tests and
// the testing.B benchmarks; the CLI defaults are larger.
type Options struct {
	Shots  int   // Monte-Carlo shots per memory experiment
	Trials int   // defect-timeline / sampling trials
	Rounds int   // QEC rounds per memory experiment
	Seed   int64 // RNG seed
	Quick  bool  // shrink distances and sweeps for CI-speed runs
	// FitLosses derives the per-event distance-loss constants of the
	// retry-risk estimator from the real deformation engine (FitLoss)
	// instead of the recorded defaults. Slower but self-contained.
	FitLosses bool

	// Ctx, when non-nil, cancels a running grid cooperatively at point and
	// shard boundaries: completed points stay committed to the store,
	// in-flight points drain and are discarded, and the experiment returns
	// an error wrapping mc.ErrCanceled. A nil Ctx is never canceled.
	Ctx context.Context
	// PointWorkers sizes the grid-point worker pool (<= 1 runs points
	// serially). Results are bit-identical for any value: every point is
	// seeded from its own content, never from execution order.
	PointWorkers int
	// Store, when non-nil, persists each completed point to the
	// content-addressed result store; Resume additionally serves points the
	// store already holds instead of recomputing them.
	Store  *store.Store
	Resume bool
	// Stats, when non-nil, counts computed versus store-served points.
	Stats *RunStats
	// Progress, when non-nil, streams point-pool completion (points
	// done/total, throughput, ETA) to its writer while a grid runs.
	// Observation-only: it never affects results.
	Progress *obs.Progress

	// AdaptiveStop lets TrajectoryScan retire an arm early once its
	// survival confidence interval separates from every other arm's: the
	// scan runs trajectories in barrier-synchronized blocks and, at each
	// barrier, stops any arm whose Wilson failure CI over its committed
	// in-order prefix is disjoint from every other arm's. Decisions depend
	// only on committed prefixes, so they are bit-identical for any
	// PointWorkers value; stopped arms keep their store rows (the per-
	// trajectory identity is unchanged), so adaptive and fixed runs share
	// the store. No effect on experiments other than the trajectory scan.
	AdaptiveStop bool
	// MinTrials is the minimum trajectories every arm must complete before
	// AdaptiveStop may retire it (<= 0 selects DefaultMinTrials; clamped
	// to Trials).
	MinTrials int
}

// DefaultMinTrials is the per-arm floor of trajectories before adaptive
// stopping may retire an arm (Options.MinTrials <= 0 selects it).
const DefaultMinTrials = 8

// Defaults returns CLI-scale options.
func Defaults() Options {
	return Options{Shots: 20000, Trials: 100, Rounds: 8, Seed: 1}
}

// QuickOptions returns test-scale options.
func QuickOptions() Options {
	return Options{Shots: 1500, Trials: 20, Rounds: 4, Seed: 1, Quick: true}
}

// ---------------------------------------------------------------------------
// Table I: instruction sets
// ---------------------------------------------------------------------------

// Table1 renders the instruction-set comparison.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "%-16s | %-52s | %s\n", "Method", "Extended instructions over LS", "Supported operations")
	fmt.Fprintln(w, strRepeat("-", 120))
	for _, set := range deform.InstructionSets() {
		ext := "N/A"
		if len(set.Extended) > 0 {
			ext = ""
			for i, in := range set.Extended {
				if i > 0 {
					ext += ", "
				}
				ext += string(in)
			}
		}
		ops := ""
		for i, op := range set.Operations {
			if i > 0 {
				ops += ", "
			}
			ops += op
		}
		fmt.Fprintf(w, "%-16s | %-52s | %s\n", set.Method, ext, ops)
	}
}

// ---------------------------------------------------------------------------
// Fig. 11a: logical error rate vs number of defective qubits
// ---------------------------------------------------------------------------

// Fig11aRow is one measurement of the defect-removal study.
type Fig11aRow struct {
	D           int
	NumDefects  int
	UntreatedLE float64 // per-cycle, defects left in the code
	RemovedLE   float64 // per-cycle, defects removed by Surf-Deformer
}

// fig11aConfig is the store identity of one (d, k) point.
type fig11aConfig struct {
	D       int   `json:"d"`
	K       int   `json:"k"`
	Samples int   `json:"samples"`
	Shots   int   `json:"shots"`
	Rounds  int   `json:"rounds"`
	Seed    int64 `json:"seed"`
}

// Fig11a measures the logical error rate of codes with defective qubits
// left untreated (decoder uninformed) versus removed by the Surf-Deformer
// defect-removal subroutine. Each point averages a few fault patterns;
// patterns that sever the patch outright are skipped for the removed curve
// (they saturate both curves and carry no comparative information).
func Fig11a(opt Options) ([]Fig11aRow, error) {
	ds := []int{9}
	counts := []int{2, 4, 6, 10}
	samples := 3
	if opt.Quick {
		ds = []int{5}
		counts = []int{1, 3}
		samples = 2
	}
	type point struct{ d, k int }
	var grid []point
	for _, d := range ds {
		for _, k := range counts {
			grid = append(grid, point{d, k})
		}
	}
	rows := make([]Fig11aRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := fig11aConfig{D: pt.d, K: pt.k, Samples: samples, Shots: opt.Shots, Rounds: opt.Rounds, Seed: opt.Seed}
		row, err := cachedRow(opt, "fig11a", cfg, func() (Fig11aRow, error) {
			return fig11aPoint(opt, pt.d, pt.k, samples)
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// fig11aPoint measures one (d, k) configuration. All randomness — fault
// patterns and Monte-Carlo streams — derives from (Seed, d, k, sample).
func fig11aPoint(opt Options, d, k, samples int) (Fig11aRow, error) {
	rng := opt.pointRNG(kindFig11a, int64(d), int64(k))
	var uSum, rSum float64
	uN, rN := 0, 0
	for s := 0; s < samples; s++ {
		base := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
		min, max := base.Bounds()
		defects := defect.StaticFaults(min, max, k, rng)
		nominal := noise.Uniform(noise.DefaultPhysical)
		defModel := nominal.WithDefects(defects, noise.DefaultDefectRate)

		// Untreated: full code, hot qubits, uninformed decoder.
		untreated, err := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d).Build()
		if err != nil {
			return Fig11aRow{}, err
		}
		resU, err := sim.RunMemoryMismatched(untreated, defModel, nominal,
			opt.Rounds, opt.Shots, lattice.ZCheck, decoder.UnionFindFactory(),
			opt.pointSeed(kindFig11a, int64(d), int64(k), int64(s), 0))
		if err != nil {
			return Fig11aRow{}, err
		}
		uSum += resU.PerRound
		uN++

		// Removed: Algorithm 1, nominal noise on surviving qubits.
		spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
		if err := deform.ApplyDefects(spec, defects, deform.PolicySurfDeformer); err != nil {
			continue
		}
		removedCode, err := spec.Build()
		if err != nil {
			continue // severed pattern
		}
		resR, err := sim.RunMemory(removedCode, nominal, opt.Rounds, opt.Shots,
			lattice.ZCheck, decoder.UnionFindFactory(),
			opt.pointSeed(kindFig11a, int64(d), int64(k), int64(s), 1))
		if err != nil {
			return Fig11aRow{}, err
		}
		rSum += resR.PerRound
		rN++
	}
	row := Fig11aRow{D: d, NumDefects: k}
	if uN > 0 {
		row.UntreatedLE = uSum / float64(uN)
	}
	if rN > 0 {
		row.RemovedLE = rSum / float64(rN)
	} else {
		row.RemovedLE = 0.5 // every pattern severed the patch
	}
	return row, nil
}

// RenderFig11a prints the series.
func RenderFig11a(w io.Writer, rows []Fig11aRow) {
	fmt.Fprintf(w, "%-4s %-10s %-22s %-22s\n", "d", "#defects", "untreated λ/cycle", "surf-deformer λ/cycle")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %-10d %-22.3e %-22.3e\n", r.D, r.NumDefects, r.UntreatedLE, r.RemovedLE)
	}
}

// ---------------------------------------------------------------------------
// Fig. 11b: code distance after removal, ASC-S vs Surf-Deformer
// ---------------------------------------------------------------------------

// Fig11bRow is one point of the distance-retention study.
type Fig11bRow struct {
	D          int
	NumDefects int
	ASCMean    float64
	SurfMean   float64
}

// Fig11b compares remaining code distance after defect removal between
// ASC-S and Surf-Deformer across defect counts and code sizes.
func Fig11b(opt Options) ([]Fig11bRow, error) {
	ds := []int{9, 15, 21}
	counts := []int{5, 10, 20, 30, 40, 50}
	samples := 5
	if opt.Quick {
		ds = []int{9}
		counts = []int{4, 10}
		samples = 3
	}
	type point struct{ d, k int }
	var grid []point
	for _, d := range ds {
		for _, k := range counts {
			grid = append(grid, point{d, k})
		}
	}
	rows := make([]Fig11bRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		rng := opt.pointRNG(kindFig11b, int64(pt.d), int64(pt.k))
		ascSum, surfSum := 0.0, 0.0
		for s := 0; s < samples; s++ {
			base := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, pt.d)
			min, max := base.Bounds()
			defects := defect.StaticFaults(min, max, pt.k, rng)
			ascSum += float64(removalDistance(defects, pt.d, deform.PolicyASC))
			surfSum += float64(removalDistance(defects, pt.d, deform.PolicySurfDeformer))
		}
		rows[i] = Fig11bRow{D: pt.d, NumDefects: pt.k,
			ASCMean: ascSum / float64(samples), SurfMean: surfSum / float64(samples)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// removalDistance applies the policy and returns the remaining min
// distance; a severed patch counts as distance 0.
func removalDistance(defects []lattice.Coord, d int, policy deform.Policy) int {
	spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
	if err := deform.ApplyDefects(spec, defects, policy); err != nil {
		return 0
	}
	c, err := spec.Build()
	if err != nil {
		return 0
	}
	return c.Distance()
}

// RenderFig11b prints the series.
func RenderFig11b(w io.Writer, rows []Fig11bRow) {
	fmt.Fprintf(w, "%-4s %-10s %-12s %-12s\n", "d", "#defects", "asc-s", "surf-deformer")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %-10d %-12.2f %-12.2f\n", r.D, r.NumDefects, r.ASCMean, r.SurfMean)
	}
}

func strRepeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// shared helpers for the program-level experiments

func paperDistancePairs() map[string][2]int {
	return map[string][2]int{
		"simon-400-1000": {19, 21},
		"simon-900-1500": {21, 23},
		"rca-225-500":    {21, 23},
		"rca-729-100":    {21, 23},
		"qft-25-160":     {23, 25},
		"qft-100-20":     {25, 27},
		"grover-9-80":    {23, 25},
		"grover-16-2":    {25, 27},
	}
}

func estimators(opt Options) (*defect.Model, *estimator.LambdaModel, map[layout.Scheme]estimator.Framework) {
	dm := defect.Paper()
	if opt.FitLosses {
		d, budget, samples := 15, 4, 10
		if opt.Quick {
			d, samples = 9, 4
		}
		rng := opt.pointRNG(kindFit)
		return dm, estimator.DefaultLambda(), estimator.FittedFrameworks(d, budget, samples, dm, rng)
	}
	return dm, estimator.DefaultLambda(), estimator.DefaultFrameworks()
}

var _ = program.Benchmarks // referenced by program-level experiment files
