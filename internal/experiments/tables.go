package experiments

import (
	"surfdeformer/internal/report"
)

// Table converters: every experiment's row type can be rendered as a
// structured report.Table for CSV/JSON export (cmd/surfdeform -format).

// Table2Table converts Table II rows.
func Table2Table(rows []Table2Row) *report.Table {
	t := report.New("table2", "benchmark", "d", "delta_d",
		"q3de_qubits", "q3de_overruntime", "asc_qubits", "asc_retry_risk",
		"surf_qubits", "surf_retry_risk")
	for _, r := range rows {
		t.Add(r.Program.Name, r.D, r.DeltaD,
			r.Q3DEQubits, r.Q3DEOverRuntime, r.ASCQubits, r.ASCRetryRisk,
			r.SurfQubits, r.SurfRetryRisk)
	}
	return t
}

// Fig11aTable converts fig. 11a rows.
func Fig11aTable(rows []Fig11aRow) *report.Table {
	t := report.New("fig11a", "d", "num_defects", "untreated_rate", "removed_rate")
	for _, r := range rows {
		t.Add(r.D, r.NumDefects, r.UntreatedLE, r.RemovedLE)
	}
	return t
}

// Fig11bTable converts fig. 11b rows.
func Fig11bTable(rows []Fig11bRow) *report.Table {
	t := report.New("fig11b", "d", "num_defects", "asc_distance", "surf_distance")
	for _, r := range rows {
		t.Add(r.D, r.NumDefects, r.ASCMean, r.SurfMean)
	}
	return t
}

// Fig11cTable converts fig. 11c rows.
func Fig11cTable(rows []Fig11cRow) *report.Table {
	t := report.New("fig11c", "task_set", "defect_rate", "scheme", "throughput", "stalls")
	for _, r := range rows {
		t.Add(r.TaskSet, r.DefectRate, r.Scheme.String(), r.Throughput, r.Stalls)
	}
	return t
}

// Fig12Table converts fig. 12 rows.
func Fig12Table(rows []Fig12Row) *report.Table {
	t := report.New("fig12", "benchmark", "scheme", "d", "qubits", "risk", "met_target")
	for _, r := range rows {
		t.Add(r.Program.Name, r.Scheme.String(), r.D, r.Qubits, r.Risk, r.Reached)
	}
	return t
}

// Fig13aTable converts fig. 13a rows.
func Fig13aTable(rows []Fig13aRow) *report.Table {
	t := report.New("fig13a", "scheme", "d", "qubits", "risk")
	for _, r := range rows {
		t.Add(r.Scheme.String(), r.D, r.Qubits, r.Risk)
	}
	return t
}

// Fig13bTable converts fig. 13b rows.
func Fig13bTable(rows []Fig13bRow) *report.Table {
	t := report.New("fig13b", "num_faults", "asc_yield", "surf_yield")
	for _, r := range rows {
		t.Add(r.NumFaults, r.ASCYield, r.SurfYield)
	}
	return t
}

// Fig14aTable converts fig. 14a rows.
func Fig14aTable(rows []Fig14aRow) *report.Table {
	t := report.New("fig14a", "p_correlated", "num_defects", "untreated_rate", "removed_rate")
	for _, r := range rows {
		t.Add(r.PCorrelated, r.NumDefects, r.UntreatedLE, r.RemovedLE)
	}
	return t
}

// Fig14bTable converts fig. 14b rows.
func Fig14bTable(rows []Fig14bRow) *report.Table {
	t := report.New("fig14b", "num_defects", "untreated_rate", "precise_rate", "imprecise_rate")
	for _, r := range rows {
		t.Add(r.NumDefects, r.UntreatedLE, r.PreciseLE, r.ImpreciseLE)
	}
	return t
}

// SweepTable converts memory-sweep rows.
func SweepTable(rows []SweepRow) *report.Table {
	t := report.New("sweep", "d", "num_defects", "policy", "severed", "distance_after",
		"per_round", "shots", "failures", "ci_low", "ci_high", "early_stopped")
	for _, r := range rows {
		t.Add(r.D, r.NumDefects, r.Policy.String(), r.Severed, r.DistanceAfter,
			r.PerRound, r.Shots, r.Failures, r.CILow, r.CIHigh, r.EarlyStopped)
	}
	return t
}

// PipelineTable converts the detection-pipeline summary.
func PipelineTable(r *PipelineResult) *report.Table {
	t := report.New("pipeline", "trials", "detected", "latency_rounds", "recall", "precision", "distance_after")
	t.Add(r.Trials, r.Detected, r.DetectionLatency, r.Recall, r.Precision, r.DistanceAfter)
	return t
}
