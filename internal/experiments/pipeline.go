package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// PipelineResult summarizes the end-to-end runtime loop of fig. 5 with a
// real statistical defect detector: a cosmic-ray strike lands mid-run, the
// sliding-window detector localizes it from the syndrome stream, and the
// deformation unit mitigates the detected region.
type PipelineResult struct {
	// DetectionLatency is the mean number of rounds between defect onset
	// and the detector's first flag (-1 when never detected).
	DetectionLatency float64
	// Recall is the fraction of truly defective region qubits covered by
	// the detected region estimate.
	Recall float64
	// Precision is the fraction of the detected region that is truly
	// defective.
	Precision float64
	// DistanceAfter is the mean code distance after deforming per the
	// detected region (with enlargement budget).
	DistanceAfter float64
	// Trials and Detected count the Monte-Carlo outcomes.
	Trials   int
	Detected int
}

// DetectionPipeline runs the integrated loop: phased DEM (nominal rounds,
// then a defect region at 50%), per-round detection-event streaming into
// the window detector, region estimation from the flagged observables, and
// adaptive deformation of the estimated region.
func DetectionPipeline(opt Options) (*PipelineResult, error) {
	d := 9
	onset := 6
	tail := 24
	window, threshold := 8, 0.3
	if opt.Quick {
		d, onset, tail, window = 5, 4, 12, 6
	}
	rng := opt.pointRNG(kindPipeline)
	dm := defect.Paper()
	nominal := noise.Uniform(noise.DefaultPhysical)

	res := &PipelineResult{Trials: opt.Trials}
	var latencySum, recallSum, precisionSum, distSum float64
	distCount := 0
	for trial := 0; trial < opt.Trials; trial++ {
		spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
		c, err := spec.Build()
		if err != nil {
			return nil, err
		}
		min, max := spec.Bounds()
		// Strike an interior-ish centre so the region fits the patch.
		center := lattice.Coord{Row: 1 + 2*(1+rng.Intn(d-2)), Col: 1 + 2*(1+rng.Intn(d-2))}
		if !center.IsData() {
			center.Col++
		}
		region := dm.RegionOf(center, min, max)
		hot := nominal.WithDefects(region, noise.DefaultDefectRate)

		dem, err := sim.BuildPhasedDEM(c, []sim.Phase{
			{Rounds: onset, Model: nominal},
			{Rounds: tail, Model: hot},
		}, lattice.ZCheck)
		if err != nil {
			return nil, err
		}
		sampler := sim.NewSampler(dem)
		flagged, _ := sampler.Shot(rng)

		// Stream detection events round by round into the window detector.
		byRound := map[int][]int32{}
		for _, det := range flagged {
			r := int(dem.DetRound[det])
			byRound[r] = append(byRound[r], dem.DetObs[det])
		}
		w := detect.NewWindow(window, threshold)
		detectedRound := -1
		var flaggedObs []int32
		for r := 0; r <= onset+tail; r++ {
			w.Feed(r, byRound[r])
			if r >= window && detectedRound < 0 {
				if obs := w.Flagged(); len(obs) > 0 {
					detectedRound = r
					flaggedObs = obs
				}
			}
		}
		if detectedRound < 0 {
			continue
		}
		res.Detected++
		latencySum += float64(detectedRound - onset)

		// Region estimate: supports + ancillas of the flagged observables.
		est := map[lattice.Coord]bool{}
		for _, oi := range flaggedObs {
			info := dem.Observables[oi]
			for _, q := range info.Support {
				est[q] = true
			}
			for _, q := range info.Ancillas {
				est[q] = true
			}
		}
		inRegion := map[lattice.Coord]bool{}
		for _, q := range region {
			inRegion[q] = true
		}
		var hit, estSize int
		for q := range est {
			estSize++
			if inRegion[q] {
				hit++
			}
		}
		covered := 0
		for _, q := range region {
			if est[q] {
				covered++
			}
		}
		if len(region) > 0 {
			recallSum += float64(covered) / float64(len(region))
		}
		if estSize > 0 {
			precisionSum += float64(hit) / float64(estSize)
		}

		// Mitigate the estimated region.
		var report []lattice.Coord
		for q := range est {
			report = append(report, q)
		}
		lattice.SortCoords(report)
		mitigated := spec.Clone()
		if err := deform.ApplyDefects(mitigated, report, deform.PolicySurfDeformer); err != nil {
			continue
		}
		enl, err := deform.Enlarge(mitigated, d, d, func(q lattice.Coord) bool { return inRegion[q] },
			deform.PolicySurfDeformer, deform.UniformBudget(4))
		if err != nil {
			continue
		}
		distSum += float64(enl.Code.Distance())
		distCount++
	}
	if res.Detected > 0 {
		res.DetectionLatency = latencySum / float64(res.Detected)
		res.Recall = recallSum / float64(res.Detected)
		res.Precision = precisionSum / float64(res.Detected)
	} else {
		res.DetectionLatency = -1
	}
	if distCount > 0 {
		res.DistanceAfter = distSum / float64(distCount)
	}
	return res, nil
}

// RenderPipeline prints the integration-study summary.
func RenderPipeline(w io.Writer, r *PipelineResult) {
	fmt.Fprintf(w, "trials: %d, detected: %d (%.0f%%)\n", r.Trials, r.Detected,
		100*float64(r.Detected)/float64(maxInt(1, r.Trials)))
	fmt.Fprintf(w, "detection latency: %.1f rounds after onset\n", r.DetectionLatency)
	fmt.Fprintf(w, "region recall: %.2f  precision: %.2f\n", r.Recall, r.Precision)
	fmt.Fprintf(w, "mean distance after mitigation: %.2f\n", r.DistanceAfter)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Configuration sweeps on the Monte-Carlo engine
// ---------------------------------------------------------------------------

// SweepPoint is one (distance, defect count, policy) configuration of a
// defect-adaptive memory sweep — the workload shape of both Surf-Deformer's
// evaluation and the adaptive-surface-code studies it compares against.
type SweepPoint struct {
	D          int
	NumDefects int
	Policy     deform.Policy
}

// seedParts maps the point's content to a DeriveSeed path, so a point's
// fault pattern and shots do not depend on its grid position.
func (p SweepPoint) seedParts() []int64 {
	return []int64{int64(p.D), int64(p.NumDefects), int64(p.Policy)}
}

// sweepConfig is the store identity of one sweep point: everything that
// fixes its RNG stream family and physics. The shot budget is deliberately
// absent — it is the accumulating dimension (see DESIGN.md §7).
type sweepConfig struct {
	D         int     `json:"d"`
	K         int     `json:"k"`
	Policy    string  `json:"policy"`
	Rounds    int     `json:"rounds"`
	Decoder   string  `json:"decoder"`
	Seed      int64   `json:"seed"`
	TargetRSE float64 `json:"target_rse,omitempty"`
}

// SweepEngine tunes the Monte-Carlo engine for a sweep.
type SweepEngine struct {
	// Workers sizes the per-point worker pool (0 = all CPUs). Results are
	// bit-identical for any value.
	Workers int
	// TargetRSE, when positive, stops each point early at this relative
	// standard error, capped at MaxShots.
	TargetRSE float64
	// MaxShots caps the adaptive budget (0 = the Options shot budget).
	MaxShots int
}

// SweepRow is one measured sweep configuration.
type SweepRow struct {
	SweepPoint
	// Severed marks fault patterns the policy could not remove without
	// disconnecting the patch; such points report the random limit.
	Severed bool
	// DistanceAfter is the code distance remaining after defect removal.
	DistanceAfter int
	PerRound      float64
	Shots         int
	Failures      int
	CILow, CIHigh float64
	EarlyStopped  bool
}

// DefaultSweepGrid builds the sweep grid: every policy at every distance
// and defect count of the study scale.
func DefaultSweepGrid(opt Options) []SweepPoint {
	ds := []int{5, 7, 9}
	counts := []int{0, 1, 2, 4}
	if opt.Quick {
		ds = []int{5}
		counts = []int{0, 2}
	}
	policies := []deform.Policy{deform.PolicySurfDeformer, deform.PolicyASC}
	var grid []SweepPoint
	for _, d := range ds {
		for _, k := range counts {
			for _, p := range policies {
				grid = append(grid, SweepPoint{D: d, NumDefects: k, Policy: p})
			}
		}
	}
	return grid
}

// MemorySweep measures the post-removal logical error rate of every grid
// point on the Monte-Carlo engine, fanning points out over the point-level
// worker pool. Per-point fault patterns and run seeds derive from
// (Options.Seed, point content) alone, so a point's result is
// deterministic regardless of grid order, subsetting, worker count at
// either level, or early stopping; the shared DEM cache deduplicates the
// repeated configurations a grid produces (the zero-defect baselines of
// every policy, identical deformed codes, the nominal decode models).
//
// With Options.Store set, each point's Monte-Carlo aggregate is committed
// under the hash of sweepConfig; Options.Resume serves complete points
// from the store and tops up partial ones with only the missing shots
// (Wilson CIs recomputed from the merged counts). Severed points carry no
// Monte-Carlo work and are always recomputed (they are pure functions of
// the config, decided in microseconds).
func MemorySweep(opt Options, grid []SweepPoint, eng SweepEngine) ([]SweepRow, error) {
	shots := eng.MaxShots
	if shots <= 0 {
		shots = opt.Shots
	}
	nominal := noise.Uniform(noise.DefaultPhysical)
	rows := make([]SweepRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		row := SweepRow{SweepPoint: pt}
		faultSeed := opt.pointSeed(kindSweep, append(pt.seedParts(), 0)...)
		rng := rand.New(rand.NewSource(faultSeed))
		spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, pt.D)
		if pt.NumDefects > 0 {
			min, max := spec.Bounds()
			defects := defect.StaticFaults(min, max, pt.NumDefects, rng)
			if err := deform.ApplyDefects(spec, defects, pt.Policy); err != nil {
				row.Severed = true
				row.PerRound = 0.5
				rows[i] = row
				return nil
			}
		}
		c, err := spec.Build()
		if err != nil {
			row.Severed = true
			row.PerRound = 0.5
			rows[i] = row
			return nil
		}
		row.DistanceAfter = c.Distance()
		res, fromStore, err := sim.RunMemoryStored(c, nominal, nil, sim.RunOptions{
			Rounds:    opt.Rounds,
			Basis:     lattice.ZCheck,
			Factory:   decoder.UnionFindFactory(),
			Shots:     shots,
			Workers:   eng.Workers,
			TargetRSE: eng.TargetRSE,
			Seed:      opt.pointSeed(kindSweep, append(pt.seedParts(), 1)...),
			Ctx:       opt.Ctx,
		}, sim.StoreOptions{
			Store:  opt.Store,
			Resume: opt.Resume,
			Kind:   "sweep",
			Config: sweepConfig{
				D: pt.D, K: pt.NumDefects, Policy: pt.Policy.String(),
				Rounds: opt.Rounds, Decoder: "uf", Seed: opt.Seed, TargetRSE: eng.TargetRSE,
			},
		})
		if err != nil {
			return err
		}
		if fromStore {
			opt.Stats.AddSkipped()
		} else {
			opt.Stats.AddComputed()
		}
		row.PerRound = res.PerRound
		row.Shots = res.Shots
		row.Failures = res.Failures
		row.CILow, row.CIHigh = res.CILow, res.CIHigh
		row.EarlyStopped = res.EarlyStopped
		rows[i] = row
		return nil
	})
	if err != nil {
		// Isolated point failures (a panicking worker, exhausted transient
		// retries) do not void the rest of the grid: every other row is
		// valid and already committed to the store, so return them
		// alongside the aggregate error — callers render what completed
		// and surface the failure report. Anything else (cancellation, a
		// permanent error) returns no rows.
		var perrs *mc.PointErrors
		if errors.As(err, &perrs) && !errors.Is(err, mc.ErrCanceled) {
			return rows, err
		}
		return nil, err
	}
	return rows, nil
}

// RenderSweep prints the sweep table.
func RenderSweep(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "%-4s %-10s %-16s %-8s %-14s %-24s %-10s\n",
		"d", "#defects", "policy", "d-after", "λ/cycle", "95% CI (per shot)", "shots")
	for _, r := range rows {
		if r.Severed {
			fmt.Fprintf(w, "%-4d %-10d %-16s %-8s %-14s %-24s %-10s\n",
				r.D, r.NumDefects, r.Policy, "-", "severed", "-", "-")
			continue
		}
		stopped := ""
		if r.EarlyStopped {
			stopped = "*"
		}
		fmt.Fprintf(w, "%-4d %-10d %-16s %-8d %-14.3e [%.3e, %.3e]  %d%s\n",
			r.D, r.NumDefects, r.Policy, r.DistanceAfter, r.PerRound, r.CILow, r.CIHigh, r.Shots, stopped)
	}
}
