package experiments

import (
	"fmt"
	"io"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// PipelineResult summarizes the end-to-end runtime loop of fig. 5 with a
// real statistical defect detector: a cosmic-ray strike lands mid-run, the
// sliding-window detector localizes it from the syndrome stream, and the
// deformation unit mitigates the detected region.
type PipelineResult struct {
	// DetectionLatency is the mean number of rounds between defect onset
	// and the detector's first flag (-1 when never detected).
	DetectionLatency float64
	// Recall is the fraction of truly defective region qubits covered by
	// the detected region estimate.
	Recall float64
	// Precision is the fraction of the detected region that is truly
	// defective.
	Precision float64
	// DistanceAfter is the mean code distance after deforming per the
	// detected region (with enlargement budget).
	DistanceAfter float64
	// Trials and Detected count the Monte-Carlo outcomes.
	Trials   int
	Detected int
}

// DetectionPipeline runs the integrated loop: phased DEM (nominal rounds,
// then a defect region at 50%), per-round detection-event streaming into
// the window detector, region estimation from the flagged observables, and
// adaptive deformation of the estimated region.
func DetectionPipeline(opt Options) (*PipelineResult, error) {
	d := 9
	onset := 6
	tail := 24
	window, threshold := 8, 0.3
	if opt.Quick {
		d, onset, tail, window = 5, 4, 12, 6
	}
	rng := opt.rng()
	dm := defect.Paper()
	nominal := noise.Uniform(noise.DefaultPhysical)

	res := &PipelineResult{Trials: opt.Trials}
	var latencySum, recallSum, precisionSum, distSum float64
	distCount := 0
	for trial := 0; trial < opt.Trials; trial++ {
		spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
		c, err := spec.Build()
		if err != nil {
			return nil, err
		}
		min, max := spec.Bounds()
		// Strike an interior-ish centre so the region fits the patch.
		center := lattice.Coord{Row: 1 + 2*(1+rng.Intn(d-2)), Col: 1 + 2*(1+rng.Intn(d-2))}
		if !center.IsData() {
			center.Col++
		}
		region := dm.RegionOf(center, min, max)
		hot := nominal.WithDefects(region, noise.DefaultDefectRate)

		dem, err := sim.BuildPhasedDEM(c, []sim.Phase{
			{Rounds: onset, Model: nominal},
			{Rounds: tail, Model: hot},
		}, lattice.ZCheck)
		if err != nil {
			return nil, err
		}
		sampler := sim.NewSampler(dem)
		flagged, _ := sampler.Shot(rng)

		// Stream detection events round by round into the window detector.
		byRound := map[int][]int32{}
		for _, det := range flagged {
			r := int(dem.DetRound[det])
			byRound[r] = append(byRound[r], dem.DetObs[det])
		}
		w := detect.NewWindow(window, threshold)
		detectedRound := -1
		var flaggedObs []int32
		for r := 0; r <= onset+tail; r++ {
			w.Feed(r, byRound[r])
			if r >= window && detectedRound < 0 {
				if obs := w.Flagged(); len(obs) > 0 {
					detectedRound = r
					flaggedObs = obs
				}
			}
		}
		if detectedRound < 0 {
			continue
		}
		res.Detected++
		latencySum += float64(detectedRound - onset)

		// Region estimate: supports + ancillas of the flagged observables.
		est := map[lattice.Coord]bool{}
		for _, oi := range flaggedObs {
			info := dem.Observables[oi]
			for _, q := range info.Support {
				est[q] = true
			}
			for _, q := range info.Ancillas {
				est[q] = true
			}
		}
		inRegion := map[lattice.Coord]bool{}
		for _, q := range region {
			inRegion[q] = true
		}
		var hit, estSize int
		for q := range est {
			estSize++
			if inRegion[q] {
				hit++
			}
		}
		covered := 0
		for _, q := range region {
			if est[q] {
				covered++
			}
		}
		if len(region) > 0 {
			recallSum += float64(covered) / float64(len(region))
		}
		if estSize > 0 {
			precisionSum += float64(hit) / float64(estSize)
		}

		// Mitigate the estimated region.
		var report []lattice.Coord
		for q := range est {
			report = append(report, q)
		}
		lattice.SortCoords(report)
		mitigated := spec.Clone()
		if err := deform.ApplyDefects(mitigated, report, deform.PolicySurfDeformer); err != nil {
			continue
		}
		enl, err := deform.Enlarge(mitigated, d, d, func(q lattice.Coord) bool { return inRegion[q] },
			deform.PolicySurfDeformer, deform.UniformBudget(4))
		if err != nil {
			continue
		}
		distSum += float64(enl.Code.Distance())
		distCount++
	}
	if res.Detected > 0 {
		res.DetectionLatency = latencySum / float64(res.Detected)
		res.Recall = recallSum / float64(res.Detected)
		res.Precision = precisionSum / float64(res.Detected)
	} else {
		res.DetectionLatency = -1
	}
	if distCount > 0 {
		res.DistanceAfter = distSum / float64(distCount)
	}
	return res, nil
}

// RenderPipeline prints the integration-study summary.
func RenderPipeline(w io.Writer, r *PipelineResult) {
	fmt.Fprintf(w, "trials: %d, detected: %d (%.0f%%)\n", r.Trials, r.Detected,
		100*float64(r.Detected)/float64(maxInt(1, r.Trials)))
	fmt.Fprintf(w, "detection latency: %.1f rounds after onset\n", r.DetectionLatency)
	fmt.Fprintf(w, "region recall: %.2f  precision: %.2f\n", r.Recall, r.Precision)
	fmt.Fprintf(w, "mean distance after mitigation: %.2f\n", r.DistanceAfter)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
