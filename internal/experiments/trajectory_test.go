package experiments

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"surfdeformer/internal/store"
	"surfdeformer/internal/traj"
)

func trajTestOptions() Options {
	opt := QuickOptions()
	opt.Trials = 3
	return opt
}

// TestTrajectoryDeterministic is the acceptance gate of the trajectory
// scan: results are bit-identical for any point-worker count, and a scan
// interrupted after a partial trajectory budget resumes byte-identically —
// computing only the missing trajectories.
func TestTrajectoryDeterministic(t *testing.T) {
	opt := trajTestOptions()
	cfg := DefaultTrajConfig(opt)
	modes := DefaultTrajModes()

	serial, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	opt.PointWorkers = 4
	parallel, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the scan:\nserial   %+v\nparallel %+v", serial, parallel)
	}

	// Interrupted session: only 2 of the 3 trajectories per arm land in the
	// store.
	st, err := store.Open(filepath.Join(t.TempDir(), "traj.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	partial := opt
	partial.Trials = 2
	partial.Store = st
	partial.Stats = &RunStats{}
	if _, err := TrajectoryScan(partial, cfg, modes); err != nil {
		t.Fatal(err)
	}
	if c := partial.Stats.Computed(); c != 2*len(modes) {
		t.Fatalf("interrupted session computed %d trajectories, want %d", c, 2*len(modes))
	}

	// Resumed session over the full budget: exactly the missing trajectory
	// per arm computes, and the table matches the uninterrupted run.
	resumed := opt
	resumed.Store = st
	resumed.Resume = true
	resumed.Stats = &RunStats{}
	rows, err := TrajectoryScan(resumed, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if c, s := resumed.Stats.Computed(), resumed.Stats.Skipped(); c != len(modes) || s != 2*len(modes) {
		t.Fatalf("resume computed %d / skipped %d, want %d / %d", c, s, len(modes), 2*len(modes))
	}
	if !reflect.DeepEqual(serial, rows) {
		t.Fatalf("resumed scan differs from fresh scan:\nfresh   %+v\nresumed %+v", serial, rows)
	}

	// Byte-identical rendering (the property the CI resume job diffs on).
	var fresh, again bytes.Buffer
	RenderTraj(&fresh, cfg.Horizon, serial)
	RenderTraj(&again, cfg.Horizon, rows)
	if !bytes.Equal(fresh.Bytes(), again.Bytes()) {
		t.Error("rendered tables differ between fresh and resumed scans")
	}

	// A fully-stored re-run computes nothing.
	replay := resumed
	replay.Stats = &RunStats{}
	if _, err := TrajectoryScan(replay, cfg, modes); err != nil {
		t.Fatal(err)
	}
	if c := replay.Stats.Computed(); c != 0 {
		t.Errorf("fully-stored re-run computed %d trajectories", c)
	}
}

// TestTrajectoryScanShape sanity-checks the aggregate rows of a small scan.
func TestTrajectoryScanShape(t *testing.T) {
	opt := trajTestOptions()
	opt.Trials = 4
	opt.PointWorkers = 2
	cfg := DefaultTrajConfig(opt)
	rows, err := TrajectoryScan(opt, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultTrajModes()) {
		t.Fatalf("%d rows, want one per default mode", len(rows))
	}
	for _, r := range rows {
		if r.Trajectories != opt.Trials {
			t.Errorf("%s: %d trajectories, want %d", r.Mode, r.Trajectories, opt.Trials)
		}
		for q := 0; q < 4; q++ {
			if r.Survival[q] < 0 || r.Survival[q] > 1 {
				t.Errorf("%s: survival[%d] = %v outside [0,1]", r.Mode, q, r.Survival[q])
			}
			if q > 0 && r.Survival[q] > r.Survival[q-1] {
				t.Errorf("%s: survival increases over time: %v", r.Mode, r.Survival)
			}
		}
		if r.Mode == traj.ModeUntreated.String() {
			if r.MeanDeformations != 0 || r.MeanRecoveries != 0 || r.Severed != 0 {
				t.Errorf("untreated arm acted on the code: %+v", r)
			}
			if r.MeanReweights != 0 || r.ReweightedFrac != 0 || r.MeanRateErr != -1 {
				t.Errorf("untreated arm updated decode priors: %+v", r)
			}
		}
		if r.Mode == traj.ModeReweightOnly.String() {
			if r.MeanDeformations != 0 || r.MeanRecoveries != 0 || r.Severed != 0 {
				t.Errorf("reweight-only arm deformed the code: %+v", r)
			}
			if r.MeanReweights == 0 || r.ReweightedFrac <= 0 {
				t.Errorf("reweight-only arm never engaged its tier: %+v", r)
			}
		}
		if r.Mode == traj.ModeASC.String() && r.MeanReweights != 0 {
			t.Errorf("asc-s arm (no reweight tier) updated decode priors: %+v", r)
		}
		if r.ReweightedFrac < 0 || r.ReweightedFrac > 1 || r.MismatchFrac < 0 || r.MismatchFrac > 1 {
			t.Errorf("%s: reweight fractions outside [0,1]: %+v", r.Mode, r)
		}
	}
	// The structured table carries one row per arm.
	if tab := TrajTable(rows); len(tab.Rows) != len(rows) {
		t.Errorf("TrajTable has %d rows, want %d", len(tab.Rows), len(rows))
	}
}

// TestLayoutTrajectoryScan lifts the determinism/resume acceptance gate to
// the layout axis: a 2-patch scan with a surgery schedule is bit-identical
// for any worker count, resumes byte-identically from a partial store, and
// populates the router aggregates.
func TestLayoutTrajectoryScan(t *testing.T) {
	opt := trajTestOptions()
	cfg := DefaultTrajConfig(opt)
	cfg.Layout = &traj.LayoutConfig{Patches: 2, Program: "simon"}
	modes := DefaultTrajModes()

	serial, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	opt.PointWorkers = 4
	parallel, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the layout scan:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	for _, r := range serial {
		if r.MeanOpsTotal <= 0 {
			t.Errorf("%s: layout scan without a surgery schedule: %+v", r.Mode, r)
		}
		if r.ProgramDoneFrac < 0 || r.ProgramDoneFrac > 1 || r.ChannelBlockedFrac < 0 || r.ChannelBlockedFrac > 1 {
			t.Errorf("%s: router fractions outside [0,1]: %+v", r.Mode, r)
		}
		if r.MeanOpsCompleted > r.MeanOpsTotal {
			t.Errorf("%s: completed %v of %v scheduled ops", r.Mode, r.MeanOpsCompleted, r.MeanOpsTotal)
		}
	}

	// Interrupted at 2 of 3 trajectories per arm, then resumed: only the
	// missing trajectory computes, and rows render byte-identically.
	st, err := store.Open(filepath.Join(t.TempDir(), "layout-traj.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	partial := opt
	partial.Trials = 2
	partial.Store = st
	partial.Stats = &RunStats{}
	if _, err := TrajectoryScan(partial, cfg, modes); err != nil {
		t.Fatal(err)
	}
	resumed := opt
	resumed.Store = st
	resumed.Resume = true
	resumed.Stats = &RunStats{}
	rows, err := TrajectoryScan(resumed, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if c, s := resumed.Stats.Computed(), resumed.Stats.Skipped(); c != len(modes) || s != 2*len(modes) {
		t.Fatalf("layout resume computed %d / skipped %d, want %d / %d", c, s, len(modes), 2*len(modes))
	}
	if !reflect.DeepEqual(serial, rows) {
		t.Fatalf("resumed layout scan differs from fresh scan:\nfresh   %+v\nresumed %+v", serial, rows)
	}
	var fresh, again bytes.Buffer
	RenderTraj(&fresh, cfg.Horizon, serial)
	RenderTraj(&again, cfg.Horizon, rows)
	if !bytes.Equal(fresh.Bytes(), again.Bytes()) {
		t.Error("rendered layout tables differ between fresh and resumed scans")
	}

	// The layout axis is part of the store identity: the single-patch scan
	// must not be served rows from the layout store.
	single := opt
	single.Store = st
	single.Resume = true
	single.Stats = &RunStats{}
	scfg := DefaultTrajConfig(opt)
	if _, err := TrajectoryScan(single, scfg, modes); err != nil {
		t.Fatal(err)
	}
	if s := single.Stats.Skipped(); s != 0 {
		t.Errorf("single-patch scan served %d rows from the layout store", s)
	}
}
