package experiments

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"surfdeformer/internal/store"
	"surfdeformer/internal/traj"
)

// TestAdaptiveStopDecisions unit-tests the barrier logic against a stub
// trajectory runner with known outcomes: an arm that always fails must
// separate from two arms that never fail and retire at exactly the
// MinTrials floor — never before it — while the two statistically
// indistinguishable arms (identical, overlapping intervals) run their full
// budget. The retired arm's frozen interval stays in play: it is what the
// surviving arms separated from.
func TestAdaptiveStopDecisions(t *testing.T) {
	opt := Options{Trials: 32, AdaptiveStop: true, MinTrials: 8}
	modes := []traj.Mode{traj.ModeSurfDeformer, traj.ModeASC, traj.ModeUntreated}
	results := make([][]traj.Result, len(modes))
	calls := make([]int, len(modes))
	runPoint := func(mi, j int) (traj.Result, error) {
		if j != calls[mi] {
			t.Errorf("arm %d ran trajectory %d out of order (want %d)", mi, j, calls[mi])
		}
		calls[mi]++
		r := traj.Result{FirstFailCycle: -1}
		if mi == 0 {
			r.FirstFailCycle = 5 // this arm always fails
		}
		return r, nil
	}
	if err := trajectoryScanAdaptive(opt, modes, results, runPoint); err != nil {
		t.Fatal(err)
	}
	if len(results[0]) != opt.MinTrials {
		t.Errorf("always-failing arm committed %d trajectories, want exactly the floor %d",
			len(results[0]), opt.MinTrials)
	}
	for mi := 1; mi < len(modes); mi++ {
		if len(results[mi]) != opt.Trials {
			t.Errorf("arm %d committed %d trajectories, want the full budget %d (its interval never separated from arm %d's)",
				mi, len(results[mi]), opt.Trials, 3-mi)
		}
	}
	for mi := range modes {
		if calls[mi] != len(results[mi]) {
			t.Errorf("arm %d: %d runs but %d committed results", mi, calls[mi], len(results[mi]))
		}
		if len(results[mi]) < opt.MinTrials {
			t.Errorf("arm %d stopped before the MinTrials floor: %d < %d", mi, len(results[mi]), opt.MinTrials)
		}
	}
}

// TestAdaptiveStopMinTrialsClamp pins the floor clamp: a MinTrials above
// the trial budget degenerates to a single full block with no decision
// point, so every arm runs exactly Trials trajectories.
func TestAdaptiveStopMinTrialsClamp(t *testing.T) {
	opt := Options{Trials: 4, AdaptiveStop: true, MinTrials: 100}
	modes := []traj.Mode{traj.ModeSurfDeformer, traj.ModeUntreated}
	results := make([][]traj.Result, len(modes))
	runPoint := func(mi, j int) (traj.Result, error) {
		// Maximally separable outcomes: only the clamp keeps both arms alive.
		fc := int64(-1)
		if mi == 0 {
			fc = 1
		}
		return traj.Result{FirstFailCycle: fc}, nil
	}
	if err := trajectoryScanAdaptive(opt, modes, results, runPoint); err != nil {
		t.Fatal(err)
	}
	for mi := range modes {
		if len(results[mi]) != opt.Trials {
			t.Errorf("arm %d committed %d trajectories, want %d", mi, len(results[mi]), opt.Trials)
		}
	}
}

// TestTrajectoryAdaptiveDeterministicAndShared is the integration gate of
// adaptive stopping on real trajectories: the adaptive scan is bit-identical
// for any PointWorkers value; setting the floor equal to the budget
// reproduces the fixed scan exactly; and because the per-trajectory store
// identity is unchanged, an adaptive scan resumed against a store written by
// a fixed run computes nothing and renders byte-identically — including any
// arm the adaptive pass retired early.
func TestTrajectoryAdaptiveDeterministicAndShared(t *testing.T) {
	opt := trajTestOptions()
	opt.Trials = 4
	opt.AdaptiveStop = true
	opt.MinTrials = 2
	cfg := DefaultTrajConfig(opt)
	modes := DefaultTrajModes()

	serial, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	par := opt
	par.PointWorkers = 4
	parallel, err := TrajectoryScan(par, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the adaptive scan:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	for _, r := range serial {
		if r.Trajectories < opt.MinTrials || r.Trajectories > opt.Trials {
			t.Errorf("%s committed %d trajectories outside [floor %d, budget %d]",
				r.Mode, r.Trajectories, opt.MinTrials, opt.Trials)
		}
	}

	// Floor == budget: the adaptive scan has no decision point and must
	// reproduce the fixed scan bit-for-bit.
	fixed := opt
	fixed.AdaptiveStop = false
	fixedRows, err := TrajectoryScan(fixed, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	floor := opt
	floor.MinTrials = opt.Trials
	floorRows, err := TrajectoryScan(floor, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fixedRows, floorRows) {
		t.Fatalf("MinTrials==Trials adaptive scan differs from the fixed scan:\nfixed    %+v\nadaptive %+v", fixedRows, floorRows)
	}

	// Store sharing: seed the store with the fixed run, then resume the
	// adaptive scan against it. Every trajectory the adaptive pass wants is
	// a prefix of what the fixed run committed, so nothing recomputes and
	// the rows — stopped arms included — replay byte-identically.
	st, err := store.Open(filepath.Join(t.TempDir(), "traj.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seed := fixed
	seed.Store = st
	if _, err := TrajectoryScan(seed, cfg, modes); err != nil {
		t.Fatal(err)
	}
	resumed := opt
	resumed.Store = st
	resumed.Resume = true
	resumed.Stats = &RunStats{}
	rows, err := TrajectoryScan(resumed, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if c := resumed.Stats.Computed(); c != 0 {
		t.Errorf("adaptive resume against a fixed-run store computed %d trajectories, want 0", c)
	}
	want := 0
	for _, r := range serial {
		want += r.Trajectories
	}
	if s := resumed.Stats.Skipped(); s != want {
		t.Errorf("adaptive resume served %d trajectories from the store, want %d", s, want)
	}
	if !reflect.DeepEqual(serial, rows) {
		t.Fatalf("store-resumed adaptive scan differs from fresh:\nfresh   %+v\nresumed %+v", serial, rows)
	}
	var fresh, again bytes.Buffer
	RenderTraj(&fresh, cfg.Horizon, serial)
	RenderTraj(&again, cfg.Horizon, rows)
	if !bytes.Equal(fresh.Bytes(), again.Bytes()) {
		t.Error("rendered tables differ between fresh and store-resumed adaptive scans")
	}
}
