package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/store"
	"surfdeformer/internal/traj"
)

// TestDeviceScanStoreIdentity pins the store-identity contract of the
// rev-4 axes: device-less rows of arms without the super tier serialize
// without any of the new keys (the axis addition cannot perturb their
// hashes within the rev), super-tier arms resolve the default boundary so
// explicit-default and 0-means-default spellings hash identically, and
// tuning the boundary never invalidates arms whose ladder ignores it.
func TestDeviceScanStoreIdentity(t *testing.T) {
	opt := trajTestOptions()
	cfg := DefaultTrajConfig(opt)

	b, err := json.Marshal(taskConfig(cfg, traj.ModeUntreated, 0, opt.Seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"device_qubit_rate", "device_coupler_rate", "device_error_rate", "super_threshold", "halflife"} {
		if strings.Contains(string(b), key) {
			t.Errorf("device-less untreated row carries %q: %s", key, b)
		}
	}
	if !strings.Contains(string(b), `"rev":4`) {
		t.Errorf("row identity missing the rev-4 engine revision: %s", b)
	}

	explicit := cfg
	explicit.SuperThreshold = defect.SuperThreshold
	if !reflect.DeepEqual(taskConfig(cfg, traj.ModeSuperOnly, 0, opt.Seed),
		taskConfig(explicit, traj.ModeSuperOnly, 0, opt.Seed)) {
		t.Error("explicit-default and 0-means-default super thresholds hash differently")
	}
	moved := cfg
	moved.SuperThreshold = 0.09
	if !reflect.DeepEqual(taskConfig(cfg, traj.ModeUntreated, 0, opt.Seed),
		taskConfig(moved, traj.ModeUntreated, 0, opt.Seed)) {
		t.Error("tuning the super boundary invalidated untreated rows")
	}

	dcfg := cfg
	dcfg.Device = defect.NewDeviceModel(0.1)
	db, err := json.Marshal(taskConfig(dcfg, traj.ModeUntreated, 0, opt.Seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"device_qubit_rate", "device_coupler_rate", "device_error_rate"} {
		if !strings.Contains(string(db), key) {
			t.Errorf("device-sampled row missing %q: %s", key, db)
		}
	}
}

// TestDeviceTrajectoryScan lifts the determinism/resume acceptance gate to
// the fabrication-device axis: a device-sampled scan is bit-identical for
// any worker count, resumes byte-identically from a partially-written
// store, and aggregates the bandage/device columns coherently (every arm
// sees the identical sampled devices; only bandaging arms bandage).
func TestDeviceTrajectoryScan(t *testing.T) {
	opt := trajTestOptions()
	cfg := DefaultTrajConfig(opt)
	cfg.Device = defect.NewDeviceModel(0.12)
	modes := DefaultTrajModes()

	serial, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	opt.PointWorkers = 4
	parallel, err := TrajectoryScan(opt, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the device scan:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	var sawBandages bool
	for _, r := range serial {
		if r.MeanDeviceDefects != serial[0].MeanDeviceDefects {
			t.Errorf("%s: saw %.2f device defects, other arms %.2f — paired devices broken",
				r.Mode, r.MeanDeviceDefects, serial[0].MeanDeviceDefects)
		}
		if r.MeanBandages > 0 {
			sawBandages = true
		}
		if r.Mode == traj.ModeUntreated.String() && r.MeanBandages != 0 {
			t.Errorf("untreated arm bandaged the code: %+v", r)
		}
	}
	if serial[0].MeanDeviceDefects <= 0 {
		t.Error("12% defect rates sampled no defective sites across the scan")
	}
	if !sawBandages {
		t.Error("no arm of the device scan ever bandaged")
	}

	// Interrupted at 2 of 3 trajectories per arm, then resumed: only the
	// missing trajectory computes, and rows render byte-identically.
	st, err := store.Open(filepath.Join(t.TempDir(), "device-traj.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	partial := opt
	partial.Trials = 2
	partial.Store = st
	partial.Stats = &RunStats{}
	if _, err := TrajectoryScan(partial, cfg, modes); err != nil {
		t.Fatal(err)
	}
	resumed := opt
	resumed.Store = st
	resumed.Resume = true
	resumed.Stats = &RunStats{}
	rows, err := TrajectoryScan(resumed, cfg, modes)
	if err != nil {
		t.Fatal(err)
	}
	if c, s := resumed.Stats.Computed(), resumed.Stats.Skipped(); c != len(modes) || s != 2*len(modes) {
		t.Fatalf("device resume computed %d / skipped %d, want %d / %d", c, s, len(modes), 2*len(modes))
	}
	if !reflect.DeepEqual(serial, rows) {
		t.Fatalf("resumed device scan differs from fresh scan:\nfresh   %+v\nresumed %+v", serial, rows)
	}
	var fresh, again bytes.Buffer
	RenderTraj(&fresh, cfg.Horizon, serial)
	RenderTraj(&again, cfg.Horizon, rows)
	if !bytes.Equal(fresh.Bytes(), again.Bytes()) {
		t.Error("rendered device tables differ between fresh and resumed scans")
	}

	// The device axis is part of the store identity: a pristine-device scan
	// must not be served rows from the device store.
	pristine := opt
	pristine.Store = st
	pristine.Resume = true
	pristine.Stats = &RunStats{}
	if _, err := TrajectoryScan(pristine, DefaultTrajConfig(opt), modes); err != nil {
		t.Fatal(err)
	}
	if s := pristine.Stats.Skipped(); s != 0 {
		t.Errorf("pristine-device scan served %d rows from the device store", s)
	}
}
