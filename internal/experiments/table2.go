package experiments

import (
	"fmt"
	"io"

	"surfdeformer/internal/estimator"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/program"
)

// Table2Row is one benchmark × distance row of the end-to-end comparison.
type Table2Row struct {
	Program *program.Program
	D       int

	Q3DEQubits      int
	Q3DEOverRuntime bool
	ASCQubits       int
	ASCRetryRisk    float64
	SurfQubits      int
	SurfRetryRisk   float64
	DeltaD          int
}

// table2Config is the store identity of one (benchmark, d) row.
type table2Config struct {
	Benchmark string `json:"benchmark"`
	D         int    `json:"d"`
	Trials    int    `json:"trials"`
	Seed      int64  `json:"seed"`
	FitLosses bool   `json:"fit_losses,omitempty"`
}

// table2Payload is the stored result of one row minus its identity fields.
type table2Payload struct {
	DeltaD          int     `json:"delta_d"`
	Q3DEQubits      int     `json:"q3de_qubits"`
	Q3DEOverRuntime bool    `json:"q3de_over_runtime"`
	ASCQubits       int     `json:"asc_qubits"`
	ASCRetryRisk    float64 `json:"asc_retry_risk"`
	SurfQubits      int     `json:"surf_qubits"`
	SurfRetryRisk   float64 `json:"surf_retry_risk"`
}

// Table2 reproduces the end-to-end evaluation: for every benchmark program
// and the paper's two distances per row, the physical qubit count and retry
// risk of Q3DE, ASC-S and Surf-Deformer. (benchmark, d) rows run on the
// point-level pool; each row's three scheme estimates share one derived
// defect-timeline stream so the schemes face comparable timelines.
func Table2(opt Options) ([]Table2Row, error) {
	dm, lm, fws := estimators(opt)
	pairs := paperDistancePairs()
	benches := program.Benchmarks()
	if opt.Quick {
		benches = benches[:2]
	}
	type point struct {
		prog *program.Program
		d    int
	}
	var grid []point
	for _, prog := range benches {
		ds, ok := pairs[prog.Name]
		if !ok {
			ds = [2]int{19, 21}
		}
		for _, d := range ds {
			grid = append(grid, point{prog, d})
		}
	}
	rows := make([]Table2Row, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := table2Config{Benchmark: pt.prog.Name, D: pt.d,
			Trials: opt.Trials, Seed: opt.Seed, FitLosses: opt.FitLosses}
		pay, err := cachedRow(opt, "table2", cfg, func() (table2Payload, error) {
			rng := opt.pointRNG(kindTable2, mc.StringSeed(pt.prog.Name), int64(pt.d))
			deltaD := layout.ChooseDeltaD(dm, pt.d, layout.DefaultAlphaBlock)
			q3de := estimator.EstimateProgram(pt.prog, fws[layout.Q3DE], pt.d, deltaD, dm, lm, opt.Trials, rng)
			asc := estimator.EstimateProgram(pt.prog, fws[layout.ASCS], pt.d, deltaD, dm, lm, opt.Trials, rng)
			surf := estimator.EstimateProgram(pt.prog, fws[layout.SurfDeformer], pt.d, deltaD, dm, lm, opt.Trials, rng)
			return table2Payload{
				DeltaD:          deltaD,
				Q3DEQubits:      q3de.PhysicalQubits,
				Q3DEOverRuntime: q3de.OverRuntime,
				ASCQubits:       asc.PhysicalQubits,
				ASCRetryRisk:    asc.RetryRisk,
				SurfQubits:      surf.PhysicalQubits,
				SurfRetryRisk:   surf.RetryRisk,
			}, nil
		})
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			Program:         pt.prog,
			D:               pt.d,
			DeltaD:          pay.DeltaD,
			Q3DEQubits:      pay.Q3DEQubits,
			Q3DEOverRuntime: pay.Q3DEOverRuntime,
			ASCQubits:       pay.ASCQubits,
			ASCRetryRisk:    pay.ASCRetryRisk,
			SurfQubits:      pay.SurfQubits,
			SurfRetryRisk:   pay.SurfRetryRisk,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable2 prints the table in the paper's format.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-16s %-4s | %-12s %-12s | %-12s %-12s | %-12s %-12s\n",
		"Benchmark", "d", "Q3DE #qubit", "Q3DE risk", "ASC #qubit", "ASC risk", "Surf #qubit", "Surf risk")
	fmt.Fprintln(w, strRepeat("-", 110))
	for _, r := range rows {
		q3deRisk := "OverRuntime"
		if !r.Q3DEOverRuntime {
			q3deRisk = fmt.Sprintf("%.2f%%", 100*r.ASCRetryRisk)
		}
		fmt.Fprintf(w, "%-16s %-4d | %-12.2e %-12s | %-12.2e %-12.2f%% | %-12.2e %-12.2f%%\n",
			r.Program.Name, r.D,
			float64(r.Q3DEQubits), q3deRisk,
			float64(r.ASCQubits), 100*r.ASCRetryRisk,
			float64(r.SurfQubits), 100*r.SurfRetryRisk)
	}
}
