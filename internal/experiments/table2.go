package experiments

import (
	"fmt"
	"io"

	"surfdeformer/internal/estimator"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
)

// Table2Row is one benchmark × distance row of the end-to-end comparison.
type Table2Row struct {
	Program *program.Program
	D       int

	Q3DEQubits      int
	Q3DEOverRuntime bool
	ASCQubits       int
	ASCRetryRisk    float64
	SurfQubits      int
	SurfRetryRisk   float64
	DeltaD          int
}

// Table2 reproduces the end-to-end evaluation: for every benchmark program
// and the paper's two distances per row, the physical qubit count and retry
// risk of Q3DE, ASC-S and Surf-Deformer.
func Table2(opt Options) ([]Table2Row, error) {
	dm, lm, fws := estimators(opt)
	pairs := paperDistancePairs()
	benches := program.Benchmarks()
	if opt.Quick {
		benches = benches[:2]
	}
	rng := opt.rng()
	var rows []Table2Row
	for _, prog := range benches {
		ds, ok := pairs[prog.Name]
		if !ok {
			ds = [2]int{19, 21}
		}
		for _, d := range ds {
			deltaD := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)
			q3de := estimator.EstimateProgram(prog, fws[layout.Q3DE], d, deltaD, dm, lm, opt.Trials, rng)
			asc := estimator.EstimateProgram(prog, fws[layout.ASCS], d, deltaD, dm, lm, opt.Trials, rng)
			surf := estimator.EstimateProgram(prog, fws[layout.SurfDeformer], d, deltaD, dm, lm, opt.Trials, rng)
			rows = append(rows, Table2Row{
				Program:         prog,
				D:               d,
				DeltaD:          deltaD,
				Q3DEQubits:      q3de.PhysicalQubits,
				Q3DEOverRuntime: q3de.OverRuntime,
				ASCQubits:       asc.PhysicalQubits,
				ASCRetryRisk:    asc.RetryRisk,
				SurfQubits:      surf.PhysicalQubits,
				SurfRetryRisk:   surf.RetryRisk,
			})
		}
	}
	return rows, nil
}

// RenderTable2 prints the table in the paper's format.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-16s %-4s | %-12s %-12s | %-12s %-12s | %-12s %-12s\n",
		"Benchmark", "d", "Q3DE #qubit", "Q3DE risk", "ASC #qubit", "ASC risk", "Surf #qubit", "Surf risk")
	fmt.Fprintln(w, strRepeat("-", 110))
	for _, r := range rows {
		q3deRisk := "OverRuntime"
		if !r.Q3DEOverRuntime {
			q3deRisk = fmt.Sprintf("%.2f%%", 100*r.ASCRetryRisk)
		}
		fmt.Fprintf(w, "%-16s %-4d | %-12.2e %-12s | %-12.2e %-12.2f%% | %-12.2e %-12.2f%%\n",
			r.Program.Name, r.D,
			float64(r.Q3DEQubits), q3deRisk,
			float64(r.ASCQubits), 100*r.ASCRetryRisk,
			float64(r.SurfQubits), 100*r.SurfRetryRisk)
	}
}
