package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/report"
	"surfdeformer/internal/traj"
)

// The trajectory scan is the first workload where deformation, detection,
// and the Monte-Carlo machinery run together at scale: every (mode,
// trajectory) pair is an independent closed-loop simulation fanned out over
// the point-level worker pool, committed to the persistent store as a whole
// row, and aggregated into per-arm comparison rows. Per-trajectory seeds
// derive from (Options.Seed, kindTraj, trajectory index) — deliberately
// without the mode, so every arm faces the identical defect timelines (a
// paired comparison). The scan is bit-identical for any PointWorkers value
// and byte-identical on resume after interruption (the trajectory index — not the shot budget —
// is the accumulating dimension: raising Options.Trials computes only the
// new indices).

// trajEngineRev is the current engine-semantics revision carried in every
// trajectory's store identity (rev 1: the decoder-prior reweight tier —
// surf-deformer results changed for unchanged configs; rev 2: Result
// gained OverlayDEMBuilds, so replayed payload bytes from older stores
// would not match recomputed ones; rev 3: the layout axis — Result gained
// the per-patch and router fields, so rev-2 payload bytes would not match
// recomputed ones even for single-patch configs; rev 4: the three-tier
// mitigation ladder and fabrication-device axis — Result gained
// DeviceDefects/Bandages and the full ladder gained the super tier, so
// surf-deformer semantics changed for unchanged configs).
const trajEngineRev = 4

// DefaultTrajModes lists the arms every scan compares, in mitigation-ladder
// order: the full ladder, removal only, bandaging only, reweighting only,
// nothing.
func DefaultTrajModes() []traj.Mode {
	return []traj.Mode{traj.ModeSurfDeformer, traj.ModeASC, traj.ModeSuperOnly, traj.ModeReweightOnly, traj.ModeUntreated}
}

// DefaultTrajConfig returns the scan scenario at Options scale.
func DefaultTrajConfig(opt Options) traj.Config {
	if opt.Quick {
		return traj.QuickConfig()
	}
	return traj.DefaultConfig(9)
}

// trajTaskConfig is the store identity of one trajectory: the full scenario
// generator (everything that fixes the event timeline and shot streams)
// plus the arm and the trajectory index. The trajectory count is
// deliberately absent — it is the accumulating dimension. Rev is the
// engine-semantics revision: it must be bumped whenever traj.Run changes
// what a Result means for an unchanged config (as the reweight tier did
// for every arm), so -resume against a store written by an older engine
// recomputes instead of silently mixing semantics.
type trajTaskConfig struct {
	Rev          int     `json:"rev,omitempty"`
	D            int     `json:"d"`
	DeltaD       int     `json:"delta_d"`
	Horizon      int64   `json:"horizon"`
	ChunkRounds  int     `json:"chunk_rounds"`
	Window       int     `json:"window"`
	Threshold    float64 `json:"threshold"`
	PhysicalRate float64 `json:"p"`
	Basis        int     `json:"basis"`

	CosmicRate     float64 `json:"cosmic_rate,omitempty"`
	CosmicDuration int     `json:"cosmic_duration,omitempty"`
	CosmicRadius   int     `json:"cosmic_radius,omitempty"`
	CosmicError    float64 `json:"cosmic_error,omitempty"`
	LeakRate       float64 `json:"leak_rate,omitempty"`
	LeakDuration   int     `json:"leak_duration,omitempty"`
	LeakNeighbour  float64 `json:"leak_neighbour,omitempty"`
	DriftRate      float64 `json:"drift_rate,omitempty"`
	DriftMult      float64 `json:"drift_mult,omitempty"`
	DriftDuration  int     `json:"drift_duration,omitempty"`

	ReweightFactor float64 `json:"reweight_factor,omitempty"`

	// Fabrication-device axis (rev 4). All omitted for pristine-device,
	// default-threshold scans, so every single-device row keeps its
	// identity across the axis addition.
	DeviceQubitRate   float64 `json:"device_qubit_rate,omitempty"`
	DeviceCouplerRate float64 `json:"device_coupler_rate,omitempty"`
	DeviceErrorRate   float64 `json:"device_error_rate,omitempty"`
	SuperThreshold    float64 `json:"super_threshold,omitempty"`
	Halflife          float64 `json:"halflife,omitempty"`

	// Layout axis (rev 3). All omitted for single-patch scans, so every
	// pre-layout row keeps its identity; a 1-patch layout scan hashes
	// differently from a single-patch scan because Patches is non-zero
	// (their Results differ in the per-patch slice).
	Patches int    `json:"patches,omitempty"`
	Program string `json:"program,omitempty"`
	Ops     int    `json:"ops,omitempty"`

	Mode string `json:"mode"`
	Traj int    `json:"traj"`
	Seed int64  `json:"seed"`
}

func taskConfig(cfg traj.Config, mode traj.Mode, j int, seed int64) trajTaskConfig {
	// The store identity carries the *resolved* reweight factor, and only
	// for arms whose ladder actually consults it: an explicit
	// `-reweight-factor 3` and the 0-means-default spelling run identical
	// trajectories and must hash identically; if the default itself ever
	// changes, default-spelled configs correctly stop matching their old
	// rows; and tuning the gate must not invalidate the untreated/asc-s
	// rows, whose Results are factor-independent.
	mit := mode.Mitigation()
	rf := 0.0
	if mit.ReweightTier {
		rf = cfg.ReweightFactor
		if rf == 0 {
			rf = traj.DefaultReweightFactor
		}
	}
	// Same resolution rule for the super boundary: carried only for arms
	// whose ladder has the super tier (the only ones whose Results can
	// depend on it), resolved so explicit-default and 0-means-default
	// spellings hash identically.
	st := 0.0
	if mit.SuperTier {
		st = cfg.SuperThreshold
		if st == 0 {
			st = defect.SuperThreshold
		}
	}
	tc := trajTaskConfig{
		Rev: trajEngineRev,
		D:   cfg.D, DeltaD: cfg.DeltaD, Horizon: cfg.Horizon,
		ChunkRounds: cfg.ChunkRounds, Window: cfg.Window, Threshold: cfg.Threshold,
		PhysicalRate: cfg.PhysicalRate, Basis: int(cfg.Basis),
		ReweightFactor: rf,
		SuperThreshold: st, Halflife: cfg.Halflife,
		Mode: mode.String(), Traj: j, Seed: seed,
	}
	if m := cfg.Device; m != nil {
		tc.DeviceQubitRate, tc.DeviceCouplerRate = m.QubitDefectRate, m.CouplerDefectRate
		tc.DeviceErrorRate = m.ErrorRate
		if tc.DeviceErrorRate <= 0 {
			tc.DeviceErrorRate = 0.5 // Sample's inoperable-hardware default
		}
	}
	if m := cfg.Cosmic; m != nil {
		tc.CosmicRate, tc.CosmicDuration = m.RatePerQubit, m.DurationCycles
		tc.CosmicRadius, tc.CosmicError = m.Radius, m.ErrorRate
	}
	if m := cfg.Leakage; m != nil {
		tc.LeakRate, tc.LeakDuration, tc.LeakNeighbour = m.RatePerQubit, m.MeanDurationCycles, m.NeighbourRate
	}
	if m := cfg.Drift; m != nil {
		tc.DriftRate, tc.DriftMult, tc.DriftDuration = m.RatePerQubit, m.Multiplier, m.MeanDurationCycles
	}
	if l := cfg.Layout; l != nil {
		tc.Patches, tc.Program, tc.Ops = l.Patches, l.Program, l.Ops
	}
	return tc
}

// TrajRow aggregates one arm of a trajectory scan.
type TrajRow struct {
	Mode         string
	Trajectories int
	// Survival is the fraction of trajectories without a logical failure by
	// each quarter of the horizon (T/4, T/2, 3T/4, T).
	Survival [4]float64
	// DetectedFrac is the detected fraction of removable defect events;
	// MeanLatency the mean onset→flag latency in cycles over detected ones
	// (-1 when nothing was detected).
	DetectedFrac float64
	MeanLatency  float64
	// MeanDeformations and MeanRecoveries count closed-loop actions per
	// trajectory; Severed counts trajectories whose patch disconnected.
	MeanDeformations float64
	MeanRecoveries   float64
	Severed          int
	// MeanBandages counts super-stabilizer bandage sites per trajectory
	// (boot adaptation plus dynamic merges); MeanDeviceDefects the sampled
	// fabrication defects per trajectory (identical across paired arms).
	// Both zero on pristine-device scans with the super tier idle.
	MeanBandages      float64
	MeanDeviceDefects float64
	// BlockedFrac is the fraction of patch-cycles with blocked channels;
	// MeanDistance the time-weighted mean of min(dX, dZ);
	// FailuresPer1k the failure rate per 1000 scored cycles.
	BlockedFrac   float64
	MeanDistance  float64
	FailuresPer1k float64
	// MeanReweights counts decoder-prior updates per trajectory;
	// ReweightedFrac is the fraction of elapsed cycles decoded under
	// estimated priors and MismatchFrac the fraction decoded with nominal
	// priors while elevated true rates were live (the regime reweighting
	// shrinks). MeanRateErr is the mean absolute estimated-vs-true per-site
	// rate error over the reweighted cycles (-1 when the arm never
	// reweighted).
	MeanReweights  float64
	ReweightedFrac float64
	MismatchFrac   float64
	MeanRateErr    float64
	// MeanOverlayBuilds counts overlay decode-DEM constructions per
	// trajectory — the reweight tier's dominant wall-clock cost (DESIGN.md
	// §10).
	MeanOverlayBuilds float64
	// Router aggregates, populated only on layout scans (a surgery
	// schedule present): ProgramDoneFrac is the fraction of trajectories
	// that completed their schedule; MeanOpsCompleted the mean executed
	// operations (of MeanOpsTotal scheduled); MeanStallCycles the mean
	// cycles spent with operations pending but none routable;
	// MeanReplans the mean operations that executed after at least one
	// failed attempt; MeanMergeBlocked the mean operations vetoed by the
	// merged-code distance check; ChannelBlockedFrac the fraction of
	// elapsed cycles with at least one routing channel blocked.
	MeanOpsTotal       float64
	MeanOpsCompleted   float64
	ProgramDoneFrac    float64
	MeanStallCycles    float64
	MeanReplans        float64
	MeanMergeBlocked   float64
	ChannelBlockedFrac float64
}

// TrajectoryScan runs Options.Trials closed-loop trajectories per mode and
// aggregates them into one comparison row per arm. See the package comment
// of internal/traj for the simulation model and the block comment above for
// the determinism and resume contract.
func TrajectoryScan(opt Options, cfg traj.Config, modes []traj.Mode) ([]TrajRow, error) {
	if len(modes) == 0 {
		modes = DefaultTrajModes()
	}

	// Per-arm live survival for the progress note: read by the reporter's
	// ticker while the pool runs, so atomics, not plain ints.
	type armLive struct{ done, survived atomic.Int64 }
	live := make([]armLive, len(modes))
	if opt.Progress != nil {
		opt.Progress.Note = func() string {
			var sb strings.Builder
			for mi := range modes {
				d := live[mi].done.Load()
				if d == 0 {
					continue
				}
				if sb.Len() > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%s %d/%d", modes[mi], live[mi].survived.Load(), d)
			}
			if sb.Len() == 0 {
				return ""
			}
			return "survived: " + sb.String()
		}
	}

	runPoint := func(mi, j int) (traj.Result, error) {
		mode := modes[mi]
		// The seed is shared across modes on purpose: trajectory j of every
		// arm draws the identical defect timeline, so arm differences are
		// policy, not timeline sampling noise (a paired comparison).
		seed := opt.pointSeed(kindTraj, int64(j))
		// The tracer rides on the config (taskConfig copies fields
		// explicitly, so neither it nor TraceTraj can leak into the store
		// identity). Store-served points emit nothing: their trajectories
		// did not run.
		pcfg := cfg
		pcfg.TraceTraj = j
		res, err := cachedRow(opt, "traj", taskConfig(cfg, mode, j, opt.Seed), func() (traj.Result, error) {
			r, err := traj.Run(pcfg, mode, seed)
			if err != nil {
				return traj.Result{}, err
			}
			return *r, nil
		})
		if err != nil {
			return traj.Result{}, err
		}
		live[mi].done.Add(1)
		if res.FirstFailCycle < 0 {
			live[mi].survived.Add(1)
		}
		return res, nil
	}

	// results holds each arm's committed in-order prefix: with adaptive
	// stopping off (or a single arm, where separation is undefined) every
	// arm runs the full Trials; otherwise arms may retire early and hold
	// shorter prefixes.
	results := make([][]traj.Result, len(modes))
	if !opt.AdaptiveStop || len(modes) < 2 {
		n := len(modes) * opt.Trials
		flat := make([]traj.Result, n)
		err := opt.forEachPoint(n, func(i int) error {
			res, err := runPoint(i/opt.Trials, i%opt.Trials)
			if err != nil {
				return err
			}
			flat[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		for mi := range modes {
			results[mi] = flat[mi*opt.Trials : (mi+1)*opt.Trials]
		}
	} else if err := trajectoryScanAdaptive(opt, modes, results, runPoint); err != nil {
		return nil, err
	}

	rows := make([]TrajRow, len(modes))
	for mi, mode := range modes {
		armRes := results[mi]
		row := TrajRow{Mode: mode.String(), Trajectories: len(armRes)}
		var latency, detected, removable int64
		var deforms, recovers, failures, reweights, overlayBuilds int
		var bandages, deviceDefects int
		var blocked, distance, elapsed, scored int64
		var reweighted, mismatch int64
		var rateErr float64
		var opsTotal, opsDone, progDone, replans, mergeBlocked int
		var stall, chanBlocked int64
		for _, r := range armRes {
			for q := 0; q < 4; q++ {
				cp := cfg.Horizon * int64(q+1) / 4
				// A severed trajectory always carries a FirstFailCycle, so
				// this covers both failure kinds.
				if r.FirstFailCycle < 0 || r.FirstFailCycle > cp {
					row.Survival[q]++
				}
			}
			removable += int64(r.RemoveEvents)
			detected += int64(r.Detected)
			latency += r.LatencyCycles
			deforms += r.Deformations
			recovers += r.Recoveries
			bandages += r.Bandages
			deviceDefects += r.DeviceDefects
			failures += r.Failures
			blocked += r.BlockedCycles
			distance += r.DistanceCycles
			elapsed += r.ElapsedCycles
			scored += r.ScoredCycles
			reweights += r.Reweights
			reweighted += r.ReweightedCycles
			mismatch += r.MismatchCycles
			rateErr += r.RateErrCycles
			overlayBuilds += r.OverlayDEMBuilds
			if r.Severed {
				row.Severed++
			}
			opsTotal += r.OpsTotal
			opsDone += r.OpsCompleted
			if r.ProgramDone {
				progDone++
			}
			stall += r.StallCycles
			replans += r.Replans
			mergeBlocked += r.MergeBlockedOps
			chanBlocked += r.ChannelBlockedCycles
		}
		trials := float64(len(armRes))
		for q := range row.Survival {
			row.Survival[q] /= trials
		}
		if removable > 0 {
			row.DetectedFrac = float64(detected) / float64(removable)
		}
		row.MeanLatency = -1
		if detected > 0 {
			row.MeanLatency = float64(latency) / float64(detected)
		}
		row.MeanDeformations = float64(deforms) / trials
		row.MeanRecoveries = float64(recovers) / trials
		row.MeanBandages = float64(bandages) / trials
		row.MeanDeviceDefects = float64(deviceDefects) / trials
		if elapsed > 0 {
			row.BlockedFrac = float64(blocked) / float64(elapsed)
			row.MeanDistance = float64(distance) / float64(elapsed)
		}
		if scored > 0 {
			row.FailuresPer1k = 1000 * float64(failures) / float64(scored)
		}
		row.MeanReweights = float64(reweights) / trials
		if elapsed > 0 {
			row.ReweightedFrac = float64(reweighted) / float64(elapsed)
			row.MismatchFrac = float64(mismatch) / float64(elapsed)
		}
		row.MeanRateErr = -1
		if reweighted > 0 {
			row.MeanRateErr = rateErr / float64(reweighted)
		}
		row.MeanOverlayBuilds = float64(overlayBuilds) / trials
		row.MeanOpsTotal = float64(opsTotal) / trials
		row.MeanOpsCompleted = float64(opsDone) / trials
		row.ProgramDoneFrac = float64(progDone) / trials
		row.MeanStallCycles = float64(stall) / trials
		row.MeanReplans = float64(replans) / trials
		row.MeanMergeBlocked = float64(mergeBlocked) / trials
		if elapsed > 0 {
			row.ChannelBlockedFrac = float64(chanBlocked) / float64(elapsed)
		}
		rows[mi] = row
	}
	return rows, nil
}

// trajectoryScanAdaptive runs the arms in barrier-synchronized blocks and
// retires an arm once its failure confidence interval separates from every
// other arm's. The first barrier sits at MinTrials (so no arm can stop on
// fewer trajectories than the floor), later barriers every max(1,
// MinTrials/2) trajectories. Within a block the (arm, index) tasks fan out
// over the point pool like any grid, but a stop decision reads only the
// committed prefixes at a barrier — results every worker schedule has
// fully materialized — so the stopping pattern, and with it every row, is
// bit-identical for any PointWorkers value. A stopped arm's interval stays
// in play at its frozen count: later arms still have to separate from it.
func trajectoryScanAdaptive(opt Options, modes []traj.Mode, results [][]traj.Result, runPoint func(mi, j int) (traj.Result, error)) error {
	minT := opt.MinTrials
	if minT <= 0 {
		minT = DefaultMinTrials
	}
	if minT > opt.Trials {
		minT = opt.Trials
	}
	step := minT / 2
	if step < 1 {
		step = 1
	}
	for mi := range results {
		results[mi] = make([]traj.Result, 0, opt.Trials)
	}
	stopped := make([]bool, len(modes))
	type task struct{ mi, j int }
	for start := 0; start < opt.Trials; {
		end := start + step
		if start == 0 {
			end = minT
		}
		if end > opt.Trials {
			end = opt.Trials
		}
		var tasks []task
		for mi := range modes {
			if stopped[mi] {
				continue
			}
			for j := start; j < end; j++ {
				tasks = append(tasks, task{mi, j})
			}
		}
		if len(tasks) == 0 {
			break
		}
		block := make([]traj.Result, len(tasks))
		err := opt.forEachPoint(len(tasks), func(i int) error {
			res, err := runPoint(tasks[i].mi, tasks[i].j)
			if err != nil {
				return err
			}
			block[i] = res
			return nil
		})
		if err != nil {
			return err
		}
		// Commit in task order: per arm the js are contiguous and ascending,
		// so each prefix stays in trajectory-index order.
		for i, t := range tasks {
			results[t.mi] = append(results[t.mi], block[i])
		}
		if end < opt.Trials {
			lo := make([]float64, len(modes))
			hi := make([]float64, len(modes))
			for mi := range modes {
				lo[mi], hi[mi] = armFailureCI(results[mi])
			}
			for mi := range modes {
				if stopped[mi] {
					continue
				}
				separated := true
				for oi := range modes {
					if oi == mi {
						continue
					}
					if hi[mi] >= lo[oi] && hi[oi] >= lo[mi] {
						separated = false
						break
					}
				}
				if separated {
					stopped[mi] = true
				}
			}
		}
		start = end
	}
	return nil
}

// armFailureCI is the Wilson 95% confidence interval of an arm's failure
// fraction over its committed prefix (a failed trajectory is one with a
// FirstFailCycle).
func armFailureCI(rs []traj.Result) (lo, hi float64) {
	fails := 0
	for _, r := range rs {
		if r.FirstFailCycle >= 0 {
			fails++
		}
	}
	return mc.WilsonInterval(fails, len(rs), mc.DefaultZ)
}

// RenderTraj prints the trajectory-scan comparison table: the closed-loop
// headline columns, then the decoder-prior columns of the reweight tier.
func RenderTraj(w io.Writer, horizon int64, rows []TrajRow) {
	fmt.Fprintf(w, "closed-loop trajectories over %d cycles (survival at quarter horizons)\n", horizon)
	fmt.Fprintf(w, "%-14s %-6s %-26s %-9s %-9s %-8s %-8s %-8s %-7s %-9s %-8s %-9s %-8s %-7s %-9s %-9s %-6s\n",
		"arm", "trajs", "survival T/4 T/2 3T/4 T", "detect%", "latency", "deforms", "bandages", "recovers", "severed", "blocked%", "mean-d", "fail/1k",
		"rewts", "rw%", "mismatch%", "rate-err", "odem")
	for _, r := range rows {
		lat := "-"
		if r.MeanLatency >= 0 {
			lat = fmt.Sprintf("%.1f", r.MeanLatency)
		}
		rerr := "-"
		if r.MeanRateErr >= 0 {
			rerr = fmt.Sprintf("%.4f", r.MeanRateErr)
		}
		fmt.Fprintf(w, "%-14s %-6d %.2f %.2f %.2f %.2f        %-9.0f %-9s %-8.2f %-8.2f %-8.2f %-7d %-9.1f %-8.2f %-9.3f %-8.1f %-7.1f %-9.1f %-9s %-6.1f\n",
			r.Mode, r.Trajectories,
			r.Survival[0], r.Survival[1], r.Survival[2], r.Survival[3],
			100*r.DetectedFrac, lat, r.MeanDeformations, r.MeanBandages, r.MeanRecoveries,
			r.Severed, 100*r.BlockedFrac, r.MeanDistance, r.FailuresPer1k,
			r.MeanReweights, 100*r.ReweightedFrac, 100*r.MismatchFrac, rerr, r.MeanOverlayBuilds)
	}
	router := false
	for _, r := range rows {
		if r.MeanOpsTotal > 0 {
			router = true
			break
		}
	}
	if !router {
		return
	}
	fmt.Fprintf(w, "router (lattice-surgery schedule per trajectory)\n")
	fmt.Fprintf(w, "%-14s %-7s %-11s %-8s %-8s %-8s %-9s\n",
		"arm", "done%", "ops", "stall", "replans", "mrg-blk", "chan-blk%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-7.0f %5.1f/%-5.1f %-8.1f %-8.2f %-8.2f %-9.1f\n",
			r.Mode, 100*r.ProgramDoneFrac, r.MeanOpsCompleted, r.MeanOpsTotal,
			r.MeanStallCycles, r.MeanReplans, r.MeanMergeBlocked, 100*r.ChannelBlockedFrac)
	}
}

// TrajTable converts trajectory-scan rows for CSV/JSON export.
func TrajTable(rows []TrajRow) *report.Table {
	t := report.New("traj", "mode", "trajectories",
		"survival_q1", "survival_q2", "survival_q3", "survival_q4",
		"detected_frac", "mean_latency", "mean_deformations", "mean_recoveries",
		"mean_bandages", "mean_device_defects",
		"severed", "blocked_frac", "mean_distance", "failures_per_1k",
		"mean_reweights", "reweighted_frac", "mismatch_frac", "mean_rate_err",
		"mean_overlay_dem_builds",
		"mean_ops_total", "mean_ops_completed", "program_done_frac",
		"mean_stall_cycles", "mean_replans", "mean_merge_blocked",
		"channel_blocked_frac")
	for _, r := range rows {
		t.Add(r.Mode, r.Trajectories,
			r.Survival[0], r.Survival[1], r.Survival[2], r.Survival[3],
			r.DetectedFrac, r.MeanLatency, r.MeanDeformations, r.MeanRecoveries,
			r.MeanBandages, r.MeanDeviceDefects,
			r.Severed, r.BlockedFrac, r.MeanDistance, r.FailuresPer1k,
			r.MeanReweights, r.ReweightedFrac, r.MismatchFrac, r.MeanRateErr,
			r.MeanOverlayBuilds,
			r.MeanOpsTotal, r.MeanOpsCompleted, r.ProgramDoneFrac,
			r.MeanStallCycles, r.MeanReplans, r.MeanMergeBlocked,
			r.ChannelBlockedFrac)
	}
	return t
}
