package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetectionPipeline(t *testing.T) {
	opt := QuickOptions()
	opt.Trials = 12
	res, err := DetectionPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == 0 {
		t.Fatal("a 50% defect region must be detectable from the syndrome stream")
	}
	// A region erroring at 50% fires its checks almost every round; the
	// window detector should catch it within roughly one window.
	if res.DetectionLatency < 0 || res.DetectionLatency > 14 {
		t.Errorf("detection latency %.1f rounds implausible", res.DetectionLatency)
	}
	if res.Recall < 0.3 {
		t.Errorf("region recall %.2f too low; detector misses the defect footprint", res.Recall)
	}
	if res.Precision < 0.2 {
		t.Errorf("region precision %.2f too low; detector flags the whole patch", res.Precision)
	}
	if res.DistanceAfter < 2 {
		t.Errorf("mitigated distance %.2f collapsed", res.DistanceAfter)
	}
	var buf bytes.Buffer
	RenderPipeline(&buf, res)
	if !strings.Contains(buf.String(), "detection latency") {
		t.Error("render missing content")
	}
}
