package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetectionPipeline(t *testing.T) {
	opt := QuickOptions()
	opt.Trials = 12
	res, err := DetectionPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == 0 {
		t.Fatal("a 50% defect region must be detectable from the syndrome stream")
	}
	// A region erroring at 50% fires its checks almost every round; the
	// window detector should catch it within roughly one window.
	if res.DetectionLatency < 0 || res.DetectionLatency > 14 {
		t.Errorf("detection latency %.1f rounds implausible", res.DetectionLatency)
	}
	if res.Recall < 0.3 {
		t.Errorf("region recall %.2f too low; detector misses the defect footprint", res.Recall)
	}
	if res.Precision < 0.2 {
		t.Errorf("region precision %.2f too low; detector flags the whole patch", res.Precision)
	}
	if res.DistanceAfter < 2 {
		t.Errorf("mitigated distance %.2f collapsed", res.DistanceAfter)
	}
	var buf bytes.Buffer
	RenderPipeline(&buf, res)
	if !strings.Contains(buf.String(), "detection latency") {
		t.Error("render missing content")
	}
}

func TestMemorySweep(t *testing.T) {
	opt := QuickOptions()
	grid := DefaultSweepGrid(opt)
	if len(grid) == 0 {
		t.Fatal("empty sweep grid")
	}
	rows, err := MemorySweep(opt, grid, SweepEngine{TargetRSE: 0.25, MaxShots: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(grid) {
		t.Fatalf("got %d rows for %d grid points", len(rows), len(grid))
	}
	for _, r := range rows {
		if r.Severed {
			continue
		}
		if r.NumDefects == 0 && r.DistanceAfter != r.D {
			t.Errorf("defect-free point d=%d reports distance %d", r.D, r.DistanceAfter)
		}
		if r.PerRound < 0 || r.PerRound > 0.5 {
			t.Errorf("per-round rate %v out of range", r.PerRound)
		}
	}
	var buf bytes.Buffer
	RenderSweep(&buf, rows)
	if !strings.Contains(buf.String(), "surf-deformer") {
		t.Error("render missing policy names")
	}
}

// The sweep is a pure function of (options, grid): repeating it — with a
// different engine worker count — reproduces every count exactly.
func TestMemorySweepDeterministic(t *testing.T) {
	opt := QuickOptions()
	grid := DefaultSweepGrid(opt)
	a, err := MemorySweep(opt, grid, SweepEngine{Workers: 1, MaxShots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MemorySweep(opt, grid, SweepEngine{Workers: 4, MaxShots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Failures != b[i].Failures || a[i].Shots != b[i].Shots || a[i].Severed != b[i].Severed {
			t.Errorf("point %d: workers=1 gives (%d/%d), workers=4 gives (%d/%d)",
				i, a[i].Failures, a[i].Shots, b[i].Failures, b[i].Shots)
		}
	}

	// A point's result is a function of its content, not its grid
	// position: a reversed grid reproduces every row.
	rev := make([]SweepPoint, len(grid))
	for i, pt := range grid {
		rev[len(grid)-1-i] = pt
	}
	c, err := MemorySweep(opt, rev, SweepEngine{MaxShots: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		j := len(a) - 1 - i
		if a[i].SweepPoint != c[j].SweepPoint || a[i].Failures != c[j].Failures || a[i].Severed != c[j].Severed {
			t.Errorf("point %+v: forward gives %d failures, reversed gives %d",
				a[i].SweepPoint, a[i].Failures, c[j].Failures)
		}
	}
}
