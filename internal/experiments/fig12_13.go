package experiments

import (
	"fmt"
	"io"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/estimator"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/program"
)

// ---------------------------------------------------------------------------
// Fig. 12: physical qubits to reach ≈1% retry risk
// ---------------------------------------------------------------------------

// Fig12Row is one benchmark × scheme bar of the resource comparison.
type Fig12Row struct {
	Program *program.Program
	Scheme  layout.Scheme
	D       int
	Qubits  int
	Risk    float64
	Reached bool
}

// fig12Config is the store identity of one (benchmark, scheme) point.
type fig12Config struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Trials    int    `json:"trials"`
	Seed      int64  `json:"seed"`
	FitLosses bool   `json:"fit_losses,omitempty"`
}

// fig12Payload is the stored result of one point; the identity fields
// (benchmark, scheme) come from the grid point itself.
type fig12Payload struct {
	D       int     `json:"d"`
	Qubits  int     `json:"qubits"`
	Risk    float64 `json:"risk"`
	Reached bool    `json:"reached"`
}

// Fig12 searches, per scheme, the minimal code distance meeting a 1% retry
// risk and reports the physical qubits of the resulting layout. Lattice
// surgery (no mitigation) and Q3DE* (2d spacing) are included per the
// paper's revised comparison. (benchmark, scheme) points run on the
// point-level pool, each on its own derived defect-timeline stream.
func Fig12(opt Options) ([]Fig12Row, error) {
	dm, lm, fws := estimators(opt)
	benches := []*program.Program{
		program.Simon(900, 1500),
		program.RCA(729, 100),
		program.QFT(100, 20),
		program.Grover(16, 2),
	}
	if opt.Quick {
		benches = benches[:1]
	}
	schemes := []layout.Scheme{layout.LatticeSurgery, layout.Q3DEStar, layout.ASCS, layout.SurfDeformer}
	deltaDFor := func(d int) int { return layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock) }
	maxD := 61
	type point struct {
		prog   *program.Program
		scheme layout.Scheme
	}
	var grid []point
	for _, prog := range benches {
		for _, scheme := range schemes {
			grid = append(grid, point{prog, scheme})
		}
	}
	rows := make([]Fig12Row, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := fig12Config{Benchmark: pt.prog.Name, Scheme: pt.scheme.String(),
			Trials: opt.Trials, Seed: opt.Seed, FitLosses: opt.FitLosses}
		pay, err := cachedRow(opt, "fig12", cfg, func() (fig12Payload, error) {
			rng := opt.pointRNG(kindFig12, mc.StringSeed(pt.prog.Name), int64(pt.scheme))
			est, ok := estimator.MinimalDistance(pt.prog, fws[pt.scheme], 0.01, deltaDFor, dm, lm, opt.Trials, maxD, rng)
			return fig12Payload{D: est.D, Qubits: est.PhysicalQubits, Risk: est.RetryRisk, Reached: ok}, nil
		})
		if err != nil {
			return err
		}
		rows[i] = Fig12Row{Program: pt.prog, Scheme: pt.scheme,
			D: pay.D, Qubits: pay.Qubits, Risk: pay.Risk, Reached: pay.Reached}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig12 prints the bars.
func RenderFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "%-16s %-16s %-4s %-14s %-10s %s\n", "benchmark", "scheme", "d", "#qubits", "risk", "met-1%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-16s %-4d %-14.3e %-10.4f %v\n",
			r.Program.Name, r.Scheme, r.D, float64(r.Qubits), r.Risk, r.Reached)
	}
}

// ---------------------------------------------------------------------------
// Fig. 13a: retry-risk vs qubit-count trade-off
// ---------------------------------------------------------------------------

// Fig13aRow is one point of the trade-off curve.
type Fig13aRow struct {
	Scheme layout.Scheme
	D      int
	Qubits int
	Risk   float64
}

// fig13aConfig is the store identity of one (d, scheme) point.
type fig13aConfig struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	D         int    `json:"d"`
	Trials    int    `json:"trials"`
	Seed      int64  `json:"seed"`
	FitLosses bool   `json:"fit_losses,omitempty"`
}

type fig13aPayload struct {
	Qubits int     `json:"qubits"`
	Risk   float64 `json:"risk"`
}

// Fig13a sweeps the code distance and reports the (physical qubits, retry
// risk) trade-off line of ASC-S versus Surf-Deformer, one pooled point per
// (d, scheme).
func Fig13a(opt Options) ([]Fig13aRow, error) {
	dm, lm, fws := estimators(opt)
	prog := program.Simon(900, 1500)
	ds := []int{17, 19, 21, 23, 25}
	if opt.Quick {
		ds = []int{19, 23}
	}
	type point struct {
		d      int
		scheme layout.Scheme
	}
	var grid []point
	for _, d := range ds {
		for _, scheme := range []layout.Scheme{layout.ASCS, layout.SurfDeformer} {
			grid = append(grid, point{d, scheme})
		}
	}
	rows := make([]Fig13aRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := fig13aConfig{Benchmark: prog.Name, Scheme: pt.scheme.String(), D: pt.d,
			Trials: opt.Trials, Seed: opt.Seed, FitLosses: opt.FitLosses}
		pay, err := cachedRow(opt, "fig13a", cfg, func() (fig13aPayload, error) {
			deltaD := layout.ChooseDeltaD(dm, pt.d, layout.DefaultAlphaBlock)
			rng := opt.pointRNG(kindFig13a, int64(pt.d), int64(pt.scheme))
			est := estimator.EstimateProgram(prog, fws[pt.scheme], pt.d, deltaD, dm, lm, opt.Trials, rng)
			return fig13aPayload{Qubits: est.PhysicalQubits, Risk: est.RetryRisk}, nil
		})
		if err != nil {
			return err
		}
		rows[i] = Fig13aRow{Scheme: pt.scheme, D: pt.d, Qubits: pay.Qubits, Risk: pay.Risk}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig13a prints the trade-off lines.
func RenderFig13a(w io.Writer, rows []Fig13aRow) {
	fmt.Fprintf(w, "%-16s %-4s %-14s %-10s\n", "scheme", "d", "#qubits", "risk")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-4d %-14.3e %-10.5f\n", r.Scheme, r.D, float64(r.Qubits), r.Risk)
	}
}

// ---------------------------------------------------------------------------
// Fig. 13b: chiplet yield under static faults
// ---------------------------------------------------------------------------

// Fig13bRow is one yield measurement.
type Fig13bRow struct {
	NumFaults int
	ASCYield  float64
	SurfYield float64
}

// Fig13b measures the yield of deforming an l-sized patch with k static
// faulty qubits into a code of distance ≥ target: the fraction of fault
// patterns for which the deformed patch still meets the target distance.
// The paper uses l = 35 → target 27; Quick mode scales down. Fault counts
// run as pooled points, each with its own derived fault-pattern stream.
func Fig13b(opt Options) ([]Fig13bRow, error) {
	l, target := 35, 27
	counts := []int{0, 10, 20, 30, 40}
	samples := opt.Trials / 4
	if opt.Quick {
		l, target = 15, 11
		counts = []int{0, 6, 12}
		samples = 6
	}
	if samples < 3 {
		samples = 3
	}
	rows := make([]Fig13bRow, len(counts))
	err := opt.forEachPoint(len(counts), func(i int) error {
		k := counts[i]
		rng := opt.pointRNG(kindFig13b, int64(l), int64(k))
		ascOK, surfOK := 0, 0
		for s := 0; s < samples; s++ {
			base := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, l)
			min, max := base.Bounds()
			faults := defect.StaticFaults(min, max, k, rng)
			if removalDistance(faults, l, deform.PolicyASC) >= target {
				ascOK++
			}
			if removalDistance(faults, l, deform.PolicySurfDeformer) >= target {
				surfOK++
			}
		}
		rows[i] = Fig13bRow{
			NumFaults: k,
			ASCYield:  float64(ascOK) / float64(samples),
			SurfYield: float64(surfOK) / float64(samples),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig13b prints the yield curves.
func RenderFig13b(w io.Writer, rows []Fig13bRow) {
	fmt.Fprintf(w, "%-10s %-10s %-10s\n", "#faults", "asc-s", "surf-deformer")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %-10.2f %-10.2f\n", r.NumFaults, r.ASCYield, r.SurfYield)
	}
}
