package experiments

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"surfdeformer/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// The satellite regression for the old shared-rng bug: every grid
// experiment must produce identical rows whether points run serially or on
// a parallel pool, because each point seeds itself from its own content.
func TestSerialParallelEquality(t *testing.T) {
	serial := QuickOptions()
	parallel := QuickOptions()
	parallel.PointWorkers = 4

	t.Run("MemorySweep", func(t *testing.T) {
		grid := DefaultSweepGrid(serial)
		a, err := MemorySweep(serial, grid, SweepEngine{MaxShots: 1000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MemorySweep(parallel, grid, SweepEngine{MaxShots: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sweep rows differ across point-worker counts:\n%+v\n%+v", a, b)
		}
	})
	t.Run("Fig11a", func(t *testing.T) {
		a, err := Fig11a(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig11a(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("fig11a rows differ across point-worker counts:\n%+v\n%+v", a, b)
		}
	})
	t.Run("Fig11c", func(t *testing.T) {
		a, err := Fig11c(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig11c(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("fig11c rows differ across point-worker counts:\n%+v\n%+v", a, b)
		}
	})
	t.Run("Table2", func(t *testing.T) {
		a, err := Table2(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Table2(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("table2 rows differ across point-worker counts:\n%+v\n%+v", a, b)
		}
	})
}

// Resume must compute only the points missing from the store and still
// render a table byte-identical to an uninterrupted serial run.
func TestResumeSkipsCompletedSweepPoints(t *testing.T) {
	base := QuickOptions()
	grid := DefaultSweepGrid(base)
	if len(grid) < 3 {
		t.Fatalf("quick grid too small for the test: %d points", len(grid))
	}
	eng := SweepEngine{MaxShots: 1000}

	fresh, err := MemorySweep(base, grid, eng)
	if err != nil {
		t.Fatal(err)
	}
	mcPoints := 0 // severed points never reach the store
	for _, r := range fresh {
		if !r.Severed {
			mcPoints++
		}
	}

	// "Interrupted" session: only a prefix of the grid lands in the store.
	st := testStore(t)
	interrupted := base
	interrupted.Store = st
	interrupted.Stats = &RunStats{}
	prefix := grid[:len(grid)/2]
	if _, err := MemorySweep(interrupted, prefix, eng); err != nil {
		t.Fatal(err)
	}
	stored := st.Len()
	if stored == 0 {
		t.Fatal("interrupted session stored nothing")
	}

	// Resumed session over the full grid, parallel for good measure.
	resumed := base
	resumed.Store = st
	resumed.Resume = true
	resumed.PointWorkers = 4
	resumed.Stats = &RunStats{}
	rows, err := MemorySweep(resumed, grid, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Stats.Skipped(); got != stored {
		t.Errorf("resume skipped %d points, want %d (the stored ones)", got, stored)
	}
	if got := resumed.Stats.Computed(); got != mcPoints-stored {
		t.Errorf("resume computed %d points, want %d", got, mcPoints-stored)
	}
	if !reflect.DeepEqual(rows, fresh) {
		t.Fatalf("resumed rows diverge from uninterrupted run:\n%+v\n%+v", rows, fresh)
	}
	var a, b bytes.Buffer
	RenderSweep(&a, fresh)
	RenderSweep(&b, rows)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed table is not byte-identical to the uninterrupted one")
	}

	// A second full resume computes nothing at all.
	again := resumed
	again.Stats = &RunStats{}
	rows2, err := MemorySweep(again, grid, eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Stats.Computed(); got != 0 {
		t.Errorf("fully-stored resume recomputed %d points", got)
	}
	if !reflect.DeepEqual(rows2, fresh) {
		t.Fatal("fully-stored resume diverges from uninterrupted run")
	}
}

// Trial-style experiments (whole-row payloads) must also resume to
// byte-identical output.
func TestResumeTrialStyleRows(t *testing.T) {
	st := testStore(t)
	first := QuickOptions()
	first.Store = st
	first.Stats = &RunStats{}
	fresh, err := Fig11c(first)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Computed() != len(fresh) || first.Stats.Skipped() != 0 {
		t.Fatalf("first run stats wrong: %d computed, %d skipped", first.Stats.Computed(), first.Stats.Skipped())
	}
	second := first
	second.Resume = true
	second.Stats = &RunStats{}
	rows, err := Fig11c(second)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Computed() != 0 || second.Stats.Skipped() != len(fresh) {
		t.Fatalf("resume stats wrong: %d computed, %d skipped", second.Stats.Computed(), second.Stats.Skipped())
	}
	if !reflect.DeepEqual(rows, fresh) {
		t.Fatal("resumed fig11c rows diverge")
	}
	var a, b bytes.Buffer
	RenderFig11c(&a, fresh)
	RenderFig11c(&b, rows)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed fig11c table not byte-identical")
	}
}
