package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/route"
)

// Fig11cRow is one point of the throughput study: a task set at one defect
// rate under one layout scheme.
type Fig11cRow struct {
	TaskSet    int
	DefectRate float64 // defect events per qubit per cycle
	Scheme     layout.Scheme
	Throughput float64
	Stalls     int
}

// Fig11c measures communication throughput on the Surf-Deformer layout
// versus Q3DE's fixed layout across defect rates, for three task sets of
// increasing serialization, against the no-defect lattice-surgery optimum.
//
// Per the paper: 100 logical qubits; each task set has 5 tasks of 25 CNOTs
// over 50 distinct logical qubits; defects are sampled repeatedly and the
// mean throughput reported. A struck patch under Q3DE doubles and blocks
// its channels for the defect duration (here: the whole task-set window);
// under Surf-Deformer a patch only blocks when more events strike it than
// the Δd reserve absorbs.
func Fig11c(opt Options) ([]Fig11cRow, error) {
	nQubits := 100
	gridSide := 10
	rates := []float64{0, 0.5e-4, 1e-4, 1.5e-4, 2e-4}
	samples := opt.Trials
	if opt.Quick {
		rates = []float64{0, 1e-4, 2e-4}
		samples = 10
	}
	d := 21
	dm := defect.Paper()
	deltaD := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)
	defectSize := 2 * dm.Radius
	patchQubits := 2 * d * d
	// The sweep's x-axis is the defect event rate per qubit per second;
	// the task set is exposed to strikes over this window (events persist
	// for the whole set, so strikes accumulate).
	const exposureSeconds = 2.0

	rng := opt.rng()
	var rows []Fig11cRow
	for setIdx := 0; setIdx < 3; setIdx++ {
		ops := taskSet(setIdx, gridSide, rng)
		for _, rate := range rates {
			for _, scheme := range []layout.Scheme{layout.SurfDeformer, layout.Q3DE} {
				thSum := 0.0
				stalls := 0
				for s := 0; s < samples; s++ {
					grid := route.NewGrid(gridSide, gridSide)
					// Strikes per patch over the window.
					lambda := rate * float64(patchQubits) * exposureSeconds
					for cell := 0; cell < nQubits; cell++ {
						strikes := samplePoisson(lambda, rng)
						if strikes == 0 {
							continue
						}
						switch scheme {
						case layout.Q3DE:
							grid.SetBlocked(cell, true)
						case layout.SurfDeformer:
							if strikes > deltaD/defectSize {
								grid.SetBlocked(cell, true)
							}
						}
					}
					res := grid.RunTasks(ops, 600, rng)
					thSum += res.Throughput
					if res.Stalled {
						stalls++
					}
				}
				rows = append(rows, Fig11cRow{
					TaskSet:    setIdx + 1,
					DefectRate: rate,
					Scheme:     scheme,
					Throughput: thSum / float64(samples),
					Stalls:     stalls,
				})
			}
		}
	}
	return rows, nil
}

// taskSet builds the three workloads of increasing serialization: 5 tasks ×
// 25 CNOTs over 50 distinct qubits. Higher set indices reuse qubits across
// consecutive operations more, lengthening the critical path (the paper's
// 16/19/22-step parallelism levels).
func taskSet(level, gridSide int, rng *rand.Rand) []route.CNOT {
	n := gridSide * gridSide
	perm := rng.Perm(n)[:50]
	var ops []route.CNOT
	for task := 0; task < 5; task++ {
		qubits := perm[task*10:] // tasks share tails of the qubit list
		if len(qubits) > 10+level*5 {
			qubits = qubits[:10+level*5]
		}
		for i := 0; i < 25; i++ {
			a := qubits[i%len(qubits)]
			b := qubits[(i+1+level)%len(qubits)]
			if a == b {
				b = qubits[(i+2+level)%len(qubits)]
			}
			ops = append(ops, route.CNOT{Control: a, Target: b})
		}
	}
	return ops
}

func samplePoisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	// Inversion; the rates of this study keep λ small.
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// RenderFig11c prints the throughput series.
func RenderFig11c(w io.Writer, rows []Fig11cRow) {
	fmt.Fprintf(w, "%-8s %-12s %-16s %-12s %-8s\n", "taskset", "defect-rate", "scheme", "throughput", "stalls")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-12.1e %-16s %-12.3f %-8d\n", r.TaskSet, r.DefectRate, r.Scheme, r.Throughput, r.Stalls)
	}
}
