package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/route"
)

// Fig11cRow is one point of the throughput study: a task set at one defect
// rate under one layout scheme.
type Fig11cRow struct {
	TaskSet    int
	DefectRate float64 // defect events per qubit per cycle
	Scheme     layout.Scheme
	Throughput float64
	Stalls     int
}

// fig11cConfig is the store identity of one (task set, rate, scheme) point.
// Rev tracks semantic changes to the point computation: rev 1 made the
// router deterministic (RNG-free tie-breaks), shifting which contended
// operations route first, so rev-0 rows must not be served.
type fig11cConfig struct {
	TaskSet int     `json:"task_set"`
	Rate    float64 `json:"rate"`
	Scheme  string  `json:"scheme"`
	Samples int     `json:"samples"`
	Seed    int64   `json:"seed"`
	Rev     int     `json:"rev,omitempty"`
}

// Fig11c measures communication throughput on the Surf-Deformer layout
// versus Q3DE's fixed layout across defect rates, for three task sets of
// increasing serialization, against the no-defect lattice-surgery optimum.
//
// Per the paper: 100 logical qubits; each task set has 5 tasks of 25 CNOTs
// over 50 distinct logical qubits; defects are sampled repeatedly and the
// mean throughput reported. A struck patch under Q3DE doubles and blocks
// its channels for the defect duration (here: the whole task-set window);
// under Surf-Deformer a patch only blocks when more events strike it than
// the Δd reserve absorbs.
//
// Grid points run on the point-level pool. A task set's operation list is
// derived from (Seed, set) alone so every (rate, scheme) point of a set
// routes the identical workload; each point's strike sampling derives from
// its own content.
func Fig11c(opt Options) ([]Fig11cRow, error) {
	nQubits := 100
	gridSide := 10
	rates := []float64{0, 0.5e-4, 1e-4, 1.5e-4, 2e-4}
	samples := opt.Trials
	if opt.Quick {
		rates = []float64{0, 1e-4, 2e-4}
		samples = 10
	}
	d := 21
	dm := defect.Paper()
	deltaD := layout.ChooseDeltaD(dm, d, layout.DefaultAlphaBlock)
	defectSize := 2 * dm.Radius
	patchQubits := 2 * d * d
	// The sweep's x-axis is the defect event rate per qubit per second;
	// the task set is exposed to strikes over this window (events persist
	// for the whole set, so strikes accumulate).
	const exposureSeconds = 2.0

	type point struct {
		set    int
		rate   float64
		scheme layout.Scheme
	}
	var grid []point
	for setIdx := 0; setIdx < 3; setIdx++ {
		for _, rate := range rates {
			for _, scheme := range []layout.Scheme{layout.SurfDeformer, layout.Q3DE} {
				grid = append(grid, point{set: setIdx, rate: rate, scheme: scheme})
			}
		}
	}
	rows := make([]Fig11cRow, len(grid))
	err := opt.forEachPoint(len(grid), func(i int) error {
		pt := grid[i]
		cfg := fig11cConfig{TaskSet: pt.set + 1, Rate: pt.rate, Scheme: pt.scheme.String(),
			Samples: samples, Seed: opt.Seed, Rev: 1}
		row, err := cachedRow(opt, "fig11c", cfg, func() (Fig11cRow, error) {
			ops := taskSet(pt.set, gridSide, opt.pointRNG(kindFig11c, int64(pt.set)))
			// The stream derives from the rate VALUE so a point's result
			// survives reordering or subsetting the rates grid.
			rng := opt.pointRNG(kindFig11c, int64(pt.set), int64(math.Round(pt.rate*1e9)), int64(pt.scheme))
			thSum := 0.0
			stalls := 0
			for s := 0; s < samples; s++ {
				grid := route.NewGrid(gridSide, gridSide)
				// Strikes per patch over the window.
				lambda := pt.rate * float64(patchQubits) * exposureSeconds
				for cell := 0; cell < nQubits; cell++ {
					strikes := samplePoisson(lambda, rng)
					if strikes == 0 {
						continue
					}
					switch pt.scheme {
					case layout.Q3DE:
						grid.SetBlocked(cell, true)
					case layout.SurfDeformer:
						if strikes > deltaD/defectSize {
							grid.SetBlocked(cell, true)
						}
					}
				}
				res := grid.RunTasks(ops, 600)
				thSum += res.Throughput
				if res.Stalled {
					stalls++
				}
			}
			return Fig11cRow{
				TaskSet:    pt.set + 1,
				DefectRate: pt.rate,
				Scheme:     pt.scheme,
				Throughput: thSum / float64(samples),
				Stalls:     stalls,
			}, nil
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// taskSet builds the three workloads of increasing serialization: 5 tasks ×
// 25 CNOTs over 50 distinct qubits. Higher set indices reuse qubits across
// consecutive operations more, lengthening the critical path (the paper's
// 16/19/22-step parallelism levels).
func taskSet(level, gridSide int, rng *rand.Rand) []route.CNOT {
	n := gridSide * gridSide
	perm := rng.Perm(n)[:50]
	var ops []route.CNOT
	for task := 0; task < 5; task++ {
		qubits := perm[task*10:] // tasks share tails of the qubit list
		if len(qubits) > 10+level*5 {
			qubits = qubits[:10+level*5]
		}
		for i := 0; i < 25; i++ {
			a := qubits[i%len(qubits)]
			b := qubits[(i+1+level)%len(qubits)]
			if a == b {
				b = qubits[(i+2+level)%len(qubits)]
			}
			ops = append(ops, route.CNOT{Control: a, Target: b})
		}
	}
	return ops
}

func samplePoisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	// Inversion; the rates of this study keep λ small.
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// RenderFig11c prints the throughput series.
func RenderFig11c(w io.Writer, rows []Fig11cRow) {
	fmt.Fprintf(w, "%-8s %-12s %-16s %-12s %-8s\n", "taskset", "defect-rate", "scheme", "throughput", "stalls")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-12.1e %-16s %-12.3f %-8d\n", r.TaskSet, r.DefectRate, r.Scheme, r.Throughput, r.Stalls)
	}
}
