package experiments

import (
	"bytes"
	"strings"
	"testing"

	"surfdeformer/internal/layout"
)

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Lattice Surgery", "Q3DE", "ASC-S", "Surf-Deformer",
		"DataQ_RM", "SyndromeQ_RM", "PatchQ_RM", "PatchQ_ADD", "Adaptive enlargement"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig11aShape(t *testing.T) {
	rows, err := Fig11a(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper claim: removal keeps the logical error rate well below the
	// untreated defective code. Individual quick-scale points are noisy
	// (a lone defective *syndrome* qubit barely hurts an uninformed
	// decoder), so assert per-point with slack and strictly in aggregate.
	var removed, untreated float64
	for _, r := range rows {
		if r.RemovedLE > 2*r.UntreatedLE+1e-3 {
			t.Errorf("d=%d k=%d: removed %.3e far worse than untreated %.3e",
				r.D, r.NumDefects, r.RemovedLE, r.UntreatedLE)
		}
		removed += r.RemovedLE
		untreated += r.UntreatedLE
	}
	if removed > untreated {
		t.Errorf("aggregate removed %.3e exceeds untreated %.3e", removed, untreated)
	}
	var buf bytes.Buffer
	RenderFig11a(&buf, rows)
	if !strings.Contains(buf.String(), "untreated") {
		t.Error("render missing header")
	}
}

func TestFig11bShape(t *testing.T) {
	rows, err := Fig11b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper claim: Surf-Deformer preserves at least as much distance
		// as ASC-S for every defect count.
		if r.SurfMean < r.ASCMean {
			t.Errorf("d=%d k=%d: surf %.2f below asc %.2f", r.D, r.NumDefects, r.SurfMean, r.ASCMean)
		}
		if r.SurfMean > float64(r.D) {
			t.Errorf("distance %.2f exceeds original %d", r.SurfMean, r.D)
		}
	}
	// More defects must not increase remaining distance (within one d).
	byD := map[int][]Fig11bRow{}
	for _, r := range rows {
		byD[r.D] = append(byD[r.D], r)
	}
	for d, rs := range byD {
		for i := 1; i < len(rs); i++ {
			if rs[i].SurfMean > rs[i-1].SurfMean+1.0 {
				t.Errorf("d=%d: distance grew with more defects: %v", d, rs)
			}
		}
	}
}

func TestFig11cShape(t *testing.T) {
	rows, err := Fig11c(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At zero defect rate both schemes match the defect-free optimum; at
	// the top rate Q3DE's throughput must fall below Surf-Deformer's.
	type key struct {
		set    int
		scheme layout.Scheme
	}
	atRate := map[float64]map[key]float64{}
	for _, r := range rows {
		if atRate[r.DefectRate] == nil {
			atRate[r.DefectRate] = map[key]float64{}
		}
		atRate[r.DefectRate][key{r.TaskSet, r.Scheme}] = r.Throughput
	}
	top := 2e-4
	worseCount := 0
	for set := 1; set <= 3; set++ {
		surf := atRate[top][key{set, layout.SurfDeformer}]
		q3de := atRate[top][key{set, layout.Q3DE}]
		if q3de < surf {
			worseCount++
		}
	}
	if worseCount < 2 {
		t.Errorf("Q3DE should lose throughput at high defect rate in most task sets (lost in %d of 3)", worseCount)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.Q3DEOverRuntime {
			t.Errorf("%s d=%d: Q3DE must be OverRuntime", r.Program.Name, r.D)
		}
		if r.SurfRetryRisk >= r.ASCRetryRisk {
			t.Errorf("%s d=%d: surf risk %.4f not below asc %.4f",
				r.Program.Name, r.D, r.SurfRetryRisk, r.ASCRetryRisk)
		}
		// Qubit accounting: Surf ≈ 1.2x ASC; Q3DE equals ASC (same layout).
		ratio := float64(r.SurfQubits) / float64(r.ASCQubits)
		if ratio < 1.05 || ratio > 1.45 {
			t.Errorf("%s d=%d: surf/asc qubit ratio %.3f out of range", r.Program.Name, r.D, ratio)
		}
		if r.Q3DEQubits != r.ASCQubits {
			t.Errorf("Q3DE and ASC share the d-spacing layout")
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "OverRuntime") {
		t.Error("rendered table must show OverRuntime")
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[layout.Scheme]Fig12Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	surf := byScheme[layout.SurfDeformer]
	if !surf.Reached {
		t.Fatal("Surf-Deformer must reach 1% retry risk")
	}
	// Paper: Surf-Deformer needs fewer qubits than Q3DE* and LS.
	if q3s := byScheme[layout.Q3DEStar]; q3s.Reached && q3s.Qubits < surf.Qubits {
		t.Errorf("Q3DE* (%d) should need more qubits than Surf (%d)", q3s.Qubits, surf.Qubits)
	}
	if ls := byScheme[layout.LatticeSurgery]; ls.Reached && ls.Qubits < surf.Qubits {
		t.Errorf("LS (%d) should need more qubits than Surf (%d)", ls.Qubits, surf.Qubits)
	}
}

func TestFig13aShape(t *testing.T) {
	rows, err := Fig13a(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At matching d, Surf achieves lower risk at moderately more qubits.
	byKey := map[string]Fig13aRow{}
	for _, r := range rows {
		byKey[r.Scheme.String()+string(rune(r.D))] = r
	}
	for _, d := range []int{19, 23} {
		asc := byKey[layout.ASCS.String()+string(rune(d))]
		surf := byKey[layout.SurfDeformer.String()+string(rune(d))]
		if surf.Risk >= asc.Risk {
			t.Errorf("d=%d: surf risk %.5f not below asc %.5f", d, surf.Risk, asc.Risk)
		}
	}
}

func TestFig13bShape(t *testing.T) {
	rows, err := Fig13b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].NumFaults != 0 || rows[0].SurfYield < 0.99 {
		t.Errorf("zero faults must give full yield, got %v", rows[0])
	}
	for _, r := range rows {
		if r.SurfYield < r.ASCYield-1e-9 {
			t.Errorf("k=%d: surf yield %.2f below asc %.2f", r.NumFaults, r.SurfYield, r.ASCYield)
		}
	}
	last := rows[len(rows)-1]
	if last.SurfYield > rows[0].SurfYield {
		t.Error("yield should not improve with more faults")
	}
}

func TestFig14aShape(t *testing.T) {
	rows, err := Fig14a(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At quick scale (d=5) individual points are noisy — a removed pair of
	// qubits costs real distance. The paper's claim is aggregate: removal
	// retains its advantage as the correlated rate grows.
	var removed, untreated float64
	for _, r := range rows {
		if r.RemovedLE > 2*r.UntreatedLE+1e-3 {
			t.Errorf("pc=%.0e k=%d: removed %.3e far worse than untreated %.3e",
				r.PCorrelated, r.NumDefects, r.RemovedLE, r.UntreatedLE)
		}
		removed += r.RemovedLE
		untreated += r.UntreatedLE
	}
	if removed > untreated {
		t.Errorf("aggregate removed %.3e exceeds untreated %.3e", removed, untreated)
	}
}

func TestFig14bShape(t *testing.T) {
	rows, err := Fig14b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's robustness claim is about the aggregate behaviour:
	// imprecise detection tracks precise detection and stays at or below
	// the untreated code. Individual tiny-scale points are noisy (a false
	// positive on a d=5 patch costs real distance), so assert on sums.
	var untreated, precise, imprecise float64
	for _, r := range rows {
		untreated += r.UntreatedLE
		precise += r.PreciseLE
		imprecise += r.ImpreciseLE
	}
	if imprecise > 2*untreated {
		t.Errorf("imprecise total %.3e should not exceed 2x untreated total %.3e", imprecise, untreated)
	}
	if precise > untreated {
		t.Errorf("precise removal total %.3e worse than untreated %.3e", precise, untreated)
	}
}
