// Package program models the benchmark quantum programs of the evaluation
// (§VII-A): Simon's algorithm, the Takahashi–Kunihiro ripple-carry adder
// (RCA), the approximate quantum Fourier transform (QFT) and Grover search.
// Each program is summarized by the quantities the retry-risk estimator
// consumes: logical qubit count, logical CNOT count, logical T count, and
// the lattice-surgery schedule length.
package program

import (
	"fmt"
	"math"
)

// Program is one benchmark instance.
type Program struct {
	Name    string
	Qubits  int   // algorithmic logical qubits
	Reps    int   // repetitions (second suffix in the paper's naming)
	CX      int64 // total logical CNOT count
	T       int64 // total logical T count
	Derived bool  // true when counts come from formulas rather than Table II
}

// Table II of the paper fixes the gate counts of the eight evaluated
// configurations; the constructors below reproduce them exactly and
// generalize by formula elsewhere.
var paperCounts = map[string][2]int64{
	// name -> {CX, T}
	"simon-400-1000": {302000, 0},
	"simon-900-1500": {1010000, 0},
	"rca-225-500":    {896000, 784000},
	"rca-729-100":    {582000, 510000},
	"qft-25-160":     {102000, 187000000},
	"qft-100-20":     {230000, 1580000000},
	"grover-9-80":    {136000, 199000000},
	"grover-16-2":    {429000, 1130000000},
}

// Simon returns Simon's algorithm on n qubits repeated r times. The oracle
// uses ≈0.75·n CNOTs per repetition and no T gates (Clifford circuit).
func Simon(n, r int) *Program {
	return lookupOr("simon", n, r, func() (int64, int64) {
		return int64(math.Round(0.755 * float64(n) * float64(r))), 0
	})
}

// RCA returns the ripple-carry adder on n qubits repeated r times:
// ≈8·n CNOTs and ≈7·n T gates per repetition (2n Toffolis decomposed into
// Clifford+T).
func RCA(n, r int) *Program {
	return lookupOr("rca", n, r, func() (int64, int64) {
		return int64(8 * n * r), int64(7 * n * r)
	})
}

// QFT returns the approximate QFT on n qubits repeated r times: n(n-1)
// CNOTs per layer and controlled rotations synthesized into T gates whose
// count the paper's Table II fixes for the evaluated sizes.
func QFT(n, r int) *Program {
	return lookupOr("qft", n, r, func() (int64, int64) {
		rot := float64(n*(n-1)) / 2
		// Rotation synthesis cost grows with the precision demanded by
		// larger circuits; calibrated to the paper's two QFT rows.
		tPerRot := 1300 * math.Sqrt(float64(n))
		return int64(float64(n*(n-1)) * 1.06 * float64(r)), int64(rot * tPerRot * float64(r))
	})
}

// Grover returns Grover search on n qubits repeated r times.
func Grover(n, r int) *Program {
	return lookupOr("grover", n, r, func() (int64, int64) {
		iters := float64(r) * math.Pow(2, float64(n)/2)
		return int64(iters * float64(n) * 2), int64(iters * float64(n) * 30)
	})
}

func lookupOr(kind string, n, r int, formula func() (int64, int64)) *Program {
	name := fmt.Sprintf("%s-%d-%d", kind, n, r)
	p := &Program{Name: name, Qubits: n, Reps: r}
	if counts, ok := paperCounts[name]; ok {
		p.CX, p.T = counts[0], counts[1]
		return p
	}
	p.CX, p.T = formula()
	p.Derived = true
	return p
}

// Benchmarks returns the paper's eight Table II configurations in order.
func Benchmarks() []*Program {
	return []*Program{
		Simon(400, 1000),
		Simon(900, 1500),
		RCA(225, 500),
		RCA(729, 100),
		QFT(25, 160),
		QFT(100, 20),
		Grover(9, 80),
		Grover(16, 2),
	}
}

// TFactoryQubits estimates the logical qubits devoted to magic-state
// distillation: programs with T gates reserve one 15-to-1 factory block of
// ≈12 logical-qubit tiles per 50 algorithmic qubits (Litinski-style
// accounting), at least one block when any T gates exist.
func (p *Program) TFactoryQubits() int {
	if p.T == 0 {
		return 0
	}
	blocks := (p.Qubits + 49) / 50
	if blocks < 1 {
		blocks = 1
	}
	return 12 * blocks
}

// LogicalQubits returns the total logical patches the layout must host.
func (p *Program) LogicalQubits() int { return p.Qubits + p.TFactoryQubits() }

// ScheduleSteps estimates the lattice-surgery schedule length in logical
// time-steps: CNOTs route with parallelism ≈ N/4 (each op occupies its two
// endpoints plus a channel), while T gates stream from the distillation
// factories. Following the pipelined multi-level distillation accounting of
// the frameworks the paper compiles with ([40,42]), each factory block
// sustains ≈256 magic states per logical time-step once its pipeline is
// full; the schedule is dominated by whichever stream is longer.
func (p *Program) ScheduleSteps() int64 {
	n := int64(p.Qubits)
	par := n / 4
	if par < 1 {
		par = 1
	}
	steps := (p.CX + par - 1) / par
	if p.T > 0 {
		factories := int64(p.TFactoryQubits() / 12)
		if factories < 1 {
			factories = 1
		}
		const statesPerFactoryStep = 256
		tSteps := (p.T + factories*statesPerFactoryStep - 1) / (factories * statesPerFactoryStep)
		if tSteps > steps {
			steps = tSteps
		}
	}
	return steps
}

// Cycles converts schedule steps into QEC cycles: each lattice-surgery
// operation takes d rounds of syndrome extraction.
func (p *Program) Cycles(d int) int64 { return p.ScheduleSteps() * int64(d) }

// SpaceTimeVolume returns patches × cycles — the exposure the retry-risk
// composition integrates over.
func (p *Program) SpaceTimeVolume(d int) int64 {
	return int64(p.LogicalQubits()) * p.Cycles(d)
}
