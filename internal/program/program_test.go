package program

import "testing"

func TestPaperTableCounts(t *testing.T) {
	// The eight Table II configurations must reproduce the paper's gate
	// counts exactly.
	cases := []struct {
		p      *Program
		cx, tg int64
		qubits int
	}{
		{Simon(400, 1000), 302000, 0, 400},
		{Simon(900, 1500), 1010000, 0, 900},
		{RCA(225, 500), 896000, 784000, 225},
		{RCA(729, 100), 582000, 510000, 729},
		{QFT(25, 160), 102000, 187000000, 25},
		{QFT(100, 20), 230000, 1580000000, 100},
		{Grover(9, 80), 136000, 199000000, 9},
		{Grover(16, 2), 429000, 1130000000, 16},
	}
	for _, tc := range cases {
		if tc.p.CX != tc.cx || tc.p.T != tc.tg {
			t.Errorf("%s: CX=%d T=%d, want %d/%d", tc.p.Name, tc.p.CX, tc.p.T, tc.cx, tc.tg)
		}
		if tc.p.Qubits != tc.qubits {
			t.Errorf("%s: qubits=%d, want %d", tc.p.Name, tc.p.Qubits, tc.qubits)
		}
		if tc.p.Derived {
			t.Errorf("%s should come from the paper table", tc.p.Name)
		}
	}
}

func TestDerivedFormulasTrackPaperScaling(t *testing.T) {
	// Off-table sizes use formulas that should land near the paper's
	// per-repetition scaling.
	s := Simon(500, 100)
	if !s.Derived {
		t.Fatal("simon-500-100 should be derived")
	}
	perRep := float64(s.CX) / 100
	if perRep < 0.6*500 || perRep > 0.9*500 {
		t.Errorf("Simon CX/rep = %.0f, want ≈0.75n", perRep)
	}
	r := RCA(100, 10)
	if r.CX != 8*100*10 || r.T != 7*100*10 {
		t.Errorf("RCA derived counts CX=%d T=%d", r.CX, r.T)
	}
}

func TestTFactoryAccounting(t *testing.T) {
	if got := Simon(400, 1000).TFactoryQubits(); got != 0 {
		t.Errorf("Clifford program should need no factories, got %d", got)
	}
	qft := QFT(100, 20)
	if qft.TFactoryQubits() == 0 {
		t.Error("T-heavy program needs factories")
	}
	if qft.LogicalQubits() <= qft.Qubits {
		t.Error("logical qubits must include factories")
	}
}

func TestScheduleMonotonic(t *testing.T) {
	// More gates -> more steps; larger d -> more cycles.
	small := Simon(400, 100)
	big := Simon(400, 1000)
	if small.Derived == false && big.Derived == false && small.ScheduleSteps() >= big.ScheduleSteps() {
		t.Error("longer program should have a longer schedule")
	}
	p := RCA(225, 500)
	if p.Cycles(21) <= p.Cycles(19) {
		t.Error("larger distance means more QEC cycles")
	}
	if p.SpaceTimeVolume(21) <= 0 {
		t.Error("space-time volume must be positive")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("got %d benchmarks, want 8", len(bs))
	}
	for _, b := range bs {
		if b.Derived {
			t.Errorf("%s should use paper counts", b.Name)
		}
	}
}
