package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"surfdeformer/internal/store"
)

// OpenStore opens (or creates) the result store at path, reporting any
// tolerated corrupt lines and any crash repairs (torn tail truncated,
// stale GC temps removed) to stderr prefixed with the program name. Both
// CLIs share this so the warnings read the same everywhere. syncPolicy is
// the -store-sync flag value ("never", "interval", "always").
func OpenStore(prog, path, syncPolicy string) (*store.Store, error) {
	policy, err := store.ParseSyncPolicy(syncPolicy)
	if err != nil {
		return nil, err
	}
	st, err := store.OpenWith(path, store.Options{Sync: policy})
	if err != nil {
		return nil, err
	}
	if n := st.Corrupted(); n > 0 {
		fmt.Fprintf(os.Stderr, "%s: store %s: tolerated %d corrupt line(s)\n", prog, path, n)
	}
	if rep := st.Repair(); rep.Repaired() {
		if rep.TruncatedBytes > 0 || rep.DroppedLines > 0 {
			fmt.Fprintf(os.Stderr, "%s: store %s: repaired torn tail — truncated %d byte(s), dropped %d uncommitted row(s) (recomputed on resume)\n",
				prog, path, rep.TruncatedBytes, rep.DroppedLines)
		}
		if rep.TempsRemoved > 0 {
			fmt.Fprintf(os.Stderr, "%s: store %s: removed %d stale gc temp file(s)\n", prog, path, rep.TempsRemoved)
		}
	}
	return st, nil
}

// AddStoreSyncFlag registers the shared -store-sync flag. Call before
// flag.Parse.
func AddStoreSyncFlag() *string {
	return flag.String("store-sync", "interval",
		"store fsync policy: never, interval (at most ~1/s), always (per append)")
}

// StoreMaintenance runs the -store-ls/-store-gc maintenance modes shared
// by the CLIs: gc compacts the store in place, ls prints one line per
// merged point to w. It returns an error when neither mode has a store to
// act on.
func StoreMaintenance(prog string, st *store.Store, w io.Writer, ls, gc bool) error {
	if st == nil {
		return fmt.Errorf("-store-ls/-store-gc require -store")
	}
	if gc {
		if err := st.GC(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: store compacted to %d point(s)\n", prog, st.Len())
	}
	if ls {
		ListStore(st, w)
		fmt.Fprintf(os.Stderr, "%s: %d point(s) in %s\n", prog, st.Len(), st.Path())
	}
	return nil
}

// ListStore prints one line per stored point: merged counts, the rate
// with its recomputed 95% Wilson interval, and segment bookkeeping.
// Trial-style points (no Monte-Carlo counts) render with dashes.
func ListStore(st *store.Store, w io.Writer) {
	fmt.Fprintf(w, "%-34s %-10s %-4s %-10s %-10s %-12s %-26s %-8s\n",
		"key", "kind", "seg", "shots", "failures", "rate", "95% CI", "complete")
	for _, key := range st.Keys() {
		pt, _ := st.Get(key)
		if pt.Shots > 0 {
			fmt.Fprintf(w, "%-34s %-10s %-4d %-10d %-10d %-12.3e [%.3e, %.3e]  %v\n",
				key, pt.Kind, pt.Segments, pt.Shots, pt.Failures, pt.Rate, pt.CILow, pt.CIHigh, pt.Complete)
		} else {
			fmt.Fprintf(w, "%-34s %-10s %-4d %-10s %-10s %-12s %-26s %v\n",
				key, pt.Kind, pt.Segments, "-", "-", "-", "-", pt.Complete)
		}
	}
}
