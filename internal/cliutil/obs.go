// Profiling, live-debugging and observability helpers shared by the
// command-line tools, so every binary exposes the same -cpuprofile /
// -memprofile / -debug-addr surface instead of each reimplementing it.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"surfdeformer/internal/obs"
)

// ProfileFlags holds the shared profiling flag values of one binary.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	DebugAddr  string
}

// AddProfileFlags registers -cpuprofile, -memprofile and -debug-addr on the
// default flag set. Call before flag.Parse.
func AddProfileFlags() *ProfileFlags {
	var p ProfileFlags
	flag.StringVar(&p.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&p.MemProfile, "memprofile", "", "write a pprof heap profile at run end to this file")
	flag.StringVar(&p.DebugAddr, "debug-addr", "", "serve live pprof + expvar (with the obs metrics snapshot) on this address, e.g. localhost:6060")
	return &p
}

// Start activates whatever the parsed flags request: CPU profiling begins
// immediately, the debug server binds and announces itself on stderr. It
// returns a stop function that flushes the CPU profile and writes the heap
// profile; call it (usually via defer) on every exit path, and propagate
// its error — a requested-but-unwritable profile should fail the run
// visibly, not vanish.
func (p *ProfileFlags) Start(cmd string) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	if p.DebugAddr != "" {
		addr, derr := obs.ServeDebug(p.DebugAddr)
		if derr != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, derr
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/pprof/ (metrics at /metrics)\n", cmd, addr)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.MemProfile != "" {
			f, merr := os.Create(p.MemProfile)
			if merr != nil {
				return merr
			}
			defer f.Close()
			runtime.GC() // settle heap so the profile shows retained allocations
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}

// NewProgress returns a stderr progress reporter counting the named
// throughput metric, or nil when not enabled — every Progress method is
// nil-safe, so callers thread the result through unconditionally.
func NewProgress(enabled bool, unitsLabel, unitsCounter string) *obs.Progress {
	if !enabled {
		return nil
	}
	return &obs.Progress{
		Out:        os.Stderr,
		UnitsLabel: unitsLabel,
		Units:      obs.Default().Counter(unitsCounter),
	}
}

// WarnDegraded prints one-line warnings when the run hit silent-
// degradation conditions: truncated decodes (the union-find ran out of
// iterations on a pathological graph), clamped/dropped decoding-graph
// edges (reweighted priors the graph could not fully represent), or store
// damage that Open tolerated or repaired (mid-file corrupt lines, torn
// tail rows truncated away). Each is invisible at the point of occurrence
// by design — the decode still returns, the store still opens — so the
// end of the run is the one place they must surface.
func WarnDegraded(cmd string, w io.Writer) {
	r := obs.Default()
	trunc := r.Counter("decoder.truncations").Value()
	clamped := r.Counter("decoder.graph.edges_clamped").Value()
	dropped := r.Counter("decoder.graph.edges_dropped").Value()
	if trunc != 0 || clamped != 0 || dropped != 0 {
		fmt.Fprintf(w, "%s: warning: degraded decoding — %d truncated decode(s), %d clamped edge(s), %d dropped edge(s)\n",
			cmd, trunc, clamped, dropped)
	}
	corrupt := r.Counter("store.corrupted_lines").Value()
	repaired := r.Counter("store.rows_repaired").Value()
	if corrupt != 0 || repaired != 0 {
		fmt.Fprintf(w, "%s: warning: degraded store — %d corrupt line(s) tolerated, %d torn tail row(s) repaired away (recomputed on resume)\n",
			cmd, corrupt, repaired)
	}
}

// PrintSnapshot writes the full obs registry snapshot as sorted
// "[obs] name = value" lines (histograms as count/sum).
func PrintSnapshot(w io.Writer) {
	s := obs.Default().Snapshot()
	for _, c := range s.Counters {
		fmt.Fprintf(w, "[obs] %s = %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "[obs] %s = %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "[obs] %s = count %d, sum %d\n", h.Name, h.Count, h.Sum)
	}
}
