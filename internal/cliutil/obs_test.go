package cliutil

import (
	"strings"
	"testing"

	"surfdeformer/internal/obs"
)

// The degradation warning is the silent-degradation guard: silent while
// the decode path is healthy, one line the moment any of the three
// counters is nonzero.
func TestWarnDegraded(t *testing.T) {
	obs.Default().Reset()
	var b strings.Builder
	WarnDegraded("tool", &b)
	if b.Len() != 0 {
		t.Fatalf("healthy run must warn nothing, got %q", b.String())
	}
	obs.Default().Counter("decoder.truncations").Add(2)
	obs.Default().Counter("decoder.graph.edges_dropped").Inc()
	WarnDegraded("tool", &b)
	out := b.String()
	if c := strings.Count(out, "\n"); c != 1 {
		t.Fatalf("want exactly one warning line, got %d:\n%s", c, out)
	}
	for _, want := range []string{"tool: warning", "2 truncated", "0 clamped", "1 dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("warning %q missing %q", out, want)
		}
	}
	obs.Default().Reset()
}

func TestPrintSnapshot(t *testing.T) {
	obs.Default().Reset()
	obs.Default().Counter("zz.last").Add(7)
	obs.Default().Counter("aa.first").Add(3)
	var b strings.Builder
	PrintSnapshot(&b)
	out := b.String()
	first := strings.Index(out, "[obs] aa.first = 3")
	last := strings.Index(out, "[obs] zz.last = 7")
	if first < 0 || last < 0 || first > last {
		t.Fatalf("snapshot lines missing or unsorted:\n%s", out)
	}
	obs.Default().Reset()
}

func TestNewProgressDisabled(t *testing.T) {
	if p := NewProgress(false, "shots", "mc.shots_committed"); p != nil {
		t.Fatal("disabled progress must be nil (nil-safe methods)")
	}
	if p := NewProgress(true, "shots", "mc.shots_committed"); p == nil || p.Units == nil {
		t.Fatal("enabled progress must carry the units counter")
	}
}
