package cliutil

// This file holds the graceful-shutdown and exit-code helpers shared by
// the command-line tools: one signal → context bridge, one error →
// exit-code mapping, one end-of-run failure report, so both binaries
// interrupt, drain, and resume identically.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"surfdeformer/internal/mc"
)

// Process exit codes, documented in the README flag table. ExitUsage is
// produced by the flag package paths directly (os.Exit(2)); the other
// codes come from ExitCode.
const (
	ExitOK = 0
	// ExitFailure is an internal error: nothing (or nothing trustworthy)
	// was produced.
	ExitFailure = 1
	// ExitUsage is a command-line usage error.
	ExitUsage = 2
	// ExitPartial means the run was interrupted (SIGINT/SIGTERM) or some
	// grid points failed in isolation: every completed point is valid and
	// committed, and a -resume re-run computes only what is missing.
	ExitPartial = 3
)

// SignalContext returns a context canceled by the first SIGINT/SIGTERM.
// The first signal starts a graceful shutdown — dispatch stops at the
// next point/shard boundary, in-flight points drain, the store is synced
// on the way out — announced on w; a second signal aborts immediately
// with the conventional 128+SIGINT code. The returned stop function
// releases the signal handler (restoring default ^C behavior).
func SignalContext(prog string, w io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(w, "%s: %v — draining in-flight points (interrupt again to abort without saving)\n", prog, sig)
			cancel()
		case <-ctx.Done():
			return
		}
		<-ch
		fmt.Fprintf(w, "%s: second interrupt — aborting\n", prog)
		os.Exit(130)
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}

// ExitCode maps a run error to the documented process exit code:
// interruption and isolated point failures are ExitPartial (completed
// work is valid and resumable), anything else is ExitFailure.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var perrs *mc.PointErrors
	if errors.Is(err, mc.ErrCanceled) || errors.As(err, &perrs) {
		return ExitPartial
	}
	return ExitFailure
}

// ReportRunError prints what a non-nil run error means for the results on
// w: the per-point failure report (stacks included) for isolated
// failures, an interruption note for cancellation, and the bare error
// otherwise. Returns the exit code the process should use.
func ReportRunError(prog string, w io.Writer, err error) int {
	if err == nil {
		return ExitOK
	}
	var perrs *mc.PointErrors
	if errors.As(err, &perrs) {
		fmt.Fprintf(w, "%s: %s", prog, perrs.Report())
	}
	if errors.Is(err, mc.ErrCanceled) {
		fmt.Fprintf(w, "%s: interrupted: %v\n", prog, err)
		return ExitPartial
	}
	if perrs != nil {
		return ExitPartial
	}
	fmt.Fprintf(w, "%s: %v\n", prog, err)
	return ExitFailure
}

// ResumeHint prints how to pick the run back up after an interruption or
// partial failure. With a store, the completed points are already
// committed, so re-running the same command with -resume computes only
// what is missing; without one there is nothing persisted to build on.
func ResumeHint(prog string, w io.Writer, storePath string, resume bool) {
	if storePath == "" {
		fmt.Fprintf(w, "%s: no -store was set — completed points were not persisted; re-run with -store FILE -resume to make interruptions resumable\n", prog)
		return
	}
	// -resume goes right after the program name, not at the end: the flag
	// package stops parsing at the first positional argument (surfdeform's
	// experiment name), so a trailing flag would be silently ignored.
	args := os.Args[1:]
	if !resume {
		args = append([]string{"-resume"}, args...)
	}
	cmd := strings.Join(append([]string{os.Args[0]}, args...), " ")
	fmt.Fprintf(w, "%s: completed points are committed and synced in %s; resume with:\n  %s\n", prog, storePath, cmd)
}
