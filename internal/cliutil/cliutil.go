// Package cliutil holds small flag-parsing helpers shared by the
// command-line tools so list syntax stays consistent across binaries.
package cliutil

import (
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list ("3,5,7").
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list ("2e-3,4e-3").
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
