package cliutil

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"surfdeformer/internal/mc"
)

func TestExitCodeMapping(t *testing.T) {
	perrs := &mc.PointErrors{Total: 4, Failures: []mc.PointFailure{{Index: 1, Err: errors.New("x"), Attempts: 1}}}
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitFailure},
		{fmt.Errorf("run: %w", mc.ErrCanceled), ExitPartial},
		{perrs, ExitPartial},
		{errors.Join(fmt.Errorf("%w after 2 of 4", mc.ErrCanceled), perrs), ExitPartial},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestReportRunError(t *testing.T) {
	perrs := &mc.PointErrors{Total: 4, Failures: []mc.PointFailure{{Index: 1, Err: errors.New("flaky"), Attempts: 3}}}
	var sb strings.Builder
	if got := ReportRunError("prog", &sb, perrs); got != ExitPartial {
		t.Fatalf("exit = %d, want %d", got, ExitPartial)
	}
	out := sb.String()
	if !strings.Contains(out, "point 1") || !strings.Contains(out, "3 attempt(s)") {
		t.Fatalf("report missing failure detail:\n%s", out)
	}

	sb.Reset()
	if got := ReportRunError("prog", &sb, fmt.Errorf("run: %w", mc.ErrCanceled)); got != ExitPartial {
		t.Fatalf("exit = %d, want %d", got, ExitPartial)
	}
	if !strings.Contains(sb.String(), "interrupted") {
		t.Fatalf("cancellation not reported as interruption: %s", sb.String())
	}

	sb.Reset()
	if got := ReportRunError("prog", &sb, errors.New("boom")); got != ExitFailure {
		t.Fatalf("exit = %d, want %d", got, ExitFailure)
	}
}

func TestResumeHint(t *testing.T) {
	var sb strings.Builder
	ResumeHint("prog", &sb, "", false)
	if !strings.Contains(sb.String(), "-store FILE -resume") {
		t.Fatalf("storeless hint unhelpful: %s", sb.String())
	}
	sb.Reset()
	ResumeHint("prog", &sb, "sweep.jsonl", false)
	out := sb.String()
	if !strings.Contains(out, "sweep.jsonl") || !strings.Contains(out, " -resume") {
		t.Fatalf("hint does not name the store or add -resume: %s", out)
	}
	sb.Reset()
	ResumeHint("prog", &sb, "sweep.jsonl", true)
	if strings.Contains(sb.String(), "-resume -resume") {
		t.Fatalf("hint duplicated -resume: %s", sb.String())
	}
}

// The first SIGINT cancels the context (graceful drain) without killing
// the process — the process-killing second-signal path is exercised
// manually and by the CI walkthrough, not here.
func TestSignalContextCancelsOnInterrupt(t *testing.T) {
	var sb strings.Builder
	ctx, stop := SignalContext("prog", &sb)
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled by SIGINT")
	}
	if !strings.Contains(sb.String(), "draining in-flight points") {
		t.Fatalf("no drain announcement: %q", sb.String())
	}
}
