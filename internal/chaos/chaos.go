// Package chaos provides deterministic fault injectors for the pipeline's
// crash-safety tests: seeded store write errors, panics and process kills
// at exact trigger points, and torn-tail file surgery. Each injector is
// deterministic — a fixed seed and call sequence always fault the same
// way — so the fault-injection tests extend the byte-identical-resume
// contract (DESIGN.md §7) to crashes: sweep → inject fault → resume must
// reproduce an uninterrupted run exactly (DESIGN.md §11).
//
// The injection seam into the store is store.Options.BeforeAppend, which
// runs just before a row's bytes are written; injectors built here are
// hooks for it. Nothing in this package is imported outside tests and the
// CI chaos job.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"surfdeformer/internal/mc"
)

// chaosSalt keeps injector RNG streams disjoint from every results stream
// (negative leading path element, like all non-shard streams).
const chaosSalt = int64(-0x4348) // "CH"

// PanicOnAppend returns a store hook that panics on the n-th append
// (1-based) — a deterministic stand-in for a worker panic mid-point. The
// panic fires before any bytes are written, so the store never sees the
// faulted row; mc.ForEach isolates the failure to the one point whose
// append it was.
func PanicOnAppend(n int64) func([]byte) error {
	var calls atomic.Int64
	return func([]byte) error {
		if calls.Add(1) == n {
			panic(fmt.Sprintf("chaos: injected panic at append %d", n))
		}
		return nil
	}
}

// PanicAt wraps a ForEach point function so that point index i panics —
// the direct form of worker-panic injection for pool-level tests.
func PanicAt(i int, fn func(int) error) func(int) error {
	return func(j int) error {
		if j == i {
			panic(fmt.Sprintf("chaos: injected panic at point %d", i))
		}
		return fn(j)
	}
}

// WriteErrors returns a store hook failing each append with the given
// probability, drawn from a seeded stream so a fixed (seed, call
// sequence) faults identically every run. Failures are transient in the
// sense of mc.Transient: the point pool retries them with deterministic
// backoff, and a retried point re-appends byte-identical rows — which is
// how the write-error leg of the chaos matrix verifies that retries never
// leak into results.
func WriteErrors(seed int64, rate float64) func([]byte) error {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(mc.DeriveSeed(seed, chaosSalt)))
	return func([]byte) error {
		mu.Lock()
		defer mu.Unlock()
		if rng.Float64() < rate {
			return mc.Transient(fmt.Errorf("chaos: injected write error"))
		}
		return nil
	}
}

// KillAfter returns a store hook that SIGKILLs the current process just
// before the n-th append (1-based) — the hard-crash leg of the matrix,
// used from a re-exec'd child so the test process itself survives. The
// kill fires before any bytes of row n are written: rows 1..n-1 are
// committed, row n and everything after must be recomputed on resume.
func KillAfter(n int64) func([]byte) error {
	var calls atomic.Int64
	return func([]byte) error {
		if calls.Add(1) == n {
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				p.Kill()
			}
			select {} // SIGKILL is not synchronous; never let the append proceed
		}
		return nil
	}
}

// CancelOnAppend returns a store hook that calls cancel just after the
// n-th append (1-based) is allowed through — the deterministic equivalent
// of SIGINT arriving while point n commits: n points land in the store,
// dispatch stops at the next point boundary.
func CancelOnAppend(n int64, cancel func()) func([]byte) error {
	var calls atomic.Int64
	return func([]byte) error {
		if calls.Add(1) == n {
			cancel()
		}
		return nil
	}
}

// TearTail truncates cut bytes off the end of the file at path,
// simulating an append torn mid-write by a crash (power loss landing
// inside the final row). store.OpenWith repairs exactly this shape.
func TearTail(path string, cut int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if cut <= 0 || cut > info.Size() {
		return fmt.Errorf("chaos: cut %d out of range for %d-byte %s", cut, info.Size(), path)
	}
	return os.Truncate(path, info.Size()-cut)
}
