// The deterministic fault-injection matrix: every fault class — worker
// panic, transient write errors, process kill, torn tail, cooperative
// cancel — is injected into a real store-backed sweep, the sweep is
// resumed, and the result is byte-compared against an uninterrupted
// reference run. This is the crash-safety half of the determinism
// contract: a fault plus a resume must be invisible in the output.
package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"surfdeformer/internal/chaos"
	"surfdeformer/internal/experiments"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/store"
)

// sweepOpts builds the quick store-backed sweep configuration every leg
// shares. PointWorkers stays 1 so append order is grid order and raw file
// bytes are comparable across legs; determinism for PointWorkers > 1 is
// covered by the experiments package's own tests.
func sweepOpts(st *store.Store, ctx context.Context) experiments.Options {
	opt := experiments.QuickOptions()
	opt.Shots = 512
	opt.Store = st
	opt.Resume = true
	opt.Ctx = ctx
	return opt
}

func runSweep(st *store.Store, ctx context.Context) ([]experiments.SweepRow, error) {
	opt := sweepOpts(st, ctx)
	return experiments.MemorySweep(opt, experiments.DefaultSweepGrid(opt), experiments.SweepEngine{Workers: 1})
}

func renderTable(rows []experiments.SweepRow) string {
	var sb strings.Builder
	experiments.RenderSweep(&sb, rows)
	return sb.String()
}

func readBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sortedLines(t *testing.T, path string) []string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(string(readBytes(t, path)), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// gcBytes compacts the store at path in place and returns the canonical
// (key-sorted, one row per point) file bytes.
func gcBytes(t *testing.T, path string) []byte {
	t.Helper()
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.GC(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return readBytes(t, path)
}

// reference runs the sweep uninterrupted into a fresh store and returns
// the store path, its raw bytes, and the rendered table.
func reference(t *testing.T) (path string, raw []byte, table string) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "ref.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runSweep(st, nil)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	raw = readBytes(t, path)
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatal("reference sweep committed nothing")
	}
	return path, raw, renderTable(rows)
}

// resumeAndCompare reopens the faulted store with no injection, resumes
// the sweep, and asserts the rendered table and canonical store bytes
// match the reference exactly.
func resumeAndCompare(t *testing.T, path, refPath, refTable string) {
	t.Helper()
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runSweep(st, nil)
	if err != nil {
		t.Fatalf("resume sweep: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := renderTable(rows); got != refTable {
		t.Errorf("resumed table diverges from uninterrupted run:\n--- resumed\n%s--- reference\n%s", got, refTable)
	}
	if got, want := sortedLines(t, path), sortedLines(t, refPath); !equalStrings(got, want) {
		t.Errorf("resumed store rows diverge:\n resumed:   %v\n reference: %v", got, want)
	}
	if got, want := gcBytes(t, path), gcBytes(t, refPath); !bytes.Equal(got, want) {
		t.Error("canonical (compacted) store bytes diverge after resume")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Worker panic: a point whose append panics is isolated — the sweep
// finishes the rest of the grid and reports the failure — and a resume
// recomputes only that point, reproducing the uninterrupted run.
func TestPanicFaultResume(t *testing.T) {
	refPath, _, refTable := reference(t)
	panics := obs.Default().Counter("mc.worker_panics").Value()

	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	st, err := store.OpenWith(path, store.Options{BeforeAppend: chaos.PanicOnAppend(2)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runSweep(st, nil)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var perrs *mc.PointErrors
	if !errors.As(err, &perrs) || len(perrs.Failures) != 1 {
		t.Fatalf("faulted sweep err = %v, want one isolated point failure", err)
	}
	if rows == nil {
		t.Fatal("isolated failure voided the surviving rows")
	}
	if got := obs.Default().Counter("mc.worker_panics").Value() - panics; got < 1 {
		t.Fatalf("mc.worker_panics delta = %d, want >= 1", got)
	}
	resumeAndCompare(t, path, refPath, refTable)
}

// Transient write errors: injected append failures are retried with the
// whole point recomputed; however many attempts it takes, the final
// store and table are byte-identical to a run that never faulted.
func TestWriteErrorFaultResume(t *testing.T) {
	refPath, _, refTable := reference(t)
	retries := obs.Default().Counter("mc.point_retries").Value()

	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	st, err := store.OpenWith(path, store.Options{BeforeAppend: chaos.WriteErrors(1, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runSweep(st, nil)
	if cerr := st.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	// Exhausted retries are allowed (isolated, resumable); anything else is not.
	var perrs *mc.PointErrors
	if err != nil && !errors.As(err, &perrs) {
		t.Fatalf("faulted sweep err = %v, want nil or isolated failures", err)
	}
	if got := obs.Default().Counter("mc.point_retries").Value() - retries; got < 1 {
		t.Fatalf("mc.point_retries delta = %d, want >= 1 (injection never fired)", got)
	}
	resumeAndCompare(t, path, refPath, refTable)
}

// Cooperative cancel (the SIGINT path minus the signal): cancellation
// after a committed point stops dispatch at the next boundary, commits
// nothing partial, and the resumed store is byte-identical to the
// reference — including raw append order.
func TestCancelFaultResume(t *testing.T) {
	refPath, refRaw, refTable := reference(t)

	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := store.OpenWith(path, store.Options{BeforeAppend: chaos.CancelOnAppend(1, cancel)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runSweep(st, ctx)
	if cerr := st.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if !errors.Is(err, mc.ErrCanceled) {
		t.Fatalf("canceled sweep err = %v, want ErrCanceled", err)
	}
	if rows != nil {
		t.Fatal("canceled sweep returned rows; cancellation must return none")
	}
	faulted := readBytes(t, path)
	if len(faulted) == 0 || !bytes.HasPrefix(refRaw, faulted) {
		t.Fatalf("interrupted store is not a committed prefix of the reference:\n%q", faulted)
	}
	resumeAndCompare(t, path, refPath, refTable)
	if !bytes.Equal(sortRaw(readBytes(t, path)), sortRaw(refRaw)) {
		t.Error("resumed raw store diverges from reference")
	}
}

func sortRaw(b []byte) []byte {
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n"))
}

// Torn tail: cutting a crash-torn final row is repaired on open (reported,
// not silent), and a resume recomputes the lost point, reproducing the
// uninterrupted file byte for byte — raw, not just canonical.
func TestTornTailFaultResume(t *testing.T) {
	refPath, refRaw, refTable := reference(t)

	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runSweep(st, nil); err != nil {
		t.Fatalf("initial sweep: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := chaos.TearTail(path, 5); err != nil {
		t.Fatal(err)
	}
	repaired := obs.Default().Counter("store.rows_repaired").Value()
	st, err = store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := st.Repair()
	if rep.DroppedLines != 1 || rep.TruncatedBytes == 0 {
		t.Fatalf("repair report = %+v, want one dropped tail row", rep)
	}
	if got := obs.Default().Counter("store.rows_repaired").Value() - repaired; got != 1 {
		t.Fatalf("store.rows_repaired delta = %d, want 1", got)
	}
	rows, err := runSweep(st, nil)
	if err != nil {
		t.Fatalf("resume after repair: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := renderTable(rows); got != refTable {
		t.Errorf("table after repair diverges:\n--- repaired\n%s--- reference\n%s", got, refTable)
	}
	if !bytes.Equal(readBytes(t, path), refRaw) {
		t.Error("repaired + resumed store is not byte-identical to the uninterrupted file")
	}
	_ = refPath
}

// Process kill: a re-exec'd child runs the sweep and is SIGKILLed before
// its second append. The parent reopens the store — committed rows
// intact, nothing to repair (the kill fired between rows) — resumes, and
// byte-compares against the uninterrupted run.
func TestKillFaultResume(t *testing.T) {
	if path := os.Getenv("CHAOS_KILL_STORE"); path != "" {
		runKillChild(path) // never returns
	}
	refPath, refRaw, refTable := reference(t)

	path := filepath.Join(t.TempDir(), "faulted.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestKillFaultResume$")
	cmd.Env = append(os.Environ(), "CHAOS_KILL_STORE="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived its own SIGKILL:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != -1 {
		t.Fatalf("child exit = %v (want killed by signal):\n%s", err, out)
	}

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repair().Repaired() {
		t.Fatalf("kill between appends should need no repair: %+v", st.Repair())
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d point(s) after KillAfter(2), want 1", st.Len())
	}
	rows, err := runSweep(st, nil)
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := renderTable(rows); got != refTable {
		t.Errorf("table after kill+resume diverges:\n--- resumed\n%s--- reference\n%s", got, refTable)
	}
	if !bytes.Equal(readBytes(t, path), refRaw) {
		t.Error("killed + resumed store is not byte-identical to the uninterrupted file")
	}
	_ = refPath
}

// runKillChild is the re-exec'd half of TestKillFaultResume: it runs the
// sweep against a store wired to SIGKILL the process before append 2.
func runKillChild(path string) {
	st, err := store.OpenWith(path, store.Options{
		Sync:         store.SyncAlways,
		BeforeAppend: chaos.KillAfter(2),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runSweep(st, nil)
	fmt.Fprintln(os.Stderr, "chaos child: sweep finished without being killed")
	os.Exit(1)
}

// The injectors themselves must be deterministic: the same seed yields
// the same error sequence, a different seed a different one.
func TestWriteErrorsDeterministic(t *testing.T) {
	sequence := func(seed int64) string {
		hook := chaos.WriteErrors(seed, 0.5)
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if hook(nil) != nil {
				sb.WriteByte('x')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	if sequence(7) != sequence(7) {
		t.Fatal("same seed produced different fault sequences")
	}
	if sequence(7) == sequence(8) {
		t.Fatal("different seeds produced the same fault sequence")
	}
	if !strings.Contains(sequence(7), "x") || !strings.Contains(sequence(7), ".") {
		t.Fatalf("rate 0.5 produced a degenerate sequence: %s", sequence(7))
	}
	if err := chaos.WriteErrors(7, 1.0)(nil); !mc.IsTransient(err) {
		t.Fatalf("injected write error is not transient: %v", err)
	}
}
