package traj

import (
	"reflect"
	"testing"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// TestTrajectoryIncrementalMatchesFull pins whole-trajectory Result
// equality between the incremental path (site-rate DEMs patched from the
// chunk's nominal DEM, decode graphs re-derived from the nominal merge
// skeleton) and the full-rebuild reference (every DEM through buildDEM,
// every graph through NewGraph), across all four arms and several seeds.
// The patch path must be invisible: not one field of one Result may move.
func TestTrajectoryIncrementalMatchesFull(t *testing.T) {
	modes := []Mode{ModeSurfDeformer, ModeASC, ModeReweightOnly, ModeUntreated}
	run := func(patched bool) map[string][]*Result {
		t.Helper()
		old := patchDEMs
		patchDEMs = patched
		defer func() { patchDEMs = old }()
		out := map[string][]*Result{}
		for _, mode := range modes {
			cfg := QuickConfig()
			cfg.Cache = sim.NewDEMCache(0)
			for seed := int64(1); seed <= 3; seed++ {
				res, err := Run(cfg, mode, seed)
				if err != nil {
					t.Fatal(err)
				}
				out[mode.String()] = append(out[mode.String()], res)
			}
		}
		return out
	}
	patches := obs.Default().Counter("sim.dem.patches")
	full := run(false)
	p0 := patches.Value()
	fast := run(true)
	if patches.Value() == p0 {
		t.Fatal("incremental leg never patched a DEM; the fast path is unexercised")
	}
	for mode, want := range full {
		got := fast[mode]
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s seed %d: incremental trajectory diverged from full rebuild:\nfull %+v\nfast %+v",
					mode, i+1, want[i], got[i])
			}
		}
	}

	// Drift-heavy timelines exercise the reweight overlays hardest; pin
	// that arm too.
	driftRun := func(patched bool) []*Result {
		t.Helper()
		old := patchDEMs
		patchDEMs = patched
		defer func() { patchDEMs = old }()
		var out []*Result
		cfg := DriftOnlyConfig()
		cfg.Cache = sim.NewDEMCache(0)
		for seed := int64(1); seed <= 2; seed++ {
			res, err := Run(cfg, ModeReweightOnly, seed)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	if want, got := driftRun(false), driftRun(true); !reflect.DeepEqual(got, want) {
		t.Errorf("drift-only reweight arm diverged between incremental and full rebuild:\nfull %+v\nfast %+v", want, got)
	}
}
