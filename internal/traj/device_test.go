package traj

import (
	"reflect"
	"testing"

	"surfdeformer/internal/defect"
)

// deviceOnlyConfig is the fabrication-defect scenario: no dynamic defect
// species at all — the only thing wrong with the trajectory is the device
// it boots on, so arm differences isolate the boot-adaptation policy.
func deviceOnlyConfig(rate float64) Config {
	cfg := QuickConfig()
	cfg.Cosmic = nil
	cfg.Leakage = nil
	cfg.Drift = nil
	cfg.Device = defect.NewDeviceModel(rate)
	return cfg
}

// TestSuperOnlyBeatsUntreatedOnDefectiveDevice is the paired-arm
// acceptance pin of the bandage tier: on fabrication-defective devices the
// super-only arm (which bandages the defective data qubits at boot) must
// strictly beat the untreated arm (which decodes around coin-flip qubits
// forever) on summed failures over paired seeds.
func TestSuperOnlyBeatsUntreatedOnDefectiveDevice(t *testing.T) {
	cfg := deviceOnlyConfig(0.15)
	superFail, untreatedFail := 0, 0
	for seed := int64(1); seed <= 5; seed++ {
		su, err := Run(cfg, ModeSuperOnly, seed)
		if err != nil {
			t.Fatalf("super-only seed %d: %v", seed, err)
		}
		un, err := Run(cfg, ModeUntreated, seed)
		if err != nil {
			t.Fatalf("untreated seed %d: %v", seed, err)
		}
		if su.DeviceDefects != un.DeviceDefects {
			t.Fatalf("seed %d: arms saw different devices (%d vs %d defects) — pairing broken",
				seed, su.DeviceDefects, un.DeviceDefects)
		}
		if su.DeviceDefects > 0 && su.Bandages == 0 {
			t.Errorf("seed %d: defective device but no boot bandages", seed)
		}
		if un.Bandages != 0 {
			t.Errorf("seed %d: untreated arm reported %d bandages", seed, un.Bandages)
		}
		superFail += su.Failures
		untreatedFail += un.Failures
	}
	if superFail >= untreatedFail {
		t.Errorf("super-only arm not beating untreated on defective devices: %d vs %d failures",
			superFail, untreatedFail)
	}
}

// TestDeviceTrajectoryDeterministic pins the device axis of the
// determinism contract: a device-sampled trajectory is a pure function of
// (Config, Mode, seed), and the device stream is independent of the event
// and shot streams (it derives from its own salt).
func TestDeviceTrajectoryDeterministic(t *testing.T) {
	cfg := deviceOnlyConfig(0.12)
	for _, mode := range []Mode{ModeSuperOnly, ModeSurfDeformer, ModeUntreated} {
		a, err := Run(cfg, mode, 7)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		b, err := Run(cfg, mode, 7)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed, different results:\n%+v\n%+v", mode, a, b)
		}
	}
	// Different seeds sample different devices (the Monte-Carlo axis).
	a, _ := Run(cfg, ModeUntreated, 7)
	varies := false
	for seed := int64(8); seed <= 12; seed++ {
		b, err := Run(cfg, ModeUntreated, seed)
		if err != nil {
			t.Fatal(err)
		}
		if b.DeviceDefects != a.DeviceDefects {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("device defect counts identical across 6 seeds at 12% rates — device stream suspect")
	}
}

// TestThreeTierMatchesTwoTierOnExistingScenarios pins the ladder-extension
// compatibility contract: on the pre-existing dynamic-defect scenarios
// (no fabrication device), the full three-tier ladder behaves exactly as
// the old two-tier one — the super tier never acts (removal outranks it in
// the dynamic routing, and no existing defect species produces a rate in
// the super band), and results are insensitive to moving the super
// boundary within that band.
func TestThreeTierMatchesTwoTierOnExistingScenarios(t *testing.T) {
	for _, cfg := range []Config{QuickConfig(), DriftOnlyConfig()} {
		for _, mode := range []Mode{ModeSurfDeformer, ModeASC, ModeReweightOnly, ModeUntreated} {
			base, err := Run(cfg, mode, 3)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if base.Bandages != 0 || base.DeviceDefects != 0 {
				t.Errorf("%v: super tier acted on a dynamic-only scenario (%d bandages, %d device defects)",
					mode, base.Bandages, base.DeviceDefects)
			}
			moved := cfg
			moved.SuperThreshold = 0.09
			shifted, err := Run(moved, mode, 3)
			if err != nil {
				t.Fatalf("%v moved threshold: %v", mode, err)
			}
			if !reflect.DeepEqual(base, shifted) {
				t.Errorf("%v: moving the super boundary inside the empty band changed results:\n%+v\n%+v",
					mode, base, shifted)
			}
		}
	}
}

// TestConfigRejectsBadDeviceAndThresholds pins the config validation of
// the new axes: misordered ladders, out-of-range device rates and negative
// half-lives fail fast instead of silently running a different experiment.
func TestConfigRejectsBadDeviceAndThresholds(t *testing.T) {
	good := deviceOnlyConfig(0.1)
	if _, err := Run(good, ModeUntreated, 1); err != nil {
		t.Fatalf("valid device config rejected: %v", err)
	}
	bad := good
	bad.SuperThreshold = 0.5 // above the removal threshold
	if _, err := Run(bad, ModeSurfDeformer, 1); err == nil {
		t.Error("misordered ladder accepted")
	}
	bad = good
	bad.Device = &defect.DeviceModel{QubitDefectRate: 1.5}
	if _, err := Run(bad, ModeUntreated, 1); err == nil {
		t.Error("device qubit defect rate above 1 accepted")
	}
	bad = good
	bad.Halflife = -1
	if _, err := Run(bad, ModeUntreated, 1); err == nil {
		t.Error("negative half-life accepted")
	}
}

// TestSuperOnlyReleasesDynamicBandages exercises the dynamic bandage
// path end to end: with removable dynamic events on a pristine device, the
// super-only arm bandages detected regions in place (never shrinking the
// patch) and releases them when events subside.
func TestSuperOnlyReleasesDynamicBandages(t *testing.T) {
	cfg := QuickConfig()
	sawBandage, sawRecovery := false, false
	for seed := int64(1); seed <= 8 && !(sawBandage && sawRecovery); seed++ {
		res, err := Run(cfg, ModeSuperOnly, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Deformations != 0 {
			t.Errorf("seed %d: super-only arm removed (%d deformations)", seed, res.Deformations)
		}
		if res.Bandages > 0 {
			sawBandage = true
		}
		if res.Recoveries > 0 {
			sawRecovery = true
		}
	}
	if !sawBandage {
		t.Error("no dynamic bandages over 8 seeds of the quick scenario")
	}
	if !sawRecovery {
		t.Error("no bandage releases over 8 seeds of the quick scenario")
	}
}
