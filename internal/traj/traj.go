// Package traj is the closed-loop runtime trajectory engine: it simulates a
// logical patch over thousands of QEC cycles under stochastic dynamic-defect
// arrivals and runs the paper's full fig. 5 loop at scale — detect a defect
// from the syndrome stream, deform adaptively, recover when it subsides.
//
// A trajectory is segmented into code epochs: maximal stretches of cycles
// over which both the code and the noise model are constant. An epoch ends
// when the window detector flags a new region (the deformation unit steps),
// when a defect event starts or expires (the noise model changes), or when a
// subsided event's recovery is confirmed (the unit shrinks back). Within an
// epoch, rounds are simulated in chunks through the cached DEM → sampler →
// decoder path (sim.DEMCache + decoder.SharedGraph), so repeated epochs of
// the same (code, model) shape cost one DEM build for the whole trajectory
// fan-out.
//
// Determinism: all randomness derives from the trajectory seed via two
// mc.DeriveSeed streams (event timeline and syndrome shots). Nothing depends
// on scheduling, worker count, or cache state, so a trajectory's Result is a
// pure function of (Config, Mode, seed) — the property the scan layer relies
// on for bit-identical parallel and resumed runs.
//
// Scale caveat (DESIGN.md §1 applies): cosmic-ray strike footprints are
// scaled down with the code distances so that a d=9 patch relates to its
// strikes the way the paper's d=27 patches relate to radius-2 strikes.
package traj

import (
	"fmt"
	"maps"
	"math/rand"
	"sort"
	"time"

	"surfdeformer/internal/code"
	"surfdeformer/internal/core"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// Engine-level metrics; the per-arm counters (traj.<arm>.deformations and
// friends) are registered lazily per mode in Run, once per trajectory —
// nowhere near the chunk hot path.
var (
	obsTrajectories = obs.Default().Counter("traj.trajectories")
	obsTrajCycles   = obs.Default().Counter("traj.cycles")
)

// Mode selects the mitigation arm of a trajectory.
type Mode int

const (
	// ModeSurfDeformer runs the paper's full loop: adaptive removal plus
	// enlargement within the Δd reserve.
	ModeSurfDeformer Mode = iota
	// ModeASC runs the ASC-S policy: super-stabilizer removal only, no
	// enlargement (the patch only ever shrinks).
	ModeASC
	// ModeUntreated leaves the code untouched; the decoder keeps its nominal
	// priors while defects rage. The detector still runs so latency is
	// comparable, but nothing acts on it.
	ModeUntreated
	// ModeReweightOnly is the §VIII reweight-tier ablation: the code is
	// never deformed, but the detector's sustained-elevation estimates are
	// folded into the decode model's priors (detect.EstimateRates →
	// noise.Model.OverlaySiteRates). Sampling stays on the true rates, so
	// the arm measures honest estimated-prior decoding — the cheap first
	// response the paper prescribes for mild drift.
	ModeReweightOnly
	// ModeSuperOnly is the bandage-tier ablation (arXiv 2404.18644): the
	// patch is never shrunk — every severe region the ladder would remove
	// is instead merged into super-stabilizer bandages in place
	// (deform.Unit.Bandage), released when the event subsides. Fabrication
	// defects found at boot are bandaged permanently.
	ModeSuperOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSurfDeformer:
		return "surf-deformer"
	case ModeASC:
		return "asc-s"
	case ModeUntreated:
		return "untreated"
	case ModeReweightOnly:
		return "reweight-only"
	case ModeSuperOnly:
		return "super-only"
	}
	return "invalid"
}

// Config parameterizes a trajectory. The zero value is not runnable; use
// DefaultConfig or QuickConfig and override.
type Config struct {
	// D is the code distance of the patch; DeltaD its growth reserve.
	D      int
	DeltaD int
	// Horizon is the trajectory length in QEC cycles (1 cycle = 1 round).
	Horizon int64
	// ChunkRounds is the scheduling quantum: at most this many rounds are
	// sampled per DEM shot before the loop re-examines the detector. Epoch
	// boundaries clamp chunks, so a smaller value tightens the reaction
	// latency floor at the cost of more shots.
	ChunkRounds int
	// Window and Threshold parameterize the sliding-window detector.
	Window    int
	Threshold float64
	// ReweightFactor gates the reweight tier: an observable's estimated
	// rate multiplier must reach this factor before its elevation is folded
	// into the decode priors (0 selects DefaultReweightFactor; must
	// otherwise exceed 1). Only arms whose mitigation ladder enables the
	// reweight tier consult it.
	ReweightFactor float64
	// PhysicalRate is the base physical error rate (0 = the paper's 1e-3).
	PhysicalRate float64
	// Basis selects the protected memory (default lattice.ZCheck).
	Basis lattice.CheckType

	// Cosmic, Leakage and Drift are the defect processes; nil disables a
	// species. Drift events stay below the removal severity threshold and
	// exercise the decoder-prior-mismatch regime without deformation.
	Cosmic  *defect.Model
	Leakage *defect.LeakageModel
	Drift   *defect.DriftModel

	// Device, when non-nil, is the fabrication-defect model (Siegel et
	// al., arXiv 2211.08468): each trajectory samples a permanent defect
	// map from it on a dedicated seed stream (paired across arms) and runs
	// the dynamic defect processes on the degraded device. Defective data
	// qubits are adapted around at boot by the arm's mitigation ladder
	// (bandaged or removed); defective syndrome sites elevate rates only.
	Device *defect.DeviceModel
	// SuperThreshold overrides the ladder's super-stabilizer severity
	// boundary (0 keeps defect.SuperThreshold; the resolved value must stay
	// below the removal threshold — misordered ladders are rejected).
	SuperThreshold float64
	// Halflife enables exponential temporal weighting in the detector's
	// rate estimator, in rounds (0 = uniform window, bit-identical to the
	// unweighted estimator; negative is rejected). Flagging is unaffected.
	// See detect.Window.SetHalflife.
	Halflife float64

	// Layout, when non-nil, selects the layout-level engine: N patches on a
	// routing grid, defect arrivals landing on any patch or channel, and an
	// optional lattice-surgery schedule routed through the channels. Nil
	// runs the single-patch engine; a 1-patch layout without a program is
	// semantically the single-patch trajectory (test-pinned).
	Layout *LayoutConfig

	// Cache overrides the process-shared DEM cache (tests).
	Cache *sim.DEMCache

	// Trace, when non-nil, receives one structured JSONL event per epoch
	// transition (detect → mitigate → deform/reweight → recover, plus
	// per-chunk epoch events and an end summary). Tracing is
	// observation-only: results are bit-identical with it on or off.
	// TraceTraj labels the emitted events with this trajectory's index
	// within its scan, so interleaved parallel trajectories stay
	// attributable in a shared trace file. Neither field enters the
	// experiment layer's store keys.
	Trace     *obs.Tracer
	TraceTraj int
}

// DefaultConfig returns the CLI-scale scenario: a d=9 patch over a 6000-
// cycle horizon with accelerated defect processes sized so a trajectory
// sees a handful of events of each species. Acceleration compresses the
// paper's seconds-scale arrival times onto a simulable horizon, exactly as
// the Q3DE burst-error study compresses cosmic-ray rates.
func DefaultConfig(d int) Config {
	cosmic := defect.Paper()
	cosmic.Radius = 1            // scaled-down strike footprint (5 sites) to match scaled-down d
	cosmic.DurationCycles = 1200 // compressed from 25k cycles
	cosmic.RatePerQubit = 1.2    // accelerated from 3.85e-3/s: ~1.3 strikes per horizon
	leak := defect.DefaultLeakage()
	leak.RatePerQubit = 1e-6 // ~1 leakage event per horizon on a d=9 patch
	drift := defect.DefaultDrift()
	drift.RatePerQubit = 1.0 // accelerated: ~1 drift excursion per horizon
	drift.MeanDurationCycles = 2000
	return Config{
		D:            d,
		DeltaD:       2,
		Horizon:      6000,
		ChunkRounds:  8,
		Window:       20,
		Threshold:    0.25,
		PhysicalRate: noise.DefaultPhysical,
		Basis:        lattice.ZCheck,
		Cosmic:       cosmic,
		Leakage:      leak,
		Drift:        drift,
	}
}

// DriftOnlyConfig returns the decoder-prior-mismatch scenario: no cosmic
// strikes, no leakage — only sustained strong drift excursions that stay
// below the removal severity threshold, so the only defense an arm can
// mount is its decode prior. Durations outlast the horizon on purpose:
// the reweight tier targets the paper's slow-recalibration drift regime,
// where the window estimator converges on a stable pattern (under rapid
// event churn the estimate is chronically one window stale and priors
// help far less — DESIGN.md §9). The paired-arm reweight test and the
// reweight benchmarks (BenchmarkReweight, cmd/bench -reweight) all run
// this one scenario, so tuning it stays a single edit.
func DriftOnlyConfig() Config {
	cfg := QuickConfig()
	cfg.Horizon = 1200
	cfg.Cosmic = nil
	cfg.Leakage = nil
	cfg.Drift.RatePerQubit = 100
	cfg.Drift.Multiplier = 60 // drifted rate 0.06: elevated but < RemoveThreshold
	cfg.Drift.MeanDurationCycles = 5000
	return cfg
}

// QuickConfig returns the test-scale scenario (d=5, short horizon).
func QuickConfig() Config {
	cfg := DefaultConfig(5)
	cfg.Horizon = 400
	cfg.ChunkRounds = 6
	cfg.Cosmic.DurationCycles = 150
	cfg.Cosmic.RatePerQubit = 60 // ~1.5 strikes on the short horizon
	cfg.Leakage.RatePerQubit = 2e-5
	cfg.Leakage.MeanDurationCycles = 80
	cfg.Drift.RatePerQubit = 8
	cfg.Drift.MeanDurationCycles = 150
	return cfg
}

// Result is the outcome of one trajectory. Every field is integral or a
// float64 — both JSON round-trip exactly (Go emits the shortest
// representation that parses back to the same float64) — the property the
// persistent store's resume path needs for byte-identical replays.
type Result struct {
	Mode    string `json:"mode"`
	Horizon int64  `json:"horizon"`

	// FirstFailCycle is the cycle by which the first logical failure had
	// occurred (-1 if the trajectory survived the horizon). ElapsedCycles is
	// how far the trajectory ran (< Horizon only when the patch severed).
	FirstFailCycle int64 `json:"first_fail_cycle"`
	ElapsedCycles  int64 `json:"elapsed_cycles"`
	// Failures counts failed chunks; ScoredCycles the cycles of all scored
	// (fully elapsed) chunks — partial chunks cut by an epoch boundary carry
	// no failure verdict.
	Failures     int   `json:"failures"`
	ScoredCycles int64 `json:"scored_cycles"`

	// Events counts defect events striking the patch; RemoveEvents those
	// severe enough to require deformation; Detected how many of the latter
	// the window detector localized; LatencyCycles the summed onset→flag
	// latency over the detected ones.
	Events        int   `json:"events"`
	RemoveEvents  int   `json:"remove_events"`
	Detected      int   `json:"detected"`
	LatencyCycles int64 `json:"latency_cycles"`

	// Deformations counts detector-triggered Step calls; Recoveries counts
	// confirmed-recovery Recover calls; Severed reports that removal
	// disconnected the patch and ended the trajectory.
	Deformations int  `json:"deformations"`
	Recoveries   int  `json:"recoveries"`
	Severed      bool `json:"severed,omitempty"`

	// DeviceDefects counts the fabrication-defective sites of the sampled
	// device (data plus syndrome; identical across paired arms). Bandages
	// counts the data qubits currently merged into super-stabilizer
	// bandages at boot, plus each later bandage operation's fresh sites.
	// Both are zero (and omitted) when Config.Device is nil and the super
	// tier never acts — old single-device rows keep their identity.
	DeviceDefects int `json:"device_defects,omitempty"`
	Bandages      int `json:"bandages,omitempty"`

	// BlockedCycles counts cycles during which the patch spilled past its
	// Δd reserve and blocked its communication channels; DistanceCycles is
	// the time-weighted sum of min(dX, dZ); MinDistance the lowest distance
	// the code passed through; Epochs the number of sampled chunks.
	BlockedCycles  int64 `json:"blocked_cycles"`
	DistanceCycles int64 `json:"distance_cycles"`
	MinDistance    int   `json:"min_distance"`
	Epochs         int   `json:"epochs"`

	// Reweights counts decoder-prior updates: chunks whose estimated-prior
	// overlay differed from the previous chunk's (including resets back to
	// nominal). ReweightedCycles counts cycles decoded under estimated
	// priors; MismatchCycles counts cycles decoded with the nominal prior
	// while elevated true rates were active on the patch — the
	// prior-mismatch regime reweighting exists to shrink. RateErrCycles is
	// the cycle-weighted mean absolute error between estimated and true
	// per-site rates over the reweighted cycles (divide by ReweightedCycles
	// for the mean error).
	Reweights        int     `json:"reweights,omitempty"`
	ReweightedCycles int64   `json:"reweighted_cycles,omitempty"`
	MismatchCycles   int64   `json:"mismatch_cycles,omitempty"`
	RateErrCycles    float64 `json:"rate_err_cycles,omitempty"`

	// OverlayDEMBuilds counts decode-DEM constructions forced by
	// estimated-prior overlays: reweight-tier chunks whose overlaid decode
	// model was not already in this trajectory's private hot cache. This is
	// the dominant wall-clock cost of the reweight tier (the PR 5
	// cycles/sec regression — see DESIGN.md §10) made countable. It is
	// deterministic for fixed (Config, Mode, seed): the hot cache starts
	// empty per trajectory and its limit is a package constant.
	OverlayDEMBuilds int `json:"overlay_dem_builds,omitempty"`

	// Layout-level fields, populated only by the layout engine
	// (Config.Layout non-nil). Patches carries the per-patch slices of the
	// aggregate counters above; the remaining fields are the router and
	// lattice-surgery aggregates. In layout mode the cycle-weighted
	// aggregates (ScoredCycles, BlockedCycles, DistanceCycles) are summed
	// over patches, i.e. measured in patch-cycles.
	Patches []PatchResult `json:"patches,omitempty"`
	// ChannelEvents counts defect events with sites in the routing channels
	// (outside every patch tile); ChannelBlockedCycles the cycles during
	// which at least one channel cell was blocked by such an event.
	ChannelEvents        int   `json:"channel_events,omitempty"`
	ChannelBlockedCycles int64 `json:"channel_blocked_cycles,omitempty"`
	// OpsTotal/OpsCompleted count the lattice-surgery schedule;
	// ProgramDone reports completion within the horizon, at
	// ProgramDoneCycle. StallCycles accrues d cycles per routing attempt
	// with eligible but unroutable operations; Replans counts operations
	// that executed after at least one failed attempt; MergeBlockedOps
	// counts routed merges rejected by the surgery.MergeBlocked check.
	OpsTotal         int   `json:"ops_total,omitempty"`
	OpsCompleted     int   `json:"ops_completed,omitempty"`
	ProgramDone      bool  `json:"program_done,omitempty"`
	ProgramDoneCycle int64 `json:"program_done_cycle,omitempty"`
	StallCycles      int64 `json:"stall_cycles,omitempty"`
	Replans          int   `json:"replans,omitempty"`
	MergeBlockedOps  int   `json:"merge_blocked_ops,omitempty"`
}

// PatchResult is one patch's slice of a layout-level Result; the aggregate
// fields of Result sum these (plus the channel/router fields, which have no
// per-patch decomposition).
type PatchResult struct {
	Events        int   `json:"events"`
	RemoveEvents  int   `json:"remove_events,omitempty"`
	Detected      int   `json:"detected,omitempty"`
	Failures      int   `json:"failures,omitempty"`
	Deformations  int   `json:"deformations,omitempty"`
	Recoveries    int   `json:"recoveries,omitempty"`
	BlockedCycles int64 `json:"blocked_cycles,omitempty"`
	MinDistance   int   `json:"min_distance"`
	Severed       bool  `json:"severed,omitempty"`
}

// Stream salts for the per-trajectory seed derivation (negative so they can
// never collide with engine shard indices; see mc.DeriveSeed).
const (
	saltEvents = int64(-0x7E01)
	saltShots  = int64(-0x7E02)
	saltDevice = int64(-0x7E03)
)

// hotCacheLimit sizes each trajectory's private hot-model DEM cache
// (0 = the sim.DEMCache default). It is a variable only so tests can
// squeeze it to force mid-trajectory clears and pin that memo eviction
// never changes results.
var hotCacheLimit = 0

// patchDEMs selects the incremental DEM path: site-rate variants (true
// defect rates on the sample side, estimated-prior overlays on the decode
// side) are derived by patching the chunk's nominal DEM — clone-on-write of
// the probability vector, shared mechanism/detector structure — instead of
// re-running the full fault enumeration, and decoding graphs are re-derived
// from the nominal graph's merge skeleton. Value-identical by construction;
// a variable only so the equivalence suite can pin the patch path against
// the full-rebuild reference.
var patchDEMs = true

// event is one defect occurrence normalized across species.
type event struct {
	start, end int64
	sites      []lattice.Coord
	rates      []float64
	remove     bool  // severity: needs deformation (vs decoder reweighting)
	detectedAt int64 // first cycle a flag matched this event (-1 until then)
}

// boundary kinds, processed at chunk scheduling points.
const (
	boundModel   = iota // an event starts or ends: the noise model changes
	boundRecover        // a subsided event's recovery is confirmed
)

type boundary struct {
	cycle int64
	kind  int
	ev    *event
}

// Run simulates one trajectory and returns its outcome. The result is a
// pure function of (cfg, mode, seed) — the registry counters and trace
// events it feeds only observe that result, never shape it.
func Run(cfg Config, mode Mode, seed int64) (*Result, error) {
	res, err := run(cfg, mode, seed)
	if res != nil {
		obsTrajectories.Inc()
		obsTrajCycles.Add(res.ElapsedCycles)
		prefix := "traj." + mode.String() + "."
		r := obs.Default()
		r.Counter(prefix + "deformations").Add(int64(res.Deformations))
		r.Counter(prefix + "recoveries").Add(int64(res.Recoveries))
		r.Counter(prefix + "reweights").Add(int64(res.Reweights))
		r.Counter(prefix + "overlay_dem_builds").Add(int64(res.OverlayDEMBuilds))
		if res.OpsTotal > 0 {
			r.Counter(prefix + "ops_completed").Add(int64(res.OpsCompleted))
			r.Counter(prefix + "stall_cycles").Add(res.StallCycles)
			r.Counter(prefix + "replans").Add(int64(res.Replans))
			r.Counter(prefix + "merge_blocked").Add(int64(res.MergeBlockedOps))
		}
		cfg.Trace.Emit(obs.TraceEvent{
			Type: obs.TraceEnd, Cycle: res.ElapsedCycles, Arm: res.Mode, Traj: cfg.TraceTraj,
			Epochs: res.Epochs, Failures: res.Failures,
			Deformations: res.Deformations, Recoveries: res.Recoveries,
			Reweights: res.Reweights, OverlayBuilds: res.OverlayDEMBuilds,
			Severed: res.Severed,
		})
	}
	return res, err
}

// run is the engine body behind Run.
func run(cfg Config, mode Mode, seed int64) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Layout != nil {
		return runLayout(cfg, mode, seed)
	}
	tr, tj, arm := cfg.Trace, cfg.TraceTraj, mode.String()
	cache := cfg.Cache
	if cache == nil {
		cache = sim.SharedDEMCache()
	}
	nominal := noise.Uniform(cfg.PhysicalRate)

	// Runtime state: a single-patch plan drives the deformation unit and the
	// channel bookkeeping; the untreated arm keeps the pristine code.
	var (
		sys     *core.System
		curCode *code.Code
	)
	base := deform.NewSquareSpec(lattice.Coord{}, cfg.D)
	bmin, bmax := base.Bounds()
	switch mode {
	case ModeUntreated, ModeReweightOnly:
		c, err := base.Build()
		if err != nil {
			return nil, err
		}
		curCode = c
	case ModeASC:
		lay := layout.New(layout.ASCS, 1, cfg.D, 0)
		plan := &core.Plan{D: cfg.D, DeltaD: 0, Layout: lay}
		sys = plan.NewSystemWith(deform.PolicyASC, deform.UniformBudget(0))
	case ModeSuperOnly:
		// Bandages never grow or shrink the patch footprint, so the arm
		// needs no growth reserve; the policy is inert (Step is never
		// routed here) but the unit must exist for Bandage/Unbandage.
		lay := layout.New(layout.ASCS, 1, cfg.D, 0)
		plan := &core.Plan{D: cfg.D, DeltaD: 0, Layout: lay}
		sys = plan.NewSystemWith(deform.PolicyASC, deform.UniformBudget(0))
	default:
		lay := layout.New(layout.SurfDeformer, 1, cfg.D, cfg.DeltaD)
		plan := &core.Plan{D: cfg.D, DeltaD: cfg.DeltaD, Layout: lay}
		sys = plan.NewSystemWith(deform.PolicySurfDeformer, deform.UniformBudget(cfg.DeltaD))
	}
	if sys != nil {
		c, err := sys.Unit(0).Code()
		if err != nil {
			return nil, err
		}
		curCode = c
	}
	// The arm's §VIII mitigation ladder routes detected elevations: mild
	// ones to the decoder-prior reweight tier, severely noisy qubits to a
	// super-stabilizer bandage, severe regions to deformation (the Step and
	// Super calls below are gated on Handles). Deforming arms also install
	// the ladder on their runtime system so consumers inspecting the System
	// see the ladder its patches actually run under.
	mit, err := armMitigation(cfg, mode)
	if err != nil {
		return nil, err
	}
	if sys != nil {
		sys.SetMitigation(mit)
	}
	reweightFactor := cfg.ReweightFactor
	if reweightFactor == 0 {
		reweightFactor = DefaultReweightFactor
	}

	eventRNG := rand.New(rand.NewSource(mc.DeriveSeed(seed, saltEvents)))
	shotRNG := rand.New(rand.NewSource(mc.DeriveSeed(seed, saltShots)))
	events := sampleEvents(cfg, bmin, bmax, eventRNG)
	bounds := eventBoundaries(cfg, events)
	device := sampleDevice(cfg, bmin, bmax, seed)
	deviceRates := deviceRateMap(device)

	res := &Result{
		Mode:           mode.String(),
		Horizon:        cfg.Horizon,
		FirstFailCycle: -1,
		MinDistance:    minDist(curCode),
		DeviceDefects:  deviceDefectCount(device),
	}
	for _, e := range events {
		res.Events++
		if e.remove {
			res.RemoveEvents++
		}
	}

	window := detect.NewWindow(cfg.Window, cfg.Threshold)
	window.SetHalflife(cfg.Halflife)
	attributed := map[int32]*attribution{}
	// Hot-model DEMs carry this trajectory's seed-specific defect regions
	// and estimated-prior overlays and never recur across trajectories; a
	// private cache keeps them from churning the shared cache's nominal
	// entries (which every trajectory of the fan-out reuses) through its
	// wholesale-clear eviction. The memo layers the per-DEM decoders,
	// samplers and observable stats over both caches, keyed on canonical
	// configuration keys, and bounds itself — cache clears cannot leak dead
	// entries or cost the memo its working set.
	hotCache := sim.NewDEMCache(hotCacheLimit)
	memo := newDEMMemo()
	patcher := &sim.Patcher{}
	var roundScratch [][]int32
	// The pristine (undeformed) patch is the one code whose DEMs recur
	// across every trajectory of a fan-out; DEMs of deformed codes encode
	// this trajectory's seed-specific defect regions and would only churn
	// the shared cache's working set (forcing wholesale clears and memo
	// prunes in every concurrent trajectory), so they build privately.
	pristine := curCode
	var (
		prevOverlay map[lattice.Coord]float64
		codeSites   map[lattice.Coord]bool
		sitesOf     *code.Code // code codeSites was computed for
	)
	blocked := false
	nextBound := 0
	cycle := int64(0)
	quietUntil := int64(0) // post-deformation dwell: no detector consults

	// Boot adaptation: the arm's strongest enabled structural tier handles
	// the device's defective data qubits before the first cycle (after
	// `pristine` is captured — device-adapted codes are seed-specific and
	// must build through the private cache). A device so broken the patch
	// cannot boot terminates the trajectory as failed from cycle 0.
	if bc, n, err := bootAdapt(sys, 0, mit, device, nil); err != nil {
		return terminate(res, 0, err)
	} else if bc != nil {
		curCode = bc
		blocked = sys.Blocked(0)
		res.Bandages += n
		if d := minDist(curCode); d < res.MinDistance {
			res.MinDistance = d
		}
	}

	for cycle < cfg.Horizon {
		// Process due boundaries: model changes need no action (the chunk's
		// model is rebuilt from the active set below); recovery confirmations
		// shrink the code back.
		for nextBound < len(bounds) && bounds[nextBound].cycle <= cycle {
			b := bounds[nextBound]
			nextBound++
			if b.kind != boundRecover {
				continue
			}
			if sys == nil {
				// Untreated arm: the attribution bookkeeping still expires at
				// the same confirmation point (by which the stale firings have
				// aged out of the window) so later events are re-detectable.
				expireAttributions(events, attributed, cycle)
				continue
			}
			// The recovery path mirrors the arm's structural tier: removal
			// arms reincorporate sites, the bandage arm releases its
			// super-stabilizers, anything else just expires the bookkeeping.
			var recovered int
			var err error
			switch {
			case mit.Handles(defect.SeverityRemove):
				recovered, err = recoverSubsided(sys, 0, events, attributed, cycle)
			case mit.Handles(defect.SeveritySuper):
				recovered, err = unbandageSubsided(sys, 0, events, attributed, cycle)
			default:
				expireAttributions(events, attributed, cycle)
			}
			if err != nil {
				return terminate(res, cycle, err)
			}
			if recovered > 0 {
				res.Recoveries++
				st, err := refresh(sys)
				if err != nil {
					return terminate(res, cycle, err)
				}
				curCode = st
				blocked = sys.Blocked(0)
				if d := minDist(curCode); d < res.MinDistance {
					res.MinDistance = d
				}
				tr.Emit(obs.TraceEvent{Type: obs.TraceRecover, Cycle: cycle, Arm: arm, Traj: tj,
					Sites: recovered, Distance: minDist(curCode)})
			}
		}

		// Chunk length: the scheduling quantum clamped to the next model
		// boundary and the horizon. DEM construction needs at least 2
		// rounds, so boundaries quantize to 2 cycles in the worst case.
		rem := cfg.Horizon - cycle
		if rem < 2 {
			// A DEM needs at least 2 rounds; credit the trailing cycle
			// without sampling it rather than overshoot the horizon.
			advance(res, rem, blocked, curCode)
			cycle += rem
			break
		}
		chunk := int64(cfg.ChunkRounds)
		if nextBound < len(bounds) {
			if until := bounds[nextBound].cycle - cycle; until < chunk {
				chunk = until
			}
		}
		if chunk < 2 {
			chunk = 2
		}
		if chunk > rem {
			chunk = rem // rem >= 2, so the DEM floor still holds
		}

		if sitesOf != curCode {
			codeSites = siteSet(curCode)
			sitesOf = curCode
		}
		rates := mergedRates(activeRates(events, cycle), deviceRates)
		codeCache := cache
		if curCode != pristine {
			codeCache = hotCache // deformed code: seed-specific, build privately
		}
		// Nominal DEM first: it is both the decode-side baseline and the
		// patch base for this chunk's site-rate variants (true defect rates
		// on the sample side, estimated-prior overlays on the decode side) —
		// variants clone the probability vector and refold only the
		// mechanisms the changed sites touch instead of re-running the full
		// fault enumeration.
		nominalDEM, nomKey, err := codeCache.BuildDEMKeyed(curCode, nominal, int(chunk), cfg.Basis)
		if err != nil {
			return nil, err
		}
		patchBase := nominalDEM
		if !patchDEMs {
			patchBase = nil // full-rebuild reference leg (equivalence suite)
		}
		sampleDEM, sampleKey := nominalDEM, nomKey
		if len(rates) > 0 {
			sampleDEM, sampleKey, err = hotCache.BuildDEMPatched(patcher, patchBase,
				curCode, nominal.WithSiteRates(rates), int(chunk), cfg.Basis)
			if err != nil {
				return nil, err
			}
		}
		// Decode model: nominal priors, plus — when the arm's ladder enables
		// the reweight tier — the detector's estimated site-rate overlay.
		// The overlay derives from window state accumulated by *previous*
		// chunks: the detector, not the event list, drives the decode model,
		// so it is nominal until detection and keeps sampling on true rates.
		var overlay map[lattice.Coord]float64
		if mit.ReweightTier && cycle >= int64(cfg.Window) {
			overlay = reweightOverlay(window, memo.obsStats(nomKey, nominalDEM), mit,
				cfg.PhysicalRate, reweightFactor, cfg.Threshold, cycle >= quietUntil)
		}
		decodeDEM, decodeKey := nominalDEM, nomKey
		overlayBuilt := false
		if len(overlay) > 0 {
			preMiss := hotCache.Stats().Misses
			decodeDEM, decodeKey, err = hotCache.BuildDEMPatched(patcher, patchBase,
				curCode, nominal.OverlaySiteRates(overlay), int(chunk), cfg.Basis)
			if err != nil {
				return nil, err
			}
			if hotCache.Stats().Misses > preMiss {
				res.OverlayDEMBuilds++
				overlayBuilt = true
			}
		}
		if !maps.Equal(overlay, prevOverlay) {
			res.Reweights++
			prevOverlay = overlay
			if tr != nil {
				maxMult := 0.0
				for _, rate := range overlay {
					if m := rate / cfg.PhysicalRate; m > maxMult {
						maxMult = m
					}
				}
				tr.Emit(obs.TraceEvent{Type: obs.TraceReweight, Cycle: cycle, Arm: arm, Traj: tj,
					Overlay: len(overlay), MaxMult: maxMult, DEMBuild: overlayBuilt})
			}
		}
		dec := memo.decoder(decodeKey, decodeDEM, nominalDEM)
		sampler := memo.sampler(sampleKey, sampleDEM)
		// Shot timings are measured only under tracing (two clock reads per
		// chunk otherwise saved) and flow only into trace events, never into
		// the Result — wall-clock is not deterministic.
		var sampleNs, decodeNs int64
		var flagged []int32
		var failed bool
		if tr != nil {
			t0 := time.Now()
			flagged0, obsFlip := sampler.Shot(shotRNG)
			sampleNs = time.Since(t0).Nanoseconds()
			t1 := time.Now()
			failed = dec.DecodeToObs(flagged0) != obsFlip
			decodeNs = time.Since(t1).Nanoseconds()
			flagged = flagged0
		} else {
			flagged0, obsFlip := sampler.Shot(shotRNG)
			failed = dec.DecodeToObs(flagged0) != obsFlip
			flagged = flagged0
		}
		res.Epochs++

		// Stream the chunk's detection events into the window round by
		// round; a new flag ends the epoch at that round. Rounds 0..chunk-1
		// map one-to-one onto absolute cycles; the chunk's final detector
		// round (the data-readout reconstruction) is an artifact of per-chunk
		// termination and is not fed — the next chunk's round 0 owns that
		// absolute cycle, so no cycle is ever fed from two shots.
		cut := int64(-1)
		var fresh []int32
		byRound := roundStream(sampleDEM, flagged, chunk, &roundScratch)
		for r := int64(0); r < chunk; r++ {
			window.Feed(int(cycle+r), byRound[r])
			// The engine acts only once a full window of history exists:
			// during warm-up the effective window is so short that single
			// noise firings cross any rate threshold, and deforming on them
			// would shred a healthy patch. After a deformation it dwells one
			// window (quietUntil) — the region's remaining checks flag over
			// several rounds, and dwelling batches them into one refining
			// Step instead of a DEM-rebuilding Step per flag.
			if at := cycle + r; at < int64(cfg.Window) || at < quietUntil {
				continue
			}
			if fresh = newFlags(window, attributed); len(fresh) != 0 {
				cut = r
				break
			}
		}

		window.Trim() // bound detector history (and Flagged cost) per chunk

		if cut < 0 {
			// Full chunk elapsed: score it.
			res.ScoredCycles += chunk
			if failed {
				res.Failures++
				if res.FirstFailCycle < 0 {
					res.FirstFailCycle = cycle + chunk
				}
			}
			accrueReweight(res, chunk, overlay, rates, codeSites, cfg.PhysicalRate)
			advance(res, chunk, blocked, curCode)
			cycle += chunk
			tr.Emit(obs.TraceEvent{Type: obs.TraceEpoch, Cycle: cycle, Arm: arm, Traj: tj,
				Cycles: chunk, Failed: failed, DecodeNs: decodeNs, SampleNs: sampleNs})
			continue
		}

		// Epoch ends mid-chunk: attribute the new flags, act, restart from
		// the cut. The partial chunk carries no failure verdict.
		elapsed := cut + 1
		if elapsed > chunk {
			elapsed = chunk
		}
		accrueReweight(res, elapsed, overlay, rates, codeSites, cfg.PhysicalRate)
		advance(res, elapsed, blocked, curCode)
		cycle += elapsed
		tr.Emit(obs.TraceEvent{Type: obs.TraceEpoch, Cycle: cycle, Arm: arm, Traj: tj,
			Cycles: elapsed, DecodeNs: decodeNs, SampleNs: sampleNs})
		quietUntil = cycle + int64(cfg.Window)
		estimate := attribute(sampleDEM, fresh, attributed, events, cycle, res)
		routeRemove := sys != nil && mit.Handles(defect.SeverityRemove)
		routeSuper := sys != nil && !routeRemove && mit.Handles(defect.SeveritySuper)
		if tr != nil {
			tr.Emit(obs.TraceEvent{Type: obs.TraceDetect, Cycle: cycle, Arm: arm, Traj: tj,
				Flags: len(fresh), Region: len(estimate)})
			sev := "observe"
			switch {
			case routeRemove:
				sev = "remove"
			case routeSuper:
				sev = "super"
			}
			tr.Emit(obs.TraceEvent{Type: obs.TraceMitigate, Cycle: cycle, Arm: arm, Traj: tj, Severity: sev})
		}
		switch {
		case routeRemove:
			st, err := sys.Step(0, estimate)
			if err != nil {
				return terminate(res, cycle, err)
			}
			deformed := len(st.Defects) > 0 || st.Enlarged
			if deformed {
				res.Deformations++
			}
			curCode = st.Code
			blocked = sys.Blocked(0)
			if d := minDist(curCode); d < res.MinDistance {
				res.MinDistance = d
			}
			if deformed {
				tr.Emit(obs.TraceEvent{Type: obs.TraceDeform, Cycle: cycle, Arm: arm, Traj: tj,
					Defects: len(st.Defects), Enlarged: st.Enlarged, Distance: minDist(curCode)})
			}
		case routeSuper:
			// Bandage tier: merge the estimated region's data qubits into
			// super-stabilizers in place (check-site estimates have no
			// bandage analogue — a broken measure qubit is a rate problem,
			// not a data-qubit merge). Sites the bandage construction cannot
			// merge (boundary geometry) are skipped, not escalated — this
			// arm never removes.
			st, err := sys.Super(0, dataSites(estimate))
			if err != nil {
				return terminate(res, cycle, err)
			}
			if n := len(st.Defects); n > 0 {
				res.Bandages += n
				tr.Emit(obs.TraceEvent{Type: obs.TraceDeform, Cycle: cycle, Arm: arm, Traj: tj,
					Defects: n, Distance: minDist(st.Code)})
			}
			curCode = st.Code
			blocked = sys.Blocked(0)
			if d := minDist(curCode); d < res.MinDistance {
				res.MinDistance = d
			}
		}
	}
	res.ElapsedCycles = cycle
	return res, nil
}

func (cfg Config) validate() error {
	switch {
	case cfg.D < 3:
		return fmt.Errorf("traj: distance %d too small", cfg.D)
	case cfg.Horizon < 2:
		return fmt.Errorf("traj: horizon %d too short", cfg.Horizon)
	case cfg.ChunkRounds < 2:
		return fmt.Errorf("traj: chunk of %d rounds (DEMs need ≥ 2)", cfg.ChunkRounds)
	case cfg.Window < 1 || cfg.Threshold <= 0 || cfg.Threshold >= 1:
		return fmt.Errorf("traj: invalid detector window %d/threshold %g", cfg.Window, cfg.Threshold)
	case cfg.PhysicalRate <= 0 || cfg.PhysicalRate >= 0.5:
		return fmt.Errorf("traj: physical rate %g", cfg.PhysicalRate)
	case cfg.ReweightFactor != 0 && cfg.ReweightFactor <= 1:
		return fmt.Errorf("traj: reweight factor %g must exceed 1 (0 selects the default)", cfg.ReweightFactor)
	case cfg.Halflife < 0:
		return fmt.Errorf("traj: negative estimator half-life %g", cfg.Halflife)
	}
	if dv := cfg.Device; dv != nil {
		switch {
		case dv.QubitDefectRate < 0 || dv.QubitDefectRate > 1:
			return fmt.Errorf("traj: device qubit defect rate %g outside [0, 1]", dv.QubitDefectRate)
		case dv.CouplerDefectRate < 0 || dv.CouplerDefectRate > 1:
			return fmt.Errorf("traj: device coupler defect rate %g outside [0, 1]", dv.CouplerDefectRate)
		case dv.ErrorRate < 0 || dv.ErrorRate > 0.5:
			return fmt.Errorf("traj: device error rate %g outside [0, 0.5]", dv.ErrorRate)
		}
	}
	if lc := cfg.Layout; lc != nil {
		switch {
		case lc.Patches < 1:
			return fmt.Errorf("traj: layout needs at least 1 patch, got %d", lc.Patches)
		case lc.Patches > 256:
			return fmt.Errorf("traj: layout of %d patches exceeds the 256-patch bound", lc.Patches)
		case (lc.Program != "" || lc.Ops > 0) && lc.Patches < 2:
			return fmt.Errorf("traj: a surgery schedule needs at least 2 patches")
		case lc.Ops < 0:
			return fmt.Errorf("traj: negative surgery op count %d", lc.Ops)
		}
		if _, err := lc.program(); err != nil {
			return err
		}
	}
	return nil
}

// terminate ends a trajectory that severed its patch: the remaining horizon
// is unprotected, so the trajectory counts as failed from the severing cycle
// onward. The error is consumed — a severed patch is a measured outcome of
// the arm (ASC-S severs more), not a simulation fault. Like MemorySweep's
// severed rows, this conservatively classifies *any* removal/enlargement/
// rebuild error as severing; deform exposes no sentinel distinguishing a
// disconnected patch from other failures.
func terminate(res *Result, cycle int64, _ error) (*Result, error) {
	res.Severed = true
	res.Failures++
	if res.FirstFailCycle < 0 {
		res.FirstFailCycle = cycle
	}
	res.ElapsedCycles = cycle
	res.MinDistance = 0
	return res, nil
}

// advance accrues the per-cycle aggregates over an elapsed stretch.
func advance(res *Result, cycles int64, blocked bool, c *code.Code) {
	if blocked {
		res.BlockedCycles += cycles
	}
	res.DistanceCycles += int64(minDist(c)) * cycles
}

func minDist(c *code.Code) int {
	dx, dz := c.DistanceX(), c.DistanceZ()
	if dx < dz {
		return dx
	}
	return dz
}

// refresh rebuilds the system's patch-0 code after a recovery. Rebuilding
// goes through Unit.Code, not Spec().Build(), so permanent bandages (boot
// adaptation) survive the rebuild.
func refresh(sys *core.System) (*code.Code, error) {
	return sys.Unit(0).Code()
}

// sampleEvents draws the merged, time-sorted defect timeline of all enabled
// species over the horizon.
func sampleEvents(cfg Config, min, max lattice.Coord, rng *rand.Rand) []*event {
	var out []*event
	if cfg.Cosmic != nil {
		s := defect.NewSampler(cfg.Cosmic, min, max)
		for _, e := range s.SampleWindow(cfg.Horizon, rng) {
			rates := make([]float64, len(e.Region))
			for i := range rates {
				rates[i] = cfg.Cosmic.ErrorRate
			}
			out = append(out, &event{
				start: e.StartCycle, end: e.EndCycle,
				sites: e.Region, rates: rates,
				remove:     defect.Classify(cfg.Cosmic.ErrorRate) == defect.SeverityRemove,
				detectedAt: -1,
			})
		}
	}
	sites := defect.Sites(min, max)
	if cfg.Leakage != nil {
		for _, e := range cfg.Leakage.SampleLeakage(sites, cfg.Horizon, rng) {
			r := make([]float64, len(e.Region))
			for i, q := range e.Region {
				if q == e.Center {
					r[i] = 0.5 // the leaked qubit itself is inoperable
				} else {
					r[i] = cfg.Leakage.NeighbourRate
				}
			}
			out = append(out, &event{
				start: e.StartCycle, end: e.EndCycle,
				sites: e.Region, rates: r,
				remove:     defect.Classify(cfg.Leakage.NeighbourRate) == defect.SeverityRemove,
				detectedAt: -1,
			})
		}
	}
	if cfg.Drift != nil {
		drifted := cfg.Drift.DriftedRate(cfg.PhysicalRate)
		for _, e := range cfg.Drift.SampleDrift(sites, cfg.Horizon, 1e-6, rng) {
			out = append(out, &event{
				start: e.StartCycle, end: e.EndCycle,
				sites: e.Region, rates: []float64{drifted},
				remove:     defect.Classify(drifted) == defect.SeverityRemove,
				detectedAt: -1,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.end != b.end {
			return a.end < b.end
		}
		return a.sites[0].Less(b.sites[0])
	})
	return out
}

// eventBoundaries lists the chunk-clamping cycle boundaries: every event
// start and end (the noise model changes there) plus, for removable events,
// a recovery confirmation one detector window after expiry — modeling the
// statistical confirmation delay of the paper's recovery path.
func eventBoundaries(cfg Config, events []*event) []boundary {
	var bs []boundary
	for _, e := range events {
		bs = append(bs, boundary{cycle: e.start, kind: boundModel, ev: e})
		if e.end < cfg.Horizon {
			bs = append(bs, boundary{cycle: e.end, kind: boundModel, ev: e})
			if e.remove {
				bs = append(bs, boundary{cycle: e.end + int64(cfg.Window), kind: boundRecover, ev: e})
			}
		}
	}
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].cycle < bs[j].cycle })
	return bs
}

// activeRates returns the per-site rate overrides of the events active at
// the cycle; overlapping events take the maximum rate per site.
func activeRates(events []*event, cycle int64) map[lattice.Coord]float64 {
	var rates map[lattice.Coord]float64
	for _, e := range events {
		if cycle < e.start || cycle >= e.end {
			continue
		}
		if rates == nil {
			rates = map[lattice.Coord]float64{}
		}
		for i, q := range e.sites {
			if e.rates[i] > rates[q] {
				rates[q] = e.rates[i]
			}
		}
	}
	return rates
}

// stableID maps an observable to a code-change-stable detector identity:
// the representative hardware coordinate of the check, packed into an
// int32. DEM observable indices are not stable across deformations, so the
// window detector keys on hardware locations instead.
func stableID(info sim.ObsInfo) int32 {
	q := info.Support[0]
	if len(info.Ancillas) > 0 {
		q = info.Ancillas[0]
	}
	return int32(q.Row)<<16 | int32(q.Col)&0xFFFF
}

// roundStream buckets a shot's flagged detectors into per-round stable-id
// lists (index r holds the ids firing in round r of the chunk). Rows live
// in the caller-owned scratch and are valid only until the next call —
// safe because detect.Window.Feed copies the ids it retains — keeping the
// per-chunk streaming allocation-free at steady state.
func roundStream(dem *sim.DEM, flagged []int32, chunk int64, scratch *[][]int32) [][]int32 {
	byRound := *scratch
	if int64(cap(byRound)) < chunk+1 {
		grown := make([][]int32, chunk+1)
		copy(grown, byRound)
		byRound = grown
		*scratch = grown
	}
	byRound = byRound[:chunk+1]
	for i := range byRound {
		byRound[i] = byRound[i][:0]
	}
	for _, det := range flagged {
		r := int64(dem.DetRound[det])
		if r < 0 || r > chunk {
			continue
		}
		byRound[r] = append(byRound[r], stableID(dem.Observables[dem.DetObs[det]]))
	}
	return byRound
}

// attribution is the bookkeeping of one acted-on detector flag: the sites
// actually reported to the deformation unit (recovered when the flag's
// events subside) and the raw check support at attribution time (kept for
// multiplicity voting — the observable may not exist in later DEMs).
type attribution struct {
	est     []lattice.Coord
	support []lattice.Coord
}

func (a *attribution) claim(q lattice.Coord) bool {
	for _, s := range a.est {
		if s == q {
			return false
		}
	}
	a.est = append(a.est, q)
	return true
}

// newFlags returns the currently flagged stable ids not yet attributed.
func newFlags(w *detect.Window, attributed map[int32]*attribution) []int32 {
	var fresh []int32
	for _, id := range w.Flagged() {
		if _, ok := attributed[id]; !ok {
			fresh = append(fresh, id)
		}
	}
	return fresh
}

// attribute records the newly flagged ids, estimates their hardware region
// from the current DEM, and credits detection latency to the matching
// events. The estimate is the detector's view, not the truth: a flagged
// check's own ancilla is trusted outright, but a data site is included
// only when at least two flagged checks cover it (multiplicity voting
// across the new and previously attributed flags). Taking every flagged
// check's full support instead over-removes ~4 healthy data qubits per
// adjacent check and shreds the patch under repeated strikes.
func attribute(dem *sim.DEM, fresh []int32, attributed map[int32]*attribution, events []*event, cycle int64, res *Result) []lattice.Coord {
	counts := map[lattice.Coord]int{}
	for _, att := range attributed {
		for _, q := range att.support {
			counts[q]++
		}
	}
	type candidate struct {
		id                int32
		support, ancillas []lattice.Coord
	}
	var cands []candidate
	for _, id := range fresh {
		var sup, anc []lattice.Coord
		for _, info := range dem.Observables {
			if stableID(info) != id {
				continue
			}
			sup = append(sup, info.Support...)
			anc = append(anc, info.Ancillas...)
		}
		for _, q := range sup {
			counts[q]++
		}
		cands = append(cands, candidate{id: id, support: sup, ancillas: anc})
	}

	estSet := map[lattice.Coord]bool{}
	for _, c := range cands {
		att := &attribution{support: c.support}
		for _, q := range c.ancillas {
			if att.claim(q) {
				estSet[q] = true
			}
		}
		for _, q := range c.support {
			if counts[q] >= 2 && att.claim(q) {
				estSet[q] = true
			}
		}
		lattice.SortCoords(att.est)
		attributed[c.id] = att
	}
	// Fresh support may have pushed an earlier attribution's data sites to
	// multiplicity 2: claim them now (sorted id order for determinism).
	for _, id := range subsetIDs(attributed, fresh) {
		att := attributed[id]
		for _, q := range att.support {
			if counts[q] >= 2 && att.claim(q) {
				estSet[q] = true
			}
		}
		lattice.SortCoords(att.est)
	}

	// Latency: first estimate overlapping a yet-undetected removable event
	// while it is still active.
	for _, e := range events {
		if !e.remove || e.detectedAt >= 0 || cycle < e.start || cycle >= e.end {
			continue
		}
		for _, q := range e.sites {
			if estSet[q] {
				e.detectedAt = cycle
				res.Detected++
				res.LatencyCycles += cycle - e.start
				break
			}
		}
	}
	estimate := make([]lattice.Coord, 0, len(estSet))
	for q := range estSet {
		estimate = append(estimate, q)
	}
	lattice.SortCoords(estimate)
	return estimate
}

// subsetIDs lists, sorted, the attributed ids not among the fresh ones.
func subsetIDs(attributed map[int32]*attribution, fresh []int32) []int32 {
	isFresh := map[int32]bool{}
	for _, id := range fresh {
		isFresh[id] = true
	}
	var ids []int32
	for id := range attributed {
		if !isFresh[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// activeRemoveSites returns the union of removable-event regions active at
// the cycle.
func activeRemoveSites(events []*event, cycle int64) map[lattice.Coord]bool {
	active := map[lattice.Coord]bool{}
	for _, e := range events {
		if !e.remove || cycle < e.start || cycle >= e.end {
			continue
		}
		for _, q := range e.sites {
			active[q] = true
		}
	}
	return active
}

// subsidedSites drops the attributions whose estimated region no longer
// intersects any active removable event and returns their sites (minus
// sites still claimed by an active event), sorted. Nil when nothing
// subsided — the shared front half of the structural recovery paths.
func subsidedSites(events []*event, attributed map[int32]*attribution, cycle int64) []lattice.Coord {
	active := activeRemoveSites(events, cycle)
	drop := subsidedIDs(attributed, active)
	if len(drop) == 0 {
		return nil
	}
	siteSet := map[lattice.Coord]bool{}
	for _, id := range drop {
		for _, q := range attributed[id].est {
			if !active[q] {
				siteSet[q] = true
			}
		}
		delete(attributed, id)
	}
	sites := make([]lattice.Coord, 0, len(siteSet))
	for q := range siteSet {
		sites = append(sites, q)
	}
	lattice.SortCoords(sites)
	return sites
}

// recoverSubsided reincorporates the subsided attributions' sites into
// patch i. Returns how many sites were reincorporated (0 when no recovery
// happened).
func recoverSubsided(sys *core.System, i int, events []*event, attributed map[int32]*attribution, cycle int64) (int, error) {
	sites := subsidedSites(events, attributed, cycle)
	if len(sites) == 0 {
		return 0, nil
	}
	if _, err := sys.Recover(i, sites); err != nil {
		return 0, err
	}
	return len(sites), nil
}

// unbandageSubsided is the bandage arm's recovery path: the subsided
// attributions' sites are released from their super-stabilizers (undoing
// the gauge merge). Boot-adaptation bandages are never in the attribution
// bookkeeping, so they stay permanent. Returns how many sites were
// released.
func unbandageSubsided(sys *core.System, i int, events []*event, attributed map[int32]*attribution, cycle int64) (int, error) {
	sites := subsidedSites(events, attributed, cycle)
	if len(sites) == 0 {
		return 0, nil
	}
	st, err := sys.Unbandage(i, sites)
	if err != nil {
		return 0, err
	}
	return len(st.Defects), nil
}

// expireAttributions is the untreated arm's counterpart of recoverSubsided:
// the bookkeeping expires, nothing acts.
func expireAttributions(events []*event, attributed map[int32]*attribution, cycle int64) {
	active := activeRemoveSites(events, cycle)
	for _, id := range subsidedIDs(attributed, active) {
		delete(attributed, id)
	}
}

// subsidedIDs lists, in sorted order, the attributed ids whose flagged
// check no longer overlaps any active removable event (neither the sites
// reported to the unit nor the check's own support).
func subsidedIDs(attributed map[int32]*attribution, active map[lattice.Coord]bool) []int32 {
	var drop []int32
	for id, att := range attributed {
		hot := false
		for _, q := range att.est {
			if active[q] {
				hot = true
				break
			}
		}
		for _, q := range att.support {
			if hot {
				break
			}
			if active[q] {
				hot = true
			}
		}
		if !hot {
			drop = append(drop, id)
		}
	}
	sort.Slice(drop, func(i, j int) bool { return drop[i] < drop[j] })
	return drop
}
