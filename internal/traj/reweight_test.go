package traj

import (
	"reflect"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

func buildCode(t *testing.T, d int) *code.Code {
	t.Helper()
	c, err := deform.NewSquareSpec(lattice.Coord{}, d).Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReweightBeatsUntreatedOnDrift is the paired-arm acceptance test of
// the reweight tier: on a drift-only timeline — where deformation has
// nothing to remove and the entire defect burden is decoder-prior
// mismatch — ModeReweightOnly must fail strictly less often than
// ModeUntreated over the same pinned seeds. Both arms sample identical
// shots from identical true-rate DEMs; the only difference is the decode
// model, so the gap isolates exactly the estimated-prior win.
func TestReweightBeatsUntreatedOnDrift(t *testing.T) {
	cfg := DriftOnlyConfig()
	cfg.Cache = sim.NewDEMCache(0)
	var rwFails, utFails, rwCycles int64
	for seed := int64(1); seed <= 6; seed++ {
		rw, err := Run(cfg, ModeReweightOnly, seed)
		if err != nil {
			t.Fatal(err)
		}
		ut, err := Run(cfg, ModeUntreated, seed)
		if err != nil {
			t.Fatal(err)
		}
		if rw.Events != ut.Events {
			t.Fatalf("seed %d: arms saw different timelines (%d vs %d events); the comparison is not paired",
				seed, rw.Events, ut.Events)
		}
		rwFails += int64(rw.Failures)
		utFails += int64(ut.Failures)
		rwCycles += rw.ReweightedCycles
	}
	if rwCycles == 0 {
		t.Fatal("reweight arm never engaged its estimated priors on a drift-heavy timeline")
	}
	if rwFails >= utFails {
		t.Errorf("reweight-only failures %d not strictly below untreated %d over the pinned seeds", rwFails, utFails)
	}
}

// TestMemoPrunedAfterCacheClear pins the memo bound on the content-keyed
// memo: the canonical-key entries can never outgrow demMemoLimit no matter
// how many distinct configurations stream through (one dead entry per
// evicted DEM, forever, was the original leak), and — the content-keying
// win — an entry survives a cache clear: when the evicting cache mints a
// fresh *DEM pointer for a configuration already memoized, the memo adopts
// the pointer and serves the same decoder instead of rebuilding its graph.
func TestMemoPrunedAfterCacheClear(t *testing.T) {
	oldLimit := demMemoLimit
	demMemoLimit = 8
	defer func() { demMemoLimit = oldLimit }()
	hot := sim.NewDEMCache(2) // tiny: every few distinct models clear it
	memo := newDEMMemo()
	c := buildCode(t, 3)
	build := func(i int) (*sim.DEM, string) {
		t.Helper()
		rate := 0.01 + float64(i)*0.01 // distinct hot models
		m := noise.Uniform(1e-3).WithSiteRates(map[lattice.Coord]float64{{Row: 1, Col: 1}: rate})
		dem, key, err := hot.BuildDEMKeyed(c, m, 3, lattice.ZCheck)
		if err != nil {
			t.Fatal(err)
		}
		return dem, key
	}
	dem0, key0 := build(0)
	dec0 := memo.decoder(key0, dem0, nil)
	for i := 0; i < 40; i++ {
		dem, key := build(i)
		memo.decoder(key, dem, nil)
		memo.sampler(key, dem)
		memo.obsStats(key, dem)
		if len(memo.entries) > demMemoLimit {
			t.Fatalf("iteration %d: memo grew past its bound (%d entries > %d)",
				i, len(memo.entries), demMemoLimit)
		}
	}
	if hot.Clears() == 0 {
		t.Fatal("test never forced a cache clear; the bound was not exercised")
	}
	// Rebuild configuration 0: the 2-entry cache evicted it long ago, so
	// this mints a fresh pointer — and demMemoLimit=8 with 40 streamed
	// configurations reset the memo too, so re-memoize once, then check the
	// clear-survival path explicitly with a third, pointer-fresh build.
	demA, keyA := build(0)
	if keyA != key0 {
		t.Fatal("canonical key changed for an identical configuration")
	}
	decA := memo.decoder(keyA, demA, nil)
	build(20) // distinct configs churn the 2-entry cache...
	build(21)
	demB, _ := build(0) // ...so this rebuilds config 0 under a fresh pointer
	if demB == demA {
		t.Fatal("cache churn did not mint a fresh pointer; the survival path is unexercised")
	}
	if memo.decoder(key0, demB, nil) != decA {
		t.Error("memo rebuilt the decoder for a configuration it already held (content key not reused)")
	}
	_ = dec0
}

// TestRunDeterministicUnderMemoEviction is the long-horizon integration
// pin: a trajectory whose hot cache is squeezed to 2 entries (forcing
// constant wholesale clears, memo prunes, and decoder/sampler rebuilds
// mid-run) must produce the bit-identical Result — eviction is a memory
// bound, never a behavior change.
func TestRunDeterministicUnderMemoEviction(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cache = sim.NewDEMCache(0)
	want, err := Run(cfg, ModeSurfDeformer, 7)
	if err != nil {
		t.Fatal(err)
	}
	old := hotCacheLimit
	hotCacheLimit = 2
	defer func() { hotCacheLimit = old }()
	cfg.Cache = sim.NewDEMCache(0)
	got, err := Run(cfg, ModeSurfDeformer, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("memo eviction changed the trajectory:\nfull %+v\ntiny %+v", want, got)
	}
}

// TestModeMitigationLadders pins the per-arm §VIII ladders the runtime
// routes on.
func TestModeMitigationLadders(t *testing.T) {
	cases := []struct {
		mode               Mode
		reweight, deformOK bool
	}{
		{ModeSurfDeformer, true, true},
		{ModeASC, false, true},
		{ModeReweightOnly, true, false},
		{ModeUntreated, false, false},
	}
	for _, c := range cases {
		m := c.mode.Mitigation()
		if m.Handles(defect.SeverityReweight) != c.reweight || m.Handles(defect.SeverityRemove) != c.deformOK {
			t.Errorf("%v ladder = %+v, want reweight=%v deform=%v", c.mode, m, c.reweight, c.deformOK)
		}
		if m.Route(0.5) != defect.SeverityRemove || m.Route(0.01) != defect.SeverityReweight {
			t.Errorf("%v ladder misroutes severities", c.mode)
		}
	}
}

// TestQuantizeMultiplier pins the power-of-two estimate ladder that keeps
// the set of distinct reweighted decode models (and so DEM builds) small.
func TestQuantizeMultiplier(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 2}, {1.9, 2}, {2, 2}, {3, 4}, {5, 4}, {6, 8}, {10, 8}, {12, 16}, {100, 128},
	}
	for _, c := range cases {
		if got := quantizeMultiplier(c.in); got != c.want {
			t.Errorf("quantizeMultiplier(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
