package traj

import (
	"encoding/json"
	"reflect"
	"testing"

	"surfdeformer/internal/sim"
)

// TestRunDeterministic pins the engine's core contract: a trajectory's
// Result is a pure function of (Config, Mode, seed) — independent of cache
// instance and of whether the DEMs are built fresh or served from a warm
// cache.
func TestRunDeterministic(t *testing.T) {
	cfg := QuickConfig()
	for _, mode := range []Mode{ModeSurfDeformer, ModeASC, ModeReweightOnly, ModeUntreated} {
		cfg.Cache = sim.NewDEMCache(0)
		cold, err := Run(cfg, mode, 42)
		if err != nil {
			t.Fatalf("%v cold: %v", mode, err)
		}
		warm, err := Run(cfg, mode, 42) // same cache, now warm
		if err != nil {
			t.Fatalf("%v warm: %v", mode, err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%v: warm-cache result differs:\ncold %+v\nwarm %+v", mode, cold, warm)
		}
		cfg.Cache = sim.NewDEMCache(0)
		fresh, err := Run(cfg, mode, 42) // different cache instance
		if err != nil {
			t.Fatalf("%v fresh: %v", mode, err)
		}
		if !reflect.DeepEqual(cold, fresh) {
			t.Errorf("%v: cache-instance-dependent result:\nA %+v\nB %+v", mode, cold, fresh)
		}
	}
}

// TestRunSeedSensitivity verifies distinct seeds draw distinct timelines
// (the engine is not accidentally ignoring its seed).
func TestRunSeedSensitivity(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cache = sim.NewDEMCache(0)
	seen := map[int]bool{}
	for seed := int64(1); seed <= 6; seed++ {
		r, err := Run(cfg, ModeUntreated, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Events] = true
	}
	if len(seen) < 2 {
		t.Errorf("6 seeds produced a single event count %v; seed appears unused", seen)
	}
}

// TestRunInvariants checks the structural accounting of every arm over a
// few seeds.
func TestRunInvariants(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cache = sim.NewDEMCache(0)
	anyDeformed := false
	anyReweighted := false
	for _, mode := range []Mode{ModeSurfDeformer, ModeASC, ModeReweightOnly, ModeUntreated} {
		for seed := int64(1); seed <= 4; seed++ {
			r, err := Run(cfg, mode, seed)
			if err != nil {
				t.Fatalf("%v seed %d: %v", mode, seed, err)
			}
			if r.Mode != mode.String() {
				t.Errorf("result mode %q, want %q", r.Mode, mode)
			}
			if r.ElapsedCycles > cfg.Horizon || (!r.Severed && r.ElapsedCycles != cfg.Horizon) {
				t.Errorf("%v seed %d: elapsed %d of horizon %d (severed=%v)",
					mode, seed, r.ElapsedCycles, cfg.Horizon, r.Severed)
			}
			if r.ScoredCycles > r.ElapsedCycles {
				t.Errorf("%v seed %d: scored %d > elapsed %d", mode, seed, r.ScoredCycles, r.ElapsedCycles)
			}
			if r.Detected > r.RemoveEvents {
				t.Errorf("%v seed %d: detected %d > removable %d", mode, seed, r.Detected, r.RemoveEvents)
			}
			if r.Detected == 0 && r.LatencyCycles != 0 {
				t.Errorf("%v seed %d: latency %d with no detections", mode, seed, r.LatencyCycles)
			}
			if r.DistanceCycles > int64(cfg.D)*r.ElapsedCycles {
				t.Errorf("%v seed %d: distance-cycles %d exceeds d·elapsed", mode, seed, r.DistanceCycles)
			}
			if r.Failures > 0 && r.FirstFailCycle < 0 {
				t.Errorf("%v seed %d: %d failures but no first-fail cycle", mode, seed, r.Failures)
			}
			// Reweight accounting invariants, every arm.
			if r.ReweightedCycles+r.MismatchCycles > r.ElapsedCycles {
				t.Errorf("%v seed %d: reweighted %d + mismatch %d exceed elapsed %d",
					mode, seed, r.ReweightedCycles, r.MismatchCycles, r.ElapsedCycles)
			}
			if r.ReweightedCycles == 0 && r.RateErrCycles != 0 {
				t.Errorf("%v seed %d: rate error %g with no reweighted cycles", mode, seed, r.RateErrCycles)
			}
			if r.ReweightedCycles > 0 && r.Reweights == 0 {
				t.Errorf("%v seed %d: reweighted cycles without a prior update", mode, seed)
			}
			if !mode.Mitigation().ReweightTier && (r.Reweights != 0 || r.ReweightedCycles != 0) {
				t.Errorf("%v seed %d: arm without a reweight tier updated priors: %+v", mode, seed, r)
			}
			if mode == ModeUntreated || mode == ModeReweightOnly {
				if r.Deformations != 0 || r.Recoveries != 0 || r.Severed {
					t.Errorf("%v seed %d acted on the code: %+v", mode, seed, r)
				}
				if r.MinDistance != cfg.D {
					t.Errorf("%v seed %d: min distance %d, want %d", mode, seed, r.MinDistance, cfg.D)
				}
			} else if r.Deformations > 0 {
				anyDeformed = true
			}
			if mode == ModeReweightOnly && r.ReweightedCycles > 0 {
				anyReweighted = true
			}
		}
	}
	if !anyDeformed {
		t.Error("no treated trajectory deformed; the closed loop never closed")
	}
	if !anyReweighted {
		t.Error("no reweight-only trajectory updated its decode priors; the reweight tier never engaged")
	}
}

// TestResultJSONRoundTrip pins the exactness property the persistent store
// relies on: a Result marshals and unmarshals to an identical value.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cache = sim.NewDEMCache(0)
	r, err := Run(cfg, ModeSurfDeformer, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("round trip changed the result:\nin  %+v\nout %+v", *r, back)
	}
}

// TestNoDefectProcesses runs the engine with every defect species disabled:
// the trajectory must coast through the horizon without ever deforming.
func TestNoDefectProcesses(t *testing.T) {
	cfg := QuickConfig()
	cfg.Cache = sim.NewDEMCache(0)
	cfg.Cosmic, cfg.Leakage, cfg.Drift = nil, nil, nil
	r, err := Run(cfg, ModeSurfDeformer, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 0 || r.Deformations != 0 || r.Recoveries != 0 {
		t.Errorf("defect-free trajectory acted: %+v", r)
	}
	if r.MinDistance != cfg.D {
		t.Errorf("defect-free min distance %d, want %d", r.MinDistance, cfg.D)
	}
	if r.ElapsedCycles != cfg.Horizon {
		t.Errorf("elapsed %d, want full horizon %d", r.ElapsedCycles, cfg.Horizon)
	}
}

// TestConfigValidation pins the config guard rails.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.D = 2 },
		func(c *Config) { c.Horizon = 1 },
		func(c *Config) { c.ChunkRounds = 1 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Threshold = 1 },
		func(c *Config) { c.PhysicalRate = 0 },
		func(c *Config) { c.PhysicalRate = 0.5 },
		func(c *Config) { c.ReweightFactor = 1 },
		func(c *Config) { c.ReweightFactor = -2 },
	}
	for i, mutate := range bad {
		cfg := QuickConfig()
		mutate(&cfg)
		if _, err := Run(cfg, ModeSurfDeformer, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
