package traj

// The layout-level trajectory engine: N patches on a routing grid, driven by
// the same closed loop as the single-patch engine — per patch — plus two
// layout-only mechanisms: defect events landing in the routing channels
// block grid cells for their duration, and a program-derived lattice-surgery
// schedule routes merge operations through the channels (route.Grid), which
// replan around blockage or stall (surgery.MergeBlocked).
//
// The epoch model generalizes patch-wise: every patch samples the same
// chunk of rounds through its own DEM/sampler/decoder with its own shot
// stream, the per-round detector feed interleaves all patches, and the
// first fresh flag on ANY patch cuts the chunk for all of them — patches
// stay cycle-synchronized, which is what lets the surgery schedule and the
// channel bookkeeping sit at chunk boundaries. With one patch and no
// program every layout-only mechanism is inert and the loop reduces to the
// single-patch engine exactly (pinned by TestLayoutSinglePatchEquivalence).
//
// Determinism: the event timeline derives from one stream over the full
// layout bounding box; patch p's shots derive from DeriveSeed(seed,
// saltShots, p) — except patch 0, which keeps the single-patch stream so
// the N=1 reduction is exact. Routing is RNG-free (see internal/route).

import (
	"fmt"
	"maps"
	"math/rand"

	"surfdeformer/internal/code"
	"surfdeformer/internal/core"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/program"
	"surfdeformer/internal/route"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/surgery"
)

// LayoutConfig parameterizes the layout-level engine.
type LayoutConfig struct {
	// Patches is the number of logical patches (row-major on a near-square
	// grid, layout.New placement).
	Patches int
	// Program names the benchmark whose CNOT stream the surgery schedule is
	// a prefix of: "simon", "rca", "qft", "grover", or "" for no schedule.
	Program string
	// Ops truncates the schedule (0 with a Program = 2·Patches, capped at
	// the program's CNOT count; 0 without a Program = no schedule).
	Ops int
}

// program resolves the benchmark named by the config (nil when none).
func (lc *LayoutConfig) program() (*program.Program, error) {
	switch lc.Program {
	case "":
		return nil, nil
	case "simon":
		return program.Simon(lc.Patches, 1), nil
	case "rca":
		return program.RCA(lc.Patches, 1), nil
	case "qft":
		return program.QFT(lc.Patches, 1), nil
	case "grover":
		return program.Grover(lc.Patches, 1), nil
	}
	return nil, fmt.Errorf("traj: unknown layout program %q", lc.Program)
}

// scheduleOps derives the lattice-surgery CNOT schedule: a deterministic
// round-robin over patch pairs (operation k acts on patch k mod N and a
// partner at a stride that advances every full rotation, so the schedule
// exercises all distances on the grid). Patch indices double as grid cell
// indices — layout placement and route.Grid share row-major order.
func (lc *LayoutConfig) scheduleOps() ([]route.CNOT, error) {
	prog, err := lc.program()
	if err != nil {
		return nil, err
	}
	n := lc.Patches
	opsN := lc.Ops
	if opsN == 0 {
		// Default schedule length: a slice of the program's CNOT stream
		// sized to the layout (full programs run for days of simulated
		// time; trajectories sample a representative excerpt). An explicit
		// Ops overrides this, including past the excerpt cap.
		if prog == nil {
			return nil, nil
		}
		opsN = 2 * n
		if int64(opsN) > prog.CX {
			opsN = int(prog.CX)
		}
	}
	ops := make([]route.CNOT, opsN)
	for k := 0; k < opsN; k++ {
		a := k % n
		b := (a + 1 + (k/n)%(n-1)) % n
		ops[k] = route.CNOT{Control: a, Target: b}
	}
	return ops, nil
}

// chanEvent is the channel-side residue of a defect event: the grid cells
// (and raw sites, for the surgery strip check) it blocks for its duration.
type chanEvent struct {
	start, end int64
	cells      []int
	sites      []lattice.Coord
}

// patchState is the per-patch slice of the engine's runtime state — the
// locals of the single-patch loop, one set per patch.
type patchState struct {
	spec        *deform.Spec // static arms only (sys == nil); live spec via sys otherwise
	curCode     *code.Code
	pristine    *code.Code
	events      []*event
	window      *detect.Window
	attributed  map[int32]*attribution
	shotRNG     *rand.Rand
	quietUntil  int64
	blocked     bool
	prevOverlay map[lattice.Coord]float64
	codeSites   map[lattice.Coord]bool
	sitesOf     *code.Code
	scratch     [][]int32 // roundStream scratch

	// Per-chunk staging, valid between the sample and score phases.
	byRound [][]int32
	overlay map[lattice.Coord]float64
	rates   map[lattice.Coord]float64
	failed  bool
	fresh   []int32
	dem     *sim.DEM // the chunk's sample DEM (for attribution)
}

// liveSpec returns the patch's current spec: the deformation unit's for
// deforming arms, the static one otherwise.
func (ps *patchState) liveSpec(sys *core.System, i int) *deform.Spec {
	if sys != nil {
		return sys.Unit(i).Spec()
	}
	return ps.spec
}

// splitEvents classifies the global event timeline: per-patch sub-events
// (sites inside a patch's static tile) and channel events — the channel
// residue of *removable* events, mapped to the grid cells they block (a
// mild drift excursion in a channel degrades merge fidelity but does not
// forbid routing; only severe defects steal channel qubits). Cell
// granularity follows the route.Grid model: a channel defect blocks the
// tile it lies in.
func splitEvents(lay *layout.Layout, specs []*deform.Spec, events []*event) (perPatch [][]*event, chans []*chanEvent) {
	perPatch = make([][]*event, len(specs))
	pitch2 := 2 * lay.Pitch()
	for _, e := range events {
		inPatch := make([]bool, len(e.sites))
		for p, spec := range specs {
			var sites []lattice.Coord
			var rates []float64
			for i, q := range e.sites {
				if spec.Contains(q) {
					inPatch[i] = true
					sites = append(sites, q)
					rates = append(rates, e.rates[min(i, len(e.rates)-1)])
				}
			}
			if len(sites) == 0 {
				continue
			}
			perPatch[p] = append(perPatch[p], &event{
				start: e.start, end: e.end, sites: sites, rates: rates,
				remove: e.remove, detectedAt: -1,
			})
		}
		if !e.remove {
			continue
		}
		var ce *chanEvent
		cellSeen := map[int]bool{}
		for i, q := range e.sites {
			if inPatch[i] {
				continue
			}
			if ce == nil {
				ce = &chanEvent{start: e.start, end: e.end}
			}
			ce.sites = append(ce.sites, q)
			r, c := q.Row/pitch2, q.Col/pitch2
			r = max(0, min(r, lay.Rows-1))
			c = max(0, min(c, lay.Cols-1))
			cell := r*lay.Cols + c
			if !cellSeen[cell] {
				cellSeen[cell] = true
				ce.cells = append(ce.cells, cell)
			}
		}
		if ce != nil {
			chans = append(chans, ce)
		}
	}
	return perPatch, chans
}

// surgerySchedule is the runtime state of the lattice-surgery program.
type surgerySchedule struct {
	ops         []route.CNOT
	done        []bool
	failedOnce  []bool // op missed at least one attempt (Replans accounting)
	completed   int
	attempts    int
	nextAttempt int64
	stepCycles  int64
	routeBuf    []int
}

// runLayout is the layout-level engine body (Config.Layout non-nil).
func runLayout(cfg Config, mode Mode, seed int64) (*Result, error) {
	tr, tj, arm := cfg.Trace, cfg.TraceTraj, mode.String()
	cache := cfg.Cache
	if cache == nil {
		cache = sim.SharedDEMCache()
	}
	nominal := noise.Uniform(cfg.PhysicalRate)
	n := cfg.Layout.Patches

	// Every arm shares the Surf-Deformer floorplan geometry (spacing d+Δd):
	// patch origins, channel widths, and hence the sampled event timeline
	// are identical across arms — the paired-comparison contract. Only the
	// per-patch policy and growth budget differ by arm.
	lay := layout.New(layout.SurfDeformer, n, cfg.D, cfg.DeltaD)
	var sys *core.System
	switch mode {
	case ModeUntreated, ModeReweightOnly:
		// static codes, no deformation unit
	case ModeASC, ModeSuperOnly:
		// Both arms keep a zero growth budget: ASC-S only shrinks, the
		// bandage arm only merges in place (its policy is inert — Step is
		// never routed to it).
		plan := &core.Plan{D: cfg.D, DeltaD: cfg.DeltaD, Layout: lay}
		sys = plan.NewSystemWith(deform.PolicyASC, deform.UniformBudget(0))
	default:
		plan := &core.Plan{D: cfg.D, DeltaD: cfg.DeltaD, Layout: lay}
		sys = plan.NewSystemWith(deform.PolicySurfDeformer, deform.UniformBudget(cfg.DeltaD))
	}
	mit, err := armMitigation(cfg, mode)
	if err != nil {
		return nil, err
	}
	if sys != nil {
		sys.SetMitigation(mit)
	}
	reweightFactor := cfg.ReweightFactor
	if reweightFactor == 0 {
		reweightFactor = DefaultReweightFactor
	}

	// Static patch tiles (event classification is by the undeformed tile
	// even while a patch is deformed) and the layout bounding box the event
	// timeline is sampled over. For N=1 the box is exactly the patch bounds,
	// so the event stream matches the single-patch engine byte for byte.
	specs := make([]*deform.Spec, n)
	patches := make([]*patchState, n)
	umin, umax := lattice.Coord{}, lattice.Coord{}
	for i := 0; i < n; i++ {
		specs[i] = deform.NewSquareSpec(lay.PatchOrigin(i), cfg.D)
		pmin, pmax := specs[i].Bounds()
		if i == 0 {
			umin = pmin
		}
		if pmax.Row > umax.Row {
			umax.Row = pmax.Row
		}
		if pmax.Col > umax.Col {
			umax.Col = pmax.Col
		}
	}

	eventRNG := rand.New(rand.NewSource(mc.DeriveSeed(seed, saltEvents)))
	events := sampleEvents(cfg, umin, umax, eventRNG)
	bounds := eventBoundaries(cfg, events)
	perPatch, chans := splitEvents(lay, specs, events)
	// One device covers the whole layout bounding box (channels included);
	// each patch boots against its own tile's slice of it.
	device := sampleDevice(cfg, umin, umax, seed)
	deviceRates := deviceRateMap(device)

	res := &Result{
		Mode:           mode.String(),
		Horizon:        cfg.Horizon,
		FirstFailCycle: -1,
		Patches:        make([]PatchResult, n),
		ChannelEvents:  len(chans),
		DeviceDefects:  deviceDefectCount(device),
	}
	res.Events = len(events)
	for _, e := range events {
		if !e.remove {
			continue
		}
		// RemoveEvents counts removable events reaching a patch — the
		// denominator of the detection fraction (channel strikes have no
		// syndrome signature to detect).
		touches := false
		for _, spec := range specs {
			for _, q := range e.sites {
				if spec.Contains(q) {
					touches = true
					break
				}
			}
			if touches {
				break
			}
		}
		if touches {
			res.RemoveEvents++
		}
	}

	for i := 0; i < n; i++ {
		ps := &patchState{spec: specs[i]}
		var err error
		if sys != nil {
			ps.curCode, err = sys.Unit(i).Code()
		} else {
			ps.curCode, err = specs[i].Build()
		}
		if err != nil {
			return nil, err
		}
		ps.pristine = ps.curCode
		// Boot adaptation against the patch's slice of the device (after
		// `pristine` — the adapted code is seed-specific and must build
		// through the private cache).
		if bc, nb, err := bootAdapt(sys, i, mit, device, specs[i].Contains); err != nil {
			res.Patches[i].MinDistance = minDist(ps.curCode)
			return terminateLayout(res, i, 0, err)
		} else if bc != nil {
			ps.curCode = bc
			ps.blocked = sys.Blocked(i)
			res.Bandages += nb
		}
		ps.events = perPatch[i]
		ps.window = detect.NewWindow(cfg.Window, cfg.Threshold)
		ps.window.SetHalflife(cfg.Halflife)
		ps.attributed = map[int32]*attribution{}
		if i == 0 {
			ps.shotRNG = rand.New(rand.NewSource(mc.DeriveSeed(seed, saltShots)))
		} else {
			ps.shotRNG = rand.New(rand.NewSource(mc.DeriveSeed(seed, saltShots, int64(i))))
		}
		patches[i] = ps
		res.Patches[i].MinDistance = minDist(ps.curCode)
		for _, e := range ps.events {
			res.Patches[i].Events++
			if e.remove {
				res.Patches[i].RemoveEvents++
			}
		}
		if i == 0 || res.Patches[i].MinDistance < res.MinDistance {
			res.MinDistance = res.Patches[i].MinDistance
		}
	}

	// The surgery schedule and its router. Attempts sit at multiples of the
	// lattice-surgery step (d cycles per operation); the chunk loop clamps
	// chunks to attempt boundaries while operations remain.
	var sched *surgerySchedule
	grid := route.NewGrid(lay.Rows, lay.Cols)
	if ops, err := cfg.Layout.scheduleOps(); err != nil {
		return nil, err
	} else if len(ops) > 0 {
		sched = &surgerySchedule{
			ops: ops, done: make([]bool, len(ops)), failedOnce: make([]bool, len(ops)),
			stepCycles: int64(cfg.D), nextAttempt: int64(cfg.D),
		}
		res.OpsTotal = len(ops)
	}

	hotCache := sim.NewDEMCache(hotCacheLimit)
	memo := newDEMMemo()
	patcher := &sim.Patcher{}
	nextBound := 0
	cycle := int64(0)

	for cycle < cfg.Horizon {
		// Boundary processing: recovery confirmations, per patch.
		for nextBound < len(bounds) && bounds[nextBound].cycle <= cycle {
			b := bounds[nextBound]
			nextBound++
			if b.kind != boundRecover {
				continue
			}
			for i, ps := range patches {
				if sys == nil {
					expireAttributions(ps.events, ps.attributed, cycle)
					continue
				}
				// Tier-gated recovery, as in the single-patch engine.
				var recovered int
				var err error
				switch {
				case mit.Handles(defect.SeverityRemove):
					recovered, err = recoverSubsided(sys, i, ps.events, ps.attributed, cycle)
				case mit.Handles(defect.SeveritySuper):
					recovered, err = unbandageSubsided(sys, i, ps.events, ps.attributed, cycle)
				default:
					expireAttributions(ps.events, ps.attributed, cycle)
				}
				if err != nil {
					return terminateLayout(res, i, cycle, err)
				}
				if recovered > 0 {
					res.Recoveries++
					res.Patches[i].Recoveries++
					st, err := sys.Unit(i).Code()
					if err != nil {
						return terminateLayout(res, i, cycle, err)
					}
					ps.curCode = st
					ps.blocked = sys.Blocked(i)
					if d := minDist(ps.curCode); d < res.Patches[i].MinDistance {
						res.Patches[i].MinDistance = d
					}
					if res.Patches[i].MinDistance < res.MinDistance {
						res.MinDistance = res.Patches[i].MinDistance
					}
					tr.Emit(obs.TraceEvent{Type: obs.TraceRecover, Cycle: cycle, Arm: arm, Traj: tj,
						Patch: i, Sites: recovered, Distance: minDist(ps.curCode)})
				}
			}
		}

		// Lattice-surgery attempt at the step boundary: route as many
		// eligible operations as the channels allow.
		if sched != nil && sched.completed < len(sched.ops) && cycle >= sched.nextAttempt {
			attemptSurgery(res, sched, grid, sys, patches, chans, lay, cycle, tr, arm, tj)
			sched.nextAttempt = cycle + sched.stepCycles
		}

		rem := cfg.Horizon - cycle
		if rem < 2 {
			chanBlocked := channelBlockedAt(chans, cycle)
			for i, ps := range patches {
				advanceLayout(res, i, rem, ps.blocked, ps.curCode)
			}
			if chanBlocked {
				res.ChannelBlockedCycles += rem
			}
			cycle += rem
			break
		}
		chunk := int64(cfg.ChunkRounds)
		if nextBound < len(bounds) {
			if until := bounds[nextBound].cycle - cycle; until < chunk {
				chunk = until
			}
		}
		if sched != nil && sched.completed < len(sched.ops) {
			if until := sched.nextAttempt - cycle; until < chunk {
				chunk = until
			}
		}
		if chunk < 2 {
			chunk = 2
		}
		if chunk > rem {
			chunk = rem
		}
		chanBlocked := channelBlockedAt(chans, cycle)

		// Sample phase: every patch's chunk shot through its own cached
		// DEM/sampler/decoder path.
		for i, ps := range patches {
			if err := samplePatchChunk(cfg, mit, ps, res, i, cycle, chunk, nominal, deviceRates,
				cache, hotCache, memo, patcher, reweightFactor, tr, arm, tj); err != nil {
				return nil, err
			}
			res.Epochs++
		}

		// Feed phase: interleave the per-round detector feeds; the first
		// fresh flag on any patch cuts the chunk for all of them.
		cut := int64(-1)
		anyFresh := false
		for r := int64(0); r < chunk && !anyFresh; r++ {
			for _, ps := range patches {
				ps.window.Feed(int(cycle+r), ps.byRound[r])
			}
			at := cycle + r
			if at < int64(cfg.Window) {
				continue
			}
			for _, ps := range patches {
				ps.fresh = nil
				if at < ps.quietUntil {
					continue
				}
				if ps.fresh = newFlags(ps.window, ps.attributed); len(ps.fresh) != 0 {
					anyFresh = true
					cut = r
				}
			}
		}
		for _, ps := range patches {
			ps.window.Trim()
		}

		if cut < 0 {
			for i, ps := range patches {
				res.ScoredCycles += chunk
				if ps.failed {
					res.Failures++
					res.Patches[i].Failures++
					if res.FirstFailCycle < 0 {
						res.FirstFailCycle = cycle + chunk
					}
				}
				accrueReweight(res, chunk, ps.overlay, ps.rates, ps.codeSites, cfg.PhysicalRate)
				advanceLayout(res, i, chunk, ps.blocked, ps.curCode)
			}
			if chanBlocked {
				res.ChannelBlockedCycles += chunk
			}
			cycle += chunk
			tr.Emit(obs.TraceEvent{Type: obs.TraceEpoch, Cycle: cycle, Arm: arm, Traj: tj, Cycles: chunk})
			continue
		}

		// Cut mid-chunk: partial chunks carry no failure verdict.
		elapsed := cut + 1
		if elapsed > chunk {
			elapsed = chunk
		}
		for i, ps := range patches {
			accrueReweight(res, elapsed, ps.overlay, ps.rates, ps.codeSites, cfg.PhysicalRate)
			advanceLayout(res, i, elapsed, ps.blocked, ps.curCode)
		}
		if chanBlocked {
			res.ChannelBlockedCycles += elapsed
		}
		cycle += elapsed
		tr.Emit(obs.TraceEvent{Type: obs.TraceEpoch, Cycle: cycle, Arm: arm, Traj: tj, Cycles: elapsed})

		for i, ps := range patches {
			if len(ps.fresh) == 0 {
				continue
			}
			ps.quietUntil = cycle + int64(cfg.Window)
			before := res.Detected
			estimate := attribute(ps.dem, ps.fresh, ps.attributed, ps.events, cycle, res)
			res.Patches[i].Detected += res.Detected - before
			routeRemove := sys != nil && mit.Handles(defect.SeverityRemove)
			routeSuper := sys != nil && !routeRemove && mit.Handles(defect.SeveritySuper)
			if tr != nil {
				tr.Emit(obs.TraceEvent{Type: obs.TraceDetect, Cycle: cycle, Arm: arm, Traj: tj,
					Patch: i, Flags: len(ps.fresh), Region: len(estimate)})
				sev := "observe"
				switch {
				case routeRemove:
					sev = "remove"
				case routeSuper:
					sev = "super"
				}
				tr.Emit(obs.TraceEvent{Type: obs.TraceMitigate, Cycle: cycle, Arm: arm, Traj: tj,
					Patch: i, Severity: sev})
			}
			switch {
			case routeRemove:
				st, err := sys.Step(i, estimate)
				if err != nil {
					return terminateLayout(res, i, cycle, err)
				}
				deformed := len(st.Defects) > 0 || st.Enlarged
				if deformed {
					res.Deformations++
					res.Patches[i].Deformations++
				}
				ps.curCode = st.Code
				ps.blocked = sys.Blocked(i)
				if d := minDist(ps.curCode); d < res.Patches[i].MinDistance {
					res.Patches[i].MinDistance = d
				}
				if res.Patches[i].MinDistance < res.MinDistance {
					res.MinDistance = res.Patches[i].MinDistance
				}
				if deformed {
					tr.Emit(obs.TraceEvent{Type: obs.TraceDeform, Cycle: cycle, Arm: arm, Traj: tj,
						Patch: i, Defects: len(st.Defects), Enlarged: st.Enlarged, Distance: minDist(ps.curCode)})
				}
			case routeSuper:
				st, err := sys.Super(i, dataSites(estimate))
				if err != nil {
					return terminateLayout(res, i, cycle, err)
				}
				if n := len(st.Defects); n > 0 {
					res.Bandages += n
					tr.Emit(obs.TraceEvent{Type: obs.TraceDeform, Cycle: cycle, Arm: arm, Traj: tj,
						Patch: i, Defects: n, Distance: minDist(st.Code)})
				}
				ps.curCode = st.Code
				ps.blocked = sys.Blocked(i)
				if d := minDist(ps.curCode); d < res.Patches[i].MinDistance {
					res.Patches[i].MinDistance = d
				}
				if res.Patches[i].MinDistance < res.MinDistance {
					res.MinDistance = res.Patches[i].MinDistance
				}
			}
		}
	}
	res.ElapsedCycles = cycle
	return res, nil
}

// samplePatchChunk runs one patch's DEM → sampler → decoder chunk and
// stages the results on the patch state — the sample half of the
// single-patch loop body, per patch.
func samplePatchChunk(cfg Config, mit deform.Mitigation, ps *patchState, res *Result, i int,
	cycle, chunk int64, nominal *noise.Model, deviceRates map[lattice.Coord]float64,
	cache, hotCache *sim.DEMCache, memo *demMemo,
	patcher *sim.Patcher, reweightFactor float64, tr *obs.Tracer, arm string, tj int) error {
	if ps.sitesOf != ps.curCode {
		ps.codeSites = siteSet(ps.curCode)
		ps.sitesOf = ps.curCode
	}
	ps.rates = mergedRates(activeRates(ps.events, cycle), deviceRates)
	codeCache := cache
	if ps.curCode != ps.pristine {
		codeCache = hotCache
	}
	nominalDEM, nomKey, err := codeCache.BuildDEMKeyed(ps.curCode, nominal, int(chunk), cfg.Basis)
	if err != nil {
		return err
	}
	patchBase := nominalDEM
	if !patchDEMs {
		patchBase = nil
	}
	sampleDEM, sampleKey := nominalDEM, nomKey
	if len(ps.rates) > 0 {
		sampleDEM, sampleKey, err = hotCache.BuildDEMPatched(patcher, patchBase,
			ps.curCode, nominal.WithSiteRates(ps.rates), int(chunk), cfg.Basis)
		if err != nil {
			return err
		}
	}
	var overlay map[lattice.Coord]float64
	if mit.ReweightTier && cycle >= int64(cfg.Window) {
		overlay = reweightOverlay(ps.window, memo.obsStats(nomKey, nominalDEM), mit,
			cfg.PhysicalRate, reweightFactor, cfg.Threshold, cycle >= ps.quietUntil)
	}
	decodeDEM, decodeKey := nominalDEM, nomKey
	overlayBuilt := false
	if len(overlay) > 0 {
		preMiss := hotCache.Stats().Misses
		decodeDEM, decodeKey, err = hotCache.BuildDEMPatched(patcher, patchBase,
			ps.curCode, nominal.OverlaySiteRates(overlay), int(chunk), cfg.Basis)
		if err != nil {
			return err
		}
		if hotCache.Stats().Misses > preMiss {
			res.OverlayDEMBuilds++
			overlayBuilt = true
		}
	}
	if !maps.Equal(overlay, ps.prevOverlay) {
		res.Reweights++
		ps.prevOverlay = overlay
		if tr != nil {
			maxMult := 0.0
			for _, rate := range overlay {
				if m := rate / cfg.PhysicalRate; m > maxMult {
					maxMult = m
				}
			}
			tr.Emit(obs.TraceEvent{Type: obs.TraceReweight, Cycle: cycle, Arm: arm, Traj: tj,
				Patch: i, Overlay: len(overlay), MaxMult: maxMult, DEMBuild: overlayBuilt})
		}
	}
	ps.overlay = overlay
	dec := memo.decoder(decodeKey, decodeDEM, nominalDEM)
	sampler := memo.sampler(sampleKey, sampleDEM)
	flagged, obsFlip := sampler.Shot(ps.shotRNG)
	ps.failed = dec.DecodeToObs(flagged) != obsFlip
	ps.byRound = roundStream(sampleDEM, flagged, chunk, &ps.scratch)
	ps.dem = sampleDEM
	return nil
}

// advanceLayout accrues the per-cycle aggregates for one patch.
func advanceLayout(res *Result, i int, cycles int64, blocked bool, c *code.Code) {
	if blocked {
		res.BlockedCycles += cycles
		res.Patches[i].BlockedCycles += cycles
	}
	res.DistanceCycles += int64(minDist(c)) * cycles
}

// channelBlockedAt reports whether any channel event blocks a cell at the
// cycle. Events change only at chunk-clamping boundaries, so the answer is
// constant within a chunk.
func channelBlockedAt(chans []*chanEvent, cycle int64) bool {
	for _, ce := range chans {
		if cycle >= ce.start && cycle < ce.end {
			return true
		}
	}
	return false
}

// attemptSurgery runs one routing attempt of the schedule: refresh the
// grid's blockage (channel defects plus patches spilled past their
// reserve), route the eligible operations edge-disjointly, and gate merges
// between adjacent patches on the surgery.MergeBlocked strip check against
// the live (deformed) specs.
func attemptSurgery(res *Result, sched *surgerySchedule, grid *route.Grid, sys *core.System,
	patches []*patchState, chans []*chanEvent, lay *layout.Layout, cycle int64,
	tr *obs.Tracer, arm string, tj int) {
	grid.ResetBlocked()
	for _, ce := range chans {
		if cycle < ce.start || cycle >= ce.end {
			continue
		}
		for _, cell := range ce.cells {
			grid.SetBlocked(cell, true)
		}
	}
	if sys != nil {
		for i := range patches {
			if sys.Blocked(i) {
				grid.SetBlocked(i, true)
			}
		}
	}

	// Eligibility: program order per patch — an operation waits until no
	// earlier pending operation uses either of its patches.
	var pending []route.CNOT
	var pendIdx []int
	busy := map[int]bool{}
	for k, op := range sched.ops {
		if sched.done[k] {
			continue
		}
		if busy[op.Control] || busy[op.Target] {
			busy[op.Control], busy[op.Target] = true, true
			continue
		}
		busy[op.Control], busy[op.Target] = true, true
		pending = append(pending, op)
		pendIdx = append(pendIdx, k)
	}
	executed := 0
	if len(pending) > 0 {
		sched.routeBuf = grid.RoutePaths(pending, sched.attempts, sched.routeBuf[:0])
		routedSet := make(map[int]bool, len(sched.routeBuf))
		for _, ri := range sched.routeBuf {
			routedSet[ri] = true
			k := pendIdx[ri]
			op := pending[ri]
			if blocked := mergeBlockedOp(sys, patches, chans, lay, op, cycle); blocked {
				res.MergeBlockedOps++
				sched.failedOnce[k] = true
				continue
			}
			sched.done[k] = true
			sched.completed++
			res.OpsCompleted++
			if sched.failedOnce[k] {
				res.Replans++
			}
			executed++
		}
		for ri, k := range pendIdx {
			if !routedSet[ri] && !sched.done[k] {
				sched.failedOnce[k] = true
			}
		}
		if executed == 0 {
			res.StallCycles += sched.stepCycles
		}
	}
	sched.attempts++
	tr.Emit(obs.TraceEvent{Type: obs.TraceSurgery, Cycle: cycle, Arm: arm, Traj: tj,
		Pending: len(pending), Routed: executed})
	if sched.completed == len(sched.ops) && !res.ProgramDone {
		res.ProgramDone = true
		res.ProgramDoneCycle = cycle
	}
}

// mergeBlockedOp applies the lattice-surgery strip check to an operation
// between horizontally adjacent patches: the merge must survive the active
// channel defects in the strip without severing or dropping below the
// operands' current minimum distance. Non-adjacent operations route through
// multiple channels and are governed by the grid alone.
func mergeBlockedOp(sys *core.System, patches []*patchState, chans []*chanEvent,
	lay *layout.Layout, op route.CNOT, cycle int64) bool {
	ra, ca := lay.PatchCell(op.Control)
	rb, cb := lay.PatchCell(op.Target)
	if ra != rb || abs(ca-cb) != 1 {
		return false
	}
	li, ri := op.Control, op.Target
	if ca > cb {
		li, ri = ri, li
	}
	left := patches[li].liveSpec(sys, li)
	right := patches[ri].liveSpec(sys, ri)
	_, lmax := left.Bounds()
	rmin, _ := right.Bounds()
	var strip []lattice.Coord
	for _, ce := range chans {
		if cycle < ce.start || cycle >= ce.end {
			continue
		}
		for _, q := range ce.sites {
			if q.Col > lmax.Col && q.Col < rmin.Col &&
				q.Row >= left.Origin.Row && q.Row <= lmax.Row {
				strip = append(strip, q)
			}
		}
	}
	minDistance := minDist(patches[li].curCode)
	if d := minDist(patches[ri].curCode); d < minDistance {
		minDistance = d
	}
	blocked, _ := surgery.MergeBlocked(left, right, strip, minDistance)
	return blocked
}

// terminateLayout ends a layout trajectory whose patch i severed — the
// layout counterpart of terminate.
func terminateLayout(res *Result, i int, cycle int64, _ error) (*Result, error) {
	res.Patches[i].Severed = true
	res.Patches[i].Failures++
	res.Patches[i].MinDistance = 0
	res.Severed = true
	res.Failures++
	if res.FirstFailCycle < 0 {
		res.FirstFailCycle = cycle
	}
	res.ElapsedCycles = cycle
	res.MinDistance = 0
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
