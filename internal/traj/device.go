package traj

// The fabrication-defect device path: each trajectory samples a permanent
// defect map from Config.Device (per-trajectory device seed, paired across
// arms), adapts the code to it at boot through the arm's mitigation ladder
// (bandage super-stabilizers or removal), and then runs the dynamic defect
// processes on the already-degraded device. Defective syndrome sites have
// no structural mitigation — they only elevate rates, merged max-wins under
// whatever dynamic events strike on top.

import (
	"surfdeformer/internal/code"
	"surfdeformer/internal/core"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
)

// armMitigation resolves the arm's mitigation ladder under the config's
// severity-boundary override and rejects misordered ladders.
func armMitigation(cfg Config, mode Mode) (deform.Mitigation, error) {
	mit := mode.Mitigation()
	if cfg.SuperThreshold != 0 {
		mit.SuperThreshold = cfg.SuperThreshold
	}
	if err := mit.Validate(); err != nil {
		return mit, err
	}
	return mit, nil
}

// sampleDevice draws the trajectory's fabrication-defect device (nil model
// = pristine fab). The device seed derives from the trajectory seed on its
// own salt stream, so every arm of a paired comparison sees the same device
// and the event/shot streams are untouched by its presence.
func sampleDevice(cfg Config, min, max lattice.Coord, seed int64) *defect.Device {
	if cfg.Device == nil {
		return nil
	}
	return cfg.Device.Sample(min, max, mc.DeriveSeed(seed, saltDevice))
}

// deviceRateMap is the permanent site-rate floor of a sampled device: every
// defective site (data and syndrome) at the device's error rate. Sites the
// boot adaptation removes from the circuit keep their entries — the DEM
// builder only consults rates at live circuit sites, and keeping the map
// constant per trajectory keeps the cache keys stable.
func deviceRateMap(dev *defect.Device) map[lattice.Coord]float64 {
	if dev == nil {
		return nil
	}
	out := noise.DeviceDefectRates(dev.DataDefects, dev.ErrorRate)
	for q, r := range noise.DeviceDefectRates(dev.SyndromeDefects, dev.ErrorRate) {
		out[q] = r
	}
	return out
}

// mergedRates overlays the permanent device rates under the dynamic event
// rates, max-wins per site — the same composition rule activeRates applies
// among overlapping events. Returns dynamic unchanged when no device rates
// apply.
func mergedRates(dynamic, device map[lattice.Coord]float64) map[lattice.Coord]float64 {
	if len(device) == 0 {
		return dynamic
	}
	out := make(map[lattice.Coord]float64, len(dynamic)+len(device))
	for q, r := range dynamic {
		out[q] = r
	}
	for q, r := range device {
		if r > out[q] {
			out[q] = r
		}
	}
	return out
}

// bootAdapt adapts patch i of a system to the sampled device before cycle
// 0: the device's defective data qubits (filtered by contains when non-nil,
// for layout tiles) are routed through the mitigation ladder at the
// device's error rate and handled by the strongest enabled structural tier
// — removal (Step) or a super-stabilizer bandage (Super). Returns the
// adapted code (nil when nothing acted), the number of sites bandaged, and
// any deformation error (a device so broken the patch cannot boot). Boot
// adaptation is permanent: the adapted sites never enter the attribution
// bookkeeping, so recovery never reincorporates them.
func bootAdapt(sys *core.System, i int, mit deform.Mitigation, dev *defect.Device, contains func(lattice.Coord) bool) (*code.Code, int, error) {
	if sys == nil || dev == nil || len(dev.DataDefects) == 0 {
		return nil, 0, nil
	}
	sites := dev.DataDefects
	if contains != nil {
		sites = nil
		for _, q := range dev.DataDefects {
			if contains(q) {
				sites = append(sites, q)
			}
		}
	}
	if len(sites) == 0 {
		return nil, 0, nil
	}
	eff, ok := mit.Effective(mit.Route(dev.ErrorRate))
	if !ok {
		return nil, 0, nil
	}
	switch eff {
	case defect.SeverityRemove:
		st, err := sys.Step(i, sites)
		if err != nil {
			return nil, 0, err
		}
		return st.Code, 0, nil
	case defect.SeveritySuper:
		st, err := sys.Super(i, sites)
		if err != nil {
			return nil, 0, err
		}
		return st.Code, len(sys.Bandaged(i)), nil
	}
	return nil, 0, nil // reweight-effective: the rate floor handles it
}

// dataSites filters an estimated region down to its data-qubit sites — the
// only sites the bandage construction acts on.
func dataSites(estimate []lattice.Coord) []lattice.Coord {
	out := make([]lattice.Coord, 0, len(estimate))
	for _, q := range estimate {
		if q.IsData() {
			out = append(out, q)
		}
	}
	return out
}

// deviceDefectCount is the DeviceDefects result field: how many sites the
// sampled device fabricated defective (identical across paired arms).
func deviceDefectCount(dev *defect.Device) int {
	if dev == nil {
		return 0
	}
	return len(dev.DataDefects) + len(dev.SyndromeDefects)
}
