package traj

import (
	"encoding/json"
	"reflect"
	"testing"

	"surfdeformer/internal/sim"
)

// quickLayoutConfig is the test-scale layout scenario: two patches with a
// short surgery schedule on the QuickConfig defect processes.
func quickLayoutConfig() Config {
	cfg := QuickConfig()
	cfg.Layout = &LayoutConfig{Patches: 2, Program: "simon"}
	return cfg
}

func allModes() []Mode {
	return []Mode{ModeSurfDeformer, ModeASC, ModeReweightOnly, ModeUntreated}
}

// TestLayoutSinglePatchEquivalence pins the N=1 reduction: a 1-patch layout
// with no surgery schedule is the single-patch trajectory — identical
// Result on every shared field, for every arm.
func TestLayoutSinglePatchEquivalence(t *testing.T) {
	for _, mode := range allModes() {
		single := QuickConfig()
		single.Cache = sim.NewDEMCache(0)
		want, err := Run(single, mode, 42)
		if err != nil {
			t.Fatalf("%v single: %v", mode, err)
		}
		lay := QuickConfig()
		lay.Cache = sim.NewDEMCache(0)
		lay.Layout = &LayoutConfig{Patches: 1}
		got, err := Run(lay, mode, 42)
		if err != nil {
			t.Fatalf("%v layout: %v", mode, err)
		}
		if len(got.Patches) != 1 {
			t.Fatalf("%v: 1-patch layout result has %d patch slices", mode, len(got.Patches))
		}
		// Compare the shared fields: the layout result adds only its
		// per-patch slice, which the single-patch engine does not emit.
		var wm, gm map[string]any
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		json.Unmarshal(wb, &wm)
		json.Unmarshal(gb, &gm)
		delete(gm, "patches")
		if !reflect.DeepEqual(wm, gm) {
			t.Errorf("%v: N=1 layout diverges from single-patch:\nsingle %+v\nlayout %+v", mode, want, got)
		}
	}
}

// TestLayoutDeterministic pins the layout engine's store contract: a pure
// function of (Config, Mode, seed), independent of cache instance or
// warmth.
func TestLayoutDeterministic(t *testing.T) {
	cfg := quickLayoutConfig()
	for _, mode := range allModes() {
		cfg.Cache = sim.NewDEMCache(0)
		cold, err := Run(cfg, mode, 7)
		if err != nil {
			t.Fatalf("%v cold: %v", mode, err)
		}
		warm, err := Run(cfg, mode, 7)
		if err != nil {
			t.Fatalf("%v warm: %v", mode, err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%v: warm-cache layout result differs:\ncold %+v\nwarm %+v", mode, cold, warm)
		}
		cfg.Cache = sim.NewDEMCache(0)
		fresh, err := Run(cfg, mode, 7)
		if err != nil {
			t.Fatalf("%v fresh: %v", mode, err)
		}
		if !reflect.DeepEqual(cold, fresh) {
			t.Errorf("%v: cache-instance-dependent layout result:\nA %+v\nB %+v", mode, cold, fresh)
		}
	}
}

// TestLayoutInvariants checks the structural accounting of layout results
// across arms and seeds: per-patch slices sum to the aggregates, the
// surgery counters stay within the schedule, and a completed program has a
// completion cycle inside the horizon.
func TestLayoutInvariants(t *testing.T) {
	cfg := quickLayoutConfig()
	cfg.Cache = sim.NewDEMCache(0)
	anyOps := false
	for _, mode := range allModes() {
		for seed := int64(1); seed <= 4; seed++ {
			r, err := Run(cfg, mode, seed)
			if err != nil {
				t.Fatalf("%v seed %d: %v", mode, seed, err)
			}
			if len(r.Patches) != cfg.Layout.Patches {
				t.Fatalf("%v seed %d: %d patch slices, want %d", mode, seed, len(r.Patches), cfg.Layout.Patches)
			}
			var failures, deforms, recovers, detected int
			var blocked int64
			for _, p := range r.Patches {
				failures += p.Failures
				deforms += p.Deformations
				recovers += p.Recoveries
				detected += p.Detected
				blocked += p.BlockedCycles
				if p.MinDistance > cfg.D {
					t.Errorf("%v seed %d: patch min distance %d above d=%d", mode, seed, p.MinDistance, cfg.D)
				}
			}
			if failures != r.Failures || deforms != r.Deformations ||
				recovers != r.Recoveries || detected != r.Detected || blocked != r.BlockedCycles {
				t.Errorf("%v seed %d: per-patch sums diverge from aggregates: %+v vs %+v",
					mode, seed, r.Patches, r)
			}
			if r.OpsTotal == 0 {
				t.Errorf("%v seed %d: surgery schedule empty under a program config", mode, seed)
			}
			anyOps = anyOps || r.OpsCompleted > 0
			if r.OpsCompleted > r.OpsTotal {
				t.Errorf("%v seed %d: completed %d of %d ops", mode, seed, r.OpsCompleted, r.OpsTotal)
			}
			if r.ProgramDone != (r.OpsCompleted == r.OpsTotal && r.OpsTotal > 0) && !r.Severed {
				t.Errorf("%v seed %d: program_done=%v with %d/%d ops", mode, seed, r.ProgramDone, r.OpsCompleted, r.OpsTotal)
			}
			if r.ProgramDone && (r.ProgramDoneCycle <= 0 || r.ProgramDoneCycle > cfg.Horizon) {
				t.Errorf("%v seed %d: completion cycle %d outside horizon", mode, seed, r.ProgramDoneCycle)
			}
			if r.ScoredCycles > r.ElapsedCycles*int64(cfg.Layout.Patches) {
				t.Errorf("%v seed %d: scored %d patch-cycles > %d elapsed × %d patches",
					mode, seed, r.ScoredCycles, r.ElapsedCycles, cfg.Layout.Patches)
			}
			if r.ChannelBlockedCycles > r.ElapsedCycles {
				t.Errorf("%v seed %d: channel-blocked %d > elapsed %d", mode, seed, r.ChannelBlockedCycles, r.ElapsedCycles)
			}
		}
	}
	if !anyOps {
		t.Error("no arm completed a single surgery op over 4 seeds; schedule appears dead")
	}
}

// TestLayoutResultJSONRoundTrip pins the store contract for layout results:
// marshal → unmarshal reproduces the value exactly, per-patch slices
// included.
func TestLayoutResultJSONRoundTrip(t *testing.T) {
	cfg := quickLayoutConfig()
	cfg.Cache = sim.NewDEMCache(0)
	r, err := Run(cfg, ModeSurfDeformer, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("layout result does not JSON round-trip:\nwant %+v\ngot  %+v", r, back)
	}
}

// TestChannelBlockingDegradesThroughput is the paired router test: the same
// surgery schedule runs against the defect timeline and against a
// defect-free router, and the defects must measurably degrade program
// throughput — stall cycles, merge-blocked operations, or channel-blocked
// cycles appear, and completion never gets *earlier* under defects.
func TestChannelBlockingDegradesThroughput(t *testing.T) {
	defective := quickLayoutConfig()
	defective.Cache = sim.NewDEMCache(0)
	// Stretch the schedule across the horizon (40 sequential ops ≈ 200
	// cycles of attempts) and make the strikes long enough to overlap it,
	// so channel blockage actually lands on surgery attempts.
	defective.Layout.Ops = 40
	defective.Cosmic.DurationCycles = 300
	defective.Cosmic.RatePerQubit = 120

	clean := defective
	clean.Cache = sim.NewDEMCache(0)
	clean.Cosmic, clean.Leakage, clean.Drift = nil, nil, nil

	var stall, mergeBlocked, chanBlocked, chanEvents int64
	degraded := 0
	for seed := int64(1); seed <= 6; seed++ {
		rd, err := Run(defective, ModeSurfDeformer, seed)
		if err != nil {
			t.Fatalf("defective seed %d: %v", seed, err)
		}
		rc, err := Run(clean, ModeSurfDeformer, seed)
		if err != nil {
			t.Fatalf("clean seed %d: %v", seed, err)
		}
		if rc.StallCycles != 0 || rc.MergeBlockedOps != 0 || rc.ChannelBlockedCycles != 0 {
			t.Errorf("seed %d: defect-free router reports blockage: %+v", seed, rc)
		}
		if !rc.ProgramDone {
			t.Errorf("seed %d: defect-free router failed to complete the program", seed)
		}
		stall += rd.StallCycles
		mergeBlocked += int64(rd.MergeBlockedOps)
		chanBlocked += rd.ChannelBlockedCycles
		chanEvents += int64(rd.ChannelEvents)
		if !rd.ProgramDone || rd.ProgramDoneCycle > rc.ProgramDoneCycle {
			degraded++
		}
	}
	if chanEvents == 0 {
		t.Fatal("no channel events over 6 seeds; the scenario does not exercise the router")
	}
	if stall+mergeBlocked+chanBlocked == 0 {
		t.Errorf("channel defects never touched the router: stall=%d merge-blocked=%d chan-blocked=%d",
			stall, mergeBlocked, chanBlocked)
	}
	if degraded == 0 {
		t.Error("program completion never degraded under channel defects across 6 seeds")
	}
}

// TestLayoutMitigatedBeatsUntreated is the layout-scenario arm comparison:
// on the sustained-drift scenario over two patches, the reweight-tier arm
// must accumulate strictly fewer failures than untreated (the single-patch
// pinning of TestReweightBeatsUntreatedOnDrift, lifted to the layout).
func TestLayoutMitigatedBeatsUntreated(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed layout drift comparison")
	}
	cfg := DriftOnlyConfig()
	cfg.Cache = sim.NewDEMCache(0)
	cfg.Layout = &LayoutConfig{Patches: 2, Program: "simon"}
	var treated, untreated int
	for seed := int64(1); seed <= 6; seed++ {
		rt, err := Run(cfg, ModeReweightOnly, seed)
		if err != nil {
			t.Fatalf("reweight-only seed %d: %v", seed, err)
		}
		ru, err := Run(cfg, ModeUntreated, seed)
		if err != nil {
			t.Fatalf("untreated seed %d: %v", seed, err)
		}
		treated += rt.Failures
		untreated += ru.Failures
	}
	if treated >= untreated {
		t.Errorf("reweight-only failures %d not below untreated %d on the layout drift scenario",
			treated, untreated)
	}
}
