package traj

import (
	"bytes"
	"reflect"
	"testing"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// Tracing is observation only: a traced trajectory must return a Result
// bit-identical to the untraced run at the same (config, mode, seed), and
// the paired-seed contract — every arm facing the same seed sees the same
// defect timeline — must hold with the tracer attached. The emitted stream
// must also satisfy the schema contract end to end.
func TestRunTraceInvariant(t *testing.T) {
	const seed = 7 // paired across arms: identical timelines per mode
	for _, mode := range []Mode{ModeSurfDeformer, ModeASC, ModeUntreated, ModeReweightOnly} {
		cfg := QuickConfig()
		cfg.Cache = sim.NewDEMCache(0)
		plain, err := Run(cfg, mode, seed)
		if err != nil {
			t.Fatalf("%s untraced: %v", mode, err)
		}

		var buf bytes.Buffer
		traced := QuickConfig()
		traced.Cache = sim.NewDEMCache(0)
		traced.Trace = obs.NewTracer(&buf)
		traced.TraceTraj = 3
		got, err := Run(traced, mode, seed)
		if err != nil {
			t.Fatalf("%s traced: %v", mode, err)
		}
		if !reflect.DeepEqual(got, plain) {
			t.Errorf("%s: traced result diverges from untraced:\n traced: %+v\nuntraced: %+v", mode, got, plain)
		}
		if err := traced.Trace.Err(); err != nil {
			t.Fatalf("%s: tracer error: %v", mode, err)
		}

		n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: emitted trace fails schema validation: %v", mode, err)
		}
		if n == 0 {
			t.Fatalf("%s: traced run emitted no events", mode)
		}
		// Every trajectory closes with exactly one end event carrying the
		// Result's counters, attributed to the configured trajectory index.
		ends := 0
		for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
			if bytes.Contains(line, []byte(`"type":"end"`)) {
				ends++
				for _, want := range []string{`"arm":"` + mode.String() + `"`, `"traj":3`} {
					if !bytes.Contains(line, []byte(want)) {
						t.Errorf("%s: end event %s missing %s", mode, line, want)
					}
				}
			}
		}
		if ends != 1 {
			t.Errorf("%s: %d end events, want 1", mode, ends)
		}
	}
}
