package traj

// The decoder-prior reweight tier (paper §VIII): the window detector's
// per-observable rate estimates are inverted into per-site physical-rate
// multipliers, quantized, severity-routed against the arm's mitigation
// ladder, and overlaid on the nominal decode model. Sampling always stays
// on the true rates — the arm measures honest estimated-prior decoding,
// and the decode model is driven by the detector alone (nominal before
// detection), never by the event list.

import (
	"math"

	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/sim"
)

const (
	// reweightMinFirings is the "sustained" gate of the rate estimator: an
	// observable must fire at least this often inside the window before its
	// rate is trusted. A healthy check at the nominal rate fires well under
	// once per window, so a single noise firing over a short effective
	// window can never masquerade as drift.
	reweightMinFirings = 3
	// DefaultReweightFactor is the elevation gate: an observable's
	// estimated rate multiplier must reach this factor before the reweight
	// tier acts (Config.ReweightFactor overrides).
	DefaultReweightFactor = 3.0
)

// Mitigation returns the §VIII mitigation ladder of an arm: which tiers
// the mode enables. This is the policy hook the runtime consults (and
// installs on core.System for the deforming arms).
func (m Mode) Mitigation() deform.Mitigation {
	switch m {
	case ModeSurfDeformer:
		return deform.FullLadder()
	case ModeASC:
		return deform.Mitigation{DeformTier: true}
	case ModeReweightOnly:
		return deform.Mitigation{ReweightTier: true}
	case ModeSuperOnly:
		return deform.Mitigation{SuperTier: true}
	}
	return deform.Mitigation{} // untreated: nominal priors, untouched code
}

// obsStats is the per-DEM view the rate estimator needs: each stable
// observable id's nominal per-round firing probability (the baseline
// elevation is measured against), its data support, and its ancillas —
// kept apart because the overlay localizes drift by voting across
// supports and falls back to the ancilla only when voting fails.
type obsStats struct {
	baseline map[int32]float64
	support  map[int32][]lattice.Coord
	ancillas map[int32][]lattice.Coord
}

func newObsStats(dem *sim.DEM) *obsStats {
	st := &obsStats{
		baseline: map[int32]float64{},
		support:  map[int32][]lattice.Coord{},
		ancillas: map[int32][]lattice.Coord{},
	}
	fire := dem.DetectorFireRates()
	counts := map[int32]int{}
	for det, f := range fire {
		id := stableID(dem.Observables[dem.DetObs[det]])
		st.baseline[id] += f
		counts[id]++
	}
	for id, n := range counts {
		st.baseline[id] /= float64(n)
	}
	addUnique := func(dst map[int32][]lattice.Coord, id int32, qs []lattice.Coord) {
		for _, q := range qs {
			found := false
			for _, have := range dst[id] {
				if have == q {
					found = true
					break
				}
			}
			if !found {
				dst[id] = append(dst[id], q)
			}
		}
	}
	for _, info := range dem.Observables {
		id := stableID(info)
		addUnique(st.support, id, info.Support)
		addUnique(st.ancillas, id, info.Ancillas)
	}
	for id := range st.support {
		lattice.SortCoords(st.support[id])
	}
	for id := range st.ancillas {
		lattice.SortCoords(st.ancillas[id])
	}
	return st
}

// quantizeMultiplier snaps an estimated rate multiplier onto the
// power-of-two ladder (2, 4, 8, ...). Raw estimates vary continuously with
// window noise; quantizing them keeps the set of distinct reweighted
// decode models small, so the DEM cache amortizes their construction the
// same way it amortizes the nominal models.
func quantizeMultiplier(m float64) float64 {
	if m < 2 {
		return 2
	}
	return math.Exp2(math.Round(math.Log2(m)))
}

// reweightOverlay computes the estimated-prior site overlay from the
// detector's current window state: every sustained elevated observable is
// inverted to a site-rate estimate and severity-routed against the ladder.
// An elevation classified SeverityRemove under a ladder whose deformation
// tier is enabled is excluded only once its firing rate has crossed the
// flag threshold *and* the flag path is live (flagActive — not suppressed
// by the post-deformation dwell): at that point the flag→attribute→Step
// path owns it and will remove its region (taking its checks out of the
// DEM, and so out of future overlays, automatically). A severe elevation
// the flag path cannot act on — firing below the flag threshold, or a new
// burst landing during another event's dwell — stays in the overlay as an
// interim prior: excluding it would leave it mitigated by neither tier,
// making the full ladder strictly worse than its own reweight-only
// ablation in exactly the multi-event regimes it exists for.
//
// The surviving estimates are then *localized* by multiplicity voting,
// exactly like the removal path's region estimator: a drifted data qubit
// elevates every check covering it, so a data site enters the overlay
// only when at least two elevated checks agree on it; an elevated check
// with no voting partner attributes its elevation to its own ancilla (the
// signature of measurement-side drift). Blanketing every elevated check's
// full support instead smears the estimated rate over ~8 healthy sites
// per drifted qubit and makes the reweighted prior *worse* than the
// nominal one. Returns nil when nothing qualifies.
func reweightOverlay(w *detect.Window, st *obsStats, mit deform.Mitigation, p, minFactor, flagThreshold float64, flagActive bool) map[lattice.Coord]float64 {
	ests := w.EstimateRates(p, func(o int32) float64 { return st.baseline[o] }, minFactor, reweightMinFirings)
	type elevation struct {
		obs  int32
		rate float64
	}
	var kept []elevation
	counts := map[lattice.Coord]int{}
	rates := map[lattice.Coord]float64{}
	for _, est := range ests {
		rate := p * quantizeMultiplier(est.Multiplier)
		if rate > decoder.MaxEdgeProb {
			rate = decoder.MaxEdgeProb
		}
		if mit.Route(rate) == defect.SeverityRemove && mit.Handles(defect.SeverityRemove) &&
			flagActive && est.FireRate >= flagThreshold {
			continue // severe and actionable by the flag path: removal owns it
		}
		kept = append(kept, elevation{obs: est.Observable, rate: rate})
		// A site's true rate is bounded by *every* covering check's
		// aggregate elevation, so a voted site takes the minimum — each
		// check's estimate also absorbs its other drifted neighbours, and
		// the max would systematically overshoot in dense-drift regimes.
		for _, q := range st.support[est.Observable] {
			counts[q]++
			if r, ok := rates[q]; !ok || rate < r {
				rates[q] = rate
			}
		}
	}
	var overlay map[lattice.Coord]float64
	add := func(q lattice.Coord, rate float64) {
		if overlay == nil {
			overlay = map[lattice.Coord]float64{}
		}
		if rate > overlay[q] {
			overlay[q] = rate
		}
	}
	for _, e := range kept {
		voted := false
		for _, q := range st.support[e.obs] {
			if counts[q] >= 2 {
				add(q, rates[q])
				voted = true
			}
		}
		if !voted {
			for _, q := range st.ancillas[e.obs] {
				add(q, e.rate)
			}
		}
	}
	return overlay
}

// overlayError is the estimated-vs-true prior error of one chunk: the mean
// absolute difference between the estimated site rate and the true active
// rate over the union of estimated and truly elevated sites (restricted to
// sites of the current code; a site absent from one side carries the
// nominal rate there). Summation runs in sorted site order so the float
// accumulation is deterministic.
func overlayError(overlay, truth map[lattice.Coord]float64, onCode map[lattice.Coord]bool, p float64) float64 {
	union := make([]lattice.Coord, 0, len(overlay)+len(truth))
	for q := range overlay {
		union = append(union, q)
	}
	for q := range truth {
		if _, ok := overlay[q]; !ok && onCode[q] {
			union = append(union, q)
		}
	}
	if len(union) == 0 {
		return 0
	}
	lattice.SortCoords(union)
	sum := 0.0
	for _, q := range union {
		est, ok := overlay[q]
		if !ok {
			est = p
		}
		tr, ok := truth[q]
		if !ok {
			tr = p
		}
		sum += math.Abs(est - tr)
	}
	return sum / float64(len(union))
}

// accrueReweight folds one chunk's prior bookkeeping into the result:
// cycles decoded under an estimated-prior overlay accrue ReweightedCycles
// and the cycle-weighted estimated-vs-true error; cycles decoded with the
// nominal prior while true elevations were live on the code accrue
// MismatchCycles.
func accrueReweight(res *Result, elapsed int64, overlay, rates map[lattice.Coord]float64, onCode map[lattice.Coord]bool, p float64) {
	if len(overlay) > 0 {
		res.ReweightedCycles += elapsed
		res.RateErrCycles += overlayError(overlay, rates, onCode, p) * float64(elapsed)
		return
	}
	if activeOnCode(rates, onCode) {
		res.MismatchCycles += elapsed
	}
}

// activeOnCode reports whether any true rate override touches a site of
// the current code — the condition under which decoding with nominal
// priors is a prior mismatch (rates confined to removed sites no longer
// reach the circuit).
func activeOnCode(rates map[lattice.Coord]float64, onCode map[lattice.Coord]bool) bool {
	for q := range rates {
		if onCode[q] {
			return true
		}
	}
	return false
}

// siteSet is the membership view of a code's physical sites.
func siteSet(c *code.Code) map[lattice.Coord]bool {
	set := map[lattice.Coord]bool{}
	for _, q := range c.DataQubits() {
		set[q] = true
	}
	for _, q := range c.SyndromeQubits() {
		set[q] = true
	}
	return set
}

// demMemoLimit bounds the per-trajectory memo's entry count; past it the
// memo resets wholesale, mirroring the DEM caches' eviction policy.
// Variable so tests can squeeze it.
var demMemoLimit = 256

// memoEntry holds the runtime objects derived from one DEM configuration:
// the decoder, the sampler, and the observable stats — all pure functions
// of the DEM's values.
type memoEntry struct {
	dem     *sim.DEM
	dec     *decoder.UnionFind
	sampler *sim.Sampler
	stats   *obsStats
}

// demMemo memoizes the per-DEM runtime objects of one trajectory, keyed on
// the canonical DEM cache key (the full configuration serialization the
// caches key on). Content keying is what makes the memo survive cache
// churn: the reweight tier's quantized power-of-two multiplier overlays
// revisit a small set of configurations, and when a cache clear (or the
// patch fast path) mints a fresh *DEM pointer for a configuration already
// memoized, the entry adopts the new pointer and keeps its objects —
// decoders, samplers and stats depend only on DEM values, which the
// canonical key fixes. A pointer-keyed memo would rebuild the decoder
// graph on every such identity change. The memo bounds itself at
// demMemoLimit with a wholesale reset; resets never change results, only
// re-derive objects on next use.
type demMemo struct {
	entries map[string]*memoEntry
}

func newDEMMemo() *demMemo {
	return &demMemo{entries: map[string]*memoEntry{}}
}

// entry returns the memo entry for the configuration key, minting (and, at
// the bound, wholesale-resetting) as needed. When the configuration comes
// back under a fresh pointer the entry adopts it: the canonical key
// guarantees identical DEM values, so the derived objects stay valid.
func (m *demMemo) entry(key string, dem *sim.DEM) *memoEntry {
	e := m.entries[key]
	if e == nil {
		if len(m.entries) >= demMemoLimit {
			m.entries = make(map[string]*memoEntry)
		}
		e = &memoEntry{dem: dem}
		m.entries[key] = e
	} else if e.dem != dem {
		e.dem = dem
	}
	return e
}

// decoder returns the memoized union-find decoder for the configuration;
// base (the chunk's nominal DEM, may be nil) lets a first build re-derive
// the decoding graph from the nominal template's merge skeleton when the
// DEM was patched from it.
func (m *demMemo) decoder(key string, dem, base *sim.DEM) *decoder.UnionFind {
	e := m.entry(key, dem)
	if e.dec == nil {
		e.dec = decoder.NewUnionFind(decoder.SharedGraphFrom(dem, base))
	}
	return e.dec
}

func (m *demMemo) sampler(key string, dem *sim.DEM) *sim.Sampler {
	e := m.entry(key, dem)
	if e.sampler == nil {
		e.sampler = sim.NewSampler(dem)
	}
	return e.sampler
}

func (m *demMemo) obsStats(key string, dem *sim.DEM) *obsStats {
	e := m.entry(key, dem)
	if e.stats == nil {
		e.stats = newObsStats(dem)
	}
	return e.stats
}
