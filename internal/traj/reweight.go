package traj

// The decoder-prior reweight tier (paper §VIII): the window detector's
// per-observable rate estimates are inverted into per-site physical-rate
// multipliers, quantized, severity-routed against the arm's mitigation
// ladder, and overlaid on the nominal decode model. Sampling always stays
// on the true rates — the arm measures honest estimated-prior decoding,
// and the decode model is driven by the detector alone (nominal before
// detection), never by the event list.

import (
	"math"

	"surfdeformer/internal/code"
	"surfdeformer/internal/decoder"
	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/detect"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/sim"
)

const (
	// reweightMinFirings is the "sustained" gate of the rate estimator: an
	// observable must fire at least this often inside the window before its
	// rate is trusted. A healthy check at the nominal rate fires well under
	// once per window, so a single noise firing over a short effective
	// window can never masquerade as drift.
	reweightMinFirings = 3
	// DefaultReweightFactor is the elevation gate: an observable's
	// estimated rate multiplier must reach this factor before the reweight
	// tier acts (Config.ReweightFactor overrides).
	DefaultReweightFactor = 3.0
)

// Mitigation returns the §VIII mitigation ladder of an arm: which tiers
// the mode enables. This is the policy hook the runtime consults (and
// installs on core.System for the deforming arms).
func (m Mode) Mitigation() deform.Mitigation {
	switch m {
	case ModeSurfDeformer:
		return deform.FullLadder()
	case ModeASC:
		return deform.Mitigation{DeformTier: true}
	case ModeReweightOnly:
		return deform.Mitigation{ReweightTier: true}
	}
	return deform.Mitigation{} // untreated: nominal priors, untouched code
}

// obsStats is the per-DEM view the rate estimator needs: each stable
// observable id's nominal per-round firing probability (the baseline
// elevation is measured against), its data support, and its ancillas —
// kept apart because the overlay localizes drift by voting across
// supports and falls back to the ancilla only when voting fails.
type obsStats struct {
	baseline map[int32]float64
	support  map[int32][]lattice.Coord
	ancillas map[int32][]lattice.Coord
}

func newObsStats(dem *sim.DEM) *obsStats {
	st := &obsStats{
		baseline: map[int32]float64{},
		support:  map[int32][]lattice.Coord{},
		ancillas: map[int32][]lattice.Coord{},
	}
	fire := dem.DetectorFireRates()
	counts := map[int32]int{}
	for det, f := range fire {
		id := stableID(dem.Observables[dem.DetObs[det]])
		st.baseline[id] += f
		counts[id]++
	}
	for id, n := range counts {
		st.baseline[id] /= float64(n)
	}
	addUnique := func(dst map[int32][]lattice.Coord, id int32, qs []lattice.Coord) {
		for _, q := range qs {
			found := false
			for _, have := range dst[id] {
				if have == q {
					found = true
					break
				}
			}
			if !found {
				dst[id] = append(dst[id], q)
			}
		}
	}
	for _, info := range dem.Observables {
		id := stableID(info)
		addUnique(st.support, id, info.Support)
		addUnique(st.ancillas, id, info.Ancillas)
	}
	for id := range st.support {
		lattice.SortCoords(st.support[id])
	}
	for id := range st.ancillas {
		lattice.SortCoords(st.ancillas[id])
	}
	return st
}

// quantizeMultiplier snaps an estimated rate multiplier onto the
// power-of-two ladder (2, 4, 8, ...). Raw estimates vary continuously with
// window noise; quantizing them keeps the set of distinct reweighted
// decode models small, so the DEM cache amortizes their construction the
// same way it amortizes the nominal models.
func quantizeMultiplier(m float64) float64 {
	if m < 2 {
		return 2
	}
	return math.Exp2(math.Round(math.Log2(m)))
}

// reweightOverlay computes the estimated-prior site overlay from the
// detector's current window state: every sustained elevated observable is
// inverted to a site-rate estimate and severity-routed against the ladder.
// An elevation classified SeverityRemove under a ladder whose deformation
// tier is enabled is excluded only once its firing rate has crossed the
// flag threshold *and* the flag path is live (flagActive — not suppressed
// by the post-deformation dwell): at that point the flag→attribute→Step
// path owns it and will remove its region (taking its checks out of the
// DEM, and so out of future overlays, automatically). A severe elevation
// the flag path cannot act on — firing below the flag threshold, or a new
// burst landing during another event's dwell — stays in the overlay as an
// interim prior: excluding it would leave it mitigated by neither tier,
// making the full ladder strictly worse than its own reweight-only
// ablation in exactly the multi-event regimes it exists for.
//
// The surviving estimates are then *localized* by multiplicity voting,
// exactly like the removal path's region estimator: a drifted data qubit
// elevates every check covering it, so a data site enters the overlay
// only when at least two elevated checks agree on it; an elevated check
// with no voting partner attributes its elevation to its own ancilla (the
// signature of measurement-side drift). Blanketing every elevated check's
// full support instead smears the estimated rate over ~8 healthy sites
// per drifted qubit and makes the reweighted prior *worse* than the
// nominal one. Returns nil when nothing qualifies.
func reweightOverlay(w *detect.Window, st *obsStats, mit deform.Mitigation, p, minFactor, flagThreshold float64, flagActive bool) map[lattice.Coord]float64 {
	ests := w.EstimateRates(p, func(o int32) float64 { return st.baseline[o] }, minFactor, reweightMinFirings)
	type elevation struct {
		obs  int32
		rate float64
	}
	var kept []elevation
	counts := map[lattice.Coord]int{}
	rates := map[lattice.Coord]float64{}
	for _, est := range ests {
		rate := p * quantizeMultiplier(est.Multiplier)
		if rate > decoder.MaxEdgeProb {
			rate = decoder.MaxEdgeProb
		}
		if mit.Route(rate) == defect.SeverityRemove && mit.Handles(defect.SeverityRemove) &&
			flagActive && est.FireRate >= flagThreshold {
			continue // severe and actionable by the flag path: removal owns it
		}
		kept = append(kept, elevation{obs: est.Observable, rate: rate})
		// A site's true rate is bounded by *every* covering check's
		// aggregate elevation, so a voted site takes the minimum — each
		// check's estimate also absorbs its other drifted neighbours, and
		// the max would systematically overshoot in dense-drift regimes.
		for _, q := range st.support[est.Observable] {
			counts[q]++
			if r, ok := rates[q]; !ok || rate < r {
				rates[q] = rate
			}
		}
	}
	var overlay map[lattice.Coord]float64
	add := func(q lattice.Coord, rate float64) {
		if overlay == nil {
			overlay = map[lattice.Coord]float64{}
		}
		if rate > overlay[q] {
			overlay[q] = rate
		}
	}
	for _, e := range kept {
		voted := false
		for _, q := range st.support[e.obs] {
			if counts[q] >= 2 {
				add(q, rates[q])
				voted = true
			}
		}
		if !voted {
			for _, q := range st.ancillas[e.obs] {
				add(q, e.rate)
			}
		}
	}
	return overlay
}

// overlayError is the estimated-vs-true prior error of one chunk: the mean
// absolute difference between the estimated site rate and the true active
// rate over the union of estimated and truly elevated sites (restricted to
// sites of the current code; a site absent from one side carries the
// nominal rate there). Summation runs in sorted site order so the float
// accumulation is deterministic.
func overlayError(overlay, truth map[lattice.Coord]float64, onCode map[lattice.Coord]bool, p float64) float64 {
	union := make([]lattice.Coord, 0, len(overlay)+len(truth))
	for q := range overlay {
		union = append(union, q)
	}
	for q := range truth {
		if _, ok := overlay[q]; !ok && onCode[q] {
			union = append(union, q)
		}
	}
	if len(union) == 0 {
		return 0
	}
	lattice.SortCoords(union)
	sum := 0.0
	for _, q := range union {
		est, ok := overlay[q]
		if !ok {
			est = p
		}
		tr, ok := truth[q]
		if !ok {
			tr = p
		}
		sum += math.Abs(est - tr)
	}
	return sum / float64(len(union))
}

// accrueReweight folds one chunk's prior bookkeeping into the result:
// cycles decoded under an estimated-prior overlay accrue ReweightedCycles
// and the cycle-weighted estimated-vs-true error; cycles decoded with the
// nominal prior while true elevations were live on the code accrue
// MismatchCycles.
func accrueReweight(res *Result, elapsed int64, overlay, rates map[lattice.Coord]float64, onCode map[lattice.Coord]bool, p float64) {
	if len(overlay) > 0 {
		res.ReweightedCycles += elapsed
		res.RateErrCycles += overlayError(overlay, rates, onCode, p) * float64(elapsed)
		return
	}
	if activeOnCode(rates, onCode) {
		res.MismatchCycles += elapsed
	}
}

// activeOnCode reports whether any true rate override touches a site of
// the current code — the condition under which decoding with nominal
// priors is a prior mismatch (rates confined to removed sites no longer
// reach the circuit).
func activeOnCode(rates map[lattice.Coord]float64, onCode map[lattice.Coord]bool) bool {
	for q := range rates {
		if onCode[q] {
			return true
		}
	}
	return false
}

// siteSet is the membership view of a code's physical sites.
func siteSet(c *code.Code) map[lattice.Coord]bool {
	set := map[lattice.Coord]bool{}
	for _, q := range c.DataQubits() {
		set[q] = true
	}
	for _, q := range c.SyndromeQubits() {
		set[q] = true
	}
	return set
}

// demMemo memoizes the per-DEM runtime objects of one trajectory —
// decoders, samplers, and observable stats — keyed on *sim.DEM pointers
// handed out by the DEM caches. The caches evict wholesale past their
// entry limit and then mint fresh pointers for rebuilt configurations, so
// an unpruned memo would grow without bound over a long horizon (one dead
// entry per evicted DEM, forever). prune watches the caches' clear
// counters and drops every entry no longer backed by either cache; the
// current chunk's objects are re-memoized right after, so pruning never
// changes results — decoders and samplers are pure functions of their DEM.
type demMemo struct {
	shared, hot *sim.DEMCache
	decoders    map[*sim.DEM]*decoder.UnionFind
	samplers    map[*sim.DEM]*sim.Sampler
	stats       map[*sim.DEM]*obsStats
	clears      int
}

func newDEMMemo(shared, hot *sim.DEMCache) *demMemo {
	return &demMemo{
		shared:   shared,
		hot:      hot,
		decoders: map[*sim.DEM]*decoder.UnionFind{},
		samplers: map[*sim.DEM]*sim.Sampler{},
		stats:    map[*sim.DEM]*obsStats{},
		clears:   shared.Clears() + hot.Clears(),
	}
}

// prune drops memo entries whose DEM is no longer cached. It is a no-op
// until a cache actually cleared, so the steady state pays two counter
// loads per chunk and nothing else.
func (m *demMemo) prune() {
	c := m.shared.Clears() + m.hot.Clears()
	if c == m.clears {
		return
	}
	m.clears = c
	for dem := range m.decoders {
		if !m.shared.Has(dem) && !m.hot.Has(dem) {
			delete(m.decoders, dem)
		}
	}
	for dem := range m.samplers {
		if !m.shared.Has(dem) && !m.hot.Has(dem) {
			delete(m.samplers, dem)
		}
	}
	for dem := range m.stats {
		if !m.shared.Has(dem) && !m.hot.Has(dem) {
			delete(m.stats, dem)
		}
	}
}

func (m *demMemo) decoder(dem *sim.DEM) *decoder.UnionFind {
	dec := m.decoders[dem]
	if dec == nil {
		dec = decoder.NewUnionFind(decoder.SharedGraph(dem))
		m.decoders[dem] = dec
	}
	return dec
}

func (m *demMemo) sampler(dem *sim.DEM) *sim.Sampler {
	s := m.samplers[dem]
	if s == nil {
		s = sim.NewSampler(dem)
		m.samplers[dem] = s
	}
	return s
}

func (m *demMemo) obsStats(dem *sim.DEM) *obsStats {
	st := m.stats[dem]
	if st == nil {
		st = newObsStats(dem)
		m.stats[dem] = st
	}
	return st
}
