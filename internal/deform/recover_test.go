package deform

import (
	"testing"

	"surfdeformer/internal/lattice"
)

func TestReincorporate(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	defects := []lattice.Coord{co(5, 5), co(4, 6), co(1, 5)}
	if err := ApplyDefects(s, defects, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if s.NumRemoved() != 3 {
		t.Fatalf("removed %d, want 3", s.NumRemoved())
	}
	n := s.Reincorporate(defects)
	if n != 3 {
		t.Fatalf("reincorporated %d, want 3", n)
	}
	if s.NumRemoved() != 0 || len(s.Fixes) != 0 {
		t.Error("records must be fully cleared")
	}
	c := mustBuild(t, s)
	if c.Distance() != 5 || len(c.Gauges()) != 0 {
		t.Errorf("recovered code distance %d gauges %d, want pristine 5/0", c.Distance(), len(c.Gauges()))
	}
	if s.Reincorporate(defects) != 0 {
		t.Error("double recovery must be a no-op")
	}
}

func TestShrinkShedsCleanLayers(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.PatchQADD(lattice.Right, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.PatchQADD(lattice.Top, 1); err != nil {
		t.Fatal(err)
	}
	shed := s.Shrink(5, 5, co(0, 0))
	if shed[lattice.Right] != 2 || shed[lattice.Top] != 1 {
		t.Fatalf("shed %v, want 2 right + 1 top", shed)
	}
	if s.DX != 5 || s.DZ != 5 || s.Origin != co(0, 0) {
		t.Errorf("spec after shrink: %v", s)
	}
}

func TestShrinkKeepsDirtyLayers(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.PatchQADD(lattice.Right, 2); err != nil {
		t.Fatal(err)
	}
	// A removal inside the outermost grown layer pins it.
	s.RemovedData[co(5, 13)] = true
	shed := s.Shrink(5, 5, co(0, 0))
	if shed[lattice.Right] != 0 {
		t.Errorf("dirty layer was shed: %v", shed)
	}
	// Clearing the record frees the layers.
	delete(s.RemovedData, co(5, 13))
	shed = s.Shrink(5, 5, co(0, 0))
	if shed[lattice.Right] != 2 {
		t.Errorf("shed %v after cleanup, want 2", shed)
	}
}

func TestUnitFullLifecycle(t *testing.T) {
	// Strike -> deform+grow -> recover -> shrink back to pristine.
	u := NewUnit(co(0, 0), 5, 5, PolicySurfDeformer, UniformBudget(2))
	strike := []lattice.Coord{co(5, 5)}
	r1, err := u.Step(strike)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Enlarged {
		t.Fatal("interior strike should trigger growth")
	}
	qubitsDuring := r1.Code.NumQubits()

	r2, err := u.Recover(strike)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumRemoved != 0 {
		t.Errorf("%d removals left after recovery", r2.NumRemoved)
	}
	if r2.DistanceX != 5 || r2.DistanceZ != 5 {
		t.Errorf("distances %d/%d after recovery, want 5/5", r2.DistanceX, r2.DistanceZ)
	}
	if got := r2.Code.NumQubits(); got != 2*5*5-1 {
		t.Errorf("qubits after shrink %d, want pristine %d (had %d during)", got, 2*5*5-1, qubitsDuring)
	}
	if err := r2.Code.Validate(); err != nil {
		t.Errorf("recovered code invalid: %v", err)
	}
	if len(u.Defects()) != 0 {
		t.Error("defect set must be empty after recovery")
	}
	// The unit can absorb a fresh strike after recovery.
	if _, err := u.Step([]lattice.Coord{co(3, 3)}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverPartial(t *testing.T) {
	u := NewUnit(co(0, 0), 5, 5, PolicySurfDeformer, UniformBudget(2))
	strikes := []lattice.Coord{co(5, 5), co(3, 7)}
	if _, err := u.Step(strikes); err != nil {
		t.Fatal(err)
	}
	// Only one site recovers; the other stays excluded.
	r, err := u.Recover(strikes[:1])
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRemoved == 0 {
		t.Error("partial recovery must keep the remaining defect excluded")
	}
	if len(u.Defects()) != 1 {
		t.Errorf("defect set %v, want 1 entry", u.Defects())
	}
}
