package deform

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/gf2"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// Build compiles the spec into a concrete code.
//
// The algebraic procedure:
//
//  1. Restrict every check of the bounding rectangle to the surviving data
//     set. Checks whose syndrome qubit was removed are replaced by weight-1
//     direct measurement candidates on their surviving support (fig. 6b).
//  2. Apply boundary fixes: freezing the single-qubit operator of type T on
//     a removed site merges the broken opposite-type checks that contained
//     it into a single product candidate (fig. 6c / fig. 8).
//  3. Partition: a candidate that commutes with every other candidate is a
//     stabilizer; the rest are gauge operators (this reproduces the paper's
//     S2G demotions).
//  4. Recover super-stabilizers: products of gauge candidates lying in the
//     center of the measured group are found as the nullspace of the
//     anti-commutation Gram matrix and recorded as super-stabilizers with
//     explicit member lists (fig. 6a's s1s2/g1g2, fig. 6b's octagon).
//  5. Re-derive minimum-weight logical representatives from the deformed
//     stabilizer structure and repair them against the gauge operators.
//
// The result is validated structurally; callers requiring the full
// (expensive) invariant check should call Validate on the result.
func (s *Spec) Build() (*code.Code, error) {
	rect := s.Rect()
	dataSet := make(map[lattice.Coord]bool, len(rect.Data))
	for _, q := range rect.Data {
		if !s.RemovedData[q] {
			dataSet[q] = true
		}
	}
	if len(dataSet) == 0 {
		return nil, fmt.Errorf("deform: all data qubits removed")
	}

	type cand struct {
		op       pauli.Op
		typ      lattice.CheckType
		ancilla  lattice.Coord
		direct   bool
		origSupp []lattice.Coord // support of the source check before restriction
		fromFix  bool            // merged remnant created by a boundary fix
	}
	var cands []cand

	keep := func(q lattice.Coord) bool { return dataSet[q] }
	for _, ch := range rect.Checks {
		var full pauli.Op
		if ch.Type == lattice.XCheck {
			full = pauli.X(ch.Support...)
		} else {
			full = pauli.Z(ch.Support...)
		}
		if s.RemovedSyndrome[ch.Center] {
			// SyndromeQRM: the check is inferred from weight-1 direct
			// measurements of the surviving support qubits.
			for _, q := range ch.Support {
				if !dataSet[q] {
					continue
				}
				var op pauli.Op
				if ch.Type == lattice.XCheck {
					op = pauli.X(q)
				} else {
					op = pauli.Z(q)
				}
				cands = append(cands, cand{op: op, typ: ch.Type, ancilla: q, direct: true, origSupp: ch.Support})
			}
			continue
		}
		op := full.RestrictedTo(keep)
		if op.IsIdentity() {
			continue
		}
		cands = append(cands, cand{op: op, typ: ch.Type, ancilla: ch.Center, origSupp: ch.Support})
	}

	// Boundary fixes (PatchQRM): freezing the single-qubit operator of type
	// T on q demotes the opposite-type checks containing q and merges them
	// into one product candidate (the paper's G2G folding inside G2S). The
	// merged remnant is kept only if it commutes with the rest of the code;
	// otherwise it is the operator G2S sacrifices, and it is dropped below.
	fixCoords := make([]lattice.Coord, 0, len(s.Fixes))
	for q := range s.Fixes {
		fixCoords = append(fixCoords, q)
	}
	lattice.SortCoords(fixCoords)
	for _, q := range fixCoords {
		brokenType := s.Fixes[q].Opposite()
		var merged pauli.Op
		var mergedSupp []lattice.Coord
		anc := lattice.Coord{}
		out := cands[:0]
		found := false
		for _, cd := range cands {
			if cd.typ == brokenType && !cd.direct && containsCoord(cd.origSupp, q) {
				if !found {
					anc = cd.ancilla
					found = true
				}
				merged = pauli.Mul(merged, cd.op)
				mergedSupp = append(mergedSupp, cd.origSupp...)
				continue
			}
			out = append(out, cd)
		}
		cands = out
		if found && !merged.IsIdentity() {
			cands = append(cands, cand{op: merged, typ: brokenType, ancilla: anc, origSupp: mergedSupp, fromFix: true})
		}
	}

	// Partition into stabilizers and gauges; fix-merged remnants that still
	// anti-commute with the surviving code are sacrificed (the G2S step of
	// PatchQRM) and the partition repeats until stable.
	var isGauge []bool
	for {
		isGauge = make([]bool, len(cands))
		for i := range cands {
			for j := i + 1; j < len(cands); j++ {
				if !cands[i].op.Commutes(cands[j].op) {
					isGauge[i] = true
					isGauge[j] = true
				}
			}
		}
		dropped := false
		out := cands[:0]
		for i, cd := range cands {
			if cd.fromFix && isGauge[i] {
				dropped = true
				continue
			}
			out = append(out, cd)
		}
		cands = out
		if !dropped {
			break
		}
	}

	// Prune data qubits covered by no candidate: they are disconnected from
	// the code and would inflate k. Weight-1 plain stabilizers freeze their
	// qubit: the frozen qubit leaves the code and the check disappears with
	// it (the cascade of a boundary cut consuming an orphaned site).
	for {
		covered := map[lattice.Coord]bool{}
		for i, cd := range cands {
			if !isGauge[i] && !cd.direct && cd.op.Weight() == 1 {
				continue // frozen site: treated as uncovered below
			}
			for _, q := range cd.op.Support() {
				covered[q] = true
			}
		}
		changed := false
		for q := range dataSet {
			if !covered[q] {
				delete(dataSet, q)
				changed = true
			}
		}
		if !changed {
			break
		}
		// Re-restrict candidates and drop the ones that vanished; the
		// partition flags stay aligned by rebuilding both slices together.
		newCands := cands[:0]
		var newIsGauge []bool
		for i := range cands {
			op := cands[i].op.RestrictedTo(keep)
			if op.IsIdentity() {
				continue
			}
			cd := cands[i]
			cd.op = op
			newCands = append(newCands, cd)
			newIsGauge = append(newIsGauge, isGauge[i])
		}
		cands = newCands
		isGauge = newIsGauge
	}

	// Assemble the code object.
	var dataList []lattice.Coord
	for q := range dataSet {
		dataList = append(dataList, q)
	}
	lattice.SortCoords(dataList)
	usedSyn := map[lattice.Coord]bool{}
	for i, cd := range cands {
		if cd.direct {
			continue
		}
		_ = i
		usedSyn[cd.ancilla] = true
	}
	var synList []lattice.Coord
	for q := range usedSyn {
		synList = append(synList, q)
	}
	lattice.SortCoords(synList)
	c := code.New(dataList, synList)

	var gaugeIdx []int // candidate index per gauge, aligned with gaugeIDs
	var gaugeIDs []int
	for i, cd := range cands {
		if isGauge[i] {
			id := c.AddGauge(cd.op, cd.ancilla, cd.direct)
			gaugeIdx = append(gaugeIdx, i)
			gaugeIDs = append(gaugeIDs, id)
		} else if cd.direct {
			c.AddDirectStab(cd.op)
		} else {
			c.AddStab(cd.op, cd.ancilla)
		}
	}

	// Recover super-stabilizers from the gauge Gram nullspace.
	if len(gaugeIdx) > 0 {
		m := len(gaugeIdx)
		gram := gf2.NewMatrix(m, m)
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if !cands[gaugeIdx[a]].op.Commutes(cands[gaugeIdx[b]].op) {
					gram.Set(a, b, true)
					gram.Set(b, a, true)
				}
			}
		}
		// Incremental independence filter over the symplectic rows of the
		// current stabilizer list.
		qIdx := make(map[lattice.Coord]int, len(dataList))
		for i, q := range dataList {
			qIdx[q] = i
		}
		nq := len(dataList)
		reducer := newIncrementalReducer(2 * nq)
		for _, st := range c.Stabs() {
			v, err := symplecticVec(st.Op, qIdx, nq)
			if err != nil {
				return nil, err
			}
			reducer.add(v)
		}
		for _, null := range gram.Nullspace() {
			var prod pauli.Op
			var members []int
			for _, a := range null.Indices() {
				prod = pauli.Mul(prod, cands[gaugeIdx[a]].op)
				members = append(members, gaugeIDs[a])
			}
			if prod.IsIdentity() {
				continue
			}
			v, err := symplecticVec(prod, qIdx, nq)
			if err != nil {
				return nil, err
			}
			if !reducer.add(v) {
				continue // dependent on existing stabilizers
			}
			c.AddSuperStab(prod, members)
		}
	}

	// Provisional logicals from the rectangle, then refresh from the actual
	// deformed structure.
	c.SetLogicalX(pauli.X(rect.LogicalX...).RestrictedTo(keep))
	c.SetLogicalZ(pauli.Z(rect.LogicalZ...).RestrictedTo(keep))
	if err := c.RefreshLogicals(); err != nil {
		return nil, fmt.Errorf("deform: %w", err)
	}
	if _, k, _, err := c.Params(); err != nil {
		return nil, fmt.Errorf("deform: %w", err)
	} else if k != 1 {
		return nil, fmt.Errorf("deform: deformed code encodes k=%d logical qubits; defect pattern breaks the patch", k)
	}
	return c, nil
}

func containsCoord(cs []lattice.Coord, q lattice.Coord) bool {
	for _, c := range cs {
		if c == q {
			return true
		}
	}
	return false
}

// symplecticVec encodes op as [x-part | z-part] over the given qubit index.
func symplecticVec(op pauli.Op, idx map[lattice.Coord]int, n int) (gf2.Vec, error) {
	v := gf2.NewVec(2 * n)
	for _, q := range op.XSupport() {
		i, ok := idx[q]
		if !ok {
			return gf2.Vec{}, fmt.Errorf("deform: operator acts on unknown qubit %v", q)
		}
		v.Set(i, true)
	}
	for _, q := range op.ZSupport() {
		i, ok := idx[q]
		if !ok {
			return gf2.Vec{}, fmt.Errorf("deform: operator acts on unknown qubit %v", q)
		}
		v.Set(n+i, true)
	}
	return v, nil
}

// incrementalReducer maintains a row-reduced GF(2) basis supporting
// independence-tested insertion.
type incrementalReducer struct {
	cols  int
	rows  []gf2.Vec // each with a unique pivot column
	pivot []int
}

func newIncrementalReducer(cols int) *incrementalReducer {
	return &incrementalReducer{cols: cols}
}

// add reduces v against the basis; if a non-zero remainder survives it is
// added to the basis and add reports true. A zero remainder (dependent
// vector) reports false.
func (r *incrementalReducer) add(v gf2.Vec) bool {
	w := v.Clone()
	for i, row := range r.rows {
		if w.Get(r.pivot[i]) {
			w.Xor(row)
		}
	}
	if w.IsZero() {
		return false
	}
	p := w.Indices()[0]
	r.rows = append(r.rows, w)
	r.pivot = append(r.pivot, p)
	return true
}
