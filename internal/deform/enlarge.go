package deform

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

// EnlargeResult reports what the adaptive enlargement achieved.
type EnlargeResult struct {
	Code        *code.Code
	LayersAdded map[lattice.Side]int
	ReachedX    int // X distance of the final code
	ReachedZ    int // Z distance of the final code
	NewDefects  int // defective qubits encountered inside added layers
}

// Budget limits how many layers may be added per side; it encodes the
// layout's Δd inter-space reservation. A nil entry means zero budget.
type Budget map[lattice.Side]int

// UniformBudget gives every side the same layer allowance.
func UniformBudget(layers int) Budget {
	return Budget{lattice.Top: layers, lattice.Bottom: layers, lattice.Left: layers, lattice.Right: layers}
}

// Enlarge implements the paper's Algorithm 2 (Adaptive Enlargement
// Subroutine). Starting from a spec whose defects have already been removed
// (Algorithm 1), it grows the patch one layer at a time until the X and Z
// distances reach their targets or the per-side budgets are exhausted.
// For each needed unit of distance both candidate sides are evaluated and
// the cheaper/better one chosen (the paper's min(layer1, layer2)). Defective
// qubits inside freshly added layers — the fig. 9 cases — are removed with
// the given policy before the layer is judged; a layer that fails to improve
// the distance (a defect straddles it) triggers a second layer on the same
// side when the budget allows (fig. 9d).
func Enlarge(s *Spec, targetX, targetZ int, defective func(lattice.Coord) bool, policy Policy, budget Budget) (*EnlargeResult, error) {
	if defective == nil {
		defective = func(lattice.Coord) bool { return false }
	}
	if budget == nil {
		budget = Budget{}
	}
	res := &EnlargeResult{LayersAdded: map[lattice.Side]int{}}
	c, err := s.Build()
	if err != nil {
		return nil, err
	}
	dx, dz := c.DistanceX(), c.DistanceZ()

	// grow attempts to raise the distance of the given type by one unit,
	// trying each allowed side with one layer (and two on the same side if
	// one layer is defeated by a defect). It reports whether it improved.
	grow := func(typ lattice.CheckType) (bool, error) {
		var sides [2]lattice.Side
		if typ == lattice.ZCheck {
			sides = [2]lattice.Side{lattice.Left, lattice.Right}
		} else {
			sides = [2]lattice.Side{lattice.Top, lattice.Bottom}
		}
		type attempt struct {
			spec    *Spec
			code    *code.Code
			side    lattice.Side
			layers  int
			defects int
			dist    int
		}
		var best *attempt
		current := dz
		if typ == lattice.XCheck {
			current = dx
		}
		for _, side := range sides {
			remaining := budget[side] - res.LayersAdded[side]
			for layers := 1; layers <= 2 && layers <= remaining; layers++ {
				trial := s.Clone()
				if err := trial.PatchQADD(side, layers); err != nil {
					return false, err
				}
				newDefects := defectsInStrip(trial, s, defective)
				if err := ApplyDefects(trial, newDefects, policy); err != nil {
					continue // this growth direction is not viable
				}
				tc, err := trial.Build()
				if err != nil {
					continue
				}
				dist := tc.DistanceZ()
				if typ == lattice.XCheck {
					dist = tc.DistanceX()
				}
				if dist <= current {
					continue // layer defeated by defects; try more layers
				}
				a := &attempt{spec: trial, code: tc, side: side, layers: layers, defects: len(newDefects), dist: dist}
				if best == nil ||
					a.layers < best.layers ||
					(a.layers == best.layers && a.dist > best.dist) ||
					(a.layers == best.layers && a.dist == best.dist && a.defects < best.defects) {
					best = a
				}
				break // one viable attempt per side is enough
			}
		}
		if best == nil {
			return false, nil
		}
		*s = *best.spec
		c = best.code
		dx, dz = c.DistanceX(), c.DistanceZ()
		res.LayersAdded[best.side] += best.layers
		res.NewDefects += best.defects
		return true, nil
	}

	const maxIterations = 64
	for iter := 0; iter < maxIterations && (dx < targetX || dz < targetZ); iter++ {
		progressed := false
		if dz < targetZ {
			ok, err := grow(lattice.ZCheck)
			if err != nil {
				return nil, err
			}
			progressed = progressed || ok
		}
		if dx < targetX {
			ok, err := grow(lattice.XCheck)
			if err != nil {
				return nil, err
			}
			progressed = progressed || ok
		}
		if !progressed {
			break // budgets exhausted or defects block further recovery
		}
	}
	res.Code = c
	res.ReachedX = dx
	res.ReachedZ = dz
	return res, nil
}

// defectsInStrip lists the defective coordinates inside the region that
// grown covers but base does not.
func defectsInStrip(grown, base *Spec, defective func(lattice.Coord) bool) []lattice.Coord {
	gMin, gMax := grown.Bounds()
	var out []lattice.Coord
	for r := gMin.Row; r <= gMax.Row; r++ {
		for c := gMin.Col; c <= gMax.Col; c++ {
			q := lattice.Coord{Row: r, Col: c}
			if base.Contains(q) {
				continue
			}
			if !q.IsData() && !q.IsCheck() {
				continue
			}
			if defective(q) {
				out = append(out, q)
			}
		}
	}
	return out
}

// RestoreDistance is the common Surf-Deformer runtime sequence: remove the
// given defects (Algorithm 1), then adaptively enlarge back toward the
// original target distances (Algorithm 2).
func RestoreDistance(s *Spec, defects []lattice.Coord, targetX, targetZ int, defective func(lattice.Coord) bool, policy Policy, budget Budget) (*EnlargeResult, error) {
	if err := ApplyDefects(s, defects, policy); err != nil {
		return nil, err
	}
	res, err := Enlarge(s, targetX, targetZ, defective, policy, budget)
	if err != nil {
		return nil, fmt.Errorf("deform: enlargement failed: %w", err)
	}
	return res, nil
}
