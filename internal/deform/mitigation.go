package deform

import "surfdeformer/internal/defect"

// Mitigation is the runtime mitigation ladder of the paper's §VIII: which
// of the two tiers a policy enables — decoder-prior reweighting for mild
// rate elevation, code deformation for severe defects — and where the
// severity boundary between them sits. The runtime (core.System, the
// trajectory engine's arms) consults this ladder to route a detected
// elevation: Route classifies it, Handles says whether the selected tier
// is actually enabled under the policy (an ablation arm may run one tier
// only).
type Mitigation struct {
	// ReweightTier enables decoder-prior reweighting: detected mild
	// elevations are folded into the decode model's priors
	// (noise.Model.OverlaySiteRates) without touching the code.
	ReweightTier bool
	// DeformTier enables code deformation: detected severe defects are
	// removed (and the code adaptively enlarged) by the deformation unit.
	DeformTier bool
	// RemoveThreshold is the estimated local error rate at or above which
	// an elevation needs deformation rather than reweighting
	// (non-positive selects defect.RemoveThreshold).
	RemoveThreshold float64
}

// FullLadder is the paper's complete mitigation ladder: both tiers enabled
// at the default severity boundary.
func FullLadder() Mitigation {
	return Mitigation{ReweightTier: true, DeformTier: true}
}

// Route classifies an estimated local error rate into the tier that should
// handle it under this ladder's severity boundary. Routing is independent
// of which tiers are enabled — callers combine it with Handles, so a
// reweight-only ablation can still see that an elevation *wanted* removal.
func (m Mitigation) Route(estRate float64) defect.Severity {
	return defect.ClassifyAt(estRate, m.RemoveThreshold)
}

// Handles reports whether the tier selected for a severity is enabled
// under this ladder.
func (m Mitigation) Handles(s defect.Severity) bool {
	switch s {
	case defect.SeverityReweight:
		return m.ReweightTier
	case defect.SeverityRemove:
		return m.DeformTier
	}
	return false
}
