package deform

import "surfdeformer/internal/defect"

// Mitigation is the runtime mitigation ladder of the paper's §VIII,
// extended with the bandage super-stabilizer tier of arXiv 2404.18644:
// which of the three tiers a policy enables — decoder-prior reweighting
// for mild rate elevation, gauge-merged super-stabilizers for a severely
// noisy qubit, code deformation for severe regions — and where the
// severity boundaries between them sit. The runtime (core.System, the
// trajectory engine's arms) consults this ladder to route a detected
// elevation: Route classifies it, Handles says whether the selected tier
// is actually enabled under the policy (an ablation arm may run one tier
// only), and Effective resolves the strongest enabled tier at or below the
// classified severity.
type Mitigation struct {
	// ReweightTier enables decoder-prior reweighting: detected mild
	// elevations are folded into the decode model's priors
	// (noise.Model.OverlaySiteRates) without touching the code.
	ReweightTier bool
	// SuperTier enables bandage super-stabilizers: a severely noisy qubit
	// is isolated in place by demoting its adjacent checks to gauges and
	// promoting their merged products (BandageQubit), leaving the patch
	// boundary — and the logical operators — untouched.
	SuperTier bool
	// DeformTier enables code deformation: detected severe defects are
	// removed (and the code adaptively enlarged) by the deformation unit.
	DeformTier bool
	// SuperThreshold is the estimated local error rate at or above which
	// an elevation outgrows reweighting and warrants a super-stabilizer
	// (non-positive selects defect.SuperThreshold). Must resolve below
	// RemoveThreshold; Validate rejects misordered ladders.
	SuperThreshold float64
	// RemoveThreshold is the estimated local error rate at or above which
	// an elevation needs deformation rather than any in-place mitigation
	// (non-positive selects defect.RemoveThreshold).
	RemoveThreshold float64
}

// FullLadder is the complete mitigation ladder: all three tiers enabled at
// the default severity boundaries.
func FullLadder() Mitigation {
	return Mitigation{ReweightTier: true, SuperTier: true, DeformTier: true}
}

// Route classifies an estimated local error rate into the tier that should
// handle it under this ladder's severity boundaries. Routing is
// independent of which tiers are enabled — callers combine it with
// Handles/Effective, so a reweight-only ablation can still see that an
// elevation *wanted* removal.
func (m Mitigation) Route(estRate float64) defect.Severity {
	return defect.ClassifyAt(estRate, m.SuperThreshold, m.RemoveThreshold)
}

// Handles reports whether the tier selected for a severity is enabled
// under this ladder.
func (m Mitigation) Handles(s defect.Severity) bool {
	switch s {
	case defect.SeverityReweight:
		return m.ReweightTier
	case defect.SeveritySuper:
		return m.SuperTier
	case defect.SeverityRemove:
		return m.DeformTier
	}
	return false
}

// Effective resolves the strongest enabled tier at or below a classified
// severity — the tier that will actually act. An elevation classified for
// removal falls back to a super-stabilizer under a super-only ablation;
// one classified for a super-stabilizer never escalates to removal. The
// second return is false when no enabled tier can act at all.
func (m Mitigation) Effective(s defect.Severity) (defect.Severity, bool) {
	for t := s; t >= defect.SeverityReweight; t-- {
		if m.Handles(t) {
			return t, true
		}
	}
	return 0, false
}

// Validate rejects ladders whose resolved severity boundaries are
// misordered (super at or above remove), which would silently erase the
// super tier rather than surfacing the misconfiguration.
func (m Mitigation) Validate() error {
	return defect.ValidateThresholds(m.SuperThreshold, m.RemoveThreshold)
}
