package deform

import (
	"fmt"

	"surfdeformer/internal/lattice"
)

// Policy selects which defect-removal strategy drives instruction choice.
type Policy int

const (
	// PolicySurfDeformer is the paper's Algorithm 1: DataQRM for interior
	// data defects, SyndromeQRM for interior syndrome defects, PatchQRM
	// with X/Z balancing for boundary defects.
	PolicySurfDeformer Policy = iota
	// PolicyASC reproduces ASC-S: every defect is handled with the
	// super-stabilizer (DataQRM) primitive — a defective syndrome qubit
	// costs its four adjacent data qubits — and boundary cuts always fix Z
	// without balancing (fig. 8a).
	PolicyASC
	// PolicyNoBalance is the ablation of the balancing step: boundary
	// defects are removed without any gauge fixing (the gauge-pair cut).
	PolicyNoBalance
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicySurfDeformer:
		return "surf-deformer"
	case PolicyASC:
		return "asc-s"
	case PolicyNoBalance:
		return "no-balance"
	}
	return "invalid"
}

// ApplyDefects implements the paper's Algorithm 1 (Defect Removal
// Subroutine) at the spec level: each defective physical qubit is
// classified by role (data/syndrome) and position (interior/boundary) and
// the corresponding instruction is recorded. Defects outside the patch or
// already removed are skipped, making repeated application idempotent.
//
// Balancing (the paper's balancing function, fig. 8) is performed for
// boundary data defects under PolicySurfDeformer by evaluating both fix
// choices and keeping the one that maximizes min(dX, dZ), breaking ties
// toward the larger dX+dZ.
func ApplyDefects(s *Spec, defects []lattice.Coord, policy Policy) error {
	for _, q := range defects {
		if !s.Contains(q) {
			continue
		}
		switch {
		case q.IsData():
			if s.RemovedData[q] {
				continue
			}
			if err := applyDataDefect(s, q, policy); err != nil {
				return err
			}
		case q.IsCheck():
			if s.RemovedSyndrome[q] {
				continue
			}
			if err := applySyndromeDefect(s, q, policy); err != nil {
				return err
			}
		default:
			return fmt.Errorf("deform: defect coordinate %v is neither data nor syndrome site", q)
		}
	}
	return nil
}

func applyDataDefect(s *Spec, q lattice.Coord, policy Policy) error {
	if s.IsInterior(q) {
		return s.DataQRM(q)
	}
	switch policy {
	case PolicyASC:
		// ASC-S always converts the Z gauge operator (fig. 8a).
		return s.PatchQRM(q, lattice.ZCheck)
	case PolicyNoBalance:
		s.RemovedData[q] = true // cut without gauge fixing
		return nil
	default:
		return balancedPatchQRM(s, q)
	}
}

func applySyndromeDefect(s *Spec, q lattice.Coord, policy Policy) error {
	if policy == PolicyASC {
		// ASC-S removes the adjacent data qubits with DataQRM even though
		// they are healthy (fig. 7a).
		rect := s.Rect()
		ch, ok := rect.CheckAt(q)
		if !ok {
			return nil // no check lives here; nothing to disable
		}
		for _, dq := range ch.Support {
			if s.RemovedData[dq] {
				continue
			}
			if s.IsInterior(dq) {
				if err := s.DataQRM(dq); err != nil {
					return err
				}
			} else if err := s.PatchQRM(dq, lattice.ZCheck); err != nil {
				return err
			}
		}
		s.RemovedSyndrome[q] = true
		return nil
	}
	// Surf-Deformer: the SyndromeQRM algebra handles interior and boundary
	// syndrome sites uniformly (boundary half-checks yield shorter chains).
	if _, ok := s.Rect().CheckAt(q); !ok {
		return nil // corner positions host no check
	}
	return s.SyndromeQRM(q)
}

// balancedPatchQRM evaluates both boundary-fix choices and records the one
// with the better balanced distance profile.
func balancedPatchQRM(s *Spec, q lattice.Coord) error {
	type option struct {
		fix  lattice.CheckType
		dMin int
		dSum int
		ok   bool
	}
	opts := make([]option, 0, 2)
	for _, fix := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		trial := s.Clone()
		if err := trial.PatchQRM(q, fix); err != nil {
			return err
		}
		c, err := trial.Build()
		if err != nil {
			opts = append(opts, option{fix: fix, ok: false})
			continue
		}
		dx, dz := c.DistanceX(), c.DistanceZ()
		dMin, dSum := dx, dx+dz
		if dz < dMin {
			dMin = dz
		}
		opts = append(opts, option{fix: fix, dMin: dMin, dSum: dSum, ok: true})
	}
	best := -1
	for i, o := range opts {
		if !o.ok {
			continue
		}
		if best < 0 || o.dMin > opts[best].dMin ||
			(o.dMin == opts[best].dMin && o.dSum > opts[best].dSum) {
			best = i
		}
	}
	if best < 0 {
		// Both gauge-fixing choices break the patch under this (dense)
		// defect pattern; fall back to the plain gauge-pair cut, which
		// keeps the most information. The subsequent Build decides whether
		// the patch survives at all.
		s.RemovedData[q] = true
		return nil
	}
	return s.PatchQRM(q, opts[best].fix)
}
