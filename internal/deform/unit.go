package deform

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

// Unit is the runtime Code Deformation Unit of fig. 5: before each QEC
// cycle it consumes the dynamic defect report, executes the defect-removal
// subroutine followed by adaptive enlargement, and hands the deformed code
// to the execution unit.
type Unit struct {
	spec    *Spec
	policy  Policy
	budget  Budget
	targetX int
	targetZ int

	// Original geometry, for shrinking back after defects subside.
	origDX, origDZ int
	origOrigin     lattice.Coord

	// defectSet accumulates every defect seen so far; defects persist for
	// thousands of cycles, so the spec keeps them excluded until the
	// detector reports recovery (Recover).
	defectSet map[lattice.Coord]bool
}

// NewUnit creates a deformation unit for a fresh dx×dz patch at origin.
// The unit aims to keep the X and Z distances at dz and dx respectively,
// growing at most budget layers per side.
func NewUnit(origin lattice.Coord, dx, dz int, policy Policy, budget Budget) *Unit {
	return &Unit{
		spec:       NewSpec(origin, dx, dz),
		policy:     policy,
		budget:     budget,
		targetX:    dz,
		targetZ:    dx,
		origDX:     dx,
		origDZ:     dz,
		origOrigin: origin,
		defectSet:  map[lattice.Coord]bool{},
	}
}

// StepResult describes one deformation round.
type StepResult struct {
	Code       *code.Code
	DistanceX  int
	DistanceZ  int
	NumRemoved int                  // total removed physical sites in the spec
	Layers     map[lattice.Side]int // layers added this step
	Defects    []lattice.Coord      // defects processed this step
	Spec       *Spec                // post-step spec (callers must not mutate)
	Enlarged   bool                 // whether any growth happened this step
}

// Step processes a defect report: removal (Algorithm 1) then adaptive
// enlargement (Algorithm 2). It is idempotent for repeated defects. The
// entire update is representable within a single QEC cycle (the paper's
// deformation property); Step returns the code to measure from now on.
func (u *Unit) Step(defects []lattice.Coord) (*StepResult, error) {
	var fresh []lattice.Coord
	for _, q := range defects {
		if !u.defectSet[q] {
			u.defectSet[q] = true
			fresh = append(fresh, q)
		}
	}
	if err := ApplyDefects(u.spec, fresh, u.policy); err != nil {
		return nil, fmt.Errorf("deform: removal failed: %w", err)
	}
	defective := func(q lattice.Coord) bool { return u.defectSet[q] }
	res, err := Enlarge(u.spec, u.targetX, u.targetZ, defective, u.policy, u.budget)
	if err != nil {
		return nil, fmt.Errorf("deform: enlargement failed: %w", err)
	}
	enlarged := false
	for _, n := range res.LayersAdded {
		if n > 0 {
			enlarged = true
		}
	}
	return &StepResult{
		Code:       res.Code,
		DistanceX:  res.ReachedX,
		DistanceZ:  res.ReachedZ,
		NumRemoved: u.spec.NumRemoved(),
		Layers:     res.LayersAdded,
		Defects:    fresh,
		Spec:       u.spec,
		Enlarged:   enlarged,
	}, nil
}

// Spec exposes the unit's current spec (callers must not mutate it).
func (u *Unit) Spec() *Spec { return u.spec }

// Defects returns the accumulated defect coordinates.
func (u *Unit) Defects() []lattice.Coord {
	out := make([]lattice.Coord, 0, len(u.defectSet))
	for q := range u.defectSet {
		out = append(out, q)
	}
	lattice.SortCoords(out)
	return out
}

// Instruction identifies one entry of the extended instruction set
// (Table I of the paper).
type Instruction string

// The Surf-Deformer instruction set. Lattice-surgery primitives (grow,
// merge, split) are the baseline shared by all frameworks.
const (
	InstrDataQRM     Instruction = "DataQ_RM"
	InstrSyndromeQRM Instruction = "SyndromeQ_RM"
	InstrPatchQRM    Instruction = "PatchQ_RM"
	InstrPatchQADD   Instruction = "PatchQ_ADD"
)

// InstructionSet lists the extended instructions a framework supports and
// the operations they enable — the content of the paper's Table I.
type InstructionSet struct {
	Method     string
	Extended   []Instruction
	Operations []string
}

// InstructionSets returns Table I: the instruction sets of lattice surgery,
// Q3DE, ASC-S and Surf-Deformer.
func InstructionSets() []InstructionSet {
	return []InstructionSet{
		{
			Method:     "Lattice Surgery",
			Extended:   nil,
			Operations: []string{"Logical operations"},
		},
		{
			Method:     "Q3DE",
			Extended:   nil,
			Operations: []string{"Logical operations", "Fixed enlargement"},
		},
		{
			Method:     "ASC-S",
			Extended:   []Instruction{InstrDataQRM},
			Operations: []string{"Logical operations", "Fixed qubit removal"},
		},
		{
			Method:     "Surf-Deformer",
			Extended:   []Instruction{InstrDataQRM, InstrSyndromeQRM, InstrPatchQRM, InstrPatchQADD},
			Operations: []string{"Logical operations", "Adaptive qubit removal", "Adaptive enlargement"},
		},
	}
}
