package deform

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

// Unit is the runtime Code Deformation Unit of fig. 5: before each QEC
// cycle it consumes the dynamic defect report, executes the defect-removal
// subroutine followed by adaptive enlargement, and hands the deformed code
// to the execution unit.
type Unit struct {
	spec    *Spec
	policy  Policy
	budget  Budget
	targetX int
	targetZ int

	// Original geometry, for shrinking back after defects subside.
	origDX, origDZ int
	origOrigin     lattice.Coord

	// defectSet accumulates every defect seen so far; defects persist for
	// thousands of cycles, so the spec keeps them excluded until the
	// detector reports recovery (Recover).
	defectSet map[lattice.Coord]bool

	// bandageSet holds the sites mitigated by bandage super-stabilizers
	// (BandageQubit) rather than removal. Bandages are re-applied on top
	// of every spec rebuild, so they survive enlargement, removal and
	// shrink operations; they persist until Unbandage.
	bandageSet map[lattice.Coord]bool
	// bandaged records which bandageSet sites actually took effect at the
	// last rebuild (a site may be outside the current footprint, or its
	// neighbourhood may reject the construction).
	bandaged []lattice.Coord
}

// NewUnit creates a deformation unit for a fresh dx×dz patch at origin.
// The unit aims to keep the X and Z distances at dz and dx respectively,
// growing at most budget layers per side.
func NewUnit(origin lattice.Coord, dx, dz int, policy Policy, budget Budget) *Unit {
	return &Unit{
		spec:       NewSpec(origin, dx, dz),
		policy:     policy,
		budget:     budget,
		targetX:    dz,
		targetZ:    dx,
		origDX:     dx,
		origDZ:     dz,
		origOrigin: origin,
		defectSet:  map[lattice.Coord]bool{},
		bandageSet: map[lattice.Coord]bool{},
	}
}

// StepResult describes one deformation round.
type StepResult struct {
	Code       *code.Code
	DistanceX  int
	DistanceZ  int
	NumRemoved int                  // total removed physical sites in the spec
	Layers     map[lattice.Side]int // layers added this step
	Defects    []lattice.Coord      // defects processed this step
	Spec       *Spec                // post-step spec (callers must not mutate)
	Enlarged   bool                 // whether any growth happened this step
}

// Step processes a defect report: removal (Algorithm 1) then adaptive
// enlargement (Algorithm 2). It is idempotent for repeated defects. The
// entire update is representable within a single QEC cycle (the paper's
// deformation property); Step returns the code to measure from now on.
func (u *Unit) Step(defects []lattice.Coord) (*StepResult, error) {
	var fresh []lattice.Coord
	for _, q := range defects {
		if !u.defectSet[q] {
			u.defectSet[q] = true
			fresh = append(fresh, q)
		}
	}
	if err := ApplyDefects(u.spec, fresh, u.policy); err != nil {
		return nil, fmt.Errorf("deform: removal failed: %w", err)
	}
	defective := func(q lattice.Coord) bool { return u.defectSet[q] }
	res, err := Enlarge(u.spec, u.targetX, u.targetZ, defective, u.policy, u.budget)
	if err != nil {
		return nil, fmt.Errorf("deform: enlargement failed: %w", err)
	}
	enlarged := false
	for _, n := range res.LayersAdded {
		if n > 0 {
			enlarged = true
		}
	}
	u.applyBandages(res.Code)
	dx, dz := res.ReachedX, res.ReachedZ
	if len(u.bandaged) > 0 {
		// Bandages reshape the check structure, so the enlargement
		// engine's distance estimate no longer applies verbatim.
		dx, dz = res.Code.DistanceX(), res.Code.DistanceZ()
	}
	return &StepResult{
		Code:       res.Code,
		DistanceX:  dx,
		DistanceZ:  dz,
		NumRemoved: u.spec.NumRemoved(),
		Layers:     res.LayersAdded,
		Defects:    fresh,
		Spec:       u.spec,
		Enlarged:   enlarged,
	}, nil
}

// Spec exposes the unit's current spec (callers must not mutate it).
func (u *Unit) Spec() *Spec { return u.spec }

// Code builds the unit's current code: the spec's deformed patch with the
// bandage set applied on top. Callers that previously rebuilt via
// Spec().Build() must use Code so bandages survive the rebuild.
func (u *Unit) Code() (*code.Code, error) {
	c, err := u.spec.Build()
	if err != nil {
		return nil, err
	}
	u.applyBandages(c)
	return c, nil
}

// applyBandages applies the bandage set to a freshly built code in sorted
// site order. Sites outside the current footprint, or whose neighbourhood
// rejects the construction (BandageQubit's checked preconditions, e.g. an
// overlapping bandage), are skipped — the result is a deterministic
// function of (spec, bandageSet). The sites that took effect are recorded
// in u.bandaged.
func (u *Unit) applyBandages(c *code.Code) {
	u.bandaged = u.bandaged[:0]
	if len(u.bandageSet) == 0 {
		return
	}
	sites := make([]lattice.Coord, 0, len(u.bandageSet))
	for q := range u.bandageSet {
		sites = append(sites, q)
	}
	lattice.SortCoords(sites)
	for _, q := range sites {
		if !c.HasData(q) {
			continue
		}
		if _, err := BandageQubit(c, q); err == nil {
			u.bandaged = append(u.bandaged, q)
		}
	}
}

// Bandage executes the Bandage_STB instruction: the listed sites join the
// persistent bandage set and the code is rebuilt with super-stabilizers
// over them. It is idempotent for repeated sites; Defects in the result
// lists the fresh ones.
func (u *Unit) Bandage(sites []lattice.Coord) (*StepResult, error) {
	var fresh []lattice.Coord
	for _, q := range sites {
		if !u.bandageSet[q] {
			u.bandageSet[q] = true
			fresh = append(fresh, q)
		}
	}
	c, err := u.Code()
	if err != nil {
		return nil, fmt.Errorf("deform: bandage rebuild failed: %w", err)
	}
	return &StepResult{
		Code:       c,
		DistanceX:  c.DistanceX(),
		DistanceZ:  c.DistanceZ(),
		NumRemoved: u.spec.NumRemoved(),
		Defects:    fresh,
		Spec:       u.spec,
	}, nil
}

// Unbandage reverses Bandage for the listed sites (the undo path of the
// super-stabilizer tier): they leave the bandage set and the code is
// rebuilt, re-incorporating the healthy qubits. Sites never bandaged are
// ignored.
func (u *Unit) Unbandage(sites []lattice.Coord) (*StepResult, error) {
	var fresh []lattice.Coord
	for _, q := range sites {
		if u.bandageSet[q] {
			delete(u.bandageSet, q)
			fresh = append(fresh, q)
		}
	}
	c, err := u.Code()
	if err != nil {
		return nil, fmt.Errorf("deform: unbandage rebuild failed: %w", err)
	}
	return &StepResult{
		Code:       c,
		DistanceX:  c.DistanceX(),
		DistanceZ:  c.DistanceZ(),
		NumRemoved: u.spec.NumRemoved(),
		Defects:    fresh,
		Spec:       u.spec,
	}, nil
}

// Bandaged returns the sites whose bandages took effect at the last
// rebuild, sorted — the super-stabilizer membership report the runtime
// (core.System) exposes to detection and decoding.
func (u *Unit) Bandaged() []lattice.Coord {
	out := append([]lattice.Coord(nil), u.bandaged...)
	lattice.SortCoords(out)
	return out
}

// Defects returns the accumulated defect coordinates.
func (u *Unit) Defects() []lattice.Coord {
	out := make([]lattice.Coord, 0, len(u.defectSet))
	for q := range u.defectSet {
		out = append(out, q)
	}
	lattice.SortCoords(out)
	return out
}

// Instruction identifies one entry of the extended instruction set
// (Table I of the paper).
type Instruction string

// The Surf-Deformer instruction set. Lattice-surgery primitives (grow,
// merge, split) are the baseline shared by all frameworks.
const (
	InstrDataQRM     Instruction = "DataQ_RM"
	InstrSyndromeQRM Instruction = "SyndromeQ_RM"
	InstrPatchQRM    Instruction = "PatchQ_RM"
	InstrPatchQADD   Instruction = "PatchQ_ADD"
	// InstrBandageSTB is the bandage super-stabilizer instruction of
	// arXiv 2404.18644 (Unit.Bandage/Unbandage): isolate a defective
	// qubit in place by gauge-merging its adjacent checks, without
	// deforming the patch boundary. It extends Table I beyond the source
	// paper's set, so InstructionSets (the paper's table) omits it.
	InstrBandageSTB Instruction = "Bandage_STB"
)

// InstructionSet lists the extended instructions a framework supports and
// the operations they enable — the content of the paper's Table I.
type InstructionSet struct {
	Method     string
	Extended   []Instruction
	Operations []string
}

// InstructionSets returns Table I: the instruction sets of lattice surgery,
// Q3DE, ASC-S and Surf-Deformer.
func InstructionSets() []InstructionSet {
	return []InstructionSet{
		{
			Method:     "Lattice Surgery",
			Extended:   nil,
			Operations: []string{"Logical operations"},
		},
		{
			Method:     "Q3DE",
			Extended:   nil,
			Operations: []string{"Logical operations", "Fixed enlargement"},
		},
		{
			Method:     "ASC-S",
			Extended:   []Instruction{InstrDataQRM},
			Operations: []string{"Logical operations", "Fixed qubit removal"},
		},
		{
			Method:     "Surf-Deformer",
			Extended:   []Instruction{InstrDataQRM, InstrSyndromeQRM, InstrPatchQRM, InstrPatchQADD},
			Operations: []string{"Logical operations", "Adaptive qubit removal", "Adaptive enlargement"},
		},
	}
}
