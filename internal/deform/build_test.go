package deform

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

func co(r, c int) lattice.Coord { return lattice.Coord{Row: r, Col: c} }

// mustBuild compiles the spec, validates the result, checks that the graph
// distance agrees with the exact exponential search (when feasible) and that
// every deterministic parity check is booked (center deficit zero).
func mustBuild(t *testing.T, s *Spec) *code.Code {
	t.Helper()
	c, err := s.Build()
	if err != nil {
		t.Fatalf("Build(%v): %v", s, err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("built code invalid: %v", err)
	}
	if def, err := c.CenterDeficit(); err != nil {
		t.Fatalf("CenterDeficit: %v", err)
	} else if def != 0 {
		t.Errorf("center deficit %d, want 0 (missing super-stabilizers)", def)
	}
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		exact, err := c.ExactDistance(typ)
		if err != nil {
			continue // too large for the exponential check; graph result stands
		}
		var graph int
		if typ == lattice.XCheck {
			graph = c.DistanceX()
		} else {
			graph = c.DistanceZ()
		}
		if graph != exact {
			t.Errorf("%v distance: graph %d vs exact %d", typ, graph, exact)
		}
	}
	return c
}

func TestBuildFreshMatchesFromPatch(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		s := NewSquareSpec(co(0, 0), d)
		c := mustBuild(t, s)
		ref := code.FromPatch(lattice.NewPatch(co(0, 0), d))
		if c.NumData() != ref.NumData() || c.NumSyndrome() != ref.NumSyndrome() {
			t.Errorf("d=%d: qubit counts %d/%d, want %d/%d", d,
				c.NumData(), c.NumSyndrome(), ref.NumData(), ref.NumSyndrome())
		}
		if len(c.Stabs()) != len(ref.Stabs()) || len(c.Gauges()) != 0 {
			t.Errorf("d=%d: %d stabs %d gauges, want %d/0", d, len(c.Stabs()), len(c.Gauges()), len(ref.Stabs()))
		}
		if c.DistanceX() != d || c.DistanceZ() != d {
			t.Errorf("d=%d: distances %d/%d", d, c.DistanceX(), c.DistanceZ())
		}
	}
}

func TestDataQRMInterior(t *testing.T) {
	// Fig. 6a: removing the centre of a d=3 patch yields the [[8,1,1]]
	// super-stabilizer code with distance 2.
	s := NewSquareSpec(co(0, 0), 3)
	if err := s.DataQRM(co(3, 3)); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, s)
	n, k, l, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || k != 1 || l != 1 {
		t.Errorf("[[%d,%d,%d]], want [[8,1,1]]", n, k, l)
	}
	if c.Distance() != 2 {
		t.Errorf("distance %d, want 2", c.Distance())
	}
	// Two super-stabilizers (merged X and merged Z) must be present.
	supers := 0
	for _, st := range c.Stabs() {
		if st.IsSuper() {
			supers++
		}
	}
	if supers != 2 {
		t.Errorf("%d super-stabilizers, want 2", supers)
	}
	if len(c.Gauges()) != 4 {
		t.Errorf("%d gauges, want 4 broken checks", len(c.Gauges()))
	}
}

func TestDataQRMRejections(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 3)
	if err := s.DataQRM(co(2, 2)); err == nil {
		t.Error("DataQRM must reject syndrome sites")
	}
	if err := s.DataQRM(co(99, 99)); err == nil {
		t.Error("DataQRM must reject out-of-patch sites")
	}
	if err := s.DataQRM(co(3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.DataQRM(co(3, 3)); err == nil {
		t.Error("DataQRM must reject double removal")
	}
}

func TestSyndromeQRMInteriorPreservesOppositeDistance(t *testing.T) {
	// Fig. 6b / fig. 7a: removing the syndrome qubit of a fully interior
	// X check on a d=5 patch keeps Z-distance 5 (the check survives as a
	// product of direct measurements) while the merged Z octagon drops the
	// X-distance to 3.
	s := NewSquareSpec(co(0, 0), 5)
	center := co(4, 6) // interior X check with all four Z neighbours present
	if err := s.SyndromeQRM(center); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, s)
	if got := c.DistanceZ(); got != 5 {
		t.Errorf("DistanceZ = %d, want 5 (SyndromeQRM preserves the X check)", got)
	}
	if got := c.DistanceX(); got != 3 {
		t.Errorf("DistanceX = %d, want 3 (merged Z octagon)", got)
	}
	// The X check must survive as a super-stabilizer over 4 direct gauges,
	// and the Z octagon as a super-stabilizer over the 4 demoted neighbours.
	var xSuper, zSuper int
	for _, st := range c.Stabs() {
		if !st.IsSuper() {
			continue
		}
		typ, _ := st.Op.CSSType()
		if typ == lattice.XCheck {
			xSuper++
			if len(st.MemberIDs) != 4 {
				t.Errorf("X super has %d members, want 4 direct measurements", len(st.MemberIDs))
			}
		} else {
			zSuper++
			if st.Op.Weight() != 8 {
				t.Errorf("Z octagon weight %d, want 8", st.Op.Weight())
			}
		}
	}
	if xSuper != 1 || zSuper != 1 {
		t.Errorf("supers X=%d Z=%d, want 1/1", xSuper, zSuper)
	}
	// Syndrome qubit count drops by exactly one.
	if got, want := c.NumSyndrome(), 24-1; got != want {
		t.Errorf("syndrome count %d, want %d", got, want)
	}
}

func TestSyndromeQRMNearBoundary(t *testing.T) {
	// A near-boundary syndrome removal (only 3 opposite-type neighbours)
	// must still produce a valid k=1 code.
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.SyndromeQRM(co(2, 4)); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, s)
	if got := c.DistanceZ(); got != 5 {
		t.Errorf("DistanceZ = %d, want 5", got)
	}
	if got := c.DistanceX(); got >= 5 {
		t.Errorf("DistanceX = %d, want < 5", got)
	}
}

func TestASCStyleSyndromeRemovalLosesMore(t *testing.T) {
	// Fig. 7a comparison: ASC-S removes the four adjacent data qubits via
	// DataQRM instead of using SyndromeQRM; both distances collapse to 3,
	// whereas SyndromeQRM preserves Z-distance 5.
	ascSpec := NewSquareSpec(co(0, 0), 5)
	rect := ascSpec.Rect()
	ch, ok := rect.CheckAt(co(4, 6))
	if !ok {
		t.Fatal("no check at (4,6)")
	}
	for _, q := range ch.Support {
		if err := ascSpec.DataQRM(q); err != nil {
			t.Fatal(err)
		}
	}
	asc := mustBuild(t, ascSpec)

	sdSpec := NewSquareSpec(co(0, 0), 5)
	if err := sdSpec.SyndromeQRM(co(4, 6)); err != nil {
		t.Fatal(err)
	}
	sd := mustBuild(t, sdSpec)

	if asc.DistanceZ() >= sd.DistanceZ() {
		t.Errorf("ASC Z-distance %d should be below Surf-Deformer's %d", asc.DistanceZ(), sd.DistanceZ())
	}
	if asc.DistanceZ() != 3 {
		t.Errorf("ASC Z-distance %d, want 3 (fig. 7a)", asc.DistanceZ())
	}
}

func TestPatchQRMCornerBalancing(t *testing.T) {
	// Fig. 8: a defective corner data qubit can be cut by freezing either
	// X or Z on it; the two choices trade X-distance against Z-distance.
	corner := co(1, 9) // top-right corner of a d=5 patch
	var dists [2][2]int
	for i, fix := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		s := NewSquareSpec(co(0, 0), 5)
		if err := s.PatchQRM(corner, fix); err != nil {
			t.Fatal(err)
		}
		c := mustBuild(t, s)
		dists[i][0] = c.DistanceX()
		dists[i][1] = c.DistanceZ()
	}
	// Both must remain valid codes with distance >= 3, and the choices must
	// not be identical in their (X, Z) profile — that asymmetry is what the
	// balancing function exploits.
	for i := range dists {
		if dists[i][0] < 3 || dists[i][1] < 3 {
			t.Errorf("fix option %d gives distances %v; cut too destructive", i, dists[i])
		}
	}
	if dists[0] == dists[1] {
		t.Errorf("both fix choices give %v; expected an X/Z trade-off", dists[0])
	}
}

func TestPatchQRMInteriorRejected(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.PatchQRM(co(5, 5), lattice.XCheck); err == nil {
		t.Error("PatchQRM must reject interior data sites")
	}
}

func TestPatchQADDGrowth(t *testing.T) {
	// Growing a d=3 patch right by two layers yields a 5x3 rectangle:
	// Z-distance 5, X-distance 3.
	s := NewSquareSpec(co(0, 0), 3)
	if err := s.PatchQADD(lattice.Right, 2); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, s)
	if got := c.DistanceZ(); got != 5 {
		t.Errorf("DistanceZ = %d, want 5", got)
	}
	if got := c.DistanceX(); got != 3 {
		t.Errorf("DistanceX = %d, want 3", got)
	}
	if c.NumData() != 15 {
		t.Errorf("data count %d, want 15", c.NumData())
	}
}

func TestPatchQADDLeftShiftsOrigin(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 3)
	if err := s.PatchQADD(lattice.Left, 1); err != nil {
		t.Fatal(err)
	}
	if s.Origin != co(0, -2) || s.DX != 4 {
		t.Fatalf("spec after left growth: %v", s)
	}
	c := mustBuild(t, s)
	if got := c.DistanceZ(); got != 4 {
		t.Errorf("DistanceZ = %d, want 4", got)
	}
}

func TestGrowthOverNotchConvertsToInterior(t *testing.T) {
	// Fig. 9: remove a boundary qubit (cut), then grow past it. The removed
	// site becomes interior and is handled by super-stabilizers; the code
	// stays valid and the distance recovers with enough layers.
	s := NewSquareSpec(co(0, 0), 5)
	edge := co(5, 9) // right-edge data qubit (non-corner)
	// Freezing Z on the defect breaks the adjacent X checks and advances
	// the Z boundary inward, costing Z-distance.
	if err := s.PatchQRM(edge, lattice.ZCheck); err != nil {
		t.Fatal(err)
	}
	before := mustBuild(t, s)
	dzBefore := before.DistanceZ()
	if dzBefore >= 5 {
		t.Fatalf("cut did not reduce Z-distance: %d", dzBefore)
	}
	if err := s.PatchQADD(lattice.Right, 2); err != nil {
		t.Fatal(err)
	}
	if len(s.Fixes) != 0 {
		t.Errorf("interiorized fix should have been dropped, have %v", s.Fixes)
	}
	after := mustBuild(t, s)
	if got := after.DistanceZ(); got < 5 {
		t.Errorf("DistanceZ = %d after 2-layer growth, want >= 5", got)
	}
	// The interiorized hole still pinches the vertical direction by one
	// unit (fig. 9d: full restoration would also need vertical growth).
	if got := after.DistanceX(); got < 4 {
		t.Errorf("DistanceX = %d, want >= 4", got)
	}
	if err := s.PatchQADD(lattice.Bottom, 1); err != nil {
		t.Fatal(err)
	}
	grown := mustBuild(t, s)
	if got := grown.DistanceX(); got < 5 {
		t.Errorf("DistanceX = %d after vertical growth, want >= 5", got)
	}
}

func TestBuildDefectClusterBreaksPatch(t *testing.T) {
	// Removing an entire horizontal row of data qubits severs the patch:
	// Build must report the broken topology rather than return k != 1.
	s := NewSquareSpec(co(0, 0), 3)
	for _, q := range []lattice.Coord{co(3, 1), co(3, 3), co(3, 5)} {
		if err := s.DataQRM(q); err != nil && !s.RemovedData[q] {
			// boundary qubits: record removal directly for this stress test
			s.RemovedData[q] = true
		}
	}
	if _, err := s.Build(); err == nil {
		t.Error("Build should fail when defects sever the patch")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.DataQRM(co(5, 5)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.DataQRM(co(3, 5)); err != nil {
		t.Fatal(err)
	}
	if s.RemovedData[co(3, 5)] {
		t.Error("clone mutation leaked into original")
	}
	if err := c.PatchQADD(lattice.Top, 1); err != nil {
		t.Fatal(err)
	}
	if s.DZ != 5 || s.Origin != co(0, 0) {
		t.Error("clone growth leaked into original")
	}
}

func TestMultipleInteriorRemovals(t *testing.T) {
	// A diagonal pair of removed data qubits on d=5 must still build and
	// agree with the exact distance.
	s := NewSquareSpec(co(0, 0), 5)
	for _, q := range []lattice.Coord{co(3, 3), co(5, 5)} {
		if err := s.DataQRM(q); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, s)
	if c.Distance() < 2 {
		t.Errorf("distance %d collapsed", c.Distance())
	}
	n, k, l, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if n != 23 || k != 1 {
		t.Errorf("[[%d,%d,%d]], want n=23 k=1", n, k, l)
	}
}

func TestAdjacentClusterRemoval(t *testing.T) {
	// Two data qubits sharing checks (an adjacent pair) form one merged
	// super-stabilizer region.
	s := NewSquareSpec(co(0, 0), 5)
	for _, q := range []lattice.Coord{co(5, 3), co(5, 5)} {
		if err := s.DataQRM(q); err != nil {
			t.Fatal(err)
		}
	}
	c := mustBuild(t, s)
	_, k, _, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
}

func TestMixedDataAndSyndromeRemoval(t *testing.T) {
	// A defective syndrome qubit adjacent to a defective data qubit — the
	// hardest local pattern — must still build a valid code.
	s := NewSquareSpec(co(0, 0), 5)
	if err := s.SyndromeQRM(co(4, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.DataQRM(co(3, 5)); err != nil {
		t.Fatal(err)
	}
	c := mustBuild(t, s)
	_, k, _, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
}
