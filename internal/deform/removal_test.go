package deform

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
)

func TestApplyDefectsClassification(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	defects := []lattice.Coord{
		co(5, 5),   // interior data
		co(4, 6),   // interior syndrome (X check)
		co(1, 5),   // top-edge data
		co(99, 99), // outside: ignored
	}
	if err := ApplyDefects(s, defects, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if !s.RemovedData[co(5, 5)] || !s.RemovedSyndrome[co(4, 6)] || !s.RemovedData[co(1, 5)] {
		t.Errorf("spec after defects: %v", s)
	}
	if _, fixed := s.Fixes[co(1, 5)]; !fixed {
		t.Error("boundary defect should carry a fix choice")
	}
	if _, fixed := s.Fixes[co(5, 5)]; fixed {
		t.Error("interior defect must not carry a fix choice")
	}
	c := mustBuild(t, s)
	if c.Distance() < 2 {
		t.Errorf("distance collapsed to %d", c.Distance())
	}
	// Idempotence: reapplying the same defects must not error or change.
	before := s.NumRemoved()
	if err := ApplyDefects(s, defects, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	if s.NumRemoved() != before {
		t.Error("reapplying defects changed the spec")
	}
}

func TestApplyDefectsASCRemovesNeighbours(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s, []lattice.Coord{co(4, 6)}, PolicyASC); err != nil {
		t.Fatal(err)
	}
	// ASC-S disables the four data qubits of the defective syndrome's check.
	if len(s.RemovedData) != 4 {
		t.Errorf("ASC removed %d data qubits, want 4", len(s.RemovedData))
	}
	c := mustBuild(t, s)
	// Both distances collapse to 3 (fig. 7a).
	if c.DistanceZ() != 3 || c.DistanceX() != 3 {
		t.Errorf("ASC distances %d/%d, want 3/3", c.DistanceX(), c.DistanceZ())
	}
}

func TestBalancingBeatsASCOnCorner(t *testing.T) {
	// Fig. 8: balanced boundary cuts keep min(dX, dZ) at least as high as
	// ASC's fixed-Z choice, on every corner of the patch.
	corners := []lattice.Coord{co(1, 1), co(1, 9), co(9, 1), co(9, 9)}
	for _, corner := range corners {
		bal := NewSquareSpec(co(0, 0), 5)
		if err := ApplyDefects(bal, []lattice.Coord{corner}, PolicySurfDeformer); err != nil {
			t.Fatal(err)
		}
		balCode := mustBuild(t, bal)
		asc := NewSquareSpec(co(0, 0), 5)
		if err := ApplyDefects(asc, []lattice.Coord{corner}, PolicyASC); err != nil {
			t.Fatal(err)
		}
		ascCode := mustBuild(t, asc)
		if balCode.Distance() < ascCode.Distance() {
			t.Errorf("corner %v: balanced distance %d < ASC distance %d",
				corner, balCode.Distance(), ascCode.Distance())
		}
	}
}

func TestRandomDefectPatternsStayValid(t *testing.T) {
	// Fuzz Algorithm 1 + Build over random sparse defect patterns; every
	// result must validate, keep k=1 and agree with the exact distance.
	rng := rand.New(rand.NewSource(7))
	rect := NewSquareSpec(co(0, 0), 5).Rect()
	for trial := 0; trial < 25; trial++ {
		s := NewSquareSpec(co(0, 0), 5)
		var defects []lattice.Coord
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				defects = append(defects, rect.Data[rng.Intn(len(rect.Data))])
			} else {
				defects = append(defects, rect.Checks[rng.Intn(len(rect.Checks))].Center)
			}
		}
		if err := ApplyDefects(s, defects, PolicySurfDeformer); err != nil {
			t.Fatalf("trial %d defects %v: %v", trial, defects, err)
		}
		c, err := s.Build()
		if err != nil {
			// Dense patterns can legitimately sever a d=5 patch; only a
			// k!=1 explanation is acceptable.
			continue
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d defects %v: invalid code: %v", trial, defects, err)
		}
		for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
			exact, err := c.ExactDistance(typ)
			if err != nil {
				continue
			}
			graph := c.DistanceZ()
			if typ == lattice.XCheck {
				graph = c.DistanceX()
			}
			if graph != exact {
				t.Fatalf("trial %d defects %v type %v: graph %d vs exact %d",
					trial, defects, typ, graph, exact)
			}
		}
	}
}

func TestEnlargeRestoresDistance(t *testing.T) {
	// Remove the centre of a d=5 patch (distance drops), then enlarge with
	// budget: the distance must return to 5 in both bases.
	s := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s, []lattice.Coord{co(5, 5)}, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	res, err := Enlarge(s, 5, 5, nil, PolicySurfDeformer, UniformBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedX < 5 || res.ReachedZ < 5 {
		t.Errorf("reached distances %d/%d, want >= 5/5", res.ReachedX, res.ReachedZ)
	}
	total := 0
	for _, n := range res.LayersAdded {
		total += n
	}
	if total == 0 {
		t.Error("no layers added although distance was short")
	}
	if total > 2 {
		t.Errorf("added %d layers for a single interior defect, expected <= 2 (adaptive, not fixed doubling)", total)
	}
	if err := res.Code.Validate(); err != nil {
		t.Errorf("enlarged code invalid: %v", err)
	}
}

func TestEnlargeRespectsBudget(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s, []lattice.Coord{co(5, 5)}, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	res, err := Enlarge(s, 5, 5, nil, PolicySurfDeformer, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for side, n := range res.LayersAdded {
		if n != 0 {
			t.Errorf("added %d layers on %v with zero budget", n, side)
		}
	}
	if res.ReachedX >= 5 && res.ReachedZ >= 5 {
		t.Error("distance should remain degraded without budget")
	}
}

func TestEnlargeAroundDefectiveScaleLayer(t *testing.T) {
	// Fig. 9c/d: a defect waiting inside the prospective scale layer. The
	// enlargement must still restore the distance, spending extra layers.
	s := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s, []lattice.Coord{co(5, 9)}, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	// The first new column on the right contains a defect at (5, 11).
	defective := func(q lattice.Coord) bool { return q == co(5, 11) }
	res, err := Enlarge(s, 5, 5, defective, PolicySurfDeformer, UniformBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedZ < 5 {
		t.Errorf("Z distance %d after enlargement, want >= 5", res.ReachedZ)
	}
	if err := res.Code.Validate(); err != nil {
		t.Errorf("enlarged code invalid: %v", err)
	}
}

func TestUnitStepAccumulatesDefects(t *testing.T) {
	u := NewUnit(co(0, 0), 5, 5, PolicySurfDeformer, UniformBudget(2))
	r1, err := u.Step([]lattice.Coord{co(5, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.DistanceX < 5 || r1.DistanceZ < 5 {
		t.Errorf("step 1 distances %d/%d, want >= 5", r1.DistanceX, r1.DistanceZ)
	}
	r2, err := u.Step([]lattice.Coord{co(5, 5), co(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Defects) != 1 {
		t.Errorf("step 2 processed %d fresh defects, want 1", len(r2.Defects))
	}
	if got := len(u.Defects()); got != 2 {
		t.Errorf("accumulated defects %d, want 2", got)
	}
	if err := r2.Code.Validate(); err != nil {
		t.Errorf("unit code invalid: %v", err)
	}
}

func TestInstructionSetsTable1(t *testing.T) {
	sets := InstructionSets()
	if len(sets) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(sets))
	}
	byName := map[string]InstructionSet{}
	for _, s := range sets {
		byName[s.Method] = s
	}
	if len(byName["Lattice Surgery"].Extended) != 0 {
		t.Error("lattice surgery extends nothing")
	}
	if len(byName["ASC-S"].Extended) != 1 || byName["ASC-S"].Extended[0] != InstrDataQRM {
		t.Error("ASC-S extends exactly DataQ_RM")
	}
	if len(byName["Surf-Deformer"].Extended) != 4 {
		t.Error("Surf-Deformer extends all four instructions")
	}
}
