package deform

import (
	"fmt"

	"surfdeformer/internal/code"
	"surfdeformer/internal/gauge"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// Bandage super-stabilizers (arXiv 2404.18644): instead of cutting a
// defective data qubit's whole region out of the patch, the checks
// adjacent to the qubit are demoted to gauge operators, the qubit is
// stripped from them, and the merged products are promoted to
// super-stabilizers — a "bandage" over the hole that preserves the patch
// boundary and the logical operators. The construction here is a checked
// composition of the package gauge atomic ops (S2G to demote, G2G to
// strip, promotion guarded by the commutation preconditions), so the
// encoded logical state is preserved by the same theorems that back the
// rest of the calculus.

// demotedCheck records one stabilizer demoted by a bandage: the original
// check operator and ancilla (for Undo), and the ID of the gauge entry
// that carries its q-stripped remnant in the bandaged code.
type demotedCheck struct {
	op      pauli.Op
	ancilla lattice.Coord
	gaugeID int
}

// Bandage records one applied bandage so it can be undone. IDs refer to
// the code the bandage was applied to; undo bandages in reverse
// application order when several overlap.
type Bandage struct {
	// Site is the defective data qubit the bandage isolates.
	Site lattice.Coord
	// SuperIDs are the promoted super-stabilizers (zero, one or two: a
	// merged product is only promoted where it commutes with the rest of
	// the measured set, which excludes boundary corners).
	SuperIDs []int

	demoted        []demotedCheck
	origLX, origLZ pauli.Op
}

// BandageQubit applies the bandage construction to defective data qubit q:
//
//  1. reroute the logical representatives off q (multiplying by an
//     adjacent stabilizer of the same CSS type);
//  2. S2G with X(q) and Z(q): every check on q is demoted to a gauge, and
//     the single-qubit operators enter as direct gauges;
//  3. G2G each demoted gauge with the matching single-qubit operator,
//     stripping q from it;
//  4. promote the merged product of each type's stripped gauges to a
//     super-stabilizer where the product is a valid stabilizer (non-
//     identity and commuting with the whole measured set);
//  5. retire the direct gauges and remove q from the code.
//
// On any failed precondition (a logical that cannot be rerouted, an
// adjacent super-stabilizer from an earlier bandage, a broken invariant)
// the code is left untouched and an error returned. On success c is the
// bandaged code, Validate-clean, and the returned Bandage can Undo it.
func BandageQubit(c *code.Code, q lattice.Coord) (*Bandage, error) {
	if !c.HasData(q) {
		return nil, fmt.Errorf("deform: bandage site %v is not an active data qubit", q)
	}
	work := c.Clone()
	b := &Bandage{Site: q, origLX: c.LogicalX(), origLZ: c.LogicalZ()}

	// (1) Logical representatives must avoid q before S2G will accept the
	// single-qubit operators. Multiplying by a same-type stabilizer on q
	// keeps the representative in the same logical class.
	if err := rerouteLogical(work, q, lattice.XCheck); err != nil {
		return nil, err
	}
	if err := rerouteLogical(work, q, lattice.ZCheck); err != nil {
		return nil, err
	}

	// (2) Demote: X(q) anti-commutes with exactly the Z checks on q,
	// Z(q) with the X checks. S2G rejects the script if any of them is a
	// super-stabilizer (an overlapping earlier bandage) — the caller
	// skips such sites deterministically.
	demZ, xgid, err := gauge.S2G(work, pauli.X(q), q, true)
	if err != nil {
		return nil, fmt.Errorf("deform: bandage %v: %w", q, err)
	}
	demX, zgid, err := gauge.S2G(work, pauli.Z(q), q, true)
	if err != nil {
		return nil, fmt.Errorf("deform: bandage %v: %w", q, err)
	}

	// (3) Strip q from every demoted gauge, recording the original check
	// for Undo first.
	strip := func(ids []int, single pauli.Op) error {
		for _, id := range ids {
			g, ok := work.GaugeByID(id)
			if !ok {
				return fmt.Errorf("deform: bandage %v: lost demoted gauge %d", q, id)
			}
			b.demoted = append(b.demoted, demotedCheck{op: g.Op, ancilla: g.Ancilla, gaugeID: id})
			if err := gauge.G2G(work, id, single); err != nil {
				return fmt.Errorf("deform: bandage %v: %w", q, err)
			}
		}
		return nil
	}
	if err := strip(demZ, pauli.Z(q)); err != nil {
		return nil, err
	}
	if err := strip(demX, pauli.X(q)); err != nil {
		return nil, err
	}

	// (4) Promote each type's merged product where it is a valid
	// stabilizer. At a boundary the stripped set of one type can be a
	// single gauge that still anti-commutes with the other type's
	// stripped gauges — promoting it would break the group, so it stays
	// a pure gauge degree of freedom (the paper's corner case).
	promote := func(ids []int) {
		prod := pauli.Op{}
		for _, id := range ids {
			g, _ := work.GaugeByID(id)
			prod = pauli.Mul(prod, g.Op)
		}
		if prod.IsIdentity() {
			return
		}
		for _, g := range work.Gauges() {
			if !prod.Commutes(g.Op) {
				return
			}
		}
		for _, s := range work.Stabs() {
			if !prod.Commutes(s.Op) {
				return
			}
		}
		b.SuperIDs = append(b.SuperIDs, work.AddSuperStab(prod, ids))
	}
	promote(demZ)
	promote(demX)

	// (5) The direct gauges have served their purpose in the calculus;
	// with them gone nothing acts on q and the qubit leaves the code.
	work.RemoveGauge(xgid)
	work.RemoveGauge(zgid)
	if err := work.RemoveDataQubit(q); err != nil {
		return nil, fmt.Errorf("deform: bandage %v: %w", q, err)
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("deform: bandage %v left an invalid code: %w", q, err)
	}
	*c = *work
	return b, nil
}

// rerouteLogical multiplies the logical representative of the given CSS
// type by an adjacent same-type stabilizer so it no longer acts on q.
func rerouteLogical(c *code.Code, q lattice.Coord, typ lattice.CheckType) error {
	var logical pauli.Op
	if typ == lattice.XCheck {
		logical = c.LogicalX()
	} else {
		logical = c.LogicalZ()
	}
	if !logical.ActsOn(q) {
		return nil
	}
	best, found := code.Stab{}, false
	for _, s := range c.StabsOn(q, typ) {
		if s.IsSuper() {
			continue
		}
		if !found || s.ID < best.ID {
			best, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("deform: bandage %v: no %v stabilizer to reroute the logical", q, typ)
	}
	moved := pauli.Mul(logical, best.Op)
	if moved.ActsOn(q) {
		return fmt.Errorf("deform: bandage %v: rerouted logical still acts on the site", q)
	}
	if typ == lattice.XCheck {
		c.SetLogicalX(moved)
	} else {
		c.SetLogicalZ(moved)
	}
	return nil
}

// Undo reverses the bandage on c: the super-stabilizers are withdrawn, the
// site rejoins the code, every demoted gauge is re-promoted to its
// original check, and the logical representatives are restored. Overlapping
// bandages must be undone in reverse application order. On error c is left
// untouched.
func (b *Bandage) Undo(c *code.Code) error {
	work := c.Clone()
	for _, id := range b.SuperIDs {
		if !work.RemoveStab(id) {
			return fmt.Errorf("deform: undo bandage %v: super-stabilizer %d missing", b.Site, id)
		}
	}
	if err := work.AddDataQubit(b.Site); err != nil {
		return fmt.Errorf("deform: undo bandage %v: %w", b.Site, err)
	}
	for _, d := range b.demoted {
		if !work.RemoveGauge(d.gaugeID) {
			return fmt.Errorf("deform: undo bandage %v: gauge %d missing", b.Site, d.gaugeID)
		}
		work.AddStab(d.op, d.ancilla)
	}
	work.SetLogicalX(b.origLX)
	work.SetLogicalZ(b.origLZ)
	if err := work.Validate(); err != nil {
		return fmt.Errorf("deform: undo bandage %v left an invalid code: %w", b.Site, err)
	}
	*c = *work
	return nil
}
