package deform

import (
	"fmt"

	"surfdeformer/internal/lattice"
)

// Dynamic defects are temporary (§I: effects persist for thousands of QEC
// rounds "before their effects go away"). When the defect detector reports
// a region healthy again, the deformation unit re-incorporates the
// recovered qubits and shrinks any enlargement that is no longer needed —
// freeing the communication channel the growth had borrowed from the Δd
// reserve (fig. 10a).

// Reincorporate returns recovered physical sites to the code: their
// removal records and boundary fixes are dropped. Sites that were never
// removed are ignored.
func (s *Spec) Reincorporate(sites []lattice.Coord) int {
	n := 0
	for _, q := range sites {
		if s.RemovedData[q] {
			delete(s.RemovedData, q)
			delete(s.Fixes, q)
			n++
		}
		if s.RemovedSyndrome[q] {
			delete(s.RemovedSyndrome, q)
			n++
		}
	}
	return n
}

// Shrink removes grown layers that are no longer needed: while the patch
// exceeds its original dimensions and the candidate boundary layer holds no
// removal records, the layer is given back. It returns the number of layers
// shed per side.
func (s *Spec) Shrink(origDX, origDZ int, origOrigin lattice.Coord) map[lattice.Side]int {
	shed := map[lattice.Side]int{}
	for {
		progress := false
		if s.DX > origDX && s.Origin.Col < origOrigin.Col && s.layerClear(lattice.Left) {
			s.Origin.Col += 2
			s.DX--
			shed[lattice.Left]++
			progress = true
		}
		if s.DX > origDX && s.Origin.Col+2*s.DX > origOrigin.Col+2*origDX && s.layerClear(lattice.Right) {
			s.DX--
			shed[lattice.Right]++
			progress = true
		}
		if s.DZ > origDZ && s.Origin.Row < origOrigin.Row && s.layerClear(lattice.Top) {
			s.Origin.Row += 2
			s.DZ--
			shed[lattice.Top]++
			progress = true
		}
		if s.DZ > origDZ && s.Origin.Row+2*s.DZ > origOrigin.Row+2*origDZ && s.layerClear(lattice.Bottom) {
			s.DZ--
			shed[lattice.Bottom]++
			progress = true
		}
		if !progress {
			return shed
		}
	}
}

// layerClear reports whether the outermost layer on the given side holds no
// removal records (so it can be shed without re-exposing a defect cut).
func (s *Spec) layerClear(side lattice.Side) bool {
	min, max := s.Bounds()
	inLayer := func(q lattice.Coord) bool {
		switch side {
		case lattice.Left:
			return q.Col <= min.Col+2
		case lattice.Right:
			return q.Col >= max.Col-2
		case lattice.Top:
			return q.Row <= min.Row+2
		default:
			return q.Row >= max.Row-2
		}
	}
	for q := range s.RemovedData {
		if inLayer(q) {
			return false
		}
	}
	for q := range s.RemovedSyndrome {
		if inLayer(q) {
			return false
		}
	}
	return true
}

// Recover processes a recovery report: the listed sites are healthy again.
// The unit re-incorporates them, sheds superfluous growth, and rebuilds.
func (u *Unit) Recover(recovered []lattice.Coord) (*StepResult, error) {
	for _, q := range recovered {
		delete(u.defectSet, q)
	}
	u.spec.Reincorporate(recovered)
	shed := u.spec.Shrink(u.origDX, u.origDZ, u.origOrigin)
	// Bandages are not recovery targets: boot-time fabrication bandages
	// are permanent, and dynamic ones are lifted explicitly via
	// Unbandage. Code re-applies the persistent set on the rebuilt spec.
	c, err := u.Code()
	if err != nil {
		return nil, fmt.Errorf("deform: recovery rebuild failed: %w", err)
	}
	return &StepResult{
		Code:       c,
		DistanceX:  c.DistanceX(),
		DistanceZ:  c.DistanceZ(),
		NumRemoved: u.spec.NumRemoved(),
		Layers:     negate(shed),
		Spec:       u.spec,
	}, nil
}

func negate(m map[lattice.Side]int) map[lattice.Side]int {
	out := map[lattice.Side]int{}
	for k, v := range m {
		out[k] = -v
	}
	return out
}
