package deform

import (
	"fmt"
	"sort"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
)

func freshCode(t testing.TB, d int) *code.Code {
	t.Helper()
	c, err := NewSpec(lattice.Coord{}, d, d).Build()
	if err != nil {
		t.Fatalf("build d=%d: %v", d, err)
	}
	return c
}

// interiorQubit finds a data qubit checked by two stabilizers of each type
// — the bulk case where the bandage promotes both merged super-stabilizers.
func interiorQubit(t testing.TB, c *code.Code) lattice.Coord {
	t.Helper()
	for _, q := range c.DataQubits() {
		if len(c.StabsOn(q, lattice.XCheck)) == 2 && len(c.StabsOn(q, lattice.ZCheck)) == 2 {
			return q
		}
	}
	t.Fatal("no interior qubit found")
	return lattice.Coord{}
}

// codeFingerprint canonicalizes a code for equality checks that must not
// depend on operator IDs: sorted operator strings per role plus the qubit
// sets and logicals.
func codeFingerprint(c *code.Code) string {
	return operatorFingerprint(c) + fmt.Sprintf(" lx=%v lz=%v", c.LogicalX(), c.LogicalZ())
}

// operatorFingerprint is codeFingerprint without the logical
// representatives, for comparing codes produced by separate Spec.Build
// calls: Build's representative choice is not canonical, and the runtime
// is invariant to it.
func operatorFingerprint(c *code.Code) string {
	var stabs, gauges []string
	for _, s := range c.Stabs() {
		stabs = append(stabs, fmt.Sprintf("%v super=%v", s.Op, s.IsSuper()))
	}
	for _, g := range c.Gauges() {
		gauges = append(gauges, fmt.Sprintf("%v direct=%v", g.Op, g.Direct))
	}
	sort.Strings(stabs)
	sort.Strings(gauges)
	return fmt.Sprintf("data=%v syn=%v stabs=%v gauges=%v",
		c.DataQubits(), c.SyndromeQubits(), stabs, gauges)
}

// TestBandageInterior pins the bulk construction: both merged products are
// promoted, the site leaves the code, the result is Validate-clean with
// k = 1, and the patch boundary (data-qubit bounding box) is untouched.
func TestBandageInterior(t *testing.T) {
	c := freshCode(t, 5)
	q := interiorQubit(t, c)
	min0, max0 := c.Bounds()
	nData := c.NumData()

	b, err := BandageQubit(c, q)
	if err != nil {
		t.Fatalf("bandage %v: %v", q, err)
	}
	if b.Site != q {
		t.Errorf("bandage site %v, want %v", b.Site, q)
	}
	if len(b.SuperIDs) != 2 {
		t.Fatalf("interior bandage promoted %d super-stabilizers, want 2", len(b.SuperIDs))
	}
	if c.HasData(q) {
		t.Error("bandaged qubit still active")
	}
	if c.NumData() != nData-1 {
		t.Errorf("data count %d, want %d", c.NumData(), nData-1)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("bandaged code invalid: %v", err)
	}
	min1, max1 := c.Bounds()
	if min0 != min1 || max0 != max1 {
		t.Errorf("bandage deformed the patch boundary: %v-%v -> %v-%v", min0, max0, min1, max1)
	}
	supers := 0
	for _, s := range c.Stabs() {
		if s.IsSuper() {
			supers++
			if len(s.MemberIDs) != 2 {
				t.Errorf("super %d has %d members, want 2", s.ID, len(s.MemberIDs))
			}
			if s.Op.ActsOn(q) {
				t.Errorf("super %d acts on the bandaged site", s.ID)
			}
		}
	}
	if supers != 2 {
		t.Errorf("%d super-stabilizers in code, want 2", supers)
	}
	if c.LogicalX().ActsOn(q) || c.LogicalZ().ActsOn(q) {
		t.Error("a logical still acts on the bandaged site")
	}
}

// TestBandageUndoRoundTrip pins the undo path: Undo restores exactly the
// original operator content, qubit sets and logicals.
func TestBandageUndoRoundTrip(t *testing.T) {
	c := freshCode(t, 5)
	orig := codeFingerprint(c)
	q := interiorQubit(t, c)
	b, err := BandageQubit(c, q)
	if err != nil {
		t.Fatalf("bandage: %v", err)
	}
	if err := b.Undo(c); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("undone code invalid: %v", err)
	}
	if got := codeFingerprint(c); got != orig {
		t.Errorf("undo did not restore the code:\n got %s\nwant %s", got, orig)
	}
}

// TestBandageFailureLeavesCodeUntouched pins the transactional contract:
// any rejected script (here: a site whose neighbourhood an earlier bandage
// already merged, and a non-data site) leaves the code byte-identical.
func TestBandageFailureLeavesCodeUntouched(t *testing.T) {
	c := freshCode(t, 5)
	q := interiorQubit(t, c)
	if _, err := BandageQubit(c, q); err != nil {
		t.Fatalf("bandage: %v", err)
	}
	before := codeFingerprint(c)

	if _, err := BandageQubit(c, q); err == nil {
		t.Error("bandaging an inactive site must fail")
	}
	// A neighbour inside the merged checks: S2G must refuse to demote the
	// super-stabilizer.
	var neighbour lattice.Coord
	found := false
	for _, s := range c.Stabs() {
		if s.IsSuper() {
			neighbour, found = s.Op.Support()[0], true
			break
		}
	}
	if !found {
		t.Fatal("no super-stabilizer after bandage")
	}
	if _, err := BandageQubit(c, neighbour); err == nil {
		t.Skip("adjacent bandage unexpectedly valid; no failure to pin")
	}
	if got := codeFingerprint(c); got != before {
		t.Errorf("failed bandage mutated the code:\n got %s\nwant %s", got, before)
	}
}

// TestBandageSweep bandages every data qubit of a patch one at a time
// (each on a fresh code): wherever the construction succeeds the result
// must be Validate-clean (k = 1 enforced there) with the site gone;
// wherever it fails the code must be untouched. On a d >= 5 patch the bulk
// must be bandageable.
func TestBandageSweep(t *testing.T) {
	pristine := freshCode(t, 5)
	ok := 0
	for _, q := range pristine.DataQubits() {
		c := pristine.Clone()
		before := codeFingerprint(c)
		b, err := BandageQubit(c, q)
		if err != nil {
			if got := codeFingerprint(c); got != before {
				t.Errorf("failed bandage %v mutated the code", q)
			}
			continue
		}
		ok++
		if err := c.Validate(); err != nil {
			t.Errorf("bandage %v: invalid code: %v", q, err)
		}
		if c.HasData(q) {
			t.Errorf("bandage %v: site still active", q)
		}
		if err := b.Undo(c); err != nil {
			t.Errorf("bandage %v: undo failed: %v", q, err)
		} else if got := codeFingerprint(c); got != before {
			t.Errorf("bandage %v: undo did not restore the code", q)
		}
	}
	if ok < 9 {
		t.Errorf("only %d of %d sites bandageable; want at least the 3x3 bulk", ok, len(pristine.DataQubits()))
	}
}

// TestBandageDistanceDegrades sanity-checks the physics: a bandaged bulk
// qubit costs at most one unit of each distance and never increases it.
func TestBandageDistanceDegrades(t *testing.T) {
	c := freshCode(t, 5)
	dx0, dz0 := c.DistanceX(), c.DistanceZ()
	q := interiorQubit(t, c)
	if _, err := BandageQubit(c, q); err != nil {
		t.Fatalf("bandage: %v", err)
	}
	dx1, dz1 := c.DistanceX(), c.DistanceZ()
	if dx1 > dx0 || dz1 > dz0 {
		t.Errorf("distance grew: (%d,%d) -> (%d,%d)", dx0, dz0, dx1, dz1)
	}
	if dx1 < dx0-1 || dz1 < dz0-1 {
		t.Errorf("bulk bandage cost more than one distance unit: (%d,%d) -> (%d,%d)", dx0, dz0, dx1, dz1)
	}
}

// TestUnitBandageLifecycle drives the instruction through the deformation
// unit: Bandage applies and persists across Step/Recover rebuilds,
// membership is reported, and Unbandage restores the pristine code.
func TestUnitBandageLifecycle(t *testing.T) {
	mkUnit := func() *Unit {
		return NewUnit(lattice.Coord{}, 5, 5, PolicySurfDeformer, UniformBudget(2))
	}
	u := mkUnit()
	pristine, err := u.Code()
	if err != nil {
		t.Fatalf("code: %v", err)
	}
	q := interiorQubit(t, pristine)

	res, err := u.Bandage([]lattice.Coord{q})
	if err != nil {
		t.Fatalf("bandage: %v", err)
	}
	if res.Code.HasData(q) {
		t.Error("bandaged site still active after Unit.Bandage")
	}
	if got := u.Bandaged(); len(got) != 1 || got[0] != q {
		t.Errorf("membership %v, want [%v]", got, q)
	}

	// The bandage must survive an unrelated removal step and a recovery.
	far := lattice.Coord{Row: 0, Col: 0}
	if far == q {
		t.Fatalf("test geometry: defect site collides with bandage site")
	}
	st, err := u.Step([]lattice.Coord{far})
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if st.Code.HasData(q) {
		t.Error("bandage lost across Step rebuild")
	}
	rc, err := u.Recover([]lattice.Coord{far})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rc.Code.HasData(q) {
		t.Error("bandage lost across Recover rebuild")
	}

	res, err = u.Unbandage([]lattice.Coord{q})
	if err != nil {
		t.Fatalf("unbandage: %v", err)
	}
	if !res.Code.HasData(q) {
		t.Error("site still missing after Unbandage")
	}
	if got := u.Bandaged(); len(got) != 0 {
		t.Errorf("membership %v after unbandage, want empty", got)
	}
	// After the undo the unit must match a control unit with the same
	// Step/Recover history but no bandage.
	ctl := mkUnit()
	if _, err := ctl.Step([]lattice.Coord{far}); err != nil {
		t.Fatalf("control step: %v", err)
	}
	if _, err := ctl.Recover([]lattice.Coord{far}); err != nil {
		t.Fatalf("control recover: %v", err)
	}
	want, err := ctl.Code()
	if err != nil {
		t.Fatalf("control rebuild: %v", err)
	}
	if operatorFingerprint(res.Code) != operatorFingerprint(want) {
		t.Error("unbandaged unit does not match the control unit")
	}
}

// FuzzBandage exercises the build/undo scripts over arbitrary site pairs:
// every outcome must keep the code valid (success) or untouched (failure),
// and undoing in reverse order must restore the starting point.
func FuzzBandage(f *testing.F) {
	f.Add(int16(2), int16(2), int16(2), int16(6))
	f.Add(int16(0), int16(0), int16(8), int16(8))
	f.Add(int16(4), int16(4), int16(4), int16(6))
	f.Add(int16(2), int16(6), int16(6), int16(2))
	f.Add(int16(-2), int16(3), int16(100), int16(100))
	f.Fuzz(func(t *testing.T, r1, c1, r2, c2 int16) {
		c := freshCode(t, 5)
		orig := codeFingerprint(c)
		var undos []*Bandage
		for _, q := range []lattice.Coord{
			{Row: int(r1), Col: int(c1)},
			{Row: int(r2), Col: int(c2)},
		} {
			before := codeFingerprint(c)
			b, err := BandageQubit(c, q)
			if err != nil {
				if got := codeFingerprint(c); got != before {
					t.Fatalf("failed bandage %v mutated the code", q)
				}
				continue
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("bandage %v: invalid code: %v", q, err)
			}
			undos = append(undos, b)
		}
		for i := len(undos) - 1; i >= 0; i-- {
			if err := undos[i].Undo(c); err != nil {
				t.Fatalf("undo %v: %v", undos[i].Site, err)
			}
		}
		if got := codeFingerprint(c); got != orig {
			t.Fatalf("undo stack did not restore the code")
		}
	})
}

// TestBandageUndoOutOfOrder documents the ordering contract: overlapping
// bandages must be undone in reverse application order; an out-of-order
// undo either fails cleanly or still yields a valid code — it never
// corrupts silently.
func TestBandageUndoOutOfOrder(t *testing.T) {
	c := freshCode(t, 7)
	var applied []*Bandage
	for _, q := range c.DataQubits() {
		if len(applied) == 2 {
			break
		}
		if b, err := BandageQubit(c, q); err == nil {
			applied = append(applied, b)
		}
	}
	if len(applied) < 2 {
		t.Skip("fewer than two bandageable sites")
	}
	if err := applied[0].Undo(c); err != nil {
		return // clean refusal is fine
	}
	if err := c.Validate(); err != nil {
		t.Errorf("out-of-order undo corrupted the code: %v", err)
	}
}

// TestSeverityBoundaryTable is the three-tier classification table of
// defect.ClassifyAt as seen through the Mitigation ladder (satellite of
// the bandage tier): the documented boundary semantics, default
// resolution, and misordered-threshold rejection.
func TestSeverityBoundaryTable(t *testing.T) {
	m := Mitigation{}
	cases := []struct {
		rate float64
		want string
	}{
		{0, "reweight"},
		{0.079, "reweight"},
		{0.08, "super"},  // SuperThreshold is inclusive
		{0.099, "super"}, // just under RemoveThreshold
		{0.1, "remove"},  // RemoveThreshold is inclusive
		{0.5, "remove"},
	}
	names := map[int]string{0: "reweight", 1: "super", 2: "remove"}
	for _, tc := range cases {
		if got := names[int(m.Route(tc.rate))]; got != tc.want {
			t.Errorf("Route(%g) = %s, want %s", tc.rate, got, tc.want)
		}
	}
	if err := (Mitigation{}).Validate(); err != nil {
		t.Errorf("default ladder invalid: %v", err)
	}
	if err := (Mitigation{SuperThreshold: 0.2, RemoveThreshold: 0.1}).Validate(); err == nil {
		t.Error("misordered thresholds must be rejected")
	}
	if err := (Mitigation{SuperThreshold: 0.1, RemoveThreshold: 0.1}).Validate(); err == nil {
		t.Error("equal thresholds must be rejected")
	}
	// Defaults resolve before ordering is judged: a custom remove
	// threshold below the default super threshold is a misordered ladder.
	if err := (Mitigation{RemoveThreshold: 0.05}).Validate(); err == nil {
		t.Error("remove threshold below the default super threshold must be rejected")
	}
}
