package deform

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
)

// TestFuzzDeformEnlargeInvariants drives the full deformation unit through
// random multi-round defect histories on a d=7 patch and checks, after
// every step: structural validity, k=1, graph-vs-exact distance agreement
// where feasible, and center-deficit zero.
func TestFuzzDeformEnlargeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz loop")
	}
	rng := rand.New(rand.NewSource(2024))
	const d = 7
	for trial := 0; trial < 10; trial++ {
		u := NewUnit(co(0, 0), d, d, PolicySurfDeformer, UniformBudget(2))
		for round := 0; round < 3; round++ {
			min, max := u.Spec().Bounds()
			// 1-2 random defect sites per round, anywhere in the current
			// bounding box.
			var defects []lattice.Coord
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				q := lattice.Coord{
					Row: min.Row + rng.Intn(max.Row-min.Row+1),
					Col: min.Col + rng.Intn(max.Col-min.Col+1),
				}
				if q.IsData() || q.IsCheck() {
					defects = append(defects, q)
				}
			}
			res, err := u.Step(defects)
			if err != nil {
				// Dense histories can sever the patch; that is a legal
				// outcome, not an invariant violation. Stop this trial.
				t.Logf("trial %d round %d: %v (defects %v)", trial, round, err, defects)
				break
			}
			if err := res.Code.Validate(); err != nil {
				t.Fatalf("trial %d round %d: invalid code: %v", trial, round, err)
			}
			if def, err := res.Code.CenterDeficit(); err != nil || def != 0 {
				t.Fatalf("trial %d round %d: center deficit %d (%v)", trial, round, def, err)
			}
			_, k, _, err := res.Code.Params()
			if err != nil || k != 1 {
				t.Fatalf("trial %d round %d: k=%d err=%v", trial, round, k, err)
			}
			for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
				exact, err := res.Code.ExactDistance(typ)
				if err != nil {
					continue
				}
				graph := res.Code.DistanceZ()
				if typ == lattice.XCheck {
					graph = res.Code.DistanceX()
				}
				if graph != exact {
					t.Fatalf("trial %d round %d type %v: graph %d vs exact %d",
						trial, round, typ, graph, exact)
				}
			}
		}
	}
}

// TestPolicyNoBalanceKeepsGaugePairs verifies the ablation policy: boundary
// cuts without gauge fixing retain gauge-pair structure (more measured
// information, less distance optimization).
func TestPolicyNoBalanceKeepsGaugePairs(t *testing.T) {
	edge := co(5, 9)
	s := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s, []lattice.Coord{edge}, PolicyNoBalance); err != nil {
		t.Fatal(err)
	}
	if _, fixed := s.Fixes[edge]; fixed {
		t.Fatal("no-balance policy must not record fixes")
	}
	c := mustBuild(t, s)
	if len(c.Gauges()) == 0 {
		t.Error("gauge-pair cut should retain gauge operators")
	}
	// Compare with the balanced cut: balancing may sacrifice gauge info
	// for distance, so balanced min-distance >= no-balance min-distance.
	s2 := NewSquareSpec(co(0, 0), 5)
	if err := ApplyDefects(s2, []lattice.Coord{edge}, PolicySurfDeformer); err != nil {
		t.Fatal(err)
	}
	c2 := mustBuild(t, s2)
	if c2.Distance() < c.Distance() {
		t.Errorf("balanced cut distance %d below no-balance %d", c2.Distance(), c.Distance())
	}
}

// TestEnlargeBothAxes restores a corner-damaged patch needing growth in
// both directions.
func TestEnlargeBothAxes(t *testing.T) {
	s := NewSquareSpec(co(0, 0), 5)
	// Interior defects near the centre cost both distances.
	for _, q := range []lattice.Coord{co(5, 5), co(5, 3)} {
		if err := s.DataQRM(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Enlarge(s, 5, 5, nil, PolicySurfDeformer, UniformBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedX < 5 || res.ReachedZ < 5 {
		t.Errorf("reached %d/%d, want 5/5", res.ReachedX, res.ReachedZ)
	}
	grewVert, grewHoriz := 0, 0
	for side, n := range res.LayersAdded {
		switch side {
		case lattice.Top, lattice.Bottom:
			grewVert += n
		default:
			grewHoriz += n
		}
	}
	if grewVert == 0 && grewHoriz == 0 {
		t.Error("no growth recorded for a double removal")
	}
}
