package deform

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/defect"
)

// TestLargePatchRemovalDistances checks the yield-study regime (fig. 13b):
// scattered static faults on an l=35 patch must cost only a few units of
// distance after Surf-Deformer removal.
func TestLargePatchRemovalDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("large patch build")
	}
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{5, 10, 20} {
		base := NewSquareSpec(co(0, 0), 35)
		min, max := base.Bounds()
		faults := defect.StaticFaults(min, max, k, rng)
		spec := NewSquareSpec(co(0, 0), 35)
		if err := ApplyDefects(spec, faults, PolicySurfDeformer); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		c, err := spec.Build()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		t.Logf("k=%d: dX=%d dZ=%d", k, c.DistanceX(), c.DistanceZ())
		if c.Distance() < 27 {
			t.Errorf("k=%d: distance %d below the fig. 13b target 27", k, c.Distance())
		}
	}
}
