// Package deform implements the Surf-Deformer instruction set and the
// runtime code deformation unit (paper §IV and §V).
//
// A deformed patch is described declaratively by a Spec: the bounding
// rectangle of the patch, the set of removed (defective) data and syndrome
// sites, and the boundary-fix choices made by the balancing step. The four
// instructions — DataQRM, SyndromeQRM, PatchQRM, PatchQADD — are edits of
// the Spec; Build compiles a Spec into a concrete code.Code by the algebraic
// procedure described in build.go. Semantically each instruction is a
// composition of the atomic gauge transformations in package gauge (see the
// paper's fig. 6); the Spec/Build factoring computes their net effect.
package deform

import (
	"fmt"

	"surfdeformer/internal/lattice"
)

// Spec declaratively describes one deformed surface-code patch.
type Spec struct {
	// Origin is the top-left corner of the bounding box (even coordinates).
	Origin lattice.Coord
	// DX and DZ are the data-qubit column and row counts of the bounding
	// rectangle (the undeformed patch would have Z distance DX and X
	// distance DZ).
	DX, DZ int

	// RemovedData holds defective data sites excluded from the code.
	RemovedData map[lattice.Coord]bool
	// RemovedSyndrome holds defective syndrome sites whose checks are
	// inferred from direct data measurements instead (SyndromeQRM).
	RemovedSyndrome map[lattice.Coord]bool
	// Fixes records boundary-cut gauge-fixing choices, keyed by the removed
	// data coordinate: Fixes[q] = T freezes the single-qubit T operator on
	// q, merging the broken opposite-type checks into one product check.
	Fixes map[lattice.Coord]lattice.CheckType
}

// NewSpec returns the spec of an undeformed dx×dz patch at origin.
func NewSpec(origin lattice.Coord, dx, dz int) *Spec {
	if origin.Row%2 != 0 || origin.Col%2 != 0 {
		panic(fmt.Sprintf("deform: spec origin %v must be even-even", origin))
	}
	if dx < 1 || dz < 1 {
		panic(fmt.Sprintf("deform: invalid spec dimensions %dx%d", dx, dz))
	}
	return &Spec{
		Origin:          origin,
		DX:              dx,
		DZ:              dz,
		RemovedData:     map[lattice.Coord]bool{},
		RemovedSyndrome: map[lattice.Coord]bool{},
		Fixes:           map[lattice.Coord]lattice.CheckType{},
	}
}

// NewSquareSpec returns the spec of an undeformed distance-d patch.
func NewSquareSpec(origin lattice.Coord, d int) *Spec { return NewSpec(origin, d, d) }

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	c := &Spec{
		Origin:          s.Origin,
		DX:              s.DX,
		DZ:              s.DZ,
		RemovedData:     make(map[lattice.Coord]bool, len(s.RemovedData)),
		RemovedSyndrome: make(map[lattice.Coord]bool, len(s.RemovedSyndrome)),
		Fixes:           make(map[lattice.Coord]lattice.CheckType, len(s.Fixes)),
	}
	for q := range s.RemovedData {
		c.RemovedData[q] = true
	}
	for q := range s.RemovedSyndrome {
		c.RemovedSyndrome[q] = true
	}
	for q, t := range s.Fixes {
		c.Fixes[q] = t
	}
	return c
}

// Rect returns the regular (undeformed) geometry of the bounding rectangle.
func (s *Spec) Rect() *lattice.Patch { return lattice.NewRectPatch(s.Origin, s.DX, s.DZ) }

// Bounds returns the inclusive coordinate bounding box of the rectangle.
func (s *Spec) Bounds() (min, max lattice.Coord) {
	return s.Origin, lattice.Coord{Row: s.Origin.Row + 2*s.DZ, Col: s.Origin.Col + 2*s.DX}
}

// Contains reports whether the coordinate lies inside the bounding box.
func (s *Spec) Contains(q lattice.Coord) bool {
	min, max := s.Bounds()
	return q.Row >= min.Row && q.Row <= max.Row && q.Col >= min.Col && q.Col <= max.Col
}

// OnBoundary reports whether a data coordinate lies on the patch outline
// (the paper's EdgeX/EdgeZ classification; corners are on both).
func (s *Spec) OnBoundary(q lattice.Coord) (onXEdge, onZEdge bool) {
	min, max := s.Bounds()
	// Top and bottom rows host the X boundaries; left and right columns the
	// Z boundaries (package lattice convention).
	onXEdge = q.Row == min.Row+1 || q.Row == max.Row-1
	onZEdge = q.Col == min.Col+1 || q.Col == max.Col-1
	return onXEdge, onZEdge
}

// IsInterior reports whether the data coordinate is strictly inside the
// patch outline.
func (s *Spec) IsInterior(q lattice.Coord) bool {
	x, z := s.OnBoundary(q)
	return !x && !z
}

// DataQRM removes a single interior data qubit (paper fig. 6a). The broken
// checks around it become gauge operator pairs with merged super-stabilizers
// — the super-stabilizer method. The instruction is recorded in the spec;
// Build materializes its effect.
func (s *Spec) DataQRM(q lattice.Coord) error {
	if !q.IsData() {
		return fmt.Errorf("deform: DataQRM target %v is not a data site", q)
	}
	if !s.Contains(q) {
		return fmt.Errorf("deform: DataQRM target %v outside patch", q)
	}
	if s.RemovedData[q] {
		return fmt.Errorf("deform: data qubit %v already removed", q)
	}
	s.RemovedData[q] = true
	return nil
}

// SyndromeQRM removes a single syndrome qubit (paper fig. 6b). Its check is
// henceforth inferred from direct single-qubit measurements of the adjacent
// data qubits, and the opposite-type neighbours become gauge operators whose
// product survives as a super-stabilizer.
func (s *Spec) SyndromeQRM(q lattice.Coord) error {
	if !q.IsCheck() {
		return fmt.Errorf("deform: SyndromeQRM target %v is not a syndrome site", q)
	}
	if !s.Contains(q) {
		return fmt.Errorf("deform: SyndromeQRM target %v outside patch", q)
	}
	if s.RemovedSyndrome[q] {
		return fmt.Errorf("deform: syndrome qubit %v already removed", q)
	}
	s.RemovedSyndrome[q] = true
	return nil
}

// PatchQRM removes a boundary qubit by deforming the patch boundary (paper
// fig. 6c). For data sites, fix chooses which single-qubit operator is
// frozen (the balancing decision of §V-A): freezing type T merges the broken
// opposite-type checks. For syndrome sites the check is dropped to direct
// measurements exactly as SyndromeQRM.
func (s *Spec) PatchQRM(q lattice.Coord, fix lattice.CheckType) error {
	if q.IsData() {
		if !s.Contains(q) {
			return fmt.Errorf("deform: PatchQRM target %v outside patch", q)
		}
		if s.IsInterior(q) {
			return fmt.Errorf("deform: PatchQRM target %v is interior; use DataQRM", q)
		}
		if s.RemovedData[q] {
			return fmt.Errorf("deform: data qubit %v already removed", q)
		}
		s.RemovedData[q] = true
		s.Fixes[q] = fix
		return nil
	}
	if q.IsCheck() {
		return s.SyndromeQRM(q)
	}
	return fmt.Errorf("deform: PatchQRM target %v is neither data nor syndrome", q)
}

// PatchQADD grows the patch by the given number of full layers on one side
// (paper fig. 6d). Growing left or top shifts the origin; removed sites keep
// their absolute coordinates, so boundary notches that end up in the
// interior automatically acquire interior (super-stabilizer) treatment —
// the fig. 9 behaviour.
func (s *Spec) PatchQADD(side lattice.Side, layers int) error {
	if layers < 1 {
		return fmt.Errorf("deform: PatchQADD with %d layers", layers)
	}
	switch side {
	case lattice.Left:
		s.Origin.Col -= 2 * layers
		s.DX += layers
	case lattice.Right:
		s.DX += layers
	case lattice.Top:
		s.Origin.Row -= 2 * layers
		s.DZ += layers
	case lattice.Bottom:
		s.DZ += layers
	default:
		return fmt.Errorf("deform: PatchQADD with invalid side %v", side)
	}
	// Boundary fixes of qubits that are now interior lose their meaning as
	// cuts; interior treatment (gauge pairs) supersedes them.
	for q := range s.Fixes {
		if s.IsInterior(q) {
			delete(s.Fixes, q)
		}
	}
	return nil
}

// NumRemoved returns how many physical sites the spec has removed.
func (s *Spec) NumRemoved() int { return len(s.RemovedData) + len(s.RemovedSyndrome) }

// String summarizes the spec.
func (s *Spec) String() string {
	return fmt.Sprintf("spec{origin:%v %dx%d removed:%d/%d fixes:%d}",
		s.Origin, s.DX, s.DZ, len(s.RemovedData), len(s.RemovedSyndrome), len(s.Fixes))
}
