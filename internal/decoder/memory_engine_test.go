package decoder

// Integration tests of the Monte-Carlo engine path (internal/mc via
// sim.RunMemoryOpts) against the real union-find decoder. They live here
// rather than in package sim because sim cannot import its own decoders.

import (
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

func engineTestCode(t *testing.T, d int) *code.Code {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// Same seed ⇒ identical failure counts for any worker count — the
// engine's core determinism contract on a real memory experiment.
func TestRunMemoryDeterministicAcrossWorkers(t *testing.T) {
	c := engineTestCode(t, 5)
	model := noise.Uniform(4e-3)
	var refFailures, refShots int
	for i, workers := range []int{1, 4, 8} {
		res, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
			Rounds: 4, Basis: lattice.ZCheck, Factory: UnionFindFactory(),
			Shots: 6000, Workers: workers, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refFailures, refShots = res.Failures, res.Shots
			if refFailures == 0 {
				t.Fatal("d=5 at p=4e-3 should fail sometimes in 6000 shots")
			}
			continue
		}
		if res.Failures != refFailures || res.Shots != refShots {
			t.Errorf("workers=%d: (failures=%d shots=%d), want (%d %d)",
				workers, res.Failures, res.Shots, refFailures, refShots)
		}
	}
}

// The legacy wrappers must be exactly the engine path.
func TestRunMemoryWrapperMatchesOpts(t *testing.T) {
	c := engineTestCode(t, 3)
	model := noise.Uniform(5e-3)
	wrapped, err := sim.RunMemory(c, model, 4, 3000, lattice.ZCheck, UnionFindFactory(), 17)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
		Rounds: 4, Basis: lattice.ZCheck, Factory: UnionFindFactory(),
		Shots: 3000, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Failures != direct.Failures || wrapped.Shots != direct.Shots {
		t.Errorf("RunMemory (failures=%d shots=%d) != RunMemoryOpts (%d %d)",
			wrapped.Failures, wrapped.Shots, direct.Failures, direct.Shots)
	}
}

// Early stopping must agree with the fixed-budget estimate within its
// confidence interval, while spending far fewer shots than the cap.
func TestRunMemoryEarlyStopWithinCI(t *testing.T) {
	c := engineTestCode(t, 3)
	model := noise.Uniform(6e-3)
	full, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
		Rounds: 4, Basis: lattice.ZCheck, Factory: UnionFindFactory(),
		Shots: 40_000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	early, err := sim.RunMemoryOpts(c, model, nil, sim.RunOptions{
		Rounds: 4, Basis: lattice.ZCheck, Factory: UnionFindFactory(),
		Shots: 400_000, TargetRSE: 0.08, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !early.EarlyStopped {
		t.Fatal("d=3 at p=6e-3 must reach 8% RSE well before 400k shots")
	}
	if early.Shots >= 400_000 {
		t.Errorf("adaptive run spent the whole cap: %d shots", early.Shots)
	}
	if full.LogicalErrorRate < early.CILow || full.LogicalErrorRate > early.CIHigh {
		t.Errorf("fixed-budget rate %v outside adaptive CI [%v, %v]",
			full.LogicalErrorRate, early.CILow, early.CIHigh)
	}
}

// The mismatched (two-DEM) path is deterministic across worker counts too.
func TestRunMemoryMismatchedDeterministic(t *testing.T) {
	c := engineTestCode(t, 5)
	nominal := noise.Uniform(noise.DefaultPhysical)
	hot := nominal.WithDefects([]lattice.Coord{{Row: 5, Col: 5}}, noise.DefaultDefectRate)
	var ref int
	for i, workers := range []int{1, 4, 8} {
		res, err := sim.RunMemoryOpts(c, hot, nominal, sim.RunOptions{
			Rounds: 4, Basis: lattice.ZCheck, Factory: UnionFindFactory(),
			Shots: 4000, Workers: workers, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Failures
			continue
		}
		if res.Failures != ref {
			t.Errorf("workers=%d: failures=%d, want %d", workers, res.Failures, ref)
		}
	}
}
