package decoder

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// graphsIdentical asserts every consumer-visible field matches bit for bit.
func graphsIdentical(t *testing.T, got, want *Graph, ctx string) {
	t.Helper()
	if got.NumDets != want.NumDets || got.Decomposed != want.Decomposed ||
		got.Clamped != want.Clamped || got.Dropped != want.Dropped {
		t.Fatalf("%s: header fields differ: got %+v want %+v", ctx, got, want)
	}
	if got.FreeLogicalP != want.FreeLogicalP {
		t.Fatalf("%s: FreeLogicalP = %v, want %v", ctx, got.FreeLogicalP, want.FreeLogicalP)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("%s: %d edges, want %d", ctx, len(got.Edges), len(want.Edges))
		}
		for i := range got.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("%s: edge %d = %+v, want %+v", ctx, i, got.Edges[i], want.Edges[i])
			}
		}
	}
	if !reflect.DeepEqual(got.adjOff, want.adjOff) || !reflect.DeepEqual(got.adjList, want.adjList) {
		t.Fatalf("%s: adjacency differs", ctx)
	}
}

// TestRederiveMatchesNewGraph pins the decoder half of the incremental
// equivalence contract: for random site-rate overlays, the graph rederived
// from the nominal template's merge skeleton is identical — edges, weights,
// observable flags, adjacency, free logical mass — to a fresh NewGraph of
// the patched DEM, and decode corrections over sampled syndromes are bit
// identical.
func TestRederiveMatchesNewGraph(t *testing.T) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 5))
	nominal := noise.Uniform(1e-3)
	base, err := sim.BuildDEM(c, nominal, 5, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := NewGraph(base)
	if tmpl.skel == nil {
		t.Fatal("nominal graph recorded no merge skeleton")
	}
	sites := append([]lattice.Coord(nil), c.DataQubits()...)
	sites = append(sites, c.SyndromeQubits()...)
	rng := rand.New(rand.NewSource(23))
	pt := &sim.Patcher{}
	for trial := 0; trial < 20; trial++ {
		overlay := map[lattice.Coord]float64{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			mult := float64(int64(2) << rng.Intn(6))
			r := mult * 1e-3
			if r > 0.45 {
				r = 0.45
			}
			overlay[sites[rng.Intn(len(sites))]] = r
		}
		variant := nominal.WithSiteRates(overlay)
		patched, ok := pt.Patch(base, variant)
		if !ok {
			t.Fatal("patch refused")
		}
		want := NewGraph(patched)
		got := tmpl.rederive(patched)
		if got == nil {
			t.Fatal("rederive bailed on a structurally identical DEM")
		}
		graphsIdentical(t, got, want, "rederived")
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		// Decode corrections must be bit-identical between the two graphs.
		ufGot, ufWant := NewUnionFind(got), NewUnionFind(want)
		sampler := sim.NewSampler(patched)
		shotRNG := rand.New(rand.NewSource(int64(100 + trial)))
		for shot := 0; shot < 50; shot++ {
			flagged, _ := sampler.Shot(shotRNG)
			a := slices.Clone(ufGot.DecodeToEdges(flagged))
			b := ufWant.DecodeToEdges(flagged)
			if !slices.Equal(a, b) {
				t.Fatalf("trial %d shot %d: corrections diverge: %v vs %v", trial, shot, a, b)
			}
		}
	}
}

// TestSharedGraphFromUsesTemplate pins the cache integration: a miss on a
// patched DEM with a cached same-core base rederives instead of rebuilding
// and the result is cached under the patched DEM's identity.
func TestSharedGraphFromUsesTemplate(t *testing.T) {
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 3))
	nominal := noise.Uniform(1e-3)
	base, err := sim.BuildDEM(c, nominal, 4, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	bg := SharedGraph(base)
	variant := nominal.WithSiteRates(map[lattice.Coord]float64{c.DataQubits()[0]: 8e-3})
	patched, ok := (&sim.Patcher{}).Patch(base, variant)
	if !ok {
		t.Fatal("patch refused")
	}
	r0 := obsGraphRederives.Value()
	g := SharedGraphFrom(patched, base)
	if obsGraphRederives.Value() != r0+1 {
		t.Error("miss with a cached same-core base must rederive")
	}
	graphsIdentical(t, g, NewGraph(patched), "via SharedGraphFrom")
	if SharedGraphFrom(patched, base) != g {
		t.Error("second request must hit the cache")
	}
	_ = bg
}
