package decoder

import (
	"container/heap"
	"math"

	"surfdeformer/internal/sim"
)

// pathInfo is the result of a single-source Dijkstra: distance and the
// observable parity of the shortest path.
type pathInfo struct {
	dist float64
	obs  bool
}

// dijkstra computes shortest paths from src to every detector and to the
// boundary, tracking the observable parity along the chosen paths.
func (g *Graph) dijkstra(src int32) (dists []pathInfo, boundary pathInfo) {
	const inf = math.MaxFloat64
	dists = make([]pathInfo, g.NumDets)
	for i := range dists {
		dists[i].dist = inf
	}
	boundary = pathInfo{dist: inf}
	dists[src].dist = 0
	pq := &distHeap{{src, 0}}
	done := make([]bool, g.NumDets)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if done[item.node] {
			continue
		}
		done[item.node] = true
		d := dists[item.node]
		for _, ei := range g.Adj(item.node) {
			e := g.Edges[ei]
			other := e.U
			if other == item.node {
				other = e.V
			}
			nd := d.dist + e.Weight
			nobs := d.obs != e.Obs
			if other == Boundary {
				if nd < boundary.dist {
					boundary = pathInfo{nd, nobs}
				}
				continue
			}
			if nd < dists[other].dist {
				dists[other] = pathInfo{nd, nobs}
				heap.Push(pq, distItem{other, nd})
			}
		}
	}
	return dists, boundary
}

type distItem struct {
	node int32
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Greedy matches flagged detectors pairwise (or to the boundary) in
// ascending distance order. It is a simple near-MWPM baseline used in the
// decoder ablation study.
type Greedy struct{ g *Graph }

// NewGreedy builds a greedy matcher over the graph.
func NewGreedy(g *Graph) *Greedy { return &Greedy{g} }

// GreedyFactory adapts the decoder to the sim.DecoderFactory interface.
func GreedyFactory() sim.DecoderFactory {
	return func(dem *sim.DEM) (sim.Decoder, error) {
		return NewGreedy(SharedGraph(dem)), nil
	}
}

var _ sim.Decoder = (*Greedy)(nil)

// DecodeToObs implements sim.Decoder.
func (d *Greedy) DecodeToObs(flagged []int32) bool {
	n := len(flagged)
	if n == 0 {
		return false
	}
	pair, bound := d.g.pairwise(flagged)
	type cand struct {
		i, j int // j == -1 for boundary
		info pathInfo
	}
	var cands []cand
	for i := 0; i < n; i++ {
		cands = append(cands, cand{i, -1, bound[i]})
		for j := i + 1; j < n; j++ {
			cands = append(cands, cand{i, j, pair[i][j]})
		}
	}
	// Selection sort by distance (candidate lists are small).
	for a := 0; a < len(cands); a++ {
		best := a
		for b := a + 1; b < len(cands); b++ {
			if cands[b].info.dist < cands[best].info.dist {
				best = b
			}
		}
		cands[a], cands[best] = cands[best], cands[a]
	}
	used := make([]bool, n)
	obs := false
	for _, c := range cands {
		if used[c.i] || (c.j >= 0 && used[c.j]) {
			continue
		}
		if c.info.dist == math.MaxFloat64 {
			continue
		}
		used[c.i] = true
		if c.j >= 0 {
			used[c.j] = true
		}
		if c.info.obs {
			obs = !obs
		}
	}
	return obs
}

// pairwise runs Dijkstra from every flagged detector.
func (g *Graph) pairwise(flagged []int32) (pair [][]pathInfo, bound []pathInfo) {
	n := len(flagged)
	pair = make([][]pathInfo, n)
	bound = make([]pathInfo, n)
	for i, src := range flagged {
		dists, b := g.dijkstra(src)
		row := make([]pathInfo, n)
		for j, dst := range flagged {
			row[j] = dists[dst]
		}
		pair[i] = row
		bound[i] = b
	}
	return pair, bound
}

// Exact is a minimum-weight perfect matching decoder (each detector matches
// another or the boundary) solved by bitmask dynamic programming. It is
// exponential in the syndrome size and exists to validate the union-find
// and greedy decoders on small instances.
type Exact struct {
	g   *Graph
	max int
}

// NewExact builds the exact decoder; syndromes larger than maxDefects fall
// back to greedy.
func NewExact(g *Graph, maxDefects int) *Exact { return &Exact{g, maxDefects} }

// ExactFactory adapts the decoder to the sim.DecoderFactory interface.
func ExactFactory(maxDefects int) sim.DecoderFactory {
	return func(dem *sim.DEM) (sim.Decoder, error) {
		return NewExact(SharedGraph(dem), maxDefects), nil
	}
}

var _ sim.Decoder = (*Exact)(nil)

// DecodeToObs implements sim.Decoder.
func (d *Exact) DecodeToObs(flagged []int32) bool {
	n := len(flagged)
	if n == 0 {
		return false
	}
	if n > d.max {
		return NewGreedy(d.g).DecodeToObs(flagged)
	}
	pair, bound := d.g.pairwise(flagged)
	const inf = math.MaxFloat64
	size := 1 << n
	cost := make([]float64, size)
	obs := make([]bool, size)
	for s := 1; s < size; s++ {
		cost[s] = inf
	}
	for s := 1; s < size; s++ {
		// Lowest set bit must be matched.
		i := 0
		for s&(1<<i) == 0 {
			i++
		}
		rest := s &^ (1 << i)
		// Option: boundary.
		if bound[i].dist < inf && cost[rest] < inf {
			c := cost[rest] + bound[i].dist
			if c < cost[s] {
				cost[s] = c
				obs[s] = obs[rest] != bound[i].obs
			}
		}
		// Option: pair with j.
		for j := i + 1; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			prev := rest &^ (1 << j)
			if pair[i][j].dist < inf && cost[prev] < inf {
				c := cost[prev] + pair[i][j].dist
				if c < cost[s] {
					cost[s] = c
					obs[s] = obs[prev] != pair[i][j].obs
				}
			}
		}
	}
	return obs[size-1]
}
