package decoder

import (
	"math"
	"testing"

	"surfdeformer/internal/sim"
)

func TestGraphDecomposition(t *testing.T) {
	dem := &sim.DEM{
		NumDets: 6,
		Mechs: []sim.Mechanism{
			{P: 0.01, Dets: []int32{0, 1}},                   // plain edge
			{P: 0.02, Dets: []int32{2}},                      // boundary edge
			{P: 0.005, Dets: []int32{0, 1, 3, 4}, Obs: true}, // 4-det: decomposed
			{P: 0.003, Dets: []int32{2, 3, 5}},               // 3-det: pair + boundary
			{P: 0.001, Dets: nil, Obs: true},                 // free logical
		},
	}
	g := NewGraph(dem)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Decomposed != 2 {
		t.Errorf("Decomposed = %d, want 2", g.Decomposed)
	}
	if g.FreeLogicalP != 0.001 {
		t.Errorf("FreeLogicalP = %v, want 0.001", g.FreeLogicalP)
	}
	// The 4-det mechanism contributes edges (0,1) (merged with the plain
	// edge) and (3,4); the 3-det one contributes (2,3) and (5,boundary).
	type pair struct{ u, v int32 }
	want := map[pair]bool{
		{0, 1}: true, {3, 4}: true, {2, 3}: true,
		{2, Boundary}: true, {5, Boundary}: true,
	}
	got := map[pair]bool{}
	for _, e := range g.Edges {
		got[pair{e.U, e.V}] = true
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing edge %v", p)
		}
	}
	// Parallel mechanisms on (0,1) merged: probability combined.
	for _, e := range g.Edges {
		if e.U == 0 && e.V == 1 {
			wantP := 0.01 + 0.005 - 2*0.01*0.005
			if diff := e.P - wantP; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("merged edge P = %v, want %v", e.P, wantP)
			}
		}
	}
}

func TestGraphMergesObsToDominant(t *testing.T) {
	dem := &sim.DEM{
		NumDets: 2,
		Mechs: []sim.Mechanism{
			{P: 0.001, Dets: []int32{0, 1}, Obs: false},
			{P: 0.01, Dets: []int32{0, 1}, Obs: true},
		},
	}
	g := NewGraph(dem)
	if len(g.Edges) != 1 {
		t.Fatalf("%d edges, want 1 merged", len(g.Edges))
	}
	if !g.Edges[0].Obs {
		t.Error("merged edge must carry the dominant mechanism's observable flag")
	}
}

// TestGraphClampAndDropSurfaced pins the satellite fix: edge probabilities
// at or above ½ are clamped to MaxEdgeProb and non-positive ones dropped —
// as before — but the graph now reports how often, instead of silently
// rewriting the prior. Reweighted decode DEMs hit both paths (estimated
// site rates near ½ merge into ≥½ parallel-edge mass).
func TestGraphClampAndDropSurfaced(t *testing.T) {
	dem := &sim.DEM{
		NumDets: 4,
		Mechs: []sim.Mechanism{
			{P: 0.6, Dets: []int32{0, 1}},  // clamped outright
			{P: 0.4, Dets: []int32{2}},     // merges with the next...
			{P: 0.3, Dets: []int32{2}},     // ...to 0.4+0.3-2·0.12 = 0.46: kept
			{P: 0, Dets: []int32{3}},       // dropped (zero probability)
			{P: 0.01, Dets: []int32{0, 3}}, // healthy edge
		},
	}
	g := NewGraph(dem)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Clamped != 1 {
		t.Errorf("Clamped = %d, want 1", g.Clamped)
	}
	if g.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", g.Dropped)
	}
	wantClamped := math.Log((1 - MaxEdgeProb) / MaxEdgeProb)
	for _, e := range g.Edges {
		if e.U == 0 && e.V == 1 {
			if e.Weight != wantClamped {
				t.Errorf("clamped edge weight %v, want %v (the named constant's weight)", e.Weight, wantClamped)
			}
		}
		if e.Weight <= 0 {
			t.Errorf("edge (%d,%d) weight %v must stay positive after clamping", e.U, e.V, e.Weight)
		}
		if e.U == 3 && e.V == Boundary {
			t.Errorf("dropped zero-probability mechanism left its boundary edge in the graph")
		}
	}
	// A nominal-rate graph reports zero for both.
	nominal := NewGraph(&sim.DEM{NumDets: 2, Mechs: []sim.Mechanism{{P: 0.001, Dets: []int32{0, 1}}}})
	if nominal.Clamped != 0 || nominal.Dropped != 0 {
		t.Errorf("nominal graph reports clamped=%d dropped=%d, want 0/0", nominal.Clamped, nominal.Dropped)
	}
}

func TestGraphWeightsPositive(t *testing.T) {
	dem := &sim.DEM{
		NumDets: 2,
		Mechs: []sim.Mechanism{
			{P: 0.49, Dets: []int32{0, 1}},
			{P: 1e-9, Dets: []int32{0}},
		},
	}
	g := NewGraph(dem)
	for _, e := range g.Edges {
		if e.Weight <= 0 {
			t.Errorf("edge weight %v must be positive", e.Weight)
		}
	}
}
