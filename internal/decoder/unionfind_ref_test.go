package decoder

// This file pins the flat epoch-stamped union-find against the map-based
// implementation it replaced. refUnionFind is a faithful copy of the
// pre-refactor decoder (maps for active roots, frontier multiplicities,
// peeling incidence/visitation, closure sort for frontier ordering); the
// differential tests require bit-identical corrections and failure counts
// on a seeded corpus spanning clean and defect-laden noise models. Any
// divergence means the refactor changed decoding behavior, not just speed.

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

type refUnionFind struct {
	g *Graph

	parent   []int32
	parity   []int8
	bound    []bool
	growth   []float64
	grown    []bool
	absorbed []bool
	flag     []bool

	touched []int32
	edges   []int32
}

func newRefUnionFind(g *Graph) *refUnionFind {
	n := g.NumDets
	u := &refUnionFind{
		g:        g,
		parent:   make([]int32, n),
		parity:   make([]int8, n),
		bound:    make([]bool, n),
		growth:   make([]float64, len(g.Edges)),
		grown:    make([]bool, len(g.Edges)),
		absorbed: make([]bool, n),
		flag:     make([]bool, n),
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *refUnionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *refUnionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	u.parent[rb] = ra
	u.parity[ra] = (u.parity[ra] + u.parity[rb]) % 2
	u.bound[ra] = u.bound[ra] || u.bound[rb]
}

func (u *refUnionFind) absorb(n int32) {
	if !u.absorbed[n] {
		u.absorbed[n] = true
		u.touched = append(u.touched, n)
	}
}

func (u *refUnionFind) DecodeToObs(flagged []int32) bool {
	edgeSet := u.DecodeToEdges(flagged)
	obs := false
	for _, ei := range edgeSet {
		if u.g.Edges[ei].Obs {
			obs = !obs
		}
	}
	return obs
}

func (u *refUnionFind) DecodeToEdges(flagged []int32) []int32 {
	if len(flagged) == 0 {
		return nil
	}
	defer u.reset()
	for _, d := range flagged {
		u.absorb(d)
		u.parity[d] = 1
	}

	for iter := 0; ; iter++ {
		roots := u.activeRoots()
		if len(roots) == 0 || iter > 4*len(u.g.Edges) {
			break
		}
		isActive := map[int32]bool{}
		for _, r := range roots {
			isActive[r] = true
		}
		type frontierEdge struct {
			ei    int32
			sides float64
		}
		seen := map[int32]float64{}
		for _, n := range u.touched {
			if !isActive[u.find(n)] {
				continue
			}
			for _, ei := range u.g.Adj(n) {
				if u.grown[ei] {
					continue
				}
				seen[ei]++
			}
		}
		if len(seen) == 0 {
			break
		}
		var frontier []frontierEdge
		minStep := -1.0
		for ei, sides := range seen {
			if sides > 2 {
				sides = 2
			}
			rem := (u.g.Edges[ei].Weight - u.growth[ei]) / sides
			if minStep < 0 || rem < minStep {
				minStep = rem
			}
			frontier = append(frontier, frontierEdge{ei, sides})
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].ei < frontier[j].ei })
		for _, fe := range frontier {
			if u.growth[fe.ei] == 0 {
				u.edges = append(u.edges, fe.ei)
			}
			u.growth[fe.ei] += minStep * fe.sides
			if u.growth[fe.ei] >= u.g.Edges[fe.ei].Weight-1e-12 && !u.grown[fe.ei] {
				u.grown[fe.ei] = true
				e := u.g.Edges[fe.ei]
				if e.V == Boundary {
					u.absorb(e.U)
					u.bound[u.find(e.U)] = true
				} else {
					u.absorb(e.U)
					u.absorb(e.V)
					u.union(e.U, e.V)
				}
			}
		}
	}
	return u.peel(flagged)
}

func (u *refUnionFind) activeRoots() []int32 {
	seen := map[int32]bool{}
	var roots []int32
	for _, n := range u.touched {
		r := u.find(n)
		if seen[r] {
			continue
		}
		seen[r] = true
		if u.parity[r] == 1 && !u.bound[r] {
			roots = append(roots, r)
		}
	}
	return roots
}

func (u *refUnionFind) peel(flagged []int32) []int32 {
	incident := map[int32][]int32{}
	for _, ei := range u.edges {
		if !u.grown[ei] {
			continue
		}
		e := u.g.Edges[ei]
		incident[e.U] = append(incident[e.U], ei)
		if e.V != Boundary {
			incident[e.V] = append(incident[e.V], ei)
		}
	}
	visited := map[int32]bool{}
	parentEdge := map[int32]int32{}
	var order []int32
	bfs := func(seeds []int32) {
		queue := seeds
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			order = append(order, n)
			for _, ei := range incident[n] {
				e := u.g.Edges[ei]
				other := e.U
				if other == n {
					other = e.V
				}
				if other == Boundary || visited[other] {
					continue
				}
				visited[other] = true
				parentEdge[other] = ei
				queue = append(queue, other)
			}
		}
	}
	var seeds []int32
	for _, ei := range u.edges {
		e := u.g.Edges[ei]
		if u.grown[ei] && e.V == Boundary && !visited[e.U] {
			visited[e.U] = true
			parentEdge[e.U] = ei
			seeds = append(seeds, e.U)
		}
	}
	bfs(seeds)
	for _, n := range u.touched {
		if !visited[n] {
			visited[n] = true
			parentEdge[n] = -1
			bfs([]int32{n})
		}
	}
	for _, d := range flagged {
		u.flag[d] = true
	}
	var correction []int32
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if !u.flag[n] {
			continue
		}
		ei := parentEdge[n]
		if ei < 0 {
			continue
		}
		correction = append(correction, ei)
		u.flag[n] = false
		e := u.g.Edges[ei]
		other := e.U
		if other == n {
			other = e.V
		}
		if other != Boundary {
			u.flag[other] = !u.flag[other]
		}
	}
	for _, d := range flagged {
		u.flag[d] = false
	}
	for _, n := range u.touched {
		u.flag[n] = false
	}
	return correction
}

func (u *refUnionFind) reset() {
	for _, n := range u.touched {
		u.parent[n] = n
		u.parity[n] = 0
		u.bound[n] = false
		u.absorbed[n] = false
	}
	for _, ei := range u.edges {
		u.growth[ei] = 0
		u.grown[ei] = false
	}
	u.touched = u.touched[:0]
	u.edges = u.edges[:0]
}

// differentialCorpus builds a seeded shot corpus over one DEM.
func differentialCorpus(t *testing.T, dem *sim.DEM, shots int, seed int64) [][]int32 {
	t.Helper()
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(seed))
	corpus := make([][]int32, shots)
	for i := range corpus {
		flagged, _ := sampler.Shot(rng)
		corpus[i] = slices.Clone(flagged)
	}
	return corpus
}

// TestUnionFindMatchesReference runs the flat decoder and the pre-refactor
// map-based reference over seeded corpora and requires bit-identical
// corrections (same edges in the same order) and identical observable
// predictions, shot for shot.
func TestUnionFindMatchesReference(t *testing.T) {
	configs := []struct {
		name       string
		d, rounds  int
		p          float64
		shots      int
		defectSite *lattice.Coord
	}{
		{name: "d3-low-p", d: 3, rounds: 4, p: 2e-3, shots: 400},
		{name: "d5-mid-p", d: 5, rounds: 5, p: 8e-3, shots: 400},
		{name: "d5-high-p", d: 5, rounds: 4, p: 2e-2, shots: 300},
		{name: "d5-defect", d: 5, rounds: 4, p: 1e-3, shots: 300,
			defectSite: &lattice.Coord{Row: 5, Col: 5}},
	}
	for ci, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, cfg.d))
			model := noise.Uniform(cfg.p)
			if cfg.defectSite != nil {
				// Defect-laden weights exercise irregular cluster growth
				// steps (the fuzz-corpus regime of heavy local noise).
				model = model.WithDefects([]lattice.Coord{*cfg.defectSite}, noise.DefaultDefectRate)
			}
			dem, err := sim.BuildDEM(c, model, cfg.rounds, lattice.ZCheck)
			if err != nil {
				t.Fatal(err)
			}
			g := NewGraph(dem)
			flat := NewUnionFind(g)
			ref := newRefUnionFind(g)
			corpus := differentialCorpus(t, dem, cfg.shots, int64(1000+ci))
			flatFails, refFails := 0, 0
			for i, flagged := range corpus {
				got := slices.Clone(flat.DecodeToEdges(flagged))
				want := ref.DecodeToEdges(flagged)
				if !slices.Equal(got, want) {
					t.Fatalf("shot %d: corrections diverge\nflat: %v\nref:  %v\nflagged: %v",
						i, got, want, flagged)
				}
				gObs, wObs := obsOf(g, got), obsOf(g, want)
				if gObs != wObs {
					t.Fatalf("shot %d: observable prediction diverges", i)
				}
				if gObs {
					flatFails++
				}
				if wObs {
					refFails++
				}
			}
			if flatFails != refFails {
				t.Fatalf("failure counts diverge: flat %d vs ref %d", flatFails, refFails)
			}
			if flat.Truncations != 0 {
				t.Fatalf("flat decoder reported %d truncations on a well-formed graph", flat.Truncations)
			}
		})
	}
}

func obsOf(g *Graph, correction []int32) bool {
	obs := false
	for _, ei := range correction {
		if g.Edges[ei].Obs {
			obs = !obs
		}
	}
	return obs
}
