package decoder

import (
	"math/rand"
	"slices"
	"testing"

	"surfdeformer/internal/sim"
)

// TestDecodeZeroAllocs enforces the hot-path allocation contract: decoding
// performs zero heap allocations per shot. Scratch is preallocated at
// worst-case bounds in NewUnionFind, so this holds from the first call,
// not just at steady state.
func TestDecodeZeroAllocs(t *testing.T) {
	dem := demFor(t, 5, 5, 5e-3)
	g := NewGraph(dem)
	uf := NewUnionFind(g)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(17))
	corpus := make([][]int32, 64)
	for i := range corpus {
		flagged, _ := sampler.Shot(rng)
		corpus[i] = slices.Clone(flagged)
	}
	sink := false
	allocs := testing.AllocsPerRun(100, func() {
		for _, flagged := range corpus {
			sink = sink != uf.DecodeToObs(flagged)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("DecodeToObs allocates %.1f per %d-shot run, want 0", allocs, len(corpus))
	}
}

// TestDecodeToEdgesScratchReuse documents the ownership contract: the
// slice returned by DecodeToEdges is invalidated by the next decode.
func TestDecodeToEdgesScratchReuse(t *testing.T) {
	dem := demFor(t, 5, 4, 1e-2)
	g := NewGraph(dem)
	uf := NewUnionFind(g)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(23))
	var first, flagged1 []int32
	for len(first) == 0 {
		f, _ := sampler.Shot(rng)
		flagged1 = slices.Clone(f)
		first = uf.DecodeToEdges(flagged1)
	}
	snapshot := slices.Clone(first)
	for i := 0; i < 32; i++ {
		f, _ := sampler.Shot(rng)
		uf.DecodeToEdges(f)
	}
	again := uf.DecodeToEdges(flagged1)
	if !slices.Equal(again, snapshot) {
		t.Fatalf("decode of identical syndrome changed: %v vs %v", again, snapshot)
	}
}

// TestTruncationSurfaced is the regression test for the silent-truncation
// fix: a syndrome the decoder cannot annihilate (here, a flagged detector
// with no incident edges) must be counted in Truncations rather than
// silently returning a partial correction.
func TestTruncationSurfaced(t *testing.T) {
	// Detector 0 has a boundary edge; detector 1 is isolated (as can
	// happen on a malformed or degenerate decoding graph).
	g := &Graph{
		NumDets: 2,
		Edges:   []Edge{{U: 0, V: Boundary, Weight: 1, P: 0.01}},
	}
	g.buildAdj()
	uf := NewUnionFind(g)

	// A decodable syndrome must not count as truncated.
	corr := uf.DecodeToEdges([]int32{0})
	if len(corr) != 1 || corr[0] != 0 {
		t.Fatalf("decodable syndrome: correction %v, want [0]", corr)
	}
	if uf.Truncations != 0 {
		t.Fatalf("decodable syndrome counted as truncation")
	}

	// The isolated detector's flag can never be annihilated.
	uf.DecodeToEdges([]int32{1})
	if uf.Truncations != 1 {
		t.Fatalf("Truncations = %d after undecodable syndrome, want 1", uf.Truncations)
	}

	// Both flagged: detector 0 drains into the boundary, detector 1
	// truncates again; the partial correction still covers detector 0.
	corr = uf.DecodeToEdges([]int32{0, 1})
	if len(corr) != 1 || corr[0] != 0 {
		t.Fatalf("partial correction %v, want [0]", corr)
	}
	if uf.Truncations != 2 {
		t.Fatalf("Truncations = %d, want 2", uf.Truncations)
	}

	// Decoder state must be fully reset despite the truncations.
	if uf.DecodeToObs(nil) {
		t.Fatal("empty syndrome must predict no flip")
	}
}
