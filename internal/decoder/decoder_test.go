package decoder

import (
	"math/rand"
	"slices"
	"testing"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/pauli"
	"surfdeformer/internal/sim"
)

func demFor(t *testing.T, d, rounds int, p float64) *sim.DEM {
	t.Helper()
	c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	dem, err := sim.BuildDEM(c, noise.Uniform(p), rounds, lattice.ZCheck)
	if err != nil {
		t.Fatal(err)
	}
	return dem
}

func TestGraphFromDEM(t *testing.T) {
	dem := demFor(t, 3, 4, 1e-3)
	g := NewGraph(dem)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) == 0 {
		t.Fatal("empty decoding graph")
	}
	hasBoundary := false
	for _, e := range g.Edges {
		if e.V == Boundary {
			hasBoundary = true
		}
	}
	if !hasBoundary {
		t.Error("surface code decoding graph must have boundary edges")
	}
}

func TestUnionFindAnnihilatesSyndrome(t *testing.T) {
	// Sample shots and verify the correction's edge boundary equals the
	// flagged set: every correction must be a valid explanation.
	dem := demFor(t, 5, 5, 3e-3)
	g := NewGraph(dem)
	uf := NewUnionFind(g)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(5))
	for shot := 0; shot < 300; shot++ {
		flagged, _ := sampler.Shot(rng)
		correction := uf.DecodeToEdges(flagged)
		parity := map[int32]int{}
		for _, ei := range correction {
			e := g.Edges[ei]
			parity[e.U]++
			if e.V != Boundary {
				parity[e.V]++
			}
		}
		want := map[int32]bool{}
		for _, d := range flagged {
			want[d] = true
		}
		for det, n := range parity {
			if (n%2 == 1) != want[det] {
				t.Fatalf("shot %d: correction boundary mismatch at detector %d (deg %d, flagged %v)",
					shot, det, n, want[det])
			}
			delete(want, det)
		}
		for det := range want {
			t.Fatalf("shot %d: flagged detector %d left unexplained", shot, det)
		}
	}
}

func TestUnionFindEmptySyndrome(t *testing.T) {
	dem := demFor(t, 3, 3, 1e-3)
	uf := NewUnionFind(NewGraph(dem))
	if uf.DecodeToObs(nil) {
		t.Error("empty syndrome must predict no flip")
	}
}

func TestDecodersAgreeOnSimpleShots(t *testing.T) {
	// On low-weight syndromes the union-find, greedy, and exact decoders
	// should agree almost always; require exact match on weight <= 2.
	dem := demFor(t, 3, 4, 2e-3)
	g := NewGraph(dem)
	uf := NewUnionFind(g)
	ex := NewExact(g, 12)
	sampler := sim.NewSampler(dem)
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for shot := 0; shot < 2000 && checked < 200; shot++ {
		flagged, _ := sampler.Shot(rng)
		if len(flagged) == 0 || len(flagged) > 2 {
			continue
		}
		checked++
		if got, want := uf.DecodeToObs(flagged), ex.DecodeToObs(flagged); got != want {
			t.Errorf("shot %d (%v): union-find %v vs exact %v", shot, flagged, got, want)
		}
	}
	if checked == 0 {
		t.Fatal("no small syndromes sampled")
	}
}

func TestExactBeatsOrMatchesGreedy(t *testing.T) {
	// Decoding failure rates: exact must be at least as good as greedy,
	// and union-find in between (loose statistical check).
	dem := demFor(t, 3, 4, 8e-3)
	g := NewGraph(dem)
	decoders := map[string]sim.Decoder{
		"uf":     NewUnionFind(g),
		"greedy": NewGreedy(g),
		"exact":  NewExact(g, 14),
	}
	sampler := sim.NewSampler(dem)
	shots := 1500
	fails := map[string]int{}
	type shotData struct {
		flagged []int32
		obs     bool
	}
	rng := rand.New(rand.NewSource(3))
	var data []shotData
	for i := 0; i < shots; i++ {
		flagged, obs := sampler.Shot(rng)
		// Shot returns sampler-owned scratch; clone to keep it.
		data = append(data, shotData{slices.Clone(flagged), obs})
	}
	for name, dec := range decoders {
		for _, sd := range data {
			if dec.DecodeToObs(sd.flagged) != sd.obs {
				fails[name]++
			}
		}
	}
	if fails["exact"] > fails["greedy"]+25 {
		t.Errorf("exact (%d fails) should not lose badly to greedy (%d)", fails["exact"], fails["greedy"])
	}
	t.Logf("failures: uf=%d greedy=%d exact=%d of %d", fails["uf"], fails["greedy"], fails["exact"], shots)
}

func TestMemoryLogicalErrorScalesWithDistance(t *testing.T) {
	// The decisive end-to-end check of the whole stack: below threshold,
	// a d=5 code must fail less often than a d=3 code.
	model := noise.Uniform(4e-3)
	run := func(d int) float64 {
		c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
		res, err := sim.RunMemory(c, model, 4, 4000, lattice.ZCheck, UnionFindFactory(), 99)
		if err != nil {
			t.Fatal(err)
		}
		return res.LogicalErrorRate
	}
	p3, p5 := run(3), run(5)
	t.Logf("memory-Z failure rates: d=3 %.4f, d=5 %.4f", p3, p5)
	if p3 == 0 {
		t.Fatal("d=3 at p=4e-3 should show failures with 4000 shots")
	}
	if p5 >= p3 {
		t.Errorf("d=5 (%.4f) should beat d=3 (%.4f) below threshold", p5, p3)
	}
}

func TestDefectRemovalBeatsUntreated(t *testing.T) {
	// Miniature of fig. 11a: a 50%-error defect region destroys an
	// untreated d=5 code; the same code with defective qubits removed
	// (super-stabilizer structure) performs orders of magnitude better.
	defects := []lattice.Coord{{Row: 5, Col: 5}}
	nominal := noise.Uniform(1e-3)
	model := nominal.WithDefects(defects, noise.DefaultDefectRate)

	// Untreated: the hardware errors at 50% in the defect region but the
	// decoder keeps its nominal priors (nobody told it about the defect).
	untreated := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 5))
	resU, err := sim.RunMemoryMismatched(untreated, model, nominal, 4, 2000, lattice.ZCheck, UnionFindFactory(), 7)
	if err != nil {
		t.Fatal(err)
	}

	// Removed: deform the code by hand (DataQRM structure).
	treated := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, 5))
	q0 := defects[0]
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		var ids []int
		var prod pauli.Op
		for _, s := range treated.StabsOn(q0, typ) {
			prod = pauli.Mul(prod, s.Op)
			treated.RemoveStab(s.ID)
			ids = append(ids, treated.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
		}
		treated.AddSuperStab(prod.RestrictedTo(notQ0), ids)
	}
	if err := treated.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := treated.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	resT, err := sim.RunMemory(treated, model, 4, 2000, lattice.ZCheck, UnionFindFactory(), 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("untreated %.4f vs removed %.4f", resU.LogicalErrorRate, resT.LogicalErrorRate)
	if resT.LogicalErrorRate >= resU.LogicalErrorRate {
		t.Errorf("removal (%.4f) should beat untreated 50%% defect (%.4f)",
			resT.LogicalErrorRate, resU.LogicalErrorRate)
	}
}
