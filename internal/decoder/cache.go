package decoder

import (
	"sync"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

var (
	obsGraphCacheHits   = obs.Default().Counter("decoder.graph_cache.hits")
	obsGraphCacheMisses = obs.Default().Counter("decoder.graph_cache.misses")
)

// The graph cache memoizes NewGraph per DEM identity. The Monte-Carlo
// engine builds one decoder per worker from the same DEM; the decoder
// instances must be private (cluster growth and peeling scratch are
// mutable) but the decoding graph is immutable after construction, and
// building it is the expensive part of decoder construction. Keying on the
// *sim.DEM pointer works because sim.DEMCache returns a stable pointer per
// configuration; uncached DEMs simply miss and build, which is the
// pre-cache behavior.
var (
	graphCacheMu sync.Mutex
	graphCache   = make(map[*sim.DEM]*Graph)
)

// graphCacheLimit bounds the pointer-keyed cache; on overflow it resets
// wholesale, mirroring sim.DEMCache's eviction policy.
const graphCacheLimit = 256

// SharedGraph returns the decoding graph for the DEM, building it at most
// once per DEM identity. Safe for concurrent use; the returned graph is
// immutable and may be shared by any number of decoder instances.
func SharedGraph(dem *sim.DEM) *Graph {
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[dem]; ok {
		obsGraphCacheHits.Inc()
		return g
	}
	if len(graphCache) >= graphCacheLimit {
		graphCache = make(map[*sim.DEM]*Graph)
	}
	g := NewGraph(dem)
	graphCache[dem] = g
	obsGraphCacheMisses.Inc()
	return g
}
