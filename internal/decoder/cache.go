package decoder

import (
	"sync"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

var (
	obsGraphCacheHits   = obs.Default().Counter("decoder.graph_cache.hits")
	obsGraphCacheMisses = obs.Default().Counter("decoder.graph_cache.misses")
	obsGraphRederives   = obs.Default().Counter("decoder.graph.rederives")
)

// The graph cache memoizes NewGraph per DEM identity. The Monte-Carlo
// engine builds one decoder per worker from the same DEM; the decoder
// instances must be private (cluster growth and peeling scratch are
// mutable) but the decoding graph is immutable after construction, and
// building it is the expensive part of decoder construction. Keying on the
// *sim.DEM pointer works because sim.DEMCache returns a stable pointer per
// configuration; uncached DEMs simply miss and build, which is the
// pre-cache behavior.
var (
	graphCacheMu sync.Mutex
	graphCache   = make(map[*sim.DEM]*Graph)
)

// graphCacheLimit bounds the pointer-keyed cache; on overflow it resets
// wholesale, mirroring sim.DEMCache's eviction policy.
const graphCacheLimit = 256

// SharedGraph returns the decoding graph for the DEM, building it at most
// once per DEM identity. Safe for concurrent use; the returned graph is
// immutable and may be shared by any number of decoder instances.
func SharedGraph(dem *sim.DEM) *Graph {
	return SharedGraphFrom(dem, nil)
}

// SharedGraphFrom is SharedGraph with a structural fast path: on a cache
// miss, when base is a DEM sharing dem's patch core (sim.SamePatchCore —
// same mechanism/detector structure by construction) whose graph is
// already cached, the new graph is derived by replaying that graph's merge
// skeleton with dem's probabilities instead of re-running the full merge.
// The result is identical to NewGraph(dem) — rederive bails to the full
// build whenever it cannot guarantee that — and is cached like any other.
func SharedGraphFrom(dem, base *sim.DEM) *Graph {
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[dem]; ok {
		obsGraphCacheHits.Inc()
		return g
	}
	if len(graphCache) >= graphCacheLimit {
		graphCache = make(map[*sim.DEM]*Graph)
	}
	var g *Graph
	if base != nil && base != dem && sim.SamePatchCore(dem, base) {
		if bg, ok := graphCache[base]; ok {
			if g = bg.rederive(dem); g != nil {
				obsGraphRederives.Inc()
			}
		}
	}
	if g == nil {
		g = NewGraph(dem)
	}
	graphCache[dem] = g
	obsGraphCacheMisses.Inc()
	return g
}
