package decoder

import (
	"slices"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// Decode hot-path metrics: one atomic add per decode (pinned by
// TestDecodeZeroAllocs and the CI bench gate); truncations pay theirs only
// on the pathological path they count.
var (
	obsDecodes     = obs.Default().Counter("decoder.decodes")
	obsTruncations = obs.Default().Counter("decoder.truncations")
)

// UnionFind is a weighted union-find decoder (Delfosse–Nickerson): odd
// clusters grow uniformly along their frontier edges; fully grown edges
// merge clusters; clusters become inactive when their flagged-detector
// parity turns even or they touch the boundary. A peeling pass over each
// cluster's grown forest then produces a correction whose observable parity
// is the decoder's prediction.
//
// The implementation is allocation-free at steady state: every map the
// algorithm conceptually needs (active roots, frontier multiplicities,
// peeling visitation, parent edges, per-node incidence) is a flat array
// stamped with a monotonically increasing epoch, so nothing is cleared
// between shots — a stale entry is simply one whose stamp is not the
// current epoch. All scratch slices are preallocated at their worst-case
// bound in NewUnionFind, so a single decoder instance performs zero heap
// allocations per shot from the very first call.
type UnionFind struct {
	g *Graph

	parent   []int32
	parity   []int8 // flagged parity at root
	bound    []bool // cluster touches boundary (at root)
	growth   []float64
	grown    []bool
	absorbed []bool // node belongs to some cluster
	flag     []bool // peeling scratch

	touched []int32 // nodes absorbed this shot
	edges   []int32 // edge indices with non-zero growth this shot

	// epoch versions the stamped scratch below. It advances once per
	// growth iteration and once per peel, so a stamp matches only entries
	// written in the current pass; stale entries need no clearing.
	epoch      uint64
	rootSeen   []uint64 // per node: root deduped this growth iteration
	activeRoot []uint64 // per node: root is odd and boundary-free this iteration
	edgeSeen   []uint64 // per edge: on the frontier this iteration
	edgeSides  []uint8  // active sides of a frontier edge (valid per edgeSeen)
	visited    []uint64 // per node: reached by this shot's peeling BFS
	parentEdge []int32  // BFS tree edge into a node (valid per visited)
	incStamp   []uint64 // per node: incidence row built this peel
	incOff     []int32  // CSR row start into incList (valid per incStamp)
	incCur     []int32  // CSR fill cursor; row end after the fill pass
	incList    []int32  // backing array for per-shot incidence rows

	frontier []int64 // packed int64(ei)<<2|sides keys, sorted per iteration
	order    []int32 // peeling BFS order; doubles as the BFS queue
	corr     []int32 // correction scratch returned by DecodeToEdges

	// Truncations counts shots whose syndrome the decoder failed to
	// annihilate: after peeling, a cluster root still carried a flag, so
	// the returned correction is partial. This can only happen on
	// pathological graphs (a flagged detector with no incident edges, or
	// the growth-iteration guard tripping) and is surfaced here instead
	// of being silently swallowed.
	Truncations int
}

// NewUnionFind builds a union-find decoder over the graph. All scratch is
// preallocated at worst-case bounds so decoding never allocates.
func NewUnionFind(g *Graph) *UnionFind {
	n := g.NumDets
	m := len(g.Edges)
	u := &UnionFind{
		g:        g,
		parent:   make([]int32, n),
		parity:   make([]int8, n),
		bound:    make([]bool, n),
		growth:   make([]float64, m),
		grown:    make([]bool, m),
		absorbed: make([]bool, n),
		flag:     make([]bool, n),

		touched: make([]int32, 0, n),
		edges:   make([]int32, 0, m),

		rootSeen:   make([]uint64, n),
		activeRoot: make([]uint64, n),
		edgeSeen:   make([]uint64, m),
		edgeSides:  make([]uint8, m),
		visited:    make([]uint64, n),
		parentEdge: make([]int32, n),
		incStamp:   make([]uint64, n),
		incOff:     make([]int32, n),
		incCur:     make([]int32, n),
		incList:    make([]int32, 2*m),

		frontier: make([]int64, 0, m),
		order:    make([]int32, 0, n),
		corr:     make([]int32, 0, n),
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// UnionFindFactory adapts the decoder to the sim.DecoderFactory interface.
func UnionFindFactory() sim.DecoderFactory {
	return func(dem *sim.DEM) (sim.Decoder, error) {
		g := SharedGraph(dem)
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return NewUnionFind(g), nil
	}
}

var (
	_ sim.Decoder           = (*UnionFind)(nil)
	_ sim.TruncationCounter = (*UnionFind)(nil)
)

// TruncationCount implements sim.TruncationCounter: the number of decoded
// shots whose syndrome could not be fully annihilated (see Truncations).
func (u *UnionFind) TruncationCount() int { return u.Truncations }

func (u *UnionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *UnionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	u.parent[rb] = ra
	u.parity[ra] = (u.parity[ra] + u.parity[rb]) % 2
	u.bound[ra] = u.bound[ra] || u.bound[rb]
}

func (u *UnionFind) absorb(n int32) {
	if !u.absorbed[n] {
		u.absorbed[n] = true
		u.touched = append(u.touched, n)
	}
}

// DecodeToObs decodes one shot and predicts the logical observable flip.
func (u *UnionFind) DecodeToObs(flagged []int32) bool {
	edgeSet := u.DecodeToEdges(flagged)
	obs := false
	for _, ei := range edgeSet {
		if u.g.Edges[ei].Obs {
			obs = !obs
		}
	}
	return obs
}

// DecodeToEdges decodes one shot and returns the correction edge set. The
// correction annihilates the syndrome — its edge-set boundary equals the
// flagged set modulo the virtual boundary node — except on pathological
// graphs, where the truncation is counted in Truncations instead of being
// silently dropped.
//
// The returned slice is owned by the decoder and valid only until the next
// Decode* call; clone it to retain it.
func (u *UnionFind) DecodeToEdges(flagged []int32) []int32 {
	obsDecodes.Inc()
	if len(flagged) == 0 {
		return nil
	}
	defer u.reset()
	for _, d := range flagged {
		u.absorb(d)
		u.parity[d] = 1
	}

	maxIter := 4 * len(u.g.Edges)
	for iter := 0; iter <= maxIter; iter++ {
		if u.markActive() == 0 {
			break
		}
		minStep := u.gatherFrontier()
		if len(u.frontier) == 0 {
			break
		}
		// Process the frontier in ascending edge order: the packed keys
		// sort by edge index first, so the union/absorb sequence — and
		// therefore Monte-Carlo failure counts — is deterministic.
		slices.Sort(u.frontier)
		for _, key := range u.frontier {
			ei := int32(key >> 2)
			sides := float64(key & 3)
			if u.growth[ei] == 0 {
				u.edges = append(u.edges, ei)
			}
			u.growth[ei] += minStep * sides
			if u.growth[ei] >= u.g.Edges[ei].Weight-1e-12 && !u.grown[ei] {
				u.grown[ei] = true
				e := u.g.Edges[ei]
				if e.V == Boundary {
					u.absorb(e.U)
					u.bound[u.find(e.U)] = true
				} else {
					u.absorb(e.U)
					u.absorb(e.V)
					u.union(e.U, e.V)
				}
			}
		}
	}
	if u.peel(flagged) > 0 {
		u.Truncations++
		obsTruncations.Inc()
	}
	return u.corr
}

// markActive stamps the roots of odd, boundary-free clusters with a fresh
// epoch and returns how many there are.
func (u *UnionFind) markActive() int {
	u.epoch++
	e := u.epoch
	active := 0
	for _, n := range u.touched {
		r := u.find(n)
		if u.rootSeen[r] == e {
			continue
		}
		u.rootSeen[r] = e
		if u.parity[r] == 1 && !u.bound[r] {
			u.activeRoot[r] = e
			active++
		}
	}
	return active
}

// gatherFrontier collects the non-grown edges incident to active clusters
// into u.frontier as packed int64(ei)<<2|sides keys, where sides is the
// number of active sides (an edge grown from both sides completes twice as
// fast, capped at 2). It returns the uniform growth step: the smallest
// remaining weight over the frontier at the per-edge growth rate.
func (u *UnionFind) gatherFrontier() float64 {
	e := u.epoch
	u.frontier = u.frontier[:0]
	for _, n := range u.touched {
		if u.activeRoot[u.find(n)] != e {
			continue
		}
		for _, ei := range u.g.Adj(n) {
			if u.grown[ei] {
				continue
			}
			if u.edgeSeen[ei] != e {
				u.edgeSeen[ei] = e
				u.edgeSides[ei] = 1
				u.frontier = append(u.frontier, int64(ei))
			} else {
				u.edgeSides[ei]++
			}
		}
	}
	minStep := -1.0
	for i, key := range u.frontier {
		ei := int32(key)
		sides := u.edgeSides[ei]
		if sides > 2 {
			sides = 2
		}
		rem := (u.g.Edges[ei].Weight - u.growth[ei]) / float64(sides)
		if minStep < 0 || rem < minStep {
			minStep = rem
		}
		u.frontier[i] = int64(ei)<<2 | int64(sides)
	}
	return minStep
}

// peel extracts a correction from the grown forest into u.corr: BFS builds
// a spanning forest rooted at boundary attachments (where present) or at
// arbitrary cluster nodes, then leaves are peeled inward, emitting an edge
// whenever the leaf carries a flag. It returns the number of leftover
// flags — cluster roots still flagged after peeling, i.e. syndrome mass
// the correction failed to annihilate.
func (u *UnionFind) peel(flagged []int32) int {
	u.epoch++
	e := u.epoch
	u.corr = u.corr[:0]

	// Per-shot incidence over grown edges as a CSR index into u.incList.
	// Every endpoint of a grown edge is in u.touched (absorb runs when an
	// edge completes), so offsets can be assigned by walking touched.
	for _, ei := range u.edges {
		if !u.grown[ei] {
			continue
		}
		ed := u.g.Edges[ei]
		u.bumpDeg(ed.U, e)
		if ed.V != Boundary {
			u.bumpDeg(ed.V, e)
		}
	}
	off := int32(0)
	for _, n := range u.touched {
		if u.incStamp[n] != e {
			continue
		}
		deg := u.incCur[n]
		u.incOff[n] = off
		u.incCur[n] = off
		off += deg
	}
	for _, ei := range u.edges {
		if !u.grown[ei] {
			continue
		}
		ed := u.g.Edges[ei]
		u.incList[u.incCur[ed.U]] = ei
		u.incCur[ed.U]++
		if ed.V != Boundary {
			u.incList[u.incCur[ed.V]] = ei
			u.incCur[ed.V]++
		}
	}

	u.order = u.order[:0]
	head := 0
	bfs := func() {
		for head < len(u.order) {
			n := u.order[head]
			head++
			if u.incStamp[n] != e {
				continue // no grown incident edges (isolated cluster root)
			}
			for _, ei := range u.incList[u.incOff[n]:u.incCur[n]] {
				ed := u.g.Edges[ei]
				other := ed.U
				if other == n {
					other = ed.V
				}
				if other == Boundary || u.visited[other] == e {
					continue
				}
				u.visited[other] = e
				u.parentEdge[other] = ei
				u.order = append(u.order, other)
			}
		}
	}
	// Components with boundary attachments are rooted at the boundary:
	// exhaust their BFS first so leftover flags drain into the boundary.
	for _, ei := range u.edges {
		ed := u.g.Edges[ei]
		if u.grown[ei] && ed.V == Boundary && u.visited[ed.U] != e {
			u.visited[ed.U] = e
			u.parentEdge[ed.U] = ei
			u.order = append(u.order, ed.U)
		}
	}
	bfs()
	// Remaining components (even parity): one root each, explored fully
	// before the next root is opened so the forest structure is real.
	for _, n := range u.touched {
		if u.visited[n] != e {
			u.visited[n] = e
			u.parentEdge[n] = -1
			u.order = append(u.order, n)
			bfs()
		}
	}

	for _, d := range flagged {
		u.flag[d] = true
	}
	leftover := 0
	for i := len(u.order) - 1; i >= 0; i-- {
		n := u.order[i]
		if !u.flag[n] {
			continue
		}
		ei := u.parentEdge[n]
		if ei < 0 {
			// A flagged forest root: its cluster's syndrome parity could
			// not be drained (odd parity with no boundary), so part of
			// the syndrome survives the correction.
			leftover++
			continue
		}
		u.corr = append(u.corr, ei)
		u.flag[n] = false
		ed := u.g.Edges[ei]
		other := ed.U
		if other == n {
			other = ed.V
		}
		if other != Boundary {
			u.flag[other] = !u.flag[other]
		}
	}
	for _, d := range flagged {
		u.flag[d] = false
	}
	for _, n := range u.touched {
		u.flag[n] = false
	}
	return leftover
}

// bumpDeg counts one incidence for node n under epoch e, initializing the
// node's counter on first touch this peel.
func (u *UnionFind) bumpDeg(n int32, e uint64) {
	if u.incStamp[n] != e {
		u.incStamp[n] = e
		u.incCur[n] = 0
	}
	u.incCur[n]++
}

func (u *UnionFind) reset() {
	for _, n := range u.touched {
		u.parent[n] = n
		u.parity[n] = 0
		u.bound[n] = false
		u.absorbed[n] = false
	}
	for _, ei := range u.edges {
		u.growth[ei] = 0
		u.grown[ei] = false
	}
	u.touched = u.touched[:0]
	u.edges = u.edges[:0]
}
