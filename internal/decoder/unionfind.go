package decoder

import (
	"sort"

	"surfdeformer/internal/sim"
)

// UnionFind is a weighted union-find decoder (Delfosse–Nickerson): odd
// clusters grow uniformly along their frontier edges; fully grown edges
// merge clusters; clusters become inactive when their flagged-detector
// parity turns even or they touch the boundary. A peeling pass over each
// cluster's grown forest then produces a correction whose observable parity
// is the decoder's prediction.
//
// The implementation favours clarity and per-shot locality: all state it
// touches during a shot is recorded and reset afterwards, so a single
// decoder instance amortizes allocation across millions of shots.
type UnionFind struct {
	g *Graph

	parent   []int32
	parity   []int8 // flagged parity at root
	bound    []bool // cluster touches boundary (at root)
	growth   []float64
	grown    []bool
	absorbed []bool // node belongs to some cluster
	flag     []bool // peeling scratch

	touched []int32 // nodes absorbed this shot
	edges   []int32 // edge indices with non-zero growth this shot
}

// NewUnionFind builds a union-find decoder over the graph.
func NewUnionFind(g *Graph) *UnionFind {
	n := g.NumDets
	u := &UnionFind{
		g:        g,
		parent:   make([]int32, n),
		parity:   make([]int8, n),
		bound:    make([]bool, n),
		growth:   make([]float64, len(g.Edges)),
		grown:    make([]bool, len(g.Edges)),
		absorbed: make([]bool, n),
		flag:     make([]bool, n),
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// UnionFindFactory adapts the decoder to the sim.DecoderFactory interface.
func UnionFindFactory() sim.DecoderFactory {
	return func(dem *sim.DEM) (sim.Decoder, error) {
		g := SharedGraph(dem)
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return NewUnionFind(g), nil
	}
}

var _ sim.Decoder = (*UnionFind)(nil)

func (u *UnionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *UnionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	u.parent[rb] = ra
	u.parity[ra] = (u.parity[ra] + u.parity[rb]) % 2
	u.bound[ra] = u.bound[ra] || u.bound[rb]
}

func (u *UnionFind) absorb(n int32) {
	if !u.absorbed[n] {
		u.absorbed[n] = true
		u.touched = append(u.touched, n)
	}
}

// DecodeToObs decodes one shot and predicts the logical observable flip.
func (u *UnionFind) DecodeToObs(flagged []int32) bool {
	edgeSet := u.DecodeToEdges(flagged)
	obs := false
	for _, ei := range edgeSet {
		if u.g.Edges[ei].Obs {
			obs = !obs
		}
	}
	return obs
}

// DecodeToEdges decodes one shot and returns the correction edge set. The
// correction always annihilates the syndrome: its edge-set boundary equals
// the flagged set modulo the virtual boundary node.
func (u *UnionFind) DecodeToEdges(flagged []int32) []int32 {
	if len(flagged) == 0 {
		return nil
	}
	defer u.reset()
	for _, d := range flagged {
		u.absorb(d)
		u.parity[d] = 1
	}

	for iter := 0; ; iter++ {
		roots := u.activeRoots()
		if len(roots) == 0 || iter > 4*len(u.g.Edges) {
			break
		}
		isActive := map[int32]bool{}
		for _, r := range roots {
			isActive[r] = true
		}
		// Gather the frontier: non-grown edges incident to active clusters,
		// with the number of active sides (an edge grown from both sides
		// completes twice as fast).
		type frontierEdge struct {
			ei    int32
			sides float64
		}
		seen := map[int32]float64{}
		for _, n := range u.touched {
			if !isActive[u.find(n)] {
				continue
			}
			for _, ei := range u.g.adj[n] {
				if u.grown[ei] {
					continue
				}
				seen[ei]++
			}
		}
		if len(seen) == 0 {
			break
		}
		var frontier []frontierEdge
		minStep := -1.0
		for ei, sides := range seen {
			if sides > 2 {
				sides = 2
			}
			rem := (u.g.Edges[ei].Weight - u.growth[ei]) / sides
			if minStep < 0 || rem < minStep {
				minStep = rem
			}
			frontier = append(frontier, frontierEdge{ei, sides})
		}
		// Process the frontier in edge order: `seen` is a map and its
		// iteration order would otherwise leak into the union/absorb
		// sequence, making corrections — and therefore Monte-Carlo failure
		// counts — nondeterministic between identical runs.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].ei < frontier[j].ei })
		for _, fe := range frontier {
			if u.growth[fe.ei] == 0 {
				u.edges = append(u.edges, fe.ei)
			}
			u.growth[fe.ei] += minStep * fe.sides
			if u.growth[fe.ei] >= u.g.Edges[fe.ei].Weight-1e-12 && !u.grown[fe.ei] {
				u.grown[fe.ei] = true
				e := u.g.Edges[fe.ei]
				if e.V == Boundary {
					u.absorb(e.U)
					u.bound[u.find(e.U)] = true
				} else {
					u.absorb(e.U)
					u.absorb(e.V)
					u.union(e.U, e.V)
				}
			}
		}
	}
	return u.peel(flagged)
}

// activeRoots returns the roots of odd, boundary-free clusters.
func (u *UnionFind) activeRoots() []int32 {
	seen := map[int32]bool{}
	var roots []int32
	for _, n := range u.touched {
		r := u.find(n)
		if seen[r] {
			continue
		}
		seen[r] = true
		if u.parity[r] == 1 && !u.bound[r] {
			roots = append(roots, r)
		}
	}
	return roots
}

// peel extracts a correction from the grown forest: BFS builds a spanning
// forest rooted at boundary attachments (where present) or at arbitrary
// cluster nodes, then leaves are peeled inward, emitting an edge whenever
// the leaf carries a flag.
func (u *UnionFind) peel(flagged []int32) []int32 {
	incident := map[int32][]int32{}
	for _, ei := range u.edges {
		if !u.grown[ei] {
			continue
		}
		e := u.g.Edges[ei]
		incident[e.U] = append(incident[e.U], ei)
		if e.V != Boundary {
			incident[e.V] = append(incident[e.V], ei)
		}
	}
	visited := map[int32]bool{}
	parentEdge := map[int32]int32{}
	var order []int32
	bfs := func(seeds []int32) {
		queue := seeds
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			order = append(order, n)
			for _, ei := range incident[n] {
				e := u.g.Edges[ei]
				other := e.U
				if other == n {
					other = e.V
				}
				if other == Boundary || visited[other] {
					continue
				}
				visited[other] = true
				parentEdge[other] = ei
				queue = append(queue, other)
			}
		}
	}
	// Components with boundary attachments are rooted at the boundary:
	// exhaust their BFS first so leftover flags drain into the boundary.
	var seeds []int32
	for _, ei := range u.edges {
		e := u.g.Edges[ei]
		if u.grown[ei] && e.V == Boundary && !visited[e.U] {
			visited[e.U] = true
			parentEdge[e.U] = ei
			seeds = append(seeds, e.U)
		}
	}
	bfs(seeds)
	// Remaining components (even parity): one root each, explored fully
	// before the next root is opened so the forest structure is real.
	for _, n := range u.touched {
		if !visited[n] {
			visited[n] = true
			parentEdge[n] = -1
			bfs([]int32{n})
		}
	}
	for _, d := range flagged {
		u.flag[d] = true
	}
	var correction []int32
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if !u.flag[n] {
			continue
		}
		ei := parentEdge[n]
		if ei < 0 {
			continue // cluster root with leftover flag: even-parity cluster
		}
		correction = append(correction, ei)
		u.flag[n] = false
		e := u.g.Edges[ei]
		other := e.U
		if other == n {
			other = e.V
		}
		if other != Boundary {
			u.flag[other] = !u.flag[other]
		}
	}
	for _, d := range flagged {
		u.flag[d] = false
	}
	for _, n := range u.touched {
		u.flag[n] = false
	}
	return correction
}

func (u *UnionFind) reset() {
	for _, n := range u.touched {
		u.parent[n] = n
		u.parity[n] = 0
		u.bound[n] = false
		u.absorbed[n] = false
	}
	for _, ei := range u.edges {
		u.growth[ei] = 0
		u.grown[ei] = false
	}
	u.touched = u.touched[:0]
	u.edges = u.edges[:0]
}
