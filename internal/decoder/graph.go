// Package decoder implements syndrome decoders over decoding graphs derived
// from detector error models: a weighted union-find decoder (the
// Delfosse–Nickerson almost-linear-time near-MWPM decoder used in place of
// the paper's PyMatching), a greedy pairwise matcher, and an exact
// minimum-weight perfect matching for small syndromes used to validate the
// others.
package decoder

import (
	"fmt"
	"math"
	"sort"

	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
)

// Graph-construction metrics. Clamped/dropped edges aggregate across a
// whole sweep here (the per-Graph ints only describe one build), feeding
// the end-of-run silent-degradation warning.
var (
	obsGraphBuilds  = obs.Default().Counter("decoder.graph.builds")
	obsGraphClamped = obs.Default().Counter("decoder.graph.edges_clamped")
	obsGraphDropped = obs.Default().Counter("decoder.graph.edges_dropped")
)

// Boundary is the virtual boundary node index in decoding graphs.
const Boundary = -1

// Edge is one decoding-graph edge: an error mechanism connecting two
// detectors (or one detector and the boundary) with weight -log(p/(1-p))
// and a flag telling whether the mechanism flips the logical observable.
type Edge struct {
	U, V   int32 // V == Boundary for boundary edges
	Weight float64
	Obs    bool
	P      float64
}

// Graph is a decoding graph over the detectors of one DEM.
type Graph struct {
	NumDets int
	Edges   []Edge
	// CSR adjacency: the edge indices incident to detector d are
	// adjList[adjOff[d]:adjOff[d+1]]. One flat backing array keeps the
	// per-shot frontier scan cache-friendly and allocation-free; built
	// once by buildAdj after the edge list is final.
	adjOff  []int32
	adjList []int32
	// Decomposed counts mechanisms with more than two detectors that were
	// split into edge chains; FreeLogicalP accumulates the probability mass
	// of mechanisms that flip the observable without touching any detector
	// (irreducible failures no decoder can see).
	Decomposed   int
	FreeLogicalP float64
	// Clamped counts edges whose merged probability reached ½ and was
	// clamped to MaxEdgeProb; Dropped counts merged edges discarded for a
	// non-positive probability. Both are zero on nominal DEMs but reachable
	// once reweighted decode priors elevate edge rates toward ½ — surfaced
	// so consumers can see how much of the prior the graph could not
	// represent instead of losing it silently.
	Clamped int
	Dropped int

	// skel records how this graph's edges were merged from DEM mechanisms,
	// enabling rederive to produce the graph of a structurally identical
	// DEM (same mechanism set, different probabilities) without re-running
	// the merge. Nil when any merged edge was dropped: a drop depends on
	// probabilities, so the edge set itself would no longer be structural.
	skel *graphSkel
}

// skelContrib is one mechanism's contribution to a merged edge: the
// mechanism supplies the probability at replay time, obs is the flag the
// original addPair carried (false for the non-leading pairs of a
// decomposed mechanism).
type skelContrib struct {
	mech int32
	obs  bool
}

// graphSkel is the merge skeleton: per emitted edge (CSR via edgeOff) the
// mechanism contributions in original merge order, plus the mechanisms
// folded into FreeLogicalP.
type graphSkel struct {
	nMechs   int
	edgeOff  []int32
	contribs []skelContrib
	free     []int32
}

// MaxEdgeProb is the edge-probability ceiling of the decoding graph. An
// error mechanism at p ≥ ½ has a non-positive log-likelihood weight
// -log(p/(1-p)), which the union-find growth model cannot represent, so
// such edges are clamped just below ½: "this edge is (almost) free to
// traverse". The count of clamps is reported in Graph.Clamped.
const MaxEdgeProb = 0.4999

// NewGraph converts a DEM into a decoding graph. Mechanisms touching more
// than two detectors are decomposed into consecutive pairs (detector IDs
// are round-ordered, so consecutive pairing follows the space-time layout).
func NewGraph(dem *sim.DEM) *Graph {
	g := &Graph{NumDets: dem.NumDets}
	type key struct{ u, v int32 }
	type accEnt struct {
		e        Edge
		contribs []skelContrib
	}
	acc := map[key]*accEnt{}
	var free []int32
	addPair := func(u, v int32, p float64, obs bool, mech int32) {
		// Canonical order: boundary always in V, otherwise ascending.
		if u == Boundary {
			u, v = v, u
		}
		if v != Boundary && u > v {
			u, v = v, u
		}
		if u == Boundary {
			return // boundary-boundary mechanisms carry no decodable info
		}
		k := key{u, v}
		if ent, ok := acc[k]; ok {
			// Merge parallel mechanisms; keep the dominant observable flag.
			e := &ent.e
			newP := e.P + p - 2*e.P*p
			if p > e.P {
				e.Obs = obs
			}
			e.P = newP
			ent.contribs = append(ent.contribs, skelContrib{mech: mech, obs: obs})
			return
		}
		acc[k] = &accEnt{
			e:        Edge{U: u, V: v, Obs: obs, P: p},
			contribs: []skelContrib{{mech: mech, obs: obs}},
		}
	}
	for mi, m := range dem.Mechs {
		mech := int32(mi)
		switch len(m.Dets) {
		case 0:
			if m.Obs {
				g.FreeLogicalP = g.FreeLogicalP + m.P - 2*g.FreeLogicalP*m.P
				free = append(free, mech)
			}
		case 1:
			addPair(m.Dets[0], Boundary, m.P, m.Obs, mech)
		case 2:
			addPair(m.Dets[0], m.Dets[1], m.P, m.Obs, mech)
		default:
			g.Decomposed++
			// Pair consecutive detectors; attach the observable flip to the
			// first pair only (the decomposition keeps total parity).
			for i := 0; i+1 < len(m.Dets); i += 2 {
				addPair(m.Dets[i], m.Dets[i+1], m.P, m.Obs && i == 0, mech)
			}
			if len(m.Dets)%2 == 1 {
				addPair(m.Dets[len(m.Dets)-1], Boundary, m.P, false, mech)
			}
		}
	}
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	sk := &graphSkel{nMechs: len(dem.Mechs), edgeOff: make([]int32, 0, len(keys)+1), free: free}
	sk.edgeOff = append(sk.edgeOff, 0)
	for _, k := range keys {
		ent := acc[k]
		e := ent.e
		p := e.P
		if p <= 0 {
			g.Dropped++
			continue
		}
		if p >= 0.5 {
			g.Clamped++
			p = MaxEdgeProb
		}
		e.Weight = math.Log((1 - p) / p)
		g.Edges = append(g.Edges, e)
		sk.contribs = append(sk.contribs, ent.contribs...)
		sk.edgeOff = append(sk.edgeOff, int32(len(sk.contribs)))
	}
	if g.Dropped == 0 {
		g.skel = sk
	}
	g.buildAdj()
	obsGraphBuilds.Inc()
	obsGraphClamped.Add(int64(g.Clamped))
	obsGraphDropped.Add(int64(g.Dropped))
	return g
}

// rederive builds the decoding graph of dem by replaying this graph's
// merge skeleton with dem's mechanism probabilities — identical output to
// NewGraph(dem) whenever dem shares this graph's DEM structure (same
// mechanism detector sets in the same order, probabilities free to
// differ). The CSR adjacency and the skeleton itself are shared with the
// template: both are pure functions of the edge endpoints. Returns nil —
// caller falls back to NewGraph — when no skeleton was recorded, the
// detector count differs, or a replayed probability reaches a regime the
// template never saw (a drop, which changes the edge set).
func (g *Graph) rederive(dem *sim.DEM) *Graph {
	sk := g.skel
	if sk == nil || dem.NumDets != g.NumDets || len(dem.Mechs) != sk.nMechs {
		return nil
	}
	ng := &Graph{
		NumDets:    g.NumDets,
		Edges:      make([]Edge, len(g.Edges)),
		adjOff:     g.adjOff,
		adjList:    g.adjList,
		Decomposed: g.Decomposed,
		skel:       sk,
	}
	for _, mi := range sk.free {
		p := dem.Mechs[mi].P
		ng.FreeLogicalP = ng.FreeLogicalP + p - 2*ng.FreeLogicalP*p
	}
	for ei := range g.Edges {
		e := g.Edges[ei]
		accP, accObs := 0.0, false
		for ci := sk.edgeOff[ei]; ci < sk.edgeOff[ei+1]; ci++ {
			c := sk.contribs[ci]
			p := dem.Mechs[c.mech].P
			if ci == sk.edgeOff[ei] {
				accP, accObs = p, c.obs
				continue
			}
			if p > accP {
				accObs = c.obs
			}
			accP = accP + p - 2*accP*p
		}
		if accP <= 0 {
			return nil // this probability regime drops the edge: not structural
		}
		e.Obs = accObs
		e.P = accP
		if accP >= 0.5 {
			ng.Clamped++
			accP = MaxEdgeProb
		}
		e.Weight = math.Log((1 - accP) / accP)
		ng.Edges[ei] = e
	}
	obsGraphClamped.Add(int64(ng.Clamped))
	return ng
}

// buildAdj (re)builds the CSR adjacency index from Edges. Rows list edge
// indices in ascending order because the fill pass walks Edges in order.
func (g *Graph) buildAdj() {
	g.adjOff = make([]int32, g.NumDets+1)
	for _, e := range g.Edges {
		if e.U != Boundary {
			g.adjOff[e.U+1]++
		}
		if e.V != Boundary {
			g.adjOff[e.V+1]++
		}
	}
	for i := 0; i < g.NumDets; i++ {
		g.adjOff[i+1] += g.adjOff[i]
	}
	g.adjList = make([]int32, g.adjOff[g.NumDets])
	cur := make([]int32, g.NumDets)
	for i, e := range g.Edges {
		if e.U != Boundary {
			g.adjList[g.adjOff[e.U]+cur[e.U]] = int32(i)
			cur[e.U]++
		}
		if e.V != Boundary {
			g.adjList[g.adjOff[e.V]+cur[e.V]] = int32(i)
			cur[e.V]++
		}
	}
}

// Adj returns the edge indices incident to detector d.
func (g *Graph) Adj(d int32) []int32 { return g.adjList[g.adjOff[d]:g.adjOff[d+1]] }

// Validate performs structural checks used by tests.
func (g *Graph) Validate() error {
	for i, e := range g.Edges {
		if e.U == Boundary && e.V == Boundary {
			return fmt.Errorf("decoder: edge %d connects boundary to boundary", i)
		}
		if e.Weight < 0 {
			return fmt.Errorf("decoder: edge %d has negative weight", i)
		}
	}
	return nil
}
