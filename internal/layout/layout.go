// Package layout implements the compile-time layout generator (§VI): it
// arranges N logical qubits on a grid of surface-code patches, chooses the
// extra inter-space Δd from the defect error model via the paper's Eq. 1,
// and accounts physical qubits for each scheme under comparison.
package layout

import (
	"fmt"
	"math"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/lattice"
)

// Scheme identifies the layout policies compared in the paper.
type Scheme int

const (
	// SurfDeformer uses inter-space d+Δd: a d-wide communication channel
	// plus Δd growth allowance (fig. 10a).
	SurfDeformer Scheme = iota
	// ASCS uses inter-space d (no growth ever happens; defects only shrink
	// patches).
	ASCS
	// Q3DE uses inter-space d on a fixed layout; its 2× enlargement
	// therefore blocks the surrounding channels (fig. 10b).
	Q3DE
	// Q3DEStar is the revised Q3DE with inter-space 2d so that doubling
	// never blocks communication (fig. 10c).
	Q3DEStar
	// LatticeSurgery is the defect-oblivious baseline with inter-space d.
	LatticeSurgery
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SurfDeformer:
		return "surf-deformer"
	case ASCS:
		return "asc-s"
	case Q3DE:
		return "q3de"
	case Q3DEStar:
		return "q3de*"
	case LatticeSurgery:
		return "lattice-surgery"
	}
	return "invalid"
}

// Layout is a concrete placement of N logical patches.
type Layout struct {
	Scheme Scheme
	N      int // logical qubits (algorithmic + magic-state)
	D      int // code distance
	DeltaD int // growth allowance (Surf-Deformer only)

	Rows, Cols int
	// Spacing is the inter-patch spacing in data-cell units.
	Spacing int
}

// New builds a layout for the scheme. deltaD is only meaningful for
// SurfDeformer; other schemes derive their spacing from d.
func New(scheme Scheme, n, d, deltaD int) *Layout {
	if n < 1 || d < 2 {
		panic(fmt.Sprintf("layout: invalid n=%d d=%d", n, d))
	}
	l := &Layout{Scheme: scheme, N: n, D: d, DeltaD: deltaD}
	switch scheme {
	case SurfDeformer:
		l.Spacing = d + deltaD
	case Q3DEStar:
		l.Spacing = 2 * d
	default:
		l.Spacing = d
		l.DeltaD = 0
	}
	l.Cols = int(math.Ceil(math.Sqrt(float64(n))))
	l.Rows = (n + l.Cols - 1) / l.Cols
	return l
}

// Pitch returns the tile pitch in data-cell units: patch edge plus spacing.
func (l *Layout) Pitch() int { return l.D + l.Spacing }

// PhysicalQubits counts the physical qubits of the full layout: every tile
// covers Pitch² data cells at ≈2 physical qubits per cell (data + one
// syndrome qubit per plaquette).
func (l *Layout) PhysicalQubits() int {
	return 2 * l.N * l.Pitch() * l.Pitch()
}

// PatchOrigin returns the lattice origin of patch i (row-major placement).
func (l *Layout) PatchOrigin(i int) lattice.Coord {
	if i < 0 || i >= l.N {
		panic(fmt.Sprintf("layout: patch index %d out of range", i))
	}
	r, c := i/l.Cols, i%l.Cols
	return lattice.Coord{Row: 2 * l.Pitch() * r, Col: 2 * l.Pitch() * c}
}

// PatchCell returns the grid cell of patch i.
func (l *Layout) PatchCell(i int) (row, col int) { return i / l.Cols, i % l.Cols }

// GrowthBudget returns the per-side enlargement allowance in layers.
// Surf-Deformer reserves Δd; Q3DE's doubling is d layers (but blocks
// channels on the fixed layout); the others never grow.
func (l *Layout) GrowthBudget() int {
	switch l.Scheme {
	case SurfDeformer:
		return l.DeltaD
	case Q3DE, Q3DEStar:
		return l.D
	default:
		return 0
	}
}

// ChooseDeltaD returns the smallest Δd whose blocking probability under the
// defect model stays below alphaBlock (the paper's Eq. 1). The Poisson
// parameter is λ = 2d²·ρ·T with T the defect duration window; defectSize D
// is the per-event enlargement demand.
func ChooseDeltaD(m *defect.Model, d int, alphaBlock float64) int {
	nQubits := 2 * d * d
	window := float64(m.DurationCycles) * m.CycleSeconds
	lambda := m.PoissonLambda(nQubits, window)
	defectSize := 2 * m.Radius // a radius-2 event spans ≈4 data columns
	for deltaD := defectSize; deltaD <= 8*d; deltaD += 1 {
		if defect.PBlock(lambda, deltaD, defectSize) < alphaBlock {
			return deltaD
		}
	}
	return 8 * d
}

// DefaultAlphaBlock is the paper's example blocking threshold (1%).
const DefaultAlphaBlock = 0.01
