package layout

import (
	"testing"

	"surfdeformer/internal/defect"
)

func TestNewLayoutSpacing(t *testing.T) {
	cases := []struct {
		scheme  Scheme
		spacing int
	}{
		{SurfDeformer, 19 + 4},
		{ASCS, 19},
		{Q3DE, 19},
		{Q3DEStar, 38},
		{LatticeSurgery, 19},
	}
	for _, tc := range cases {
		l := New(tc.scheme, 100, 19, 4)
		if l.Spacing != tc.spacing {
			t.Errorf("%v spacing = %d, want %d", tc.scheme, l.Spacing, tc.spacing)
		}
	}
}

func TestPhysicalQubitRatios(t *testing.T) {
	// Table II: Surf-Deformer uses about (2d+Δd)²/(2d)² ≈ 1.22× the qubits
	// of ASC-S at d=19, Δd=4; Q3DE* uses (3d)²/(2d+Δd)² ≈ 1.84× Surf.
	d, dd, n := 19, 4, 400
	surf := New(SurfDeformer, n, d, dd).PhysicalQubits()
	asc := New(ASCS, n, d, dd).PhysicalQubits()
	star := New(Q3DEStar, n, d, dd).PhysicalQubits()
	ratio := float64(surf) / float64(asc)
	if ratio < 1.15 || ratio > 1.3 {
		t.Errorf("Surf/ASC qubit ratio %.3f, want ≈1.22", ratio)
	}
	ratio = float64(star) / float64(surf)
	if ratio < 1.7 || ratio > 2.0 {
		t.Errorf("Q3DE*/Surf qubit ratio %.3f, want ≈1.84", ratio)
	}
}

func TestGridShape(t *testing.T) {
	l := New(SurfDeformer, 10, 5, 2)
	if l.Rows*l.Cols < 10 {
		t.Errorf("grid %dx%d cannot host 10 patches", l.Rows, l.Cols)
	}
	seen := map[[2]int]bool{}
	for i := 0; i < l.N; i++ {
		r, c := l.PatchCell(i)
		if seen[[2]int{r, c}] {
			t.Error("duplicate patch cell")
		}
		seen[[2]int{r, c}] = true
		origin := l.PatchOrigin(i)
		if origin.Row%2 != 0 || origin.Col%2 != 0 {
			t.Errorf("patch origin %v must be even-even", origin)
		}
	}
}

func TestChooseDeltaDPaperExample(t *testing.T) {
	// Paper §VI: d=27 under the cosmic-ray model needs Δd = 4 for
	// α_block = 0.01.
	m := defect.Paper()
	got := ChooseDeltaD(m, 27, DefaultAlphaBlock)
	if got != 4 {
		t.Errorf("ChooseDeltaD(d=27) = %d, want 4", got)
	}
	// A much stricter threshold demands more reserve.
	strict := ChooseDeltaD(m, 27, 1e-6)
	if strict <= got {
		t.Errorf("stricter α_block should need more Δd: %d vs %d", strict, got)
	}
}

func TestGrowthBudget(t *testing.T) {
	if b := New(SurfDeformer, 4, 9, 3).GrowthBudget(); b != 3 {
		t.Errorf("Surf budget %d, want 3", b)
	}
	if b := New(ASCS, 4, 9, 3).GrowthBudget(); b != 0 {
		t.Errorf("ASC budget %d, want 0", b)
	}
	if b := New(Q3DE, 4, 9, 3).GrowthBudget(); b != 9 {
		t.Errorf("Q3DE budget %d, want d", b)
	}
}
