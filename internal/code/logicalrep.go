package code

import (
	"fmt"

	"surfdeformer/internal/gf2"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// Logical representative extraction.
//
// After a deformation the stored logical representatives may run through
// removed qubits. The chain graph (see distance.go) yields a shortest
// boundary-to-boundary odd-crossing walk whose edges are data qubits; the
// corresponding Pauli string commutes with every opposite-type stabilizer
// by construction and anti-commutes with the crossing logical. It may still
// anti-commute with some gauge operators, in which case it is a dressed
// logical; RepairLogical lifts it to a bare logical by multiplying with
// gauge operators found through GF(2) solving.

// LogicalRep computes a minimum-weight logical representative of the given
// type from the chain graph. The result commutes with all opposite-type
// stabilizers and anti-commutes with the stored opposite logical; callers
// should pass it through RepairLogical before installing it when gauge
// operators are present.
func (c *Code) LogicalRep(logicalType lattice.CheckType) (pauli.Op, error) {
	qubits, err := c.shortestLogicalPath(logicalType)
	if err != nil {
		return pauli.Op{}, err
	}
	if logicalType == lattice.ZCheck {
		return pauli.Z(qubits...), nil
	}
	return pauli.X(qubits...), nil
}

// RepairLogical multiplies op by gauge operators so the result commutes with
// every gauge operator, turning a dressed logical into a bare one. It
// returns an error when no gauge combination fixes the anti-commutations
// (which would mean op is not a logical of this code at all).
func (c *Code) RepairLogical(op pauli.Op) (pauli.Op, error) {
	var bad []int
	for i, g := range c.gauges {
		if !op.Commutes(g.Op) {
			bad = append(bad, i)
		}
	}
	if len(bad) == 0 {
		return op, nil
	}
	// Solve Gramᵀ·x = pattern over GF(2): x selects gauge generators whose
	// product flips exactly the anti-commuting entries. Gram is symmetric.
	n := len(c.gauges)
	gram := gf2.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !c.gauges[i].Op.Commutes(c.gauges[j].Op) {
				gram.Set(i, j, true)
			}
		}
	}
	pattern := gf2.NewVec(n)
	for _, i := range bad {
		pattern.Set(i, true)
	}
	combo, ok := gram.Solve(pattern)
	if !ok {
		return pauli.Op{}, fmt.Errorf("code: operator cannot be repaired into a bare logical")
	}
	out := op
	for i := 0; i < n; i++ {
		if combo.Get(i) {
			out = pauli.Mul(out, c.gauges[i].Op)
		}
	}
	for _, g := range c.gauges {
		if !out.Commutes(g.Op) {
			return pauli.Op{}, fmt.Errorf("code: logical repair failed to commute with gauge %d", g.ID)
		}
	}
	return out, nil
}

// AlgebraicLogical derives a bare logical representative of the given type
// purely from linear algebra, without any crossing operator: it searches the
// nullspace of the opposite-type measured operators for a vector outside the
// span of the same-type measured operators. The result is valid but not
// necessarily minimum weight; it seeds the graph-based refinement.
func (c *Code) AlgebraicLogical(logicalType lattice.CheckType) (pauli.Op, error) {
	qubits := c.DataQubits()
	idx := make(map[lattice.Coord]int, len(qubits))
	for i, q := range qubits {
		idx[q] = i
	}
	n := len(qubits)
	supportVec := func(op pauli.Op) gf2.Vec {
		v := gf2.NewVec(n)
		for _, q := range op.Support() {
			if i, ok := idx[q]; ok {
				v.Set(i, true)
			}
		}
		return v
	}
	opposite := gf2.NewMatrix(0, n)
	same := gf2.NewMatrix(0, n)
	collect := func(op pauli.Op) {
		t, ok := op.CSSType()
		if !ok || op.IsIdentity() {
			return
		}
		if t == logicalType {
			same.AppendRow(supportVec(op))
		} else {
			opposite.AppendRow(supportVec(op))
		}
	}
	for _, s := range c.stabs {
		collect(s.Op)
	}
	for _, g := range c.gauges {
		collect(g.Op)
	}
	for _, v := range opposite.Nullspace() {
		if same.InSpan(v) {
			continue
		}
		var coords []lattice.Coord
		for _, i := range v.Indices() {
			coords = append(coords, qubits[i])
		}
		if logicalType == lattice.ZCheck {
			return pauli.Z(coords...), nil
		}
		return pauli.X(coords...), nil
	}
	return pauli.Op{}, fmt.Errorf("code: no %v logical class exists (k = 0?)", logicalType)
}

// RefreshLogicals recomputes both logical representatives from the current
// stabilizer and gauge structure and installs them. Crossing parities in
// the chain graph are classified against the opposite representative, so
// the refresh first seeds a guaranteed-valid bare logical Z algebraically,
// then minimizes X against it and finally re-minimizes Z against the
// minimal X.
func (c *Code) RefreshLogicals() error {
	seed, err := c.AlgebraicLogical(lattice.ZCheck)
	if err != nil {
		return err
	}
	c.logicalZ = seed
	refresh := func(typ lattice.CheckType) error {
		rep, err := c.LogicalRep(typ)
		if err != nil {
			return err
		}
		rep, err = c.RepairLogical(rep)
		if err != nil {
			return fmt.Errorf("code: logical %v: %w", typ, err)
		}
		if typ == lattice.ZCheck {
			c.logicalZ = rep
		} else {
			c.logicalX = rep
		}
		return nil
	}
	if err := refresh(lattice.XCheck); err != nil {
		return err
	}
	if err := refresh(lattice.ZCheck); err != nil {
		return err
	}
	if c.logicalX.Commutes(c.logicalZ) {
		return fmt.Errorf("code: refreshed logicals commute; patch topology broken")
	}
	return nil
}
