package code

import (
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

func mustPatchCode(t *testing.T, d int) *Code {
	t.Helper()
	c := FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
	if err := c.Validate(); err != nil {
		t.Fatalf("fresh d=%d code invalid: %v", d, err)
	}
	return c
}

func TestFromPatchParams(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7} {
		c := mustPatchCode(t, d)
		n, k, l, err := c.Params()
		if err != nil {
			t.Fatalf("d=%d Params: %v", d, err)
		}
		if n != d*d || k != 1 || l != 0 {
			t.Errorf("d=%d: [[n=%d,k=%d,l=%d]], want [[%d,1,0]]", d, n, k, l, d*d)
		}
	}
}

func TestFreshCodeDistances(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7, 9} {
		c := mustPatchCode(t, d)
		if got := c.DistanceX(); got != d {
			t.Errorf("d=%d: DistanceX = %d", d, got)
		}
		if got := c.DistanceZ(); got != d {
			t.Errorf("d=%d: DistanceZ = %d", d, got)
		}
		if got := c.Distance(); got != d {
			t.Errorf("d=%d: Distance = %d", d, got)
		}
	}
}

func TestRectCodeDistances(t *testing.T) {
	// dx wide, dz tall: Z distance is dx (horizontal), X distance dz.
	p := lattice.NewRectPatch(lattice.Coord{Row: 0, Col: 0}, 3, 5)
	c := FromPatch(p)
	if err := c.Validate(); err != nil {
		t.Fatalf("rect code invalid: %v", err)
	}
	if got := c.DistanceZ(); got != 3 {
		t.Errorf("DistanceZ = %d, want 3", got)
	}
	if got := c.DistanceX(); got != 5 {
		t.Errorf("DistanceX = %d, want 5", got)
	}
}

func TestGraphDistanceMatchesExact(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		c := mustPatchCode(t, d)
		for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
			exact, err := c.ExactDistance(typ)
			if err != nil {
				t.Fatalf("d=%d exact %v: %v", d, typ, err)
			}
			var graph int
			if typ == lattice.XCheck {
				graph = c.DistanceX()
			} else {
				graph = c.DistanceZ()
			}
			if graph != exact {
				t.Errorf("d=%d type %v: graph %d vs exact %d", d, typ, graph, exact)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := mustPatchCode(t, 3)
	cl := c.Clone()
	// Mutate the clone heavily and ensure the original is untouched.
	origStabs := len(c.Stabs())
	cl.RemoveStab(cl.Stabs()[0].ID)
	q := lattice.Coord{Row: 101, Col: 101}
	if err := cl.AddDataQubit(q); err != nil {
		t.Fatal(err)
	}
	if len(c.Stabs()) != origStabs {
		t.Error("clone stab removal leaked into original")
	}
	if c.HasData(q) {
		t.Error("clone data addition leaked into original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("original invalidated by clone mutation: %v", err)
	}
}

func TestMutatorsRejectInvalid(t *testing.T) {
	c := mustPatchCode(t, 3)
	q := c.DataQubits()[0]
	if err := c.RemoveDataQubit(q); err == nil {
		t.Error("RemoveDataQubit must fail while stabilizers act on the qubit")
	}
	if err := c.AddDataQubit(q); err == nil {
		t.Error("AddDataQubit must fail for present qubit")
	}
	syn := c.SyndromeQubits()[0]
	if err := c.RemoveSyndromeQubit(syn); err == nil {
		t.Error("RemoveSyndromeQubit must fail while a stabilizer is measured there")
	}
	if err := c.RemoveDataQubit(lattice.Coord{Row: 99, Col: 99}); err == nil {
		t.Error("RemoveDataQubit must fail for absent qubit")
	}
}

func TestValidateCatchesAnticommutingStab(t *testing.T) {
	c := mustPatchCode(t, 3)
	// Add a single-qubit X stabilizer that anti-commutes with Z checks.
	q := c.DataQubits()[4] // central qubit, covered by Z checks
	c.AddStab(pauli.X(q), c.SyndromeQubits()[0])
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject anti-commuting stabilizer set")
	}
}

func TestValidateCatchesDependentStabs(t *testing.T) {
	c := mustPatchCode(t, 3)
	s := c.Stabs()[0]
	// Duplicate an existing stabilizer measured at a fake new ancilla.
	a := lattice.Coord{Row: -2, Col: 0}
	if err := c.AddSyndromeQubit(a); err != nil {
		t.Fatal(err)
	}
	c.AddStab(s.Op, a)
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject dependent stabilizer generators")
	}
}

func TestValidateCatchesBadSuperStab(t *testing.T) {
	c := mustPatchCode(t, 3)
	// Super-stabilizer that does not match its member product.
	g1 := c.AddGauge(pauli.Z(c.DataQubits()[0]), lattice.Coord{}, true)
	c.AddSuperStab(pauli.Z(c.DataQubits()[1]), []int{g1})
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject super-stabilizer != member product")
	}
}

func TestValidateCatchesLogicalAnticommute(t *testing.T) {
	c := mustPatchCode(t, 3)
	// Break logical Z so that it anti-commutes with an X check.
	c.SetLogicalZ(pauli.Z(c.DataQubits()[0]))
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject logical violating commutation")
	}
}

func TestStabGaugeLookups(t *testing.T) {
	c := mustPatchCode(t, 3)
	q := c.DataQubits()[0] // corner data qubit (1,1)
	xs := c.StabsOn(q, lattice.XCheck)
	zs := c.StabsOn(q, lattice.ZCheck)
	if len(xs)+len(zs) == 0 {
		t.Fatal("corner qubit must be covered by at least one check")
	}
	for _, s := range xs {
		if typ, _ := s.Op.CSSType(); typ != lattice.XCheck {
			t.Error("StabsOn(X) returned non-X stabilizer")
		}
	}
	syn := c.Stabs()[0].Ancilla
	if _, ok := c.StabAtAncilla(syn); !ok {
		t.Error("StabAtAncilla failed for existing ancilla")
	}
	if _, ok := c.StabAtAncilla(lattice.Coord{Row: -88, Col: -88}); ok {
		t.Error("StabAtAncilla found phantom stabilizer")
	}
}

func TestRemoveGaugeDropsDependentSuperStab(t *testing.T) {
	c := mustPatchCode(t, 3)
	q0, q1 := c.DataQubits()[0], c.DataQubits()[1]
	g1 := c.AddGauge(pauli.Z(q0), lattice.Coord{}, true)
	g2 := c.AddGauge(pauli.Z(q1), lattice.Coord{}, true)
	sid := c.AddSuperStab(pauli.Z(q0, q1), []int{g1, g2})
	if _, ok := c.StabByID(sid); !ok {
		t.Fatal("super-stabilizer not found after insertion")
	}
	c.RemoveGauge(g1)
	if _, ok := c.StabByID(sid); ok {
		t.Error("super-stabilizer should be dropped with its member")
	}
	if _, ok := c.GaugeByID(g2); !ok {
		t.Error("unrelated gauge must survive")
	}
}

func TestBounds(t *testing.T) {
	c := mustPatchCode(t, 3)
	min, max := c.Bounds()
	if min != (lattice.Coord{Row: 1, Col: 1}) || max != (lattice.Coord{Row: 5, Col: 5}) {
		t.Errorf("bounds %v-%v, want (1,1)-(5,5)", min, max)
	}
}

func TestDefectiveCodeDistanceDrop(t *testing.T) {
	// Emulate fig. 2(b): disabling stabilizers (without proper removal)
	// shortens the logical operator. Build a d=5 code and delete two
	// adjacent interior X stabilizers; the Z distance must drop.
	c := mustPatchCode(t, 5)
	var removed int
	for _, s := range c.Stabs() {
		typ, _ := s.Op.CSSType()
		if typ == lattice.XCheck && s.Op.Weight() == 4 {
			c.RemoveStab(s.ID)
			removed++
			if removed == 2 {
				break
			}
		}
	}
	if got := c.DistanceZ(); got >= 5 {
		t.Errorf("DistanceZ = %d after disabling X checks, want < 5", got)
	}
}

func TestParamsCountsGaugeQubits(t *testing.T) {
	// Hand-execute the paper's DataQ_RM on the central qubit of a d=3 code
	// (fig. 6a): the four touching checks become gauge operators measured at
	// their original ancillas, and the two merged super-stabilizers are
	// inferred from the gauge products. This yields a genuine [[8,1,1]]
	// subsystem code.
	c := mustPatchCode(t, 3)
	q0 := lattice.Coord{Row: 3, Col: 3} // centre of the d=3 patch
	var xStabs, zStabs []Stab
	for _, s := range c.StabsOn(q0, lattice.XCheck) {
		xStabs = append(xStabs, s)
	}
	for _, s := range c.StabsOn(q0, lattice.ZCheck) {
		zStabs = append(zStabs, s)
	}
	if len(xStabs) != 2 || len(zStabs) != 2 {
		t.Fatalf("central qubit coverage %dX/%dZ, want 2/2", len(xStabs), len(zStabs))
	}
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	var xIDs, zIDs []int
	for _, s := range xStabs {
		c.RemoveStab(s.ID)
		xIDs = append(xIDs, c.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
	}
	for _, s := range zStabs {
		c.RemoveStab(s.ID)
		zIDs = append(zIDs, c.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
	}
	xProd := pauli.Mul(xStabs[0].Op, xStabs[1].Op)
	zProd := pauli.Mul(zStabs[0].Op, zStabs[1].Op)
	c.AddSuperStab(xProd, xIDs)
	c.AddSuperStab(zProd, zIDs)
	if err := c.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("deformed code invalid: %v", err)
	}
	n, k, l, err := c.Params()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 || k != 1 || l != 1 {
		t.Errorf("[[n=%d,k=%d,l=%d]], want [[8,1,1]]", n, k, l)
	}
	// Removing the centre merges checks: the distance must drop to 2 in at
	// least one basis (the paper's fig. 2(b) effect) and the graph distance
	// must agree with the exact search.
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		exact, err := c.ExactDistance(typ)
		if err != nil {
			t.Fatal(err)
		}
		var graph int
		if typ == lattice.XCheck {
			graph = c.DistanceX()
		} else {
			graph = c.DistanceZ()
		}
		if graph != exact {
			t.Errorf("type %v: graph %d vs exact %d", typ, graph, exact)
		}
	}
	if d := c.Distance(); d != 2 {
		t.Errorf("deformed distance = %d, want 2", d)
	}
}
