package code

import (
	"fmt"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// Distance computation.
//
// The dressed distance of type T (T ∈ {X, Z}) is the minimum weight of a
// type-T Pauli that commutes with every stabilizer generator of the
// opposite type and anti-commutes with the opposite (bare) logical
// operator.
//
// For the planar codes in this repository every data qubit participates in
// at most two opposite-type stabilizer generators, so type-T operators are
// chains on a graph: each opposite-type generator is a vertex, each data
// qubit an edge between the generators it touches (with a single virtual
// boundary vertex ∂ absorbing missing endpoints). A chain is a valid
// operator iff it has even degree at every real vertex — i.e. it is a walk
// from ∂ to ∂ — and it is logical iff its crossing parity with the opposite
// bare logical is odd. The distance is therefore the shortest odd-parity
// ∂→∂ walk, found by BFS over (vertex, parity) states. Super-stabilizers
// appear merged, which is precisely how defect removal shortens logical
// operators; qubits invisible to every generator become ∂–∂ edges whose
// parity decides whether they are weight-1 dressed logicals.

// DistanceZ returns the minimum weight of a dressed logical Z operator.
func (c *Code) DistanceZ() int { return c.distance(lattice.ZCheck) }

// DistanceX returns the minimum weight of a dressed logical X operator.
func (c *Code) DistanceX() int { return c.distance(lattice.XCheck) }

// Distance returns min(DistanceX, DistanceZ), the code distance.
func (c *Code) Distance() int {
	dx, dz := c.DistanceX(), c.DistanceZ()
	if dx < dz {
		return dx
	}
	return dz
}

const unreachable = 1 << 30

// chainEdge is one edge of the chain graph: the data qubit it represents,
// its endpoints (generator indices, or the boundary node), and its crossing
// parity with the opposite bare logical.
type chainEdge struct {
	u, v   int
	qubit  lattice.Coord
	parity bool
}

// chainGraph builds the chain graph for type-T logicals. It returns the
// edge list and the number of real vertices (the boundary node has index
// nGen).
func (c *Code) chainGraph(logicalType lattice.CheckType) (edges []chainEdge, nGen int, err error) {
	consType := logicalType.Opposite()
	var gens []pauli.Op
	for _, s := range c.stabs {
		t, ok := s.Op.CSSType()
		if ok && t == consType && !s.Op.IsIdentity() {
			gens = append(gens, s.Op)
		}
	}
	genOf := map[lattice.Coord][]int{}
	for gi, g := range gens {
		for _, q := range g.Support() {
			genOf[q] = append(genOf[q], gi)
		}
	}
	nGen = len(gens)
	boundary := nGen
	crossing := c.logicalX
	if logicalType == lattice.XCheck {
		crossing = c.logicalZ
	}
	// Deterministic edge order (and hence BFS tie-breaking): which
	// minimum-weight walk wins decides the installed logical representative,
	// and downstream consumers (the bandage construction's gauge demotion)
	// are representative-*class* invariant only — two representatives that
	// differ by a check later demoted to a gauge stop being equivalent.
	for _, q := range c.DataQubits() {
		var op pauli.Op
		if logicalType == lattice.ZCheck {
			op = pauli.Z(q)
		} else {
			op = pauli.X(q)
		}
		parity := !op.Commutes(crossing)
		gs := genOf[q]
		switch len(gs) {
		case 2:
			edges = append(edges, chainEdge{gs[0], gs[1], q, parity})
		case 1:
			edges = append(edges, chainEdge{gs[0], boundary, q, parity})
		case 0:
			edges = append(edges, chainEdge{boundary, boundary, q, parity})
		default:
			return nil, 0, fmt.Errorf("code: qubit %v touched by %d %v-generators; chain graph undefined",
				q, len(gs), consType)
		}
	}
	return edges, nGen, nil
}

func (c *Code) distance(logicalType lattice.CheckType) int {
	qubits, err := c.shortestLogicalPath(logicalType)
	if err != nil {
		return unreachable
	}
	return len(qubits)
}

// shortestLogicalPath finds the qubits of a minimum-weight type-T logical:
// the shortest ∂→∂ walk with odd crossing parity.
func (c *Code) shortestLogicalPath(logicalType lattice.CheckType) ([]lattice.Coord, error) {
	edges, nGen, err := c.chainGraph(logicalType)
	if err != nil {
		return nil, err
	}
	boundary := nGen
	adj := make([][]int, nGen+1) // edge indices per vertex
	for i, e := range edges {
		adj[e.u] = append(adj[e.u], i)
		if e.v != e.u {
			adj[e.v] = append(adj[e.v], i)
		}
	}
	// BFS over (vertex, parity).
	type state struct {
		v      int
		parity int
	}
	idx := func(s state) int { return s.v*2 + s.parity }
	dist := make([]int, (nGen+1)*2)
	prevEdge := make([]int, (nGen+1)*2)
	prevState := make([]int, (nGen+1)*2)
	for i := range dist {
		dist[i] = unreachable
		prevEdge[i] = -1
		prevState[i] = -1
	}
	start := state{boundary, 0}
	goal := state{boundary, 1}
	dist[idx(start)] = 0
	queue := []state{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == goal {
			break
		}
		for _, ei := range adj[s.v] {
			e := edges[ei]
			to := e.v
			if to == s.v && e.u != e.v {
				to = e.u
			}
			if e.u == e.v {
				to = s.v // self-loop at the boundary
			}
			p := s.parity
			if e.parity {
				p ^= 1
			}
			ns := state{to, p}
			if dist[idx(ns)] > dist[idx(s)]+1 {
				dist[idx(ns)] = dist[idx(s)] + 1
				prevEdge[idx(ns)] = ei
				prevState[idx(ns)] = idx(s)
				queue = append(queue, ns)
			}
		}
	}
	if dist[idx(goal)] >= unreachable {
		return nil, fmt.Errorf("code: no %v logical operator exists", logicalType)
	}
	var qubits []lattice.Coord
	for si := idx(goal); prevEdge[si] >= 0; si = prevState[si] {
		qubits = append(qubits, edges[prevEdge[si]].qubit)
	}
	return qubits, nil
}
