package code

import (
	"fmt"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// ExactDistance computes the dressed distance of the given logical type by
// breadth-first search over the syndrome-state space: states are (parity
// pattern over opposite-type stabilizer generators, crossing parity with the
// opposite logical), moves apply a single-qubit Pauli of the logical type.
// The complexity is O(2^g · n) for g constraint generators, so it is only
// suitable for small codes; it exists to cross-validate the graph-based
// Distance{X,Z} in tests.
func (c *Code) ExactDistance(logicalType lattice.CheckType) (int, error) {
	consType := logicalType.Opposite()
	var gens []pauli.Op
	for _, s := range c.stabs {
		t, ok := s.Op.CSSType()
		if ok && t == consType && !s.Op.IsIdentity() {
			gens = append(gens, s.Op)
		}
	}
	if len(gens) > 22 {
		return 0, fmt.Errorf("code: %d constraint generators exceed exact-search limit", len(gens))
	}
	crossing := c.logicalX
	if logicalType == lattice.XCheck {
		crossing = c.logicalZ
	}

	qubits := c.DataQubits()
	// Precompute per-qubit transition masks. Bit i of the mask corresponds
	// to constraint generator i; the top bit is the crossing parity.
	crossBit := uint32(1) << uint(len(gens))
	masks := make([]uint32, len(qubits))
	for qi, q := range qubits {
		var op pauli.Op
		if logicalType == lattice.ZCheck {
			op = pauli.Z(q)
		} else {
			op = pauli.X(q)
		}
		var m uint32
		for gi, g := range gens {
			if !op.Commutes(g) {
				m |= 1 << uint(gi)
			}
		}
		if !op.Commutes(crossing) {
			m |= crossBit
		}
		masks[qi] = m
	}

	target := crossBit
	size := crossBit << 1
	dist := make([]int32, size)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := make([]uint32, 0, 1024)
	queue = append(queue, 0)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == target {
			return int(dist[s]), nil
		}
		for _, m := range masks {
			ns := s ^ m
			if dist[ns] < 0 {
				dist[ns] = dist[s] + 1
				queue = append(queue, ns)
			}
		}
	}
	return 0, fmt.Errorf("code: no logical operator of type %v exists", logicalType)
}
