// Package code represents CSS subsystem stabilizer codes under deformation.
//
// A Code tracks the live configuration of one logical qubit patch: the data
// qubits currently in the code, the syndrome (ancilla) qubits in service,
// the measured stabilizer generators, the measured gauge operators, and
// representative logical operators. The paper's generator representation
// (Appendix A) maps onto this as
//
//	s_1..s_{n-k-l}  -> Stabs   (each measurable directly or via gauge products)
//	gauge pairs     -> Gauges  (the measured members; pairs are implicit)
//	X̄_L, Z̄_L        -> LogicalX, LogicalZ
//
// All mutation goes through the exported mutators so that the gauge layer
// (package gauge) and the instruction layer (package deform) can maintain
// the invariants checked by Validate.
package code

import (
	"fmt"
	"sort"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

// Stab is one measured stabilizer generator.
//
// A plain stabilizer is measured every cycle through the syndrome qubit at
// Ancilla. A super-stabilizer (born from defect removal) has no ancilla of
// its own: its value is the product of the gauge operators listed in
// MemberIDs, which are measured on alternating cycles.
type Stab struct {
	ID        int
	Op        pauli.Op
	Ancilla   lattice.Coord // meaningful iff len(MemberIDs) == 0
	MemberIDs []int         // gauge IDs whose product equals Op
	Direct    bool          // weight-1 operator fixed by direct data measurement
}

// IsSuper reports whether the stabilizer is inferred from gauge products.
func (s Stab) IsSuper() bool { return len(s.MemberIDs) > 0 }

// Gauge is one measured gauge operator.
type Gauge struct {
	ID      int
	Op      pauli.Op
	Ancilla lattice.Coord // syndrome qubit used, or the data qubit itself when Direct
	Direct  bool          // weight-1 direct data-qubit measurement (no ancilla)
}

// Code is a live CSS subsystem code encoding one logical qubit.
type Code struct {
	data      map[lattice.Coord]bool
	syndromes map[lattice.Coord]bool

	stabs  []Stab
	gauges []Gauge
	nextID int

	logicalX pauli.Op
	logicalZ pauli.Op
}

// New returns an empty code over the given data and syndrome qubits, with
// no stabilizers, gauges or logicals installed. It is the entry point for
// builders that assemble deformed codes from scratch.
func New(data, syndromes []lattice.Coord) *Code {
	c := &Code{
		data:      make(map[lattice.Coord]bool, len(data)),
		syndromes: make(map[lattice.Coord]bool, len(syndromes)),
	}
	for _, q := range data {
		c.data[q] = true
	}
	for _, q := range syndromes {
		c.syndromes[q] = true
	}
	return c
}

// FromPatch builds the code of a fresh (undeformed) rotated surface code
// patch: every check is a plain stabilizer, there are no gauge operators.
func FromPatch(p *lattice.Patch) *Code {
	c := &Code{
		data:      make(map[lattice.Coord]bool, len(p.Data)),
		syndromes: make(map[lattice.Coord]bool, len(p.Checks)),
	}
	for _, q := range p.Data {
		c.data[q] = true
	}
	for _, ch := range p.Checks {
		c.syndromes[ch.Center] = true
		var op pauli.Op
		if ch.Type == lattice.XCheck {
			op = pauli.X(ch.Support...)
		} else {
			op = pauli.Z(ch.Support...)
		}
		c.stabs = append(c.stabs, Stab{ID: c.nextID, Op: op, Ancilla: ch.Center})
		c.nextID++
	}
	c.logicalX = pauli.X(p.LogicalX...)
	c.logicalZ = pauli.Z(p.LogicalZ...)
	return c
}

// Clone returns a deep copy of the code.
func (c *Code) Clone() *Code {
	n := &Code{
		data:      make(map[lattice.Coord]bool, len(c.data)),
		syndromes: make(map[lattice.Coord]bool, len(c.syndromes)),
		stabs:     append([]Stab(nil), c.stabs...),
		gauges:    append([]Gauge(nil), c.gauges...),
		nextID:    c.nextID,
		logicalX:  c.logicalX,
		logicalZ:  c.logicalZ,
	}
	for q := range c.data {
		n.data[q] = true
	}
	for q := range c.syndromes {
		n.syndromes[q] = true
	}
	for i := range n.stabs {
		n.stabs[i].MemberIDs = append([]int(nil), c.stabs[i].MemberIDs...)
	}
	return n
}

// NumData returns the number of data qubits currently in the code.
func (c *Code) NumData() int { return len(c.data) }

// NumSyndrome returns the number of syndrome qubits in service.
func (c *Code) NumSyndrome() int { return len(c.syndromes) }

// NumQubits returns the total physical qubits the code occupies.
func (c *Code) NumQubits() int { return len(c.data) + len(c.syndromes) }

// HasData reports whether q is an active data qubit.
func (c *Code) HasData(q lattice.Coord) bool { return c.data[q] }

// HasSyndrome reports whether q is an active syndrome qubit.
func (c *Code) HasSyndrome(q lattice.Coord) bool { return c.syndromes[q] }

// DataQubits returns the sorted list of active data qubits.
func (c *Code) DataQubits() []lattice.Coord {
	out := make([]lattice.Coord, 0, len(c.data))
	for q := range c.data {
		out = append(out, q)
	}
	lattice.SortCoords(out)
	return out
}

// SyndromeQubits returns the sorted list of active syndrome qubits.
func (c *Code) SyndromeQubits() []lattice.Coord {
	out := make([]lattice.Coord, 0, len(c.syndromes))
	for q := range c.syndromes {
		out = append(out, q)
	}
	lattice.SortCoords(out)
	return out
}

// Stabs returns the stabilizer generator list. Callers must not mutate it.
func (c *Code) Stabs() []Stab { return c.stabs }

// Gauges returns the measured gauge operator list. Callers must not mutate it.
func (c *Code) Gauges() []Gauge { return c.gauges }

// LogicalX returns the representative logical X operator.
func (c *Code) LogicalX() pauli.Op { return c.logicalX }

// LogicalZ returns the representative logical Z operator.
func (c *Code) LogicalZ() pauli.Op { return c.logicalZ }

// SetLogicalX replaces the representative logical X operator.
func (c *Code) SetLogicalX(op pauli.Op) { c.logicalX = op }

// SetLogicalZ replaces the representative logical Z operator.
func (c *Code) SetLogicalZ(op pauli.Op) { c.logicalZ = op }

// StabByID returns the stabilizer with the given ID.
func (c *Code) StabByID(id int) (Stab, bool) {
	for _, s := range c.stabs {
		if s.ID == id {
			return s, true
		}
	}
	return Stab{}, false
}

// GaugeByID returns the gauge operator with the given ID.
func (c *Code) GaugeByID(id int) (Gauge, bool) {
	for _, g := range c.gauges {
		if g.ID == id {
			return g, true
		}
	}
	return Gauge{}, false
}

// StabsOn returns the stabilizer generators acting on qubit q, optionally
// filtered by CSS type.
func (c *Code) StabsOn(q lattice.Coord, typ lattice.CheckType) []Stab {
	var out []Stab
	for _, s := range c.stabs {
		t, ok := s.Op.CSSType()
		if ok && t == typ && s.Op.ActsOn(q) {
			out = append(out, s)
		}
	}
	return out
}

// GaugesOn returns the gauge operators acting on qubit q, optionally
// filtered by CSS type.
func (c *Code) GaugesOn(q lattice.Coord, typ lattice.CheckType) []Gauge {
	var out []Gauge
	for _, g := range c.gauges {
		t, ok := g.Op.CSSType()
		if ok && t == typ && g.Op.ActsOn(q) {
			out = append(out, g)
		}
	}
	return out
}

// StabAtAncilla returns the plain stabilizer measured by the syndrome qubit
// at coordinate a, if any.
func (c *Code) StabAtAncilla(a lattice.Coord) (Stab, bool) {
	for _, s := range c.stabs {
		if !s.IsSuper() && s.Ancilla == a {
			return s, true
		}
	}
	return Stab{}, false
}

// GaugeAtAncilla returns the gauge operator measured by the syndrome qubit
// at coordinate a, if any.
func (c *Code) GaugeAtAncilla(a lattice.Coord) (Gauge, bool) {
	for _, g := range c.gauges {
		if !g.Direct && g.Ancilla == a {
			return g, true
		}
	}
	return Gauge{}, false
}

// AddStab appends a plain stabilizer measured at the given ancilla and
// returns its ID.
func (c *Code) AddStab(op pauli.Op, ancilla lattice.Coord) int {
	id := c.nextID
	c.nextID++
	c.stabs = append(c.stabs, Stab{ID: id, Op: op, Ancilla: ancilla})
	return id
}

// AddDirectStab appends a weight-1 stabilizer fixed by direct data-qubit
// measurement (gauge fixing of a single-qubit operator) and returns its ID.
func (c *Code) AddDirectStab(op pauli.Op) int {
	id := c.nextID
	c.nextID++
	anc := lattice.Coord{}
	if supp := op.Support(); len(supp) == 1 {
		anc = supp[0]
	}
	c.stabs = append(c.stabs, Stab{ID: id, Op: op, Ancilla: anc, Direct: true})
	return id
}

// AddSuperStab appends a super-stabilizer inferred from the given gauge
// members and returns its ID.
func (c *Code) AddSuperStab(op pauli.Op, memberIDs []int) int {
	id := c.nextID
	c.nextID++
	c.stabs = append(c.stabs, Stab{ID: id, Op: op, MemberIDs: append([]int(nil), memberIDs...)})
	return id
}

// AddGauge appends a measured gauge operator and returns its ID.
func (c *Code) AddGauge(op pauli.Op, ancilla lattice.Coord, direct bool) int {
	id := c.nextID
	c.nextID++
	c.gauges = append(c.gauges, Gauge{ID: id, Op: op, Ancilla: ancilla, Direct: direct})
	return id
}

// RemoveStab deletes the stabilizer with the given ID.
func (c *Code) RemoveStab(id int) bool {
	for i, s := range c.stabs {
		if s.ID == id {
			c.stabs = append(c.stabs[:i], c.stabs[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveGauge deletes the gauge operator with the given ID. It also removes
// the ID from any super-stabilizer member list; a super-stabilizer losing a
// member this way becomes unmeasurable and is deleted too (callers are
// expected to have rebuilt the affected stabilizers first).
func (c *Code) RemoveGauge(id int) bool {
	found := false
	for i, g := range c.gauges {
		if g.ID == id {
			c.gauges = append(c.gauges[:i], c.gauges[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	var keep []Stab
	for _, s := range c.stabs {
		drop := false
		for _, m := range s.MemberIDs {
			if m == id {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, s)
		}
	}
	c.stabs = keep
	return true
}

// ReplaceStabOp swaps the operator of stabilizer id (used by S2S rewrites).
func (c *Code) ReplaceStabOp(id int, op pauli.Op) bool {
	for i := range c.stabs {
		if c.stabs[i].ID == id {
			c.stabs[i].Op = op
			return true
		}
	}
	return false
}

// ReplaceGaugeOp swaps the operator of gauge id (used by G2G rewrites).
func (c *Code) ReplaceGaugeOp(id int, op pauli.Op) bool {
	for i := range c.gauges {
		if c.gauges[i].ID == id {
			c.gauges[i].Op = op
			return true
		}
	}
	return false
}

// AddDataQubit brings a new data qubit into the code.
func (c *Code) AddDataQubit(q lattice.Coord) error {
	if c.data[q] {
		return fmt.Errorf("code: data qubit %v already present", q)
	}
	c.data[q] = true
	return nil
}

// RemoveDataQubit takes a data qubit out of the code. Every measured
// operator must already have been rewritten to avoid it.
func (c *Code) RemoveDataQubit(q lattice.Coord) error {
	if !c.data[q] {
		return fmt.Errorf("code: data qubit %v not present", q)
	}
	for _, s := range c.stabs {
		if s.Op.ActsOn(q) {
			return fmt.Errorf("code: stabilizer %d still acts on %v", s.ID, q)
		}
	}
	for _, g := range c.gauges {
		if g.Op.ActsOn(q) {
			return fmt.Errorf("code: gauge %d still acts on %v", g.ID, q)
		}
	}
	if c.logicalX.ActsOn(q) || c.logicalZ.ActsOn(q) {
		return fmt.Errorf("code: a logical operator still acts on %v", q)
	}
	delete(c.data, q)
	return nil
}

// AddSyndromeQubit brings a syndrome qubit into service.
func (c *Code) AddSyndromeQubit(q lattice.Coord) error {
	if c.syndromes[q] {
		return fmt.Errorf("code: syndrome qubit %v already present", q)
	}
	c.syndromes[q] = true
	return nil
}

// RemoveSyndromeQubit takes a syndrome qubit out of service. No plain
// stabilizer or ancilla-based gauge may still be using it.
func (c *Code) RemoveSyndromeQubit(q lattice.Coord) error {
	if !c.syndromes[q] {
		return fmt.Errorf("code: syndrome qubit %v not present", q)
	}
	for _, s := range c.stabs {
		if !s.IsSuper() && s.Ancilla == q {
			return fmt.Errorf("code: stabilizer %d still measured at %v", s.ID, q)
		}
	}
	for _, g := range c.gauges {
		if !g.Direct && g.Ancilla == q {
			return fmt.Errorf("code: gauge %d still measured at %v", g.ID, q)
		}
	}
	delete(c.syndromes, q)
	return nil
}

// Bounds returns the inclusive bounding box of the active data qubits.
func (c *Code) Bounds() (min, max lattice.Coord) {
	first := true
	for q := range c.data {
		if first {
			min, max = q, q
			first = false
			continue
		}
		if q.Row < min.Row {
			min.Row = q.Row
		}
		if q.Col < min.Col {
			min.Col = q.Col
		}
		if q.Row > max.Row {
			max.Row = q.Row
		}
		if q.Col > max.Col {
			max.Col = q.Col
		}
	}
	return min, max
}

// String summarizes the code.
func (c *Code) String() string {
	return fmt.Sprintf("code{data:%d syn:%d stabs:%d gauges:%d dX:%d dZ:%d}",
		len(c.data), len(c.syndromes), len(c.stabs), len(c.gauges), c.DistanceX(), c.DistanceZ())
}

// sortedStabIDs returns stabilizer IDs ascending (test helper determinism).
func (c *Code) sortedStabIDs() []int {
	ids := make([]int, len(c.stabs))
	for i, s := range c.stabs {
		ids[i] = s.ID
	}
	sort.Ints(ids)
	return ids
}
