package code

import (
	"testing"

	"surfdeformer/internal/lattice"
	"surfdeformer/internal/pauli"
)

func TestAlgebraicLogicalFreshCode(t *testing.T) {
	c := mustPatchCode(t, 5)
	for _, typ := range []lattice.CheckType{lattice.ZCheck, lattice.XCheck} {
		rep, err := c.AlgebraicLogical(typ)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		// Must commute with every stabilizer.
		for _, s := range c.Stabs() {
			if !rep.Commutes(s.Op) {
				t.Errorf("%v algebraic logical anti-commutes with stabilizer %d", typ, s.ID)
			}
		}
		// Must anti-commute with the stored opposite representative.
		opp := c.LogicalX()
		if typ == lattice.XCheck {
			opp = c.LogicalZ()
		}
		if rep.Commutes(opp) {
			t.Errorf("%v algebraic logical commutes with the opposite logical", typ)
		}
	}
}

func TestRepairLogicalNoGauges(t *testing.T) {
	c := mustPatchCode(t, 3)
	op := c.LogicalZ()
	repaired, err := c.RepairLogical(op)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired.Equal(op) {
		t.Error("repair must be the identity when no gauges exist")
	}
}

func TestRepairLogicalWithGaugePair(t *testing.T) {
	// Create a gauge pair, then repair a dressed logical that anti-commutes
	// with one member.
	c := mustPatchCode(t, 5)
	q0 := lattice.Coord{Row: 5, Col: 5}
	notQ0 := func(q lattice.Coord) bool { return q != q0 }
	for _, typ := range []lattice.CheckType{lattice.XCheck, lattice.ZCheck} {
		var ids []int
		var prod pauli.Op
		for _, s := range c.StabsOn(q0, typ) {
			prod = pauli.Mul(prod, s.Op)
			c.RemoveStab(s.ID)
			ids = append(ids, c.AddGauge(s.Op.RestrictedTo(notQ0), s.Ancilla, false))
		}
		c.AddSuperStab(prod.RestrictedTo(notQ0), ids)
	}
	if err := c.RemoveDataQubit(q0); err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	// Dress the logical Z with a Z-type gauge element: the product is a
	// dressed logical (anti-commutes with the X gauges) that repair must
	// lift back to a bare one.
	var zg Gauge
	for _, g := range c.Gauges() {
		if typ, _ := g.Op.CSSType(); typ == lattice.ZCheck {
			zg = g
			break
		}
	}
	dressed := pauli.Mul(c.LogicalZ(), zg.Op)
	anyAnti := false
	for _, g := range c.Gauges() {
		if !dressed.Commutes(g.Op) {
			anyAnti = true
		}
	}
	if !anyAnti {
		t.Fatal("dressing with a gauge member should break some commutation")
	}
	repaired, err := c.RepairLogical(dressed)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gauges() {
		if !repaired.Commutes(g.Op) {
			t.Errorf("repaired logical still anti-commutes with gauge %d", g.ID)
		}
	}
	// The repaired operator must stay in the logical-Z class: it still
	// anti-commutes with logical X.
	if repaired.Commutes(c.LogicalX()) {
		t.Error("repair changed the logical class")
	}
	// A non-gauge dressing (a stray single-qubit error) is correctly
	// rejected: it is not a logical of any class.
	var xg Gauge
	for _, g := range c.Gauges() {
		if typ, _ := g.Op.CSSType(); typ == lattice.XCheck {
			xg = g
			break
		}
	}
	stray := pauli.Mul(c.LogicalZ(), pauli.Z(xg.Op.Support()[0]))
	if !stray.Commutes(xg.Op) {
		if _, err := c.RepairLogical(stray); err == nil {
			t.Error("a stray-error dressing must be unrepairable")
		}
	}
}

func TestRefreshLogicalsMinimality(t *testing.T) {
	c := mustPatchCode(t, 5)
	if err := c.RefreshLogicals(); err != nil {
		t.Fatal(err)
	}
	if got := c.LogicalZ().Weight(); got != 5 {
		t.Errorf("refreshed logical Z weight %d, want distance 5", got)
	}
	if got := c.LogicalX().Weight(); got != 5 {
		t.Errorf("refreshed logical X weight %d, want distance 5", got)
	}
}

func TestLogicalRepMatchesDistance(t *testing.T) {
	c := mustPatchCode(t, 5)
	for _, typ := range []lattice.CheckType{lattice.ZCheck, lattice.XCheck} {
		rep, err := c.LogicalRep(typ)
		if err != nil {
			t.Fatal(err)
		}
		var dist int
		if typ == lattice.ZCheck {
			dist = c.DistanceZ()
		} else {
			dist = c.DistanceX()
		}
		if rep.Weight() != dist {
			t.Errorf("%v rep weight %d != distance %d", typ, rep.Weight(), dist)
		}
	}
}
