package detect

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"surfdeformer/internal/lattice"
)

func TestOracleRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var truth, healthy []lattice.Coord
	for i := 0; i < 200; i++ {
		truth = append(truth, lattice.Coord{Row: 1, Col: 2*i + 1})
		healthy = append(healthy, lattice.Coord{Row: 3, Col: 2*i + 1})
	}
	report := Oracle(truth, healthy, 0.05, 0.1, rng)
	inReport := map[lattice.Coord]bool{}
	for _, q := range report {
		inReport[q] = true
	}
	var hits, falsePos int
	for _, q := range truth {
		if inReport[q] {
			hits++
		}
	}
	for _, q := range healthy {
		if inReport[q] {
			falsePos++
		}
	}
	// Expected: ~180 hits (fn=0.1), ~10 false positives (fp=0.05).
	if hits < 160 || hits > 200 {
		t.Errorf("hits %d, want ≈180", hits)
	}
	if falsePos < 2 || falsePos > 25 {
		t.Errorf("false positives %d, want ≈10", falsePos)
	}
}

func TestOraclePerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := []lattice.Coord{{Row: 1, Col: 1}, {Row: 3, Col: 3}}
	healthy := []lattice.Coord{{Row: 5, Col: 5}}
	report := Oracle(truth, healthy, 0, 0, rng)
	if len(report) != 2 {
		t.Fatalf("perfect oracle returned %d sites, want 2", len(report))
	}
}

func TestWindowSeparatesDefects(t *testing.T) {
	w := NewWindow(20, 0.25)
	rng := rand.New(rand.NewSource(3))
	// Observable 7 is adjacent to a 50% defect (fires ~half the rounds);
	// observables 0..5 are healthy (fire at ~1%).
	for round := 0; round < 40; round++ {
		var fired []int32
		for o := int32(0); o < 6; o++ {
			if rng.Float64() < 0.01 {
				fired = append(fired, o)
			}
		}
		if rng.Float64() < 0.5 {
			fired = append(fired, 7)
		}
		w.Feed(round, fired)
	}
	flagged := w.Flagged()
	found := false
	for _, o := range flagged {
		if o == 7 {
			found = true
		} else {
			t.Errorf("healthy observable %d flagged", o)
		}
	}
	if !found {
		t.Error("defective observable not flagged")
	}
}

// TestWindowWarmup pins the warm-up fix: before one full window has
// elapsed, the firing-rate denominator is the number of rounds actually
// fed, not the configured window length — an early-stream defect firing at
// 100% must be flagged even though its absolute firing count is far below
// threshold·rounds.
func TestWindowWarmup(t *testing.T) {
	w := NewWindow(20, 0.5)
	for round := 0; round < 6; round++ {
		w.Feed(round, []int32{3})
	}
	// 6 firings in 6 rounds: rate 1.0. The pre-fix denominator of 20 rounds
	// demanded 10 absolute firings and left this unflagged.
	flagged := w.Flagged()
	if len(flagged) != 1 || flagged[0] != 3 {
		t.Fatalf("100%%-firing early-stream observable not flagged during warm-up: got %v", flagged)
	}

	// A healthy observable with one firing in the same warm-up stretch must
	// stay below a 50% rate threshold.
	w2 := NewWindow(20, 0.5)
	w2.Feed(0, []int32{4})
	for round := 1; round < 6; round++ {
		w2.Feed(round, nil)
	}
	if got := w2.Flagged(); len(got) != 0 {
		t.Errorf("single warm-up firing flagged: %v", got)
	}

	// Once a full window has elapsed the denominator is the configured
	// length again: 6 firings inside a 20-round window at threshold 0.5 do
	// not flag.
	w3 := NewWindow(20, 0.5)
	for round := 0; round < 40; round++ {
		var fired []int32
		if round >= 34 {
			fired = []int32{5}
		}
		w3.Feed(round, fired)
	}
	if got := w3.Flagged(); len(got) != 0 {
		t.Errorf("6/20 rate flagged at threshold 0.5 after warm-up: %v", got)
	}
}

// TestWindowFeedIdempotent pins the duplicate-feed fix: re-feeding the same
// (round, observable) pair must not double-count, so window rates can never
// exceed 1.0 and trimmed history cannot be re-inflated.
func TestWindowFeedIdempotent(t *testing.T) {
	w := NewWindow(4, 0.9)
	for round := 0; round < 8; round++ {
		w.Feed(round, []int32{1})
		w.Feed(round, []int32{1}) // duplicate feed of the same round
	}
	if got := len(w.history[1]); got != 8 {
		t.Errorf("history holds %d entries after duplicate feeds, want 8", got)
	}
	// Rate is exactly 1.0 (4 firings in a 4-round window), not 2.0.
	lo := w.current - w.rounds + 1
	n := 0
	for _, r := range w.history[1] {
		if r >= lo {
			n++
		}
	}
	if n != 4 {
		t.Errorf("window firing count %d, want 4", n)
	}

	// Duplicate feeds after a Trim must not re-append the current round.
	w.Trim()
	w.Feed(7, []int32{1})
	if got := len(w.history[1]); got != 4 {
		t.Errorf("history holds %d entries after post-Trim duplicate feed, want 4", got)
	}
}

// TestWindowRejectsDecreasingRounds pins the documented contract: rounds
// must be fed in non-decreasing order, and a decreasing feed is ignored
// rather than corrupting the window state.
func TestWindowRejectsDecreasingRounds(t *testing.T) {
	w := NewWindow(5, 0.5)
	w.Feed(10, []int32{2})
	w.Feed(4, []int32{7}) // decreasing: ignored
	if w.current != 10 {
		t.Errorf("current round %d after decreasing feed, want 10", w.current)
	}
	if len(w.history[7]) != 0 {
		t.Errorf("decreasing feed recorded history: %v", w.history[7])
	}
	w.Feed(10, []int32{9}) // equal round is fine
	if len(w.history[9]) != 1 {
		t.Errorf("equal-round feed not recorded")
	}
}

// TestEstimateRatesInversion pins the saturating-model inversion: firing
// counts generated from a known per-mechanism rate must invert back to a
// multiplier near the true one, where the naive linear ratio
// (fire/baseline) would land far below it.
func TestEstimateRatesInversion(t *testing.T) {
	const (
		p = 1e-3
		k = 15.0 // effective mechanism count encoded in the baseline
	)
	fire := func(q float64) float64 { return 0.5 * (1 - math.Pow(1-2*q, k)) }
	baseline := fire(p) // ≈ 0.0149
	w := NewWindow(100, 0.5)
	// A 10×-drifted observable fires at fire(0.01) ≈ 0.13: 13 of 100 rounds.
	n := int(math.Round(fire(0.01) * 100))
	for round := 0; round < 100; round++ {
		var fired []int32
		if round < n {
			fired = []int32{4}
		}
		w.Feed(round, fired)
	}
	ests := w.EstimateRates(p, func(int32) float64 { return baseline }, 2, 3)
	if len(ests) != 1 || ests[0].Observable != 4 {
		t.Fatalf("estimates = %+v, want exactly observable 4", ests)
	}
	got := ests[0].Multiplier
	if got < 8 || got > 12 {
		t.Errorf("estimated multiplier %.2f for a true 10× drift, want ≈10 (the linear ratio %.2f would miss)",
			got, ests[0].FireRate/baseline)
	}
	// The same stream gated at a higher multiplier returns nothing.
	if ests := w.EstimateRates(p, func(int32) float64 { return baseline }, 20, 3); len(ests) != 0 {
		t.Errorf("gate 20 passed a 10× drift: %+v", ests)
	}
}

// TestEstimateRatesSustainedGate pins the minFirings gate: a single noise
// firing over a short effective window must never qualify, however large
// its instantaneous rate ratio.
func TestEstimateRatesSustainedGate(t *testing.T) {
	w := NewWindow(20, 0.5)
	w.Feed(0, []int32{7})
	w.Feed(1, nil)
	// Rate 0.5 over 2 effective rounds: a naive estimator would scream.
	if ests := w.EstimateRates(1e-3, func(int32) float64 { return 0.015 }, 2, 3); len(ests) != 0 {
		t.Errorf("single firing qualified: %+v", ests)
	}
	// Unknown baselines (observable absent from the current code) skip.
	for round := 2; round < 12; round++ {
		w.Feed(round, []int32{7})
	}
	if ests := w.EstimateRates(1e-3, func(int32) float64 { return 0 }, 2, 3); len(ests) != 0 {
		t.Errorf("non-positive baseline qualified: %+v", ests)
	}
}

// TestTrimDoesNotBiasEstimates pins the satellite interaction: Trim drops
// exactly the history outside the trailing window — the same range every
// rate computation already ignores — so a trimmed window must produce
// bit-identical rate estimates to an untrimmed one fed the same stream.
func TestTrimDoesNotBiasEstimates(t *testing.T) {
	baseline := func(int32) float64 { return 0.015 }
	mk := func(trim bool) []RateEstimate {
		w := NewWindow(20, 0.25)
		for round := 0; round < 200; round++ {
			var fired []int32
			if round%3 == 0 {
				fired = append(fired, 2) // sustained ~33% firing
			}
			if round%17 == 0 {
				fired = append(fired, 9) // sporadic
			}
			w.Feed(round, fired)
			if trim && round%7 == 0 {
				w.Trim()
			}
		}
		return w.EstimateRates(1e-3, baseline, 2, 3)
	}
	plain, trimmed := mk(false), mk(true)
	if len(plain) == 0 {
		t.Fatal("stream produced no estimates; the comparison is vacuous")
	}
	if !reflect.DeepEqual(plain, trimmed) {
		t.Errorf("Trim biased the estimates:\nplain   %+v\ntrimmed %+v", plain, trimmed)
	}
	// Flagged agrees too (the deformation path reads the same window).
	w1, w2 := NewWindow(20, 0.25), NewWindow(20, 0.25)
	for round := 0; round < 50; round++ {
		var fired []int32
		if round%2 == 0 {
			fired = []int32{3}
		}
		w1.Feed(round, fired)
		w2.Feed(round, fired)
		w2.Trim()
	}
	if !reflect.DeepEqual(w1.Flagged(), w2.Flagged()) {
		t.Error("Trim changed Flagged")
	}
}

func TestWindowTrim(t *testing.T) {
	w := NewWindow(5, 0.5)
	for round := 0; round < 30; round++ {
		w.Feed(round, []int32{1})
	}
	w.Trim()
	// After trimming, history holds at most the window.
	if got := len(w.history[1]); got > 5 {
		t.Errorf("history length %d after Trim, want <= 5", got)
	}
	if len(w.Flagged()) != 1 {
		t.Error("observable should remain flagged after Trim")
	}
	// An observable that stopped firing falls out of the window.
	for round := 30; round < 40; round++ {
		w.Feed(round, nil)
	}
	if len(w.Flagged()) != 0 {
		t.Error("stale observable should unflag")
	}
}
