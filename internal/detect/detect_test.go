package detect

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
)

func TestOracleRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var truth, healthy []lattice.Coord
	for i := 0; i < 200; i++ {
		truth = append(truth, lattice.Coord{Row: 1, Col: 2*i + 1})
		healthy = append(healthy, lattice.Coord{Row: 3, Col: 2*i + 1})
	}
	report := Oracle(truth, healthy, 0.05, 0.1, rng)
	inReport := map[lattice.Coord]bool{}
	for _, q := range report {
		inReport[q] = true
	}
	var hits, falsePos int
	for _, q := range truth {
		if inReport[q] {
			hits++
		}
	}
	for _, q := range healthy {
		if inReport[q] {
			falsePos++
		}
	}
	// Expected: ~180 hits (fn=0.1), ~10 false positives (fp=0.05).
	if hits < 160 || hits > 200 {
		t.Errorf("hits %d, want ≈180", hits)
	}
	if falsePos < 2 || falsePos > 25 {
		t.Errorf("false positives %d, want ≈10", falsePos)
	}
}

func TestOraclePerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := []lattice.Coord{{Row: 1, Col: 1}, {Row: 3, Col: 3}}
	healthy := []lattice.Coord{{Row: 5, Col: 5}}
	report := Oracle(truth, healthy, 0, 0, rng)
	if len(report) != 2 {
		t.Fatalf("perfect oracle returned %d sites, want 2", len(report))
	}
}

func TestWindowSeparatesDefects(t *testing.T) {
	w := NewWindow(20, 0.25)
	rng := rand.New(rand.NewSource(3))
	// Observable 7 is adjacent to a 50% defect (fires ~half the rounds);
	// observables 0..5 are healthy (fire at ~1%).
	for round := 0; round < 40; round++ {
		var fired []int32
		for o := int32(0); o < 6; o++ {
			if rng.Float64() < 0.01 {
				fired = append(fired, o)
			}
		}
		if rng.Float64() < 0.5 {
			fired = append(fired, 7)
		}
		w.Feed(round, fired)
	}
	flagged := w.Flagged()
	found := false
	for _, o := range flagged {
		if o == 7 {
			found = true
		} else {
			t.Errorf("healthy observable %d flagged", o)
		}
	}
	if !found {
		t.Error("defective observable not flagged")
	}
}

func TestWindowTrim(t *testing.T) {
	w := NewWindow(5, 0.5)
	for round := 0; round < 30; round++ {
		w.Feed(round, []int32{1})
	}
	w.Trim()
	// After trimming, history holds at most the window.
	if got := len(w.history[1]); got > 5 {
		t.Errorf("history length %d after Trim, want <= 5", got)
	}
	if len(w.Flagged()) != 1 {
		t.Error("observable should remain flagged after Trim")
	}
	// An observable that stopped firing falls out of the window.
	for round := 30; round < 40; round++ {
		w.Feed(round, nil)
	}
	if len(w.Flagged()) != 0 {
		t.Error("stale observable should unflag")
	}
}
