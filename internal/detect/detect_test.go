package detect

import (
	"math/rand"
	"testing"

	"surfdeformer/internal/lattice"
)

func TestOracleRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var truth, healthy []lattice.Coord
	for i := 0; i < 200; i++ {
		truth = append(truth, lattice.Coord{Row: 1, Col: 2*i + 1})
		healthy = append(healthy, lattice.Coord{Row: 3, Col: 2*i + 1})
	}
	report := Oracle(truth, healthy, 0.05, 0.1, rng)
	inReport := map[lattice.Coord]bool{}
	for _, q := range report {
		inReport[q] = true
	}
	var hits, falsePos int
	for _, q := range truth {
		if inReport[q] {
			hits++
		}
	}
	for _, q := range healthy {
		if inReport[q] {
			falsePos++
		}
	}
	// Expected: ~180 hits (fn=0.1), ~10 false positives (fp=0.05).
	if hits < 160 || hits > 200 {
		t.Errorf("hits %d, want ≈180", hits)
	}
	if falsePos < 2 || falsePos > 25 {
		t.Errorf("false positives %d, want ≈10", falsePos)
	}
}

func TestOraclePerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := []lattice.Coord{{Row: 1, Col: 1}, {Row: 3, Col: 3}}
	healthy := []lattice.Coord{{Row: 5, Col: 5}}
	report := Oracle(truth, healthy, 0, 0, rng)
	if len(report) != 2 {
		t.Fatalf("perfect oracle returned %d sites, want 2", len(report))
	}
}

func TestWindowSeparatesDefects(t *testing.T) {
	w := NewWindow(20, 0.25)
	rng := rand.New(rand.NewSource(3))
	// Observable 7 is adjacent to a 50% defect (fires ~half the rounds);
	// observables 0..5 are healthy (fire at ~1%).
	for round := 0; round < 40; round++ {
		var fired []int32
		for o := int32(0); o < 6; o++ {
			if rng.Float64() < 0.01 {
				fired = append(fired, o)
			}
		}
		if rng.Float64() < 0.5 {
			fired = append(fired, 7)
		}
		w.Feed(round, fired)
	}
	flagged := w.Flagged()
	found := false
	for _, o := range flagged {
		if o == 7 {
			found = true
		} else {
			t.Errorf("healthy observable %d flagged", o)
		}
	}
	if !found {
		t.Error("defective observable not flagged")
	}
}

// TestWindowWarmup pins the warm-up fix: before one full window has
// elapsed, the firing-rate denominator is the number of rounds actually
// fed, not the configured window length — an early-stream defect firing at
// 100% must be flagged even though its absolute firing count is far below
// threshold·rounds.
func TestWindowWarmup(t *testing.T) {
	w := NewWindow(20, 0.5)
	for round := 0; round < 6; round++ {
		w.Feed(round, []int32{3})
	}
	// 6 firings in 6 rounds: rate 1.0. The pre-fix denominator of 20 rounds
	// demanded 10 absolute firings and left this unflagged.
	flagged := w.Flagged()
	if len(flagged) != 1 || flagged[0] != 3 {
		t.Fatalf("100%%-firing early-stream observable not flagged during warm-up: got %v", flagged)
	}

	// A healthy observable with one firing in the same warm-up stretch must
	// stay below a 50% rate threshold.
	w2 := NewWindow(20, 0.5)
	w2.Feed(0, []int32{4})
	for round := 1; round < 6; round++ {
		w2.Feed(round, nil)
	}
	if got := w2.Flagged(); len(got) != 0 {
		t.Errorf("single warm-up firing flagged: %v", got)
	}

	// Once a full window has elapsed the denominator is the configured
	// length again: 6 firings inside a 20-round window at threshold 0.5 do
	// not flag.
	w3 := NewWindow(20, 0.5)
	for round := 0; round < 40; round++ {
		var fired []int32
		if round >= 34 {
			fired = []int32{5}
		}
		w3.Feed(round, fired)
	}
	if got := w3.Flagged(); len(got) != 0 {
		t.Errorf("6/20 rate flagged at threshold 0.5 after warm-up: %v", got)
	}
}

// TestWindowFeedIdempotent pins the duplicate-feed fix: re-feeding the same
// (round, observable) pair must not double-count, so window rates can never
// exceed 1.0 and trimmed history cannot be re-inflated.
func TestWindowFeedIdempotent(t *testing.T) {
	w := NewWindow(4, 0.9)
	for round := 0; round < 8; round++ {
		w.Feed(round, []int32{1})
		w.Feed(round, []int32{1}) // duplicate feed of the same round
	}
	if got := len(w.history[1]); got != 8 {
		t.Errorf("history holds %d entries after duplicate feeds, want 8", got)
	}
	// Rate is exactly 1.0 (4 firings in a 4-round window), not 2.0.
	lo := w.current - w.rounds + 1
	n := 0
	for _, r := range w.history[1] {
		if r >= lo {
			n++
		}
	}
	if n != 4 {
		t.Errorf("window firing count %d, want 4", n)
	}

	// Duplicate feeds after a Trim must not re-append the current round.
	w.Trim()
	w.Feed(7, []int32{1})
	if got := len(w.history[1]); got != 4 {
		t.Errorf("history holds %d entries after post-Trim duplicate feed, want 4", got)
	}
}

// TestWindowRejectsDecreasingRounds pins the documented contract: rounds
// must be fed in non-decreasing order, and a decreasing feed is ignored
// rather than corrupting the window state.
func TestWindowRejectsDecreasingRounds(t *testing.T) {
	w := NewWindow(5, 0.5)
	w.Feed(10, []int32{2})
	w.Feed(4, []int32{7}) // decreasing: ignored
	if w.current != 10 {
		t.Errorf("current round %d after decreasing feed, want 10", w.current)
	}
	if len(w.history[7]) != 0 {
		t.Errorf("decreasing feed recorded history: %v", w.history[7])
	}
	w.Feed(10, []int32{9}) // equal round is fine
	if len(w.history[9]) != 1 {
		t.Errorf("equal-round feed not recorded")
	}
}

func TestWindowTrim(t *testing.T) {
	w := NewWindow(5, 0.5)
	for round := 0; round < 30; round++ {
		w.Feed(round, []int32{1})
	}
	w.Trim()
	// After trimming, history holds at most the window.
	if got := len(w.history[1]); got > 5 {
		t.Errorf("history length %d after Trim, want <= 5", got)
	}
	if len(w.Flagged()) != 1 {
		t.Error("observable should remain flagged after Trim")
	}
	// An observable that stopped firing falls out of the window.
	for round := 30; round < 40; round++ {
		w.Feed(round, nil)
	}
	if len(w.Flagged()) != 0 {
		t.Error("stale observable should unflag")
	}
}
