// Package detect implements dynamic-defect detection.
//
// Two detectors are provided. Oracle models the hardware detectors the
// paper assumes ([31,32] and fig. 14b): it reports the true defective set
// distorted by configurable false-positive and false-negative rates.
// Window is a real statistical detector over the syndrome stream: a
// defective region fires its checks almost every round, so a sliding-window
// event-rate threshold per observable locates defects — the "statistical
// methods" of the paper's §II-B.
package detect

import (
	"math"
	"math/rand"
	"slices"

	"surfdeformer/internal/lattice"
)

// Oracle distorts the true defective set: every true defect is missed with
// probability fn, and every healthy candidate site is spuriously reported
// with probability fp. The paper's fig. 14b uses fp = fn = 0.01.
func Oracle(truth, healthy []lattice.Coord, fp, fn float64, rng *rand.Rand) []lattice.Coord {
	var out []lattice.Coord
	for _, q := range truth {
		if rng.Float64() >= fn {
			out = append(out, q)
		}
	}
	for _, q := range healthy {
		if rng.Float64() < fp {
			out = append(out, q)
		}
	}
	lattice.SortCoords(out)
	return out
}

// Window is a sliding-window syndrome-rate defect detector. Feed it the
// per-round firing pattern of each tracked observable; an observable whose
// event rate within the window exceeds the threshold is flagged.
type Window struct {
	rounds    int     // window length in rounds
	threshold float64 // firing-rate threshold in (0, 1)
	halflife  float64 // EstimateRates temporal half-life in rounds (0 = uniform)

	history map[int32][]int // per observable: recent firing rounds
	current int
	first   int  // first round ever fed (for the warm-up window length)
	started bool // whether any round has been fed yet
}

// NewWindow creates a detector with the given window length and rate
// threshold. A healthy check fires at a rate of order the physical error
// rate (~1e-2 for weight-4 checks at p=1e-3); a check adjacent to a 50%
// defect fires at a rate near 0.5, so thresholds around 0.25 separate the
// two populations after a ~20-round window.
func NewWindow(rounds int, threshold float64) *Window {
	return &Window{rounds: rounds, threshold: threshold, history: map[int32][]int{}}
}

// SetHalflife enables exponential temporal weighting in EstimateRates: a
// firing h rounds old contributes 0.5^(h/halflife) of a fresh one, so the
// estimate tracks rapid event churn instead of lagging by up to a full
// window (the staleness mode of DESIGN.md §9). Zero (the default) keeps
// the uniform window — bit-identical to the unweighted estimator.
// Flagging is unaffected: detection wants the full window's evidence.
// Negative half-lives are rejected by the callers' config validation; the
// detector itself treats them as zero.
func (w *Window) SetHalflife(halflife float64) {
	if halflife < 0 {
		halflife = 0
	}
	w.halflife = halflife
}

// Feed records the observables that fired (produced a detection event) in
// the given round. Rounds must be fed in non-decreasing order; a feed for a
// round earlier than the latest one violates the contract and is ignored.
// Feeding the same (round, observable) pair twice is idempotent, so replayed
// or merged streams cannot inflate window rates past 1.
func (w *Window) Feed(round int, fired []int32) {
	if !w.started {
		w.started = true
		w.first = round
		w.current = round
	}
	if round < w.current {
		return // decreasing round: contract violation, ignore
	}
	w.current = round
	for _, o := range fired {
		if h := w.history[o]; len(h) > 0 && h[len(h)-1] == round {
			continue // duplicate (round, observable) feed
		}
		w.history[o] = append(w.history[o], round)
	}
}

// effectiveRounds returns the number of rounds actually inside the trailing
// window: the configured length once the stream has warmed up, the number of
// rounds fed so far before that. Using the configured length during warm-up
// would demand threshold·rounds absolute firings from however few rounds
// have elapsed, inflating the detection latency of early-stream defects.
func (w *Window) effectiveRounds() int {
	if !w.started {
		return 0
	}
	if have := w.current - w.first + 1; have < w.rounds {
		return have
	}
	return w.rounds
}

// Flagged returns the observables whose event rate inside the trailing
// window exceeds the threshold. The rate denominator is the effective window
// length, so defects striking before one full window has elapsed are judged
// by the same rate criterion as late ones.
func (w *Window) Flagged() []int32 {
	eff := w.effectiveRounds()
	if eff == 0 {
		return nil
	}
	lo := w.current - w.rounds + 1
	var out []int32
	for o, rounds := range w.history {
		n := 0
		for _, r := range rounds {
			if r >= lo {
				n++
			}
		}
		if float64(n) >= w.threshold*float64(eff) {
			out = append(out, o)
		}
	}
	slices.Sort(out)
	return out
}

// RateEstimate is one observable with sustained elevated firing: the
// observed windowed firing rate, the nominal baseline it was measured
// against, and the estimated physical error-rate multiplier at the
// observable's sites inferred by inverting the firing model.
type RateEstimate struct {
	Observable int32
	// FireRate is the raw observed firing rate inside the trailing window
	// (unclamped — it can reach 1.0; only the inversion saturates at ½, so
	// callers can compare FireRate against their own flag thresholds).
	FireRate float64
	// Baseline is the nominal per-round firing probability supplied by the
	// caller for this observable.
	Baseline float64
	// Multiplier is the estimated per-site physical error-rate multiplier:
	// estimated local rate ≈ Multiplier × nominal physical rate.
	Multiplier float64
}

// maxFireRate caps observed and baseline firing rates just below ½ before
// inversion: a detector firing at ≥ 50% carries no more rate information
// (the XOR of its mechanisms has saturated), and the inversion below is
// singular at exactly ½.
const maxFireRate = 0.499

// EstimateRates is the decoder-prior rate estimator of the paper's §VIII
// reweight tier: it maps sustained elevated firing onto estimated per-site
// physical error-rate multipliers.
//
// A detector's firing probability under independent error mechanisms is
// f = ½(1 − (1−2r)^k) — the XOR of k Bernoulli(r) draws — so the observed
// window rate is inverted through that saturating model rather than
// linearly: the effective mechanism count k is fitted from the supplied
// baseline rate at the nominal physical rate p, and the estimated local
// rate is r̂ = ½(1 − (1−2f)^(1/k)). Linear inversion (f/baseline) would
// underestimate strong elevations badly, because firing saturates at ½
// while local rates keep growing toward ½ per mechanism.
//
// baseline returns the nominal per-round firing probability of an
// observable (non-positive = unknown: the observable is skipped — e.g. a
// check that no longer exists in the current code). An observable
// qualifies only when it fired at least minFirings times inside the window
// ("sustained", so single noise firings over a short effective window
// cannot masquerade as drift) and its estimated Multiplier is at least
// minMultiplier. Results are sorted by observable id — deterministic for
// any feeding order.
func (w *Window) EstimateRates(p float64, baseline func(int32) float64, minMultiplier float64, minFirings int) []RateEstimate {
	eff := w.effectiveRounds()
	if eff == 0 || p <= 0 || p >= 0.5 {
		return nil
	}
	if minFirings < 1 {
		minFirings = 1
	}
	lo := w.current - w.rounds + 1
	// Under exponential weighting the denominator is the total weight of
	// the rounds inside the effective window; it depends only on (eff,
	// halflife), so hoist it out of the per-observable loop.
	var weightedEff float64
	if w.halflife > 0 {
		for a := 0; a < eff; a++ {
			weightedEff += math.Pow(0.5, float64(a)/w.halflife)
		}
	}
	var out []RateEstimate
	for o, rounds := range w.history {
		n := 0
		for _, r := range rounds {
			if r >= lo {
				n++
			}
		}
		if n < minFirings {
			continue
		}
		f0 := baseline(o)
		if f0 <= 0 {
			continue
		}
		if f0 > maxFireRate {
			f0 = maxFireRate
		}
		raw := float64(n) / float64(eff)
		if w.halflife > 0 {
			// Weighted firing mass over weighted window mass: recent
			// firings dominate, so a subsided burst decays out of the
			// estimate with the half-life instead of persisting until it
			// slides past the window edge. The minFirings gate above
			// stays on the raw count — "sustained" is about evidence,
			// not recency.
			var mass float64
			for _, r := range rounds {
				if r >= lo {
					mass += math.Pow(0.5, float64(w.current-r)/w.halflife)
				}
			}
			raw = mass / weightedEff
		}
		f := raw
		if f > maxFireRate {
			f = maxFireRate
		}
		k := math.Log(1-2*f0) / math.Log(1-2*p)
		if k < 1 {
			k = 1
		}
		est := 0.5 * (1 - math.Pow(1-2*f, 1/k))
		mult := est / p
		if mult < minMultiplier {
			continue
		}
		out = append(out, RateEstimate{Observable: o, FireRate: raw, Baseline: f0, Multiplier: mult})
	}
	slices.SortFunc(out, func(a, b RateEstimate) int { return int(a.Observable) - int(b.Observable) })
	return out
}

// Trim drops history older than the window (call occasionally on long
// streams to bound memory).
func (w *Window) Trim() {
	lo := w.current - w.rounds + 1
	for o, rounds := range w.history {
		keep := rounds[:0]
		for _, r := range rounds {
			if r >= lo {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(w.history, o)
			continue
		}
		w.history[o] = keep
	}
}
