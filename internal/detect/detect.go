// Package detect implements dynamic-defect detection.
//
// Two detectors are provided. Oracle models the hardware detectors the
// paper assumes ([31,32] and fig. 14b): it reports the true defective set
// distorted by configurable false-positive and false-negative rates.
// Window is a real statistical detector over the syndrome stream: a
// defective region fires its checks almost every round, so a sliding-window
// event-rate threshold per observable locates defects — the "statistical
// methods" of the paper's §II-B.
package detect

import (
	"math/rand"
	"slices"

	"surfdeformer/internal/lattice"
)

// Oracle distorts the true defective set: every true defect is missed with
// probability fn, and every healthy candidate site is spuriously reported
// with probability fp. The paper's fig. 14b uses fp = fn = 0.01.
func Oracle(truth, healthy []lattice.Coord, fp, fn float64, rng *rand.Rand) []lattice.Coord {
	var out []lattice.Coord
	for _, q := range truth {
		if rng.Float64() >= fn {
			out = append(out, q)
		}
	}
	for _, q := range healthy {
		if rng.Float64() < fp {
			out = append(out, q)
		}
	}
	lattice.SortCoords(out)
	return out
}

// Window is a sliding-window syndrome-rate defect detector. Feed it the
// per-round firing pattern of each tracked observable; an observable whose
// event rate within the window exceeds the threshold is flagged.
type Window struct {
	rounds    int     // window length in rounds
	threshold float64 // firing-rate threshold in (0, 1)

	history map[int32][]int // per observable: recent firing rounds
	current int
	first   int  // first round ever fed (for the warm-up window length)
	started bool // whether any round has been fed yet
}

// NewWindow creates a detector with the given window length and rate
// threshold. A healthy check fires at a rate of order the physical error
// rate (~1e-2 for weight-4 checks at p=1e-3); a check adjacent to a 50%
// defect fires at a rate near 0.5, so thresholds around 0.25 separate the
// two populations after a ~20-round window.
func NewWindow(rounds int, threshold float64) *Window {
	return &Window{rounds: rounds, threshold: threshold, history: map[int32][]int{}}
}

// Feed records the observables that fired (produced a detection event) in
// the given round. Rounds must be fed in non-decreasing order; a feed for a
// round earlier than the latest one violates the contract and is ignored.
// Feeding the same (round, observable) pair twice is idempotent, so replayed
// or merged streams cannot inflate window rates past 1.
func (w *Window) Feed(round int, fired []int32) {
	if !w.started {
		w.started = true
		w.first = round
		w.current = round
	}
	if round < w.current {
		return // decreasing round: contract violation, ignore
	}
	w.current = round
	for _, o := range fired {
		if h := w.history[o]; len(h) > 0 && h[len(h)-1] == round {
			continue // duplicate (round, observable) feed
		}
		w.history[o] = append(w.history[o], round)
	}
}

// effectiveRounds returns the number of rounds actually inside the trailing
// window: the configured length once the stream has warmed up, the number of
// rounds fed so far before that. Using the configured length during warm-up
// would demand threshold·rounds absolute firings from however few rounds
// have elapsed, inflating the detection latency of early-stream defects.
func (w *Window) effectiveRounds() int {
	if !w.started {
		return 0
	}
	if have := w.current - w.first + 1; have < w.rounds {
		return have
	}
	return w.rounds
}

// Flagged returns the observables whose event rate inside the trailing
// window exceeds the threshold. The rate denominator is the effective window
// length, so defects striking before one full window has elapsed are judged
// by the same rate criterion as late ones.
func (w *Window) Flagged() []int32 {
	eff := w.effectiveRounds()
	if eff == 0 {
		return nil
	}
	lo := w.current - w.rounds + 1
	var out []int32
	for o, rounds := range w.history {
		n := 0
		for _, r := range rounds {
			if r >= lo {
				n++
			}
		}
		if float64(n) >= w.threshold*float64(eff) {
			out = append(out, o)
		}
	}
	slices.Sort(out)
	return out
}

// Trim drops history older than the window (call occasionally on long
// streams to bound memory).
func (w *Window) Trim() {
	lo := w.current - w.rounds + 1
	for o, rounds := range w.history {
		keep := rounds[:0]
		for _, r := range rounds {
			if r >= lo {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(w.history, o)
			continue
		}
		w.history[o] = keep
	}
}
