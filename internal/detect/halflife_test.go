package detect

import (
	"math"
	"reflect"
	"testing"
)

// feedBurst fires observable o every round in [from, to).
func feedBurst(w *Window, o int32, from, to int) {
	for r := from; r < to; r++ {
		w.Feed(r, []int32{o})
	}
}

// feedQuiet advances the stream without firings.
func feedQuiet(w *Window, from, to int) {
	for r := from; r < to; r++ {
		w.Feed(r, nil)
	}
}

// TestHalflifeDefaultOffBitIdentical pins the compatibility contract: a
// zero half-life (the default) yields exactly the unweighted estimator,
// bit for bit, on a mixed stream.
func TestHalflifeDefaultOffBitIdentical(t *testing.T) {
	base := func(int32) float64 { return 0.02 }
	mk := func() *Window {
		w := NewWindow(40, 0.25)
		feedBurst(w, 7, 0, 25)
		feedQuiet(w, 25, 35)
		feedBurst(w, 9, 30, 40)
		return w
	}
	plain := mk()
	zeroed := mk()
	zeroed.SetHalflife(0)
	negative := mk()
	negative.SetHalflife(-3) // treated as off
	want := plain.EstimateRates(1e-3, base, 1, 3)
	if len(want) == 0 {
		t.Fatal("test stream produced no estimates")
	}
	if got := zeroed.EstimateRates(1e-3, base, 1, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("halflife 0 differs from default:\n got %+v\nwant %+v", got, want)
	}
	if got := negative.EstimateRates(1e-3, base, 1, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("negative halflife differs from default:\n got %+v\nwant %+v", got, want)
	}
}

// TestHalflifeStalenessUnderChurn pins the staleness fix: after a burst
// subsides mid-window, the weighted estimator's rate for the stale
// observable decays well below the unweighted one (which keeps averaging
// the dead burst until it slides out), while a currently-active observable
// estimates the same or hotter.
func TestHalflifeStalenessUnderChurn(t *testing.T) {
	const window = 60
	base := func(int32) float64 { return 0.02 }
	mk := func(halflife float64) *Window {
		w := NewWindow(window, 0.25)
		w.SetHalflife(halflife)
		// Rapid churn: observable 1 burns hot for the first third of the
		// window then dies; observable 2 ignites for the final third.
		for r := 0; r < window; r++ {
			var fired []int32
			if r < window/3 {
				fired = append(fired, 1)
			}
			if r >= 2*window/3 {
				fired = append(fired, 2)
			}
			w.Feed(r, fired)
		}
		return w
	}
	find := func(ests []RateEstimate, o int32) (RateEstimate, bool) {
		for _, e := range ests {
			if e.Observable == o {
				return e, true
			}
		}
		return RateEstimate{}, false
	}

	uniform := mk(0).EstimateRates(1e-3, base, 1, 3)
	weighted := mk(10).EstimateRates(1e-3, base, 1, 3)

	uStale, ok1 := find(uniform, 1)
	wStale, ok2 := find(weighted, 1)
	if !ok1 || !ok2 {
		t.Fatal("stale observable missing from estimates")
	}
	// The stale burst ended 40 rounds ago = 4 half-lives: its weighted
	// rate must have decayed to a small fraction of the uniform average.
	if wStale.FireRate >= uStale.FireRate/2 {
		t.Errorf("stale rate did not decay: weighted %.4f vs uniform %.4f",
			wStale.FireRate, uStale.FireRate)
	}
	if wStale.Multiplier >= uStale.Multiplier {
		t.Errorf("stale multiplier did not decay: weighted %.2f vs uniform %.2f",
			wStale.Multiplier, uStale.Multiplier)
	}

	uHot, ok1 := find(uniform, 2)
	wHot, ok2 := find(weighted, 2)
	if !ok1 || !ok2 {
		t.Fatal("active observable missing from estimates")
	}
	// The live burst fills the most recent rounds: weighting must rate it
	// at least as hot as the uniform average (strictly hotter here, since
	// its dead early window decays away).
	if wHot.FireRate <= uHot.FireRate {
		t.Errorf("active rate not boosted: weighted %.4f vs uniform %.4f",
			wHot.FireRate, uHot.FireRate)
	}
}

// TestHalflifeSaturatedBurstStable sanity-checks the weighting math: an
// observable firing every round estimates the same rate (up to float
// noise) under any half-life — weights cancel when the firing pattern is
// uniform.
func TestHalflifeSaturatedBurstStable(t *testing.T) {
	base := func(int32) float64 { return 0.02 }
	rate := func(halflife float64) float64 {
		w := NewWindow(30, 0.25)
		w.SetHalflife(halflife)
		feedBurst(w, 4, 0, 30)
		ests := w.EstimateRates(1e-3, base, 1, 3)
		if len(ests) != 1 {
			t.Fatalf("want 1 estimate, got %d", len(ests))
		}
		return ests[0].FireRate
	}
	r0 := rate(0)
	for _, h := range []float64{1, 5, 30} {
		if r := rate(h); math.Abs(r-r0) > 1e-9 {
			t.Errorf("halflife %g shifted a uniform firing pattern: %.6f vs %.6f", h, r, r0)
		}
	}
}

// TestHalflifeFlaggingUnaffected pins that SetHalflife changes only the
// estimator: Flagged keeps judging the uniform window.
func TestHalflifeFlaggingUnaffected(t *testing.T) {
	mk := func(h float64) *Window {
		w := NewWindow(40, 0.25)
		w.SetHalflife(h)
		feedBurst(w, 3, 0, 15)
		feedQuiet(w, 15, 40)
		return w
	}
	want := mk(0).Flagged()
	if got := mk(5).Flagged(); !reflect.DeepEqual(got, want) {
		t.Errorf("halflife changed flagging: %v vs %v", got, want)
	}
}
