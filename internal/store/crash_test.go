package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"surfdeformer/internal/obs"
)

func mustAppend(t *testing.T, s *Store, r Row) {
	t.Helper()
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
}

func fileBytes(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Every appended row carries the v2 CRC32C suffix, and the checksum
// actually binds the bytes: flipping anything — payload or checksum —
// makes the line unreadable.
func TestRowChecksumBindsBytes(t *testing.T) {
	s := tempStore(t)
	mustAppend(t, s, Row{Key: "k1", Seq: 0, Shots: 100, Failures: 3})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	line := bytes.TrimRight(fileBytes(t, s.Path()), "\n")
	i := bytes.LastIndexByte(line, '\t')
	if i < 0 || len(line)-i-1 != 8 {
		t.Fatalf("line lacks tab + 8-hex checksum suffix: %q", line)
	}
	if _, ok := decodeLine(line); !ok {
		t.Fatalf("freshly written line does not decode: %q", line)
	}
	for _, flip := range []int{2, len(line) - 1} { // a JSON byte, a checksum digit
		mut := append([]byte(nil), line...)
		mut[flip] ^= 1
		if _, ok := decodeLine(mut); ok {
			t.Fatalf("flipped byte %d went undetected: %q", flip, mut)
		}
	}
}

// Stores written before the checksum format (bare JSON rows) stay
// readable, and new appends to them use the v2 format alongside.
func TestV1LegacyRowsReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	v1 := `{"key":"old","kind":"sweep","seq":0,"shots":800,"failures":9,"complete":true}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Corrupted() != 0 || s.Repair().Repaired() {
		t.Fatalf("legacy row misread: corrupted=%d repair=%+v", s.Corrupted(), s.Repair())
	}
	p, ok := s.Get("old")
	if !ok || p.Shots != 800 || p.Failures != 9 || !p.Complete {
		t.Fatalf("legacy point mangled: %+v (ok=%v)", p, ok)
	}
	mustAppend(t, s, Row{Key: "old", Seq: 1, Shots: 200, Failures: 2})
	s.Close()
	reopen, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	p, _ = reopen.Get("old")
	if p.Shots != 1000 || p.Segments != 2 {
		t.Fatalf("v1+v2 merge mangled: %+v", p)
	}
}

// A checksum-failing line in the middle of the file — followed by valid
// rows, so not a crash tail — is tolerated and counted, never truncated.
func TestChecksumMismatchMidFileTolerated(t *testing.T) {
	s := tempStore(t)
	mustAppend(t, s, Row{Key: "a", Seq: 0, Shots: 10})
	mustAppend(t, s, Row{Key: "b", Seq: 0, Shots: 20})
	s.Close()
	data := fileBytes(t, s.Path())
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[0][2] ^= 1 // corrupt row "a", leaving row "b" as a valid tail
	if err := os.WriteFile(s.Path(), bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	size := int64(len(data))
	reopen, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	if reopen.Corrupted() != 1 {
		t.Fatalf("Corrupted() = %d, want 1", reopen.Corrupted())
	}
	if reopen.Repair().Repaired() {
		t.Fatalf("mid-file corruption misdiagnosed as torn tail: %+v", reopen.Repair())
	}
	if info, _ := os.Stat(s.Path()); info.Size() != size {
		t.Fatalf("file truncated from %d to %d bytes", size, info.Size())
	}
	if _, ok := reopen.Get("b"); !ok {
		t.Fatal("valid row after corruption lost")
	}
}

// A torn tail — an append cut short mid-line by a crash — is truncated
// back to the last committed row, reported, and gone on the next open.
func TestTornTailRepaired(t *testing.T) {
	s := tempStore(t)
	mustAppend(t, s, Row{Key: "a", Seq: 0, Shots: 10})
	mustAppend(t, s, Row{Key: "b", Seq: 0, Shots: 20})
	s.Close()
	whole := fileBytes(t, s.Path())
	const cut = 7
	if err := os.Truncate(s.Path(), int64(len(whole)-cut)); err != nil {
		t.Fatal(err)
	}
	reopen, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	rep := reopen.Repair()
	if rep.DroppedLines != 1 {
		t.Fatalf("DroppedLines = %d, want 1", rep.DroppedLines)
	}
	lastLine := whole[bytes.LastIndexByte(whole[:len(whole)-1], '\n')+1:]
	if want := int64(len(lastLine) - cut); rep.TruncatedBytes != want {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, want)
	}
	if _, ok := reopen.Get("a"); !ok {
		t.Fatal("committed row lost by tail repair")
	}
	if _, ok := reopen.Get("b"); ok {
		t.Fatal("torn row resurrected")
	}
	// The repaired file must be appendable and cleanly re-openable.
	mustAppend(t, reopen, Row{Key: "b", Seq: 0, Shots: 20})
	reopen.Close()
	again, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Repair().Repaired() || again.Corrupted() != 0 {
		t.Fatalf("second open still repairing: %+v", again.Repair())
	}
	if !bytes.Equal(fileBytes(t, s.Path()), whole) {
		t.Fatal("repair + re-append does not reproduce the uninterrupted file")
	}
}

// A terminated-but-corrupt final run of lines is also a crash tail (the
// newline made it, the payload did not) and is truncated the same way.
func TestCorruptTerminatedTailRepaired(t *testing.T) {
	s := tempStore(t)
	mustAppend(t, s, Row{Key: "a", Seq: 0, Shots: 10})
	s.Close()
	good := fileBytes(t, s.Path())
	f, err := os.OpenFile(s.Path(), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "{\"key\":\"zzz\"garbage\n{also bad\n")
	f.Close()
	reopen, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	rep := reopen.Repair()
	if rep.DroppedLines != 2 || reopen.Corrupted() != 0 {
		t.Fatalf("repair = %+v corrupted = %d, want 2 dropped tail lines", rep, reopen.Corrupted())
	}
	if !bytes.Equal(fileBytes(t, s.Path()), good) {
		t.Fatal("truncation did not restore the committed prefix")
	}
}

// The GC crash window: a crash between temp-file write and rename leaves
// an orphaned temp beside an untouched store. Open must remove the temps
// and lose no committed row.
func TestGCCrashWindowCleanup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, Row{Key: "a", Seq: 0, Shots: 10, Failures: 1})
	mustAppend(t, s, Row{Key: "b", Seq: 0, Shots: 20, Failures: 2})
	s.Close()
	committed := fileBytes(t, path)

	// One junk temp (crash early in GC) and one complete temp (crash just
	// before the rename) — both are dead weight once Open runs.
	for i, content := range []string{"partial junk", string(committed)} {
		tmp := filepath.Join(dir, fmt.Sprintf(".gc-results.jsonl.%06d", i))
		if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reopen, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	if got := reopen.Repair().TempsRemoved; got != 2 {
		t.Fatalf("TempsRemoved = %d, want 2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gc-") {
			t.Fatalf("stale temp survived: %s", e.Name())
		}
	}
	for _, key := range []string{"a", "b"} {
		if _, ok := reopen.Get(key); !ok {
			t.Fatalf("committed row %q lost in GC crash cleanup", key)
		}
	}
	if !bytes.Equal(fileBytes(t, path), committed) {
		t.Fatal("store bytes changed by temp cleanup")
	}
}

// A failed BeforeAppend hook (the fault-injection seam) must fail the
// append before anything reaches the file or the index, so a retried
// point re-appends the identical bytes a clean run would have written.
func TestBeforeAppendFailureLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	fail := true
	s, err := OpenWith(filepath.Join(dir, "hooked.jsonl"), Options{
		BeforeAppend: func([]byte) error {
			if fail {
				return fmt.Errorf("injected")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	row := Row{Key: "k", Seq: 0, Shots: 100, Failures: 5}
	if err := s.Append(row); err == nil {
		t.Fatal("hooked append unexpectedly succeeded")
	}
	if len(fileBytes(t, s.Path())) != 0 {
		t.Fatal("failed append wrote bytes")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("failed append reached the index")
	}
	fail = false
	mustAppend(t, s, row)
	s.Sync()

	clean, err := Open(filepath.Join(dir, "clean.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	mustAppend(t, clean, row)
	clean.Sync()
	if !bytes.Equal(fileBytes(t, s.Path()), fileBytes(t, clean.Path())) {
		t.Fatal("retried append diverges from a clean store")
	}
}

// The sync policies differ only in when fsync happens, observable via the
// store.syncs counter: always syncs per append, never leaves it to Close.
func TestSyncPolicies(t *testing.T) {
	syncs := obs.Default().Counter("store.syncs")
	dir := t.TempDir()

	always, err := OpenWith(filepath.Join(dir, "always.jsonl"), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	before := syncs.Value()
	mustAppend(t, always, Row{Key: "a", Seq: 0, Shots: 1})
	mustAppend(t, always, Row{Key: "b", Seq: 0, Shots: 1})
	if got := syncs.Value() - before; got != 2 {
		t.Fatalf("SyncAlways issued %d fsyncs for 2 appends, want 2", got)
	}
	always.Close()

	never, err := OpenWith(filepath.Join(dir, "never.jsonl"), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	before = syncs.Value()
	mustAppend(t, never, Row{Key: "a", Seq: 0, Shots: 1})
	mustAppend(t, never, Row{Key: "b", Seq: 0, Shots: 1})
	if got := syncs.Value() - before; got != 0 {
		t.Fatalf("SyncNever issued %d fsyncs on append, want 0", got)
	}
	if err := never.Close(); err != nil {
		t.Fatal(err)
	}
	if got := syncs.Value() - before; got != 1 {
		t.Fatalf("Close issued %d fsyncs, want exactly 1", got)
	}
}

// ParseSyncPolicy round-trips the flag spellings and rejects junk.
func TestParseSyncPolicy(t *testing.T) {
	for _, want := range []SyncPolicy{SyncInterval, SyncNever, SyncAlways} {
		got, err := ParseSyncPolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if p, err := ParseSyncPolicy(""); err != nil || p != SyncInterval {
		t.Fatalf("empty policy = %v, %v, want default interval", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("junk policy accepted")
	}
}
