package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"surfdeformer/internal/mc"
)

func tempStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	s := tempStore(t)
	cfg := json.RawMessage(`{"d":5,"p":0.004}`)
	if err := s.Append(Row{Key: "k1", Kind: "memsweep", Seq: 0, Shots: 1000, Failures: 13,
		Complete: true, Config: cfg, Payload: json.RawMessage(`{"z":1}`)}); err != nil {
		t.Fatal(err)
	}
	reopen, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	p, ok := reopen.Get("k1")
	if !ok {
		t.Fatal("k1 missing after reopen")
	}
	if p.Shots != 1000 || p.Failures != 13 || !p.Complete || p.Kind != "memsweep" {
		t.Fatalf("round trip mangled point: %+v", p)
	}
	if string(p.Payload) != `{"z":1}` {
		t.Fatalf("payload mangled: %s", p.Payload)
	}
	wantLo, wantHi := mc.WilsonInterval(13, 1000, mc.DefaultZ)
	if p.CILow != wantLo || p.CIHigh != wantHi {
		t.Fatalf("CI not recomputed from counts: [%v, %v]", p.CILow, p.CIHigh)
	}
}

func TestSegmentsMergeWithCIRecompute(t *testing.T) {
	s := tempStore(t)
	must := func(r Row) {
		t.Helper()
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Row{Key: "k", Seq: 0, Shots: 500, Failures: 5, Payload: json.RawMessage(`{"seg":0}`)})
	must(Row{Key: "k", Seq: 1, Shots: 1500, Failures: 20, Payload: json.RawMessage(`{"seg":1}`)})
	// Duplicate segment replays are ignored, not double-counted.
	must(Row{Key: "k", Seq: 1, Shots: 1500, Failures: 20})
	p, _ := s.Get("k")
	if p.Shots != 2000 || p.Failures != 25 || p.Segments != 2 || p.NextSeq != 2 {
		t.Fatalf("merge wrong: %+v", p)
	}
	if p.Rate != 25.0/2000 {
		t.Fatalf("rate %v not recomputed from merged counts", p.Rate)
	}
	lo, hi := mc.WilsonInterval(25, 2000, mc.DefaultZ)
	if p.CILow != lo || p.CIHigh != hi {
		t.Fatal("Wilson CI must come from the merged counts, not any single segment")
	}
	if string(p.Payload) != `{"seg":1}` {
		t.Fatalf("payload must track the highest segment, got %s", p.Payload)
	}
}

func TestHashStableAcrossFieldOrder(t *testing.T) {
	type a struct {
		D     int     `json:"d"`
		P     float64 `json:"p"`
		Label string  `json:"label"`
	}
	type b struct {
		Label string  `json:"label"`
		P     float64 `json:"p"`
		D     int     `json:"d"`
	}
	ka, err := Key("sweep", a{D: 7, P: 4e-3, Label: "uf"})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key("sweep", b{Label: "uf", P: 0.004, D: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("field order changed the hash: %s vs %s", ka, kb)
	}
	kc, _ := Key("sweep", a{D: 7, P: 4e-3, Label: "greedy"})
	if kc == ka {
		t.Fatal("distinct configs must hash apart")
	}
	kd, _ := Key("other", a{D: 7, P: 4e-3, Label: "uf"})
	if kd == ka {
		t.Fatal("kind must participate in the hash")
	}
	// Nested maps canonicalize too (map iteration order is random in Go).
	for i := 0; i < 8; i++ {
		k, err := Key("m", map[string]any{"z": 1, "a": 2, "nested": map[string]int{"x": 1, "y": 2}})
		if err != nil {
			t.Fatal(err)
		}
		k0, _ := Key("m", map[string]any{"nested": map[string]int{"y": 2, "x": 1}, "a": 2, "z": 1})
		if k != k0 {
			t.Fatal("map key order changed the hash")
		}
	}
}

func TestCorruptedLinesTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	good1, _ := json.Marshal(Row{Key: "a", Seq: 0, Shots: 10, Failures: 1})
	good2, _ := json.Marshal(Row{Key: "b", Seq: 0, Shots: 20, Failures: 2})
	content := string(good1) + "\n" +
		"{\"key\":\"torn\",\"sho" + "\n" + // torn append
		"not json at all\n" +
		"{\"seq\":3}\n" + // parsable but keyless
		string(good2) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("want 2 points, got %d", s.Len())
	}
	if s.Corrupted() != 3 {
		t.Fatalf("want 3 tolerated lines, got %d", s.Corrupted())
	}
	// The store stays appendable after tolerating garbage.
	if err := s.Append(Row{Key: "c", Seq: 0, Shots: 5}); err != nil {
		t.Fatal(err)
	}
	reopen, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	if reopen.Len() != 3 {
		t.Fatalf("append after corruption lost rows: %d points", reopen.Len())
	}
}

func TestGCCompacts(t *testing.T) {
	s := tempStore(t)
	for seq := 0; seq < 4; seq++ {
		if err := s.Append(Row{Key: "k", Kind: "memsweep", Seq: seq, Shots: 100, Failures: seq,
			Payload: json.RawMessage(`{"seg":` + string(rune('0'+seq)) + `}`)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Row{Key: "j", Seq: 0, Shots: 50, Failures: 1, Complete: true}); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Get("k")
	if err := s.GC(); err != nil {
		t.Fatal(err)
	}
	after, ok := s.Get("k")
	if !ok {
		t.Fatal("k lost by GC")
	}
	if after.Shots != before.Shots || after.Failures != before.Failures {
		t.Fatalf("GC changed merged counts: %+v vs %+v", after, before)
	}
	if after.Segments != 1 {
		t.Fatalf("GC should leave one segment, got %d", after.Segments)
	}
	if after.NextSeq != before.NextSeq {
		t.Fatalf("GC must preserve the segment-stream watermark: %d vs %d", after.NextSeq, before.NextSeq)
	}
	// The file itself shrank to one line per key and reopens identically.
	data, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("compacted file has %d lines, want 2", lines)
	}
	reopen, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer reopen.Close()
	rp, _ := reopen.Get("k")
	if rp.Shots != before.Shots || rp.Failures != before.Failures {
		t.Fatal("compacted file reopens with different counts")
	}
	// The watermark must survive the file round-trip, not just the open
	// handle: a NEW session growing a compacted point must never reuse a
	// stream index whose draws are already inside the merged counts.
	if rp.NextSeq != before.NextSeq {
		t.Fatalf("reopened compacted store lost the segment watermark: NextSeq %d, want %d",
			rp.NextSeq, before.NextSeq)
	}
	// Appends continue to work post-GC on the renamed file handle.
	if err := s.Append(Row{Key: "k", Seq: after.NextSeq, Shots: 100, Failures: 9}); err != nil {
		t.Fatal(err)
	}
	grown, _ := s.Get("k")
	if grown.Shots != before.Shots+100 {
		t.Fatalf("post-GC growth lost: %+v", grown)
	}
}

func TestKeysSorted(t *testing.T) {
	s := tempStore(t)
	for _, k := range []string{"zz", "aa", "mm"} {
		if err := s.Append(Row{Key: k, Seq: 0}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "aa" || keys[1] != "mm" || keys[2] != "zz" {
		t.Fatalf("keys not sorted: %v", keys)
	}
}
