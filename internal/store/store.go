// Package store is the persistent, content-addressed result store behind
// the experiment pipeline: an append-only JSONL file in which every line is
// one committed segment of one Monte-Carlo point, keyed by a canonical hash
// of the point's full configuration (lattice/defect generator parameters,
// policy, noise, decoder, rounds, adaptive target, seed).
//
// The store exists so sweeps can resume and grow across sessions. Appends
// are the only write operation, so an interrupted run never corrupts
// earlier rows — at worst the final line is torn, and Open repairs that by
// truncating the tail back to the last committed row (reported, never
// silent) while merely counting mid-file corruption. Every row carries a
// CRC32C suffix (the v2 line format; bare-JSON v1 rows stay readable), an
// fsync policy bounds what power loss can take, and GC compaction is
// crash-atomic (temp + fsync + rename). Segments of the same key
// accumulate: a session that needs more shots than the store holds
// computes only the remainder under a fresh segment-derived RNG stream and
// appends it, and Get merges all segments into one aggregate with the
// Wilson confidence interval recomputed from the merged counts.
//
// Two invariants make merged rows statistically coherent (see DESIGN.md §7):
// the configuration hash covers everything that fixes a point's RNG stream
// family and physics, and every segment's stream is derived from the point
// seed by a pure SplitMix64 chain (package mc), so rows written by
// different sessions, worker counts, or resume orders are the same rows a
// single uninterrupted run would have written.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"surfdeformer/internal/mc"
	"surfdeformer/internal/obs"
)

// Store metrics: segments merged into the index (from disk or appends),
// rows written, merged points served to resume, GC compactions, fsyncs
// issued, and tail rows dropped by torn-tail repair.
var (
	obsRowsAppended   = obs.Default().Counter("store.rows_appended")
	obsRowsServed     = obs.Default().Counter("store.rows_served")
	obsSegmentsMerged = obs.Default().Counter("store.segments_merged")
	obsGCRuns         = obs.Default().Counter("store.gc_runs")
	obsSyncs          = obs.Default().Counter("store.syncs")
	obsRowsRepaired   = obs.Default().Counter("store.rows_repaired")
	obsCorruptLines   = obs.Default().Counter("store.corrupted_lines")
)

// crcTable is the Castagnoli polynomial (CRC32C) used by the v2 row
// format — the same polynomial filesystems and storage protocols use for
// end-to-end integrity checking.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when Append fsyncs the backing file. Whatever the
// policy, Close and Sync always flush to stable storage, and a clean OS
// with a dirty page cache loses nothing on process death (even SIGKILL) —
// the policy only matters for power loss / kernel crashes.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs on append at most once per
	// SyncEvery: bounded data loss at near-SyncNever throughput.
	SyncInterval SyncPolicy = iota
	// SyncNever leaves durability to Close/Sync and the OS.
	SyncNever
	// SyncAlways fsyncs after every append: a committed row survives
	// anything, at one fsync per point.
	SyncAlways
)

// ParseSyncPolicy parses the -store-sync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want never, interval or always)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncAlways:
		return "always"
	default:
		return "interval"
	}
}

// Options tunes durability and testing hooks of an open store. The zero
// value is the production default: interval fsync, no injection.
type Options struct {
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the minimum spacing of interval-policy fsyncs
	// (default 1s). Ignored by the other policies.
	SyncEvery time.Duration
	// BeforeAppend, when non-nil, runs under the store lock just before a
	// row's bytes are written, with the exact line (checksum and newline
	// included) about to be appended. Returning an error fails the append
	// before anything reaches the file — the fault-injection seam used by
	// internal/chaos. Never set in production.
	BeforeAppend func(line []byte) error
}

// RepairReport describes what Open had to fix: a torn tail truncated away
// (an append cut short by a crash) and stale GC temp files removed (a GC
// killed between temp-file write and rename).
type RepairReport struct {
	// TruncatedBytes is how many trailing bytes were cut to restore the
	// last-line invariant.
	TruncatedBytes int64
	// DroppedLines is how many (partial or corrupt) tail lines those bytes
	// held; each is one uncommitted row lost, recomputed on resume.
	DroppedLines int
	// TempsRemoved counts orphaned GC temp files deleted.
	TempsRemoved int
}

// Repaired reports whether the report contains any repair action.
func (r RepairReport) Repaired() bool {
	return r.TruncatedBytes > 0 || r.DroppedLines > 0 || r.TempsRemoved > 0
}

// Row is one JSONL line: a committed segment of one point. Seq numbers the
// segments of a key; segment 0 is the stream an uninterrupted storeless run
// would use, so serving a completed point from the store reproduces that
// run byte-for-byte.
type Row struct {
	Key  string `json:"key"`
	Kind string `json:"kind,omitempty"`
	Seq  int    `json:"seq"`
	// Shots and Failures are this segment's committed Monte-Carlo counts
	// (zero for trial-style rows whose whole result lives in Payload).
	Shots    int `json:"shots,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Complete marks the point as fully served at its configured budget or
	// adaptive target; resume skips complete points without re-deriving
	// budgets.
	Complete bool `json:"complete,omitempty"`
	// Config is the canonical point configuration (informational — the Key
	// already commits to it; kept so store-ls output is self-describing).
	Config json.RawMessage `json:"config,omitempty"`
	// Payload carries experiment-specific results needed to replay the
	// point without recomputation (per-basis counts, flags, rendered
	// fields). For multi-segment keys the merge keeps the highest-Seq
	// payload.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Point is the merged view of all segments of one key.
type Point struct {
	Key      string
	Kind     string
	Config   json.RawMessage
	Shots    int
	Failures int
	// Rate, CILow and CIHigh are recomputed from the merged counts (95%
	// Wilson score interval); meaningless when Shots == 0.
	Rate, CILow, CIHigh float64
	Complete            bool
	Segments            int
	NextSeq             int
	Payload             json.RawMessage
}

func (p *Point) addRow(r Row) {
	p.Kind = r.Kind
	if len(r.Config) > 0 {
		p.Config = r.Config
	}
	p.Shots += r.Shots
	p.Failures += r.Failures
	p.Complete = p.Complete || r.Complete
	p.Segments++
	if r.Seq >= p.NextSeq {
		p.NextSeq = r.Seq + 1
		if len(r.Payload) > 0 {
			p.Payload = r.Payload
		}
	}
	if p.Shots > 0 {
		p.Rate = float64(p.Failures) / float64(p.Shots)
		p.CILow, p.CIHigh = mc.WilsonInterval(p.Failures, p.Shots, mc.DefaultZ)
	}
}

// Store is an open JSONL result store. It is safe for concurrent use; the
// point-level worker pool appends from many goroutines.
type Store struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	opts      Options
	points    map[string]*Point
	seen      map[string]bool // key\x00seq dedup — identical segments replay identically
	corrupted int
	repair    RepairReport
	lastSync  time.Time
}

// encodeRow renders one v2 store line: the row's JSON, a tab, and the
// 8-hex CRC32C of the JSON, newline-terminated. JSON escapes tabs inside
// strings, so the separator is unambiguous.
func encodeRow(r Row) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	line := make([]byte, 0, len(b)+10)
	line = append(line, b...)
	line = append(line, '\t')
	line = appendCRCHex(line, crc32.Checksum(b, crcTable))
	return append(line, '\n'), nil
}

func appendCRCHex(dst []byte, crc uint32) []byte {
	const hexDigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(crc>>shift)&0xf])
	}
	return dst
}

// decodeLine parses one store line in either row format. A v2 line (tab +
// 8-hex CRC32C suffix) is verified against its checksum; anything else is
// read as a bare v1 JSON row, so stores written before the checksum format
// stay readable. ok is false for torn, corrupt, or checksum-failing lines.
func decodeLine(line []byte) (Row, bool) {
	var r Row
	data := line
	if i := strings.LastIndexByte(string(line), '\t'); i >= 0 {
		suffix := line[i+1:]
		if len(suffix) != 8 {
			return r, false
		}
		var crc uint32
		for _, c := range suffix {
			switch {
			case c >= '0' && c <= '9':
				crc = crc<<4 | uint32(c-'0')
			case c >= 'a' && c <= 'f':
				crc = crc<<4 | uint32(c-'a'+10)
			default:
				return r, false
			}
		}
		data = line[:i]
		if crc32.Checksum(data, crcTable) != crc {
			return r, false
		}
	}
	if err := json.Unmarshal(data, &r); err != nil || r.Key == "" {
		return Row{}, false
	}
	return r, true
}

// Open reads (or creates) the store at path with default Options.
func Open(path string) (*Store, error) {
	return OpenWith(path, Options{})
}

// OpenWith reads (or creates) the store at path, merging every parsable
// row into the in-memory index and repairing crash damage:
//
//   - Unparsable lines in the middle of the file — followed by valid rows,
//     so not a crash tail — are tolerated and counted (Corrupted), never
//     fatal.
//   - A torn tail (an append cut short by a crash: an unterminated or
//     checksum-failing final run of lines) is truncated away so the file
//     ends on a committed row again; the loss is reported via Repair and
//     recomputed on resume.
//   - Orphaned GC temp files (a GC killed between temp write and rename)
//     are deleted; the original store file was never touched, so no
//     committed row is lost.
func OpenWith(path string, opts Options) (*Store, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = time.Second
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{path: path, f: f, opts: opts, points: make(map[string]*Point), seen: make(map[string]bool)}
	s.repair.TempsRemoved = removeStaleGCTemps(path)

	// Scan with explicit offsets so the end of the last committed row is
	// known: validEnd advances over parsable (or blank) complete lines,
	// pendingBad counts unparsable ones since the last good line. Bad
	// lines followed by good ones are mid-file corruption (tolerated);
	// bad lines at EOF are a torn tail (truncated).
	br := bufio.NewReaderSize(f, 1<<16)
	var offset, validEnd int64
	pendingBad := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			complete := line[len(line)-1] == '\n'
			offset += int64(len(line))
			content := strings.TrimRight(string(line), "\r\n")
			switch {
			case !complete:
				pendingBad++ // unterminated final line: never committed
			case strings.TrimSpace(content) == "":
				validEnd = offset
			default:
				if r, ok := decodeLine([]byte(content)); ok {
					s.index(r)
					s.corrupted += pendingBad
					pendingBad = 0
					validEnd = offset
				} else {
					pendingBad++
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, fmt.Errorf("store: reading %s: %w", path, rerr)
		}
	}
	if pendingBad > 0 || validEnd < offset {
		s.repair.DroppedLines = pendingBad
		s.repair.TruncatedBytes = offset - validEnd
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: repairing torn tail of %s: %w", path, err)
		}
		obsRowsRepaired.Add(int64(pendingBad))
	}
	obsCorruptLines.Add(int64(s.corrupted))
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// gcTempPrefix names the GC temp files of the store at path; it doubles
// as the stale-temp cleanup match.
func gcTempPrefix(path string) string { return ".gc-" + filepath.Base(path) + "." }

// removeStaleGCTemps deletes GC temp files orphaned by a crash between
// temp-file write and rename, returning how many were removed. Cleanup is
// best-effort: an unreadable directory just skips it.
func removeStaleGCTemps(path string) int {
	dir := filepath.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	prefix := gcTempPrefix(path)
	removed := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) {
			if os.Remove(filepath.Join(dir, e.Name())) == nil {
				removed++
			}
		}
	}
	return removed
}

// Repair reports what Open had to fix (zero value: nothing).
func (s *Store) Repair() RepairReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repair
}

// index merges r into the in-memory view, dropping duplicate (key, seq)
// rows: segment streams are deterministic, so a duplicate is a replay of
// the same result, not new evidence.
func (s *Store) index(r Row) bool {
	id := r.Key + "\x00" + fmt.Sprint(r.Seq)
	if s.seen[id] {
		return false
	}
	s.seen[id] = true
	p, ok := s.points[r.Key]
	if !ok {
		p = &Point{Key: r.Key}
		s.points[r.Key] = p
	}
	p.addRow(r)
	obsSegmentsMerged.Inc()
	return true
}

// Get returns the merged view of key.
func (s *Store) Get(key string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.points[key]
	if !ok {
		return Point{}, false
	}
	obsRowsServed.Inc()
	return *p, true
}

// Append commits one segment row: one checksummed JSON line written (and
// fsynced per the store's SyncPolicy) before the in-memory index is
// updated. Duplicate (key, seq) rows are ignored. A failed append leaves
// the index untouched, so a retried point re-appends the identical bytes.
func (s *Store) Append(r Row) error {
	if r.Key == "" {
		return fmt.Errorf("store: row has empty key")
	}
	line, err := encodeRow(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := r.Key + "\x00" + fmt.Sprint(r.Seq)
	if s.seen[id] {
		return nil
	}
	if s.opts.BeforeAppend != nil {
		if err := s.opts.BeforeAppend(line); err != nil {
			return fmt.Errorf("store: appending to %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	switch s.opts.Sync {
	case SyncAlways:
		if err := s.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(s.lastSync) >= s.opts.SyncEvery {
			if err := s.syncLocked(); err != nil {
				return err
			}
		}
	}
	s.index(r)
	obsRowsAppended.Inc()
	return nil
}

// Sync flushes appended rows to stable storage regardless of the fsync
// policy — the graceful-shutdown path calls it so every committed point
// survives whatever comes next.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", s.path, err)
	}
	s.lastSync = time.Now()
	obsSyncs.Inc()
	return nil
}

// Len returns the number of distinct points.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Keys returns every point key in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.points))
	for k := range s.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Corrupted reports how many unparsable lines Open tolerated.
func (s *Store) Corrupted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupted
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Close syncs committed rows to stable storage and releases the backing
// file. The sync happens regardless of SyncPolicy, so a cleanly closed
// store is always durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	serr := s.syncLocked()
	cerr := s.f.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("store: closing %s: %w", s.path, cerr)
	}
	return nil
}

// GC compacts the store in place: one merged row per key (summed counts,
// highest-seq payload), corrupted lines dropped, written to a temp file
// and atomically renamed over the original. The store stays open and
// serves the compacted view afterwards.
//
// A compacted segment keeps the merged counts but no longer corresponds to
// a single derivable RNG stream, so it still serves resume and still
// merges with future growth segments. The compacted row keeps the
// highest pre-compaction Seq — NOT 0 — so the segment-stream watermark
// survives on disk: a later session that reopens the file and grows the
// point must never reuse a stream index whose draws are already inside
// the compacted counts (that would double-count correlated samples).
func (s *Store) GC() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.points))
	for k := range s.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmp, err := os.CreateTemp(filepath.Dir(s.path), gcTempPrefix(s.path)+"*")
	if err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	newPoints := make(map[string]*Point, len(keys))
	newSeen := make(map[string]bool, len(keys))
	for _, k := range keys {
		p := s.points[k]
		seq := p.NextSeq - 1
		if seq < 0 {
			seq = 0
		}
		row := Row{
			Key: k, Kind: p.Kind, Seq: seq,
			Shots: p.Shots, Failures: p.Failures,
			Complete: p.Complete, Config: p.Config, Payload: p.Payload,
		}
		line, err := encodeRow(row)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: gc: %w", err)
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("store: gc: %w", err)
		}
		np := &Point{Key: k}
		np.addRow(row)
		newPoints[k] = np
		newSeen[k+"\x00"+fmt.Sprint(seq)] = true
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: gc: %w", err)
	}
	// Pin the crash window: the temp file reaches stable storage before
	// the rename publishes it, and the directory entry is fsynced after —
	// a kill at any instant leaves either the complete old file or the
	// complete new one (plus, at worst, an orphaned temp that the next
	// Open removes).
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: gc: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	syncDir(filepath.Dir(s.path))
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: gc: reopening %s: %w", s.path, err)
	}
	s.f.Close()
	s.f = f
	s.points = newPoints
	s.seen = newSeen
	s.corrupted = 0
	obsGCRuns.Inc()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: some platforms/filesystems reject directory fsync, and the
// rename itself is already crash-atomic for process death.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Key computes the content address of a point configuration: the SHA-256
// of the canonical JSON of (kind, config), hex-truncated to 128 bits.
// Canonicalization recursively sorts object keys, so the hash is stable
// under struct-field reordering and under any map iteration order; Go's
// shortest-round-trip float formatting makes numeric fields stable across
// runs. The config should describe the *generator* of the point — sizes,
// rates, counts, policy and decoder names, seed, adaptive target — not
// expanded artifacts derived from them.
func Key(kind string, config any) (string, error) {
	raw, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("store: hashing config: %w", err)
	}
	canon, err := Canonicalize(raw)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(kind + "\x00" + string(canon)))
	return hex.EncodeToString(h[:16]), nil
}

// MustKey is Key for configurations known to marshal (plain structs of
// scalars); it panics otherwise.
func MustKey(kind string, config any) string {
	k, err := Key(kind, config)
	if err != nil {
		panic(err)
	}
	return k
}

// Canonicalize rewrites a JSON document into the canonical form hashed by
// Key: object keys sorted, no insignificant whitespace, number literals
// preserved verbatim.
func Canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("store: canonicalizing: %w", err)
	}
	var sb strings.Builder
	if err := writeCanonical(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func writeCanonical(sb *strings.Builder, v any) error {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			sb.Write(kb)
			sb.WriteByte(':')
			if err := writeCanonical(sb, t[k]); err != nil {
				return err
			}
		}
		sb.WriteByte('}')
	case []any:
		sb.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := writeCanonical(sb, e); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case json.Number:
		sb.WriteString(t.String())
	default:
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		sb.Write(b)
	}
	return nil
}
