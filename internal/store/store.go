// Package store is the persistent, content-addressed result store behind
// the experiment pipeline: an append-only JSONL file in which every line is
// one committed segment of one Monte-Carlo point, keyed by a canonical hash
// of the point's full configuration (lattice/defect generator parameters,
// policy, noise, decoder, rounds, adaptive target, seed).
//
// The store exists so sweeps can resume and grow across sessions. Appends
// are the only write operation, so an interrupted run never corrupts
// earlier rows — at worst the final line is truncated, and Open tolerates
// (and counts) unparsable lines instead of failing. Segments of the same
// key accumulate: a session that needs more shots than the store holds
// computes only the remainder under a fresh segment-derived RNG stream and
// appends it, and Get merges all segments into one aggregate with the
// Wilson confidence interval recomputed from the merged counts.
//
// Two invariants make merged rows statistically coherent (see DESIGN.md §7):
// the configuration hash covers everything that fixes a point's RNG stream
// family and physics, and every segment's stream is derived from the point
// seed by a pure SplitMix64 chain (package mc), so rows written by
// different sessions, worker counts, or resume orders are the same rows a
// single uninterrupted run would have written.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"surfdeformer/internal/mc"
	"surfdeformer/internal/obs"
)

// Store metrics: segments merged into the index (from disk or appends),
// rows written, merged points served to resume, and GC compactions.
var (
	obsRowsAppended   = obs.Default().Counter("store.rows_appended")
	obsRowsServed     = obs.Default().Counter("store.rows_served")
	obsSegmentsMerged = obs.Default().Counter("store.segments_merged")
	obsGCRuns         = obs.Default().Counter("store.gc_runs")
)

// Row is one JSONL line: a committed segment of one point. Seq numbers the
// segments of a key; segment 0 is the stream an uninterrupted storeless run
// would use, so serving a completed point from the store reproduces that
// run byte-for-byte.
type Row struct {
	Key  string `json:"key"`
	Kind string `json:"kind,omitempty"`
	Seq  int    `json:"seq"`
	// Shots and Failures are this segment's committed Monte-Carlo counts
	// (zero for trial-style rows whose whole result lives in Payload).
	Shots    int `json:"shots,omitempty"`
	Failures int `json:"failures,omitempty"`
	// Complete marks the point as fully served at its configured budget or
	// adaptive target; resume skips complete points without re-deriving
	// budgets.
	Complete bool `json:"complete,omitempty"`
	// Config is the canonical point configuration (informational — the Key
	// already commits to it; kept so store-ls output is self-describing).
	Config json.RawMessage `json:"config,omitempty"`
	// Payload carries experiment-specific results needed to replay the
	// point without recomputation (per-basis counts, flags, rendered
	// fields). For multi-segment keys the merge keeps the highest-Seq
	// payload.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Point is the merged view of all segments of one key.
type Point struct {
	Key      string
	Kind     string
	Config   json.RawMessage
	Shots    int
	Failures int
	// Rate, CILow and CIHigh are recomputed from the merged counts (95%
	// Wilson score interval); meaningless when Shots == 0.
	Rate, CILow, CIHigh float64
	Complete            bool
	Segments            int
	NextSeq             int
	Payload             json.RawMessage
}

func (p *Point) addRow(r Row) {
	p.Kind = r.Kind
	if len(r.Config) > 0 {
		p.Config = r.Config
	}
	p.Shots += r.Shots
	p.Failures += r.Failures
	p.Complete = p.Complete || r.Complete
	p.Segments++
	if r.Seq >= p.NextSeq {
		p.NextSeq = r.Seq + 1
		if len(r.Payload) > 0 {
			p.Payload = r.Payload
		}
	}
	if p.Shots > 0 {
		p.Rate = float64(p.Failures) / float64(p.Shots)
		p.CILow, p.CIHigh = mc.WilsonInterval(p.Failures, p.Shots, mc.DefaultZ)
	}
}

// Store is an open JSONL result store. It is safe for concurrent use; the
// point-level worker pool appends from many goroutines.
type Store struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	points    map[string]*Point
	seen      map[string]bool // key\x00seq dedup — identical segments replay identically
	corrupted int
}

// Open reads (or creates) the store at path, merging every parsable row
// into the in-memory index. Unparsable lines — a torn final append, stray
// garbage — are tolerated and counted, never fatal: an append-only store
// must survive its own interruptions.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{path: path, f: f, points: make(map[string]*Point), seen: make(map[string]bool)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Row
		if err := json.Unmarshal([]byte(line), &r); err != nil || r.Key == "" {
			s.corrupted++
			continue
		}
		s.index(r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// index merges r into the in-memory view, dropping duplicate (key, seq)
// rows: segment streams are deterministic, so a duplicate is a replay of
// the same result, not new evidence.
func (s *Store) index(r Row) bool {
	id := r.Key + "\x00" + fmt.Sprint(r.Seq)
	if s.seen[id] {
		return false
	}
	s.seen[id] = true
	p, ok := s.points[r.Key]
	if !ok {
		p = &Point{Key: r.Key}
		s.points[r.Key] = p
	}
	p.addRow(r)
	obsSegmentsMerged.Inc()
	return true
}

// Get returns the merged view of key.
func (s *Store) Get(key string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.points[key]
	if !ok {
		return Point{}, false
	}
	obsRowsServed.Inc()
	return *p, true
}

// Append commits one segment row: one JSON line written and flushed before
// the in-memory index is updated. Duplicate (key, seq) rows are ignored.
func (s *Store) Append(r Row) error {
	if r.Key == "" {
		return fmt.Errorf("store: row has empty key")
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := r.Key + "\x00" + fmt.Sprint(r.Seq)
	if s.seen[id] {
		return nil
	}
	if _, err := s.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	s.index(r)
	obsRowsAppended.Inc()
	return nil
}

// Len returns the number of distinct points.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Keys returns every point key in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.points))
	for k := range s.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Corrupted reports how many unparsable lines Open tolerated.
func (s *Store) Corrupted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupted
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Close releases the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// GC compacts the store in place: one merged row per key (summed counts,
// highest-seq payload), corrupted lines dropped, written to a temp file
// and atomically renamed over the original. The store stays open and
// serves the compacted view afterwards.
//
// A compacted segment keeps the merged counts but no longer corresponds to
// a single derivable RNG stream, so it still serves resume and still
// merges with future growth segments. The compacted row keeps the
// highest pre-compaction Seq — NOT 0 — so the segment-stream watermark
// survives on disk: a later session that reopens the file and grows the
// point must never reuse a stream index whose draws are already inside
// the compacted counts (that would double-count correlated samples).
func (s *Store) GC() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.points))
	for k := range s.points {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmp, err := os.CreateTemp(dirOf(s.path), ".store-gc-*")
	if err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	newPoints := make(map[string]*Point, len(keys))
	newSeen := make(map[string]bool, len(keys))
	for _, k := range keys {
		p := s.points[k]
		seq := p.NextSeq - 1
		if seq < 0 {
			seq = 0
		}
		row := Row{
			Key: k, Kind: p.Kind, Seq: seq,
			Shots: p.Shots, Failures: p.Failures,
			Complete: p.Complete, Config: p.Config, Payload: p.Payload,
		}
		b, err := json.Marshal(row)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: gc: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: gc: %w", err)
		}
		np := &Point{Key: k}
		np.addRow(row)
		newPoints[k] = np
		newSeen[k+"\x00"+fmt.Sprint(seq)] = true
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: gc: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: gc: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: gc: reopening %s: %w", s.path, err)
	}
	s.f.Close()
	s.f = f
	s.points = newPoints
	s.seen = newSeen
	s.corrupted = 0
	obsGCRuns.Inc()
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// Key computes the content address of a point configuration: the SHA-256
// of the canonical JSON of (kind, config), hex-truncated to 128 bits.
// Canonicalization recursively sorts object keys, so the hash is stable
// under struct-field reordering and under any map iteration order; Go's
// shortest-round-trip float formatting makes numeric fields stable across
// runs. The config should describe the *generator* of the point — sizes,
// rates, counts, policy and decoder names, seed, adaptive target — not
// expanded artifacts derived from them.
func Key(kind string, config any) (string, error) {
	raw, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("store: hashing config: %w", err)
	}
	canon, err := Canonicalize(raw)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(kind + "\x00" + string(canon)))
	return hex.EncodeToString(h[:16]), nil
}

// MustKey is Key for configurations known to marshal (plain structs of
// scalars); it panics otherwise.
func MustKey(kind string, config any) string {
	k, err := Key(kind, config)
	if err != nil {
		panic(err)
	}
	return k
}

// Canonicalize rewrites a JSON document into the canonical form hashed by
// Key: object keys sorted, no insignificant whitespace, number literals
// preserved verbatim.
func Canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("store: canonicalizing: %w", err)
	}
	var sb strings.Builder
	if err := writeCanonical(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func writeCanonical(sb *strings.Builder, v any) error {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			sb.Write(kb)
			sb.WriteByte(':')
			if err := writeCanonical(sb, t[k]); err != nil {
				return err
			}
		}
		sb.WriteByte('}')
	case []any:
		sb.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := writeCanonical(sb, e); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case json.Number:
		sb.WriteString(t.String())
	default:
		b, err := json.Marshal(t)
		if err != nil {
			return err
		}
		sb.Write(b)
	}
	return nil
}
