// Package estimator converts per-cycle logical error rates into program
// retry risks under dynamic defects, for each mitigation framework.
//
// Absolute logical error rates at the paper's distances (d = 19…27) are
// far below what Monte-Carlo can measure directly, so — exactly like the
// paper, which composes per-cycle rates into retry risks following
// Gidney–Ekerå — the estimator uses a Λ-extrapolation model
//
//	λ(d) = A · (p / p_th)^((d+1)/2)
//
// whose constants are fitted from union-find memory simulations in the
// measurable regime (Calibrate) or taken from the defaults recorded there.
package estimator

import (
	"fmt"
	"math"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/sim"
)

// LambdaModel extrapolates the per-cycle logical error rate to arbitrary
// code distance.
type LambdaModel struct {
	P          float64 // physical error rate
	PThreshold float64 // fitted effective threshold of the decoder
	A          float64 // fitted prefactor
}

// DefaultLambda returns the extrapolation model used by the program-level
// experiments. The constants are pinned by two anchors (see EXPERIMENTS.md):
// they sit inside the uncertainty band of this repository's own union-find
// calibration (Calibrate at p ∈ [3,6]×10⁻³ fits A ≈ 0.04–0.09,
// p_th ≈ 6.5–10×10⁻³; the power-law ansatz cannot pin p = 10⁻³ behaviour
// from the measurable regime alone), and they reproduce the effective
// per-cycle rates implied by the paper's own Table II retry risks
// (λ(19) ≈ 6×10⁻¹⁰ at p = 10⁻³).
func DefaultLambda() *LambdaModel {
	return &LambdaModel{P: noise.DefaultPhysical, PThreshold: 6.5e-3, A: 0.08}
}

// Rate returns the per-cycle logical error rate at distance d (both error
// species combined). Distances below 2 saturate at the random limit.
func (m *LambdaModel) Rate(d int) float64 {
	if d < 2 {
		return 0.5
	}
	lam := m.A * math.Pow(m.P/m.PThreshold, float64(d+1)/2)
	if lam > 0.5 {
		return 0.5
	}
	return lam
}

// RateAt evaluates the model at a different physical rate (fig. 14a).
func (m *LambdaModel) RateAt(p float64, d int) float64 {
	c := *m
	c.P = p
	return c.Rate(d)
}

// CalibrationPoint is one measured (p, d) → λ sample.
type CalibrationPoint struct {
	P      float64
	D      int
	Lambda float64
}

// Calibrate runs memory experiments over the given physical rates and
// distances and fits A and p_th by least squares in log space. Points whose
// measured rate is zero (no failures) are skipped.
func Calibrate(ps []float64, ds []int, rounds, shots int, factory sim.DecoderFactory, seed int64) (*LambdaModel, []CalibrationPoint, error) {
	var pts []CalibrationPoint
	for _, p := range ps {
		for _, d := range ds {
			c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, d))
			_, _, combined, err := sim.RunMemoryBoth(c, noise.Uniform(p), rounds, shots, factory, seed)
			if err != nil {
				return nil, nil, err
			}
			seed += 2
			if combined <= 0 {
				continue
			}
			pts = append(pts, CalibrationPoint{P: p, D: d, Lambda: combined})
		}
	}
	if len(pts) < 3 {
		return nil, pts, fmt.Errorf("estimator: only %d usable calibration points", len(pts))
	}
	// log λ_i = logA + k_i·log p_i − k_i·log p_th with k_i = (d_i+1)/2:
	// least squares over (logA, log p_th).
	var s11, s12, s22, b1, b2 float64
	for _, pt := range pts {
		k := float64(pt.D+1) / 2
		y := math.Log(pt.Lambda) - k*math.Log(pt.P)
		// features: x1 = 1 (logA), x2 = -k (log p_th)
		s11 += 1
		s12 += -k
		s22 += k * k
		b1 += y
		b2 += -k * y
	}
	det := s11*s22 - s12*s12
	if det == 0 {
		return nil, pts, fmt.Errorf("estimator: singular calibration system")
	}
	logA := (b1*s22 - b2*s12) / det
	logPth := (s11*b2 - s12*b1) / det
	m := &LambdaModel{P: ps[0], PThreshold: math.Exp(logPth), A: math.Exp(logA)}
	return m, pts, nil
}
