// Package estimator converts per-cycle logical error rates into program
// retry risks under dynamic defects, for each mitigation framework.
//
// Absolute logical error rates at the paper's distances (d = 19…27) are
// far below what Monte-Carlo can measure directly, so — exactly like the
// paper, which composes per-cycle rates into retry risks following
// Gidney–Ekerå — the estimator uses a Λ-extrapolation model
//
//	λ(d) = A · (p / p_th)^((d+1)/2)
//
// whose constants are fitted from union-find memory simulations in the
// measurable regime (Calibrate) or taken from the defaults recorded there.
//
// Calibration is itself a sweep of independent (p, d) Monte-Carlo points
// and runs on the same machinery as the experiment grids: CalibrateOpts
// fans points out over a worker pool, stops each adaptively at a target
// relative standard error, derives every point's seed from (Seed, p, d)
// alone — so results are bit-identical for any parallelism or resume
// order — and can persist points to the result store so a re-calibration
// only pays for configurations it has not measured yet.
package estimator

import (
	"context"
	"fmt"
	"math"

	"surfdeformer/internal/code"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/mc"
	"surfdeformer/internal/noise"
	"surfdeformer/internal/obs"
	"surfdeformer/internal/sim"
	"surfdeformer/internal/store"
)

// LambdaModel extrapolates the per-cycle logical error rate to arbitrary
// code distance.
type LambdaModel struct {
	P          float64 // physical error rate
	PThreshold float64 // fitted effective threshold of the decoder
	A          float64 // fitted prefactor
}

// DefaultLambda returns the extrapolation model used by the program-level
// experiments. The constants are pinned by two anchors (see EXPERIMENTS.md):
// they sit inside the uncertainty band of this repository's own union-find
// calibration (Calibrate at p ∈ [3,6]×10⁻³ fits A ≈ 0.04–0.09,
// p_th ≈ 6.5–10×10⁻³; the power-law ansatz cannot pin p = 10⁻³ behaviour
// from the measurable regime alone), and they reproduce the effective
// per-cycle rates implied by the paper's own Table II retry risks
// (λ(19) ≈ 6×10⁻¹⁰ at p = 10⁻³).
func DefaultLambda() *LambdaModel {
	return &LambdaModel{P: noise.DefaultPhysical, PThreshold: 6.5e-3, A: 0.08}
}

// Rate returns the per-cycle logical error rate at distance d (both error
// species combined). Distances below 2 saturate at the random limit.
func (m *LambdaModel) Rate(d int) float64 {
	if d < 2 {
		return 0.5
	}
	lam := m.A * math.Pow(m.P/m.PThreshold, float64(d+1)/2)
	if lam > 0.5 {
		return 0.5
	}
	return lam
}

// RateAt evaluates the model at a different physical rate (fig. 14a).
func (m *LambdaModel) RateAt(p float64, d int) float64 {
	c := *m
	c.P = p
	return c.Rate(d)
}

// CalibrationPoint is one measured (p, d) → λ sample.
type CalibrationPoint struct {
	P      float64
	D      int
	Lambda float64
}

// CalibrateOptions tunes the calibration sweep. The zero value of every
// knob is valid: TargetRSE == 0 runs the exact Shots budget per point,
// Workers <= 0 uses every CPU inside a point, PointWorkers <= 1 runs
// points serially, and a nil Store disables persistence.
type CalibrateOptions struct {
	Rounds int
	// Shots is the per-point budget: exact when TargetRSE == 0, a cap
	// otherwise.
	Shots int
	// TargetRSE, when positive, stops each calibration point at this
	// relative standard error instead of burning the full budget — the
	// adaptive path that makes calibration cheap at measurable rates.
	TargetRSE float64
	// Workers sizes the within-point Monte-Carlo pool; PointWorkers fans
	// (p, d) points out concurrently. Neither changes results.
	Workers      int
	PointWorkers int
	// Ctx, when non-nil, cancels the calibration sweep cooperatively at
	// point and shard boundaries; CalibrateOpts then returns an error
	// wrapping mc.ErrCanceled (completed points stay in the store).
	Ctx     context.Context
	Factory sim.DecoderFactory
	// Decoder names the factory for the store's config hash ("uf",
	// "greedy", "exact"); required when Store is set.
	Decoder string
	Seed    int64
	// Store and Resume wire calibration points into the persistent result
	// store, exactly like experiment grid points: complete points are
	// served, partial ones top up only the missing shots.
	Store  *store.Store
	Resume bool
	// OnPoint, when non-nil, is called once per (p, d) point with fromStore
	// reporting whether both basis halves were served from the store. It
	// may be called concurrently (PointWorkers > 1).
	OnPoint func(fromStore bool)
	// Progress, when non-nil, streams grid completion to its writer while
	// the calibration sweep runs. Observation-only.
	Progress *obs.Progress
}

// calConfig is the store identity of one calibration point (the shot
// budget accumulates and is deliberately absent; see DESIGN.md §7).
type calConfig struct {
	P         float64 `json:"p"`
	D         int     `json:"d"`
	Rounds    int     `json:"rounds"`
	Decoder   string  `json:"decoder"`
	Seed      int64   `json:"seed"`
	TargetRSE float64 `json:"target_rse,omitempty"`
}

// calSalt keeps calibration streams disjoint from engine shard streams
// (negative leading path element; see mc.DeriveSeed).
const calSalt = int64(-14)

// Calibrate runs memory experiments over the given physical rates and
// distances and fits A and p_th by least squares in log space. Points whose
// measured rate is zero (no failures) are skipped. It is the fixed-budget,
// serial wrapper over CalibrateOpts.
func Calibrate(ps []float64, ds []int, rounds, shots int, factory sim.DecoderFactory, seed int64) (*LambdaModel, []CalibrationPoint, error) {
	return CalibrateOpts(ps, ds, CalibrateOptions{
		Rounds: rounds, Shots: shots, Factory: factory, Seed: seed,
	})
}

// CalibrateOpts measures every (p, d) calibration point on the adaptive
// Monte-Carlo path — point-level pool, per-point derived seeds, optional
// early stopping at TargetRSE, optional persistent store with resume — and
// fits the Λ model from the results. Point results are bit-identical for
// any Workers/PointWorkers values and any resume order.
func CalibrateOpts(ps []float64, ds []int, o CalibrateOptions) (*LambdaModel, []CalibrationPoint, error) {
	if o.Factory == nil {
		return nil, nil, fmt.Errorf("estimator: CalibrateOptions.Factory is required")
	}
	if o.Store != nil && o.Decoder == "" {
		// The decoder name is part of the point's content address; without
		// it, calibrations with different factories would share store keys
		// and resume would serve the wrong decoder's results.
		return nil, nil, fmt.Errorf("estimator: CalibrateOptions.Decoder is required when Store is set")
	}
	type point struct {
		p float64
		d int
	}
	var grid []point
	for _, p := range ps {
		for _, d := range ds {
			grid = append(grid, point{p, d})
		}
	}
	lambdas := make([]float64, len(grid))
	o.Progress.Begin(len(grid))
	defer o.Progress.End()
	err := mc.ForEach(o.Ctx, o.PointWorkers, len(grid), func(i int) error {
		defer o.Progress.PointDone()
		pt := grid[i]
		c := code.FromPatch(lattice.NewPatch(lattice.Coord{Row: 0, Col: 0}, pt.d))
		seed := mc.DeriveSeed(o.Seed, calSalt, int64(math.Round(pt.p*1e9)), int64(pt.d))
		_, _, combined, fromStore, err := sim.RunMemoryBothStored(c, noise.Uniform(pt.p), sim.RunOptions{
			Rounds:    o.Rounds,
			Factory:   o.Factory,
			Shots:     o.Shots,
			Workers:   o.Workers,
			TargetRSE: o.TargetRSE,
			Seed:      seed,
			Ctx:       o.Ctx,
		}, sim.StoreOptions{
			Store:  o.Store,
			Resume: o.Resume,
			Kind:   "calibrate",
			Config: calConfig{P: pt.p, D: pt.d, Rounds: o.Rounds,
				Decoder: o.Decoder, Seed: o.Seed, TargetRSE: o.TargetRSE},
		})
		if err != nil {
			return err
		}
		if o.OnPoint != nil {
			o.OnPoint(fromStore)
		}
		lambdas[i] = combined
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var pts []CalibrationPoint
	for i, pt := range grid {
		if lambdas[i] <= 0 {
			continue
		}
		pts = append(pts, CalibrationPoint{P: pt.p, D: pt.d, Lambda: lambdas[i]})
	}
	if len(pts) < 3 {
		return nil, pts, fmt.Errorf("estimator: only %d usable calibration points", len(pts))
	}
	// log λ_i = logA + k_i·log p_i − k_i·log p_th with k_i = (d_i+1)/2:
	// least squares over (logA, log p_th).
	var s11, s12, s22, b1, b2 float64
	for _, pt := range pts {
		k := float64(pt.D+1) / 2
		y := math.Log(pt.Lambda) - k*math.Log(pt.P)
		// features: x1 = 1 (logA), x2 = -k (log p_th)
		s11 += 1
		s12 += -k
		s22 += k * k
		b1 += y
		b2 += -k * y
	}
	det := s11*s22 - s12*s12
	if det == 0 {
		return nil, pts, fmt.Errorf("estimator: singular calibration system")
	}
	logA := (b1*s22 - b2*s12) / det
	logPth := (s11*b2 - s12*b1) / det
	m := &LambdaModel{P: ps[0], PThreshold: math.Exp(logPth), A: math.Exp(logA)}
	return m, pts, nil
}
