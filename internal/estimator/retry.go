package estimator

import (
	"math"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/layout"
	"surfdeformer/internal/program"
)

// LossModel describes how much code distance one defect event costs under a
// mitigation framework. Dynamic defects are temporary (they persist for
// DurationCycles and then subside, §I/§II-B), so the loss has two phases:
// the response transient and the remainder of the defect window. ASC-S
// cannot recover distance during the window (its sole flaw per fig. 1b);
// Surf-Deformer's enlargement restores it right after the response. The
// defaults are fitted from this repository's own deformation engine
// (estimator.FitLoss over cosmic-ray regions, cross-checked against the
// fig. 11b ablation).
type LossModel struct {
	// TransientLoss is the distance lost between defect onset and the end
	// of the deformation/enlargement response.
	TransientLoss int
	// WindowLoss is the distance lost for the rest of the defect window
	// (zero when adaptive enlargement restores the code; the full removal
	// loss when the framework cannot grow).
	WindowLoss int
	// ResponseCycles is how long the transient lasts (detection latency
	// plus the single-cycle deformation update).
	ResponseCycles int64
}

// Framework bundles the per-scheme behaviour the estimator composes.
type Framework struct {
	Scheme layout.Scheme
	Loss   LossModel
	// Untreated marks frameworks that leave the 50% defect region inside
	// the code with the decoder uninformed (lattice surgery): during the
	// event window the patch fails at the untreated rate.
	Untreated bool
	// BlocksChannels marks frameworks whose response occupies the
	// communication channels (Q3DE on its fixed layout).
	BlocksChannels bool
}

// DefaultFrameworks returns the four evaluated frameworks with their
// default loss models.
func DefaultFrameworks() map[layout.Scheme]Framework {
	return map[layout.Scheme]Framework{
		layout.SurfDeformer: {
			Scheme: layout.SurfDeformer,
			// Fitted: removal costs ~6 until enlargement lands; the Δd
			// budget restores all but ~1 unit for the rest of the window.
			Loss: LossModel{TransientLoss: 6, WindowLoss: 1, ResponseCycles: 100},
		},
		layout.ASCS: {
			Scheme: layout.ASCS,
			// Fitted: the super-stabilizer removal costs ~7 and nothing
			// recovers it until the defect itself subsides.
			Loss: LossModel{TransientLoss: 7, WindowLoss: 7, ResponseCycles: 100},
		},
		layout.Q3DE: {
			Scheme: layout.Q3DE,
			// Doubling plus erasure-aware decoding roughly maintains the
			// logical rate, but the enlargement squats on the channels.
			Loss:           LossModel{TransientLoss: 2, WindowLoss: 0, ResponseCycles: 100},
			BlocksChannels: true,
		},
		layout.Q3DEStar: {
			Scheme: layout.Q3DEStar,
			Loss:   LossModel{TransientLoss: 2, WindowLoss: 0, ResponseCycles: 100},
		},
		layout.LatticeSurgery: {
			Scheme:    layout.LatticeSurgery,
			Loss:      LossModel{TransientLoss: 0, WindowLoss: 0, ResponseCycles: 0},
			Untreated: true,
		},
	}
}

// Estimate is the outcome of a program-level evaluation.
type Estimate struct {
	Scheme         layout.Scheme
	Program        *program.Program
	D              int
	DeltaD         int
	PhysicalQubits int
	RetryRisk      float64
	OverRuntime    bool
	// MeanEvents is the average defect events per trial (diagnostics).
	MeanEvents float64
}

// EstimateProgram composes the retry risk of running prog at distance d
// under the framework, Monte-Carlo sampling defect timelines.
//
// Per trial: defect events arrive on each patch as a Poisson process over
// the program duration. Each event degrades that patch's distance according
// to the framework's loss model (transiently, then permanently). The trial
// fails if any patch suffers a logical error, composed from the per-cycle
// λ(d_effective) over the timeline. Q3DE on its fixed layout additionally
// stalls whenever an enlarged patch blocks required routing for longer than
// the schedule slack — with whole-program defect pressure this is what
// produces the paper's OverRuntime verdicts.
func EstimateProgram(prog *program.Program, fw Framework, d, deltaD int,
	dm *defect.Model, lm *LambdaModel, trials int, rng *rand.Rand) *Estimate {

	lay := layout.New(fw.Scheme, prog.LogicalQubits(), d, deltaD)
	est := &Estimate{
		Scheme:         fw.Scheme,
		Program:        prog,
		D:              d,
		DeltaD:         lay.DeltaD,
		PhysicalQubits: lay.PhysicalQubits(),
	}

	cycles := prog.Cycles(d)
	nPatches := prog.LogicalQubits()
	patchQubits := 2 * d * d
	seconds := float64(cycles) * dm.CycleSeconds
	lambdaEvents := dm.PoissonLambda(patchQubits, seconds) // events per patch

	baseRate := lm.Rate(d)
	// Untreated-defect failure rate per cycle inside an event window: the
	// 50% region overwhelms an uninformed decoder; the patch behaves like a
	// code whose distance lost the region diameter, at a heavily elevated
	// prefactor (measured in the fig. 11a experiment).
	untreatedRate := math.Min(0.5, lm.Rate(max(2, d-4*dm.Radius))*50)

	failSum := 0.0
	stallSum := 0.0
	eventsSum := 0.0
	duration := int64(dm.DurationCycles)
	for trial := 0; trial < trials; trial++ {
		logSurvive := 0.0 // log of survival probability across all patches
		blocked := false
		totalEvents := 0
		for patch := 0; patch < nPatches; patch++ {
			nEvents := poissonRand(lambdaEvents, rng)
			totalEvents += nEvents
			if nEvents == 0 {
				logSurvive += float64(cycles) * math.Log1p(-baseRate)
				continue
			}
			if fw.BlocksChannels {
				blocked = true
			}
			logSurvive += patchLogSurvive(cycles, duration, nEvents, d, fw, lm, untreatedRate)
			// Once survival is hopeless the remaining patches cannot raise
			// it; stop accumulating detail.
			if logSurvive < -60 {
				logSurvive = -60
				break
			}
		}
		failSum += 1 - math.Exp(logSurvive)
		eventsSum += float64(totalEvents)
		if blocked {
			// A blocked patch freezes every operation routed near it; with
			// events persisting for tens of thousands of cycles, any event
			// during the program forces a stall beyond the schedule slack.
			stallSum++
		}
	}
	est.RetryRisk = failSum / float64(trials)
	est.MeanEvents = eventsSum / float64(trials)
	if fw.BlocksChannels && stallSum/float64(trials) > 0.5 {
		est.OverRuntime = true
	}
	return est
}

// MinimalDistance searches for the smallest odd distance whose estimated
// retry risk meets the target, returning the final estimate. It gives up at
// maxD.
func MinimalDistance(prog *program.Program, fw Framework, target float64, deltaDFor func(d int) int,
	dm *defect.Model, lm *LambdaModel, trials, maxD int, rng *rand.Rand) (*Estimate, bool) {

	for d := 3; d <= maxD; d += 2 {
		est := EstimateProgram(prog, fw, d, deltaDFor(d), dm, lm, trials, rng)
		if est.OverRuntime {
			continue
		}
		if est.RetryRisk <= target {
			return est, true
		}
	}
	return EstimateProgram(prog, fw, maxD, deltaDFor(maxD), dm, lm, trials, rng), false
}

// patchLogSurvive composes the log survival probability of one patch with
// nEvents defect strikes in closed form. Defects are temporary: each event
// degrades the patch for its response transient and then for the rest of
// the defect window per the framework's WindowLoss; once the defect
// subsides the patch returns to full distance. Overlapping events are
// approximated by capping the total degraded time at the program length.
func patchLogSurvive(cycles, duration int64, nEvents, d int, fw Framework, lm *LambdaModel, untreatedRate float64) float64 {
	logAt := func(rate float64, c int64) float64 {
		if c <= 0 {
			return 0
		}
		if rate >= 0.5 {
			return -60
		}
		return float64(c) * math.Log1p(-rate)
	}
	if fw.Untreated {
		// Hot windows at the untreated rate; the rest at baseline.
		hot := int64(nEvents) * duration
		if hot > cycles {
			hot = cycles
		}
		return logAt(untreatedRate, hot) + logAt(lm.Rate(d), cycles-hot)
	}
	resp := fw.Loss.ResponseCycles
	if resp > duration {
		resp = duration
	}
	transientCycles := int64(nEvents) * resp
	windowCycles := int64(nEvents) * (duration - resp)
	if transientCycles > cycles {
		transientCycles = cycles
	}
	if transientCycles+windowCycles > cycles {
		windowCycles = cycles - transientCycles
	}
	quiet := cycles - transientCycles - windowCycles
	out := logAt(lm.Rate(maxInt(2, d-fw.Loss.TransientLoss)), transientCycles)
	out += logAt(lm.Rate(maxInt(2, d-fw.Loss.WindowLoss)), windowCycles)
	out += logAt(lm.Rate(d), quiet)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max(a, b int) int { return maxInt(a, b) }

func poissonRand(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
