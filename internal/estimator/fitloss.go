package estimator

import (
	"math"
	"math/rand"

	"surfdeformer/internal/defect"
	"surfdeformer/internal/deform"
	"surfdeformer/internal/lattice"
	"surfdeformer/internal/layout"
)

// FitLoss derives a LossModel from the real deformation engine instead of
// the analytic defaults: cosmic-ray events are sampled onto a d-patch, the
// policy's removal subroutine runs, and (for policies with growth budget)
// the adaptive enlargement follows. TransientLoss is the mean distance lost
// right after removal; WindowLoss the mean loss remaining after
// enlargement. This is the "fig. 11b-calibrated" mode of the Table II
// estimator.
func FitLoss(d int, policy deform.Policy, budget int, dm *defect.Model, samples int, rng *rand.Rand) LossModel {
	if samples < 1 {
		samples = 1
	}
	var transientSum, permanentSum float64
	counted := 0
	for s := 0; s < samples; s++ {
		spec := deform.NewSquareSpec(lattice.Coord{Row: 0, Col: 0}, d)
		min, max := spec.Bounds()
		// One event: a strike centre anywhere on the patch.
		sites := allSites(min, max)
		center := sites[rng.Intn(len(sites))]
		region := dm.RegionOf(center, min, max)
		if err := deform.ApplyDefects(spec, region, policy); err != nil {
			transientSum += float64(d - 2)
			permanentSum += float64(d - 2)
			counted++
			continue
		}
		c, err := spec.Build()
		if err != nil {
			// Severed patch: total loss.
			transientSum += float64(d - 2)
			permanentSum += float64(d - 2)
			counted++
			continue
		}
		transient := float64(d - c.Distance())
		permanent := transient
		if budget > 0 {
			inRegion := map[lattice.Coord]bool{}
			for _, q := range region {
				inRegion[q] = true
			}
			res, err := deform.Enlarge(spec, d, d,
				func(q lattice.Coord) bool { return inRegion[q] },
				policy, deform.UniformBudget(budget))
			if err == nil {
				rd := res.ReachedX
				if res.ReachedZ < rd {
					rd = res.ReachedZ
				}
				permanent = float64(d - rd)
			}
		}
		if transient < 0 {
			transient = 0
		}
		if permanent < 0 {
			permanent = 0
		}
		transientSum += transient
		permanentSum += permanent
		counted++
	}
	resp := int64(100)
	return LossModel{
		TransientLoss:  int(math.Round(transientSum / float64(counted))),
		WindowLoss:     int(math.Round(permanentSum / float64(counted))),
		ResponseCycles: resp,
	}
}

// FittedFrameworks returns the framework set with Surf-Deformer and ASC-S
// loss models fitted by Monte Carlo at the given distance.
func FittedFrameworks(d, budget, samples int, dm *defect.Model, rng *rand.Rand) map[layout.Scheme]Framework {
	fws := DefaultFrameworks()
	surf := fws[layout.SurfDeformer]
	surf.Loss = FitLoss(d, deform.PolicySurfDeformer, budget, dm, samples, rng)
	fws[layout.SurfDeformer] = surf
	asc := fws[layout.ASCS]
	asc.Loss = FitLoss(d, deform.PolicyASC, 0, dm, samples, rng)
	fws[layout.ASCS] = asc
	return fws
}

func allSites(min, max lattice.Coord) []lattice.Coord {
	var sites []lattice.Coord
	for r := min.Row; r <= max.Row; r++ {
		for c := min.Col; c <= max.Col; c++ {
			q := lattice.Coord{Row: r, Col: c}
			if q.IsData() || q.IsCheck() {
				sites = append(sites, q)
			}
		}
	}
	return sites
}
